package rrfd

import (
	"repro/internal/task"
)

// Task formalizes the paper's solvability definition: an input/output
// relation with a decidable checker.
type Task = task.Task

// TaskAssignment is one execution's input/output pair.
type TaskAssignment = task.Assignment

// TaskReport summarizes a Solves run.
type TaskReport = task.Report

// TaskOracleGen produces per-seed adversaries for Solves.
type TaskOracleGen = task.OracleGen

// GradedValue is an adopt-commit task output.
type GradedValue = task.GradedValue

// Tasks and the solvability checker.
var (
	// ConsensusTask is the consensus task.
	ConsensusTask = task.Consensus

	// KSetAgreementTask is the k-set agreement task of §3.
	KSetAgreementTask = task.KSetAgreement

	// AdoptCommitTask is the §4.2 adopt-commit task.
	AdoptCommitTask = task.AdoptCommit

	// Solves machine-checks "the system defined by this predicate solves
	// this task with this algorithm" over seeded adversary families.
	Solves = task.Solves
)
