package rrfd

import (
	"repro/internal/predicate"
)

// Predicate is a checkable RRFD model predicate: a constraint on the family
// of suspect sets D(i,r) of an execution trace.
type Predicate = predicate.P

// PredicateViolation pinpoints where a trace broke a predicate.
type PredicateViolation = predicate.Violation

// TraceGen produces traces from seeds, for implication testing.
type TraceGen = predicate.TraceGen

// Model predicates from the paper (§2–§5).
var (
	// SendOmission is eq. (1): the synchronous message-passing system
	// with at most f send-omission faults (§2 item 1).
	SendOmission = predicate.SendOmission

	// SelfTrusting is the p_i ∉ D(i,r) clause of eq. (1).
	SelfTrusting = predicate.SelfTrusting

	// TotalSuspectBudget is the |⋃⋃D| ≤ f clause of eq. (1).
	TotalSuspectBudget = predicate.TotalSuspectBudget

	// SuspicionPropagates is eq. (2): what anyone suspects at round r,
	// everyone suspects at round r+1.
	SuspicionPropagates = predicate.SuspicionPropagates

	// SyncCrash is eqs. (1)+(2): the synchronous crash-fault system (§2
	// item 2).
	SyncCrash = predicate.SyncCrash

	// PerRoundBudget is eq. (3): |D(i,r)| ≤ f — asynchronous message
	// passing with f crash failures (§2 item 3).
	PerRoundBudget = predicate.PerRoundBudget

	// SomeoneSeenByAll is eq. (4): each round somebody is suspected by
	// nobody.
	SomeoneSeenByAll = predicate.SomeoneSeenByAll

	// SharedMemory is eqs. (3)+(4): asynchronous SWMR shared memory (§2
	// item 4).
	SharedMemory = predicate.SharedMemory

	// NoMutualMiss is the alternative shared-memory clause of §2 item 4.
	NoMutualMiss = predicate.NoMutualMiss

	// ContainmentChain orders each round's suspect sets by inclusion.
	ContainmentChain = predicate.ContainmentChain

	// AtomicSnapshot is the §2 item 5 predicate: budget + self-inclusion
	// + containment chain.
	AtomicSnapshot = predicate.AtomicSnapshot

	// NeverSuspectedExists is §2 item 6: the failure-detector-S system.
	NeverSuspectedExists = predicate.NeverSuspectedExists

	// KSetDetector is the §3 predicate: |⋃D \ ⋂D| < k each round.
	KSetDetector = predicate.KSetDetector

	// IdenticalSuspects is eq. (5) of §5: D(i,r) = D(j,r) for all i, j.
	IdenticalSuspects = predicate.IdenticalSuspects

	// BSystem is the §2 item 3 counterexample system.
	BSystem = predicate.BSystem

	// EventuallyNeverSuspected is the eventual-accuracy (◇S-analogue)
	// predicate: some process is never suspected after round stab.
	EventuallyNeverSuspected = predicate.EventuallyNeverSuspected

	// AndPredicates conjoins predicates under a name.
	AndPredicates = predicate.And

	// Implies empirically checks the submodel relation A ⇒ B.
	Implies = predicate.Implies

	// Separates finds a witness trace satisfying A but not B.
	Separates = predicate.Separates

	// ExhaustiveTraces enumerates every crash-free trace over a tiny
	// universe.
	ExhaustiveTraces = predicate.ExhaustiveTraces

	// ExhaustiveImplies proves A ⇒ B over a tiny universe by
	// enumeration.
	ExhaustiveImplies = predicate.ExhaustiveImplies

	// ExhaustiveWitnesses counts the traces satisfying A but not B over
	// a tiny universe.
	ExhaustiveWitnesses = predicate.ExhaustiveWitnesses
)
