package rrfd

import (
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// This file re-exports the crash-recovery substrate: the write-ahead log
// (internal/wal), engine checkpointing and resume (internal/core), the
// crash-recovery round protocol with durable journals (internal/recovery),
// and the crash-and-recover chaos campaign (internal/chaos).

// Write-ahead log types.
type (
	// WAL is an append-only checksummed segmented log.
	WAL = wal.Log

	// WALOptions tunes segment rotation and the fsync policy.
	WALOptions = wal.Options

	// WALRecord is one replayed log entry.
	WALRecord = wal.Record

	// WALReplayReport summarizes a replay, including any torn tail dropped.
	WALReplayReport = wal.ReplayReport

	// WALCorruptError reports mid-log corruption (not a torn tail).
	WALCorruptError = wal.CorruptError

	// SyncMode selects the fsync policy for appends.
	SyncMode = wal.SyncMode
)

// Fsync policies.
const (
	// SyncNever never fsyncs on append: survives process crashes, not
	// power loss.
	SyncNever = wal.SyncNever

	// SyncAlways fsyncs after every append.
	SyncAlways = wal.SyncAlways
)

// Write-ahead log entry points.
var (
	// WALCreate creates a fresh log in an empty (or absent) directory.
	WALCreate = wal.Create

	// WALOpen replays an existing log and opens it for appending.
	WALOpen = wal.Open

	// WALReplay reads a log without opening it for writes.
	WALReplay = wal.Replay
)

// Engine checkpointing: durable journals of core.Run executions.
type (
	// CheckpointOptions tunes WithCheckpointing (snapshot cadence, fsync
	// policy, segment size).
	CheckpointOptions = core.CheckpointOptions

	// Snapshotter is implemented by algorithms whose state can be captured
	// and restored, letting Resume skip the replay prefix.
	Snapshotter = core.Snapshotter

	// HaltError reports a run suspended by WithHaltAfterRound; Resume
	// continues it.
	HaltError = core.HaltError

	// DivergenceError reports a resumed oracle failing to reproduce the
	// journaled prefix.
	DivergenceError = core.DivergenceError
)

var (
	// WithCheckpointing makes Run journal the execution to a WAL so a
	// killed run can be continued with Resume.
	WithCheckpointing = core.WithCheckpointing

	// WithHaltAfterRound deterministically simulates a kill at a round
	// boundary.
	WithHaltAfterRound = core.WithHaltAfterRound

	// Resume reconstructs a journaled execution and continues it to
	// completion, verifying the oracle reproduces the logged prefix.
	Resume = core.Resume

	// RegisterCheckpointValue registers a non-basic input/decision value
	// type for checkpoint encoding.
	RegisterCheckpointValue = core.RegisterCheckpointValue
)

// Crash-recovery round protocol: processes journal to durable logs, crash,
// restart under a supervisor, and re-enter the round structure via
// suspicion.
type (
	// RecoveryJournal is a process's durable round journal (emits are
	// write-through; views are volatile until Flush).
	RecoveryJournal = recovery.Journal

	// MemJournal is an in-memory RecoveryJournal with an explicit
	// durable/volatile split (the amnesia window).
	MemJournal = recovery.MemJournal

	// DiskJournal is a WAL-backed RecoveryJournal.
	DiskJournal = recovery.DiskJournal

	// RecoveryState is what a journal reconstructs after a crash.
	RecoveryState = recovery.State

	// RecoveryConfig shapes a crash-recovery execution.
	RecoveryConfig = recovery.Config

	// RecoveryOutcome is the result of a crash-recovery execution.
	RecoveryOutcome = recovery.Outcome

	// RecoveryAuditError is one audited safety violation.
	RecoveryAuditError = recovery.AuditError
)

var (
	// NewMemJournal returns an empty in-memory journal.
	NewMemJournal = recovery.NewMemJournal

	// OpenDiskJournal opens (or creates) a WAL-backed journal.
	OpenDiskJournal = recovery.OpenDiskJournal

	// RecoveryRun executes the crash-recovery round protocol.
	RecoveryRun = recovery.RunRounds

	// RecoveryAudit checks an outcome against the model predicate, the
	// per-round budget, validity, (f+1)-agreement, and the log-before-act
	// durability rule.
	RecoveryAudit = recovery.Audit
)

// Crash-and-recover chaos campaign.
type (
	// RecoverChaosConfig shapes a crash-and-recover chaos campaign.
	RecoverChaosConfig = chaos.RecoverConfig

	// RecoverChaosSummary aggregates a campaign's runs and violations.
	RecoverChaosSummary = chaos.RecoverSummary
)

// RecoverChaosRun executes a crash-and-recover campaign: many seeded
// executions, each with at least one crash (and usually a supervised
// restart), each audited for safety.
var RecoverChaosRun = chaos.RunRecover
