package rrfd_test

import (
	"fmt"

	rrfd "repro"
)

// Consensus under the detector-S RRFD of §2 item 6: up to n−1 processes may
// be suspected arbitrarily, but one (unknown) process never is, and the
// rotating-coordinator algorithm decides in n rounds.
func Example() {
	const n = 5
	inputs := []rrfd.Value{"red", "green", "blue", "cyan", "plum"}
	oracle := rrfd.SpareNeverSuspected(n, 3, 42)

	res, err := rrfd.Run(n, inputs, rrfd.RotatingCoordinator(), oracle)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("distinct decisions:", res.DistinctOutputs())
	fmt.Println("never suspected:", res.Trace.NeverSuspected())
	fmt.Println("predicate:", rrfd.NeverSuspectedExists().Check(res.Trace))
	// Output:
	// distinct decisions: 1
	// never suspected: {3}
	// predicate: <nil>
}

// Theorem 3.1: under the detector with per-round uncertainty below k, k-set
// agreement is solved in ONE round.
func ExampleOneRoundKSet() {
	const n, k = 8, 2
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := rrfd.Run(n, inputs, rrfd.OneRoundKSet(), rrfd.KSetUncertainty(n, k, 7))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("k-agreement:", rrfd.ValidateAgreement(res, inputs, k, 1))
	// Output:
	// rounds: 1
	// k-agreement: <nil>
}

// Predicates are first-class: check a recorded execution against a model,
// or prove implications exhaustively over tiny universes.
func ExamplePredicate() {
	tr, err := rrfd.CollectTrace(6, 8, rrfd.SnapshotChain(6, 2, 3))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("item 5:", rrfd.AtomicSnapshot(2).Check(tr))

	checked, satisfying, err := rrfd.ExhaustiveImplies(3, 1,
		rrfd.IdenticalSuspects(), rrfd.KSetDetector(1))
	fmt.Printf("eq5 ⇒ kset(1): %v over %d traces (%d satisfy eq5)\n", err == nil, checked, satisfying)
	// Output:
	// item 5: <nil>
	// eq5 ⇒ kset(1): true over 343 traces (7 satisfy eq5)
}

// The semi-synchronous model of §5: consensus in exactly two steps per
// process, versus the 2n-step baseline.
func ExampleRunTwoStep() {
	const n = 16
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	fast, err := rrfd.RunTwoStep(n, 1, rrfd.SemiConfig{Chooser: rrfd.SemiSeeded(1)}, inputs)
	if err != nil {
		fmt.Println(err)
		return
	}
	slow, err := rrfd.RunSemiSync(n, rrfd.SemiConfig{Chooser: rrfd.SemiRoundRobin()},
		rrfd.RelayFactory(), inputs)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("two-step:", fast.Outcome.MaxDecisionSteps(), "steps")
	fmt.Println("baseline:", slow.MaxDecisionSteps(), "steps")
	// Output:
	// two-step: 2 steps
	// baseline: 32 steps
}
