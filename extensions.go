package rrfd

import (
	"repro/internal/abd"
	"repro/internal/adversary"
	"repro/internal/immediate"
	"repro/internal/predicate"
	"repro/internal/view"
)

// ---- Full-information views (§1, §2 items 3-4, Cor 4.4 machinery) ----

type (
	// KnowledgeView is a process's full-information state: its input and
	// the recursive views it received, with the local-state chain.
	KnowledgeView = view.View

	// ViewHistory is each process's sequence of end-of-round views.
	ViewHistory = view.History

	// FIFOReception is one simulated reception of the non-round-based
	// system of §2 item 3.
	FIFOReception = view.Reception

	// WriteEmulation reports the §2 item 4 emulated-write analysis.
	WriteEmulation = view.WriteEmulation
)

var (
	// FullInfo is the full-information protocol factory.
	FullInfo = view.FullInfo

	// RunFullInfo runs the full-information protocol and returns final
	// views.
	RunFullInfo = view.Run

	// RunFullInfoHistory also returns the per-round view history.
	RunFullInfoHistory = view.RunHistory

	// ReconstructFIFO recreates the §2 item 3 simulated FIFO receptions
	// from a view history.
	ReconstructFIFO = view.ReconstructFIFO

	// CheckFIFO validates a reconstructed reception log.
	CheckFIFO = view.CheckFIFO

	// EmulateWrite analyses a history for §2 item 4's write-completion
	// structure and verifies the subsequent-round visibility claim.
	EmulateWrite = view.EmulateWrite

	// KnownByAll returns the processes every given view knows.
	KnownByAll = view.KnownByAll
)

// ---- Immediate snapshots (reference [4], the iterated model) ----

type (
	// ImmediateObject is a one-shot immediate snapshot handle.
	ImmediateObject = immediate.Object

	// ImmediateView is a Participate result.
	ImmediateView = immediate.View

	// ImmediateRoundOutcome reports an iterated-immediate-snapshot run.
	ImmediateRoundOutcome = immediate.RoundOutcome
)

var (
	// NewImmediate returns a handle to a named one-shot immediate
	// snapshot.
	NewImmediate = immediate.New

	// CheckImmediateViews validates self-inclusion, containment, and
	// immediacy over a set of views.
	CheckImmediateViews = immediate.CheckViews

	// RunImmediateRounds runs the iterated immediate snapshot and
	// returns its RRFD trace.
	RunImmediateRounds = immediate.RunRounds

	// Immediacy is the IIS-specific predicate clause.
	Immediacy = predicate.Immediacy

	// ImmediateSnapshot is the full IIS predicate.
	ImmediateSnapshot = predicate.ImmediateSnapshot

	// OrderedBlocks is the IIS adversary (ordered concurrency blocks).
	OrderedBlocks = adversary.OrderedBlocks
)

// ---- ABD register emulation (reference [22]) ----

type (
	// ABDRegister is a process's handle to the emulated SWMR atomic
	// register over message passing.
	ABDRegister = abd.Register

	// ABDOp is one logged register operation with its logical interval.
	ABDOp = abd.Op

	// ABDOutcome reports an emulation run.
	ABDOutcome = abd.Outcome

	// ABDScript is the per-process workload.
	ABDScript = abd.Script
)

var (
	// RunABD executes a workload over the emulated register (2f < n).
	RunABD = abd.Run

	// CheckAtomic validates an operation log against SWMR atomicity.
	CheckAtomic = abd.CheckAtomic
)
