package rrfd

import (
	"repro/internal/chaos"
	"repro/internal/faultnet"
)

// ChaosConfig shapes a randomized fault-injection campaign; see
// internal/chaos.Config for field semantics.
type ChaosConfig = chaos.Config

// ChaosSummary aggregates a campaign's runs and safety violations.
type ChaosSummary = chaos.Summary

// FaultPlan is a seeded, composable link-fault model; see
// internal/faultnet.Plan.
type FaultPlan = faultnet.Plan

// ChaosRun executes a chaos campaign: many seeded executions of k-set
// agreement over reliable links on a randomly faulty substrate, each
// checked against validity, k-agreement, and trace-predicate conformance.
func ChaosRun(cfg ChaosConfig) *ChaosSummary { return chaos.Run(cfg) }
