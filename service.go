package rrfd

import (
	"repro/internal/chaos"
	"repro/internal/serve"
)

// ---- Agreement service (internal/serve) ----

type (
	// ServiceConfig shapes one agreement-service node: mesh membership,
	// client listener, WAL directory and fsync policy, admission bound,
	// request deadline and instance TTL.
	ServiceConfig = serve.Config

	// ServiceServer is one serving node: it multiplexes many concurrent
	// k-set agreement instances over a single TCP mesh, journals
	// proposals and decisions before acknowledging them, and sheds load
	// past its in-flight bound.
	ServiceServer = serve.Server

	// ServiceStats counts one server's work: submits, decisions,
	// idempotent replays, sheds, abstains, evictions, recoveries.
	ServiceStats = serve.Stats

	// ServiceClientConfig shapes a retrying client: attempt budget,
	// per-attempt timeout, seeded backoff ladder.
	ServiceClientConfig = serve.ClientConfig

	// ServiceClient submits requests with idempotent request IDs and
	// seeded-jitter retries, so a retry can never double-decide.
	ServiceClient = serve.Client

	// ServiceResponse is one answer: decided, abstain (with gathered /
	// needed counts), overload (with table occupancy), or unknown.
	ServiceResponse = serve.Response

	// ServiceStatus enumerates response outcomes.
	ServiceStatus = serve.Status

	// ServiceOverloadError reports a submit shed at a full in-flight
	// instance table.
	ServiceOverloadError = serve.OverloadError

	// ServiceUnreachableError reports a client that exhausted its
	// attempt budget without a single server answer.
	ServiceUnreachableError = serve.UnreachableError

	// ServiceClusterConfig shapes an in-process loopback cluster for
	// tests, load tools and campaigns.
	ServiceClusterConfig = serve.ClusterConfig

	// ServiceCluster is n serving nodes on loopback with kill-and-restart
	// support.
	ServiceCluster = serve.Cluster

	// ServiceJournal is the durable content of one server's WAL, read
	// offline — the ground truth a chaos audit compares acknowledgements
	// against.
	ServiceJournal = serve.JournalState

	// ServeChaosConfig tunes the kill-and-recover service campaign.
	ServeChaosConfig = chaos.ServeConfig

	// ServeChaosSummary aggregates one campaign: acks, degraded
	// outcomes, the victim's durability audit, and any violations.
	ServeChaosSummary = chaos.ServeSummary

	// ServeChaosViolation is one broken service promise (lost-ack,
	// conflicting-retry, k-agreement, ...).
	ServeChaosViolation = chaos.ServeViolation
)

// Service response statuses.
const (
	ServiceDecided  = serve.StatusDecided
	ServiceAbstain  = serve.StatusAbstain
	ServiceOverload = serve.StatusOverload
	ServiceUnknown  = serve.StatusUnknown
)

var (
	// StartService brings one serving node up (replaying its WAL first).
	StartService = serve.Start

	// NewServiceClient connects a retrying client to one serving node.
	NewServiceClient = serve.NewClient

	// StartServiceCluster brings up n loopback serving nodes with
	// kill-and-restart support.
	StartServiceCluster = serve.StartCluster

	// ReadServiceJournal replays a server's WAL without starting it.
	ReadServiceJournal = serve.ReadJournal

	// RunServeChaos runs one kill-and-recover service campaign: seeded
	// client load, a mid-batch victim kill, a journal audit, a restart,
	// and a full idempotent replay.
	RunServeChaos = chaos.RunServe
)
