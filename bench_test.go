package rrfd_test

// One testing.B benchmark per experiment table (E01–E15, DESIGN.md §5).
// Each benchmark times the experiment's central workload and reports the
// domain quantity the paper predicts as a custom metric, so
// `go test -bench=. -benchmem` regenerates the shape of every result.

import (
	"testing"

	rrfd "repro"
	"repro/internal/exp"
)

func identityInputs(n int) []rrfd.Value {
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

func BenchmarkE01SyncOmission(b *testing.B) {
	n, f := 8, 3
	pred := rrfd.SendOmission(f)
	for i := 0; i < b.N; i++ {
		tr, err := rrfd.CollectTrace(n, 10, rrfd.Omission(n, f, 0.8, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE02CrashSubmodel(b *testing.B) {
	n, f := 8, 3
	crash, omission := rrfd.SyncCrash(f), rrfd.SendOmission(f)
	for i := 0; i < b.N; i++ {
		tr, err := rrfd.CollectTrace(n, 12, rrfd.Crash(n, f, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := crash.Check(tr); err != nil {
			b.Fatal(err)
		}
		if err := omission.Check(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE03AsyncRounds(b *testing.B) {
	n, f, rounds := 6, 2, 6
	pred := rrfd.PerRoundBudget(f)
	steps := 0
	for i := 0; i < b.N; i++ {
		out, err := rrfd.RunNetworkRounds(n, f, rounds, rrfd.NetConfig{Chooser: rrfd.NetSeeded(int64(i))}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(out.Trace); err != nil {
			b.Fatal(err)
		}
		steps += out.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N)/float64(rounds), "netops/round")
}

func BenchmarkE04SharedMemory(b *testing.B) {
	n, f := 7, 3
	pred := rrfd.SharedMemory(f)
	for i := 0; i < b.N; i++ {
		out, err := rrfd.RunNetworkRounds(n, f, 6, rrfd.NetConfig{Chooser: rrfd.NetSeeded(int64(i))}, nil)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := rrfd.TwoRoundsToSharedMemory(out.Trace)
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(sim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05Snapshot(b *testing.B) {
	n, f, rounds := 5, 2, 4
	pred := rrfd.AtomicSnapshot(f)
	for i := 0; i < b.N; i++ {
		out, err := rrfd.RunSnapshotRounds(n, f, rounds, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(int64(i))}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(out.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE06ConsensusS(b *testing.B) {
	n := 7
	inputs := identityInputs(n)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := rrfd.Run(n, inputs, rrfd.RotatingCoordinator(),
			rrfd.SpareNeverSuspected(n, rrfd.PID(i%n), int64(i)), rrfd.WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		if err := rrfd.ValidateAgreement(res, inputs, 1, n); err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/decision")
}

func BenchmarkE07OneRoundKSet(b *testing.B) {
	n, k := 16, 4
	inputs := identityInputs(n)
	distinct := 0
	for i := 0; i < b.N; i++ {
		res, err := rrfd.Run(n, inputs, rrfd.OneRoundKSet(),
			rrfd.KSetUncertainty(n, k, int64(i)), rrfd.WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		if err := rrfd.ValidateAgreement(res, inputs, k, 1); err != nil {
			b.Fatal(err)
		}
		distinct += res.DistinctOutputs()
	}
	b.ReportMetric(float64(distinct)/float64(b.N), "distinct/run")
	b.ReportMetric(1, "rounds/decision")
}

func BenchmarkE08KSetSharedMem(b *testing.B) {
	n, k := 6, 2
	for i := 0; i < b.N; i++ {
		emit := func(me rrfd.PID, r int, _ map[rrfd.PID]rrfd.Value, _ rrfd.Set) rrfd.Value {
			return int(me)
		}
		cfg := rrfd.SharedConfig{
			Chooser: rrfd.SeededChooser(int64(i)),
			Crash:   map[rrfd.PID]int{rrfd.PID(n - 1): i % 30},
		}
		out, err := rrfd.RunSnapshotRounds(n, k-1, 1, cfg, emit)
		if err != nil {
			b.Fatal(err)
		}
		distinct := make(map[rrfd.Value]bool)
		for _, views := range out.Views {
			if len(views) < 1 {
				continue
			}
			best := rrfd.PID(-1)
			for from := range views[0] {
				if best < 0 || from < best {
					best = from
				}
			}
			distinct[views[0][best]] = true
		}
		if len(distinct) > k {
			b.Fatalf("%d distinct outputs", len(distinct))
		}
	}
}

func BenchmarkE09DetectorFromKSet(b *testing.B) {
	n, k := 5, 2
	pred := rrfd.KSetDetector(k)
	for i := 0; i < b.N; i++ {
		tr, err := exp.DetectorFromKSet(n, k, 3, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(int64(i))})
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10OmissionSim(b *testing.B) {
	n, f, k := 8, 4, 2
	pred := rrfd.SendOmission(f)
	for i := 0; i < b.N; i++ {
		base, err := rrfd.CollectTrace(n, f/k+2, rrfd.SnapshotChain(n, k, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sim, err := rrfd.OmissionPrefix(base, f, k)
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(sim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11AdoptCommit(b *testing.B) {
	n := 4
	for i := 0; i < b.N; i++ {
		out, err := rrfd.RunShared(n, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(int64(i))},
			func(p *rrfd.SharedProc) (rrfd.Value, error) {
				o, err := rrfd.AdoptCommit(p, "b", int(p.Me)%2)
				if err != nil {
					return nil, err
				}
				return o, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		var committed rrfd.Value
		for _, v := range out.Values {
			o := v.(rrfd.AdoptCommitOutcome)
			if o.Grade == rrfd.Commit {
				if committed != nil && committed != o.Value {
					b.Fatal("two committed values")
				}
				committed = o.Value
			}
		}
	}
	b.ReportMetric(float64(2*n+2), "ops/proc")
}

func BenchmarkE12CrashSim(b *testing.B) {
	n, f, k := 6, 4, 2
	rounds := f / k
	inputs := identityInputs(n)
	pred := rrfd.SyncCrash(f)
	steps := 0
	for i := 0; i < b.N; i++ {
		res, err := rrfd.CrashSync(n, f, k, rounds,
			rrfd.SharedConfig{Chooser: rrfd.SeededChooser(int64(i))},
			rrfd.FloodMin(rounds), inputs)
		if err != nil {
			b.Fatal(err)
		}
		if err := pred.Check(res.Result.Trace); err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N)/float64(rounds), "memops/syncround")
}

func BenchmarkE13LowerBound(b *testing.B) {
	n, f, k := 10, 4, 2
	inputs := identityInputs(n)
	full, trunc := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := rrfd.Run(n, inputs, rrfd.FloodMin(f/k+1), rrfd.ChainCrash(n, f, k), rrfd.WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		full += res.DistinctOutputs()
		res, err = rrfd.Run(n, inputs, rrfd.FloodMin(f/k), rrfd.ChainCrash(n, f, k), rrfd.WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		trunc += res.DistinctOutputs()
	}
	b.ReportMetric(float64(full)/float64(b.N), "distinct@f/k+1")
	b.ReportMetric(float64(trunc)/float64(b.N), "distinct@f/k")
}

func BenchmarkE14SemiSync(b *testing.B) {
	n := 32
	inputs := identityInputs(n)
	fastSteps, slowSteps := 0, 0
	for i := 0; i < b.N; i++ {
		fast, err := rrfd.RunTwoStep(n, 1, rrfd.SemiConfig{Chooser: rrfd.SemiSeeded(int64(i))}, inputs)
		if err != nil {
			b.Fatal(err)
		}
		fastSteps += fast.Outcome.MaxDecisionSteps()
		slow, err := rrfd.RunSemiSync(n, rrfd.SemiConfig{Chooser: rrfd.SemiRoundRobin()},
			rrfd.RelayFactory(), inputs)
		if err != nil {
			b.Fatal(err)
		}
		slowSteps += slow.MaxDecisionSteps()
	}
	b.ReportMetric(float64(fastSteps)/float64(b.N), "steps/2step")
	b.ReportMetric(float64(slowSteps)/float64(b.N), "steps/relay")
}

func BenchmarkE15Lattice(b *testing.B) {
	n := 8
	snap, shared := rrfd.AtomicSnapshot(3), rrfd.SharedMemory(3)
	for i := 0; i < b.N; i++ {
		tr, err := rrfd.CollectTrace(n, 8, rrfd.SnapshotChain(n, 3, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := snap.Check(tr); err != nil {
			b.Fatal(err)
		}
		if err := shared.Check(tr); err != nil {
			b.Fatal(err)
		}
	}
}
