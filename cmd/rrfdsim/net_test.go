package main

import (
	"strings"
	"testing"
)

func TestTailBufferKeepsTail(t *testing.T) {
	tb := &tailBuffer{max: 10}
	if got := tb.String(); got != "" {
		t.Fatalf("empty buffer renders %q", got)
	}
	tb.Write([]byte("short"))
	if got := tb.String(); got != "short" {
		t.Fatalf("got %q, want short", got)
	}
	// Overflow: only the last max bytes survive, marked as clipped.
	tb.Write([]byte("0123456789abcdef"))
	got := tb.String()
	if !strings.HasSuffix(got, "6789abcdef") {
		t.Fatalf("tail lost: %q", got)
	}
	if !strings.HasPrefix(got, "…") {
		t.Fatalf("clipped tail not marked: %q", got)
	}
	if len([]rune(got)) != 11 {
		t.Fatalf("tail length %d runes, want 10 + marker: %q", len([]rune(got)), got)
	}
}

func TestTailBufferTrimsWhitespace(t *testing.T) {
	tb := &tailBuffer{max: 64}
	tb.Write([]byte("panic: boom\n\n"))
	if got := tb.String(); got != "panic: boom" {
		t.Fatalf("got %q", got)
	}
	if (&tailBuffer{max: 4, buf: []byte("  \n ")}).String() != "" {
		t.Fatalf("whitespace-only buffer should render empty")
	}
}

func TestFailDetailFormatting(t *testing.T) {
	quiet := &netChild{stderr: &tailBuffer{max: 64}}
	if d := quiet.failDetail(); d != "" {
		t.Fatalf("silent child produced detail %q", d)
	}
	loud := &netChild{stderr: &tailBuffer{max: 64}}
	loud.stderr.Write([]byte("net-child: adopt listener: bad file\n"))
	d := loud.failDetail()
	if !strings.HasPrefix(d, "; stderr tail:\n") {
		t.Fatalf("detail prefix wrong: %q", d)
	}
	if !strings.Contains(d, "adopt listener: bad file") {
		t.Fatalf("detail lost the message: %q", d)
	}
}
