package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	rrfd "repro"
)

// runMC executes the systematic model checker: exhaustive (or bounded)
// exploration of every adversary schedule an enumerable model allows over
// a small system, checking validity and k-agreement on every schedule.
// With -model, the enumerator is compiled from the model expression and
// every explored trace is additionally checked for model membership; a
// disjunction is explored branch by branch (mixing branches per round
// could satisfy neither disjunct). A violation prints a shrunk,
// replayable counterexample and exits non-zero; -mc-replay re-executes
// one recorded schedule.
func runMC(cfg config, tel *rrfd.Telemetry, w io.Writer) error {
	n, f, k := cfg.n, cfg.f, cfg.k

	// Each exploration is one enumerator: the bespoke -system families are
	// single-branch; a compiled -model contributes one per disjunct.
	type exploration struct {
		label string
		enum  rrfd.AdversaryEnum
	}
	var (
		exps      []exploration
		modelPred rrfd.Predicate
	)
	if cfg.model != "" {
		expr, err := rrfd.ResolveModel(cfg.model, rrfd.ModelParams{N: n, F: f, K: k, Stab: modelStab})
		if err != nil {
			return err
		}
		branches, err := expr.EnumBranches(n)
		if err != nil {
			return err
		}
		modelPred = expr.Compile()
		for _, b := range branches {
			exps = append(exps, exploration{label: b.Expr.String(), enum: b.Enum})
		}
	} else {
		var (
			enum rrfd.AdversaryEnum
			err  error
		)
		switch cfg.system {
		case "async":
			enum, err = rrfd.EnumPerRoundBudget(n, f)
		case "kset":
			enum, err = rrfd.EnumKSet(n, k)
		case "omission":
			enum, err = rrfd.EnumSendOmission(n, f)
		case "crash":
			enum, err = rrfd.EnumSyncCrash(n, f)
		default:
			return fmt.Errorf("-mc enumerates systems async|kset|omission|crash, got %q", cfg.system)
		}
		if err != nil {
			return err
		}
		exps = []exploration{{label: cfg.system, enum: enum}}
	}

	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}

	var factory rrfd.Factory
	bound := k
	switch cfg.alg {
	case "qkset":
		// Quorum-gated k-set decides among at most f+1 distinct minima.
		bound = f + 1
		if cfg.bug {
			factory = rrfd.QuorumKSetBuggy(f)
		} else {
			factory = rrfd.QuorumKSet(f)
		}
	case "kset":
		factory = rrfd.OneRoundKSet()
	case "floodmin":
		r := f/k + 1
		if cfg.rounds > 0 {
			r = cfg.rounds
		}
		factory = rrfd.FloodMin(r)
	default:
		return fmt.Errorf("-mc supports algorithms qkset|kset|floodmin, got %q", cfg.alg)
	}
	if cfg.bug && cfg.alg != "qkset" {
		return fmt.Errorf("-bug plants the wrong-quorum decision rule: use -alg qkset")
	}

	makeSpec := func(e exploration, tracer *rrfd.Tracer) rrfd.MCRunSpec {
		spec := rrfd.MCRunSpec{
			N:       n,
			Inputs:  inputs,
			Factory: factory,
			Oracle: func(ctx *rrfd.MCCtx) rrfd.Oracle {
				return rrfd.EnumeratedAdversary(ctx, n, e.enum)
			},
			Props: []rrfd.MCProperty{
				rrfd.MCValidity(inputs),
				rrfd.MCKAgreement(bound),
			},
			// The compiled membership check is a path property, which makes
			// state-hash pruning unsound: -model explorations run unpruned.
			Mark: cfg.model == "",
		}
		if cfg.model != "" {
			spec.Model = &modelPred
		}
		if tracer != nil {
			spec.Observer = tracer
		}
		return spec
	}

	if cfg.mcReplay != "" {
		if len(exps) > 1 {
			return fmt.Errorf("-mc-replay fixes one choice sequence, which is ambiguous over the %d branches of model %q: replay against the single branch expression instead", len(exps), cfg.model)
		}
		// A replayed counterexample is a single deterministic execution, so
		// it can carry a causal tracer; validate() rejects -perfetto for the
		// exploration itself (thousands of interleaved schedules).
		var tracer *rrfd.Tracer
		if cfg.perfetto != "" {
			tracer = rrfd.NewTracer()
		}
		run := rrfd.MCCheckRun(makeSpec(exps[0], tracer))
		choices, err := rrfd.ParseChoices(cfg.mcReplay)
		if err != nil {
			return err
		}
		rerr := rrfd.MCReplay(choices, run)
		if tracer != nil {
			if err := tracer.ExportFile(cfg.perfetto); err != nil {
				return fmt.Errorf("write perfetto trace: %w", err)
			}
			fmt.Fprintf(w, "perfetto trace written to %s\n", cfg.perfetto)
		}
		if rerr != nil {
			fmt.Fprintf(w, "replay %s: violation reproduced: %v\n", cfg.mcReplay, rerr)
			return fmt.Errorf("mc: replayed schedule violates its properties")
		}
		fmt.Fprintf(w, "replay %s: no violation\n", cfg.mcReplay)
		return nil
	}

	var metrics *rrfd.Metrics
	var events *rrfd.EventLog
	var eventsBuf *bufio.Writer
	if tel != nil {
		metrics = tel.Metrics
	}
	if cfg.eventsFile != "" {
		file, err := os.Create(cfg.eventsFile)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		defer file.Close()
		eventsBuf = bufio.NewWriter(file)
		events = rrfd.NewEventLog(eventsBuf)
	}

	opts := rrfd.MCOptions{
		MaxSchedules: cfg.mcMax,
		MaxDepth:     cfg.mcDepth,
		Samples:      cfg.mcSamples,
		Seed:         cfg.seed,
		Workers:      cfg.workers,
	}
	if observer := rrfd.MultiObserver(metrics, events); observer != nil {
		opts.Observer = observer
	}

	if cfg.model != "" {
		fmt.Fprintf(w, "mc: model=%q alg=%s n=%d f=%d k=%d bound=%d branches=%d\n",
			cfg.model, cfg.alg, n, f, k, bound, len(exps))
	} else {
		fmt.Fprintf(w, "mc: system=%s alg=%s n=%d f=%d k=%d bound=%d\n",
			cfg.system, cfg.alg, n, f, k, bound)
	}

	start := time.Now()
	var (
		schedules int
		cx        *rrfd.MCCounterexample
		cxLabel   string
		exhausted = true
		limitHit  bool
	)
	for _, e := range exps {
		res, err := rrfd.MCExplore(opts, rrfd.MCCheckRun(makeSpec(e, nil)))
		if err != nil {
			return err
		}
		schedules += res.Schedules
		if cfg.model != "" {
			fmt.Fprintf(w, "branch %q: schedules=%d pruned=%d sampled=%d symmetry_skips=%d sleep_skips=%d max_depth=%d\n",
				e.label, res.Schedules, res.Pruned, res.Sampled, res.SymmetrySkips, res.SleepSkips, res.Stats.MaxDepth)
		} else {
			fmt.Fprintf(w, "schedules=%d pruned=%d sampled=%d symmetry_skips=%d sleep_skips=%d max_depth=%d\n",
				res.Schedules, res.Pruned, res.Sampled, res.SymmetrySkips, res.SleepSkips, res.Stats.MaxDepth)
		}
		exhausted = exhausted && res.Exhausted
		limitHit = limitHit || res.LimitHit
		if res.Counterexample != nil {
			cx, cxLabel = res.Counterexample, e.label
			break
		}
	}
	// Exploration throughput goes to the telemetry registry only — the
	// printed report stays wall-time free, so fixed seeds keep producing
	// byte-identical output.
	if tel != nil {
		if secs := time.Since(start).Seconds(); secs > 0 {
			tel.Hist.Get("mc_schedules_per_sec").Record(int64(float64(schedules) / secs))
		}
	}

	if events != nil {
		if err := eventsBuf.Flush(); err != nil {
			return fmt.Errorf("flush events: %w", err)
		}
		if err := events.Err(); err != nil {
			return fmt.Errorf("write events: %w", err)
		}
		fmt.Fprintf(w, "%d events written to %s\n", events.Lines(), cfg.eventsFile)
	}
	if metrics != nil && cfg.metrics {
		b, err := metrics.Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics:\n%s\n", b)
	}

	switch {
	case cx != nil:
		fmt.Fprintf(w, "violation: %v\n", cx.Err)
		replay := rrfd.FormatChoices(cx.Choices)
		fmt.Fprintf(w, "counterexample (%d choices, shrunk from %d): %s\n",
			len(cx.Choices), len(cx.FirstFound), replay)
		if cfg.model != "" {
			fmt.Fprintf(w, "replay with: -mc -model '%s' -mc-replay %s (same alg flags)\n", cxLabel, replay)
		} else {
			fmt.Fprintf(w, "replay with: -mc -mc-replay %s (same system/alg flags)\n", replay)
		}
		return fmt.Errorf("mc: property violated")
	case exhausted:
		fmt.Fprintln(w, "exhausted: every schedule satisfies the properties")
	case limitHit:
		fmt.Fprintf(w, "limit: %d schedules run without exhausting the space (raise -mc-max)\n", schedules)
	default:
		fmt.Fprintf(w, "bounded: sampled beyond depth %d, no violation found\n", cfg.mcDepth)
	}
	return nil
}
