package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	rrfd "repro"
)

// runMC executes the systematic model checker: exhaustive (or bounded)
// exploration of every adversary schedule an enumerable model allows over
// a small system, checking validity and k-agreement on every schedule.
// A violation prints a shrunk, replayable counterexample and exits
// non-zero; -mc-replay re-executes one recorded schedule.
func runMC(cfg config, tel *rrfd.Telemetry, w io.Writer) error {
	n, f, k := cfg.n, cfg.f, cfg.k

	var (
		enum rrfd.AdversaryEnum
		err  error
	)
	switch cfg.system {
	case "async":
		enum, err = rrfd.EnumPerRoundBudget(n, f)
	case "kset":
		enum, err = rrfd.EnumKSet(n, k)
	case "omission":
		enum, err = rrfd.EnumSendOmission(n, f)
	case "crash":
		enum, err = rrfd.EnumSyncCrash(n, f)
	default:
		return fmt.Errorf("-mc enumerates systems async|kset|omission|crash, got %q", cfg.system)
	}
	if err != nil {
		return err
	}

	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}

	var factory rrfd.Factory
	bound := k
	switch cfg.alg {
	case "qkset":
		// Quorum-gated k-set decides among at most f+1 distinct minima.
		bound = f + 1
		if cfg.bug {
			factory = rrfd.QuorumKSetBuggy(f)
		} else {
			factory = rrfd.QuorumKSet(f)
		}
	case "kset":
		factory = rrfd.OneRoundKSet()
	case "floodmin":
		r := f/k + 1
		if cfg.rounds > 0 {
			r = cfg.rounds
		}
		factory = rrfd.FloodMin(r)
	default:
		return fmt.Errorf("-mc supports algorithms qkset|kset|floodmin, got %q", cfg.alg)
	}
	if cfg.bug && cfg.alg != "qkset" {
		return fmt.Errorf("-bug plants the wrong-quorum decision rule: use -alg qkset")
	}

	spec := rrfd.MCRunSpec{
		N:       n,
		Inputs:  inputs,
		Factory: factory,
		Oracle: func(ctx *rrfd.MCCtx) rrfd.Oracle {
			return rrfd.EnumeratedAdversary(ctx, n, enum)
		},
		Props: []rrfd.MCProperty{
			rrfd.MCValidity(inputs),
			rrfd.MCKAgreement(bound),
		},
		Mark: true,
	}

	// A replayed counterexample is a single deterministic execution, so it
	// can carry a causal tracer; validate() rejects -perfetto for the
	// exploration itself (thousands of interleaved schedules).
	var tracer *rrfd.Tracer
	if cfg.mcReplay != "" && cfg.perfetto != "" {
		tracer = rrfd.NewTracer()
		spec.Observer = tracer
	}
	run := rrfd.MCCheckRun(spec)

	if cfg.mcReplay != "" {
		choices, err := rrfd.ParseChoices(cfg.mcReplay)
		if err != nil {
			return err
		}
		rerr := rrfd.MCReplay(choices, run)
		if tracer != nil {
			if err := tracer.ExportFile(cfg.perfetto); err != nil {
				return fmt.Errorf("write perfetto trace: %w", err)
			}
			fmt.Fprintf(w, "perfetto trace written to %s\n", cfg.perfetto)
		}
		if rerr != nil {
			fmt.Fprintf(w, "replay %s: violation reproduced: %v\n", cfg.mcReplay, rerr)
			return fmt.Errorf("mc: replayed schedule violates its properties")
		}
		fmt.Fprintf(w, "replay %s: no violation\n", cfg.mcReplay)
		return nil
	}

	var metrics *rrfd.Metrics
	var events *rrfd.EventLog
	var eventsBuf *bufio.Writer
	if tel != nil {
		metrics = tel.Metrics
	}
	if cfg.eventsFile != "" {
		file, err := os.Create(cfg.eventsFile)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		defer file.Close()
		eventsBuf = bufio.NewWriter(file)
		events = rrfd.NewEventLog(eventsBuf)
	}

	opts := rrfd.MCOptions{
		MaxSchedules: cfg.mcMax,
		MaxDepth:     cfg.mcDepth,
		Samples:      cfg.mcSamples,
		Seed:         cfg.seed,
		Workers:      cfg.workers,
	}
	if observer := rrfd.MultiObserver(metrics, events); observer != nil {
		opts.Observer = observer
	}

	start := time.Now()
	res, err := rrfd.MCExplore(opts, run)
	if err != nil {
		return err
	}
	// Exploration throughput goes to the telemetry registry only — the
	// printed report stays wall-time free, so fixed seeds keep producing
	// byte-identical output.
	if tel != nil {
		if secs := time.Since(start).Seconds(); secs > 0 {
			tel.Hist.Get("mc_schedules_per_sec").Record(int64(float64(res.Schedules) / secs))
		}
	}

	fmt.Fprintf(w, "mc: system=%s alg=%s n=%d f=%d k=%d bound=%d\n",
		cfg.system, cfg.alg, n, f, k, bound)
	fmt.Fprintf(w, "schedules=%d pruned=%d sampled=%d symmetry_skips=%d sleep_skips=%d max_depth=%d\n",
		res.Schedules, res.Pruned, res.Sampled, res.SymmetrySkips, res.SleepSkips, res.Stats.MaxDepth)

	if events != nil {
		if err := eventsBuf.Flush(); err != nil {
			return fmt.Errorf("flush events: %w", err)
		}
		if err := events.Err(); err != nil {
			return fmt.Errorf("write events: %w", err)
		}
		fmt.Fprintf(w, "%d events written to %s\n", events.Lines(), cfg.eventsFile)
	}
	if metrics != nil && cfg.metrics {
		b, err := metrics.Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics:\n%s\n", b)
	}

	switch {
	case res.Counterexample != nil:
		cx := res.Counterexample
		fmt.Fprintf(w, "violation: %v\n", cx.Err)
		replay := rrfd.FormatChoices(cx.Choices)
		fmt.Fprintf(w, "counterexample (%d choices, shrunk from %d): %s\n",
			len(cx.Choices), len(cx.FirstFound), replay)
		fmt.Fprintf(w, "replay with: -mc -mc-replay %s (same system/alg flags)\n", replay)
		return fmt.Errorf("mc: property violated")
	case res.Exhausted:
		fmt.Fprintln(w, "exhausted: every schedule satisfies the properties")
	case res.LimitHit:
		fmt.Fprintf(w, "limit: %d schedules run without exhausting the space (raise -mc-max)\n", res.Schedules)
	default:
		fmt.Fprintf(w, "bounded: sampled beyond depth %d, no violation found\n", cfg.mcDepth)
	}
	return nil
}
