package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readTraceEvents parses a Perfetto trace file and returns its events.
func readTraceEvents(t *testing.T, path string) []map[string]any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	return file.TraceEvents
}

func TestValidateRejectsPerfettoMCWithoutReplay(t *testing.T) {
	cfg := baseConfig()
	cfg.mc = true
	cfg.system = "async"
	cfg.perfetto = "t.json"
	err := validate(cfg)
	if err == nil || !strings.Contains(err.Error(), "-mc-replay") {
		t.Fatalf("want an error pointing at -mc-replay, got %v", err)
	}
}

func TestValidateRejectsPerfettoChaosRecover(t *testing.T) {
	cfg := baseConfig()
	cfg.chaosRecover = true
	cfg.perfetto = "t.json"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -perfetto with -chaos-recover")
	}
}

// TestRunPerfettoSingleRun: a traced single execution writes a valid
// Perfetto file, byte-identical across reruns of the same seed.
func TestRunPerfettoSingleRun(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		cfg := baseConfig()
		cfg.perfetto = p
		var buf bytes.Buffer
		if err := run(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "perfetto trace written to") {
			t.Fatalf("output missing the perfetto report:\n%s", buf.String())
		}
		readTraceEvents(t, p)
	}
	a, _ := os.ReadFile(paths[0])
	b, _ := os.ReadFile(paths[1])
	if !bytes.Equal(a, b) {
		t.Fatal("perfetto trace differs between identical runs")
	}
}

// TestRunChaosPerfetto: with the planted quorum bug the campaign fails AND
// replays its first violation into a valid Perfetto trace; without
// violations the file is explicitly skipped, not silently empty.
func TestRunChaosPerfetto(t *testing.T) {
	cfg := baseConfig()
	cfg.chaos = true
	cfg.n, cfg.f, cfg.k = 6, 2, 3
	cfg.runs, cfg.seed = 60, 13
	cfg.drop, cfg.omit, cfg.partition = 1.0, 0.8, 0.6
	cfg.watchdog = 300
	cfg.bug = true
	cfg.perfetto = filepath.Join(t.TempDir(), "cx.json")
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("planted bug campaign should fail with violations, got %v", err)
	}
	if !strings.Contains(buf.String(), "perfetto trace of violation") {
		t.Fatalf("output missing the violation trace report:\n%s", buf.String())
	}
	readTraceEvents(t, cfg.perfetto)

	cfg.bug = false
	cfg.drop = 0.2
	cfg.omit, cfg.partition = 0, 0
	cfg.watchdog = 0
	buf.Reset()
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no violation to trace") {
		t.Fatalf("clean campaign should report the skipped trace:\n%s", buf.String())
	}
}

// TestRunMCReplayPerfetto: replaying the known counterexample of the
// planted wrong-quorum bug reproduces the violation and still writes the
// trace of the replayed schedule.
func TestRunMCReplayPerfetto(t *testing.T) {
	cfg := baseConfig()
	cfg.mc = true
	cfg.system, cfg.alg = "async", "qkset"
	cfg.n, cfg.f, cfg.k = 3, 1, 2
	cfg.bug = true
	cfg.mcReplay = "c1:4"
	cfg.perfetto = filepath.Join(t.TempDir(), "mc.json")
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "replayed schedule") {
		t.Fatalf("replay of the known counterexample should fail, got %v", err)
	}
	if !strings.Contains(buf.String(), "violation reproduced") {
		t.Fatalf("output missing the reproduction report:\n%s", buf.String())
	}
	readTraceEvents(t, cfg.perfetto)
}

// TestRunTelemetryEndpoint: -telemetry binds synchronously — a live run
// reports the listening address, an occupied port is a hard error.
func TestRunTelemetryEndpoint(t *testing.T) {
	cfg := baseConfig()
	cfg.telemetry = "127.0.0.1:0"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "telemetry listening on http://127.0.0.1:") {
		t.Fatalf("output missing the endpoint report:\n%s", buf.String())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg.telemetry = ln.Addr().String()
	buf.Reset()
	err = run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "telemetry listener") {
		t.Fatalf("occupied address should fail the run, got %v", err)
	}
}
