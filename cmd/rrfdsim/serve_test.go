package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateChaosServeFlagCombos(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*config)
	}{
		{"with chaos", func(c *config) { c.chaos = true }},
		{"with chaos-recover", func(c *config) { c.chaosRecover = true }},
		{"with mc", func(c *config) { c.mc = true }},
		{"with tcp substrate", func(c *config) { c.substrate = "tcp" }},
		{"with trace", func(c *config) { c.dumpTrace = true }},
		{"with outfile", func(c *config) { c.outFile = "t.json" }},
		{"with perfetto", func(c *config) { c.perfetto = "t.json" }},
		{"with checkpoint", func(c *config) { c.ckptDir = "/tmp/ck" }},
		{"with resume", func(c *config) { c.resumeDir = "/tmp/ck" }},
	} {
		cfg := baseConfig()
		cfg.chaosServe = true
		tc.mut(&cfg)
		if err := validate(cfg); err == nil {
			t.Errorf("%s: validate accepted the combination", tc.name)
		}
	}
}

func TestRunChaosServeClean(t *testing.T) {
	cfg := config{n: 3, f: 1, k: 2, seed: 7, chaosServe: true}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("clean campaign errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

func TestRunChaosServeBugFailsLoudly(t *testing.T) {
	cfg := config{n: 3, f: 1, k: 2, seed: 7, chaosServe: true, bug: true}
	var out bytes.Buffer
	err := run(cfg, &out)
	if err == nil {
		t.Fatalf("planted ack-before-journal bug went undetected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "service violation") {
		t.Fatalf("err = %v, want a service-violation error", err)
	}
	if !strings.Contains(out.String(), "lost-ack") {
		t.Fatalf("violation report lacks lost-ack:\n%s", out.String())
	}
}
