package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseConfig() config {
	return config{system: "kset", alg: "kset", n: 8, f: 2, k: 2, seed: 1}
}

func TestValidateRejectsOutFileWithoutTrace(t *testing.T) {
	cfg := baseConfig()
	cfg.noTrace = true
	cfg.outFile = "trace.json"
	err := validate(cfg)
	if err == nil {
		t.Fatal("validate accepted -o with -notrace")
	}
	if !strings.Contains(err.Error(), "-notrace") {
		t.Fatalf("error should point at -notrace: %v", err)
	}
}

func TestValidateRejectsDumpTraceWithoutTrace(t *testing.T) {
	cfg := baseConfig()
	cfg.noTrace = true
	cfg.dumpTrace = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -trace with -notrace")
	}
}

func TestValidateRejectsBadN(t *testing.T) {
	cfg := baseConfig()
	cfg.n = 0
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted n=0")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := baseConfig()
	cfg.noTrace = true
	cfg.outFile = filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(cfg, &buf); err == nil {
		t.Fatal("run accepted -o with -notrace")
	}
	if _, err := os.Stat(cfg.outFile); !os.IsNotExist(err) {
		t.Fatal("trace file should not have been created")
	}
}

func TestRunUnknownSystemAndAlg(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig()
	cfg.system = "nope"
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("want unknown system error, got %v", err)
	}
	cfg = baseConfig()
	cfg.alg = "nope"
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("want unknown algorithm error, got %v", err)
	}
}

// TestRunMetricsAndEvents drives the acceptance scenario end to end:
// kset system + kset algorithm with -metrics and -events, then checks
// that the JSONL event stream is consistent with the printed metrics.
func TestRunMetricsAndEvents(t *testing.T) {
	cfg := baseConfig()
	cfg.metrics = true
	cfg.eventsFile = filepath.Join(t.TempDir(), "events.jsonl")
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rounds_to_decision", "suspicions_total", "dset_size_hist", "events written to"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Pull the rounds count out of the metrics snapshot.
	idx := strings.Index(out, "metrics:\n")
	if idx < 0 {
		t.Fatalf("no metrics block:\n%s", out)
	}
	var snap struct {
		Rounds int64 `json:"rounds"`
		Runs   int64 `json:"runs"`
	}
	dec := json.NewDecoder(strings.NewReader(out[idx+len("metrics:\n"):]))
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("decode metrics snapshot: %v", err)
	}
	if snap.Runs != 1 {
		t.Fatalf("runs = %d, want 1", snap.Runs)
	}

	// Count round_start events in the JSONL file; it must match the
	// metrics round counter (and, transitively, the trace length).
	f, err := os.Open(cfg.eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var roundStarts, runEnds int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch ev.Ev {
		case "round_start":
			roundStarts++
		case "run_end":
			runEnds++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if roundStarts != snap.Rounds {
		t.Fatalf("round_start events = %d, metrics rounds = %d", roundStarts, snap.Rounds)
	}
	if runEnds != 1 {
		t.Fatalf("run_end events = %d, want 1", runEnds)
	}
}

func TestRunWritesTraceFile(t *testing.T) {
	cfg := baseConfig()
	cfg.outFile = filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(cfg.outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatal("trace file is not valid JSON")
	}
}

func TestRunCollectOnly(t *testing.T) {
	cfg := baseConfig()
	cfg.alg = "none"
	cfg.rounds = 4
	cfg.metrics = true
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "collected 4 rounds") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunChaosClean(t *testing.T) {
	cfg := config{n: 6, f: 2, k: 3, seed: 7, chaos: true, runs: 10, drop: 0.3}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("clean campaign errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

func TestRunChaosBugFailsLoudly(t *testing.T) {
	cfg := config{n: 6, f: 2, k: 3, seed: 13, chaos: true, runs: 40,
		drop: 1.0, omit: 0.8, partition: 0.6, watchdog: 300, bug: true}
	var out bytes.Buffer
	err := run(cfg, &out)
	if err == nil {
		t.Fatalf("planted bug went undetected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "safety violation") {
		t.Fatalf("err = %v, want a safety-violation error", err)
	}
	for _, want := range []string{"replay: sched-seed=", "minimized:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunChaosMetricsAndEvents(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "chaos.jsonl")
	cfg := config{n: 6, f: 2, k: 3, seed: 7, chaos: true, runs: 5, drop: 0.3,
		metrics: true, eventsFile: eventsPath}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"faults"`) || !strings.Contains(out.String(), `"retransmissions"`) {
		t.Fatalf("metrics lack fault counters:\n%s", out.String())
	}
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("faultnet.drop")) || !bytes.Contains(data, []byte("rlink.retransmit")) {
		t.Fatal("events file lacks fault/link events")
	}
	// JSONL: every line decodes.
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
	}
}

// TestRunChaosWorkersByteIdentical drives the -workers flag end to end:
// the same campaign at workers=1 and workers=8 must print the same bytes.
func TestRunChaosWorkersByteIdentical(t *testing.T) {
	campaign := func(workers int) string {
		cfg := config{n: 6, f: 2, k: 3, seed: 7, chaos: true, runs: 10,
			drop: 0.3, workers: workers}
		var out bytes.Buffer
		if err := run(cfg, &out); err != nil {
			t.Fatalf("workers=%d campaign errored: %v\n%s", workers, err, out.String())
		}
		return out.String()
	}
	want := campaign(1)
	if got := campaign(8); got != want {
		t.Fatalf("workers=8 output differs:\n%s\nvs workers=1:\n%s", got, want)
	}
}

func TestValidateRejectsBadWorkers(t *testing.T) {
	cfg := config{n: 6, chaos: true, workers: -1}
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -workers -1")
	}
	cfg = config{n: 6, workers: 8}
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -workers without a campaign mode")
	}
}

func TestValidateRejectsChaosWithTrace(t *testing.T) {
	cfg := config{n: 6, chaos: true, dumpTrace: true}
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -chaos with -trace")
	}
	cfg = config{n: 6, chaos: true, outFile: "x.json"}
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -chaos with -o")
	}
}

// TestRunKillResumeIdenticalTrace is the acceptance round trip: a run
// journaled with -checkpoint and killed mid-way by -kill-after, then
// continued with -resume, must produce byte-for-byte the trace of an
// uninterrupted run with the same flags.
func TestRunKillResumeIdenticalTrace(t *testing.T) {
	dir := t.TempDir()
	base := config{system: "crash", alg: "floodmin", n: 8, f: 3, k: 2, seed: 5, snapEvery: 2}

	full := base
	full.outFile = filepath.Join(dir, "full.json")
	var out bytes.Buffer
	if err := run(full, &out); err != nil {
		t.Fatal(err)
	}

	killed := base
	killed.ckptDir = filepath.Join(dir, "ck")
	killed.killAfter = 1
	out.Reset()
	if err := run(killed, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "halted after round 1") {
		t.Fatalf("kill run output:\n%s", out.String())
	}

	resumed := base
	resumed.resumeDir = killed.ckptDir
	resumed.outFile = filepath.Join(dir, "resumed.json")
	out.Reset()
	if err := run(resumed, &out); err != nil {
		t.Fatalf("resume: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "resumed from") {
		t.Fatalf("resume output:\n%s", out.String())
	}

	a, err := os.ReadFile(full.outFile)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed.outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed trace differs from uninterrupted trace:\n%s\nvs\n%s", a, b)
	}
}

func TestValidateRecoveryFlagCombos(t *testing.T) {
	cfg := baseConfig()
	cfg.killAfter = 2
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -kill-after without -checkpoint")
	}
	cfg = baseConfig()
	cfg.ckptDir = "a"
	cfg.resumeDir = "b"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -resume with -checkpoint")
	}
	cfg = baseConfig()
	cfg.alg = "none"
	cfg.ckptDir = "a"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -checkpoint with -alg none")
	}
	cfg = baseConfig()
	cfg.chaos = true
	cfg.chaosRecover = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -chaos with -chaos-recover")
	}
	cfg = config{n: 5, chaosRecover: true, dumpTrace: true}
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -chaos-recover with -trace")
	}
}

func TestRunChaosRecoverClean(t *testing.T) {
	cfg := config{n: 5, f: 1, chaosRecover: true, runs: 25, seed: 42}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("clean campaign errored: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), " 0 violations") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

func TestRunChaosRecoverAmnesiaBugFailsLoudly(t *testing.T) {
	cfg := config{n: 5, f: 1, chaosRecover: true, runs: 40, seed: 42, bug: true}
	var out bytes.Buffer
	err := run(cfg, &out)
	if err == nil {
		t.Fatalf("planted amnesia bug went undetected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "safety violation") {
		t.Fatalf("err = %v, want a safety-violation error", err)
	}
	if !strings.Contains(out.String(), "replay: sched-seed=") {
		t.Fatalf("violation lacks a replay recipe:\n%s", out.String())
	}
}

func TestRunChaosRecoverMetrics(t *testing.T) {
	cfg := config{n: 5, f: 1, chaosRecover: true, runs: 10, seed: 7, metrics: true}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"recovery"`, `"restarts"`, `"rejoins"`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("metrics lack %q:\n%s", want, out.String())
		}
	}
}

func mcConfig() config {
	return config{system: "async", alg: "qkset", n: 3, f: 1, k: 2, seed: 1, mc: true}
}

func TestRunMCExhaustsHonest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(mcConfig(), &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "schedules=27") || !strings.Contains(out, "exhausted") {
		t.Fatalf("output lacks the exhaustive verdict:\n%s", out)
	}
}

func TestRunMCFindsPlantedBug(t *testing.T) {
	cfg := mcConfig()
	cfg.bug = true
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil {
		t.Fatalf("planted bug not reported as error:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "violation:") || !strings.Contains(out, "counterexample (1 choices") {
		t.Fatalf("output lacks the shrunk counterexample:\n%s", out)
	}
	if !strings.Contains(out, "c1:4") {
		t.Fatalf("output lacks the replay string:\n%s", out)
	}
}

func TestRunMCWorkersByteIdentical(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, w := range []int{1, 4, 8} {
		cfg := mcConfig()
		cfg.bug = true
		cfg.workers = w
		var buf bytes.Buffer
		if err := run(cfg, &buf); err == nil {
			t.Fatal("planted bug not found")
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("worker counts change the output:\n%s\nvs\n%s\nvs\n%s",
			outputs[0], outputs[1], outputs[2])
	}
}

func TestRunMCReplay(t *testing.T) {
	cfg := mcConfig()
	cfg.bug = true
	cfg.mcReplay = "c1:4"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err == nil {
		t.Fatalf("replayed counterexample did not violate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "violation reproduced") {
		t.Fatalf("replay output:\n%s", buf.String())
	}

	// The same schedule is harmless for the honest rule.
	cfg.bug = false
	buf.Reset()
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("honest replay failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no violation") {
		t.Fatalf("replay output:\n%s", buf.String())
	}
}

func TestRunMCReplayRejectsTornString(t *testing.T) {
	cfg := mcConfig()
	cfg.mcReplay = "c1:4."
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "bad choice string") {
		t.Fatalf("torn replay string accepted: %v", err)
	}
}

func TestRunMCMetrics(t *testing.T) {
	cfg := mcConfig()
	cfg.metrics = true
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	idx := strings.Index(out, "metrics:\n")
	if idx < 0 {
		t.Fatalf("no metrics snapshot:\n%s", out)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(out[idx+len("metrics:\n"):strings.LastIndex(out, "}")+1]), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	mcSnap, ok := snap["mc"].(map[string]any)
	if !ok {
		t.Fatalf("metrics lack the mc section:\n%s", out)
	}
	if mcSnap["schedules"].(float64) != 27 {
		t.Fatalf("mc.schedules = %v, want 27", mcSnap["schedules"])
	}
}

func TestValidateMCFlagCombos(t *testing.T) {
	cfg := mcConfig()
	cfg.chaos = true
	if err := validate(cfg); err == nil {
		t.Fatal("-mc with -chaos accepted")
	}
	cfg = mcConfig()
	cfg.dumpTrace = true
	if err := validate(cfg); err == nil {
		t.Fatal("-mc with -trace accepted")
	}
	cfg = mcConfig()
	cfg.ckptDir = "/tmp/x"
	if err := validate(cfg); err == nil {
		t.Fatal("-mc with -checkpoint accepted")
	}
	cfg = baseConfig()
	cfg.mcReplay = "c1:1"
	if err := validate(cfg); err == nil {
		t.Fatal("-mc-replay without -mc accepted")
	}
	cfg = mcConfig()
	cfg.workers = 4
	if err := validate(cfg); err != nil {
		t.Fatalf("-mc -workers 4 rejected: %v", err)
	}
}

func TestRunMCRejectsLargeN(t *testing.T) {
	cfg := mcConfig()
	cfg.n = 6
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "n") {
		t.Fatalf("n=6 enumeration accepted: %v", err)
	}
}

// TestValidateSubstrate pins the -substrate tcp flag discipline: it is
// its own mode, incompatible with campaigns, journaling and the
// single-trace observability sinks.
func TestValidateSubstrate(t *testing.T) {
	cfg := baseConfig()
	cfg.substrate = "carrier-pigeon"
	if err := validate(cfg); err == nil || !strings.Contains(err.Error(), "unknown substrate") {
		t.Fatalf("validate accepted an unknown substrate: %v", err)
	}
	tcp := func() config {
		c := baseConfig()
		c.substrate = "tcp"
		return c
	}
	if err := validate(tcp()); err != nil {
		t.Fatalf("plain -substrate tcp should validate: %v", err)
	}
	cfg = tcp()
	cfg.chaos = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -substrate tcp with -chaos")
	}
	cfg = tcp()
	cfg.mc = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -substrate tcp with -mc")
	}
	cfg = tcp()
	cfg.ckptDir = "ck"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -substrate tcp with -checkpoint")
	}
	cfg = tcp()
	cfg.perfetto = "trace.json"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -substrate tcp with -perfetto")
	}
	cfg = tcp()
	cfg.metrics = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -substrate tcp with -metrics")
	}
}

// TestRunNetParentRejectsBadShape pins the TCP-mode shape errors without
// spawning anything.
func TestRunNetParentRejectsBadShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig()
	cfg.substrate = "tcp"
	cfg.f = 0
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "f <") {
		t.Fatalf("accepted f=0: %v", err)
	}
	cfg = baseConfig()
	cfg.substrate = "tcp"
	cfg.k = 1
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "k >= 2") {
		t.Fatalf("accepted k=1: %v", err)
	}
}

// TestNetChildRejectsBadAddrs pins the child-side flag validation.
func TestNetChildRejectsBadAddrs(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig()
	cfg.netChild = true
	cfg.netAddrs = "127.0.0.1:1,127.0.0.1:2"
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "addrs") {
		t.Fatalf("accepted an addrs/n mismatch: %v", err)
	}
}
