// The -substrate tcp mode: the same §2 item 3 round protocol the virtual
// substrates run, but over real OS processes — the parent binds one
// loopback listener per process, spawns one child per pid with its
// listener inherited as an extra file, kills one child mid-run and
// restarts it as a higher incarnation, and audits the collected
// decisions for validity and k-agreement. Only safety is checked:
// whatever the timing of the kill, survivors must degrade the dead
// peer into D(i,r) suspicions and decide, and the restarted child must
// re-enter and terminate instead of deadlocking.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	rrfd "repro"
)

// netResult is the one JSON line each child prints before exiting.
type netResult struct {
	PID         int   `json:"pid"`
	Incarnation int   `json:"incarnation"`
	Decision    int   `json:"decision"`
	Rounds      int   `json:"rounds"`
	Stalls      int   `json:"stalls"`
	Reconnects  int64 `json:"reconnects"`
}

// netShape resolves the TCP-mode parameters from the shared flags: the
// -watchdog flag is milliseconds here (steps on the virtual substrates).
func netShape(cfg config) (n, f, k, rounds, watchdogMS, lingerMS int) {
	n, f, k, rounds = cfg.n, cfg.f, cfg.k, cfg.rounds
	if rounds <= 0 {
		rounds = 3
	}
	watchdogMS = cfg.watchdog
	if watchdogMS <= 0 {
		watchdogMS = 1000
	}
	lingerMS = cfg.netLinger
	if lingerMS <= 0 {
		lingerMS = 250
	}
	return
}

// runNetChild is one mesh process: adopt the inherited listener (fd 3),
// join the mesh, flood the minimum pid for the configured rounds with
// the wall-clock watchdog degrading silence into suspicion, and print
// the decision as JSON.
func runNetChild(cfg config, w io.Writer) error {
	n, f, _, rounds, watchdogMS, lingerMS := netShape(cfg)
	addrs := strings.Split(cfg.netAddrs, ",")
	if len(addrs) != n {
		return fmt.Errorf("net-child: %d addrs for %d processes", len(addrs), n)
	}
	lf := os.NewFile(3, "mesh-listener")
	if lf == nil {
		return fmt.Errorf("net-child: no inherited listener on fd 3")
	}
	ln, err := net.FileListener(lf)
	lf.Close()
	if err != nil {
		return fmt.Errorf("net-child: adopt listener: %w", err)
	}

	node, err := rrfd.StartTCPNode(rrfd.TCPConfig{
		Me: rrfd.PID(cfg.netMe), N: n, Addrs: addrs,
		Incarnation: cfg.netIncarnation,
		Listener:    ln,
		Seed:        cfg.seed,
	})
	if err != nil {
		return fmt.Errorf("net-child: start node: %w", err)
	}
	defer node.Close()
	// The parent waits for this line before it starts killing anyone.
	fmt.Fprintln(w, "ready")

	min := cfg.netMe
	fold := func(view map[rrfd.PID]rrfd.Value) {
		for _, v := range view {
			if x, ok := v.(int); ok && x < min {
				min = x
			}
		}
	}
	rec, stalls, err := rrfd.RunSubstrateRounds(node, n, f, rounds, watchdogMS, lingerMS,
		func(_ rrfd.PID, _ int, prev map[rrfd.PID]rrfd.Value, _ rrfd.Set) rrfd.Value {
			fold(prev)
			return min
		}, nil)
	if err != nil {
		return fmt.Errorf("net-child: rounds: %w", err)
	}
	for _, view := range rec.Views {
		fold(view)
	}
	line, err := json.Marshal(netResult{
		PID:         cfg.netMe,
		Incarnation: cfg.netIncarnation,
		Decision:    min,
		Rounds:      len(rec.Views),
		Stalls:      len(stalls),
		Reconnects:  node.Stats().Reconnects,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, string(line))
	return nil
}

// tailBuffer keeps the last max bytes written to it — enough of a dead
// child's stderr to diagnose the failure without unbounded memory. The
// exec machinery writes from its own goroutine while the parent may read
// on a timeout path, so access is locked.
type tailBuffer struct {
	mu      sync.Mutex
	max     int
	buf     []byte
	clipped bool
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
		t.clipped = true
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := strings.TrimSpace(string(t.buf))
	if t.clipped && s != "" {
		s = "…" + s
	}
	return s
}

// netChild tracks one spawned mesh process.
type netChild struct {
	cmd    *exec.Cmd
	stderr *tailBuffer
	ready  chan struct{}
	result chan netResult
	scnErr chan error
}

// failDetail renders the child's captured stderr for an audit error;
// empty when the child said nothing.
func (c *netChild) failDetail() string {
	s := c.stderr.String()
	if s == "" {
		return ""
	}
	return "; stderr tail:\n" + s
}

// spawnNetChild starts this binary again as mesh process pid, passing
// its pre-bound listener as fd 3 and the run shape as flags.
func spawnNetChild(cfg config, pid, incarnation int, ln *net.TCPListener, addrs []string) (*netChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate executable: %w", err)
	}
	n, f, k, rounds, watchdogMS, lingerMS := netShape(cfg)
	cmd := exec.Command(exe,
		"-net-child",
		"-net-me", strconv.Itoa(pid),
		"-net-incarnation", strconv.Itoa(incarnation),
		"-net-addrs", strings.Join(addrs, ","),
		"-net-linger", strconv.Itoa(lingerMS),
		"-n", strconv.Itoa(n),
		"-f", strconv.Itoa(f),
		"-k", strconv.Itoa(k),
		"-rounds", strconv.Itoa(rounds),
		"-watchdog", strconv.Itoa(watchdogMS),
		"-seed", strconv.FormatInt(cfg.seed, 10),
	)
	lf, err := ln.File()
	if err != nil {
		return nil, fmt.Errorf("dup listener for p%d: %w", pid, err)
	}
	defer lf.Close() // Start dups it again; the child owns that copy
	cmd.ExtraFiles = []*os.File{lf}
	// Tee the child's stderr: live on the parent's stderr for watching a
	// run, and a bounded tail the audit errors can quote post mortem.
	tail := &tailBuffer{max: 4096}
	cmd.Stderr = io.MultiWriter(os.Stderr, tail)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn p%d: %w", pid, err)
	}
	c := &netChild{
		cmd:    cmd,
		stderr: tail,
		ready:  make(chan struct{}),
		result: make(chan netResult, 1),
		scnErr: make(chan error, 1),
	}
	go func() {
		sc := bufio.NewScanner(out)
		readied := false
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			switch {
			case line == "ready":
				if !readied {
					readied = true
					close(c.ready)
				}
			case strings.HasPrefix(line, "{"):
				var res netResult
				if err := json.Unmarshal([]byte(line), &res); err == nil {
					c.result <- res
				}
			}
		}
		c.scnErr <- sc.Err()
	}()
	return c, nil
}

// runNetParent orchestrates the multi-process run: spawn the mesh, kill
// the highest-pid child once everyone is up, restart it as incarnation
// 2 on the same inherited listener, then audit the decisions.
func runNetParent(cfg config, w io.Writer) error {
	n, f, k, rounds, watchdogMS, _ := netShape(cfg)
	if n < 2 {
		return fmt.Errorf("-substrate tcp needs n >= 2, got %d", n)
	}
	if f < 1 || f >= n {
		return fmt.Errorf("-substrate tcp kills one process: need 1 <= f < n, got f=%d n=%d", f, n)
	}
	if k < 2 {
		// The restarted process may re-enter after the survivors are
		// gone and decide alone; k >= 2 makes that a legal outcome.
		return fmt.Errorf("-substrate tcp needs k >= 2 (a restarted process may decide alone), got %d", k)
	}
	deadline := time.Duration(2*rounds*watchdogMS+20000) * time.Millisecond

	lns := make([]*net.TCPListener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("bind p%d: %w", i, err)
		}
		defer ln.Close()
		lns[i] = ln.(*net.TCPListener)
		addrs[i] = ln.Addr().String()
	}
	fmt.Fprintf(w, "substrate=tcp n=%d f=%d k=%d rounds=%d watchdog=%dms\n", n, f, k, rounds, watchdogMS)

	children := make([]*netChild, n)
	for i := 0; i < n; i++ {
		c, err := spawnNetChild(cfg, i, 1, lns[i], addrs)
		if err != nil {
			killNetChildren(children)
			return err
		}
		children[i] = c
	}
	defer killNetChildren(children)

	for i, c := range children {
		select {
		case <-c.ready:
		case <-time.After(deadline):
			return fmt.Errorf("p%d never reported ready%s", i, c.failDetail())
		}
	}

	// Everyone is up and the mesh is forming: kill the victim. Whatever
	// round it dies in, the survivors' watchdogs degrade its silence
	// into D(i,r) suspicions; safety must hold regardless of timing.
	victim := n - 1
	if err := children[victim].cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill p%d: %w", victim, err)
	}
	children[victim].cmd.Wait()
	fmt.Fprintf(w, "killed p%d (incarnation 1)\n", victim)

	restarted, err := spawnNetChild(cfg, victim, 2, lns[victim], addrs)
	if err != nil {
		return fmt.Errorf("restart p%d: %w", victim, err)
	}
	children[victim] = restarted
	fmt.Fprintf(w, "restarted p%d (incarnation 2)\n", victim)

	results := make([]netResult, n)
	for i, c := range children {
		// Drain the child's stdout to EOF before reaping it: Wait closes
		// the pipe, so calling it first can race the result line away.
		select {
		case <-c.scnErr:
		case <-time.After(deadline):
			return fmt.Errorf("p%d did not terminate: the mesh deadlocked%s", i, c.failDetail())
		}
		done := make(chan error, 1)
		go func() { done <- c.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				// A non-zero child exit is an audit failure in its own
				// right: quote the code and whatever the child said.
				return fmt.Errorf("p%d exited with code %d: %w%s",
					i, c.cmd.ProcessState.ExitCode(), err, c.failDetail())
			}
		case <-time.After(deadline):
			return fmt.Errorf("p%d did not terminate: the mesh deadlocked%s", i, c.failDetail())
		}
		select {
		case res := <-c.result:
			results[i] = res
		default:
			return fmt.Errorf("p%d exited with code %d without a result line%s",
				i, c.cmd.ProcessState.ExitCode(), c.failDetail())
		}
	}

	distinct := map[int]bool{}
	stalls, reconnects := 0, int64(0)
	for _, res := range results {
		fmt.Fprintf(w, "p%-3d → %-4d (incarnation %d, rounds %d, stalls %d)\n",
			res.PID, res.Decision, res.Incarnation, res.Rounds, res.Stalls)
		if res.Decision < 0 || res.Decision >= n {
			return fmt.Errorf("validity violated: p%d decided %d, not any process's input", res.PID, res.Decision)
		}
		distinct[res.Decision] = true
		stalls += res.Stalls
		reconnects += res.Reconnects
	}
	if results[victim].Incarnation != 2 {
		return fmt.Errorf("p%d's result came from incarnation %d, want the restart", victim, results[victim].Incarnation)
	}
	fmt.Fprintf(w, "stalls: %d, reconnects: %d\n", stalls, reconnects)
	if len(distinct) > k {
		return fmt.Errorf("k-agreement violated: %d distinct decisions > k=%d", len(distinct), k)
	}
	fmt.Fprintf(w, "agreement check: %d distinct decision(s) ≤ k=%d; restarted process re-entered and terminated\n", len(distinct), k)
	return nil
}

// killNetChildren reaps whatever is still running, for error paths.
func killNetChildren(children []*netChild) {
	for _, c := range children {
		if c != nil && c.cmd.ProcessState == nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	}
}
