package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	rrfd "repro"
)

func modelConfig(model string) config {
	return config{model: model, alg: "none", n: 3, f: 1, k: 2, rounds: 3, seed: 3}
}

// TestRunModelPlainAllCatalog drives every catalog model through a plain
// run: the compiled oracle must produce a trace the compiled checker
// accepts, and the report must name the model. n=3 keeps the kset-bearing
// models inside the enumeration support so the same size works everywhere.
func TestRunModelPlainAllCatalog(t *testing.T) {
	names := rrfd.ModelNames()
	if len(names) < 8 {
		t.Fatalf("catalog lists %d models, want >= 8", len(names))
	}
	for _, name := range names {
		var buf bytes.Buffer
		if err := run(modelConfig(name), &buf); err != nil {
			t.Fatalf("run(-model %s): %v\n%s", name, err, buf.String())
		}
		out := buf.String()
		if !strings.Contains(out, fmt.Sprintf("model %q", name)) {
			t.Fatalf("-model %s report does not name the model:\n%s", name, out)
		}
		if !strings.Contains(out, "satisfied") {
			t.Fatalf("-model %s trace escaped its own checker:\n%s", name, out)
		}
	}
}

// TestRunModelExpressionPlain: a raw expression (not a catalog name) works
// the same way and is echoed canonically.
func TestRunModelExpressionPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := run(modelConfig("selftrust & atmost(1)"), &buf); err != nil {
		t.Fatalf("run raw expression: %v\n%s", err, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "satisfied") {
		t.Fatalf("raw expression run not satisfied:\n%s", out)
	}
}

// TestRunModelUnknownFailsLoudly: junk is neither a catalog name nor an
// expression; the error must list the known models.
func TestRunModelUnknownFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	err := run(modelConfig("definitely-not-a-model"), &buf)
	if err == nil || !strings.Contains(err.Error(), "known models") {
		t.Fatalf("want a known-models error, got %v", err)
	}
}

// TestValidateModelFlagCombos: -model drives plain, -chaos and -mc runs
// only; recovery campaigns and the TCP substrate must be rejected.
func TestValidateModelFlagCombos(t *testing.T) {
	cfg := modelConfig("async")
	cfg.chaosRecover = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -model with -chaos-recover")
	}
	cfg = modelConfig("async")
	cfg.chaosServe = true
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -model with -chaos-serve")
	}
	cfg = modelConfig("async")
	cfg.substrate = "tcp"
	if err := validate(cfg); err == nil {
		t.Fatal("validate accepted -model with -substrate tcp")
	}
	if err := validate(modelConfig("async")); err != nil {
		t.Fatalf("plain -model should validate: %v", err)
	}
}

// TestRunMCModelBranches: a disjunctive model explores each branch as its
// own enumeration and reports the per-branch schedule counts.
func TestRunMCModelBranches(t *testing.T) {
	cfg := modelConfig("kset(2) | perround(1)")
	cfg.alg = "qkset"
	cfg.mc = true
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("mc over a disjunction: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "branches=2") {
		t.Fatalf("mc header does not report 2 branches:\n%s", out)
	}
	if strings.Count(out, "branch \"") != 2 {
		t.Fatalf("want one result line per branch:\n%s", out)
	}
	if !strings.Contains(out, "exhausted") {
		t.Fatalf("honest disjunction should exhaust cleanly:\n%s", out)
	}
}

// TestRunMCModelReplayRejectedOverBranches: a choice string is relative to
// one enumeration, so replay under a multi-branch model must refuse.
func TestRunMCModelReplayRejectedOverBranches(t *testing.T) {
	cfg := modelConfig("kset(2) | perround(1)")
	cfg.alg = "qkset"
	cfg.mc = true
	cfg.mcReplay = "c1:0"
	var buf bytes.Buffer
	err := run(cfg, &buf)
	if err == nil || !strings.Contains(err.Error(), "branches") {
		t.Fatalf("want a branch-ambiguity error, got %v", err)
	}
}

// TestRunChaosModelHonestClean: a -chaos campaign pinned to a model's
// honest compiled plan satisfies the model's own compiled checker.
func TestRunChaosModelHonestClean(t *testing.T) {
	cfg := modelConfig("async")
	cfg.n, cfg.f, cfg.k = 5, 1, 2
	cfg.chaos = true
	cfg.runs = 5
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("chaos under an honest model plan: %v\n%s", err, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, " 0 violations") {
		t.Fatalf("honest model campaign reported violations:\n%s", out)
	}
}
