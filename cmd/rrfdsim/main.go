// Command rrfdsim runs one configurable RRFD execution: pick a system
// (adversary), an algorithm, and parameters; it prints the decisions, the
// round count, optionally the full trace, and checks the system's model
// predicate on the recorded execution.
//
// Observability: -metrics prints a JSON metrics snapshot (rounds to
// decision, suspicions, D-set size histogram, per-phase latency
// histograms), -events FILE streams the execution as JSONL structured
// events, -perfetto FILE writes the execution as a causal Chrome/Perfetto
// trace (round/phase spans, Emit→Deliver message flows, suspicion and
// decide instants — with -chaos it traces the first violation's minimized
// replay, with -mc-replay the replayed schedule), and -telemetry ADDR
// serves /metrics (Prometheus text), /snapshot (JSON) and /debug/pprof
// live while the process runs (-pprof is an alias).
//
// Robustness: -chaos switches to the randomized fault-injection campaign —
// N seeded executions of async k-set agreement over reliable links on a
// lossy substrate, each run under a random fault plan (drop, duplicate,
// delay, send-omission, healing partitions, crashes), each checked against
// validity, k-agreement and the eq. (3) trace predicate. On a violation it
// prints the scheduler seed, the fault plan and a delta-debugged minimal
// plan, and exits non-zero.
//
// Real network: -substrate tcp runs the same round protocol as one OS
// process per pid over loopback TCP (each child inherits its pre-bound
// listener), kills the highest-pid child once the mesh is up, restarts
// it as incarnation 2 on the same listener, and audits the collected
// decisions for validity and k-agreement — survivors must degrade the
// dead peer into D(i,r) suspicions via the wall-clock watchdog, and the
// restarted process must re-enter and terminate instead of deadlocking.
// With -substrate tcp, -watchdog is in milliseconds.
//
// Agreement service: -chaos-serve runs the kill-and-recover service
// campaign — an in-process loopback cluster of rrfdserve-style nodes
// under concurrent seeded client load, with one node killed at a planted
// acknowledgement count mid-batch, its journal audited offline (no
// acknowledged decision lost, none duplicated), the node restarted from
// the journal, and the identical load replayed with reused request IDs
// (no retry may double-decide, k-agreement across all clients). -bug
// plants the ack-before-journal inversion the audit must catch.
//
// Model checking: -mc switches to the systematic explorer — every
// adversary schedule an enumerable model (async, kset, omission, crash)
// allows over a small system (n ≤ 4) is executed and checked against
// validity and k-agreement, with state-hash pruning and symmetry/sleep-set
// reduction. -mc-depth bounds enumeration with seeded random frontier
// sampling; a violation prints a shrunk counterexample replayable with
// -mc-replay, and exits non-zero. -bug plants a wrong-quorum-size decision
// rule (-alg qkset) the checker demonstrably catches.
//
// Model algebra: -model takes a predicate expression over the per-round
// suspicion sets D(i,r) — or a name from the derived-model catalog
// (internal/hoalg) — and compiles it into whichever artifact the selected
// mode needs: plain runs sample its oracle and check its predicate, -mc
// enumerates its schedules branch by branch with the predicate as a trace
// property, -chaos pins the campaign to its compiled fault plan under
// lock-step rounds.
//
// Crash recovery: -checkpoint DIR journals the execution to a write-ahead
// log; -kill-after R deterministically kills the run at a round boundary;
// -resume DIR reconstructs the journaled run (same flags = same oracle and
// algorithm) and continues it to completion. -chaos-recover runs the
// crash-and-recover campaign: every run crashes at least one process,
// usually restarts it from its durable journal, and audits safety
// (validity, (f+1)-agreement, per-round budget, log-before-act durability);
// -bug plants the amnesia bug — a recovered process deciding from its
// pre-crash un-flushed state — to demo that the audit catches it.
//
// Usage examples:
//
//	go run ./cmd/rrfdsim -system kset -k 2 -n 8 -alg kset
//	go run ./cmd/rrfdsim -system kset -k 2 -n 8 -alg kset -metrics -events events.jsonl
//	go run ./cmd/rrfdsim -system kset -k 2 -n 8 -alg kset -perfetto trace.json -telemetry localhost:6060
//	go run ./cmd/rrfdsim -system crash -n 8 -f 3 -alg floodmin
//	go run ./cmd/rrfdsim -system s -n 6 -alg coordinator -trace
//	go run ./cmd/rrfdsim -system snapshot -n 6 -f 2 -alg none -rounds 4
//	go run ./cmd/rrfdsim -substrate tcp -n 4 -f 1 -k 2 -rounds 3
//	go run ./cmd/rrfdsim -model sync-crash -n 3 -f 1 -alg none -rounds 3
//	go run ./cmd/rrfdsim -model 'selftrust & atmost(1)' -n 3 -f 1 -alg none -rounds 3
//	go run ./cmd/rrfdsim -mc -model 'kset(2) | perround(1)' -n 3 -f 1 -k 2 -alg qkset
//	go run ./cmd/rrfdsim -chaos -model async -n 5 -f 1 -k 2 -runs 20 -rounds 3
//	go run ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset
//	go run ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset -bug -workers 4
//	go run ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset -bug -mc-replay c1:4
//	go run ./cmd/rrfdsim -mc -system omission -n 3 -f 1 -alg floodmin -rounds 3
//	go run ./cmd/rrfdsim -mc -system crash -n 3 -f 1 -alg floodmin -mc-depth 2
//	go run ./cmd/rrfdsim -chaos -n 6 -f 2 -k 3 -runs 200 -drop 0.3 -seed 7
//	go run ./cmd/rrfdsim -chaos -runs 500 -workers 8   # parallel, same output
//	go run ./cmd/rrfdsim -chaos -runs 50 -drop 0.5 -partition 0.5 -crashes 2 -metrics
//	go run ./cmd/rrfdsim -system crash -alg floodmin -checkpoint /tmp/ck -kill-after 2
//	go run ./cmd/rrfdsim -system crash -alg floodmin -resume /tmp/ck
//	go run ./cmd/rrfdsim -chaos-recover -n 5 -f 1 -runs 100 -seed 42
//	go run ./cmd/rrfdsim -chaos-recover -runs 60 -bug
//	go run ./cmd/rrfdsim -chaos-serve -n 3 -f 1 -seed 7
//	go run ./cmd/rrfdsim -chaos-serve -n 3 -f 1 -seed 7 -bug   # must fail
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	rrfd "repro"
)

// config collects every flag so run is unit-testable without a flag set.
type config struct {
	system, alg string
	model       string
	n, f, k     int
	rounds      int
	seed        int64
	dumpTrace   bool
	noTrace     bool
	outFile     string
	metrics     bool
	eventsFile  string
	perfetto    string
	telemetry   string

	// crash-recovery flags
	ckptDir      string
	snapEvery    int
	killAfter    int
	resumeDir    string
	chaosRecover bool
	chaosServe   bool

	// model-checking flags
	mc        bool
	mcMax     int
	mcDepth   int
	mcSamples int
	mcReplay  string

	// real-network flags (-substrate tcp and its internal child mode)
	substrate      string
	netChild       bool
	netMe          int
	netIncarnation int
	netLinger      int
	netAddrs       string

	// chaos-mode flags
	chaos     bool
	workers   int
	runs      int
	drop      float64
	dup       float64
	delay     float64
	delaymax  int
	omit      float64
	partition float64
	crashes   int
	watchdog  int
	bug       bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.system, "system", "kset", "system: omission|crash|chain|async|sharedmem|snapshot|kset|identical|s|benign")
	flag.StringVar(&cfg.alg, "alg", "kset", "algorithm: kset|floodmin|floodset|coordinator|none")
	flag.StringVar(&cfg.model, "model", "", "model expression or catalog name (internal/hoalg): overrides -system in plain runs, drives -mc enumeration branch by branch, and fixes the -chaos fault plan")
	flag.IntVar(&cfg.n, "n", 8, "number of processes")
	flag.IntVar(&cfg.f, "f", 2, "fault budget")
	flag.IntVar(&cfg.k, "k", 2, "agreement parameter k")
	flag.IntVar(&cfg.rounds, "rounds", 0, "rounds for -alg none / floodmin override (0 = default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "adversary seed")
	flag.BoolVar(&cfg.dumpTrace, "trace", false, "dump the execution trace")
	flag.BoolVar(&cfg.noTrace, "notrace", false, "disable trace recording (benchmarking; incompatible with -o and -trace)")
	flag.StringVar(&cfg.outFile, "o", "", "write the execution trace as JSON to this file")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print a JSON metrics snapshot after the run")
	flag.StringVar(&cfg.eventsFile, "events", "", "stream structured JSONL events to this file")
	flag.StringVar(&cfg.perfetto, "perfetto", "", "write the execution as Chrome/Perfetto trace-event JSON to this file (with -chaos: the first violation's replay; with -mc: requires -mc-replay)")
	flag.StringVar(&cfg.telemetry, "telemetry", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&cfg.ckptDir, "checkpoint", "", "journal the execution to a WAL in this directory (resumable with -resume)")
	flag.IntVar(&cfg.snapEvery, "snap-every", 2, "checkpoint: snapshot cadence in rounds (0 = round log only, resume replays)")
	flag.IntVar(&cfg.killAfter, "kill-after", 0, "kill the run after this round completes and is journaled (requires -checkpoint)")
	flag.StringVar(&cfg.resumeDir, "resume", "", "resume a journaled run from this directory (pass the original system/alg flags)")
	flag.BoolVar(&cfg.chaosRecover, "chaos-recover", false, "run the crash-and-recover chaos campaign (crashes + supervised restarts + safety audit)")
	flag.BoolVar(&cfg.chaosServe, "chaos-serve", false, "run the kill-and-recover agreement-service campaign (client load + mid-batch node kill + journal audit + idempotent replay)")
	flag.BoolVar(&cfg.mc, "mc", false, "model-check: exhaustively explore every adversary schedule of a small system")
	flag.IntVar(&cfg.mcMax, "mc-max", 0, "mc: schedule budget (0 = 1<<20)")
	flag.IntVar(&cfg.mcDepth, "mc-depth", 0, "mc: bound enumeration to this choice depth, sample beyond it (0 = unbounded)")
	flag.IntVar(&cfg.mcSamples, "mc-samples", 0, "mc: random completions per frontier node when -mc-depth is set (0 = 8)")
	flag.StringVar(&cfg.mcReplay, "mc-replay", "", "mc: replay one recorded counterexample choice string (e.g. c1:4)")
	flag.StringVar(&cfg.substrate, "substrate", "virtual", "substrate: virtual (in-process scheduler) | tcp (one OS process per pid over loopback TCP, with a kill-and-restart)")
	flag.BoolVar(&cfg.netChild, "net-child", false, "internal: run as one TCP mesh process (spawned by -substrate tcp)")
	flag.IntVar(&cfg.netMe, "net-me", 0, "internal: TCP mesh child pid")
	flag.IntVar(&cfg.netIncarnation, "net-incarnation", 1, "internal: TCP mesh child incarnation")
	flag.IntVar(&cfg.netLinger, "net-linger", 0, "tcp: post-decision linger in ms so slower peers still hear the last round (0 = 250)")
	flag.StringVar(&cfg.netAddrs, "net-addrs", "", "internal: comma-separated TCP mesh addresses")
	flag.BoolVar(&cfg.chaos, "chaos", false, "run the randomized fault-injection campaign instead of a single execution")
	flag.IntVar(&cfg.workers, "workers", 0, "chaos modes: concurrent runs (0 = one per CPU, 1 = sequential; output is identical either way)")
	flag.IntVar(&cfg.runs, "runs", 0, "chaos: number of randomized executions (0 = 100)")
	flag.Float64Var(&cfg.drop, "drop", 0, "chaos: per-message drop-rate bound (0 with all other rates 0 = 0.3)")
	flag.Float64Var(&cfg.dup, "dup", 0, "chaos: per-message duplication-rate bound")
	flag.Float64Var(&cfg.delay, "delay", 0, "chaos: per-message delay-rate bound")
	flag.IntVar(&cfg.delaymax, "delaymax", 0, "chaos: max injected delay in steps (0 = 16)")
	flag.Float64Var(&cfg.omit, "omit", 0, "chaos: send-omission rate bound for up to f faulty senders")
	flag.Float64Var(&cfg.partition, "partition", 0, "chaos: per-run probability of a healing partition")
	flag.IntVar(&cfg.crashes, "crashes", 0, "chaos modes: max crash failures per run (clamped to f)")
	flag.IntVar(&cfg.watchdog, "watchdog", 0, "chaos modes: round watchdog in steps (0 = default)")
	flag.BoolVar(&cfg.bug, "bug", false, "plant a bug the harness catches: sub-quorum decision (-chaos) or amnesia (-chaos-recover)")
	pprofAddr := flag.String("pprof", "", "alias for -telemetry (the endpoint includes /debug/pprof)")
	flag.Parse()

	if cfg.telemetry == "" {
		cfg.telemetry = *pprofAddr
	}

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// modelStab is the stabilization round the catalog's eventual models
// (eventually-s, eventually-sync) are instantiated with from the CLI;
// explicit eventually(r, ...) expressions pick their own window.
const modelStab = 2

func run(cfg config, w io.Writer) error {
	if cfg.netChild {
		return runNetChild(cfg, w)
	}
	if err := validate(cfg); err != nil {
		return err
	}
	if cfg.substrate == "tcp" {
		return runNetParent(cfg, w)
	}

	// One Telemetry per process: its Metrics joins every mode's observer
	// chain, its histogram registry receives the non-observer meters
	// (chaos per-run wall time, par task latency / queue depth, mc
	// schedule rate), and the optional endpoint serves both live.
	var tel *rrfd.Telemetry
	if cfg.metrics || cfg.telemetry != "" {
		tel = rrfd.NewTelemetry()
		rrfd.SetPoolMeter(&rrfd.PoolMeter{
			TaskNS:     tel.Hist.Get("par_task_ns"),
			QueueDepth: tel.Hist.Get("par_queue_depth"),
		})
		defer rrfd.SetPoolMeter(nil)
	}
	if cfg.telemetry != "" {
		srv, err := rrfd.ServeTelemetry(cfg.telemetry, tel)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "telemetry listening on http://%s/ (/metrics, /snapshot, /debug/pprof/)\n", srv.Addr())
	}

	if cfg.mc {
		return runMC(cfg, tel, w)
	}
	if cfg.chaos {
		return runChaos(cfg, tel, w)
	}
	if cfg.chaosRecover {
		return runChaosRecover(cfg, tel, w)
	}
	if cfg.chaosServe {
		return runChaosServe(cfg, tel, w)
	}

	var (
		oracle rrfd.Oracle
		pred   rrfd.Predicate
	)
	n, f, k, seed := cfg.n, cfg.f, cfg.k, cfg.seed
	if cfg.model != "" {
		// A model expression replaces the bespoke system pair: the compiled
		// seeded oracle samples one path the model allows, and the compiled
		// predicate is the same membership check the -system families get.
		expr, err := rrfd.ResolveModel(cfg.model, rrfd.ModelParams{N: n, F: f, K: k, Stab: modelStab})
		if err != nil {
			return err
		}
		if oracle, err = expr.Oracle(n, seed); err != nil {
			return err
		}
		pred = expr.Compile()
	} else {
		switch cfg.system {
		case "omission":
			oracle, pred = rrfd.Omission(n, f, 0.7, seed), rrfd.SendOmission(f)
		case "crash":
			oracle, pred = rrfd.Crash(n, f, seed), rrfd.SyncCrash(f)
		case "chain":
			oracle, pred = rrfd.ChainCrash(n, f, k), rrfd.SyncCrash(f)
		case "async":
			oracle, pred = rrfd.AsyncBudget(n, f, true, seed), rrfd.PerRoundBudget(f)
		case "sharedmem":
			oracle, pred = rrfd.SharedMemAdversary(n, f, seed), rrfd.SharedMemory(f)
		case "snapshot":
			oracle, pred = rrfd.SnapshotChain(n, f, seed), rrfd.AtomicSnapshot(f)
		case "kset":
			oracle, pred = rrfd.KSetUncertainty(n, k, seed), rrfd.KSetDetector(k)
		case "identical":
			oracle, pred = rrfd.Identical(n, seed), rrfd.IdenticalSuspects()
		case "s":
			oracle, pred = rrfd.SpareNeverSuspected(n, rrfd.PID(seed)%rrfd.PID(n), seed), rrfd.NeverSuspectedExists()
		case "benign":
			oracle, pred = rrfd.Benign(n), rrfd.SendOmission(0)
		default:
			return fmt.Errorf("unknown system %q", cfg.system)
		}
	}

	// Observability wiring: metrics, the JSONL event sink and the causal
	// tracer all hang off the same observer fan-out.
	var metrics *rrfd.Metrics
	var events *rrfd.EventLog
	var eventsBuf *bufio.Writer
	var tracer *rrfd.Tracer
	if tel != nil {
		metrics = tel.Metrics
	}
	if cfg.eventsFile != "" {
		file, err := os.Create(cfg.eventsFile)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		defer file.Close()
		eventsBuf = bufio.NewWriter(file)
		events = rrfd.NewEventLog(eventsBuf)
	}
	if cfg.perfetto != "" {
		tracer = rrfd.NewTracer()
	}
	observer := rrfd.MultiObserver(metrics, events, tracer)

	var opts []rrfd.Option
	if observer != nil {
		opts = append(opts, rrfd.WithObserver(observer))
	}
	if cfg.noTrace {
		opts = append(opts, rrfd.WithoutTrace())
	}
	if dir := cfg.ckptDir; dir != "" || cfg.resumeDir != "" {
		// On resume, pass the same checkpoint options so the continuation
		// keeps journaling to the log with the original durability policy.
		if dir == "" {
			dir = cfg.resumeDir
		}
		opts = append(opts, rrfd.WithCheckpointing(dir,
			rrfd.CheckpointOptions{Every: cfg.snapEvery, Sync: rrfd.SyncAlways}))
	}
	if cfg.killAfter > 0 {
		opts = append(opts, rrfd.WithHaltAfterRound(cfg.killAfter))
	}

	finish := func(tr *rrfd.Trace) error {
		if err := writeTrace(w, cfg.outFile, tr); err != nil {
			return err
		}
		if events != nil {
			if err := eventsBuf.Flush(); err != nil {
				return fmt.Errorf("flush events: %w", err)
			}
			if err := events.Err(); err != nil {
				return fmt.Errorf("write events: %w", err)
			}
			fmt.Fprintf(w, "%d events written to %s\n", events.Lines(), cfg.eventsFile)
		}
		if metrics != nil && cfg.metrics {
			b, err := metrics.Snapshot().JSON()
			if err != nil {
				return fmt.Errorf("encode metrics: %w", err)
			}
			fmt.Fprintf(w, "metrics:\n%s\n", b)
		}
		if tracer != nil {
			if err := tracer.ExportFile(cfg.perfetto); err != nil {
				return fmt.Errorf("write perfetto trace: %w", err)
			}
			fmt.Fprintf(w, "perfetto trace written to %s\n", cfg.perfetto)
		}
		if tr != nil {
			return report(w, pred, tr)
		}
		return nil
	}

	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}

	rounds := cfg.rounds
	var factory rrfd.Factory
	bound := 0
	switch cfg.alg {
	case "kset":
		bound = k
		if observer != nil {
			factory = rrfd.OneRoundKSetObserved(observer)
		} else {
			factory = rrfd.OneRoundKSet()
		}
	case "floodmin":
		r := f/k + 1
		if rounds > 0 {
			r = rounds
		}
		factory, bound = rrfd.FloodMin(r), k
	case "floodset":
		factory, bound = rrfd.FloodSet(f), 1
	case "coordinator":
		factory, bound = rrfd.RotatingCoordinator(), 1
	case "none":
		if rounds <= 0 {
			rounds = 5
		}
		tr, err := rrfd.CollectTrace(n, rounds, oracle, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "collected %d rounds from %s\n", tr.Len(), sourceLabel(cfg))
		if cfg.dumpTrace {
			fmt.Fprint(w, tr.String())
		}
		return finish(tr)
	default:
		return fmt.Errorf("unknown algorithm %q", cfg.alg)
	}

	var res *rrfd.Result
	var err error
	if cfg.resumeDir != "" {
		res, err = rrfd.Resume(cfg.resumeDir, factory, oracle, opts...)
	} else {
		res, err = rrfd.Run(n, inputs, factory, oracle, opts...)
	}
	var halt *rrfd.HaltError
	if errors.As(err, &halt) {
		// A deliberate kill at a round boundary: the journal is settled and
		// the run is suspended, not failed.
		fmt.Fprintf(w, "halted after round %d (journaled); continue with -resume %s\n",
			halt.Round, halt.Dir)
		return finish(res.Trace)
	}
	if err != nil {
		return err
	}
	if cfg.resumeDir != "" {
		fmt.Fprintf(w, "resumed from %s\n", cfg.resumeDir)
	}
	if cfg.model != "" {
		fmt.Fprintf(w, "model=%q alg=%s n=%d f=%d k=%d seed=%d\n", cfg.model, cfg.alg, n, f, k, seed)
	} else {
		fmt.Fprintf(w, "system=%s alg=%s n=%d f=%d k=%d seed=%d\n", cfg.system, cfg.alg, n, f, k, seed)
	}
	fmt.Fprintf(w, "rounds: %d, crashed: %s\n", res.Rounds, res.Crashed)
	fmt.Fprintf(w, "decisions (%d distinct):\n", res.DistinctOutputs())
	for p := rrfd.PID(0); int(p) < n; p++ {
		if v, ok := res.Outputs[p]; ok {
			fmt.Fprintf(w, "  p%-3d → %-6v (round %d)\n", p, v, res.DecidedAt[p])
		} else {
			fmt.Fprintf(w, "  p%-3d → (no decision)\n", p)
		}
	}
	if err := rrfd.ValidateAgreement(res, inputs, bound, 0); err != nil {
		fmt.Fprintf(w, "agreement check: %v\n", err)
	} else {
		fmt.Fprintf(w, "agreement check: %d-set agreement holds\n", bound)
	}
	if cfg.dumpTrace {
		fmt.Fprint(w, res.Trace.String())
	}
	return finish(res.Trace)
}

// runChaos executes the randomized fault-injection campaign, streaming the
// per-violation reports and the final summary to w. A campaign with safety
// violations is an error, so CI fails loudly.
func runChaos(cfg config, tel *rrfd.Telemetry, w io.Writer) error {
	var metrics *rrfd.Metrics
	var events *rrfd.EventLog
	var eventsBuf *bufio.Writer
	if tel != nil {
		metrics = tel.Metrics
	}
	if cfg.eventsFile != "" {
		file, err := os.Create(cfg.eventsFile)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		defer file.Close()
		eventsBuf = bufio.NewWriter(file)
		events = rrfd.NewEventLog(eventsBuf)
	}

	ccfg := chaosConfig(cfg)
	if cfg.model != "" {
		// A model expression pins the campaign to its compiled fault plan
		// (every run, same plan, varying schedules) and swaps the stock
		// eq. (3) trace check for the compiled model predicate.
		expr, err := rrfd.ResolveModel(cfg.model, rrfd.ModelParams{N: cfg.n, F: cfg.f, K: cfg.k, Stab: modelStab})
		if err != nil {
			return err
		}
		plan, err := expr.CompilePlan(cfg.n, cfg.seed)
		if err != nil {
			return err
		}
		pred := expr.Compile()
		ccfg.FixedPlan = &plan
		ccfg.TracePred = &pred
		// Lock-step rounds: the compiled plan is the only suspicion source,
		// so the run satisfies (honest) or violates (negated) the model by
		// construction rather than by scheduler luck.
		ccfg.SyncRounds = true
	}
	ccfg.Observer = rrfd.MultiObserver(metrics, events)
	ccfg.Out = w
	if tel != nil {
		ccfg.Telemetry = tel.Hist
	}
	sum := rrfd.ChaosRun(ccfg)

	if events != nil {
		if err := eventsBuf.Flush(); err != nil {
			return fmt.Errorf("flush events: %w", err)
		}
		if err := events.Err(); err != nil {
			return fmt.Errorf("write events: %w", err)
		}
		fmt.Fprintf(w, "%d events written to %s\n", events.Lines(), cfg.eventsFile)
	}
	if metrics != nil && cfg.metrics {
		b, err := metrics.Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics:\n%s\n", b)
	}
	if cfg.perfetto != "" {
		if len(sum.Violations) == 0 {
			fmt.Fprintf(w, "no violation to trace: %s not written\n", cfg.perfetto)
		} else {
			// Replay the first violation's minimized scenario sequentially
			// under a tracer: the Perfetto file shows the counterexample
			// as a causal diagram, byte-identical across reruns.
			v := sum.Violations[0]
			tracer := rrfd.NewTracer()
			replay := chaosConfig(cfg)
			replay.Observer = tracer
			if err := rrfd.ChaosReplay(replay, v); err != nil {
				return fmt.Errorf("replay violation: %w", err)
			}
			if err := tracer.ExportFile(cfg.perfetto); err != nil {
				return fmt.Errorf("write perfetto trace: %w", err)
			}
			fmt.Fprintf(w, "perfetto trace of violation (run %d, minimized plan) written to %s\n", v.Run, cfg.perfetto)
		}
	}
	if !sum.Ok() {
		return fmt.Errorf("chaos: %d safety violation(s) in %d runs", len(sum.Violations), sum.Runs)
	}
	return nil
}

// chaosConfig maps the chaos flags onto a campaign config; the caller
// fills in the sinks (Observer, Out, Telemetry).
func chaosConfig(cfg config) rrfd.ChaosConfig {
	return rrfd.ChaosConfig{
		N: cfg.n, F: cfg.f, K: cfg.k,
		Rounds:        cfg.rounds,
		Runs:          cfg.runs,
		Seed:          cfg.seed,
		DropRate:      cfg.drop,
		DupRate:       cfg.dup,
		DelayRate:     cfg.delay,
		MaxDelay:      cfg.delaymax,
		OmitRate:      cfg.omit,
		PartitionRate: cfg.partition,
		MaxCrashes:    cfg.crashes,
		WatchdogSteps: cfg.watchdog,
		QuorumBug:     cfg.bug,
		Workers:       cfg.workers,
	}
}

// runChaosRecover executes the crash-and-recover campaign: every run
// crashes at least one process, usually restarts it from its durable
// journal, and audits the outcome's safety.
func runChaosRecover(cfg config, tel *rrfd.Telemetry, w io.Writer) error {
	var metrics *rrfd.Metrics
	var events *rrfd.EventLog
	var eventsBuf *bufio.Writer
	if tel != nil {
		metrics = tel.Metrics
	}
	if cfg.eventsFile != "" {
		file, err := os.Create(cfg.eventsFile)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		defer file.Close()
		eventsBuf = bufio.NewWriter(file)
		events = rrfd.NewEventLog(eventsBuf)
	}

	rcfg := rrfd.RecoverChaosConfig{
		N: cfg.n, F: cfg.f,
		Rounds:        cfg.rounds,
		Runs:          cfg.runs,
		Seed:          cfg.seed,
		DropRate:      cfg.drop,
		DelayRate:     cfg.delay,
		MaxCrashes:    cfg.crashes,
		WatchdogSteps: cfg.watchdog,
		AmnesiaBug:    cfg.bug,
		Workers:       cfg.workers,
		Observer:      rrfd.MultiObserver(metrics, events),
		Out:           w,
	}
	if tel != nil {
		rcfg.Telemetry = tel.Hist
	}
	sum := rrfd.RecoverChaosRun(rcfg)

	if events != nil {
		if err := eventsBuf.Flush(); err != nil {
			return fmt.Errorf("flush events: %w", err)
		}
		if err := events.Err(); err != nil {
			return fmt.Errorf("write events: %w", err)
		}
		fmt.Fprintf(w, "%d events written to %s\n", events.Lines(), cfg.eventsFile)
	}
	if metrics != nil && cfg.metrics {
		b, err := metrics.Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics:\n%s\n", b)
	}
	if !sum.Ok() {
		return fmt.Errorf("chaos-recover: %d safety violation(s) in %d runs", len(sum.Violations), sum.Runs)
	}
	return nil
}

// runChaosServe executes the kill-and-recover agreement-service campaign:
// seeded client load over a loopback cluster, one node killed at a
// planted acknowledgement count, its journal audited, a restart, and a
// full idempotent replay of the load.
func runChaosServe(cfg config, tel *rrfd.Telemetry, w io.Writer) error {
	scfg := rrfd.ServeChaosConfig{
		N: cfg.n, F: cfg.f, K: cfg.k,
		Seed: cfg.seed,
		Bug:  cfg.bug,
		Out:  w,
	}
	if tel != nil {
		scfg.Observer = tel.Metrics
		scfg.Telemetry = tel.Hist
	}
	sum, err := rrfd.RunServeChaos(scfg)
	if err != nil {
		return err
	}
	if tel != nil && cfg.metrics {
		b, err := tel.Metrics.Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Fprintf(w, "metrics:\n%s\n", b)
	}
	if !sum.Ok() {
		return fmt.Errorf("chaos-serve: %d service violation(s)", len(sum.Violations))
	}
	return nil
}

// validate rejects flag combinations that would silently do nothing — in
// particular -o (and -trace) with trace recording disabled.
func validate(cfg config) error {
	if cfg.noTrace && cfg.outFile != "" {
		return fmt.Errorf("-o %s requires trace recording: drop -notrace", cfg.outFile)
	}
	if cfg.noTrace && cfg.dumpTrace {
		return fmt.Errorf("-trace requires trace recording: drop -notrace")
	}
	if cfg.n <= 0 {
		return fmt.Errorf("invalid process count %d", cfg.n)
	}
	if cfg.workers < 0 {
		return fmt.Errorf("invalid worker count %d", cfg.workers)
	}
	if cfg.substrate != "" && cfg.substrate != "virtual" && cfg.substrate != "tcp" {
		return fmt.Errorf("unknown substrate %q: virtual or tcp", cfg.substrate)
	}
	if cfg.substrate == "tcp" {
		if cfg.mc || cfg.chaos || cfg.chaosRecover || cfg.chaosServe {
			return fmt.Errorf("-substrate tcp is its own mode: drop -mc/-chaos/-chaos-recover/-chaos-serve")
		}
		if cfg.ckptDir != "" || cfg.resumeDir != "" {
			return fmt.Errorf("-substrate tcp crashes real processes, not journaled runs: drop -checkpoint/-resume")
		}
		if cfg.dumpTrace || cfg.outFile != "" || cfg.perfetto != "" || cfg.eventsFile != "" {
			return fmt.Errorf("-substrate tcp spans processes and records no single trace: drop -trace/-o/-perfetto/-events")
		}
		if cfg.metrics || cfg.telemetry != "" {
			return fmt.Errorf("-substrate tcp runs n separate processes: drop -metrics/-telemetry")
		}
	}
	if cfg.model != "" {
		if cfg.chaosRecover || cfg.chaosServe {
			return fmt.Errorf("-model drives plain, -chaos and -mc runs: drop -chaos-recover/-chaos-serve")
		}
		if cfg.substrate == "tcp" {
			return fmt.Errorf("-model compiles virtual-substrate adversaries: drop -substrate tcp")
		}
	}
	if cfg.workers > 1 && !cfg.chaos && !cfg.chaosRecover && !cfg.mc {
		return fmt.Errorf("-workers parallelizes campaign runs: add -chaos, -chaos-recover or -mc")
	}
	if cfg.mc && (cfg.chaos || cfg.chaosRecover || cfg.chaosServe) {
		return fmt.Errorf("-mc is its own mode: drop -chaos/-chaos-recover/-chaos-serve")
	}
	if cfg.mc && (cfg.dumpTrace || cfg.outFile != "") {
		return fmt.Errorf("-mc runs many executions and records no single trace: drop -trace/-o")
	}
	if cfg.mc && (cfg.ckptDir != "" || cfg.resumeDir != "") {
		return fmt.Errorf("-mc re-executes schedules from scratch: drop -checkpoint/-resume")
	}
	if cfg.mcReplay != "" && !cfg.mc {
		return fmt.Errorf("-mc-replay replays a model-checking schedule: add -mc")
	}
	if cfg.perfetto != "" && cfg.mc && cfg.mcReplay == "" {
		return fmt.Errorf("-perfetto traces one execution: with -mc add -mc-replay")
	}
	if cfg.perfetto != "" && cfg.chaosRecover {
		return fmt.Errorf("-perfetto does not trace recovery campaigns: drop -chaos-recover")
	}
	if cfg.chaos && (cfg.dumpTrace || cfg.outFile != "") {
		return fmt.Errorf("-chaos runs many executions and records no single trace: drop -trace/-o")
	}
	if cfg.chaosRecover && (cfg.dumpTrace || cfg.outFile != "") {
		return fmt.Errorf("-chaos-recover runs many executions and records no single trace: drop -trace/-o")
	}
	if cfg.chaos && cfg.chaosRecover {
		return fmt.Errorf("pick one of -chaos and -chaos-recover")
	}
	if cfg.chaosServe && (cfg.chaos || cfg.chaosRecover) {
		return fmt.Errorf("-chaos-serve is its own mode: drop -chaos/-chaos-recover")
	}
	if cfg.chaosServe && (cfg.dumpTrace || cfg.outFile != "" || cfg.perfetto != "" || cfg.eventsFile != "") {
		return fmt.Errorf("-chaos-serve spans real sockets and records no execution trace: drop -trace/-o/-perfetto/-events")
	}
	if cfg.chaosServe && (cfg.ckptDir != "" || cfg.resumeDir != "") {
		return fmt.Errorf("-chaos-serve manages its own journals: drop -checkpoint/-resume")
	}
	if cfg.killAfter > 0 && cfg.ckptDir == "" && cfg.resumeDir == "" {
		return fmt.Errorf("-kill-after suspends a journaled run: add -checkpoint DIR")
	}
	if cfg.resumeDir != "" && cfg.ckptDir != "" {
		return fmt.Errorf("-resume continues the existing journal in place: drop -checkpoint")
	}
	if (cfg.ckptDir != "" || cfg.resumeDir != "") && (cfg.chaos || cfg.chaosRecover) {
		return fmt.Errorf("campaign modes manage their own journals: drop -checkpoint/-resume")
	}
	if (cfg.ckptDir != "" || cfg.resumeDir != "") && cfg.alg == "none" {
		return fmt.Errorf("checkpointing journals an algorithm run: use an -alg other than none")
	}
	return nil
}

// sourceLabel names what produced a collected trace: the bespoke -system
// adversary or the compiled -model expression.
func sourceLabel(cfg config) string {
	if cfg.model != "" {
		return fmt.Sprintf("model %q", cfg.model)
	}
	return fmt.Sprintf("system %q", cfg.system)
}

func report(w io.Writer, pred rrfd.Predicate, tr *rrfd.Trace) error {
	if err := pred.Check(tr); err != nil {
		return fmt.Errorf("model predicate: %w", err)
	}
	fmt.Fprintf(w, "model predicate %q: satisfied\n", pred.Name)
	return nil
}

func writeTrace(w io.Writer, path string, tr *rrfd.Trace) error {
	if path == "" {
		return nil
	}
	if tr == nil {
		// Unreachable given validate, but guard the invariant anyway: a
		// requested trace file must never be silently skipped.
		return fmt.Errorf("no trace recorded, cannot write %s", path)
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintf(w, "trace written to %s\n", path)
	return nil
}
