// Command rrfdsim runs one configurable RRFD execution: pick a system
// (adversary), an algorithm, and parameters; it prints the decisions, the
// round count, optionally the full trace, and checks the system's model
// predicate on the recorded execution.
//
// Usage examples:
//
//	go run ./cmd/rrfdsim -system kset -k 2 -n 8 -alg kset
//	go run ./cmd/rrfdsim -system crash -n 8 -f 3 -alg floodmin
//	go run ./cmd/rrfdsim -system s -n 6 -alg coordinator -trace
//	go run ./cmd/rrfdsim -system snapshot -n 6 -f 2 -alg none -rounds 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	rrfd "repro"
)

func main() {
	var (
		system = flag.String("system", "kset", "system: omission|crash|chain|async|sharedmem|snapshot|kset|identical|s|benign")
		alg    = flag.String("alg", "kset", "algorithm: kset|floodmin|floodset|coordinator|none")
		n      = flag.Int("n", 8, "number of processes")
		f      = flag.Int("f", 2, "fault budget")
		k      = flag.Int("k", 2, "agreement parameter k")
		rounds = flag.Int("rounds", 0, "rounds for -alg none / floodmin override (0 = default)")
		seed   = flag.Int64("seed", 1, "adversary seed")
		trace  = flag.Bool("trace", false, "dump the execution trace")
		out    = flag.String("o", "", "write the execution trace as JSON to this file")
	)
	flag.Parse()

	if err := run(*system, *alg, *n, *f, *k, *rounds, *seed, *trace, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(system, alg string, n, f, k, rounds int, seed int64, dumpTrace bool, outFile string) error {
	var (
		oracle rrfd.Oracle
		pred   rrfd.Predicate
	)
	switch system {
	case "omission":
		oracle, pred = rrfd.Omission(n, f, 0.7, seed), rrfd.SendOmission(f)
	case "crash":
		oracle, pred = rrfd.Crash(n, f, seed), rrfd.SyncCrash(f)
	case "chain":
		oracle, pred = rrfd.ChainCrash(n, f, k), rrfd.SyncCrash(f)
	case "async":
		oracle, pred = rrfd.AsyncBudget(n, f, true, seed), rrfd.PerRoundBudget(f)
	case "sharedmem":
		oracle, pred = rrfd.SharedMemAdversary(n, f, seed), rrfd.SharedMemory(f)
	case "snapshot":
		oracle, pred = rrfd.SnapshotChain(n, f, seed), rrfd.AtomicSnapshot(f)
	case "kset":
		oracle, pred = rrfd.KSetUncertainty(n, k, seed), rrfd.KSetDetector(k)
	case "identical":
		oracle, pred = rrfd.Identical(n, seed), rrfd.IdenticalSuspects()
	case "s":
		oracle, pred = rrfd.SpareNeverSuspected(n, rrfd.PID(seed)%rrfd.PID(n), seed), rrfd.NeverSuspectedExists()
	case "benign":
		oracle, pred = rrfd.Benign(n), rrfd.SendOmission(0)
	default:
		return fmt.Errorf("unknown system %q", system)
	}

	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}

	var factory rrfd.Factory
	bound := 0
	switch alg {
	case "kset":
		factory, bound = rrfd.OneRoundKSet(), k
	case "floodmin":
		r := f/k + 1
		if rounds > 0 {
			r = rounds
		}
		factory, bound = rrfd.FloodMin(r), k
	case "floodset":
		factory, bound = rrfd.FloodSet(f), 1
	case "coordinator":
		factory, bound = rrfd.RotatingCoordinator(), 1
	case "none":
		if rounds <= 0 {
			rounds = 5
		}
		tr, err := rrfd.CollectTrace(n, rounds, oracle)
		if err != nil {
			return err
		}
		fmt.Printf("collected %d rounds from system %q\n", tr.Len(), system)
		if dumpTrace {
			fmt.Print(tr.String())
		}
		if err := writeTrace(outFile, tr); err != nil {
			return err
		}
		return report(pred, tr)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	res, err := rrfd.Run(n, inputs, factory, oracle)
	if err != nil {
		return err
	}
	fmt.Printf("system=%s alg=%s n=%d f=%d k=%d seed=%d\n", system, alg, n, f, k, seed)
	fmt.Printf("rounds: %d, crashed: %s\n", res.Rounds, res.Crashed)
	fmt.Printf("decisions (%d distinct):\n", res.DistinctOutputs())
	for p := rrfd.PID(0); int(p) < n; p++ {
		if v, ok := res.Outputs[p]; ok {
			fmt.Printf("  p%-3d → %-6v (round %d)\n", p, v, res.DecidedAt[p])
		} else {
			fmt.Printf("  p%-3d → (no decision)\n", p)
		}
	}
	if err := rrfd.ValidateAgreement(res, inputs, bound, 0); err != nil {
		fmt.Printf("agreement check: %v\n", err)
	} else {
		fmt.Printf("agreement check: %d-set agreement holds\n", bound)
	}
	if dumpTrace {
		fmt.Print(res.Trace.String())
	}
	if err := writeTrace(outFile, res.Trace); err != nil {
		return err
	}
	return report(pred, res.Trace)
}

func report(pred rrfd.Predicate, tr *rrfd.Trace) error {
	if err := pred.Check(tr); err != nil {
		return fmt.Errorf("model predicate: %w", err)
	}
	fmt.Printf("model predicate %q: satisfied\n", pred.Name)
	return nil
}

func writeTrace(path string, tr *rrfd.Trace) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Printf("trace written to %s\n", path)
	return nil
}
