// Command rrfdload drives seeded client load at an agreement service and
// audits the answers. Each simulated client owns a deterministic request
// stream (instance IDs, values, server pins, request IDs all drawn from
// -seed) and submits with the retrying client: bounded attempts, seeded
// jittered backoff, the same request ID on every retry.
//
// After the run it audits what every client saw, across retries and
// servers:
//
//   - idempotency: all decided answers for one request ID agree;
//   - k-agreement: each instance shows at most k distinct decided values;
//   - validity: every decided value was submitted by some client.
//
// Any violation makes the exit status non-zero, so the tool doubles as a
// smoke check in CI.
//
// -local N skips the network setup and starts an in-process loopback
// cluster of N nodes (journals in a temp directory) — the one-command
// smoke test. Otherwise -addrs lists the client-facing addresses of an
// already-running rrfdserve mesh.
//
// Scale mode: -conns bounds the real connection pool, multiplexing the
// -clients simulated clients over that many worker goroutines — the way
// to point 10⁵ virtual clients at a cluster without 10⁵ TCP
// connections. Each virtual client's request stream stays deterministic
// (drawn from -seed exactly as in the unpooled mode); only the carrier
// changes. Decide latencies additionally feed a mergeable obs/hist
// histogram, reported as p50/p95/p99.
//
// Usage:
//
//	rrfdload -local 3 -clients 8 -requests 50
//	rrfdload -local 3 -clients 100000 -requests 1 -conns 16 -instances 4096
//	rrfdload -addrs 127.0.0.1:8000,127.0.0.1:8001,127.0.0.1:8002 -f 1 -clients 16
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	rrfd "repro"
)

type config struct {
	addrs     string
	local     int
	f, k      int
	clients   int
	conns     int
	requests  int
	instances int
	seed      int64
	timeout   time.Duration
	attempts  int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addrs, "addrs", "", "comma-separated client-facing addresses of a running mesh")
	flag.IntVar(&cfg.local, "local", 0, "start an in-process loopback cluster of this size instead of dialing -addrs")
	flag.IntVar(&cfg.f, "f", 1, "fault budget of the target mesh (defaults k to f+1)")
	flag.IntVar(&cfg.k, "k", 0, "agreement bound audited per instance (0 = f+1)")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent simulated clients")
	flag.IntVar(&cfg.conns, "conns", 0, "bound the real connection pool, multiplexing the simulated clients over it (0 = one per client)")
	flag.IntVar(&cfg.requests, "requests", 25, "requests per client")
	flag.IntVar(&cfg.instances, "instances", 16, "instance-ID space the load draws from")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the load shape and the clients' retry jitter")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Second, "per-attempt client timeout")
	flag.IntVar(&cfg.attempts, "attempts", 8, "attempt budget per request")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type outcome struct {
	inst, req   string
	status      rrfd.ServiceStatus
	val         int
	latency     time.Duration
	unreachable bool
}

func run(cfg config, w io.Writer) error {
	if (cfg.local > 0) == (cfg.addrs != "") {
		return fmt.Errorf("pick exactly one of -local N and -addrs")
	}
	if cfg.clients <= 0 || cfg.requests <= 0 || cfg.instances <= 0 {
		return fmt.Errorf("-clients, -requests and -instances must be positive")
	}
	if cfg.conns < 0 {
		return fmt.Errorf("-conns must be >= 0")
	}
	if cfg.k == 0 {
		cfg.k = cfg.f + 1
	}

	var addrs []string
	if cfg.local > 0 {
		dir, err := os.MkdirTemp("", "rrfdload")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if cfg.f >= cfg.local {
			cfg.f = (cfg.local - 1) / 2
		}
		cl, err := rrfd.StartServiceCluster(rrfd.ServiceClusterConfig{
			N: cfg.local, F: cfg.f, K: cfg.k,
			Dir:            dir,
			Sync:           rrfd.SyncAlways,
			RequestTimeout: cfg.timeout,
			Seed:           cfg.seed,
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		addrs = cl.ClientAddrs()
		fmt.Fprintf(w, "local cluster: %d nodes (f=%d) on %s\n", cfg.local, cfg.f, strings.Join(addrs, ","))
	} else {
		addrs = strings.Split(cfg.addrs, ",")
	}

	// The whole load is planted before any goroutine starts.
	rng := rand.New(rand.NewSource(cfg.seed))
	type spec struct {
		client, server int
		inst, req      string
		val            int
	}
	specs := make([]spec, 0, cfg.clients*cfg.requests)
	submitted := map[string]map[int]bool{}
	for ci := 0; ci < cfg.clients; ci++ {
		crng := rand.New(rand.NewSource(rng.Int63()))
		for ri := 0; ri < cfg.requests; ri++ {
			sp := spec{
				client: ci, server: crng.Intn(len(addrs)),
				inst: fmt.Sprintf("i%d", crng.Intn(cfg.instances)),
				req:  fmt.Sprintf("c%d-%d", ci, ri),
				val:  crng.Intn(1000),
			}
			specs = append(specs, sp)
			if submitted[sp.inst] == nil {
				submitted[sp.inst] = map[int]bool{}
			}
			submitted[sp.inst][sp.val] = true
		}
	}

	// Worker pool: one goroutine (with its own connections) per simulated
	// client, unless -conns bounds the pool — then the virtual clients are
	// multiplexed over that many carriers. A virtual client's requests
	// always ride the same worker, so its stream stays ordered.
	workers := cfg.clients
	if cfg.conns > 0 && cfg.conns < workers {
		workers = cfg.conns
	}
	perWorker := make([][]int, workers)
	for si, sp := range specs {
		w := sp.client % workers
		perWorker[w] = append(perWorker[w], si)
	}

	outs := make([]outcome, len(specs))
	hDecide := rrfd.NewHistogram()
	var retries int64
	var retryMu sync.Mutex
	startAll := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conns := map[int]*rrfd.ServiceClient{}
			defer func() {
				for _, cc := range conns {
					cc.Close()
				}
			}()
			for _, si := range perWorker[w] {
				sp := specs[si]
				cc := conns[sp.server]
				if cc == nil {
					cc = rrfd.NewServiceClient(rrfd.ServiceClientConfig{
						Addr:        addrs[sp.server],
						Timeout:     cfg.timeout,
						MaxAttempts: cfg.attempts,
						Seed:        cfg.seed + int64(100*w+sp.server),
					})
					conns[sp.server] = cc
				}
				start := time.Now()
				resp, err := cc.Submit(sp.inst, sp.req, sp.val)
				oc := outcome{inst: sp.inst, req: sp.req, latency: time.Since(start)}
				if err != nil {
					oc.unreachable = true
				} else {
					oc.status, oc.val = resp.Status, resp.Val
					if resp.Status == rrfd.ServiceDecided {
						hDecide.Record(oc.latency.Nanoseconds())
					}
				}
				outs[si] = oc
			}
			retryMu.Lock()
			for _, cc := range conns {
				retries += cc.Retries
			}
			retryMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(startAll)

	// Tally and audit.
	var decided, abstained, overloaded, unreachable int
	var lat []time.Duration
	decidedByReq := map[string]map[int]bool{}
	decidedByInst := map[string]map[int]bool{}
	for _, oc := range outs {
		lat = append(lat, oc.latency)
		switch {
		case oc.unreachable:
			unreachable++
		case oc.status == rrfd.ServiceDecided:
			decided++
			if decidedByReq[oc.req] == nil {
				decidedByReq[oc.req] = map[int]bool{}
			}
			decidedByReq[oc.req][oc.val] = true
			if decidedByInst[oc.inst] == nil {
				decidedByInst[oc.inst] = map[int]bool{}
			}
			decidedByInst[oc.inst][oc.val] = true
		case oc.status == rrfd.ServiceAbstain:
			abstained++
		case oc.status == rrfd.ServiceOverload:
			overloaded++
		}
	}
	var violations []string
	for req, vals := range decidedByReq {
		if len(vals) > 1 {
			violations = append(violations, fmt.Sprintf("idempotency: request %s decided %d distinct values", req, len(vals)))
		}
	}
	distinctMax := 0
	for inst, vals := range decidedByInst {
		if len(vals) > distinctMax {
			distinctMax = len(vals)
		}
		if len(vals) > cfg.k {
			violations = append(violations, fmt.Sprintf("k-agreement: instance %s decided %d distinct values > k=%d", inst, len(vals), cfg.k))
		}
		for v := range vals {
			if !submitted[inst][v] {
				violations = append(violations, fmt.Sprintf("validity: instance %s decided %d, never submitted", inst, v))
			}
		}
	}
	sort.Strings(violations)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	fmt.Fprintf(w, "rrfdload: %d requests by %d clients in %v (%.0f req/s, %d retries)\n",
		len(specs), cfg.clients, elapsed.Round(time.Millisecond),
		float64(len(specs))/elapsed.Seconds(), retries)
	if workers < cfg.clients {
		fmt.Fprintf(w, "scale: %d virtual clients multiplexed over %d connections\n", cfg.clients, workers)
	}
	fmt.Fprintf(w, "outcomes: %d decided, %d abstained, %d overloaded, %d unreachable\n",
		decided, abstained, overloaded, unreachable)
	fmt.Fprintf(w, "latency: p50 %v, p95 %v, max %v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
	if hDecide.Count() > 0 {
		hq := func(p float64) time.Duration { return time.Duration(hDecide.Quantile(p)) }
		fmt.Fprintf(w, "decide latency: p50 %v, p95 %v, p99 %v (%d decided)\n",
			hq(0.50).Round(time.Microsecond), hq(0.95).Round(time.Microsecond),
			hq(0.99).Round(time.Microsecond), hDecide.Count())
	}
	fmt.Fprintf(w, "agreement: %d instances decided, widest %d distinct values (k=%d)\n",
		len(decidedByInst), distinctMax, cfg.k)
	for _, v := range violations {
		fmt.Fprintf(w, "VIOLATION %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("rrfdload: %d violation(s)", len(violations))
	}
	fmt.Fprintf(w, "ok: idempotency, validity and %d-agreement hold across all clients\n", cfg.k)
	return nil
}
