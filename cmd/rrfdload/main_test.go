package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(config{}, &buf); err == nil || !strings.Contains(err.Error(), "-local") {
		t.Fatalf("want local/addrs error, got %v", err)
	}
	if err := run(config{local: 2, addrs: "x"}, &buf); err == nil {
		t.Fatalf("accepted both -local and -addrs")
	}
	if err := run(config{local: 2, clients: 0}, &buf); err == nil {
		t.Fatalf("accepted zero clients")
	}
}

// TestLocalLoadSmoke is the one-command smoke test the CI target runs: a
// local 3-node cluster under concurrent load, all audits clean.
func TestLocalLoadSmoke(t *testing.T) {
	cfg := config{
		local: 3, f: 1,
		clients: 4, requests: 8, instances: 6,
		seed: 7, timeout: 2 * time.Second, attempts: 8,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"local cluster: 3 nodes", "outcomes:", "latency:", "ok: idempotency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "32 requests by 4 clients") {
		t.Fatalf("request accounting off:\n%s", out)
	}
}

// TestScaleModeSmoke is the pooled-carrier shape: many simulated clients
// multiplexed over a small connection pool against a local cluster, with
// the audits and the histogram-backed decide-latency quantiles intact.
// The same shape scales to -clients 100000 -requests 1 from the CLI.
func TestScaleModeSmoke(t *testing.T) {
	cfg := config{
		local: 3, f: 1,
		clients: 500, conns: 8, requests: 1, instances: 64,
		seed: 11, timeout: 5 * time.Second, attempts: 8,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"500 requests by 500 clients",
		"scale: 500 virtual clients multiplexed over 8 connections",
		"decide latency: p50",
		"ok: idempotency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "outcomes: 0 decided") {
		t.Fatalf("nothing decided under scale load:\n%s", out)
	}
}

func TestScaleModeRejectsNegativeConns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(config{local: 2, clients: 4, requests: 1, instances: 4, conns: -1}, &buf); err == nil {
		t.Fatal("accepted negative -conns")
	}
}
