package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(config{}, &buf); err == nil || !strings.Contains(err.Error(), "-local") {
		t.Fatalf("want local/addrs error, got %v", err)
	}
	if err := run(config{local: 2, addrs: "x"}, &buf); err == nil {
		t.Fatalf("accepted both -local and -addrs")
	}
	if err := run(config{local: 2, clients: 0}, &buf); err == nil {
		t.Fatalf("accepted zero clients")
	}
}

// TestLocalLoadSmoke is the one-command smoke test the CI target runs: a
// local 3-node cluster under concurrent load, all audits clean.
func TestLocalLoadSmoke(t *testing.T) {
	cfg := config{
		local: 3, f: 1,
		clients: 4, requests: 8, instances: 6,
		seed: 7, timeout: 2 * time.Second, attempts: 8,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"local cluster: 3 nodes", "outcomes:", "latency:", "ok: idempotency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "32 requests by 4 clients") {
		t.Fatalf("request accounting off:\n%s", out)
	}
}
