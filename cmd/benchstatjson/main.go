// Command benchstatjson converts `go test -bench` text output into a JSON
// benchmark record, seeding the repo's performance trajectory: every perf
// PR regenerates BENCH_core.json (make bench) and diffs it against the
// committed one.
//
// It reads benchmark output on stdin, echoes it through to stdout (so it
// can sit at the end of a pipe without hiding the run), and writes the
// aggregated JSON to the -o file. Repeated runs of the same benchmark
// (-count > 1) are aggregated into mean and min ns/op.
//
// With -compare FILE it becomes a regression gate instead: the fresh run on
// stdin is diffed against the checked-in baseline JSON, and any benchmark
// whose ns/op or allocs/op regressed beyond the thresholds fails the
// invocation (exit 1). ns/op comparisons use the per-name minimum — the
// least noisy statistic a short CI run produces. New and vanished benchmarks
// are reported but do not fail the gate; refresh the baseline (make bench)
// when coverage changes.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/core | go run ./cmd/benchstatjson -o BENCH_core.json
//	go test -run '^$' -bench . -benchmem ./internal/core | go run ./cmd/benchstatjson -compare BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurements.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -GOMAXPROCS suffix (e.g. "EngineRounds/n=16").
	Name string `json:"name"`

	// Runs is how many times the benchmark line appeared (go test -count).
	Runs int `json:"runs"`

	// Iterations is the b.N of the last run.
	Iterations int64 `json:"iterations"`

	// NsPerOp aggregates ns/op across runs.
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`

	// BytesPerOp and AllocsPerOp are present with -benchmem (last run).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`

	// Metrics holds custom b.ReportMetric values (last run).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted JSON document.
type File struct {
	Goos      string   `json:"goos"`
	Goarch    string   `json:"goarch"`
	GoVersion string   `json:"go_version"`
	Results   []Result `json:"results"`
}

// benchLine matches one result line:
//
//	BenchmarkEngineRounds/n=16-8   5647   110880 ns/op   10.00 rounds/run
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$`)

// extraStat matches trailing "<value> <unit>" pairs (B/op, allocs/op,
// custom metrics).
var extraStat = regexp.MustCompile(`(\d+(?:\.\d+)?) (\S+)`)

func main() {
	out := flag.String("o", "BENCH_core.json", "output JSON file")
	compareFile := flag.String("compare", "", "compare the fresh run against this baseline JSON instead of writing (exit 1 on regressions)")
	nsThresh := flag.Float64("ns-threshold", 0.20, "compare: max tolerated ns/op regression as a fraction (0.20 = +20%)")
	allocThresh := flag.Float64("allocs-threshold", 0.20, "compare: max tolerated allocs/op regression as a fraction")
	flag.Parse()

	results, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchstatjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compareFile != "" {
		raw, err := os.ReadFile(*compareFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var baseline File
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchstatjson: bad baseline %s: %v\n", *compareFile, err)
			os.Exit(1)
		}
		regressions := compare(results, baseline, *nsThresh, *allocThresh, os.Stderr)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchstatjson: %d regression(s) vs %s\n", regressions, *compareFile)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchstatjson: no regressions vs %s\n", *compareFile)
		return
	}

	doc := File{
		Goos:      runtime.GOOS,
		Goarch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Results:   results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchstatjson: %d benchmarks → %s\n", len(results), *out)
}

// parse reads benchmark output from r, echoing every line to echo, and
// returns the aggregated results sorted by name.
func parse(r io.Reader, echo io.Writer) ([]Result, error) {
	byName := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		nsPerOp, _ := strconv.ParseFloat(m[3], 64)
		res := byName[name]
		if res == nil {
			res = &Result{Name: name, NsPerOpMin: nsPerOp}
			byName[name] = res
		}
		res.Runs++
		res.Iterations = iters
		res.NsPerOpMean += (nsPerOp - res.NsPerOpMean) / float64(res.Runs)
		if nsPerOp < res.NsPerOpMin {
			res.NsPerOpMin = nsPerOp
		}
		for _, stat := range extraStat.FindAllStringSubmatch(m[4], -1) {
			v, _ := strconv.ParseFloat(stat[1], 64)
			switch unit := stat[2]; unit {
			case "B/op":
				n := int64(v)
				res.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				res.AllocsPerOp = &n
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchstatjson: read: %w", err)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Result, 0, len(names))
	for _, name := range names {
		out = append(out, *byName[name])
	}
	return out, nil
}

// compare diffs the fresh results against the baseline and writes one line
// per benchmark to w. It returns the number of regressions: benchmarks
// present in both whose ns/op minimum or allocs/op exceeded the baseline by
// more than the given fractional thresholds. Benchmarks only in the fresh
// run ("new") or only in the baseline ("vanished") are reported but never
// counted — coverage changes are baseline refreshes, not regressions.
func compare(fresh []Result, baseline File, nsThresh, allocThresh float64, w io.Writer) int {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	regressions := 0
	seen := make(map[string]bool, len(fresh))
	for _, f := range fresh {
		seen[f.Name] = true
		b, ok := base[f.Name]
		if !ok {
			fmt.Fprintf(w, "  new       %s: %.0f ns/op (no baseline)\n", f.Name, f.NsPerOpMin)
			continue
		}
		status := "ok"
		if b.NsPerOpMin > 0 {
			if f.NsPerOpMin > b.NsPerOpMin*(1+nsThresh) {
				status = "REGRESSED"
				regressions++
			}
			fmt.Fprintf(w, "  %-9s %s: ns/op %.0f → %.0f (%+.1f%%, limit +%.0f%%)\n",
				status, f.Name, b.NsPerOpMin, f.NsPerOpMin,
				100*(f.NsPerOpMin-b.NsPerOpMin)/b.NsPerOpMin, 100*nsThresh)
		}
		if b.AllocsPerOp != nil && f.AllocsPerOp != nil {
			ba, fa := *b.AllocsPerOp, *f.AllocsPerOp
			if float64(fa) > float64(ba)*(1+allocThresh) {
				regressions++
				fmt.Fprintf(w, "  REGRESSED %s: allocs/op %d → %d (limit +%.0f%%)\n",
					f.Name, ba, fa, 100*allocThresh)
			}
		}
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  vanished  %s: in baseline but not in this run\n", b.Name)
		}
	}
	return regressions
}

// round2 is used by tests to compare floats tolerantly.
func round2(f float64) float64 {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	v, _ := strconv.ParseFloat(strings.TrimRight(s, "0"), 64)
	return v
}
