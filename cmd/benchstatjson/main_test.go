package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: some CPU
BenchmarkSetOps/n=16-8         	 8000000	       150 ns/op	      32 B/op	       1 allocs/op
BenchmarkEngineRounds/n=16-8   	    5647	    110880 ns/op	        10.00 rounds/run
BenchmarkEngineRounds/n=16-8   	    5700	    109500 ns/op	        10.00 rounds/run
BenchmarkEngineRounds/n=16-8   	    5500	    112200 ns/op	        10.00 rounds/run
PASS
ok  	repro/internal/core	4.2s
`

func TestParseAggregates(t *testing.T) {
	var echo bytes.Buffer
	results, err := parse(strings.NewReader(sampleOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleOutput {
		t.Fatal("parse must echo its input verbatim")
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}

	// Sorted by name: EngineRounds before SetOps.
	er := results[0]
	if er.Name != "EngineRounds/n=16" {
		t.Fatalf("name = %q", er.Name)
	}
	if er.Runs != 3 {
		t.Fatalf("runs = %d, want 3", er.Runs)
	}
	if er.Iterations != 5500 {
		t.Fatalf("iterations = %d, want last run's 5500", er.Iterations)
	}
	if got := round2(er.NsPerOpMean); got != round2((110880+109500+112200)/3.0) {
		t.Fatalf("mean = %v", er.NsPerOpMean)
	}
	if er.NsPerOpMin != 109500 {
		t.Fatalf("min = %v", er.NsPerOpMin)
	}
	if er.Metrics["rounds/run"] != 10 {
		t.Fatalf("custom metric missing: %v", er.Metrics)
	}

	so := results[1]
	if so.Name != "SetOps/n=16" {
		t.Fatalf("name = %q", so.Name)
	}
	if so.BytesPerOp == nil || *so.BytesPerOp != 32 {
		t.Fatalf("B/op = %v", so.BytesPerOp)
	}
	if so.AllocsPerOp == nil || *so.AllocsPerOp != 1 {
		t.Fatalf("allocs/op = %v", so.AllocsPerOp)
	}
}

func TestParseNoBenchLines(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok x 0.1s\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results from non-benchmark input", len(results))
	}
}

func intPtr(n int64) *int64 { return &n }

func TestCompareDetectsRegressions(t *testing.T) {
	baseline := File{Results: []Result{
		{Name: "A", NsPerOpMin: 1000, AllocsPerOp: intPtr(100)},
		{Name: "B", NsPerOpMin: 1000, AllocsPerOp: intPtr(100)},
		{Name: "C", NsPerOpMin: 1000},
		{Name: "Gone", NsPerOpMin: 500},
	}}
	fresh := []Result{
		{Name: "A", NsPerOpMin: 1100, AllocsPerOp: intPtr(110)}, // within +20%
		{Name: "B", NsPerOpMin: 1500, AllocsPerOp: intPtr(100)}, // ns/op regressed
		{Name: "C", NsPerOpMin: 900, AllocsPerOp: intPtr(5)},    // improved; no baseline allocs
		{Name: "New", NsPerOpMin: 42},
	}
	var buf bytes.Buffer
	got := compare(fresh, baseline, 0.20, 0.20, &buf)
	if got != 1 {
		t.Fatalf("regressions = %d, want 1 (B ns/op):\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED B", "new       New", "vanished  Gone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestCompareAllocRegression(t *testing.T) {
	baseline := File{Results: []Result{
		{Name: "A", NsPerOpMin: 1000, AllocsPerOp: intPtr(10)},
	}}
	fresh := []Result{
		{Name: "A", NsPerOpMin: 1000, AllocsPerOp: intPtr(13)}, // +30% allocs
	}
	var buf bytes.Buffer
	if got := compare(fresh, baseline, 0.20, 0.20, &buf); got != 1 {
		t.Fatalf("regressions = %d, want 1 (allocs):\n%s", got, buf.String())
	}
	// Raising the alloc threshold clears it.
	buf.Reset()
	if got := compare(fresh, baseline, 0.20, 0.50, &buf); got != 0 {
		t.Fatalf("regressions = %d, want 0 at +50%%:\n%s", got, buf.String())
	}
}

func TestCompareCleanRun(t *testing.T) {
	baseline := File{Results: []Result{
		{Name: "A", NsPerOpMin: 1000, AllocsPerOp: intPtr(10)},
	}}
	fresh := []Result{
		{Name: "A", NsPerOpMin: 800, AllocsPerOp: intPtr(8)},
	}
	var buf bytes.Buffer
	if got := compare(fresh, baseline, 0.20, 0.20, &buf); got != 0 {
		t.Fatalf("regressions = %d, want 0:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("clean run not reported ok:\n%s", buf.String())
	}
}

func TestParseStripsGomaxprocsSuffixOnly(t *testing.T) {
	// A name ending in a dash-number that is part of a sub-benchmark label
	// (before the whitespace) must keep everything except the final
	// -GOMAXPROCS suffix.
	in := "BenchmarkX/f=3-16 \t 100 \t 2500 ns/op\n"
	results, err := parse(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "X/f=3" {
		t.Fatalf("results = %+v", results)
	}
}
