// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per theorem/construction of the paper (see DESIGN.md §5).
//
// Usage:
//
//	go run ./cmd/experiments            # full sweeps (seconds to minutes)
//	go run ./cmd/experiments -quick     # shrunken sweeps
//	go run ./cmd/experiments -only E13  # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	rrfd "repro"
)

func main() {
	quick := flag.Bool("quick", false, "run shrunken sweeps")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E07)")
	flag.Parse()

	if err := run(*quick, *only); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(quick bool, only string) error {
	mode := "full"
	if quick {
		mode = "quick"
	}
	fmt.Printf("RRFD paper experiments (%s mode)\n", mode)
	fmt.Printf("Gafni, \"Round-by-Round Fault Detectors: Unifying Synchrony and Asynchrony\", PODC 1998\n\n")

	ran := 0
	for _, e := range rrfd.Experiments() {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		start := time.Now()
		table, err := e.Run(quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", only)
	}
	return nil
}
