// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per theorem/construction of the paper (see DESIGN.md §5).
//
// Usage:
//
//	go run ./cmd/experiments            # full sweeps (seconds to minutes)
//	go run ./cmd/experiments -quick     # shrunken sweeps
//	go run ./cmd/experiments -only E13  # a single experiment
//	go run ./cmd/experiments -metrics   # engine metric summary per experiment
//	go run ./cmd/experiments -workers 8 # fan seed sweeps over 8 workers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	rrfd "repro"
)

func main() {
	quick := flag.Bool("quick", false, "run shrunken sweeps")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E07)")
	metrics := flag.Bool("metrics", false, "print an engine metrics summary after each experiment")
	workers := flag.Int("workers", 0, "workers for experiment seed sweeps (0 = one per CPU, 1 = sequential)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "alias for -telemetry (the endpoint includes /debug/pprof)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d\n", *workers)
		os.Exit(1)
	}
	rrfd.SetExperimentWorkers(*workers)

	addr := *telemetryAddr
	if addr == "" {
		addr = *pprofAddr
	}
	if err := run(*quick, *only, *metrics, addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(quick bool, only string, metrics bool, telemetryAddr string) error {
	mode := "full"
	if quick {
		mode = "quick"
	}
	fmt.Printf("RRFD paper experiments (%s mode)\n", mode)
	fmt.Printf("Gafni, \"Round-by-Round Fault Detectors: Unifying Synchrony and Asynchrony\", PODC 1998\n\n")

	// With -metrics or -telemetry, every engine execution inside every
	// experiment reports to one shared Metrics via the process-wide default
	// observer — no experiment needs to know it is being measured — and the
	// seed-sweep worker pool meters task latency into the same registry.
	var m *rrfd.Metrics
	if metrics || telemetryAddr != "" {
		tel := rrfd.NewTelemetry()
		rrfd.SetDefaultObserver(tel.Metrics)
		defer rrfd.SetDefaultObserver(nil)
		rrfd.SetPoolMeter(&rrfd.PoolMeter{
			TaskNS:     tel.Hist.Get("par_task_ns"),
			QueueDepth: tel.Hist.Get("par_queue_depth"),
		})
		defer rrfd.SetPoolMeter(nil)
		if metrics {
			m = tel.Metrics
		}
		if telemetryAddr != "" {
			srv, err := rrfd.ServeTelemetry(telemetryAddr, tel)
			if err != nil {
				return fmt.Errorf("telemetry listener: %w", err)
			}
			defer srv.Close()
			fmt.Printf("telemetry listening on http://%s/ (/metrics, /snapshot, /debug/pprof/)\n\n", srv.Addr())
		}
	}

	ran := 0
	for _, e := range rrfd.Experiments() {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		start := time.Now()
		table, err := e.Run(quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		if m != nil {
			printSummary(e.ID, m.Snapshot())
			m.Reset()
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", only)
	}
	return nil
}

// printSummary renders one experiment's engine-level metrics as a single
// compact line: how many executions it drove, their shape, and where the
// engine spent its time.
func printSummary(id string, s rrfd.MetricsSnapshot) {
	if s.Runs == 0 {
		fmt.Printf("  %s metrics: no engine executions (substrate-level experiment)\n", id)
		return
	}
	fmt.Printf("  %s metrics: runs=%d rounds=%d suspicions=%d delivered=%d decisions=%d errors=%d plan=%.0fns/call deliver=%.0fns/round\n",
		id, s.Runs, s.Rounds, s.SuspicionsTotal, s.MessagesDelivered, s.Decisions, s.RunErrors,
		s.PhaseMeanNanos["plan"], s.PhaseMeanNanos["deliver"])
}
