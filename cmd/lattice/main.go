// Command lattice prints the RRFD submodel lattice: for every ordered pair
// of model predicates it decides, by EXHAUSTIVE enumeration of a tiny
// universe, whether the implication holds there (⇒), fails with
// counterexamples (✗ plus the witness count), or holds vacuously (·).
//
// An implication that holds for the tiny universe is not in general a
// theorem for all n, but every ✗ is a genuine counterexample, and the ⇒
// entries reproduce exactly the submodel structure §2 of the paper sets
// up.
//
// Usage:
//
//	go run ./cmd/lattice             # n=3, 1 round
//	go run ./cmd/lattice -rounds 2   # n=3, 2 rounds (117k traces/pair)
package main

import (
	"flag"
	"fmt"
	"os"

	rrfd "repro"
)

func main() {
	rounds := flag.Int("rounds", 1, "rounds per trace (1 or 2; 2 covers temporal predicates)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /snapshot and /debug/pprof on this address (the exhaustive sweeps are CPU-bound; e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "alias for -telemetry (the endpoint includes /debug/pprof)")
	flag.Parse()
	addr := *telemetryAddr
	if addr == "" {
		addr = *pprofAddr
	}
	if addr != "" {
		srv, err := rrfd.ServeTelemetry(addr, rrfd.NewTelemetry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry listener: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s/ (/metrics, /snapshot, /debug/pprof/)\n", srv.Addr())
	}
	if err := run(*rounds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(rounds int) error {
	const n = 3
	type entry struct {
		name string
		p    rrfd.Predicate
	}
	preds := []entry{
		{"omission(1)", rrfd.SendOmission(1)},
		{"crash(1)", rrfd.SyncCrash(1)},
		{"async(1)", rrfd.PerRoundBudget(1)},
		{"shmem(1)", rrfd.SharedMemory(1)},
		{"snap(1)", rrfd.AtomicSnapshot(1)},
		{"iis", rrfd.ImmediateSnapshot(n)},
		{"kset(1)", rrfd.KSetDetector(1)},
		{"kset(2)", rrfd.KSetDetector(2)},
		{"eq5", rrfd.IdenticalSuspects()},
		{"S", rrfd.NeverSuspectedExists()},
		{"nomutual", rrfd.NoMutualMiss()},
	}

	fmt.Printf("RRFD submodel lattice over the exhaustive n=%d, %d-round universe\n", n, rounds)
	fmt.Printf("cell: row ⇒ column?   ⇒ holds   ✗k fails with k witnesses   · vacuous premise\n\n")

	// Header.
	fmt.Printf("%-12s", "")
	for _, c := range preds {
		fmt.Printf("%-12s", c.name)
	}
	fmt.Println()

	for _, a := range preds {
		fmt.Printf("%-12s", a.name)
		for _, b := range preds {
			cell, err := classify(n, rounds, a.p, b.p)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected ⇒ edges (paper §2): crash→omission, iis→snap→shmem→async,")
	fmt.Println("eq5→kset(1)→kset(2), snap(1)→kset(2); S ⇔ omission with f=n−1")
	return nil
}

func classify(n, rounds int, a, b rrfd.Predicate) (string, error) {
	checked, witnesses, err := rrfd.ExhaustiveWitnesses(n, rounds, a, b)
	if err != nil {
		return "", err
	}
	_ = checked
	if witnesses > 0 {
		return fmt.Sprintf("✗%d", witnesses), nil
	}
	// Distinguish a real implication from a vacuous premise.
	satisfying := 0
	err = rrfd.ExhaustiveTraces(n, rounds, func(t *rrfd.Trace) error {
		if a.Check(t) == nil {
			satisfying++
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if satisfying == 0 {
		return "·", nil
	}
	return "⇒", nil
}
