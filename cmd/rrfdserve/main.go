// Command rrfdserve runs one agreement-service node: it joins a TCP mesh
// of n peers, accepts client submissions on a second listener, runs one
// k-set agreement instance per distinct instance ID, and journals every
// proposal and decision to a write-ahead log before acknowledging — kill
// the process at any point and the restarted incarnation replays the
// journal, so no acknowledged decision is ever lost and a retried request
// ID is answered from the decision table instead of re-deciding.
//
// Robustness controls: -max-inflight bounds the concurrent-instance
// table (excess submits are shed with a structured overload answer),
// -request-timeout degrades a slow instance into an abstain-and-report,
// and -instance-ttl evicts instances that cannot gather a quorum so the
// table drains and admission reopens.
//
// -telemetry ADDR serves /metrics, /snapshot and /debug/pprof live:
// request/decide latency histograms, in-flight depth, shed and abstain
// counters.
//
// Usage:
//
//	rrfdserve -me 0 -mesh :7000,:7001,:7002 -listen :8000 -wal /var/lib/rrfd/n0
//	rrfdserve -me 1 -mesh :7000,:7001,:7002 -listen :8001 -wal /var/lib/rrfd/n1 -sync always
//	rrfdserve -me 0 -n 1 -mesh 127.0.0.1:0 -listen 127.0.0.1:0 -wal /tmp/solo   # single node
//
// SIGINT / SIGTERM shuts the node down cleanly; the journal makes any
// less polite exit equally safe.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rrfd "repro"
)

type config struct {
	me, n, f    int
	mesh        string
	listen      string
	walDir      string
	sync        string
	maxInflight int
	reqTimeout  time.Duration
	instTTL     time.Duration
	seed        int64
	telemetry   string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.me, "me", 0, "this node's pid (index into -mesh)")
	flag.IntVar(&cfg.n, "n", 0, "mesh size (0 = len(-mesh))")
	flag.IntVar(&cfg.f, "f", 0, "fault budget; decisions gather n-f proposals")
	flag.StringVar(&cfg.mesh, "mesh", "", "comma-separated mesh addresses, one per pid")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "client-facing listen address")
	flag.StringVar(&cfg.walDir, "wal", "", "write-ahead-log directory (required)")
	flag.StringVar(&cfg.sync, "sync", "always", "journal fsync policy: always (an ack implies durability) | never (survives process death, not power loss)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "admission bound on concurrent instances (0 = 1024)")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 0, "server-side request deadline before abstain-and-report (0 = 2s)")
	flag.DurationVar(&cfg.instTTL, "instance-ttl", 0, "evict instances that cannot gather a quorum after this long (0 = 2x request timeout)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the mesh's redial jitter")
	flag.StringVar(&cfg.telemetry, "telemetry", "", "serve /metrics, /snapshot and /debug/pprof on this address")
	flag.Parse()

	srv, cleanup, err := start(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cleanup()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// start validates flags and brings the node up; main only adds signal
// handling, so tests drive the whole surface through here.
func start(cfg config, w io.Writer) (*rrfd.ServiceServer, func(), error) {
	nop := func() {}
	if cfg.walDir == "" {
		return nil, nop, fmt.Errorf("-wal DIR is required: the journal is what makes acknowledgements durable")
	}
	addrs := strings.Split(cfg.mesh, ",")
	if cfg.mesh == "" {
		return nil, nop, fmt.Errorf("-mesh is required: comma-separated addresses, one per pid")
	}
	if cfg.n == 0 {
		cfg.n = len(addrs)
	}
	if cfg.n != len(addrs) {
		return nil, nop, fmt.Errorf("-n %d does not match %d -mesh addresses", cfg.n, len(addrs))
	}
	if cfg.me < 0 || cfg.me >= cfg.n {
		return nil, nop, fmt.Errorf("-me %d out of range [0,%d)", cfg.me, cfg.n)
	}
	if cfg.f < 0 || cfg.f >= cfg.n {
		return nil, nop, fmt.Errorf("-f %d out of range [0,%d)", cfg.f, cfg.n)
	}
	var sync rrfd.SyncMode
	switch cfg.sync {
	case "always":
		sync = rrfd.SyncAlways
	case "never":
		sync = rrfd.SyncNever
	default:
		return nil, nop, fmt.Errorf("unknown -sync %q: always or never", cfg.sync)
	}

	var tel *rrfd.Telemetry
	scfg := rrfd.ServiceConfig{
		Me: rrfd.PID(cfg.me), N: cfg.n, F: cfg.f,
		MeshAddrs:      addrs,
		ClientAddr:     cfg.listen,
		WALDir:         cfg.walDir,
		Sync:           sync,
		MaxInflight:    cfg.maxInflight,
		RequestTimeout: cfg.reqTimeout,
		InstanceTTL:    cfg.instTTL,
		Seed:           cfg.seed,
	}
	if cfg.telemetry != "" {
		tel = rrfd.NewTelemetry()
		scfg.Observer = tel.Metrics
		scfg.Hist = tel.Hist
	}
	srv, err := rrfd.StartService(scfg)
	if err != nil {
		return nil, nop, err
	}
	cleanup := nop
	if cfg.telemetry != "" {
		ts, err := rrfd.ServeTelemetry(cfg.telemetry, tel)
		if err != nil {
			srv.Close()
			return nil, nop, fmt.Errorf("telemetry listener: %w", err)
		}
		cleanup = func() { ts.Close() }
		fmt.Fprintf(w, "telemetry listening on http://%s/ (/metrics, /snapshot, /debug/pprof/)\n", ts.Addr())
	}
	fmt.Fprintf(w, "rrfdserve p%d/%d incarnation %d: mesh %s, clients %s, wal %s (sync=%s)\n",
		cfg.me, cfg.n, srv.Incarnation(), srv.MeshAddr(), srv.ClientAddr(), cfg.walDir, cfg.sync)
	if rec := len(srv.RecoveredDecisions()); rec > 0 {
		fmt.Fprintf(w, "recovered %d durable decisions from the journal\n", rec)
	}
	return srv, cleanup, nil
}
