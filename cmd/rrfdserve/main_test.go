package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	rrfd "repro"
)

func TestStartRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config
		want string
	}{
		{"no wal", config{mesh: "127.0.0.1:0"}, "-wal"},
		{"no mesh", config{walDir: t.TempDir(), sync: "always"}, "-mesh"},
		{"n mismatch", config{walDir: t.TempDir(), mesh: "a,b", n: 3, sync: "always"}, "does not match"},
		{"me range", config{walDir: t.TempDir(), mesh: "a,b", me: 2, sync: "always"}, "-me"},
		{"f range", config{walDir: t.TempDir(), mesh: "a,b", f: 2, sync: "always"}, "-f"},
		{"bad sync", config{walDir: t.TempDir(), mesh: "127.0.0.1:0", sync: "sometimes"}, "-sync"},
	} {
		var buf bytes.Buffer
		if _, _, err := start(tc.cfg, &buf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestSingleNodeServeAndRecover drives the full CLI surface short of
// main(): start a one-node service, decide, shut down, start the next
// incarnation on the same journal and check it remembers.
func TestSingleNodeServeAndRecover(t *testing.T) {
	cfg := config{
		me: 0, mesh: "127.0.0.1:0", listen: "127.0.0.1:0",
		walDir: t.TempDir(), sync: "always",
		reqTimeout: 2 * time.Second, seed: 1,
	}
	var buf bytes.Buffer
	srv, cleanup, err := start(cfg, &buf)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cleanup()
	c := rrfd.NewServiceClient(rrfd.ServiceClientConfig{Addr: srv.ClientAddr(), Timeout: 2 * time.Second, Seed: 1})
	resp, err := c.Submit("job", "r1", 7)
	if err != nil || resp.Status != rrfd.ServiceDecided || resp.Val != 7 {
		t.Fatalf("submit: %+v, %v", resp, err)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !strings.Contains(buf.String(), "incarnation 1") {
		t.Fatalf("banner missing incarnation:\n%s", buf.String())
	}

	buf.Reset()
	srv2, cleanup2, err := start(cfg, &buf)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer cleanup2()
	defer srv2.Close()
	if srv2.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", srv2.Incarnation())
	}
	if v, ok := srv2.RecoveredDecisions()["job"]; !ok || v != 7 {
		t.Fatalf("journal did not recover job=7: %v %v", v, ok)
	}
	if !strings.Contains(buf.String(), "recovered 1 durable decisions") {
		t.Fatalf("banner missing recovery line:\n%s", buf.String())
	}
}
