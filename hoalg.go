package rrfd

import "repro/internal/hoalg"

// ---- Model expression algebra (internal/hoalg) ----
//
// A ModelExpr is a higher-order model over the per-round suspicion sets
// D(i,r): atoms are the paper's elementary constraints (eqs. (1)–(5),
// the §3 k-set detector, ...) and expressions close them under and/or/
// not/forever/eventually. One expression compiles three ways — Compile
// (a checkable Predicate), CompileEnum/EnumBranches (an exhaustive
// adversary enumeration for the model checker) and CompilePlan (a chaos
// fault plan whose honest form satisfies the model and whose negation
// violates it). See DESIGN §17.

type (
	// ModelExpr is a model expression over per-round suspicion sets.
	ModelExpr = hoalg.Expr

	// ModelParams instantiates a catalog model for a concrete system
	// size (n, f, k, stabilization round).
	ModelParams = hoalg.Params

	// DerivedModel is one named catalog model (expression family plus
	// its paper locus).
	DerivedModel = hoalg.Model

	// ModelBranch is one disjunct of a model with its enumerator:
	// disjunctions are explored branch by branch, since mixing branches
	// per round could satisfy neither disjunct.
	ModelBranch = hoalg.Branch

	// ModelParseError reports where and why a model expression string
	// failed to parse.
	ModelParseError = hoalg.ParseError
)

var (
	// ParseModel parses the canonical expression syntax (the String
	// round-trip form), e.g. "selftrust & atmost(2)".
	ParseModel = hoalg.Parse

	// ResolveModel turns a -model argument into an expression: a
	// catalog model name instantiated with the params, or failing that
	// a parsed expression string.
	ResolveModel = hoalg.Resolve

	// ModelCatalog lists the derived-model catalog in presentation
	// order; LookupModel finds one by name; ModelNames lists the names.
	ModelCatalog = hoalg.Catalog
	LookupModel  = hoalg.Lookup
	ModelNames   = hoalg.Names
)
