package rrfd

import (
	"repro/internal/agreement"
)

// Agreement algorithms for RRFD systems.
var (
	// OneRoundKSet is Theorem 3.1's algorithm: decide the value of the
	// smallest identifier outside D(i,1) — k-set agreement in one round
	// under the KSetDetector predicate.
	OneRoundKSet = agreement.OneRoundKSet

	// FloodMin is synchronous min-flooding, deciding after the given
	// number of rounds; ⌊f/k⌋+1 rounds solve k-set agreement with f
	// crash faults (and f+1 rounds solve consensus).
	FloodMin = agreement.FloodMin

	// RotatingCoordinator solves consensus in n rounds under the
	// detector-S RRFD (§2 item 6): some process is never suspected, so
	// its coordinator round forces agreement.
	RotatingCoordinator = agreement.RotatingCoordinator

	// ValidateAgreement checks k-agreement, validity, termination, and an
	// optional decision-round bound on an execution result.
	ValidateAgreement = agreement.Validate

	// PhasedConsensus is the adopt-commit-based consensus (after Yang,
	// Neiger and Gafni, the paper's reference [16]) for the
	// eventual-accuracy RRFD: safe under PerRoundBudget(f) with 2f < n,
	// live once some process stops being suspected.
	PhasedConsensus = agreement.PhasedConsensus
)

// FloodSet returns the f+1-round consensus baseline (FloodMin with k = 1 —
// the Fischer–Lynch bound setting).
func FloodSet(f int) Factory {
	return agreement.FloodMin(f + 1)
}
