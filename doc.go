// Package rrfd is a library of round-by-round fault detectors (RRFDs),
// reproducing Eli Gafni's "Round-by-Round Fault Detectors: Unifying
// Synchrony and Asynchrony" (PODC 1998).
//
// # The model
//
// Computation evolves in communication-closed rounds. In round r every
// process emits a message and then, for every other process p_j, either
// receives p_j's round-r message or is told by the fault detector that p_j
// is suspected for this round (p_j ∈ D(i,r)); communication missed at a
// round is lost. The detector is unreliable — a suspicion does not imply a
// real failure and may be contradicted a round later. A concrete model of
// distributed computation (synchronous or asynchronous, message passing or
// shared memory, failure-detector-augmented or not) is captured entirely by
// a predicate over the suspect sets D(i,r); the detector is an adversary
// choosing the worst suspect sets the predicate allows.
//
// # What the library provides
//
//   - the RRFD engine: deterministic, adversary-driven round execution
//     (Run, CollectTrace) with recorded traces;
//   - the paper's model predicates as first-class checkable objects
//     (SendOmission, SyncCrash, PerRoundBudget, SharedMemory,
//     AtomicSnapshot, NeverSuspectedExists, KSetDetector,
//     IdenticalSuspects, ...) plus empirical implication testing;
//   - hostile adversaries realizing each predicate (Omission, Crash,
//     ChainCrash, AsyncBudget, SnapshotChain, KSetUncertainty, ...);
//   - agreement algorithms: the one-round k-set agreement of Theorem 3.1,
//     FloodMin / FloodSet synchronous baselines, rotating-coordinator
//     consensus for the detector-S model;
//   - operational substrates, each validated against the predicate the
//     paper assigns it: an asynchronous message-passing network
//     (RunNetworkRounds), SWMR shared memory with a model-checking
//     scheduler (RunShared, Explore), wait-free atomic snapshots
//     (NewSnapshot, RunSnapshotRounds), the adopt-commit protocol of §4.2
//     (AdoptCommit), and the semi-synchronous DDS model of §5
//     (RunTwoStep, RelayFactory);
//   - the paper's simulations: two message-passing rounds to one
//     shared-memory round, the B-system reduction, Theorem 4.1's
//     synchronous-omission prefix, and Theorem 4.3's crash-fault
//     simulation via adopt-commit (CrashSync) — including the lower-bound
//     witness of Corollary 4.4;
//   - the experiment harness (Experiments) regenerating every table in
//     EXPERIMENTS.md.
//
// See README.md for a tour and examples/ for runnable programs.
package rrfd
