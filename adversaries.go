package rrfd

import (
	"repro/internal/adversary"
)

// Adversaries: hostile oracles realizing each model predicate. Every
// adversary is deterministic given its seed.
var (
	// Benign is the fault-free oracle (nobody ever suspected).
	Benign = adversary.Benign

	// Omission realizes eq. (1): up to f victims whose messages drop at
	// arbitrary receivers (rate tunes hostility).
	Omission = adversary.Omission

	// Crash realizes eqs. (1)+(2): up to f victims crash at scheduled
	// rounds, with partial final broadcasts.
	Crash = adversary.Crash

	// ChainCrash is the k-chains adversary of the ⌊f/k⌋+1 synchronous
	// lower bound: with inputs v_i = i it hides values 0..k−1 along
	// disjoint crash chains.
	ChainCrash = adversary.ChainCrash

	// AsyncBudget realizes eq. (3): arbitrary per-round misses of at most
	// f processes.
	AsyncBudget = adversary.AsyncBudget

	// SharedMemAdversary realizes eqs. (3)+(4): per-round budget plus a
	// "star" process seen by everyone.
	SharedMemAdversary = adversary.SharedMem

	// SnapshotChain realizes the §2 item 5 predicate by linearizing each
	// round's writes and handing out suffix suspect sets.
	SnapshotChain = adversary.SnapshotChain

	// NoMutualMissAdversary realizes eq. (3) plus the no-mutual-miss
	// clause, biased toward building miss cycles.
	NoMutualMissAdversary = adversary.NoMutualMissOracle

	// BSystemAdversary realizes the §2 item 3 "B system".
	BSystemAdversary = adversary.BSystemOracle

	// KSetUncertainty realizes the §3 detector: per-round disagreement on
	// fewer than k processes.
	KSetUncertainty = adversary.KSetUncertainty

	// Identical realizes eq. (5): one common suspect set per round.
	Identical = adversary.Identical

	// SpareNeverSuspected realizes §2 item 6: one designated process is
	// never suspected; everything else is fair game.
	SpareNeverSuspected = adversary.SpareNeverSuspected

	// EventuallySpare realizes the eventual-accuracy (◇S-analogue)
	// predicate: budget f per round, the spare process fair game through
	// round stab and never suspected afterwards.
	EventuallySpare = adversary.EventuallySpare
)
