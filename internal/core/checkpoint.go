package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/wal"
)

// This file is the engine half of the crash-recovery substrate: durable
// checkpoints of a lock-step execution, written through internal/wal, and
// Resume, which reconstructs a killed run from its log and continues it.
//
// The record stream of a checkpoint log is
//
//	meta                      — once, first record: n and the task inputs
//	round, round, …           — one per completed round (the RoundRecord)
//	snapshot                  — every CheckpointOptions.Every rounds:
//	                            algorithm states + decisions so far
//	end                       — exactly once, iff the run finished cleanly
//
// Rounds are the unit of durability because communication-closed rounds make
// state-at-round-r well defined: a record is appended only after every live
// process finished its round-r Deliver, so replaying records r' ≤ r in order
// regenerates the exact per-process state (algorithms are deterministic).
// Snapshots are an optimization that lets Resume skip the replay prefix when
// every algorithm implements Snapshotter; correctness never depends on them.

// Record kinds of the checkpoint log.
const (
	recMeta  uint8 = 1 // gob ckMeta
	recRound uint8 = 2 // JSON roundRecordJSON
	recSnap  uint8 = 3 // gob ckSnapshot
	recEnd   uint8 = 4 // empty payload: the run completed
)

// Snapshotter is implemented by algorithms whose state can be captured and
// restored, letting Resume start from the latest snapshot instead of
// replaying every logged round. Snapshot/Restore must round-trip exactly:
// a restored algorithm must behave identically to the original from the
// next round on.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(snapshot []byte) error
}

// CheckpointOptions tunes WithCheckpointing.
type CheckpointOptions struct {
	// Every is the snapshot interval in rounds; 0 logs rounds without ever
	// snapshotting (Resume then replays from round 1).
	Every int

	// Sync is the WAL fsync policy for round records. Snapshots are always
	// fsynced — they are the durability points.
	Sync wal.SyncMode

	// SegmentBytes is the WAL segment rotation threshold (0 = wal default).
	SegmentBytes int
}

func (co CheckpointOptions) walOptions() wal.Options {
	return wal.Options{SegmentBytes: co.SegmentBytes, Sync: co.Sync}
}

// WithCheckpointing makes Run journal the execution to a WAL in dir so a
// killed run can be continued with Resume. dir must not already hold a log.
func WithCheckpointing(dir string, co CheckpointOptions) Option {
	return func(o *engineOptions) { o.ckDir, o.ckOpts = dir, co }
}

// WithHaltAfterRound stops the engine with a *HaltError once round r has
// completed (and been journaled, under WithCheckpointing), without writing
// the end-of-log marker. It deterministically simulates a kill at a round
// boundary: the log looks exactly as if the process died there, and Resume
// picks up from round r+1.
func WithHaltAfterRound(r int) Option {
	return func(o *engineOptions) { o.haltAfter = r }
}

// HaltError reports a run stopped by WithHaltAfterRound. The execution is
// not failed — it is suspended, and Resume(Dir, …) continues it.
type HaltError struct {
	Round int
	Dir   string
}

// Error implements error.
func (e *HaltError) Error() string {
	return fmt.Sprintf("core: halted after round %d (resumable from %s)", e.Round, e.Dir)
}

// DivergenceError reports that a resumed oracle did not reproduce the
// journaled prefix: the continuation would not be the same execution.
type DivergenceError struct {
	Round  int
	Reason string
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("core: resume divergence at round %d: %s", e.Round, e.Reason)
}

// ckMeta is the first record of every checkpoint log.
type ckMeta struct {
	N      int
	Inputs []Value
}

// ckSnapshot captures everything replay would have regenerated up to and
// including round R.
type ckSnapshot struct {
	R         int
	Outputs   map[PID]Value
	DecidedAt map[PID]int
	States    [][]byte
}

func init() {
	// Decision and input values travel through gob as interfaces; register
	// the concrete types the repo's algorithms use. Exotic value types can
	// be added with RegisterCheckpointValue.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]int(nil))
}

// RegisterCheckpointValue registers a concrete input/decision value type for
// checkpoint encoding (a thin wrapper over gob.Register). Needed only for
// algorithms whose Value types are not basic Go types.
func RegisterCheckpointValue(v any) { gob.Register(v) }

// checkpointer journals one execution.
type checkpointer struct {
	log   *wal.Log
	every int
}

func newCheckpointer(dir string, co CheckpointOptions, n int, inputs []Value) (*checkpointer, error) {
	l, err := wal.Create(dir, co.walOptions())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ckMeta{N: n, Inputs: inputs}); err != nil {
		l.Close()
		return nil, fmt.Errorf("core: encode checkpoint meta: %w", err)
	}
	if _, err := l.Append(recMeta, buf.Bytes()); err != nil {
		l.Close()
		return nil, err
	}
	if err := l.Sync(); err != nil {
		l.Close()
		return nil, err
	}
	return &checkpointer{log: l, every: co.Every}, nil
}

// endOfRound journals a completed round and, on the snapshot cadence, the
// full execution state.
func (ck *checkpointer) endOfRound(e *execution, rec *RoundRecord) error {
	b, err := json.Marshal(roundRecordJSON{
		R:        rec.R,
		Suspects: rec.Suspects,
		Deliver:  rec.Deliver,
		Active:   rec.Active,
		Crashed:  rec.Crashed,
	})
	if err != nil {
		return fmt.Errorf("core: encode round record: %w", err)
	}
	if _, err := ck.log.Append(recRound, b); err != nil {
		return err
	}
	if ck.every <= 0 || rec.R%ck.every != 0 {
		return nil
	}
	states, ok := snapshotStates(e.procs)
	if !ok {
		return nil // some algorithm can't snapshot: replay-only log
	}
	start := e.now()
	snap := ckSnapshot{
		R:         rec.R,
		Outputs:   make(map[PID]Value, len(e.res.Outputs)),
		DecidedAt: make(map[PID]int, len(e.res.DecidedAt)),
		States:    states,
	}
	for p, v := range e.res.Outputs {
		snap.Outputs[p] = v
	}
	for p, r := range e.res.DecidedAt {
		snap.DecidedAt[p] = r
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	if _, err := ck.log.Append(recSnap, buf.Bytes()); err != nil {
		return err
	}
	if err := ck.log.Sync(); err != nil {
		return err
	}
	if e.ob != nil {
		elapsed := e.now().Sub(start)
		e.ob.Event("recovery.checkpoint", rec.R, -1, map[string]any{
			"bytes": buf.Len(),
			"nanos": elapsed.Nanoseconds(),
		})
	}
	return nil
}

func (ck *checkpointer) writeEnd() error {
	if _, err := ck.log.Append(recEnd, nil); err != nil {
		return err
	}
	return ck.log.Sync()
}

func (ck *checkpointer) close() error { return ck.log.Close() }

// snapshotStates captures every algorithm's state, or reports that at least
// one algorithm does not support snapshotting.
func snapshotStates(procs []Algorithm) ([][]byte, bool) {
	states := make([][]byte, len(procs))
	for i, a := range procs {
		s, ok := a.(Snapshotter)
		if !ok {
			return nil, false
		}
		b, err := s.Snapshot()
		if err != nil {
			return nil, false
		}
		states[i] = b
	}
	return states, true
}

// Resume reconstructs the execution journaled in dir and continues it to
// completion. The factory and oracle must be the ones the original run used
// (same determinism, same seed): Resume replays the journaled rounds through
// fresh algorithm instances (or restores the latest snapshot when every
// algorithm implements Snapshotter), fast-forwards the oracle by re-planning
// every journaled round, and verifies the oracle reproduces the journal —
// returning a *DivergenceError if not, rather than silently forking history.
//
// A log whose run already completed resumes to the same final Result. The
// continuation keeps journaling to the same log, so Resume is itself
// killable and resumable.
func Resume(dir string, factory Factory, oracle Oracle, opts ...Option) (res *Result, err error) {
	o := engineOptions{maxRounds: 10000, trace: true}
	for _, opt := range opts {
		opt(&o)
	}
	if o.ckDir != "" && o.ckDir != dir {
		return nil, fmt.Errorf("core: resume dir %s conflicts with WithCheckpointing dir %s", dir, o.ckDir)
	}
	o.ckDir = dir

	l, recs, rep, err := wal.Open(dir, o.ckOpts.walOptions())
	if err != nil {
		return nil, err
	}
	meta, rounds, snap, ended, err := decodeLog(recs)
	if err != nil {
		l.Close()
		return nil, err
	}
	n := meta.N

	ob := o.observer
	if ob == nil {
		ob = DefaultObserver()
	}
	now := o.clock
	if now == nil {
		now = time.Now
	}
	if ob != nil {
		ob.RunStart(n)
		defer func() {
			rounds, decided := 0, 0
			if res != nil {
				rounds, decided = res.Rounds, len(res.DecidedAt)
			}
			ob.RunEnd(rounds, decided, err)
		}()
	}

	procs := make([]Algorithm, n)
	for i := range procs {
		procs[i] = factory(PID(i), n, meta.Inputs[i])
	}

	rebuilt := &Result{
		Outputs:   make(map[PID]Value, n),
		DecidedAt: make(map[PID]int, n),
		Crashed:   NewSet(n),
	}
	if o.trace {
		rebuilt.Trace = NewTrace(n)
	}

	// Restore from the latest snapshot when possible; otherwise replay the
	// whole journaled prefix through the fresh algorithms.
	replayFrom := 1
	if snap != nil {
		restored, rerr := restoreStates(procs, snap)
		if rerr != nil {
			l.Close()
			return nil, rerr
		}
		if restored {
			replayFrom = snap.R + 1
			for p, v := range snap.Outputs {
				rebuilt.Outputs[p] = v
			}
			for p, r := range snap.DecidedAt {
				rebuilt.DecidedAt[p] = r
			}
		}
	}
	for _, rr := range rounds {
		if rr.R < replayFrom {
			continue
		}
		msgs := make([]Message, n)
		rr.Active.ForEach(func(p PID) { msgs[p] = procs[p].Emit(rr.R) })
		rr.Active.ForEach(func(p PID) {
			in := make(map[PID]Message, rr.Deliver[p].Count())
			rr.Deliver[p].ForEach(func(q PID) { in[q] = msgs[q] })
			out, decided := procs[p].Deliver(rr.R, in, rr.Suspects[p].Clone())
			if decided {
				if _, done := rebuilt.DecidedAt[p]; !done {
					rebuilt.Outputs[p] = out
					rebuilt.DecidedAt[p] = rr.R
				}
			}
		})
	}

	// Fast-forward the oracle over every journaled round — including ones
	// the snapshot let the algorithms skip — verifying it re-plans history
	// exactly. Stateful (seeded) oracles end up positioned for round R+1.
	activeBefore := FullSet(n)
	for i := range rounds {
		rr := &rounds[i]
		plan := oracle.Plan(rr.R, activeBefore)
		if err := validatePlan(n, rr.R, activeBefore, &plan); err != nil {
			l.Close()
			return nil, err
		}
		nowActive := activeBefore.Diff(plan.Crashes)
		if !nowActive.Equal(rr.Active) {
			l.Close()
			return nil, &DivergenceError{Round: rr.R, Reason: fmt.Sprintf("journal has active=%s, oracle re-planned %s", rr.Active, nowActive)}
		}
		var derr error
		nowActive.ForEach(func(p PID) {
			if derr != nil {
				return
			}
			if !plan.Suspects[p].Equal(rr.Suspects[p]) {
				derr = &DivergenceError{Round: rr.R, Reason: fmt.Sprintf("p%d journal D=%s, oracle D=%s", p, rr.Suspects[p], plan.Suspects[p])}
				return
			}
			if got := plan.deliverSet(p, nowActive); !got.Equal(rr.Deliver[p]) {
				derr = &DivergenceError{Round: rr.R, Reason: fmt.Sprintf("p%d journal S=%s, oracle S=%s", p, rr.Deliver[p], got)}
			}
		})
		if derr != nil {
			l.Close()
			return nil, derr
		}
		activeBefore = nowActive
	}

	rebuilt.Rounds = len(rounds)
	rebuilt.Crashed = FullSet(n).Diff(activeBefore)
	if o.trace {
		for i := range rounds {
			rebuilt.Trace.Append(rounds[i])
		}
	}
	if ob != nil {
		fromSnap := 0
		if replayFrom > 1 {
			fromSnap = replayFrom - 1
		}
		ob.Event("recovery.resume", len(rounds), -1, map[string]any{
			"replayed_rounds": len(rounds) - (replayFrom - 1),
			"truncated_bytes": rep.TruncatedBytes,
			"from_snapshot":   fromSnap,
		})
	}

	e := &execution{
		n:      n,
		o:      o,
		ob:     ob,
		now:    now,
		oracle: oracle,
		procs:  procs,
		res:    rebuilt,
		active: activeBefore,
		full:   FullSet(n),
		ck:     &checkpointer{log: l, every: o.ckOpts.Every},
	}

	if ended || (len(rounds) > 0 && allDecided(activeBefore, rebuilt.DecidedAt) && len(rounds) >= o.extraRound) {
		// The journaled run already finished (possibly killed between the
		// last round and the end marker): settle the log and hand back the
		// reconstructed result.
		if !ended {
			if err := e.ck.writeEnd(); err != nil {
				l.Close()
				return rebuilt, err
			}
		}
		if err := e.ck.close(); err != nil {
			return rebuilt, err
		}
		return rebuilt, nil
	}
	return e.run(len(rounds) + 1)
}

// decodeLog parses a checkpoint log's records.
func decodeLog(recs []wal.Record) (meta ckMeta, rounds []RoundRecord, snap *ckSnapshot, ended bool, err error) {
	if len(recs) == 0 {
		return meta, nil, nil, false, fmt.Errorf("core: nothing to resume: empty checkpoint log")
	}
	if recs[0].Kind != recMeta {
		return meta, nil, nil, false, fmt.Errorf("core: checkpoint log does not start with a meta record (kind %d)", recs[0].Kind)
	}
	if err := gob.NewDecoder(bytes.NewReader(recs[0].Payload)).Decode(&meta); err != nil {
		return meta, nil, nil, false, fmt.Errorf("core: decode checkpoint meta: %w", err)
	}
	if meta.N <= 0 || len(meta.Inputs) != meta.N {
		return meta, nil, nil, false, fmt.Errorf("core: corrupt checkpoint meta: n=%d inputs=%d", meta.N, len(meta.Inputs))
	}
	for _, rec := range recs[1:] {
		switch rec.Kind {
		case recRound:
			var rj roundRecordJSON
			if err := json.Unmarshal(rec.Payload, &rj); err != nil {
				return meta, nil, nil, false, fmt.Errorf("core: decode round record: %w", err)
			}
			if rj.R != len(rounds)+1 {
				return meta, nil, nil, false, fmt.Errorf("core: checkpoint log has round %d where %d expected", rj.R, len(rounds)+1)
			}
			if len(rj.Suspects) != meta.N || len(rj.Deliver) != meta.N {
				return meta, nil, nil, false, fmt.Errorf("core: round %d record sized for %d processes, want %d", rj.R, len(rj.Suspects), meta.N)
			}
			rounds = append(rounds, RoundRecord{
				R:        rj.R,
				Suspects: rj.Suspects,
				Deliver:  rj.Deliver,
				Active:   rj.Active,
				Crashed:  rj.Crashed,
			})
		case recSnap:
			var s ckSnapshot
			if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&s); err != nil {
				return meta, nil, nil, false, fmt.Errorf("core: decode snapshot: %w", err)
			}
			if s.R > len(rounds) {
				return meta, nil, nil, false, fmt.Errorf("core: snapshot at round %d but only %d rounds journaled", s.R, len(rounds))
			}
			snap = &s
		case recEnd:
			ended = true
		case recMeta:
			return meta, nil, nil, false, fmt.Errorf("core: duplicate meta record at seq %d", rec.Seq)
		default:
			return meta, nil, nil, false, fmt.Errorf("core: unknown checkpoint record kind %d at seq %d", rec.Kind, rec.Seq)
		}
	}
	return meta, rounds, snap, ended, nil
}

// restoreStates loads a snapshot into the algorithms. It reports false —
// without touching any algorithm, so full replay stays valid — when the
// algorithms don't all implement Snapshotter; a Restore that fails partway
// is a hard error, because the fleet is then neither fresh nor restored.
func restoreStates(procs []Algorithm, snap *ckSnapshot) (bool, error) {
	if len(snap.States) != len(procs) {
		return false, fmt.Errorf("core: snapshot holds %d states for %d processes", len(snap.States), len(procs))
	}
	ss := make([]Snapshotter, len(procs))
	for i, a := range procs {
		s, ok := a.(Snapshotter)
		if !ok {
			return false, nil
		}
		ss[i] = s
	}
	for i, s := range ss {
		if err := s.Restore(snap.States[i]); err != nil {
			return false, fmt.Errorf("core: restore p%d from snapshot: %w", i, err)
		}
	}
	return true, nil
}
