package core

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WithObserver attaches an observer to the execution: the engine calls its
// hooks at run/round/emit/deliver/decide boundaries and times each phase.
// With no observer attached (and no default observer installed) the hot
// path pays only a nil check per site.
func WithObserver(o obs.Observer) Option {
	return func(eo *engineOptions) { eo.observer = o }
}

// WithClock injects the clock the engine uses for phase timing when an
// observer is attached. The default is time.Now; tests inject a fake clock
// to make latency metrics deterministic.
func WithClock(now func() time.Time) Option {
	return func(eo *engineOptions) { eo.clock = now }
}

// defaultObserver holds the process-wide observer Run falls back to when no
// WithObserver option is given. It lets a harness (cmd/experiments) observe
// every engine execution without threading an option through each call
// site.
var defaultObserver atomic.Value // of observerBox

type observerBox struct{ o obs.Observer }

// SetDefaultObserver installs o as the fallback observer for every Run that
// does not pass WithObserver. Passing nil uninstalls it. Safe for
// concurrent use, but intended for harness setup, not per-run toggling.
func SetDefaultObserver(o obs.Observer) {
	defaultObserver.Store(observerBox{o: o})
}

// DefaultObserver returns the installed fallback observer, or nil.
func DefaultObserver() obs.Observer {
	if v := defaultObserver.Load(); v != nil {
		return v.(observerBox).o
	}
	return nil
}

// observerInts renders a Set as the plain-int member list observers speak.
func observerInts(s Set) []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(p PID) { out = append(out, int(p)) })
	return out
}
