package core

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// crashyOracle crashes process n-1 in round 2 and has everyone suspect it
// from then on; otherwise benign.
func crashyOracle(n int) Oracle {
	return OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crashes := NewSet(n)
		if r == 2 {
			crashes.Add(PID(n - 1))
		}
		for i := range sus {
			sus[i] = NewSet(n)
			if r >= 2 {
				sus[i].Add(PID(n - 1))
			}
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
}

func TestRunObserverMatchesTrace(t *testing.T) {
	n := 5
	m := obs.NewMetrics()
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := Run(n, inputs, newEchoFactory(4), crashyOracle(n), WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Runs != 1 {
		t.Fatalf("runs = %d", s.Runs)
	}
	if int(s.Rounds) != res.Trace.Len() {
		t.Fatalf("observer rounds %d, trace %d", s.Rounds, res.Trace.Len())
	}
	// Suspicions must equal Σ_r Σ_{i active} |D(i,r)| from the trace.
	var wantSus, wantDeliver int
	for r := 1; r <= res.Trace.Len(); r++ {
		rec := res.Trace.Round(r)
		rec.Active.ForEach(func(p PID) {
			wantSus += rec.Suspects[p].Count()
			wantDeliver += rec.Deliver[p].Count()
		})
	}
	if int(s.SuspicionsTotal) != wantSus {
		t.Fatalf("suspicions %d, trace says %d", s.SuspicionsTotal, wantSus)
	}
	if int(s.MessagesDelivered) != wantDeliver {
		t.Fatalf("delivered %d, trace says %d", s.MessagesDelivered, wantDeliver)
	}
	if int(s.Decisions) != len(res.DecidedAt) {
		t.Fatalf("decisions %d, result has %d", s.Decisions, len(res.DecidedAt))
	}
	if s.Crashes != 1 {
		t.Fatalf("crashes = %d", s.Crashes)
	}
	for p, r := range res.DecidedAt {
		_ = p
		if s.RoundsToDecision[r] == 0 {
			t.Fatalf("rounds_to_decision missing round %d: %v", r, s.RoundsToDecision)
		}
	}
}

// TestRunObserverDoesNotPerturbTrace runs the same system with and without
// an observer and requires byte-identical trace JSON: observation must be
// side-effect free.
func TestRunObserverDoesNotPerturbTrace(t *testing.T) {
	n := 4
	inputs := make([]Value, n)
	plain, err := Run(n, inputs, newEchoFactory(3), crashyOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(n, inputs, newEchoFactory(3), crashyOracle(n), WithObserver(obs.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain.Trace)
	b, _ := json.Marshal(observed.Trace)
	if string(a) != string(b) {
		t.Fatalf("observer changed the trace:\n%s\n%s", a, b)
	}
}

func TestRunObserverFakeClock(t *testing.T) {
	n := 3
	var tick int64
	fake := func() time.Time {
		tick++
		return time.Unix(0, tick*1000) // each clock read advances 1µs
	}
	m := obs.NewMetrics()
	inputs := make([]Value, n)
	_, err := Run(n, inputs, newEchoFactory(2), crashyOracle(n), WithObserver(m), WithClock(fake))
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	// Every phase spans exactly one clock advance of 1µs under the fake.
	for _, phase := range []string{"plan", "emit", "deliver"} {
		if s.PhaseMeanNanos[phase] != 1000 {
			t.Fatalf("phase %s mean %v ns, want 1000 (fake clock)", phase, s.PhaseMeanNanos[phase])
		}
	}
	if s.OraclePlanMeanNanos != 1000 {
		t.Fatalf("plan latency %v", s.OraclePlanMeanNanos)
	}
}

func TestRunEndReportsError(t *testing.T) {
	n := 3
	m := obs.NewMetrics()
	inputs := make([]Value, n)
	// newEchoFactory decides at round 5 but the round budget is 2.
	_, err := Run(n, inputs, newEchoFactory(5), crashyOracle(n), WithObserver(m), WithMaxRounds(2))
	if err != ErrMaxRounds {
		t.Fatalf("err = %v", err)
	}
	if got := m.Snapshot().RunErrors; got != 1 {
		t.Fatalf("run_errors = %d", got)
	}
}

func TestDefaultObserver(t *testing.T) {
	m := obs.NewMetrics()
	SetDefaultObserver(m)
	defer SetDefaultObserver(nil)
	if DefaultObserver() == nil {
		t.Fatal("default observer not installed")
	}
	n := 3
	inputs := make([]Value, n)
	if _, err := Run(n, inputs, newEchoFactory(2), crashyOracle(n)); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Runs; got != 1 {
		t.Fatalf("default observer saw %d runs", got)
	}
	// An explicit observer takes precedence over the default.
	m2 := obs.NewMetrics()
	if _, err := Run(n, inputs, newEchoFactory(2), crashyOracle(n), WithObserver(m2)); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Runs; got != 1 {
		t.Fatalf("default observer saw the explicitly-observed run (runs=%d)", got)
	}
	if got := m2.Snapshot().Runs; got != 1 {
		t.Fatalf("explicit observer saw %d runs", got)
	}
	SetDefaultObserver(nil)
	if DefaultObserver() != nil {
		t.Fatal("default observer not uninstalled")
	}
}

func TestCollectTraceWithObserver(t *testing.T) {
	n := 4
	m := obs.NewMetrics()
	tr, err := CollectTrace(n, 3, crashyOracle(n), WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace len %d", tr.Len())
	}
	if got := m.Snapshot().Rounds; got != 3 {
		t.Fatalf("observer rounds %d", got)
	}
}
