package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// countingObserver is a minimal observer used to prove observation leaves
// traces untouched.
type countingObserver struct{ obs.Base }

func TestSetJSONRoundTrip(t *testing.T) {
	orig := SetOf(70, 0, 63, 64, 69)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) || back.Universe() != 70 {
		t.Fatalf("round trip: %s (n=%d)", back, back.Universe())
	}
	if !strings.Contains(string(b), `"members":[0,63,64,69]`) {
		t.Fatalf("wire form: %s", b)
	}
}

func TestSetJSONRejectsOutOfRange(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte(`{"n":3,"members":[5]}`), &s); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	n := 4
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crashes := NewSet(n)
		if r == 2 {
			crashes.Add(3)
		}
		for i := range sus {
			sus[i] = NewSet(n)
			if r >= 2 {
				sus[i].Add(3)
			}
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
	orig, err := CollectTrace(n, 3, oracle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != n || back.Len() != orig.Len() {
		t.Fatalf("shape: n=%d len=%d", back.N, back.Len())
	}
	for r := 1; r <= orig.Len(); r++ {
		a, c := orig.Round(r), back.Round(r)
		if !a.Active.Equal(c.Active) || !a.Crashed.Equal(c.Crashed) {
			t.Fatalf("round %d: active/crashed differ", r)
		}
		for i := 0; i < n; i++ {
			if !a.Suspects[i].Equal(c.Suspects[i]) || !a.Deliver[i].Equal(c.Deliver[i]) {
				t.Fatalf("round %d proc %d: sets differ", r, i)
			}
		}
	}
	// The deserialized trace must drive the engine like the original.
	replayed, err := CollectTrace(n, 3, TraceOracle(&back))
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Round(2).Crashed.Has(3) {
		t.Fatal("replayed trace lost the crash")
	}
}

// remarshal decodes b into a Trace and re-encodes it, requiring the result
// to be byte-identical — the round-trip stability contract replay tooling
// (diffing archived traces) depends on.
func remarshal(t *testing.T, b []byte) {
	t.Helper()
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(b) {
		t.Fatalf("re-marshal not byte-identical:\n first: %s\nsecond: %s", b, again)
	}
}

func TestTraceJSONRoundTripEmpty(t *testing.T) {
	b, err := json.Marshal(NewTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	remarshal(t, b)
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 3 || back.Len() != 0 {
		t.Fatalf("empty trace round trip: n=%d len=%d", back.N, back.Len())
	}
}

func TestTraceJSONRoundTripCrashedInRound1(t *testing.T) {
	n := 3
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crashes := NewSet(n)
		if r == 1 {
			crashes.Add(0) // crash before anyone ever emits
		}
		for i := range sus {
			sus[i] = SetOf(n, 0)
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
	orig, err := CollectTrace(n, 2, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Round(1).Crashed.Has(0) {
		t.Fatal("round-1 crash not recorded")
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	remarshal(t, b)
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Round(1).Crashed.Has(0) || back.Round(1).Active.Has(0) {
		t.Fatal("round-1 crash lost in round trip")
	}
	// The crashed process never ran, so its per-process sets must be the
	// canonical empty set after the round trip too.
	if !back.Round(1).Suspects[0].Empty() || !back.Round(1).Deliver[0].Empty() {
		t.Fatal("crashed process's sets not empty after round trip")
	}
}

func TestTraceJSONRoundTripWithObserver(t *testing.T) {
	n := 4
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = SetOf(n, PID((r+i)%n))
		}
		return RoundPlan{Suspects: sus}
	})
	plain, err := CollectTrace(n, 3, oracle)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := CollectTrace(n, 3, oracle, WithObserver(countingObserver{}))
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(observed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("observer perturbed the trace JSON:\n%s\n%s", a, b)
	}
	remarshal(t, b)
}

func TestTraceJSONRejectsMalformed(t *testing.T) {
	var tr Trace
	if err := json.Unmarshal([]byte(`{"n":3,"rounds":[{"r":1,"suspects":[],"deliver":[]}]}`), &tr); err == nil {
		t.Fatal("mismatched suspect-set count accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &tr); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
