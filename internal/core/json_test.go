package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSetJSONRoundTrip(t *testing.T) {
	orig := SetOf(70, 0, 63, 64, 69)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) || back.Universe() != 70 {
		t.Fatalf("round trip: %s (n=%d)", back, back.Universe())
	}
	if !strings.Contains(string(b), `"members":[0,63,64,69]`) {
		t.Fatalf("wire form: %s", b)
	}
}

func TestSetJSONRejectsOutOfRange(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte(`{"n":3,"members":[5]}`), &s); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	n := 4
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crashes := NewSet(n)
		if r == 2 {
			crashes.Add(3)
		}
		for i := range sus {
			sus[i] = NewSet(n)
			if r >= 2 {
				sus[i].Add(3)
			}
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
	orig, err := CollectTrace(n, 3, oracle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != n || back.Len() != orig.Len() {
		t.Fatalf("shape: n=%d len=%d", back.N, back.Len())
	}
	for r := 1; r <= orig.Len(); r++ {
		a, c := orig.Round(r), back.Round(r)
		if !a.Active.Equal(c.Active) || !a.Crashed.Equal(c.Crashed) {
			t.Fatalf("round %d: active/crashed differ", r)
		}
		for i := 0; i < n; i++ {
			if !a.Suspects[i].Equal(c.Suspects[i]) || !a.Deliver[i].Equal(c.Deliver[i]) {
				t.Fatalf("round %d proc %d: sets differ", r, i)
			}
		}
	}
	// The deserialized trace must drive the engine like the original.
	replayed, err := CollectTrace(n, 3, TraceOracle(&back))
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Round(2).Crashed.Has(3) {
		t.Fatal("replayed trace lost the crash")
	}
}

func TestTraceJSONRejectsMalformed(t *testing.T) {
	var tr Trace
	if err := json.Unmarshal([]byte(`{"n":3,"rounds":[{"r":1,"suspects":[],"deliver":[]}]}`), &tr); err == nil {
		t.Fatal("mismatched suspect-set count accepted")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &tr); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
