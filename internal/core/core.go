// Package core implements the round-by-round fault detector (RRFD) model of
// Gafni (PODC 1998). Computation evolves in communication-closed rounds: in
// round r every process emits a message and then, for every process p_j,
// either receives p_j's round-r message or is told by the fault detector that
// p_j is suspected for this round (p_j ∈ D(i,r)). The system guarantees
// S(i,r) ∪ D(i,r) = S, where S(i,r) is the set of processes whose round-r
// message p_i received.
//
// The fault detector is unreliable — suspicion does not imply a real failure,
// different processes may be told different things, and a process suspected
// in one round may be heard from in the next. A concrete model of computation
// (synchronous, asynchronous, shared-memory, failure-detector-augmented, ...)
// is captured entirely by a predicate over the family of suspect sets D(i,r);
// the detector is best thought of as an adversary choosing the worst suspect
// sets the predicate allows.
//
// This package provides the process-set algebra (Set), the emit/receive
// Algorithm contract, the adversary contract (Oracle), the deterministic
// lock-step execution engine (Run), and execution Traces that record every
// D(i,r) for later validation against model predicates.
package core

import "fmt"

// PID identifies a process. Processes in a system of size n are numbered
// 0..n-1.
type PID int

// Value is an algorithm input or decision output.
type Value any

// Message is the data a process emits in a round. Algorithms define their own
// concrete message types.
type Message any

// Algorithm is one process's side of an emit/receive round-based algorithm,
// matching the abstract loop in the paper:
//
//	r := 1
//	forever do
//	    compute messages m_{i,r} for round r
//	    emit m_{i,r}
//	    (wait until) ∀p_j ∈ S: received m_{j,r} or p_j ∈ D(i,r)
//	    r := r + 1
//
// The engine calls Emit then Deliver once per round, in round order. Deliver
// may report a decision; the engine keeps running a decided process (full
// information) so that others continue to hear from it, so implementations
// must tolerate Emit/Deliver calls after deciding.
type Algorithm interface {
	// Emit returns the process's message for round r (r starts at 1).
	Emit(r int) Message

	// Deliver hands the process everything it ends round r with: msgs maps
	// each p_j ∈ S(i,r) to m_{j,r}, and suspects is D(i,r). The engine
	// guarantees S(i,r) ∪ D(i,r) = S (the sets may overlap: a suspected
	// process's message may still arrive). It returns the decision value
	// and true once the process commits to an output.
	//
	// msgs and suspects are engine-owned scratch, valid only for the
	// duration of the call: the engine reuses both across processes and
	// rounds. An implementation that retains either past its return must
	// copy (clone the set, copy the map) — reading them during the call,
	// including mutating suspects, is fine.
	Deliver(r int, msgs map[PID]Message, suspects Set) (out Value, decided bool)
}

// Factory creates the process-local Algorithm instance for process me of n
// with the given task input.
type Factory func(me PID, n int, input Value) Algorithm

// RoundPlan is one round of adversary choices.
type RoundPlan struct {
	// Suspects[i] is D(i,r). Must be non-nil for every process that emits
	// this round. The paper requires D(i,r) ≠ S.
	Suspects []Set

	// Crashes are processes that stop participating at the start of this
	// round: they emit nothing in this or any later round. A crashed
	// process must appear in every live process's Suspects set from this
	// round on (the engine validates this), since its message can never
	// arrive.
	Crashes Set

	// Deliver optionally overrides S(i,r). If Deliver is nil, the engine
	// uses S(i,r) = active \ D(i,r) plus nothing extra. When provided,
	// Deliver[i] ∪ Suspects[i] must cover all processes and Deliver[i]
	// must only contain processes that emitted this round. Overlap with
	// Suspects[i] is legal: the model allows receiving a message from a
	// suspected process.
	Deliver []Set
}

// Oracle is the round-by-round fault detector, driven as an adversary: before
// each round it chooses the suspect sets (and any real crashes) subject to
// the predicate of the model it represents.
//
// active is the set of processes that will emit this round unless the plan
// crashes them. Oracles may keep state across rounds (e.g. cumulative fault
// budgets) but must be deterministic for reproducibility; randomized oracles
// should derive all randomness from an explicit seed.
type Oracle interface {
	Plan(r int, active Set) RoundPlan
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(r int, active Set) RoundPlan

// Plan implements Oracle.
func (f OracleFunc) Plan(r int, active Set) RoundPlan { return f(r, active) }

var _ Oracle = (OracleFunc)(nil)

// PlanError describes an adversary plan that violates the RRFD model
// invariants (e.g. suspecting everybody, or failing to suspect a crashed
// process).
type PlanError struct {
	Round  int
	Proc   PID
	Reason string
}

// Error implements error.
func (e *PlanError) Error() string {
	return fmt.Sprintf("round %d: process %d: invalid plan: %s", e.Round, e.Proc, e.Reason)
}
