package core

import (
	"encoding/json"
	"fmt"
)

// setJSON is the wire form of a Set.
type setJSON struct {
	N       int   `json:"n"`
	Members []PID `json:"members"`
}

// MarshalJSON encodes the set as its universe size and sorted member list.
func (s Set) MarshalJSON() ([]byte, error) {
	return json.Marshal(setJSON{N: s.n, Members: s.Members()})
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (s *Set) UnmarshalJSON(b []byte) error {
	var w setJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	out := NewSet(w.N)
	for _, p := range w.Members {
		if p < 0 || int(p) >= w.N {
			return fmt.Errorf("core: set member %d outside universe %d", p, w.N)
		}
		out.Add(p)
	}
	*s = out
	return nil
}

// traceJSON is the wire form of a Trace.
type traceJSON struct {
	N      int               `json:"n"`
	Rounds []roundRecordJSON `json:"rounds"`
}

type roundRecordJSON struct {
	R        int   `json:"r"`
	Suspects []Set `json:"suspects"`
	Deliver  []Set `json:"deliver"`
	Active   Set   `json:"active"`
	Crashed  Set   `json:"crashed"`
}

// MarshalJSON encodes the trace; message payloads are not part of a trace,
// so any trace round-trips losslessly.
func (t *Trace) MarshalJSON() ([]byte, error) {
	w := traceJSON{N: t.N}
	for _, rec := range t.Rounds {
		w.Rounds = append(w.Rounds, roundRecordJSON{
			R:        rec.R,
			Suspects: rec.Suspects,
			Deliver:  rec.Deliver,
			Active:   rec.Active,
			Crashed:  rec.Crashed,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (t *Trace) UnmarshalJSON(b []byte) error {
	var w traceJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	out := Trace{N: w.N}
	for _, rec := range w.Rounds {
		if len(rec.Suspects) != w.N || len(rec.Deliver) != w.N {
			return fmt.Errorf("core: round %d has %d suspect sets for %d processes", rec.R, len(rec.Suspects), w.N)
		}
		out.Rounds = append(out.Rounds, RoundRecord{
			R:        rec.R,
			Suspects: rec.Suspects,
			Deliver:  rec.Deliver,
			Active:   rec.Active,
			Crashed:  rec.Crashed,
		})
	}
	*t = out
	return nil
}
