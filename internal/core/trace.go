package core

import (
	"fmt"
	"strings"
)

// RoundRecord captures the fault-detector behaviour of one round as seen by
// the whole system.
type RoundRecord struct {
	// R is the round number (1-based).
	R int

	// Suspects[i] is D(i,r). For processes that did not run the round
	// (crashed earlier) the entry is the empty set and Active excludes
	// them.
	Suspects []Set

	// Deliver[i] is S(i,r), the processes whose round-r message p_i
	// received.
	Deliver []Set

	// Active is the set of processes that emitted a round-r message.
	Active Set

	// Crashed is the cumulative set of processes that had crashed by the
	// start of round r (they are not in Active).
	Crashed Set
}

// Trace records an entire execution for post-hoc validation against model
// predicates.
type Trace struct {
	// N is the number of processes.
	N int

	// Rounds holds one record per executed round, in order.
	Rounds []RoundRecord
}

// NewTrace returns an empty trace for n processes.
func NewTrace(n int) *Trace { return &Trace{N: n} }

// Append adds a round record to the trace.
func (t *Trace) Append(rec RoundRecord) { t.Rounds = append(t.Rounds, rec) }

// Len returns the number of recorded rounds.
func (t *Trace) Len() int { return len(t.Rounds) }

// Round returns the record for round r (1-based), or nil if absent.
func (t *Trace) Round(r int) *RoundRecord {
	if r < 1 || r > len(t.Rounds) {
		return nil
	}
	return &t.Rounds[r-1]
}

// SuspectUnion returns ⋃_{i active} D(i,r) for round r.
func (t *Trace) SuspectUnion(r int) Set {
	rec := t.Round(r)
	if rec == nil {
		return NewSet(t.N)
	}
	u := NewSet(t.N)
	rec.Active.ForEach(func(p PID) {
		u = u.Union(rec.Suspects[p])
	})
	return u
}

// SuspectIntersection returns ⋂_{i active} D(i,r) for round r. With no active
// processes it returns the full set.
func (t *Trace) SuspectIntersection(r int) Set {
	rec := t.Round(r)
	if rec == nil {
		return FullSet(t.N)
	}
	u := FullSet(t.N)
	rec.Active.ForEach(func(p PID) {
		u = u.Intersect(rec.Suspects[p])
	})
	return u
}

// CumulativeSuspects returns ⋃_{r' ≤ r} ⋃_i D(i,r'), the set of processes
// suspected by anyone at any round up to and including r. Pass r = t.Len()
// for the whole execution.
func (t *Trace) CumulativeSuspects(r int) Set {
	u := NewSet(t.N)
	for rr := 1; rr <= r && rr <= t.Len(); rr++ {
		u = u.Union(t.SuspectUnion(rr))
	}
	return u
}

// NeverSuspected returns the processes that appear in no D(i,r) over the
// whole trace.
func (t *Trace) NeverSuspected() Set {
	return t.CumulativeSuspects(t.Len()).Complement()
}

// Prefix returns a shallow view of the first r rounds of the trace (or the
// whole trace if it is shorter). Useful for predicates that only hold over an
// execution prefix, such as Theorem 4.1's first ⌊f/k⌋ rounds.
func (t *Trace) Prefix(r int) *Trace {
	if r > len(t.Rounds) {
		r = len(t.Rounds)
	}
	if r < 0 {
		r = 0
	}
	return &Trace{N: t.N, Rounds: t.Rounds[:r]}
}

// Validate checks the structural RRFD invariants that hold in every failure
// model: round numbers are contiguous from 1, and every active process p has
// S(p,r) ∪ D(p,r) = S and D(p,r) ≠ S. It deliberately does NOT require the
// active set to shrink monotonically — in the crash-recovery model a process
// may leave Active (peers suspect it while it is down) and re-enter once it
// has caught up. Fail-stop executions should use ValidateFailStop, which adds
// the permanence check.
func (t *Trace) Validate() error {
	full := FullSet(t.N)
	for i := range t.Rounds {
		rec := &t.Rounds[i]
		if rec.R != i+1 {
			return fmt.Errorf("core: trace round %d records round number %d", i+1, rec.R)
		}
		if len(rec.Suspects) != t.N || len(rec.Deliver) != t.N {
			return fmt.Errorf("core: trace round %d sized for %d/%d processes, want %d", rec.R, len(rec.Suspects), len(rec.Deliver), t.N)
		}
		var err error
		rec.Active.ForEach(func(p PID) {
			if err != nil {
				return
			}
			if rec.Suspects[p].Count() == t.N {
				err = &PlanError{Round: rec.R, Proc: p, Reason: "D(i,r) = S is forbidden"}
				return
			}
			if !rec.Deliver[p].Union(rec.Suspects[p]).Equal(full) {
				err = &PlanError{Round: rec.R, Proc: p, Reason: "S(i,r) ∪ D(i,r) ≠ S"}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ValidateFailStop checks Validate's invariants plus the fail-stop one:
// a process that leaves the active set never returns (crashes are permanent).
// Engine-produced traces must satisfy this; crash-recovery traces generally
// do not.
func (t *Trace) ValidateFailStop() error {
	if err := t.Validate(); err != nil {
		return err
	}
	prevActive := FullSet(t.N)
	for i := range t.Rounds {
		rec := &t.Rounds[i]
		if !rec.Active.IsSubset(prevActive) {
			return fmt.Errorf("core: trace round %d revives crashed processes: active %s after %s", rec.R, rec.Active, prevActive)
		}
		prevActive = rec.Active
	}
	return nil
}

// String renders a compact human-readable dump of the trace, one line per
// process per round.
func (t *Trace) String() string {
	var b strings.Builder
	for _, rec := range t.Rounds {
		fmt.Fprintf(&b, "round %d active=%s crashed=%s\n", rec.R, rec.Active, rec.Crashed)
		rec.Active.ForEach(func(p PID) {
			fmt.Fprintf(&b, "  p%d: D=%s S=%s\n", p, rec.Suspects[p], rec.Deliver[p])
		})
	}
	return b.String()
}
