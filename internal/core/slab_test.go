package core

import "testing"

func TestSetBankRowsAreIndependent(t *testing.T) {
	const n, count = 70, 5 // two words per row
	b := NewSetBank(n, count)
	if b.Count() != count || b.Universe() != n {
		t.Fatalf("bank shape: count %d universe %d", b.Count(), b.Universe())
	}
	b.Add(0, 0)
	b.Add(0, 69)
	b.Add(3, 64)
	if !b.Has(0, 0) || !b.Has(0, 69) || !b.Has(3, 64) {
		t.Fatalf("added members missing")
	}
	for i := 0; i < count; i++ {
		want := 0
		if i == 0 {
			want = 2
		} else if i == 3 {
			want = 1
		}
		if got := b.Row(i).Count(); got != want {
			t.Fatalf("row %d count = %d, want %d", i, got, want)
		}
	}
	// Out-of-range PIDs are ignored, like Set.Add.
	b.Add(1, -1)
	b.Add(1, PID(n))
	if !b.Row(1).Empty() {
		t.Fatalf("out-of-range add mutated row 1")
	}
}

func TestSetBankRowViewAliasesSlab(t *testing.T) {
	b := NewSetBank(16, 4)
	v := b.Row(2)
	v.Add(7)
	if !b.Has(2, 7) {
		t.Fatalf("mutation through the row view did not reach the bank")
	}
	// Views support the full in-place Set algebra without allocating.
	u := b.Row(3)
	u.CopyFrom(SetOf(16, 1, 7, 9))
	u.IntersectInto(SetOf(16, 7, 9, 11))
	if u.Count() != 2 || !b.Has(3, 7) || !b.Has(3, 9) || b.Has(3, 1) {
		t.Fatalf("in-place algebra through view: row = %s", b.Row(3))
	}
}

func TestSetBankClear(t *testing.T) {
	b := NewSetBank(8, 6)
	for i := 0; i < 6; i++ {
		b.Add(i, PID(i%8))
	}
	b.Clear(2)
	if !b.Row(2).Empty() || b.Row(1).Empty() || b.Row(3).Empty() {
		t.Fatalf("Clear(2) cleared the wrong rows")
	}
	b.ClearRange(3, 5)
	if !b.Row(3).Empty() || !b.Row(4).Empty() || b.Row(5).Empty() {
		t.Fatalf("ClearRange(3,5) cleared the wrong rows")
	}
}

func TestIntersectInto(t *testing.T) {
	s := SetOf(100, 1, 50, 99)
	s.IntersectInto(SetOf(100, 50, 99, 3))
	if s.Count() != 2 || !s.Has(50) || !s.Has(99) {
		t.Fatalf("IntersectInto: got %s", s)
	}
	// Shorter universe on the right zeroes the uncovered words.
	w := SetOf(130, 1, 128)
	w.IntersectInto(SetOf(64, 1))
	if w.Count() != 1 || !w.Has(1) {
		t.Fatalf("IntersectInto across widths: got %s", w)
	}
}

func TestArenaReuseAfterReset(t *testing.T) {
	var a Arena
	first := a.Uint64s(100)
	second := a.Uint64s(200)
	if len(first) != 100 || len(second) != 200 {
		t.Fatalf("lengths: %d %d", len(first), len(second))
	}
	first[0], second[0] = 7, 9
	if a.Allocated() != 300 {
		t.Fatalf("Allocated = %d, want 300", a.Allocated())
	}
	a.Reset()
	if a.Allocated() != 0 {
		t.Fatalf("Allocated after Reset = %d", a.Allocated())
	}
	// The same request pattern after Reset reuses the same blocks — and
	// hands back zeroed memory even though the block bytes were dirtied.
	again := a.Uint64s(100)
	if &again[0] != &first[0] {
		t.Fatalf("Reset did not recycle the first block")
	}
	if again[0] != 0 {
		t.Fatalf("recycled slab not zeroed: %d", again[0])
	}
}

func TestArenaLargeRequestGetsOwnBlock(t *testing.T) {
	var a Arena
	small := a.Uint64s(8)
	big := a.Uint64s(1 << 16) // larger than the default growth step
	if len(big) != 1<<16 {
		t.Fatalf("big block length %d", len(big))
	}
	small[0] = 1
	big[0] = 2
	if small[0] != 1 {
		t.Fatalf("blocks overlap")
	}
	if a.Uint64s(0) != nil {
		t.Fatalf("zero-length request should be nil")
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	var a Arena
	warm := func() {
		a.Reset()
		_ = a.Uint64s(500)
		_ = a.Uint64s(300)
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %v times", allocs)
	}
}

func TestNewSetBankInUsesArena(t *testing.T) {
	var a Arena
	b := NewSetBankIn(&a, 64, 10)
	if a.Allocated() != 10 {
		t.Fatalf("bank of 10 single-word rows should consume 10 words, got %d", a.Allocated())
	}
	b.Add(9, 63)
	if !b.Has(9, 63) {
		t.Fatalf("arena-backed bank lost a member")
	}
}
