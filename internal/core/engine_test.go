package core

import (
	"errors"
	"testing"
)

// echoAlg decides its own input after a fixed number of rounds and emits the
// set of suspects it has seen so far (exercising state flow).
type echoAlg struct {
	me     PID
	n      int
	input  Value
	rounds int
	target int
	seen   Set
}

func newEchoFactory(target int) Factory {
	return func(me PID, n int, input Value) Algorithm {
		return &echoAlg{me: me, n: n, input: input, target: target, seen: NewSet(n)}
	}
}

func (a *echoAlg) Emit(r int) Message { return a.input }

func (a *echoAlg) Deliver(r int, msgs map[PID]Message, suspects Set) (Value, bool) {
	a.rounds++
	a.seen = a.seen.Union(suspects)
	if a.rounds >= a.target {
		return a.input, true
	}
	return nil, false
}

// benignOracle suspects nobody.
func benignOracle(n int) Oracle {
	return OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = NewSet(n)
		}
		return RoundPlan{Suspects: sus}
	})
}

func inputsOf(vals ...int) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

func TestRunBenign(t *testing.T) {
	res, err := Run(4, inputsOf(10, 11, 12, 13), newEchoFactory(3), benignOracle(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", res.Rounds)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("Outputs = %v", res.Outputs)
	}
	for p, v := range res.Outputs {
		if v != int(p)+10 {
			t.Fatalf("process %d output %v", p, v)
		}
		if res.DecidedAt[p] != 3 {
			t.Fatalf("process %d decided at %d", p, res.DecidedAt[p])
		}
	}
	if res.Trace.Len() != 3 {
		t.Fatalf("trace has %d rounds", res.Trace.Len())
	}
	rec := res.Trace.Round(1)
	if !rec.Active.Equal(FullSet(4)) {
		t.Fatalf("round 1 active = %s", rec.Active)
	}
	if !rec.Deliver[0].Equal(FullSet(4)) {
		t.Fatalf("round 1 deliveries to p0 = %s, want all", rec.Deliver[0])
	}
}

func TestRunMaxRounds(t *testing.T) {
	_, err := Run(3, inputsOf(1, 2, 3), newEchoFactory(100), benignOracle(3), WithMaxRounds(5))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestRunCrash(t *testing.T) {
	n := 4
	// Crash p3 at round 2; everyone must suspect it thereafter.
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crash := NewSet(n)
		if r >= 2 {
			crash.Add(3)
		}
		for i := range sus {
			sus[i] = NewSet(n)
			if r >= 2 {
				sus[i].Add(3)
			}
		}
		return RoundPlan{Suspects: sus, Crashes: crash}
	})
	res, err := Run(n, inputsOf(1, 2, 3, 4), newEchoFactory(4), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed.Equal(SetOf(n, 3)) {
		t.Fatalf("Crashed = %s", res.Crashed)
	}
	if _, ok := res.Outputs[3]; ok {
		t.Fatal("crashed process decided")
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("Outputs = %v", res.Outputs)
	}
	rec := res.Trace.Round(2)
	if rec.Active.Has(3) {
		t.Fatal("crashed process active in round 2")
	}
	if !rec.Crashed.Has(3) {
		t.Fatal("round 2 record does not mark p3 crashed")
	}
	// Deliveries in round 2 must not include p3.
	if rec.Deliver[0].Has(3) {
		t.Fatal("received message from crashed process")
	}
}

func TestRunRejectsSuspectAll(t *testing.T) {
	n := 3
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = FullSet(n)
		}
		return RoundPlan{Suspects: sus}
	})
	_, err := Run(n, inputsOf(1, 2, 3), newEchoFactory(1), oracle)
	var pe *PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PlanError", err)
	}
}

func TestRunRejectsUnsuspectedCrash(t *testing.T) {
	n := 3
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = NewSet(n) // nobody suspected, yet p2 crashes
		}
		return RoundPlan{Suspects: sus, Crashes: SetOf(n, 2)}
	})
	_, err := Run(n, inputsOf(1, 2, 3), newEchoFactory(1), oracle)
	var pe *PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PlanError", err)
	}
}

func TestRunRejectsDeliveryFromNonEmitter(t *testing.T) {
	n := 3
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		del := make([]Set, n)
		for i := range sus {
			sus[i] = SetOf(n, 2)
			del[i] = FullSet(n) // claims delivery from crashed p2
		}
		return RoundPlan{Suspects: sus, Crashes: SetOf(n, 2), Deliver: del}
	})
	_, err := Run(n, inputsOf(1, 2, 3), newEchoFactory(1), oracle)
	var pe *PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PlanError", err)
	}
}

func TestRunOverlapDeliverAndSuspect(t *testing.T) {
	// The model allows receiving a message from a suspected process:
	// suspect p1 everywhere but still deliver its message.
	n := 3
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		del := make([]Set, n)
		for i := range sus {
			sus[i] = SetOf(n, 1)
			del[i] = FullSet(n)
		}
		return RoundPlan{Suspects: sus, Deliver: del}
	})
	res, err := Run(n, inputsOf(1, 2, 3), func(me PID, nn int, input Value) Algorithm {
		return &overlapProbe{n: nn}
	}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range res.Outputs {
		ok, _ := v.(bool)
		if !ok {
			t.Fatalf("process %d did not receive suspected process's message", p)
		}
	}
}

type overlapProbe struct{ n int }

func (o *overlapProbe) Emit(r int) Message { return "m" }

func (o *overlapProbe) Deliver(r int, msgs map[PID]Message, suspects Set) (Value, bool) {
	_, got := msgs[1]
	return got && suspects.Has(1), true
}

func TestRunToRound(t *testing.T) {
	res, err := Run(3, inputsOf(1, 2, 3), newEchoFactory(1), benignOracle(3), WithRunToRound(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("Rounds = %d, want 5", res.Rounds)
	}
	for p := range res.DecidedAt {
		if res.DecidedAt[p] != 1 {
			t.Fatalf("first decision round for %d = %d, want 1", p, res.DecidedAt[p])
		}
	}
}

func TestRunWithoutTrace(t *testing.T) {
	res, err := Run(3, inputsOf(1, 2, 3), newEchoFactory(2), benignOracle(3), WithoutTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded despite WithoutTrace")
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(0, nil, newEchoFactory(1), benignOracle(0)); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Run(3, inputsOf(1), newEchoFactory(1), benignOracle(3)); err == nil {
		t.Fatal("expected error for mismatched inputs")
	}
}

func TestTraceOracleRoundTrip(t *testing.T) {
	// Record an adversary's trace, replay it, and compare: the replayed
	// execution must produce the identical trace.
	n := 4
	orig := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		crashes := NewSet(n)
		if r == 2 {
			crashes.Add(3)
		}
		for i := range sus {
			sus[i] = NewSet(n)
			sus[i].Add(PID((r + i) % n))
			sus[i].Remove(PID(i))
			if r >= 2 {
				sus[i].Add(3)
			}
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
	first, err := CollectTrace(n, 4, orig)
	if err != nil {
		t.Fatal(err)
	}
	second, err := CollectTrace(n, 4, TraceOracle(first))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		a, b := first.Round(r), second.Round(r)
		if !a.Active.Equal(b.Active) {
			t.Fatalf("round %d: active %s vs %s", r, a.Active, b.Active)
		}
		for i := 0; i < n; i++ {
			if !a.Suspects[i].Equal(b.Suspects[i]) {
				t.Fatalf("round %d proc %d: %s vs %s", r, i, a.Suspects[i], b.Suspects[i])
			}
		}
	}
}

func TestTraceOracleEmptyTrace(t *testing.T) {
	res, err := Run(3, inputsOf(1, 2, 3), newEchoFactory(2), TraceOracle(NewTrace(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{
		Outputs:   map[PID]Value{0: 1, 1: 1, 2: 2},
		DecidedAt: map[PID]int{0: 1, 1: 4, 2: 2},
	}
	if got := res.DistinctOutputs(); got != 2 {
		t.Fatalf("DistinctOutputs = %d, want 2", got)
	}
	if got := res.MaxDecisionRound(); got != 4 {
		t.Fatalf("MaxDecisionRound = %d, want 4", got)
	}
	empty := &Result{Outputs: map[PID]Value{}, DecidedAt: map[PID]int{}}
	if empty.DistinctOutputs() != 0 || empty.MaxDecisionRound() != 0 {
		t.Fatal("empty result helpers wrong")
	}
}
