package core

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Set is a set of processes drawn from a universe of n processes, stored as a
// bitset. The zero value is an empty set over an empty universe; use NewSet
// (or SetOf / FullSet) to create sets over a universe of known size.
//
// Mutating methods (Add, Remove) modify the receiver in place; all other
// operations are pure and return fresh sets. Sets over different universe
// sizes must not be combined.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set over a universe of n processes.
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// SetOf returns the set over a universe of n processes containing exactly the
// given members.
func SetOf(n int, members ...PID) Set {
	s := NewSet(n)
	for _, p := range members {
		s.Add(p)
	}
	return s
}

// FullSet returns the set containing every process in a universe of size n.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << rem) - 1
	}
	return s
}

// Universe returns the size n of the universe the set draws from.
func (s Set) Universe() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}

// Add inserts p into the set. Out-of-range PIDs are ignored.
func (s *Set) Add(p PID) {
	if p < 0 || int(p) >= s.n {
		return
	}
	s.words[p/64] |= 1 << (uint(p) % 64)
}

// Remove deletes p from the set. Out-of-range PIDs are ignored.
func (s *Set) Remove(p PID) {
	if p < 0 || int(p) >= s.n {
		return
	}
	s.words[p/64] &^= 1 << (uint(p) % 64)
}

// Has reports whether p is a member of the set.
func (s Set) Has(p PID) bool {
	if p < 0 || int(p) >= s.n {
		return false
	}
	return s.words[p/64]&(1<<(uint(p)%64)) != 0
}

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	r := s.Clone()
	for i := range r.words {
		if i < len(t.words) {
			r.words[i] |= t.words[i]
		}
	}
	return r
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	r := s.Clone()
	for i := range r.words {
		if i < len(t.words) {
			r.words[i] &= t.words[i]
		} else {
			r.words[i] = 0
		}
	}
	return r
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	r := s.Clone()
	for i := range r.words {
		if i < len(t.words) {
			r.words[i] &^= t.words[i]
		}
	}
	return r
}

// CopyFrom overwrites s in place with the members of t. The receiver must
// have been created over the same universe size as t (it reuses its own
// word storage); it is the allocation-free counterpart of t.Clone().
func (s *Set) CopyFrom(t Set) {
	copy(s.words, t.words)
	for i := len(t.words); i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// UnionInto grows s in place to s ∪ t: the allocation-free counterpart of
// s = s.Union(t).
func (s *Set) UnionInto(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] |= t.words[i]
		}
	}
}

// DiffInto shrinks s in place to s \ t: the allocation-free counterpart of
// s = s.Diff(t).
func (s *Set) DiffInto(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
}

// IntersectInto shrinks s in place to s ∩ t: the allocation-free
// counterpart of s = s.Intersect(t).
func (s *Set) IntersectInto(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// UnionEquals reports whether s ∪ t = u without materializing the union.
// The engine uses it to check the round invariant S(i,r) ∪ D(i,r) = S on
// its hot path. All three sets must share a universe.
func (s Set) UnionEquals(t, u Set) bool {
	if s.n != u.n || t.n != u.n {
		return false
	}
	for i := range u.words {
		if s.words[i]|t.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Complement returns the processes of the universe not in s.
func (s Set) Complement() Set {
	return FullSet(s.n).Diff(s)
}

// Equal reports whether s and t have the same members (universes must match
// for two sets to be equal).
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// IsSubset reports whether every member of s is in t.
func (s Set) IsSubset(t Set) bool {
	for i := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if s.words[i]&^tw != 0 {
			return false
		}
	}
	return true
}

// Members returns the members in increasing PID order.
func (s Set) Members() []PID {
	out := make([]PID, 0, s.Count())
	s.ForEach(func(p PID) { out = append(out, p) })
	return out
}

// ForEach calls fn for every member in increasing PID order.
func (s Set) ForEach(fn func(PID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(PID(wi*64 + b))
			w &^= 1 << uint(b)
		}
	}
}

// Min returns the smallest member and true, or 0 and false if the set is
// empty.
func (s Set) Min() (PID, bool) {
	for wi, w := range s.words {
		if w != 0 {
			return PID(wi*64 + bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}

// String renders the set as "{a,b,c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(p PID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(int(p)))
	})
	b.WriteByte('}')
	return b.String()
}

// UnionAll returns the union of the given sets over a universe of size n.
func UnionAll(n int, sets []Set) Set {
	u := NewSet(n)
	for _, s := range sets {
		u = u.Union(s)
	}
	return u
}

// IntersectAll returns the intersection of the given sets over a universe of
// size n. The intersection of zero sets is the full set.
func IntersectAll(n int, sets []Set) Set {
	u := FullSet(n)
	for _, s := range sets {
		u = u.Intersect(s)
	}
	return u
}

// SortPIDs sorts a slice of process IDs in increasing order.
func SortPIDs(ps []PID) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}
