package core

// Flat storage for many sets and many scratch buffers: the building
// blocks of the multi-instance fleet engine (internal/fleet), extracted
// here because they are pure process-set machinery.
//
// A SetBank packs the word storage of `count` sets over one universe
// into a single []uint64 slab, so round state for thousands of
// concurrent executions is one contiguous allocation instead of
// thousands of small ones — sequential row access walks memory linearly,
// which is what lets a fleet shard stay in cache while it sweeps its
// instances. An Arena is a bump allocator for the slabs themselves: a
// shard carves every working array from one arena, and a Reset reclaims
// the whole working set in O(1) without freeing the blocks.

// SetBank is `count` sets over a universe of n processes packed into one
// word slab. Row i occupies words [i*W, (i+1)*W) where W = (n+63)/64.
// The zero value is an empty bank; use NewSetBank or NewSetBankIn.
type SetBank struct {
	words []uint64
	n     int // universe size
	w     int // words per row
	count int
}

// NewSetBank returns a bank of count empty sets over a universe of n
// processes, backed by one freshly allocated slab.
func NewSetBank(n, count int) *SetBank {
	b := &SetBank{}
	b.Init(make([]uint64, wordsPerSet(n)*count), n, count)
	return b
}

// NewSetBankIn is NewSetBank with the slab carved from an Arena.
func NewSetBankIn(a *Arena, n, count int) *SetBank {
	b := &SetBank{}
	b.Init(a.Uint64s(wordsPerSet(n)*count), n, count)
	return b
}

// wordsPerSet returns the slab words one set over n processes occupies.
func wordsPerSet(n int) int { return (n + 63) / 64 }

// Init points the bank at caller-provided word storage, which must hold
// at least wordsPerSet(n)*count words. The words are zeroed.
func (b *SetBank) Init(words []uint64, n, count int) {
	w := wordsPerSet(n)
	need := w * count
	if len(words) < need {
		panic("core: SetBank storage too small")
	}
	b.words, b.n, b.w, b.count = words[:need], n, w, count
	clear(b.words)
}

// Count returns the number of rows; Universe the process-universe size.
func (b *SetBank) Count() int    { return b.count }
func (b *SetBank) Universe() int { return b.n }

// Row returns row i as a Set aliasing the slab words: mutations through
// the view mutate the bank, and no allocation happens. The view stays
// valid until the bank is re-Init'd.
func (b *SetBank) Row(i int) Set {
	return Set{words: b.words[i*b.w : (i+1)*b.w], n: b.n}
}

// Add inserts p into row i.
func (b *SetBank) Add(i int, p PID) {
	if p < 0 || int(p) >= b.n {
		return
	}
	b.words[i*b.w+int(p)/64] |= 1 << (uint(p) % 64)
}

// Has reports whether p is a member of row i.
func (b *SetBank) Has(i int, p PID) bool {
	if p < 0 || int(p) >= b.n {
		return false
	}
	return b.words[i*b.w+int(p)/64]&(1<<(uint(p)%64)) != 0
}

// Clear empties row i.
func (b *SetBank) Clear(i int) {
	clear(b.words[i*b.w : (i+1)*b.w])
}

// ClearRange empties rows [from, to).
func (b *SetBank) ClearRange(from, to int) {
	clear(b.words[from*b.w : to*b.w])
}

// Arena is a bump allocator for flat working storage. Allocations come
// from geometrically growing blocks; Reset makes every block available
// again without freeing, so a steady-state consumer (one fleet shard,
// say) allocates real memory only on its first pass. An Arena is not
// safe for concurrent use — the fleet holds one per shard.
type Arena struct {
	blocks  [][]uint64 // all blocks ever allocated, in allocation order
	current int        // index into blocks of the block being bumped
	used    int        // words consumed from the current block
	total   int        // words handed out since the last Reset
}

// arenaMinBlock is the smallest block an Arena allocates, in words.
const arenaMinBlock = 1024

// Uint64s returns a zeroed []uint64 of length n carved from the arena.
func (a *Arena) Uint64s(n int) []uint64 {
	if n == 0 {
		return nil
	}
	for a.current < len(a.blocks) {
		if blk := a.blocks[a.current]; len(blk)-a.used >= n {
			out := blk[a.used : a.used+n : a.used+n]
			a.used += n
			a.total += n
			clear(out)
			return out
		}
		a.current++
		a.used = 0
	}
	size := arenaMinBlock
	if len(a.blocks) > 0 {
		size = 2 * len(a.blocks[len(a.blocks)-1])
	}
	if size < n {
		size = n
	}
	a.blocks = append(a.blocks, make([]uint64, size))
	a.current = len(a.blocks) - 1
	out := a.blocks[a.current][:n:n]
	a.used = n
	a.total += n
	return out
}

// Reset reclaims everything the arena has handed out. Previously
// returned slices must no longer be used.
func (a *Arena) Reset() {
	a.current, a.used, a.total = 0, 0, 0
}

// Allocated reports the words handed out since the last Reset.
func (a *Arena) Allocated() int { return a.total }
