package core

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/obs"
)

// ErrMaxRounds is returned by Run when the round limit is reached before
// every live process has decided.
var ErrMaxRounds = errors.New("core: round limit reached before all processes decided")

// Result is the outcome of one execution.
type Result struct {
	// Outputs maps each decided process to its decision value.
	Outputs map[PID]Value

	// DecidedAt maps each decided process to the round in which it
	// decided.
	DecidedAt map[PID]int

	// Rounds is the number of rounds executed.
	Rounds int

	// Crashed is the set of processes the adversary crashed.
	Crashed Set

	// Trace is the recorded execution, present unless disabled.
	Trace *Trace
}

// DistinctOutputs returns the number of distinct decision values. Values are
// compared with == via an any-keyed map, so decision values must be
// comparable.
func (r *Result) DistinctOutputs() int {
	seen := make(map[Value]struct{}, len(r.Outputs))
	for _, v := range r.Outputs {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// MaxDecisionRound returns the latest round at which any process decided, or
// 0 if nothing decided.
func (r *Result) MaxDecisionRound() int {
	m := 0
	for _, rd := range r.DecidedAt {
		if rd > m {
			m = rd
		}
	}
	return m
}

type engineOptions struct {
	maxRounds  int
	maxWall    time.Duration
	trace      bool
	stopOnce   bool
	extraRound int
	observer   obs.Observer
	clock      func() time.Time
	ckDir      string
	ckOpts     CheckpointOptions
	haltAfter  int
}

// Option configures Run.
type Option func(*engineOptions)

// WithMaxRounds bounds the execution length; Run returns ErrMaxRounds if some
// live process has not decided by then. The default is 10000.
func WithMaxRounds(n int) Option {
	return func(o *engineOptions) { o.maxRounds = n }
}

// WithoutTrace disables trace recording (useful in benchmarks).
func WithoutTrace() Option {
	return func(o *engineOptions) { o.trace = false }
}

// WithMaxWallTime bounds the execution's wall-clock duration: when a round
// boundary finds the budget exhausted, Run stops and returns a
// *TimeoutError carrying the partial result's trace, rather than spinning
// until WithMaxRounds. The budget is checked between rounds only — a single
// Emit or Deliver call that never returns cannot be interrupted. The clock
// is time.Now unless WithClock overrides it.
func WithMaxWallTime(d time.Duration) Option {
	return func(o *engineOptions) { o.maxWall = d }
}

// TimeoutError reports a WithMaxWallTime budget exhausted mid-execution,
// with the partial trace recorded up to the point of interruption.
type TimeoutError struct {
	// Limit is the configured budget; Elapsed what the execution had
	// consumed when the round boundary noticed.
	Limit   time.Duration
	Elapsed time.Duration

	// Rounds is how many rounds completed before the interruption.
	Rounds int

	// Trace is the partial execution trace (nil under WithoutTrace).
	Trace *Trace
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("core: wall-time budget %v exhausted after %v (%d rounds completed)",
		e.Limit, e.Elapsed, e.Rounds)
}

// WithRunToRound keeps the engine running for extra rounds after every live
// process has decided (full-information executions often need the trailing
// structure). n is the absolute round number to run through.
func WithRunToRound(n int) Option {
	return func(o *engineOptions) { o.extraRound = n }
}

// Run executes the algorithm produced by factory under the given adversary in
// a lock-step, deterministic fashion: each round the oracle plans D sets and
// crashes, live processes emit, and each live process is delivered the
// messages of S(i,r) together with D(i,r).
//
// Run returns an error if the oracle produces an invalid plan (one violating
// S(i,r) ∪ D(i,r) = S, suspecting everybody, delivering from a process that
// did not emit, or failing to suspect a crashed process) or if the round
// limit is hit first.
func Run(n int, inputs []Value, factory Factory, oracle Oracle, opts ...Option) (res *Result, err error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: invalid process count %d", n)
	}
	if len(inputs) != n {
		return nil, fmt.Errorf("core: %d inputs for %d processes", len(inputs), n)
	}
	o := engineOptions{maxRounds: 10000, trace: true}
	for _, opt := range opts {
		opt(&o)
	}
	ob := o.observer
	if ob == nil {
		ob = DefaultObserver()
	}
	now := o.clock
	if now == nil {
		now = time.Now
	}
	if ob != nil {
		ob.RunStart(n)
		defer func() {
			rounds, decided := 0, 0
			if res != nil {
				rounds, decided = res.Rounds, len(res.DecidedAt)
			}
			ob.RunEnd(rounds, decided, err)
		}()
	}

	procs := make([]Algorithm, n)
	for i := range procs {
		procs[i] = factory(PID(i), n, inputs[i])
	}

	e := &execution{
		n:      n,
		o:      o,
		ob:     ob,
		now:    now,
		oracle: oracle,
		procs:  procs,
		active: FullSet(n),
		full:   FullSet(n),
		res: &Result{
			Outputs:   make(map[PID]Value, n),
			DecidedAt: make(map[PID]int, n),
			Crashed:   NewSet(n),
		},
	}
	if o.trace {
		e.res.Trace = NewTrace(n)
	}
	if o.ckDir != "" {
		ck, err := newCheckpointer(o.ckDir, o.ckOpts, n, inputs)
		if err != nil {
			return nil, err
		}
		e.ck = ck
	}
	return e.run(1)
}

// execution is one engine run in flight: the loop state shared by Run and
// Resume.
type execution struct {
	n      int
	o      engineOptions
	ob     obs.Observer
	now    func() time.Time
	oracle Oracle
	procs  []Algorithm
	res    *Result
	active Set
	full   Set
	ck     *checkpointer
}

// run executes rounds startRound..maxRounds and settles the checkpoint log:
// a clean finish gets an end-of-log marker, every other exit (halt, timeout,
// plan error) leaves the log resumable.
func (e *execution) run(startRound int) (*Result, error) {
	res, err := e.loop(startRound)
	if e.ck != nil {
		if err == nil {
			if werr := e.ck.writeEnd(); werr != nil {
				err = werr
			}
		}
		if cerr := e.ck.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return res, err
}

// loop is the lock-step round loop.
//
// The loop allocates per-execution scratch once and reuses it every round:
// the emitted-message slice, the delivery map and suspect set handed to
// Algorithm.Deliver (both engine-owned — see the Algorithm contract), the
// deliver working set, and the plan-validation sets. Fresh sets are cloned
// only into RoundRecord, and only when recording (trace or checkpoint) is
// on, so an untraced run's round cost is dominated by the algorithm and the
// oracle, not the engine.
func (e *execution) loop(startRound int) (*Result, error) {
	o, ob, now, res := e.o, e.ob, e.now, e.res
	n, full := e.n, e.full

	var wallStart time.Time
	if o.maxWall > 0 {
		wallStart = now()
	}

	// Phase timings cost two clock reads per phase; skip them when the
	// attached observer declares it never consumes them (obs.Base and
	// anything embedding it without overriding Phase). Phase hooks still
	// fire, with a zero duration.
	timed := ob != nil && obs.NeedsPhaseTimings(ob)

	var (
		msgs    = make([]Message, n)       // round-r emissions, indexed by PID
		in      = make(map[PID]Message, n) // delivery map passed to Deliver
		deliver = NewSet(n)                // S(p,r) working set
		susp    = NewSet(n)                // D(p,r) copy passed to Deliver
		vs      = newPlanScratch(n)        // validatePlan working sets
	)

	record := o.trace || e.ck != nil
	for r := startRound; r <= o.maxRounds; r++ {
		if o.maxWall > 0 {
			if elapsed := now().Sub(wallStart); elapsed > o.maxWall {
				return res, &TimeoutError{Limit: o.maxWall, Elapsed: elapsed, Rounds: res.Rounds, Trace: res.Trace}
			}
		}
		var phaseStart time.Time
		if ob != nil {
			ob.RoundStart(r, e.active.Count())
			if timed {
				phaseStart = now()
			}
		}
		var roundDur time.Duration // Σ of the three timed phases, no extra clock reads
		plan := e.oracle.Plan(r, e.active)
		if ob != nil {
			var d time.Duration
			if timed {
				d = now().Sub(phaseStart)
			}
			roundDur += d
			ob.Phase(r, "plan", d)
		}
		if err := validatePlanIn(n, r, e.active, &plan, vs); err != nil {
			return nil, err
		}
		e.active.DiffInto(plan.Crashes)
		res.Crashed.UnionInto(plan.Crashes)
		if ob != nil && !plan.Crashes.Empty() {
			ob.Crash(r, observerInts(plan.Crashes))
		}
		if e.active.Empty() {
			res.Rounds = r
			return res, fmt.Errorf("core: all processes crashed at round %d", r)
		}

		if timed {
			phaseStart = now()
		}
		clear(msgs)
		e.active.ForEach(func(p PID) {
			msgs[p] = e.procs[p].Emit(r)
			if ob != nil {
				ob.Emit(r, int(p))
			}
		})
		if ob != nil {
			var d time.Duration
			if timed {
				d = now().Sub(phaseStart)
			}
			roundDur += d
			ob.Phase(r, "emit", d)
			if timed {
				phaseStart = now()
			}
		}

		var rec RoundRecord
		if record {
			rec = RoundRecord{
				R:        r,
				Suspects: make([]Set, n),
				Deliver:  make([]Set, n),
				Active:   e.active.Clone(),
				Crashed:  full.Diff(e.active),
			}
		}

		var deliverErr error
		e.active.ForEach(func(p PID) {
			plan.deliverSetInto(&deliver, p, e.active)
			if !deliver.UnionEquals(plan.Suspects[p], full) {
				deliverErr = &PlanError{Round: r, Proc: p, Reason: "S(i,r) ∪ D(i,r) ≠ S"}
				return
			}
			clear(in)
			deliver.ForEach(func(q PID) { in[q] = msgs[q] })
			susp.CopyFrom(plan.Suspects[p])
			out, decided := e.procs[p].Deliver(r, in, susp)
			if ob != nil {
				ob.Suspect(r, int(p), observerInts(plan.Suspects[p]))
				ob.Deliver(r, int(p), deliver.Count(), plan.Suspects[p].Count())
			}
			if decided {
				if _, done := res.DecidedAt[p]; !done {
					res.Outputs[p] = out
					res.DecidedAt[p] = r
					if ob != nil {
						ob.Decide(r, int(p))
					}
				}
			}
			if record {
				rec.Suspects[p] = plan.Suspects[p].Clone()
				rec.Deliver[p] = deliver.Clone()
			}
		})
		if ob != nil {
			var d time.Duration
			if timed {
				d = now().Sub(phaseStart)
			}
			roundDur += d
			ob.Phase(r, "deliver", d)
			// The synthetic whole-round phase is the sum of the three
			// timed phases — deliberately no extra clock reads.
			ob.Phase(r, "round", roundDur)
		}
		if deliverErr != nil {
			return nil, deliverErr
		}
		if record {
			for i := 0; i < n; i++ {
				if rec.Suspects[i].words == nil {
					rec.Suspects[i] = NewSet(n)
					rec.Deliver[i] = NewSet(n)
				}
			}
			if o.trace {
				res.Trace.Append(rec)
			}
		}
		if e.ck != nil {
			if err := e.ck.endOfRound(e, &rec); err != nil {
				return res, err
			}
		}

		res.Rounds = r
		if o.haltAfter > 0 && r >= o.haltAfter {
			return res, &HaltError{Round: r, Dir: o.ckDir}
		}
		if allDecided(e.active, res.DecidedAt) && r >= o.extraRound {
			return res, nil
		}
	}
	return res, ErrMaxRounds
}

// TraceOracle replays a recorded trace as an adversary: round r's plan is
// the trace's round-r record (suspect sets, plus crashes inferred from the
// Active transitions). Rounds beyond the trace replay its final record.
// Replaying lets any algorithm be run against an explicitly enumerated
// family of detector behaviours — the basis of exhaustive theorem checking.
func TraceOracle(t *Trace) Oracle {
	return OracleFunc(func(r int, active Set) RoundPlan {
		if r > t.Len() {
			r = t.Len()
		}
		rec := t.Round(r)
		if rec == nil {
			// Empty trace: behave benignly.
			sus := make([]Set, t.N)
			for i := range sus {
				sus[i] = NewSet(t.N)
			}
			return RoundPlan{Suspects: sus}
		}
		sus := make([]Set, t.N)
		for i := range sus {
			sus[i] = rec.Suspects[i].Clone()
		}
		// Crash whoever the trace stops running.
		crashes := active.Diff(rec.Active)
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
}

// CollectTrace runs a no-op full-information algorithm under the oracle for
// exactly rounds rounds and returns the recorded trace. It is the bridge from
// an adversary to the predicate checkers: the trace is the adversary's
// behaviour, independent of any algorithm. Extra options (e.g. WithObserver)
// are applied before the round bound, which always wins.
func CollectTrace(n, rounds int, oracle Oracle, opts ...Option) (*Trace, error) {
	inputs := make([]Value, n)
	res, err := Run(n, inputs, func(me PID, n int, input Value) Algorithm {
		return nopAlgorithm{}
	}, oracle, append(append([]Option{}, opts...), WithMaxRounds(rounds))...)
	if err != nil && !errors.Is(err, ErrMaxRounds) {
		return nil, err
	}
	return res.Trace, nil
}

type nopAlgorithm struct{}

func (nopAlgorithm) Emit(r int) Message { return nil }

func (nopAlgorithm) Deliver(r int, msgs map[PID]Message, suspects Set) (Value, bool) {
	return nil, false
}

// deliverSet computes S(p,r) for this plan: the explicit override when given,
// otherwise every active process not suspected by p.
func (pl *RoundPlan) deliverSet(p PID, active Set) Set {
	if pl.Deliver != nil && pl.Deliver[p].words != nil {
		return pl.Deliver[p].Clone()
	}
	return active.Diff(pl.Suspects[p])
}

// deliverSetInto is deliverSet into caller-owned storage: it overwrites dst
// with S(p,r) without allocating.
func (pl *RoundPlan) deliverSetInto(dst *Set, p PID, active Set) {
	if pl.Deliver != nil && pl.Deliver[p].words != nil {
		dst.CopyFrom(pl.Deliver[p])
		return
	}
	dst.CopyFrom(active)
	dst.DiffInto(pl.Suspects[p])
}

// planScratch is the working storage validatePlanIn reuses across rounds.
// empty is handed out as the normalized Crashes set of plans that carry
// none, so it must never be mutated.
type planScratch struct {
	full, live, dead, empty Set
}

func newPlanScratch(n int) *planScratch {
	return &planScratch{full: FullSet(n), live: NewSet(n), dead: NewSet(n), empty: NewSet(n)}
}

// validatePlan checks and normalizes one round plan with fresh working
// sets; the engine loop uses validatePlanIn with per-execution scratch.
func validatePlan(n, r int, active Set, plan *RoundPlan) error {
	return validatePlanIn(n, r, active, plan, newPlanScratch(n))
}

func validatePlanIn(n, r int, active Set, plan *RoundPlan, vs *planScratch) error {
	if len(plan.Suspects) != n {
		return &PlanError{Round: r, Proc: -1, Reason: fmt.Sprintf("plan has %d suspect sets, want %d", len(plan.Suspects), n)}
	}
	if plan.Crashes.words == nil {
		plan.Crashes = vs.empty
	}
	live := vs.live
	live.CopyFrom(active)
	live.DiffInto(plan.Crashes)
	dead := vs.dead
	dead.CopyFrom(vs.full)
	dead.DiffInto(live)
	var err error
	live.ForEach(func(p PID) {
		if err != nil {
			return
		}
		d := plan.Suspects[p]
		if d.words == nil {
			err = &PlanError{Round: r, Proc: p, Reason: "nil suspect set"}
			return
		}
		if d.Count() == n {
			err = &PlanError{Round: r, Proc: p, Reason: "D(i,r) = S is forbidden"}
			return
		}
		if !dead.IsSubset(d) {
			err = &PlanError{Round: r, Proc: p, Reason: fmt.Sprintf("crashed processes %s not all suspected (D=%s)", dead, d)}
			return
		}
		if plan.Deliver != nil {
			s := plan.Deliver[p]
			if s.words == nil {
				return // engine falls back to active \ D for this process
			}
			if !s.IsSubset(live) {
				err = &PlanError{Round: r, Proc: p, Reason: "delivery from a process that did not emit"}
				return
			}
		}
	})
	return err
}

// allDecided reports whether every active process has decided, returning at
// the first undecided one.
func allDecided(active Set, decidedAt map[PID]int) bool {
	for wi, w := range active.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if _, ok := decidedAt[PID(wi*64+b)]; !ok {
				return false
			}
			w &^= 1 << uint(b)
		}
	}
	return true
}
