package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// ckTestAlg is a deterministic min-flooding algorithm with snapshot support
// and a count of Deliver calls made on this instance (to observe whether
// Resume replayed rounds or skipped them via a snapshot).
type ckTestAlg struct {
	est      int
	rounds   int
	delivers int
}

func ckFactory(rounds int) Factory {
	return func(me PID, n int, input Value) Algorithm {
		return &ckTestAlg{est: input.(int), rounds: rounds}
	}
}

func (a *ckTestAlg) Emit(r int) Message { return a.est }

func (a *ckTestAlg) Deliver(r int, msgs map[PID]Message, suspects Set) (Value, bool) {
	a.delivers++
	for _, m := range msgs {
		if v := m.(int); v < a.est {
			a.est = v
		}
	}
	if r >= a.rounds {
		return a.est, true
	}
	return nil, false
}

func (a *ckTestAlg) Snapshot() ([]byte, error) {
	return json.Marshal(map[string]int{"est": a.est, "rounds": a.rounds})
}

func (a *ckTestAlg) Restore(b []byte) error {
	var s map[string]int
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	a.est, a.rounds = s["est"], s["rounds"]
	return nil
}

// ckOracle is a deterministic adversary: it crashes process 0 at round 1 and
// has every live process suspect exactly the crashed set.
func ckOracle(n int) Oracle {
	return OracleFunc(func(r int, active Set) RoundPlan {
		crashes := NewSet(n)
		if r == 1 {
			crashes.Add(0)
		}
		dead := FullSet(n).Diff(active.Diff(crashes))
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = dead.Clone()
		}
		return RoundPlan{Suspects: sus, Crashes: crashes}
	})
}

func ckInputs(n int) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = n - i // min lives on the crashed process's survivors
	}
	return in
}

func sameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("outputs differ: %v vs %v", a.Outputs, b.Outputs)
	}
	for p, v := range a.Outputs {
		if b.Outputs[p] != v {
			t.Fatalf("p%d decided %v vs %v", p, v, b.Outputs[p])
		}
	}
	for p, r := range a.DecidedAt {
		if b.DecidedAt[p] != r {
			t.Fatalf("p%d decided at %d vs %d", p, r, b.DecidedAt[p])
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds %d vs %d", a.Rounds, b.Rounds)
	}
	if !a.Crashed.Equal(b.Crashed) {
		t.Fatalf("crashed %s vs %s", a.Crashed, b.Crashed)
	}
	ta, err := json.Marshal(a.Trace)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := json.Marshal(b.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if string(ta) != string(tb) {
		t.Fatalf("traces differ:\n%s\nvs\n%s", ta, tb)
	}
}

func TestKillAndResumeIdenticalTrace(t *testing.T) {
	const n, rounds = 5, 4
	inputs := ckInputs(n)

	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}

	for halt := 1; halt < rounds; halt++ {
		dir := filepath.Join(t.TempDir(), "ck")
		_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
			WithCheckpointing(dir, CheckpointOptions{}),
			WithHaltAfterRound(halt))
		var he *HaltError
		if !errors.As(err, &he) || he.Round != halt {
			t.Fatalf("halt %d: got %v, want *HaltError", halt, err)
		}

		got, err := Resume(dir, ckFactory(rounds), ckOracle(n))
		if err != nil {
			t.Fatalf("resume after halt %d: %v", halt, err)
		}
		sameResult(t, want, got)
	}
}

func TestResumeFromSnapshotSkipsReplay(t *testing.T) {
	const n, rounds = 4, 5
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{Every: 1}),
		WithHaltAfterRound(3))
	var he *HaltError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HaltError", err)
	}

	var algs []*ckTestAlg
	countingFactory := func(me PID, n int, input Value) Algorithm {
		a := &ckTestAlg{est: input.(int), rounds: rounds}
		algs = append(algs, a)
		return a
	}
	got, err := Resume(dir, countingFactory, ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{Every: 1}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)

	// The snapshot at round 3 means the resumed instances only ran rounds
	// 4 and 5 — no replay of rounds 1..3.
	for i, a := range algs {
		if PID(i) == 0 {
			continue // crashed at round 1: no delivers at all
		}
		if a.delivers != 2 {
			t.Fatalf("p%d saw %d delivers after snapshot resume, want 2", i, a.delivers)
		}
	}
}

func TestResumeWithoutSnapshotReplaysAll(t *testing.T) {
	const n, rounds = 4, 5
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{}), // Every=0: no snapshots
		WithHaltAfterRound(3))
	var he *HaltError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HaltError", err)
	}
	var algs []*ckTestAlg
	countingFactory := func(me PID, n int, input Value) Algorithm {
		a := &ckTestAlg{est: input.(int), rounds: rounds}
		algs = append(algs, a)
		return a
	}
	got, err := Resume(dir, countingFactory, ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
	for i, a := range algs {
		if PID(i) == 0 {
			continue
		}
		if a.delivers != rounds {
			t.Fatalf("p%d saw %d delivers after replay resume, want %d", i, a.delivers, rounds)
		}
	}
}

func TestResumeCompletedRun(t *testing.T) {
	const n, rounds = 4, 3
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(dir, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestResumeAfterHaltAtFinalRound(t *testing.T) {
	// Killed after the deciding round but before the end marker: Resume
	// must settle the log and reconstruct the finished run.
	const n, rounds = 4, 3
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{}),
		WithHaltAfterRound(rounds))
	var he *HaltError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HaltError", err)
	}
	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(dir, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestResumeDivergentOracle(t *testing.T) {
	const n, rounds = 4, 4
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{}),
		WithHaltAfterRound(2))
	var he *HaltError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HaltError", err)
	}

	// A benign oracle (no crash at round 1) does not reproduce the journal.
	benign := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = FullSet(n).Diff(active)
		}
		return RoundPlan{Suspects: sus}
	})
	_, err = Resume(dir, ckFactory(rounds), benign)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want *DivergenceError", err)
	}
}

func TestResumeSurvivesTornTail(t *testing.T) {
	const n, rounds = 5, 4
	inputs := ckInputs(n)
	dir := filepath.Join(t.TempDir(), "ck")

	_, err := Run(n, inputs, ckFactory(rounds), ckOracle(n),
		WithCheckpointing(dir, CheckpointOptions{}),
		WithHaltAfterRound(2))
	var he *HaltError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HaltError", err)
	}

	// A real kill can tear the last record: chop bytes off the segment.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Resume(dir, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(n, inputs, ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestResumeEmptyDirFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nothing")
	if _, err := Resume(dir, ckFactory(2), ckOracle(3)); err == nil {
		t.Fatal("resume of an empty log should fail")
	}
}

func TestTraceValidate(t *testing.T) {
	const n, rounds = 5, 3
	res, err := Run(n, ckInputs(n), ckFactory(rounds), ckOracle(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.ValidateFailStop(); err != nil {
		t.Fatalf("engine trace failed validation: %v", err)
	}

	// A trace where a departed process re-enters Active passes the structural
	// check but not the fail-stop one.
	revived := *res.Trace
	revived.Rounds = append([]RoundRecord(nil), res.Trace.Rounds...)
	last := &revived.Rounds[len(revived.Rounds)-1]
	cp := *last
	cp.R++
	cp.Active = cp.Active.Clone()
	cp.Active.Add(0)
	cp.Suspects = append([]Set(nil), cp.Suspects...)
	cp.Deliver = append([]Set(nil), cp.Deliver...)
	cp.Suspects[0] = NewSet(n)
	cp.Deliver[0] = FullSet(n)
	revived.Rounds = append(revived.Rounds, cp)
	if err := revived.Validate(); err != nil {
		t.Fatalf("recovery-shaped trace failed structural validation: %v", err)
	}
	if err := revived.ValidateFailStop(); err == nil {
		t.Fatal("revived process passed fail-stop validation")
	}

	// Break S ∪ D = S for one process and revalidate.
	bad := *res.Trace
	rec := bad.Round(2)
	p := rec.Active.Members()[0]
	rec.Deliver[p] = NewSet(n)
	rec.Suspects[p] = NewSet(n)
	if err := bad.Validate(); err == nil {
		t.Fatal("tampered trace passed validation")
	}
}
