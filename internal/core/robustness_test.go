package core

import (
	"errors"
	"testing"
	"time"
)

// recordingAlg never decides and records the suspect set handed to it each
// round.
type recordingAlg struct {
	sus *[]Set
}

func (a recordingAlg) Emit(r int) Message { return nil }

func (a recordingAlg) Deliver(r int, msgs map[PID]Message, suspects Set) (Value, bool) {
	*a.sus = append(*a.sus, suspects.Clone()) // suspects is engine-owned scratch
	return nil, false
}

// TestTraceOracleReplaysSuspicionRetraction replays a trace in which p0
// suspects p2 in round 1 and retracts the suspicion in round 2 — the
// asynchronous-model behaviour (eq. (3)) that synchronous detectors forbid.
// The replay must deliver p2's message again after the retraction.
func TestTraceOracleReplaysSuspicionRetraction(t *testing.T) {
	n := 3
	tr := NewTrace(n)
	r1 := RoundRecord{R: 1, Active: FullSet(n), Crashed: NewSet(n),
		Suspects: []Set{SetOf(n, 2), NewSet(n), NewSet(n)},
		Deliver:  []Set{SetOf(n, 0, 1), FullSet(n), FullSet(n)}}
	r2 := RoundRecord{R: 2, Active: FullSet(n), Crashed: NewSet(n),
		Suspects: []Set{NewSet(n), NewSet(n), NewSet(n)},
		Deliver:  []Set{FullSet(n), FullSet(n), FullSet(n)}}
	tr.Append(r1)
	tr.Append(r2)

	var seen []Set
	_, err := Run(n, inputsOf(0, 1, 2), func(me PID, n int, input Value) Algorithm {
		if me == 0 {
			return recordingAlg{sus: &seen}
		}
		return nopAlgorithm{}
	}, TraceOracle(tr), WithMaxRounds(2))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds (nothing decides)", err)
	}
	if len(seen) != 2 {
		t.Fatalf("p0 observed %d rounds, want 2", len(seen))
	}
	if !seen[0].Has(2) {
		t.Fatalf("round 1: p0's suspects = %s, want p2 suspected", seen[0])
	}
	if seen[1].Has(2) {
		t.Fatalf("round 2: p0's suspects = %s, want the suspicion retracted", seen[1])
	}

	// Re-collecting the replayed adversary must reproduce the suspect sets.
	got, err := CollectTrace(n, 2, TraceOracle(tr))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 2; r++ {
		for i := 0; i < n; i++ {
			if !got.Round(r).Suspects[i].Equal(tr.Round(r).Suspects[i]) {
				t.Fatalf("round %d p%d: replayed D = %s, original %s",
					r, i, got.Round(r).Suspects[i], tr.Round(r).Suspects[i])
			}
		}
	}
}

// TestCollectTraceZeroRounds asks for a zero-round collection: legal, and
// yields an empty (but non-nil) trace with no error.
func TestCollectTraceZeroRounds(t *testing.T) {
	tr, err := CollectTrace(3, 0, benignOracle(3))
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Len() != 0 {
		t.Fatalf("trace = %v, want empty non-nil", tr)
	}
	if tr.N != 3 {
		t.Fatalf("trace universe = %d, want 3", tr.N)
	}
}

// TestCollectTraceEmptyUniverse rejects n = 0 loudly instead of recording
// a trace over no processes.
func TestCollectTraceEmptyUniverse(t *testing.T) {
	if _, err := CollectTrace(0, 3, benignOracle(0)); err == nil {
		t.Fatal("n = 0 accepted")
	}
}

// TestCollectTraceSingleProcess: a universe of one is fine (it may suspect
// nobody, since D = S is forbidden).
func TestCollectTraceSingleProcess(t *testing.T) {
	tr, err := CollectTrace(1, 2, benignOracle(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("rounds = %d, want 2", tr.Len())
	}
}

// TestWithMaxWallTime drives the engine with a fake clock that advances one
// second per reading: the wall budget must interrupt the execution at a
// round boundary and hand back the partial trace.
func TestWithMaxWallTime(t *testing.T) {
	base := time.Unix(0, 0)
	tick := 0
	clock := func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}
	_, err := Run(3, inputsOf(0, 1, 2), func(me PID, n int, input Value) Algorithm {
		return nopAlgorithm{} // never decides: only the wall budget can stop this
	}, benignOracle(3), WithMaxWallTime(3*time.Second), WithClock(clock))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if te.Limit != 3*time.Second {
		t.Fatalf("limit = %v", te.Limit)
	}
	if te.Elapsed <= te.Limit {
		t.Fatalf("elapsed %v not beyond limit %v", te.Elapsed, te.Limit)
	}
	if te.Rounds == 0 {
		t.Fatal("no round completed before the interruption")
	}
	if te.Trace == nil || te.Trace.Len() != te.Rounds {
		t.Fatalf("partial trace has %v rounds, reported %d", te.Trace, te.Rounds)
	}
}

// TestWithMaxWallTimeUntriggered: a generous budget must not perturb a
// normal run.
func TestWithMaxWallTimeUntriggered(t *testing.T) {
	res, err := Run(3, inputsOf(0, 1, 2), newEchoFactory(2), benignOracle(3),
		WithMaxWallTime(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
}
