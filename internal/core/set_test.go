package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(10)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	s.Add(3)
	s.Add(7)
	s.Add(3)
	if got := s.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Fatalf("membership wrong: %s", s)
	}
	s.Remove(3)
	if s.Has(3) {
		t.Fatal("Remove(3) did not remove")
	}
	if got := s.String(); got != "{7}" {
		t.Fatalf("String = %q, want {7}", got)
	}
}

func TestSetOutOfRange(t *testing.T) {
	s := NewSet(5)
	s.Add(-1)
	s.Add(5)
	s.Add(100)
	if !s.Empty() {
		t.Fatalf("out-of-range adds should be ignored, got %s", s)
	}
	if s.Has(-1) || s.Has(5) {
		t.Fatal("out-of-range Has should be false")
	}
	s.Remove(99) // must not panic
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 128, 130} {
		f := FullSet(n)
		if got := f.Count(); got != n {
			t.Fatalf("FullSet(%d).Count = %d", n, got)
		}
		if !f.Has(PID(n - 1)) {
			t.Fatalf("FullSet(%d) missing last element", n)
		}
		if f.Has(PID(n)) {
			t.Fatalf("FullSet(%d) contains %d", n, n)
		}
		if !f.Complement().Empty() {
			t.Fatalf("FullSet(%d).Complement not empty", n)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := SetOf(8, 0, 1, 2)
	b := SetOf(8, 2, 3)
	tests := []struct {
		name string
		got  Set
		want Set
	}{
		{"union", a.Union(b), SetOf(8, 0, 1, 2, 3)},
		{"intersect", a.Intersect(b), SetOf(8, 2)},
		{"diff", a.Diff(b), SetOf(8, 0, 1)},
		{"complement", a.Complement(), SetOf(8, 3, 4, 5, 6, 7)},
	}
	for _, tt := range tests {
		if !tt.got.Equal(tt.want) {
			t.Errorf("%s = %s, want %s", tt.name, tt.got, tt.want)
		}
	}
	if !a.Intersect(b).IsSubset(a) || !a.Intersect(b).IsSubset(b) {
		t.Error("intersection not a subset of operands")
	}
	if a.IsSubset(b) {
		t.Error("a should not be subset of b")
	}
	if !SetOf(8).IsSubset(a) {
		t.Error("empty set must be subset of everything")
	}
}

func TestSetOpsDoNotMutate(t *testing.T) {
	a := SetOf(8, 0, 1)
	b := SetOf(8, 1, 2)
	_ = a.Union(b)
	_ = a.Intersect(b)
	_ = a.Diff(b)
	_ = a.Complement()
	if !a.Equal(SetOf(8, 0, 1)) || !b.Equal(SetOf(8, 1, 2)) {
		t.Fatal("pure set operations mutated an operand")
	}
	c := a.Clone()
	c.Add(5)
	if a.Has(5) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSetMembersAndForEach(t *testing.T) {
	s := SetOf(70, 0, 63, 64, 69)
	want := []PID{0, 63, 64, 69}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	if p, ok := s.Min(); !ok || p != 0 {
		t.Fatalf("Min = %d,%v; want 0,true", p, ok)
	}
	if _, ok := NewSet(5).Min(); ok {
		t.Fatal("Min on empty set should report false")
	}
}

func TestUnionAllIntersectAll(t *testing.T) {
	sets := []Set{SetOf(6, 0, 1), SetOf(6, 1, 2), SetOf(6, 1, 5)}
	if got := UnionAll(6, sets); !got.Equal(SetOf(6, 0, 1, 2, 5)) {
		t.Errorf("UnionAll = %s", got)
	}
	if got := IntersectAll(6, sets); !got.Equal(SetOf(6, 1)) {
		t.Errorf("IntersectAll = %s", got)
	}
	if got := IntersectAll(6, nil); !got.Equal(FullSet(6)) {
		t.Errorf("IntersectAll(nil) = %s, want full set", got)
	}
	if got := UnionAll(6, nil); !got.Empty() {
		t.Errorf("UnionAll(nil) = %s, want empty", got)
	}
}

// randomSet builds a pseudo-random set over n elements from raw bits.
func randomSet(n int, r *rand.Rand) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(PID(i))
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	const n = 97 // force multi-word sets
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b, c := randomSet(n, r), randomSet(n, r), randomSet(n, r)

		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatal("intersect not commutative")
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatal("union not associative")
		}
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			t.Fatal("distributivity failed")
		}
		// De Morgan.
		if !a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement())) {
			t.Fatal("De Morgan failed")
		}
		// |A ∪ B| = |A| + |B| − |A ∩ B|.
		if a.Union(b).Count() != a.Count()+b.Count()-a.Intersect(b).Count() {
			t.Fatal("inclusion-exclusion failed")
		}
		// A \ B = A ∩ Bᶜ.
		if !a.Diff(b).Equal(a.Intersect(b.Complement())) {
			t.Fatal("difference identity failed")
		}
		// Subset consistency.
		if got := a.Intersect(b).Equal(a); got != a.IsSubset(b) {
			t.Fatal("IsSubset inconsistent with intersection")
		}
	}
}

// TestSetQuickRoundTrip is a testing/quick property: adding the members of a
// set to a fresh set reproduces the set, for arbitrary bit patterns.
func TestSetQuickRoundTrip(t *testing.T) {
	prop := func(bitsLow, bitsHigh uint64) bool {
		s := NewSet(128)
		s.words[0], s.words[1] = bitsLow, bitsHigh
		rebuilt := SetOf(128, s.Members()...)
		return rebuilt.Equal(s) && rebuilt.Count() == s.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetQuickComplementInvolution: complement is an involution and
// partitions the universe, for arbitrary bit patterns.
func TestSetQuickComplementInvolution(t *testing.T) {
	prop := func(w0, w1 uint64, nSmall uint8) bool {
		n := int(nSmall%120) + 8
		s := NewSet(128)
		s.words[0], s.words[1] = w0, w1
		// Project into a universe of size n.
		proj := NewSet(n)
		s.ForEach(func(p PID) { proj.Add(p) })
		c := proj.Complement()
		return c.Complement().Equal(proj) &&
			proj.Intersect(c).Empty() &&
			proj.Union(c).Equal(FullSet(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPIDs(t *testing.T) {
	ps := []PID{5, 1, 3}
	SortPIDs(ps)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("SortPIDs = %v", ps)
	}
}

func TestSetInPlaceOps(t *testing.T) {
	// The in-place operations must agree with their pure counterparts on
	// random sets over universes straddling word boundaries.
	for _, n := range []int{1, 7, 64, 65, 130} {
		rng := rand.New(rand.NewSource(int64(n)))
		for iter := 0; iter < 50; iter++ {
			a, b := NewSet(n), NewSet(n)
			for p := 0; p < n; p++ {
				if rng.Intn(2) == 0 {
					a.Add(PID(p))
				}
				if rng.Intn(2) == 0 {
					b.Add(PID(p))
				}
			}

			got := NewSet(n)
			got.CopyFrom(a)
			if !got.Equal(a) {
				t.Fatalf("n=%d: CopyFrom: got %s want %s", n, got, a)
			}
			// CopyFrom must clear previous contents, not merge.
			got.CopyFrom(b)
			if !got.Equal(b) {
				t.Fatalf("n=%d: CopyFrom did not overwrite: got %s want %s", n, got, b)
			}

			u := a.Clone()
			u.UnionInto(b)
			if want := a.Union(b); !u.Equal(want) {
				t.Fatalf("n=%d: UnionInto: got %s want %s", n, u, want)
			}

			d := a.Clone()
			d.DiffInto(b)
			if want := a.Diff(b); !d.Equal(want) {
				t.Fatalf("n=%d: DiffInto: got %s want %s", n, d, want)
			}

			full := FullSet(n)
			if got, want := a.UnionEquals(b, full), a.Union(b).Equal(full); got != want {
				t.Fatalf("n=%d: UnionEquals(full) = %v, Union.Equal = %v (a=%s b=%s)", n, got, want, a, b)
			}
			if got, want := a.UnionEquals(b, b), a.Union(b).Equal(b); got != want {
				t.Fatalf("n=%d: UnionEquals(b) = %v, Union.Equal = %v (a=%s b=%s)", n, got, want, a, b)
			}
		}
	}
}

func TestSetInPlaceOpsDoNotTouchOperand(t *testing.T) {
	a := SetOf(70, 1, 64, 69)
	b := SetOf(70, 1, 5, 64)
	bBefore := b.Clone()
	x := a.Clone()
	x.UnionInto(b)
	x.CopyFrom(a)
	x.DiffInto(b)
	if !b.Equal(bBefore) {
		t.Fatalf("operand mutated: %s -> %s", bBefore, b)
	}
}

func TestUnionEqualsMismatchedUniverse(t *testing.T) {
	if SetOf(4, 0).UnionEquals(SetOf(4, 1), FullSet(5)) {
		t.Fatal("mismatched universes reported equal")
	}
}
