package core

import (
	"strings"
	"testing"
)

// buildTrace constructs a 2-round trace over 4 processes:
//
//	round 1: D(0)={3} D(1)={3} D(2)={2,3} D(3)={}   (p3 suspected by 0,1,2)
//	round 2: p3 crashed; D(i)={3} for live i.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	n := 4
	tr := NewTrace(n)
	tr.Append(RoundRecord{
		R:        1,
		Suspects: []Set{SetOf(n, 3), SetOf(n, 3), SetOf(n, 2, 3), NewSet(n)},
		Deliver:  []Set{SetOf(n, 0, 1, 2), SetOf(n, 0, 1, 2), SetOf(n, 0, 1), FullSet(n)},
		Active:   FullSet(n),
		Crashed:  NewSet(n),
	})
	tr.Append(RoundRecord{
		R:        2,
		Suspects: []Set{SetOf(n, 3), SetOf(n, 3), SetOf(n, 3), NewSet(n)},
		Deliver:  []Set{SetOf(n, 0, 1, 2), SetOf(n, 0, 1, 2), SetOf(n, 0, 1, 2), NewSet(n)},
		Active:   SetOf(n, 0, 1, 2),
		Crashed:  SetOf(n, 3),
	})
	return tr
}

func TestTraceAggregates(t *testing.T) {
	tr := buildTrace(t)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.SuspectUnion(1); !got.Equal(SetOf(4, 2, 3)) {
		t.Errorf("SuspectUnion(1) = %s", got)
	}
	// Intersection over ACTIVE processes in round 1 includes p3 whose D is
	// empty, so the intersection is empty.
	if got := tr.SuspectIntersection(1); !got.Empty() {
		t.Errorf("SuspectIntersection(1) = %s", got)
	}
	if got := tr.SuspectIntersection(2); !got.Equal(SetOf(4, 3)) {
		t.Errorf("SuspectIntersection(2) = %s", got)
	}
	if got := tr.CumulativeSuspects(2); !got.Equal(SetOf(4, 2, 3)) {
		t.Errorf("CumulativeSuspects = %s", got)
	}
	if got := tr.NeverSuspected(); !got.Equal(SetOf(4, 0, 1)) {
		t.Errorf("NeverSuspected = %s", got)
	}
}

func TestTraceRoundBounds(t *testing.T) {
	tr := buildTrace(t)
	if tr.Round(0) != nil || tr.Round(3) != nil {
		t.Fatal("out-of-range rounds must be nil")
	}
	if got := tr.SuspectUnion(99); !got.Empty() {
		t.Errorf("SuspectUnion(out of range) = %s", got)
	}
	if got := tr.SuspectIntersection(99); !got.Equal(FullSet(4)) {
		t.Errorf("SuspectIntersection(out of range) = %s", got)
	}
}

func TestTraceString(t *testing.T) {
	s := buildTrace(t).String()
	for _, want := range []string{"round 1", "round 2", "p0: D={3}", "crashed={3}"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace dump missing %q:\n%s", want, s)
		}
	}
}
