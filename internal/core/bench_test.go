package core

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// BenchmarkSetOps runs the union/intersect/diff triple through the
// in-place variants (CopyFrom + UnionInto/IntersectInto/DiffInto) over
// pre-allocated scratch — the exact shape of the engine loops — and must
// stay at 0 allocs/op (pinned in BENCH_core.json).
func BenchmarkSetOps(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := FullSet(n)
			y := SetOf(n, 0, PID(n/2), PID(n-1))
			u, v, w := NewSet(n), NewSet(n), NewSet(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.CopyFrom(x)
				u.UnionInto(y)
				v.CopyFrom(x)
				v.IntersectInto(y)
				w.CopyFrom(u)
				w.DiffInto(v)
				if w.Count() < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkSetBankSweep prices one fleet-shaped pass over a packed set
// bank: clear a row, add members, pop a count — per row, allocation-free.
func BenchmarkSetBankSweep(b *testing.B) {
	const n, rows = 16, 1024
	bank := NewSetBank(n, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := i % rows
		bank.Clear(r)
		bank.Add(r, 0)
		bank.Add(r, PID(n/2))
		bank.Add(r, PID(n-1))
		if bank.Row(r).Count() != 3 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSetForEach(b *testing.B) {
	s := FullSet(256)
	count := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(p PID) { count++ })
	}
	_ = count
}

// BenchmarkEngineRounds measures raw round throughput of the lock-step
// engine with a trivial algorithm and a benign oracle.
func BenchmarkEngineRounds(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := make([]Value, n)
			oracle := OracleFunc(func(r int, active Set) RoundPlan {
				sus := make([]Set, n)
				for i := range sus {
					sus[i] = NewSet(n)
				}
				return RoundPlan{Suspects: sus}
			})
			const rounds = 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := Run(n, inputs, newEchoFactory(rounds), oracle, WithoutTrace())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "rounds/run")
		})
	}
}

// BenchmarkEngineRoundsObserved is BenchmarkEngineRounds with a Metrics
// observer attached — the price of full metrics collection, to compare
// against the observer-free rows (which must stay at seed speed).
func BenchmarkEngineRoundsObserved(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := make([]Value, n)
			oracle := OracleFunc(func(r int, active Set) RoundPlan {
				sus := make([]Set, n)
				for i := range sus {
					sus[i] = NewSet(n)
				}
				return RoundPlan{Suspects: sus}
			})
			m := obs.NewMetrics()
			const rounds = 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := Run(n, inputs, newEchoFactory(rounds), oracle, WithoutTrace(), WithObserver(m))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "rounds/run")
		})
	}
}

// BenchmarkObservedRun prices the observer kinds on one fixed workload
// (n=16, 10 rounds of the echo algorithm under a benign oracle): no
// observer at all (must stay at BenchmarkEngineRounds speed — the hooks
// are behind one nil check), the Metrics aggregator (atomic counters plus
// sharded histograms), and the causal Tracer (span + flow assembly, a
// fresh tracer per run as the CLIs use it).
func BenchmarkObservedRun(b *testing.B) {
	const n, rounds = 16, 10
	inputs := make([]Value, n)
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = NewSet(n)
		}
		return RoundPlan{Suspects: sus}
	})
	runOnce := func(b *testing.B, extra ...Option) {
		opts := append([]Option{WithoutTrace()}, extra...)
		if _, err := Run(n, inputs, newEchoFactory(rounds), oracle, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("observer=off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b)
		}
	})
	b.Run("observer=metrics", func(b *testing.B) {
		m := obs.NewMetrics()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(b, WithObserver(m))
		}
	})
	b.Run("observer=tracer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, WithObserver(trace.New()))
		}
	})
}

// BenchmarkRun / BenchmarkCheckpointedRun measure the cost of journaling an
// execution: the same run bare, with round records only, and with a snapshot
// every round. The delta is the checkpointing overhead tracked in
// BENCH_core.json.
func BenchmarkRun(b *testing.B) {
	const n, rounds = 8, 10
	inputs := benchInputs(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(n, inputs, ckFactory(rounds), ckOracle(n), WithoutTrace()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rounds), "rounds/run")
}

func BenchmarkCheckpointedRun(b *testing.B) {
	const n, rounds = 8, 10
	inputs := benchInputs(n)
	for _, cfg := range []struct {
		name string
		co   CheckpointOptions
	}{
		{"rounds-only", CheckpointOptions{}},
		{"snapshot-every-round", CheckpointOptions{Every: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			root := b.TempDir()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir := fmt.Sprintf("%s/ck-%d", root, i)
				if _, err := Run(n, inputs, ckFactory(rounds), ckOracle(n), WithoutTrace(),
					WithCheckpointing(dir, cfg.co)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "rounds/run")
		})
	}
}

func benchInputs(n int) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = n - i
	}
	return in
}

func BenchmarkCollectTraceWithRecording(b *testing.B) {
	n := 16
	oracle := OracleFunc(func(r int, active Set) RoundPlan {
		sus := make([]Set, n)
		for i := range sus {
			sus[i] = SetOf(n, PID((r+i)%n))
		}
		return RoundPlan{Suspects: sus}
	})
	for i := 0; i < b.N; i++ {
		if _, err := CollectTrace(n, 10, oracle); err != nil {
			b.Fatal(err)
		}
	}
}
