package core

import (
	"encoding/json"
	"testing"
)

// FuzzSetJSON fuzzes the Set codec: any input either fails to decode or
// round-trips exactly.
func FuzzSetJSON(f *testing.F) {
	f.Add([]byte(`{"n":8,"members":[1,3]}`))
	f.Add([]byte(`{"n":0,"members":[]}`))
	f.Add([]byte(`{"n":128,"members":[0,63,64,127]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		if err := json.Unmarshal(data, &s); err != nil {
			return // invalid inputs are fine as long as they are rejected
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("decoded set failed to encode: %v", err)
		}
		var again Set
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !again.Equal(s) || again.Universe() != s.Universe() {
			t.Fatalf("round trip changed the set: %s vs %s", s, again)
		}
	})
}

// FuzzTraceJSON fuzzes the Trace codec the same way.
func FuzzTraceJSON(f *testing.F) {
	seed, err := json.Marshal(func() *Trace {
		tr, err := CollectTrace(3, 2, OracleFunc(func(r int, active Set) RoundPlan {
			sus := make([]Set, 3)
			for i := range sus {
				sus[i] = SetOf(3, PID((i+r)%3))
				sus[i].Remove(PID(i))
			}
			return RoundPlan{Suspects: sus}
		}))
		if err != nil {
			f.Fatal(err)
		}
		return tr
	}())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"n":2,"rounds":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := json.Unmarshal(data, &tr); err != nil {
			return
		}
		b, err := json.Marshal(&tr)
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		var again Trace
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.N != tr.N || again.Len() != tr.Len() {
			t.Fatalf("round trip changed the shape")
		}
	})
}
