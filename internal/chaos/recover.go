package chaos

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/par"
	"repro/internal/recovery"
)

// RecoverConfig shapes a crash-and-recover chaos campaign: many seeded
// executions of the journaled round protocol, each with randomized crash
// points, restart delays and proposals, each audited against the
// crash-recovery safety invariants (trace structure, per-round budget,
// validity, k-agreement with k=f+1, and the log-before-act durability rule).
type RecoverConfig struct {
	// N and F shape the instance; 0 means 5 and 1.
	N, F int

	// Rounds is the protocol length; 0 means 5 (recovered processes need
	// room to catch back up).
	Rounds int

	// Runs is the campaign size; 0 means 100.
	Runs int

	// Seed makes the whole campaign deterministic; 0 means 1.
	Seed int64

	// MaxCrashes bounds crash-and-recover faults per run; clamped to F,
	// 0 means F.
	MaxCrashes int

	// RestartChance is the probability a crashed process gets a supervisor
	// restart (the rest stay down — plain fail-stop); 0 means 0.8.
	RestartChance float64

	// MaxRestartDelay bounds the supervisor's restart latency in scheduler
	// steps; 0 means 300.
	MaxRestartDelay int

	// DropRate and DelayRate bound per-message link-fault probabilities
	// randomized per run; 0 disables (crash-recovery is the subject here).
	DropRate, DelayRate float64

	// FlushEvery is the view-flush cadence — larger values widen the
	// amnesia window recovery must survive; 0 means 3.
	FlushEvery int

	// WatchdogSteps is the per-round receive deadline; 0 means 512.
	WatchdogSteps int

	// MaxSteps bounds each execution; 0 means 1<<18.
	MaxSteps int

	// AmnesiaBug plants the recovery bug (decide from pre-crash un-flushed
	// state) in every restarted process, to demonstrate the audit catches
	// it. Never set outside tests and demos.
	AmnesiaBug bool

	// Workers bounds how many runs execute concurrently, with the same
	// contract as Config.Workers: 0 means one per logical CPU, results are
	// byte-identical to a sequential campaign, and an Observer forces
	// Workers=1.
	Workers int

	// Observer, when non-nil, receives substrate and recovery events.
	Observer obs.Observer

	// Telemetry, when non-nil, receives the per-run wall-time distribution
	// ("chaos_recover_wall_ns"), with the same contract as
	// Config.Telemetry: never serializes workers, never touches the
	// deterministic outputs.
	Telemetry *hist.Registry

	// Out, when non-nil, receives progress and failure reports.
	Out io.Writer
}

func (c RecoverConfig) withDefaults() RecoverConfig {
	if c.N <= 0 {
		c.N = 5
	}
	if c.F <= 0 {
		c.F = 1
	}
	if c.F >= c.N {
		c.F = c.N - 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.Runs <= 0 {
		c.Runs = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxCrashes <= 0 || c.MaxCrashes > c.F {
		c.MaxCrashes = c.F
	}
	if c.RestartChance == 0 {
		c.RestartChance = 0.8
	}
	if c.MaxRestartDelay <= 0 {
		c.MaxRestartDelay = 300
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 3
	}
	if c.WatchdogSteps <= 0 {
		c.WatchdogSteps = 512
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 1 << 18
	}
	return c
}

// RecoverScenario is one execution's full randomized input — everything
// needed to replay it exactly.
type RecoverScenario struct {
	SchedSeed int64
	Crashes   map[core.PID]int
	Restarts  map[core.PID]int
	Proposals []int
	Plan      faultnet.Plan
}

func (s RecoverScenario) String() string {
	return fmt.Sprintf("sched-seed=%d crashes=%s restarts=%s proposals=%v plan: %s",
		s.SchedSeed, crashString(s.Crashes), crashString(s.Restarts), s.Proposals, s.Plan)
}

// RecoverViolation is one audited safety breach with its replay recipe.
type RecoverViolation struct {
	Run      int
	Scenario RecoverScenario
	Kind     string // recovery.AuditError kinds plus "run-error"
	Detail   string
}

func (v RecoverViolation) String() string {
	return fmt.Sprintf("run %d: %s violation: %s\n  replay: %s", v.Run, v.Kind, v.Detail, v.Scenario)
}

// RecoverSummary aggregates a crash-and-recover campaign.
type RecoverSummary struct {
	Runs       int
	Violations []RecoverViolation

	// Decided and Undecided count processes across runs; abstention after a
	// failed catch-up is a liveness cost, not a safety breach.
	Decided, Undecided int

	// Crashes, Restarts and Rejoins count injected faults, supervised
	// restarts, and restarted processes that completed a round again.
	Crashes, Restarts, Rejoins int

	// ReplayedRounds totals journal rounds restored at recovery; LostRecords
	// totals journal records destroyed by crashes (the amnesia windows).
	ReplayedRounds, LostRecords int

	// Steps totals scheduler steps.
	Steps int
}

// Ok reports whether no safety invariant was violated.
func (s *RecoverSummary) Ok() bool { return len(s.Violations) == 0 }

// String renders the campaign result.
func (s *RecoverSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos-recover: %d runs, %d violations, %d decided, %d undecided, %d crashes, %d restarts, %d rejoins, %d replayed rounds, %d lost records, %d steps",
		s.Runs, len(s.Violations), s.Decided, s.Undecided, s.Crashes, s.Restarts, s.Rejoins, s.ReplayedRounds, s.LostRecords, s.Steps)
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "\n%s", v)
	}
	return b.String()
}

// RandomRecoverScenario draws one execution's inputs, fully determined by
// (cfg, seed): which processes crash and when, which of them the supervisor
// restarts and how late, the proposals, and any link-fault plan.
func RandomRecoverScenario(cfg RecoverConfig, seed int64) RecoverScenario {
	cfg = cfg.withDefaults()
	r := faultnet.NewRNG(seed ^ 0x4ec04e4d)
	s := RecoverScenario{
		Crashes:  make(map[core.PID]int),
		Restarts: make(map[core.PID]int),
	}
	count := 1 + r.Intn(cfg.MaxCrashes) // at least one crash per run: recovery is the subject
	for _, p := range pickPIDs(r, cfg.N, count) {
		s.Crashes[p] = 1 + r.Intn(40)
		if r.Float() < cfg.RestartChance {
			s.Restarts[p] = 1 + r.Intn(cfg.MaxRestartDelay)
		}
	}
	s.Proposals = make([]int, cfg.N)
	for i := range s.Proposals {
		s.Proposals[i] = r.Intn(100)
	}
	s.Plan = faultnet.Plan{Seed: seed}
	if cfg.DropRate > 0 {
		s.Plan.Components = append(s.Plan.Components, faultnet.Component{
			Kind: faultnet.Drop, Rate: cfg.DropRate * r.Float(),
		})
	}
	if cfg.DelayRate > 0 {
		s.Plan.Components = append(s.Plan.Components, faultnet.Component{
			Kind: faultnet.Delay, Rate: cfg.DelayRate * r.Float(), MaxDelay: 1 + r.Intn(16),
		})
	}
	return s
}

// ExecuteRecover replays one crash-and-recover execution.
func ExecuteRecover(cfg RecoverConfig, s RecoverScenario) (*recovery.Outcome, error) {
	cfg = cfg.withDefaults()
	return recovery.RunRounds(cfg.N, cfg.F, cfg.Rounds, recovery.Config{
		Net: msgnet.Config{
			Chooser:  msgnet.Seeded(s.SchedSeed),
			Crash:    s.Crashes,
			Restart:  s.Restarts,
			MaxSteps: cfg.MaxSteps,
			Faults:   s.Plan.Injector(),
			Observer: cfg.Observer,
		},
		FlushEvery:    cfg.FlushEvery,
		WatchdogSteps: cfg.WatchdogSteps,
		Proposals:     s.Proposals,
		AmnesiaBug:    cfg.AmnesiaBug,
	})
}

// checkRecover audits one execution and maps findings onto violations.
func checkRecover(cfg RecoverConfig, out *recovery.Outcome, err error) []RecoverViolation {
	cfg = cfg.withDefaults()
	if err != nil {
		return []RecoverViolation{{Kind: "run-error", Detail: fmt.Sprintf("execution failed instead of degrading: %v", err)}}
	}
	if aerr := recovery.Audit(out, cfg.N, cfg.F, cfg.Rounds); aerr != nil {
		v := RecoverViolation{Kind: "audit", Detail: aerr.Error()}
		var ae *recovery.AuditError
		if errors.As(aerr, &ae) {
			v.Kind = ae.Kind
		}
		return []RecoverViolation{v}
	}
	return nil
}

// RunRecover executes the crash-and-recover campaign: Runs seeded
// executions, each with at least one crash, each audited. Violations carry
// the full replay recipe.
// RunRecover fans runs out over cfg.Workers goroutines the same way Run
// does: seeds pre-drawn in run order, aggregation in run order, output
// byte-identical for any worker count.
func RunRecover(cfg RecoverConfig) *RecoverSummary {
	cfg = cfg.withDefaults()
	sum := &RecoverSummary{Runs: cfg.Runs}

	type runSeeds struct{ sched, scen int64 }
	seeds := faultnet.NewRNG(cfg.Seed)
	draws := make([]runSeeds, cfg.Runs)
	for i := range draws {
		draws[i].sched = int64(seeds.Intn(1<<30)) + 1
		draws[i].scen = int64(seeds.Intn(1<<30)) + 1
	}

	workers := par.Workers(cfg.Workers)
	if cfg.Observer != nil {
		workers = 1 // serialize the observed event stream
	}

	type runOutcome struct {
		decided, undecided          int
		crashes, restarts, rejoins  int
		replayedRounds, lostRecords int
		steps                       int
		vs                          []RecoverViolation
	}
	var wall *hist.Histogram
	if cfg.Telemetry != nil {
		wall = cfg.Telemetry.Get("chaos_recover_wall_ns")
	}
	outs, perr := par.Map(workers, cfg.Runs, func(run int) runOutcome {
		s := RandomRecoverScenario(cfg, draws[run].scen)
		s.SchedSeed = draws[run].sched

		var start time.Time
		if wall != nil {
			start = time.Now()
		}
		out, err := ExecuteRecover(cfg, s)
		if wall != nil {
			wall.Record(time.Since(start).Nanoseconds())
		}
		var oc runOutcome
		if out != nil {
			oc.decided = len(out.Decisions)
			oc.undecided = cfg.N - len(out.Decisions)
			oc.crashes = out.Crashed.Count()
			oc.restarts = out.Restarted.Count()
			oc.rejoins = out.Rejoined.Count()
			for _, r := range out.Replayed {
				oc.replayedRounds += r
			}
			for _, l := range out.Lost {
				oc.lostRecords += l
			}
			oc.steps = out.Steps
		}
		oc.vs = checkRecover(cfg, out, err)
		for i := range oc.vs {
			oc.vs[i].Run = run
			oc.vs[i].Scenario = s
		}
		return oc
	})
	if perr != nil {
		panic(perr) // a panicking run would abort a sequential campaign too
	}

	for _, oc := range outs {
		sum.Decided += oc.decided
		sum.Undecided += oc.undecided
		sum.Crashes += oc.crashes
		sum.Restarts += oc.restarts
		sum.Rejoins += oc.rejoins
		sum.ReplayedRounds += oc.replayedRounds
		sum.LostRecords += oc.lostRecords
		sum.Steps += oc.steps
		for _, v := range oc.vs {
			sum.Violations = append(sum.Violations, v)
			if cfg.Out != nil {
				fmt.Fprintf(cfg.Out, "%s\n", v)
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "%s\n", sum)
	}
	return sum
}
