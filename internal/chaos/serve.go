// Service-level chaos: drive seeded client load at an in-process
// agreement-service cluster while killing and restarting a serving node
// mid-batch, then audit the three promises the service makes:
//
//   - Durability: every decision the victim acknowledged to a client
//     before the kill is in its journal, byte-for-byte recoverable — the
//     journal-before-ack rule. The planted AckBeforeJournalBug inverts
//     the rule so a deterministic crash hook (CrashAfterAcks) loses
//     exactly one acknowledged decision, which this audit must catch.
//   - Idempotency: retries reuse request IDs, across the kill and the
//     restart; all decided answers for one request ID agree, and no
//     journal ever holds two decisions for one instance.
//   - k-agreement and validity: across every client, batch, and the
//     victim's recovered state, each instance shows at most K distinct
//     decided values, all of them submitted by some client.
//
// The campaign is deterministic per seed in everything it plants (load
// shape, pins, values, kill point); scheduling decides which requests
// abstain or go unreachable, never whether an invariant holds.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/serve"
	"repro/internal/wal"
)

// ServeConfig shapes a kill-and-recover service campaign.
type ServeConfig struct {
	// N and F shape the mesh; 0 means 3 and 1. K is the agreement bound
	// audited across clients; 0 means F+1.
	N, F, K int

	// Clients is the number of concurrent client goroutines; Requests
	// the submits each makes per batch; Instances the id space they
	// draw from. 0 means 6, 12, 8.
	Clients, Requests, Instances int

	// Seed drives everything planted: per-client load, server pins,
	// values, and the kill point. 0 means 1.
	Seed int64

	// CrashAfterAcks is the victim's deterministic kill point: it halts
	// right after this many decisions have been acknowledged to its
	// clients. 0 draws 2–4 from the seed.
	CrashAfterAcks int

	// Bug plants the ack-before-journal inversion on the victim; the
	// campaign must then report a lost-ack violation.
	Bug bool

	// RequestTimeout bounds one client attempt (and the server-side
	// deadline); 0 means 750ms.
	RequestTimeout time.Duration

	// Dir is the WAL root; "" uses a temp directory, removed afterwards.
	Dir string

	// Observer and Telemetry, when non-nil, meter the cluster.
	Observer  obs.Observer
	Telemetry *hist.Registry

	// Out, when non-nil, receives progress and violations.
	Out io.Writer
}

func (c *ServeConfig) withDefaults() ServeConfig {
	out := *c
	if out.N == 0 {
		out.N = 3
	}
	if out.F == 0 {
		out.F = 1
	}
	if out.K == 0 {
		out.K = out.F + 1
	}
	if out.Clients == 0 {
		out.Clients = 6
	}
	if out.Requests == 0 {
		out.Requests = 12
	}
	if out.Instances == 0 {
		out.Instances = 8
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 750 * time.Millisecond
	}
	return out
}

// ServeViolation is one broken service promise.
type ServeViolation struct {
	// Kind is "lost-ack" | "divergent-recovery" | "duplicate-journal" |
	// "conflicting-retry" | "validity" | "k-agreement" | "incarnation" |
	// "recovery-mismatch".
	Kind   string
	Detail string
}

// String renders the violation.
func (v ServeViolation) String() string {
	return fmt.Sprintf("serve-chaos: %s violation: %s", v.Kind, v.Detail)
}

// ServeSummary aggregates one campaign.
type ServeSummary struct {
	N, F, K                      int
	Clients, Requests, Instances int
	Seed                         int64

	// CrashAfterAcks is the planted kill point; CrashFired whether the
	// victim reached it mid-batch (else it was killed at batch end).
	CrashAfterAcks int
	CrashFired     bool

	// Acked counts decided answers clients received (both batches);
	// Abstains, Overloads and Unreachable count the degraded outcomes;
	// Retries totals client backoff sleeps.
	Acked, Abstains, Overloads, Unreachable int
	Retries                                 int64

	// VictimAckedPreKill is the durability audit's subject size:
	// decisions the victim acknowledged before dying. DurableDecisions
	// is its journal's decision count at that moment.
	VictimAckedPreKill int
	DurableDecisions   int

	// DistinctMax is the widest per-instance decided-value set seen.
	DistinctMax int

	// VictimIncarnation is the restarted victim's incarnation (want 2).
	VictimIncarnation int

	Violations []ServeViolation
}

// Ok reports whether every service promise held.
func (s *ServeSummary) Ok() bool { return len(s.Violations) == 0 }

// String renders the campaign result.
func (s *ServeSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve-chaos: n=%d f=%d k=%d clients=%d×%d seed=%d: %d acked, %d abstained, %d overloaded, %d unreachable, %d retries; victim acked %d pre-kill (crash@%d fired=%v), %d durable, incarnation %d, distinct<=%d; %d violations",
		s.N, s.F, s.K, s.Clients, s.Requests, s.Seed,
		s.Acked, s.Abstains, s.Overloads, s.Unreachable, s.Retries,
		s.VictimAckedPreKill, s.CrashAfterAcks, s.CrashFired,
		s.DurableDecisions, s.VictimIncarnation, s.DistinctMax, len(s.Violations))
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "\n%s", v)
	}
	return b.String()
}

// reqSpec is one planted request: everything about it is drawn from the
// seed before any goroutine starts, so batch B can replay the identical
// load (same request IDs, same pins) against the restarted victim.
type reqSpec struct {
	client, idx int
	inst, req   string
	val         int
	server      int
}

// reqOutcome is what one attempt batch observed for a spec.
type reqOutcome struct {
	status      serve.Status
	val         int
	unreachable bool
}

// RunServe runs one kill-and-recover service campaign.
func RunServe(cfg ServeConfig) (*ServeSummary, error) {
	c := cfg.withDefaults()
	sum := &ServeSummary{
		N: c.N, F: c.F, K: c.K,
		Clients: c.Clients, Requests: c.Requests, Instances: c.Instances,
		Seed: c.Seed,
	}
	rng := rand.New(rand.NewSource(c.Seed))
	sum.CrashAfterAcks = c.CrashAfterAcks
	if sum.CrashAfterAcks == 0 {
		sum.CrashAfterAcks = 2 + rng.Intn(3)
	}

	dir := c.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "serve-chaos")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	victim := c.N - 1
	cl, err := serve.StartCluster(serve.ClusterConfig{
		N: c.N, F: c.F, K: c.K,
		Dir:            dir,
		Sync:           wal.SyncAlways,
		RequestTimeout: c.RequestTimeout,
		InstanceTTL:    4 * c.RequestTimeout,
		Seed:           c.Seed,
		Observer:       c.Observer,
		Hist:           c.Telemetry,
		Tune: func(i int, sc *serve.Config) {
			if i == victim {
				sc.CrashAfterAcks = sum.CrashAfterAcks
				sc.AckBeforeJournalBug = c.Bug
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	addrs := cl.ClientAddrs()

	// Plant the whole load up front, deterministically. Client 0's first
	// few requests pin victim-exclusive instances: no other client ever
	// submits them, so the victim commits each with a live waiter and the
	// CrashAfterAcks counter provably reaches the kill point mid-batch —
	// shared instances often reach the victim as peer decide broadcasts
	// first, and the resulting idempotent acks don't count.
	exclusive := sum.CrashAfterAcks + 2
	if exclusive > c.Requests {
		exclusive = c.Requests
	}
	specs := make([]reqSpec, 0, c.Clients*c.Requests)
	for ci := 0; ci < c.Clients; ci++ {
		crng := rand.New(rand.NewSource(rng.Int63()))
		for ri := 0; ri < c.Requests; ri++ {
			sp := reqSpec{
				client: ci, idx: ri,
				inst:   fmt.Sprintf("i%d", crng.Intn(c.Instances)),
				req:    fmt.Sprintf("c%d-%d", ci, ri),
				val:    crng.Intn(1000),
				server: crng.Intn(c.N),
			}
			if ci == 0 && ri < exclusive {
				sp.inst = fmt.Sprintf("v%d", ri)
				sp.server = victim
			}
			specs = append(specs, sp)
		}
	}
	submitted := map[string]map[int]bool{} // inst → submitted values
	for _, sp := range specs {
		if submitted[sp.inst] == nil {
			submitted[sp.inst] = map[int]bool{}
		}
		submitted[sp.inst][sp.val] = true
	}

	progress := func(format string, args ...any) {
		if c.Out != nil {
			fmt.Fprintf(c.Out, format+"\n", args...)
		}
	}
	progress("serve-chaos: n=%d f=%d cluster up, victim p%d crash@%d acks (bug=%v), driving %d clients × %d requests",
		c.N, c.F, victim, sum.CrashAfterAcks, c.Bug, c.Clients, c.Requests)

	runBatch := func(batch int, attempts int) []reqOutcome {
		outs := make([]reqOutcome, len(specs))
		var wg sync.WaitGroup
		for ci := 0; ci < c.Clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				conns := map[int]*serve.Client{}
				defer func() {
					for _, cc := range conns {
						cc.Close()
					}
				}()
				for si, sp := range specs {
					if sp.client != ci {
						continue
					}
					cc := conns[sp.server]
					if cc == nil {
						cc = serve.NewClient(serve.ClientConfig{
							Addr:        addrs[sp.server],
							Timeout:     c.RequestTimeout,
							MaxAttempts: attempts,
							RetryUnit:   2 * time.Millisecond,
							Seed:        c.Seed + int64(1000*batch+100*ci+sp.server),
						})
						conns[sp.server] = cc
					}
					resp, err := cc.Submit(sp.inst, sp.req, sp.val)
					if err != nil {
						outs[si] = reqOutcome{unreachable: true}
						continue
					}
					outs[si] = reqOutcome{status: resp.Status, val: resp.Val}
				}
				for _, cc := range conns {
					sum.noteRetries(cc.Retries)
				}
			}(ci)
		}
		wg.Wait()
		return outs
	}

	// Batch A: the victim dies somewhere in the middle of this.
	batchA := runBatch(0, 4)
	select {
	case <-cl.Servers[victim].Crashed():
		sum.CrashFired = true
	default:
	}
	cl.Servers[victim].Kill()
	if sum.CrashFired {
		progress("serve-chaos: victim p%d hit its crash hook mid-batch", victim)
	} else {
		progress("serve-chaos: victim p%d outlived the hook; killed at batch end", victim)
	}

	// Durability audit against the dead victim's journal — before the
	// restart, so nothing the mesh re-teaches can mask a loss.
	js, err := serve.ReadJournal(filepath.Join(dir, fmt.Sprintf("n%d", victim)))
	if err != nil {
		return nil, fmt.Errorf("read victim journal: %w", err)
	}
	sum.DurableDecisions = len(js.Decisions)
	for _, inst := range js.DuplicateDecisions {
		sum.violate("duplicate-journal", fmt.Sprintf("victim journal decided instance %s more than once", inst))
	}
	for si, sp := range specs {
		if sp.server != victim || batchA[si].status != serve.StatusDecided {
			continue
		}
		sum.VictimAckedPreKill++
		durable, ok := js.Decisions[sp.inst]
		if !ok {
			sum.violate("lost-ack", fmt.Sprintf(
				"victim acknowledged %s=%d to request %s, journal has no decision for it",
				sp.inst, batchA[si].val, sp.req))
		} else if durable != batchA[si].val {
			sum.violate("divergent-recovery", fmt.Sprintf(
				"victim acknowledged %s=%d, journal holds %d", sp.inst, batchA[si].val, durable))
		}
	}

	restarted, err := cl.Restart(victim, nil)
	if err != nil {
		return nil, err
	}
	sum.VictimIncarnation = restarted.Incarnation()
	if sum.VictimIncarnation < 2 {
		sum.violate("incarnation", fmt.Sprintf("restarted victim reports incarnation %d, want >= 2", sum.VictimIncarnation))
	}
	rec := restarted.RecoveredDecisions()
	if len(rec) != len(js.Decisions) {
		sum.violate("recovery-mismatch", fmt.Sprintf(
			"restart recovered %d decisions, journal held %d", len(rec), len(js.Decisions)))
	}
	progress("serve-chaos: victim restarted as incarnation %d with %d recovered decisions; replaying the full load",
		sum.VictimIncarnation, len(rec))

	// Batch B: the identical load again — every request ID reused, the
	// restarted victim included.
	batchB := runBatch(1, 8)

	// Cross-batch audits.
	decidedByReq := map[string]map[int]bool{}
	decidedByInst := map[string]map[int]bool{}
	note := func(inst, req string, val int) {
		if decidedByReq[req] == nil {
			decidedByReq[req] = map[int]bool{}
		}
		decidedByReq[req][val] = true
		if decidedByInst[inst] == nil {
			decidedByInst[inst] = map[int]bool{}
		}
		decidedByInst[inst][val] = true
	}
	for _, outs := range [][]reqOutcome{batchA, batchB} {
		for si, oc := range outs {
			switch {
			case oc.unreachable:
				sum.Unreachable++
			case oc.status == serve.StatusDecided:
				sum.Acked++
				note(specs[si].inst, specs[si].req, oc.val)
			case oc.status == serve.StatusAbstain:
				sum.Abstains++
			case oc.status == serve.StatusOverload:
				sum.Overloads++
			}
		}
	}
	for inst, val := range js.Decisions {
		note(inst, "", val)
	}
	delete(decidedByReq, "")
	for req, vals := range decidedByReq {
		if len(vals) > 1 {
			sum.violate("conflicting-retry", fmt.Sprintf(
				"request %s received %d distinct decided values %v across retries", req, len(vals), keys(vals)))
		}
	}
	for inst, vals := range decidedByInst {
		if len(vals) > sum.DistinctMax {
			sum.DistinctMax = len(vals)
		}
		if len(vals) > c.K {
			sum.violate("k-agreement", fmt.Sprintf(
				"instance %s decided %d distinct values %v > k=%d", inst, len(vals), keys(vals), c.K))
		}
		for v := range vals {
			if !submitted[inst][v] {
				sum.violate("validity", fmt.Sprintf(
					"instance %s decided %d, which no client submitted", inst, v))
			}
		}
	}

	if c.Out != nil {
		// The summary's String already carries every violation.
		fmt.Fprintf(c.Out, "%s\n", sum)
	}
	return sum, nil
}

var retryMu sync.Mutex

func (s *ServeSummary) noteRetries(n int64) {
	retryMu.Lock()
	s.Retries += n
	retryMu.Unlock()
}

func (s *ServeSummary) violate(kind, detail string) {
	s.Violations = append(s.Violations, ServeViolation{Kind: kind, Detail: detail})
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
