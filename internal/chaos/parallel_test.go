package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// campaign runs one fixed campaign at the given worker count and returns
// the rendered summary plus everything written to Out — the two artifacts
// the determinism contract promises are byte-identical across worker
// counts.
func campaign(workers int, quorumBug bool) (string, string) {
	var out bytes.Buffer
	sum := Run(Config{
		N: 6, F: 2, K: 3,
		Runs:          40,
		Seed:          13,
		DropRate:      0.6,
		DelayRate:     0.3,
		PartitionRate: 0.4,
		MaxCrashes:    1,
		WatchdogSteps: 300,
		QuorumBug:     quorumBug,
		Workers:       workers,
		Out:           &out,
	})
	return sum.String(), out.String()
}

func TestRunParallelByteIdentical(t *testing.T) {
	wantSum, wantOut := campaign(1, false)
	for _, workers := range []int{0, 2, 8} {
		gotSum, gotOut := campaign(workers, false)
		if gotSum != wantSum {
			t.Fatalf("workers=%d summary differs:\n%s\nvs workers=1:\n%s", workers, gotSum, wantSum)
		}
		if gotOut != wantOut {
			t.Fatalf("workers=%d Out stream differs:\n%q\nvs workers=1:\n%q", workers, gotOut, wantOut)
		}
	}
}

// TestRunParallelByteIdenticalWithViolations exercises the violation path
// — minimization and per-violation reporting — under parallelism: a
// planted quorum bug must yield the same violations, in the same order,
// with the same replay recipes, whatever the worker count.
func TestRunParallelByteIdenticalWithViolations(t *testing.T) {
	wantSum, wantOut := campaign(1, true)
	gotSum, gotOut := campaign(8, true)
	if wantSum == "" || len(wantOut) == 0 {
		t.Fatal("planted bug produced no output to compare")
	}
	if gotSum != wantSum {
		t.Fatalf("workers=8 summary differs:\n%s\nvs workers=1:\n%s", gotSum, wantSum)
	}
	if gotOut != wantOut {
		t.Fatalf("workers=8 Out stream differs:\n%q\nvs workers=1:\n%q", gotOut, wantOut)
	}
}

func TestRunRecoverParallelByteIdentical(t *testing.T) {
	recoverCampaign := func(workers int) (string, string) {
		var out bytes.Buffer
		sum := RunRecover(RecoverConfig{
			Runs:     40,
			Seed:     42,
			DropRate: 0.15,
			Workers:  workers,
			Out:      &out,
		})
		return sum.String(), out.String()
	}
	wantSum, wantOut := recoverCampaign(1)
	for _, workers := range []int{0, 8} {
		gotSum, gotOut := recoverCampaign(workers)
		if gotSum != wantSum {
			t.Fatalf("workers=%d summary differs:\n%s\nvs workers=1:\n%s", workers, gotSum, wantSum)
		}
		if gotOut != wantOut {
			t.Fatalf("workers=%d Out stream differs:\n%q\nvs workers=1:\n%q", workers, gotOut, wantOut)
		}
	}
}

// BenchmarkChaosCampaign measures end-to-end campaign throughput at
// several worker counts; on a multi-core runner workers=8 should approach
// an 8x speedup over workers=1 (runs are independent and CPU-bound).
func BenchmarkChaosCampaign(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum := Run(Config{
					N: 6, F: 2, K: 3,
					Runs:     16,
					Seed:     7,
					DropRate: 0.3,
					Workers:  workers,
				})
				if !sum.Ok() {
					b.Fatalf("benchmark campaign violated safety:\n%s", sum)
				}
			}
			b.ReportMetric(16, "runs/op")
		})
	}
}
