// Package chaos is the randomized robustness harness: it runs many seeded
// executions of the asynchronous k-set-agreement protocol over reliable
// links on a faulty substrate — each execution under a freshly randomized
// faultnet.Plan plus random crash failures — and checks the safety
// invariants that must survive any message-level mischief: validity,
// k-agreement, and (for stall-free executions) conformance of the induced
// RRFD trace to the eq. (3) asynchronous-model predicate.
//
// Every execution is reproducible from (Config.Seed, run index): on a
// violation the harness prints the scheduler seed, the fault plan, and the
// crash pattern, then delta-debugs the plan down to a minimal component list
// that still reproduces the failure.
package chaos

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/par"
	"repro/internal/predicate"
	"repro/internal/reliablelink"
)

// Config shapes a chaos campaign. The zero value is usable: 100 runs of
// 6-process, 2-resilient, 3-set agreement under 30% drop with delays and
// duplicates.
type Config struct {
	// N, F, K shape the agreement instance; 0 means 6, 2, 3. K is clamped
	// to at least F+1 (one-round min-of-quorum decides among ≤ F+1 values).
	N, F, K int

	// Rounds is the round-protocol length; 0 means 2. Decisions are taken
	// from the round-1 view; later rounds exercise the links further.
	Rounds int

	// Runs is how many randomized executions to perform; 0 means 100.
	Runs int

	// Seed makes the whole campaign deterministic; 0 means 1.
	Seed int64

	// DropRate, DupRate and DelayRate bound the per-message fault
	// probabilities randomized per run (each run draws an actual rate
	// uniformly below the bound). All zero means DropRate 0.3.
	DropRate, DupRate, DelayRate float64

	// MaxDelay bounds the injected delivery delay in steps; 0 means 16.
	MaxDelay int

	// OmitRate bounds send-omission probability for up to F faulty
	// senders; 0 disables omission components.
	OmitRate float64

	// PartitionRate is the per-run probability of a healing partition that
	// isolates up to F processes for a bounded window; 0 disables.
	PartitionRate float64

	// MaxCrashes bounds the crash failures injected per run; clamped to F.
	MaxCrashes int

	// WatchdogSteps and LingerSteps tune the reliable round protocol;
	// 0 means 1200 and 400.
	WatchdogSteps, LingerSteps int

	// MaxSteps bounds each execution's scheduler steps; 0 means 1<<18.
	MaxSteps int

	// FixedPlan, when non-nil, replaces the per-run randomized fault plan:
	// every run injects exactly this plan, while scheduler seeds and crash
	// draws still vary per run. Compiled model plans (hoalg.CompilePlan)
	// use this to pin a campaign to one fault scenario.
	FixedPlan *faultnet.Plan

	// TracePred, when non-nil, replaces the default eq. (3) conformance
	// check with a compiled model predicate, applied to every completed
	// execution's trace — stalled or not, since a model plan's forced
	// omissions make watchdog suspicions part of the modelled behaviour
	// rather than recovery noise.
	TracePred *predicate.P

	// SyncRounds makes the round protocol wait for every process instead
	// of advancing at the first n−F arrivals, so the only suspicions are
	// watchdog timeouts on processes whose messages genuinely never came.
	// Without it, which process a round misses is scheduler arrival order
	// — eq. (3) slack that even a fault-free run exhibits. Model campaigns
	// (FixedPlan from hoalg.CompilePlan) set it so the induced suspicions
	// are exactly D(i,r) = omitting senders ∖ {i}, the synchronous reading
	// the plan compiler promises; the decision quorum stays at n−F.
	SyncRounds bool

	// QuorumBug deliberately breaks the decision rule — processes decide
	// on sub-quorum views — so the harness can demonstrate that it catches
	// an agreement bug. Never set outside tests and demos.
	QuorumBug bool

	// Workers bounds how many runs execute concurrently; 0 means one per
	// logical CPU, 1 forces the sequential loop. Whatever the count, the
	// summary and the Out stream are byte-identical to a sequential
	// campaign: per-run seeds are pre-drawn in run order and results are
	// aggregated in run order. Campaigns with an Observer run at
	// Workers=1 regardless, so the observed event stream stays a
	// deterministic function of the seed.
	Workers int

	// Observer, when non-nil, receives every substrate, fault and link
	// event of the main executions (minimization replays are unobserved).
	Observer obs.Observer

	// Telemetry, when non-nil, receives the campaign's per-run wall-time
	// distribution ("chaos_run_wall_ns"). Unlike Observer it never forces
	// Workers=1: histogram recording is sharded-atomic and order-free, and
	// wall time flows only into histograms, never into the event stream or
	// the summary, so the byte-determinism contract is untouched.
	Telemetry *hist.Registry

	// Out, when non-nil, receives progress and failure reports.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 6
	}
	if c.F <= 0 && c.N >= 3 {
		c.F = 2
	}
	if c.F >= c.N {
		c.F = c.N - 1
	}
	if c.K <= c.F {
		c.K = c.F + 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Runs <= 0 {
		c.Runs = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DropRate == 0 && c.DupRate == 0 && c.DelayRate == 0 && c.OmitRate == 0 && c.PartitionRate == 0 {
		c.DropRate = 0.3
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 16
	}
	if c.MaxCrashes > c.F {
		c.MaxCrashes = c.F
	}
	if c.WatchdogSteps <= 0 {
		c.WatchdogSteps = 1200
	}
	if c.LingerSteps <= 0 {
		c.LingerSteps = 400
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 1 << 18
	}
	return c
}

// Violation is one safety-invariant breach, with everything needed to
// replay it: the scheduler seed, the full fault plan, the crash pattern,
// and the delta-debugged minimal plan.
type Violation struct {
	Run       int
	SchedSeed int64
	Plan      faultnet.Plan
	MinPlan   faultnet.Plan
	Crashes   map[core.PID]int
	Kind      string // "validity" | "k-agreement" | "predicate" | "run-error"
	Detail    string
}

// String renders the violation with its replay recipe.
func (v Violation) String() string {
	return fmt.Sprintf("run %d: %s violation: %s\n  replay: sched-seed=%d crashes=%s plan: %s\n  minimized: %s",
		v.Run, v.Kind, v.Detail, v.SchedSeed, crashString(v.Crashes), v.Plan, v.MinPlan)
}

// Summary aggregates a campaign.
type Summary struct {
	Runs       int
	Violations []Violation

	// Decided and Undecided count processes across all runs: Undecided
	// covers crash casualties and sub-quorum abstentions (a liveness cost,
	// never a safety breach).
	Decided, Undecided int

	// Stalls, Retransmissions and GiveUps aggregate link recovery work.
	Stalls, Retransmissions, GiveUps int

	// Steps totals scheduler steps across runs.
	Steps int
}

// Ok reports whether no safety invariant was violated.
func (s *Summary) Ok() bool { return len(s.Violations) == 0 }

// String renders the campaign result.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d runs, %d violations, %d decided, %d undecided, %d stalls, %d retransmissions, %d give-ups, %d steps",
		s.Runs, len(s.Violations), s.Decided, s.Undecided, s.Stalls, s.Retransmissions, s.GiveUps, s.Steps)
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "\n%s", v)
	}
	return b.String()
}

// RandomPlan draws a fault plan below the config's rate bounds, fully
// determined by seed.
func RandomPlan(cfg Config, seed int64) faultnet.Plan {
	cfg = cfg.withDefaults()
	r := faultnet.NewRNG(seed ^ 0x5ca1ab1e)
	p := faultnet.Plan{Seed: seed}
	if cfg.DropRate > 0 {
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.Drop, Rate: cfg.DropRate * r.Float(),
		})
	}
	if cfg.DupRate > 0 {
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.Duplicate, Rate: cfg.DupRate * r.Float(), Copies: 1 + r.Intn(2),
		})
	}
	if cfg.DelayRate > 0 {
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.Delay, Rate: cfg.DelayRate * r.Float(), MaxDelay: 1 + r.Intn(cfg.MaxDelay),
		})
	}
	if cfg.OmitRate > 0 && cfg.F > 0 {
		count := 1 + r.Intn(cfg.F)
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.SendOmission, Rate: cfg.OmitRate * r.Float(),
			Senders: pickPIDs(r, cfg.N, count),
		})
	}
	if cfg.PartitionRate > 0 && cfg.F > 0 && r.Float() < cfg.PartitionRate {
		island := pickPIDs(r, cfg.N, 1+r.Intn(cfg.F))
		mainland := complementPIDs(island, cfg.N)
		from := r.Intn(500)
		p.Components = append(p.Components, faultnet.Component{
			Kind:   faultnet.Partition,
			Groups: [][]core.PID{mainland, island},
			From:   from,
			Until:  from + 200 + r.Intn(2000),
			Name:   "split",
		})
	}
	return p
}

// randomCrashes draws up to MaxCrashes crash failures, each after a random
// number of network operations.
func randomCrashes(cfg Config, seed int64) map[core.PID]int {
	if cfg.MaxCrashes <= 0 {
		return nil
	}
	r := faultnet.NewRNG(seed ^ 0x0c4a54ed)
	count := r.Intn(cfg.MaxCrashes + 1)
	if count == 0 {
		return nil
	}
	out := make(map[core.PID]int, count)
	for _, p := range pickPIDs(r, cfg.N, count) {
		out[p] = 1 + r.Intn(30)
	}
	return out
}

func pickPIDs(r *faultnet.RNG, n, count int) []core.PID {
	perm := make([]core.PID, n)
	for i := range perm {
		perm[i] = core.PID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if count > n {
		count = n
	}
	out := append([]core.PID(nil), perm[:count]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func complementPIDs(in []core.PID, n int) []core.PID {
	member := make(map[core.PID]bool, len(in))
	for _, p := range in {
		member[p] = true
	}
	var out []core.PID
	for i := 0; i < n; i++ {
		if !member[core.PID(i)] {
			out = append(out, core.PID(i))
		}
	}
	return out
}

func crashString(crashes map[core.PID]int) string {
	if len(crashes) == 0 {
		return "none"
	}
	pids := make([]core.PID, 0, len(crashes))
	for p := range crashes {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	parts := make([]string, len(pids))
	for i, p := range pids {
		parts[i] = fmt.Sprintf("p%d@%d", p, crashes[p])
	}
	return strings.Join(parts, ",")
}

// runResult carries one execution's artifacts through checking. It is
// substrate-neutral on purpose: the checker needs the outcome, the
// decisions, and whether any round stalled — not which kind of report
// (step-clock reliablelink or wall-clock netsub) said so.
type runResult struct {
	out       *msgnet.RoundOutcome
	stalled   bool
	err       error
	decisions map[core.PID]core.Value
}

// Execute runs one k-set-agreement execution under the given scheduler
// seed, fault plan and crash pattern. Process i proposes the value i and
// decides the minimum of its round-1 view provided the view reached the
// n−f quorum; under QuorumBug it decides regardless of quorum.
func Execute(cfg Config, schedSeed int64, plan faultnet.Plan, crashes map[core.PID]int) (*msgnet.RoundOutcome, *reliablelink.RunReport, map[core.PID]core.Value, error) {
	cfg = cfg.withDefaults()
	if cfg.Observer != nil {
		for _, c := range plan.Partitions() {
			cfg.Observer.Event("faultnet.partition_span", -1, -1, map[string]any{
				"from": c.From, "until": c.Until, "name": c.Name,
			})
		}
	}
	roundF := cfg.F
	if cfg.SyncRounds {
		roundF = 0 // lock-step rounds: only the watchdog produces suspicions
	}
	out, rep, err := reliablelink.RunRounds(cfg.N, roundF, cfg.Rounds, reliablelink.RoundsConfig{
		Net: msgnet.Config{
			Chooser:  msgnet.Seeded(schedSeed),
			Crash:    crashes,
			MaxSteps: cfg.MaxSteps,
			Faults:   plan.Injector(),
			Observer: cfg.Observer,
		},
		Link:          reliablelink.Config{Observer: cfg.Observer},
		WatchdogSteps: cfg.WatchdogSteps,
		LingerSteps:   cfg.LingerSteps,
	}, func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
		return int(me) // the proposal, re-broadcast every round
	})

	return out, rep, decide(cfg, out), err
}

// decide applies the decision rule to an outcome: process i decides the
// minimum of its round-1 view provided the view reached the n−f quorum
// (under QuorumBug, regardless of quorum). The rule reads only the
// outcome, so virtual and networked executions share it verbatim.
func decide(cfg Config, out *msgnet.RoundOutcome) map[core.PID]core.Value {
	decisions := make(map[core.PID]core.Value)
	if out == nil {
		return decisions
	}
	for i := 0; i < cfg.N; i++ {
		views := out.Views[core.PID(i)]
		if len(views) == 0 {
			continue // crashed before completing round 1: undecided
		}
		view := views[0]
		if len(view) < cfg.N-cfg.F && !cfg.QuorumBug {
			continue // sub-quorum view: abstain rather than risk safety
		}
		if len(view) == 0 {
			continue
		}
		decided := false
		min := 0
		for _, v := range view {
			if n, ok := v.(int); ok && (!decided || n < min) {
				min, decided = n, true
			}
		}
		if decided {
			decisions[core.PID(i)] = min
		}
	}
	return decisions
}

// check applies the safety invariants to one execution.
func check(cfg Config, res runResult) []Violation {
	var vs []Violation
	add := func(kind, format string, args ...any) {
		vs = append(vs, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	if res.err != nil {
		add("run-error", "execution failed instead of degrading: %v", res.err)
	}

	// Validity: every decided value is some process's proposal.
	for p, v := range res.decisions {
		n, ok := v.(int)
		if !ok || n < 0 || n >= cfg.N {
			add("validity", "p%d decided %v, which no process proposed", p, v)
		}
	}

	// k-agreement: at most K distinct decided values.
	distinct := make(map[core.Value]bool)
	for _, v := range res.decisions {
		distinct[v] = true
	}
	if len(distinct) > cfg.K {
		vals := make([]int, 0, len(distinct))
		for v := range distinct {
			if n, ok := v.(int); ok {
				vals = append(vals, n)
			}
		}
		sort.Ints(vals)
		add("k-agreement", "%d distinct decisions %v exceed k=%d", len(distinct), vals, cfg.K)
	}

	// Predicate conformance. With a TracePred the compiled model predicate
	// is checked on every completed execution (watchdog suspicions under a
	// model plan are modelled behaviour, not recovery noise); otherwise a
	// stall-free execution's trace must satisfy the eq. (3) per-round
	// suspicion budget — message loss that the link fully recovered leaves
	// no mark on the fault-detector level.
	if cfg.TracePred != nil {
		if res.out != nil && res.err == nil {
			if err := cfg.TracePred.Check(res.out.Trace); err != nil {
				add("predicate", "trace violates model %q: %v", cfg.TracePred.Name, err)
			}
		}
	} else if !res.stalled && res.out != nil && res.err == nil {
		if err := predicate.PerRoundBudget(cfg.F).Check(res.out.Trace); err != nil {
			add("predicate", "stall-free trace escapes eq.(3): %v", err)
		}
	}
	return vs
}

// Minimize delta-debugs a failing plan: it repeatedly removes components
// whose absence still reproduces a violation under the same scheduler seed
// and crash pattern, until no single removal keeps the failure.
func Minimize(cfg Config, schedSeed int64, plan faultnet.Plan, crashes map[core.PID]int) faultnet.Plan {
	cfg = cfg.withDefaults()
	cfg.Observer = nil // replays are unobserved
	cur := plan
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Components); i++ {
			cand := cur.WithoutComponent(i)
			out, rep, decisions, err := Execute(cfg, schedSeed, cand, crashes)
			if len(check(cfg, runResult{out, rep.Stalled(), err, decisions})) > 0 {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// Run executes the campaign: Runs randomized executions, each checked
// against the safety invariants, each violation minimized and reported.
//
// Runs are fanned out over cfg.Workers goroutines (see Config.Workers);
// each run is a pure function of its pre-drawn seeds, and aggregation
// happens in run order, so the result is independent of the worker count.
func Run(cfg Config) *Summary {
	cfg = cfg.withDefaults()
	sum := &Summary{Runs: cfg.Runs}

	// Pre-draw every run's seeds sequentially from the campaign RNG, so
	// run i consumes exactly the random stream it would in a sequential
	// campaign, whatever order the workers execute in.
	type runSeeds struct{ sched, plan int64 }
	seeds := faultnet.NewRNG(cfg.Seed)
	draws := make([]runSeeds, cfg.Runs)
	for i := range draws {
		draws[i].sched = int64(seeds.Intn(1<<30)) + 1
		draws[i].plan = int64(seeds.Intn(1<<30)) + 1
	}

	workers := par.Workers(cfg.Workers)
	if cfg.Observer != nil {
		workers = 1 // serialize the observed event stream
	}

	type runOutcome struct {
		decided, undecided               int
		stalls, retransmissions, giveUps int
		steps                            int
		vs                               []Violation
	}
	var wall *hist.Histogram
	if cfg.Telemetry != nil {
		wall = cfg.Telemetry.Get("chaos_run_wall_ns")
	}
	outs, perr := par.Map(workers, cfg.Runs, func(run int) runOutcome {
		plan := RandomPlan(cfg, draws[run].plan)
		if cfg.FixedPlan != nil {
			plan = *cfg.FixedPlan
		}
		crashes := randomCrashes(cfg, draws[run].plan)

		var start time.Time
		if wall != nil {
			start = time.Now()
		}
		out, rep, decisions, err := Execute(cfg, draws[run].sched, plan, crashes)
		if wall != nil {
			wall.Record(time.Since(start).Nanoseconds())
		}
		oc := runOutcome{decided: len(decisions), undecided: cfg.N - len(decisions)}
		if rep != nil {
			oc.stalls = len(rep.Stalls)
			oc.retransmissions = rep.Retransmissions
			oc.giveUps = rep.GiveUps
			oc.steps = rep.Steps
		}
		oc.vs = check(cfg, runResult{out, rep.Stalled(), err, decisions})
		if len(oc.vs) == 0 {
			return oc
		}
		min := Minimize(cfg, draws[run].sched, plan, crashes)
		for i := range oc.vs {
			oc.vs[i].Run = run
			oc.vs[i].SchedSeed = draws[run].sched
			oc.vs[i].Plan = plan
			oc.vs[i].MinPlan = min
			oc.vs[i].Crashes = crashes
		}
		return oc
	})
	if perr != nil {
		panic(perr) // a panicking run would abort a sequential campaign too
	}

	for _, oc := range outs {
		sum.Decided += oc.decided
		sum.Undecided += oc.undecided
		sum.Stalls += oc.stalls
		sum.Retransmissions += oc.retransmissions
		sum.GiveUps += oc.giveUps
		sum.Steps += oc.steps
		for _, v := range oc.vs {
			sum.Violations = append(sum.Violations, v)
			if cfg.Out != nil {
				fmt.Fprintf(cfg.Out, "%s\n", v)
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "%s\n", sum)
	}
	return sum
}
