package chaos

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestLossyLinksPreserveSafety is the headline acceptance run: 200 seeded
// executions of 6-process 2-resilient 3-set agreement under ≤30% drop plus
// delays and duplicates must complete via retransmission with zero safety
// violations.
func TestLossyLinksPreserveSafety(t *testing.T) {
	sum := Run(Config{
		N: 6, F: 2, K: 3,
		Runs:      200,
		Seed:      7,
		DropRate:  0.3,
		DelayRate: 0.3,
		DupRate:   0.2,
	})
	if !sum.Ok() {
		t.Fatalf("safety violated under lossy links:\n%s", sum)
	}
	if sum.Retransmissions == 0 {
		t.Fatal("200 lossy runs with zero retransmissions — faults were not injected")
	}
	if sum.Decided == 0 {
		t.Fatal("no process ever decided")
	}
}

// TestMixedFaultsPreserveSafety turns every fault class on at once —
// drops, duplicates, delays, send-omission, healing partitions, crashes —
// and still demands zero safety violations.
func TestMixedFaultsPreserveSafety(t *testing.T) {
	sum := Run(Config{
		N: 6, F: 2, K: 3,
		Runs:          120,
		Seed:          21,
		DropRate:      0.3,
		DupRate:       0.3,
		DelayRate:     0.4,
		OmitRate:      0.4,
		PartitionRate: 0.5,
		MaxCrashes:    2,
	})
	if !sum.Ok() {
		t.Fatalf("safety violated under mixed faults:\n%s", sum)
	}
}

// TestQuorumBugCaught plants a real agreement bug — deciding on sub-quorum
// views — and demands the harness catch it, hand back a replayable seed,
// and shrink the fault plan.
func TestQuorumBugCaught(t *testing.T) {
	cfg := Config{
		N: 6, F: 2, K: 3,
		Runs:          60,
		Seed:          13,
		DropRate:      1.0, // realized rate uniform in [0,1): some runs are brutal
		OmitRate:      0.8,
		PartitionRate: 0.6,
		WatchdogSteps: 300,
		QuorumBug:     true,
	}
	sum := Run(cfg)
	if sum.Ok() {
		t.Fatal("deliberately broken decision rule survived 60 hostile runs undetected")
	}
	v := sum.Violations[0]
	if v.Kind != "k-agreement" && v.Kind != "validity" {
		t.Fatalf("violation kind = %q, want an agreement-safety kind", v.Kind)
	}

	// The reported seed + minimized plan must replay to a violation.
	replay := cfg
	replay.Observer = nil
	out, rep, decisions, err := Execute(replay, v.SchedSeed, v.MinPlan, v.Crashes)
	if got := check(replay, runResult{out, rep.Stalled(), err, decisions}); len(got) == 0 {
		t.Fatalf("minimized reproducer did not replay: %s", v)
	}
	if len(v.MinPlan.Components) > len(v.Plan.Components) {
		t.Fatalf("minimization grew the plan: %d → %d components",
			len(v.Plan.Components), len(v.MinPlan.Components))
	}
}

// TestMinimizeReachesFixpoint checks that no single component of a
// minimized plan can be removed while preserving the failure.
func TestMinimizeReachesFixpoint(t *testing.T) {
	cfg := Config{
		N: 6, F: 2, K: 3,
		Runs:          40,
		Seed:          13,
		DropRate:      1.0,
		DupRate:       0.5,
		DelayRate:     0.5,
		OmitRate:      0.8,
		WatchdogSteps: 300,
		QuorumBug:     true,
	}
	sum := Run(cfg)
	if sum.Ok() {
		t.Skip("no violation found at this seed; fixpoint untestable")
	}
	v := sum.Violations[0]
	probe := cfg
	probe.Observer = nil
	for i := range v.MinPlan.Components {
		cand := v.MinPlan.WithoutComponent(i)
		out, rep, decisions, err := Execute(probe, v.SchedSeed, cand, v.Crashes)
		if len(check(probe, runResult{out, rep.Stalled(), err, decisions})) > 0 {
			t.Fatalf("component %d of the minimized plan is removable: %s", i, v.MinPlan)
		}
	}
}

// TestCampaignEventStreamDeterministic demands the strong reproducibility
// contract: the same campaign seed yields a byte-identical event log.
func TestCampaignEventStreamDeterministic(t *testing.T) {
	campaign := func() []byte {
		var buf bytes.Buffer
		Run(Config{
			N: 5, F: 1, K: 2,
			Runs:          12,
			Seed:          99,
			DropRate:      0.3,
			DelayRate:     0.3,
			DupRate:       0.3,
			PartitionRate: 0.4,
			MaxCrashes:    1,
			Observer:      obs.NewEventLog(&buf),
		})
		return buf.Bytes()
	}
	a, b := campaign(), campaign()
	if len(a) == 0 {
		t.Fatal("campaign produced no events")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same campaign seed diverged (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRandomPlanRespectsBounds checks plan randomization stays below the
// configured rate ceilings and only uses enabled kinds.
func TestRandomPlanRespectsBounds(t *testing.T) {
	cfg := Config{N: 6, F: 2, K: 3, DropRate: 0.3, DelayRate: 0.2}
	for seed := int64(1); seed <= 50; seed++ {
		p := RandomPlan(cfg, seed)
		for _, c := range p.Components {
			switch c.Kind {
			case "drop":
				if c.Rate > 0.3 {
					t.Fatalf("seed %d: drop rate %v above bound", seed, c.Rate)
				}
			case "delay":
				if c.Rate > 0.2 {
					t.Fatalf("seed %d: delay rate %v above bound", seed, c.Rate)
				}
			default:
				t.Fatalf("seed %d: kind %s not enabled by config", seed, c.Kind)
			}
		}
	}
}
