package chaos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
	"repro/internal/netsub"
)

// NetConfig tunes the networked (real-socket) execution path.
type NetConfig struct {
	// Watchdog and Linger are the wall-clock analogues of WatchdogSteps
	// and LingerSteps; 0 means 500ms and 100ms — generous for loopback,
	// tight enough that partitioned rounds degrade quickly.
	Watchdog, Linger time.Duration

	// StepMillis maps one faultnet delay step to wall milliseconds in
	// the socket proxy; 0 means 2ms.
	StepMillis int

	// ResetEvery, when positive, additionally resets every N-th data
	// frame's connection (a fault the virtual substrate cannot express,
	// so cross-validation ignores it).
	ResetEvery int
}

func (c NetConfig) watchdog() time.Duration {
	if c.Watchdog <= 0 {
		return 500 * time.Millisecond
	}
	return c.Watchdog
}

func (c NetConfig) linger() time.Duration {
	if c.Linger <= 0 {
		return 100 * time.Millisecond
	}
	return c.Linger
}

// ExecuteNet runs one k-set-agreement execution over real TCP sockets
// with the fault plan applied by the socket-level chaos proxy — the
// networked twin of Execute. The protocol body, the decision rule and
// the safety checks are shared with the virtual path; only the substrate
// and the fault-application layer differ. Crash patterns are not
// expressible here (processes are goroutine-local, not scheduler-owned);
// the multi-process rrfdsim harness covers real process death.
func ExecuteNet(cfg Config, plan faultnet.Plan, ncfg NetConfig) (*msgnet.RoundOutcome, *netsub.RunReport, map[core.PID]core.Value, error) {
	cfg = cfg.withDefaults()
	lns, err := netsub.WrapAll(cfg.N, plan, netsub.ChaosConfig{
		StepMillis: ncfg.StepMillis,
		ResetEvery: ncfg.ResetEvery,
		Observer:   cfg.Observer,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chaos: wrap listeners: %w", err)
	}
	node := netsub.Config{Observer: cfg.Observer, Hist: cfg.Telemetry}
	out, rep, err := netsub.RunRounds(cfg.N, cfg.F, cfg.Rounds, netsub.RoundsConfig{
		Node:      node,
		Listeners: lns,
		Watchdog:  ncfg.watchdog(),
		Linger:    ncfg.linger(),
	}, func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
		return int(me) // the proposal, re-broadcast every round
	})
	return out, rep, decide(cfg, out), err
}

// CrossVerdict is the result of running the same fault plan through both
// substrates and comparing what the safety checker concluded.
type CrossVerdict struct {
	// Virtual and Net hold each substrate's violations (empty = clean).
	Virtual, Net []Violation

	// VirtualStalled and NetStalled record whether rounds degraded into
	// watchdog suspicions on each substrate.
	VirtualStalled, NetStalled bool

	// Agree reports whether both substrates produced the same verdict:
	// the same set of violation kinds (in particular, both clean).
	Agree bool
}

// String renders the verdict compactly.
func (v *CrossVerdict) String() string {
	state := "DISAGREE"
	if v.Agree {
		state = "agree"
	}
	return fmt.Sprintf("cross-validate: %s — virtual: %s (stalled=%t), tcp: %s (stalled=%t)",
		state, kindSet(v.Virtual), v.VirtualStalled, kindSet(v.Net), v.NetStalled)
}

func kindSet(vs []Violation) string {
	if len(vs) == 0 {
		return "clean"
	}
	seen := map[string]bool{}
	var kinds []string
	for _, v := range vs {
		if !seen[v.Kind] {
			seen[v.Kind] = true
			kinds = append(kinds, v.Kind)
		}
	}
	sort.Strings(kinds)
	return fmt.Sprint(kinds)
}

// CrossValidate runs the SAME fault plan once through the virtual
// substrate's injector (reliablelink over the step-clock scheduler) and
// once through the socket proxy over real TCP, applies the same safety
// checks to both outcomes, and compares the verdicts. Plans whose
// decisions are deterministic per seed — never-healing partitions, rate-0
// or rate-1 components — make the comparison exact; the shipped
// regression scenario uses a never-healing three-way partition with the
// quorum bug, which yields a k-agreement violation on BOTH substrates,
// and the honest rule, which yields clean on both.
func CrossValidate(cfg Config, schedSeed int64, plan faultnet.Plan, ncfg NetConfig) (*CrossVerdict, error) {
	cfg = cfg.withDefaults()

	vout, vrep, vdec, verr := Execute(cfg, schedSeed, plan, nil)
	v := &CrossVerdict{
		Virtual:        check(cfg, runResult{vout, vrep.Stalled(), verr, vdec}),
		VirtualStalled: vrep.Stalled(),
	}

	nout, nrep, ndec, nerr := ExecuteNet(cfg, plan, ncfg)
	if nerr != nil {
		return v, fmt.Errorf("chaos: networked execution: %w", nerr)
	}
	v.Net = check(cfg, runResult{nout, nrep.Stalled(), nerr, ndec})
	v.NetStalled = nrep.Stalled()

	v.Agree = kindSet(v.Virtual) == kindSet(v.Net)
	return v, nil
}

// SplitBrainPlan is the deterministic cross-validation scenario: a
// never-healing three-way partition {0} | {1} | {2..n-1}. Under the
// honest quorum rule every island abstains (clean on both substrates);
// under QuorumBug each island decides its own minimum, producing three
// distinct decisions — a k-agreement violation for any k < 3 — on both
// substrates. Never-healing windows make the partition independent of
// step-vs-frame indexing, so the verdict is deterministic per seed.
func SplitBrainPlan(n int, seed int64) faultnet.Plan {
	rest := make([]core.PID, 0, n-2)
	for i := 2; i < n; i++ {
		rest = append(rest, core.PID(i))
	}
	return faultnet.Plan{Seed: seed, Components: []faultnet.Component{{
		Kind:   faultnet.Partition,
		Groups: [][]core.PID{{0}, {1}, rest},
		Name:   "split-brain",
	}}}
}
