package chaos

import (
	"testing"
)

// TestRecoverCampaignClean is the acceptance gate: 100 seeded executions
// with crash-and-recover faults, every one audited for trace structure,
// per-round budget, validity, k-agreement and decision durability — zero
// violations, and the faults actually exercised the recovery machinery.
func TestRecoverCampaignClean(t *testing.T) {
	sum := RunRecover(RecoverConfig{Runs: 100, Seed: 42})
	if !sum.Ok() {
		t.Fatalf("campaign found violations:\n%s", sum)
	}
	if sum.Crashes == 0 || sum.Restarts == 0 {
		t.Fatalf("campaign injected no recovery faults: %s", sum)
	}
	if sum.Rejoins == 0 {
		t.Fatalf("no restarted process ever rejoined: %s", sum)
	}
	if sum.LostRecords == 0 {
		t.Fatalf("no crash ever destroyed un-flushed state — the amnesia window never opened: %s", sum)
	}
	if sum.Decided == 0 {
		t.Fatalf("nobody decided in %d runs: %s", sum.Runs, sum)
	}
}

// TestRecoverCampaignUnderLinkFaults layers message drops and delays on top
// of crash-and-recover: still zero safety violations (abstention is the
// permitted degradation).
func TestRecoverCampaignUnderLinkFaults(t *testing.T) {
	sum := RunRecover(RecoverConfig{
		Runs:      40,
		Seed:      7,
		DropRate:  0.15,
		DelayRate: 0.2,
	})
	if !sum.Ok() {
		t.Fatalf("campaign found violations:\n%s", sum)
	}
	if sum.Restarts == 0 {
		t.Fatalf("no restarts: %s", sum)
	}
}

// TestRecoverCampaignCatchesAmnesiaBug plants the bug — recovered processes
// deciding from pre-crash un-flushed state — and checks the audit catches it
// and that the reported violation replays deterministically.
func TestRecoverCampaignCatchesAmnesiaBug(t *testing.T) {
	cfg := RecoverConfig{Runs: 60, Seed: 42, AmnesiaBug: true}
	sum := RunRecover(cfg)
	if sum.Ok() {
		t.Fatalf("campaign missed the planted amnesia bug: %s", sum)
	}
	v := sum.Violations[0]
	if v.Kind != "durability" && v.Kind != "k-agreement" && v.Kind != "validity" {
		t.Fatalf("unexpected violation kind %q: %s", v.Kind, v)
	}

	// The violation's recipe must reproduce it exactly.
	out, err := ExecuteRecover(cfg, v.Scenario)
	replayed := checkRecover(cfg, out, err)
	if len(replayed) == 0 {
		t.Fatalf("violation did not replay from its recipe: %s", v)
	}
	if replayed[0].Kind != v.Kind || replayed[0].Detail != v.Detail {
		t.Fatalf("replay diverged: got %s/%s, want %s/%s",
			replayed[0].Kind, replayed[0].Detail, v.Kind, v.Detail)
	}

	// The same scenarios run honestly are clean: the bug, not the faults,
	// is what the audit caught.
	honest := cfg
	honest.AmnesiaBug = false
	hsum := RunRecover(honest)
	if !hsum.Ok() {
		t.Fatalf("honest campaign on the same seeds found violations:\n%s", hsum)
	}
}
