package chaos

import (
	"testing"
	"time"
)

// crossCfg is the deterministic cross-validation shape: 4 processes,
// 1-resilient, 2-set agreement under a never-healing three-way split.
func crossCfg(quorumBug bool) Config {
	return Config{N: 4, F: 1, K: 2, Rounds: 2, QuorumBug: quorumBug,
		WatchdogSteps: 600, LingerSteps: 200}
}

func crossNet() NetConfig {
	return NetConfig{Watchdog: 300 * time.Millisecond, Linger: 50 * time.Millisecond}
}

// TestCrossValidateQuorumBug is the acceptance scenario: the same
// never-healing split-brain plan, run through the virtual injector and
// through the socket proxy over real TCP, must reproduce the SAME
// k-agreement violation on both substrates — three islands each deciding
// their own minimum under the quorum bug.
func TestCrossValidateQuorumBug(t *testing.T) {
	plan := SplitBrainPlan(4, 1)
	v, err := CrossValidate(crossCfg(true), 11, plan, crossNet())
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if !v.Agree {
		t.Fatalf("substrates disagree: %s", v)
	}
	if !v.VirtualStalled || !v.NetStalled {
		t.Fatalf("partitioned rounds should stall on both substrates: %s", v)
	}
	assertKind := func(name string, vs []Violation) {
		t.Helper()
		if len(vs) == 0 {
			t.Fatalf("%s: quorum bug under split-brain produced no violation: %s", name, v)
		}
		for _, viol := range vs {
			if viol.Kind != "k-agreement" {
				t.Fatalf("%s: unexpected violation kind %q: %s", name, viol.Kind, viol.Detail)
			}
		}
	}
	assertKind("virtual", v.Virtual)
	assertKind("tcp", v.Net)
}

// TestCrossValidateHonestRuleClean pins the other half of the
// equivalence: with the honest sub-quorum abstention rule, the same plan
// is safe on both substrates — islands abstain instead of deciding.
func TestCrossValidateHonestRuleClean(t *testing.T) {
	plan := SplitBrainPlan(4, 1)
	v, err := CrossValidate(crossCfg(false), 11, plan, crossNet())
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if !v.Agree {
		t.Fatalf("substrates disagree: %s", v)
	}
	if len(v.Virtual) != 0 || len(v.Net) != 0 {
		t.Fatalf("honest rule should be clean on both substrates: %s", v)
	}
}

// TestCrossValidateDeterministicPerSeed runs the socket side twice and
// requires identical verdicts — the proxy's per-link frame indexing at
// work.
func TestCrossValidateDeterministicPerSeed(t *testing.T) {
	plan := SplitBrainPlan(4, 7)
	a, err := CrossValidate(crossCfg(true), 11, plan, crossNet())
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	b, err := CrossValidate(crossCfg(true), 11, plan, crossNet())
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if kindSet(a.Net) != kindSet(b.Net) || a.Agree != b.Agree {
		t.Fatalf("verdict not deterministic:\n%s\n%s", a, b)
	}
}
