package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunServeHonest runs the kill-and-recover campaign against an
// honest cluster: the victim dies at its planted kill point mid-batch,
// restarts, and every service promise must hold.
func TestRunServeHonest(t *testing.T) {
	var out bytes.Buffer
	sum, err := RunServe(ServeConfig{Seed: 7, Dir: t.TempDir(), Out: &out})
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if !sum.Ok() {
		t.Fatalf("honest campaign reported violations:\n%s", sum)
	}
	if sum.Acked == 0 {
		t.Fatalf("campaign acknowledged nothing: %s", sum)
	}
	if sum.VictimIncarnation != 2 {
		t.Fatalf("victim incarnation %d, want 2", sum.VictimIncarnation)
	}
	if sum.CrashFired && sum.DurableDecisions < sum.CrashAfterAcks {
		t.Fatalf("crash fired after %d acks but only %d durable decisions: %s",
			sum.CrashAfterAcks, sum.DurableDecisions, sum)
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("summary not printed to Out:\n%s", out.String())
	}
}

// TestRunServeCatchesAckBeforeJournalBug plants the inversion: the same
// campaign at the same seed must report the acknowledged decision the
// victim's journal lost.
func TestRunServeCatchesAckBeforeJournalBug(t *testing.T) {
	sum, err := RunServe(ServeConfig{Seed: 7, Bug: true, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if !sum.CrashFired {
		t.Fatalf("planted crash hook never fired: %s", sum)
	}
	lost := 0
	for _, v := range sum.Violations {
		if v.Kind == "lost-ack" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatalf("bug campaign missed the lost acknowledgement:\n%s", sum)
	}
}
