// Package semisync implements the semi-synchronous model of §5 — the
// Dolev–Dwork–Stockmeyer (DDS) model variant the paper solves an open
// problem in:
//
//   - processes are asynchronous and fail by crashing;
//   - a step atomically receives every buffered message and then broadcasts
//     one message;
//   - broadcast is reliable, and every message sent is buffered at all
//     processes before any process takes another step.
//
// The kernel here is a deterministic state-machine simulator: an adversary
// Chooser picks which process takes the next atomic step. On top of it,
// twostep.go implements the paper's 2-step-per-round realization of the
// eq. (5) detector (all processes get identical suspect sets) and the
// resulting 2-step consensus (Theorem 5.1 + Theorem 3.1 with k = 1), and
// relay.go implements the 2n-step baseline the model was previously known
// to admit.
package semisync

import (
	"fmt"

	"repro/internal/core"
)

// Msg is a delivered broadcast.
type Msg struct {
	From    core.PID
	Payload core.Value
}

// StepResult is what a process does in one atomic step.
type StepResult struct {
	// Broadcast is the payload to broadcast; honored only when
	// HasBroadcast is true (a process may stay silent — the "omitted to
	// broadcast" behaviour of §5).
	Broadcast    core.Value
	HasBroadcast bool

	// Decide/Decided report the process's decision the first time
	// Decided is true.
	Decide  core.Value
	Decided bool

	// Halt stops the process from taking further steps.
	Halt bool
}

// Stepper is one process of the DDS model, driven by atomic steps.
type Stepper interface {
	// Step performs one atomic receive/broadcast step. received holds
	// every message buffered since the process's previous step, in
	// buffering order.
	Step(received []Msg) StepResult
}

// Factory builds the per-process Stepper.
type Factory func(me core.PID, n int, input core.Value) Stepper

// Chooser picks which ready process takes the next step.
type Chooser func(step int, ready []core.PID) int

// Seeded returns a deterministic pseudo-random chooser.
func Seeded(seed int64) Chooser {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	return func(step int, ready []core.PID) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 2685821657736338717 >> 33) % uint64(len(ready)))
	}
}

// RoundRobin returns the fair cyclic chooser.
func RoundRobin() Chooser {
	next := 0
	return func(step int, ready []core.PID) int {
		next++
		return next % len(ready)
	}
}

// Config tunes an execution.
type Config struct {
	// Chooser plays the asynchrony adversary; nil means Seeded(1).
	Chooser Chooser

	// Crash maps a process to the number of steps it takes before
	// crashing (0 = it never takes a step). Crashes are clean: a crashed
	// process broadcasts nothing, consistent with atomic steps.
	Crash map[core.PID]int

	// MaxSteps bounds the global step count; 0 means 1<<20.
	MaxSteps int
}

// Outcome reports a finished execution.
type Outcome struct {
	// Values holds each decided process's decision.
	Values map[core.PID]core.Value

	// DecidedAtStep maps each decided process to its OWN step count at
	// the moment of decision — the §5 complexity measure ("runs in 2
	// steps" vs "runs in 2n steps").
	DecidedAtStep map[core.PID]int

	// StepsByProc counts each process's steps.
	StepsByProc []int

	// StepsTotal is the global number of steps taken.
	StepsTotal int

	// Crashed is the set of crashed processes.
	Crashed core.Set
}

// MaxDecisionSteps returns the largest per-process step count at decision
// (0 if nothing decided).
func (o *Outcome) MaxDecisionSteps() int {
	m := 0
	for _, s := range o.DecidedAtStep {
		if s > m {
			m = s
		}
	}
	return m
}

// Run executes the DDS system until every live process halts (or decides
// and halts), or the step budget runs out.
func Run(n int, cfg Config, factory Factory, inputs []core.Value) (*Outcome, error) {
	if n <= 0 || len(inputs) != n {
		return nil, fmt.Errorf("semisync: %d inputs for %d processes", len(inputs), n)
	}
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = Seeded(1)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}

	steppers := make([]Stepper, n)
	for i := 0; i < n; i++ {
		steppers[i] = factory(core.PID(i), n, inputs[i])
	}
	buffers := make([][]Msg, n)
	out := &Outcome{
		Values:        make(map[core.PID]core.Value),
		DecidedAtStep: make(map[core.PID]int),
		StepsByProc:   make([]int, n),
		Crashed:       core.NewSet(n),
	}
	halted := core.NewSet(n)

	for step := 0; step < maxSteps; step++ {
		ready := make([]core.PID, 0, n)
		for i := 0; i < n; i++ {
			p := core.PID(i)
			if !halted.Has(p) && !out.Crashed.Has(p) {
				ready = append(ready, p)
			}
		}
		if len(ready) == 0 {
			out.StepsTotal = step
			return out, nil
		}
		idx := chooser(step, ready)
		if idx < 0 || idx >= len(ready) {
			return nil, fmt.Errorf("semisync: chooser returned %d for %d ready", idx, len(ready))
		}
		p := ready[idx]

		if limit, ok := cfg.Crash[p]; ok && out.StepsByProc[p] >= limit {
			out.Crashed.Add(p)
			buffers[p] = nil
			continue
		}

		received := buffers[p]
		buffers[p] = nil
		res := steppers[p].Step(received)
		out.StepsByProc[p]++

		if res.HasBroadcast {
			// Atomic reliable broadcast: buffered at every other process
			// before anyone's next step.
			m := Msg{From: p, Payload: res.Broadcast}
			for q := 0; q < n; q++ {
				if core.PID(q) != p && !out.Crashed.Has(core.PID(q)) {
					buffers[q] = append(buffers[q], m)
				}
			}
		}
		if res.Decided {
			if _, done := out.DecidedAtStep[p]; !done {
				out.Values[p] = res.Decide
				out.DecidedAtStep[p] = out.StepsByProc[p]
			}
		}
		if res.Halt {
			halted.Add(p)
		}
	}
	out.StepsTotal = maxSteps
	undecided := make([]core.PID, 0, n)
	for i := 0; i < n; i++ {
		p := core.PID(i)
		if _, done := out.DecidedAtStep[p]; !done && !out.Crashed.Has(p) {
			undecided = append(undecided, p)
		}
	}
	return out, &StepBudgetError{Budget: maxSteps, Undecided: undecided}
}

// StepBudgetError reports a Run that exhausted its step budget before every
// live process halted, naming the live processes still undecided — the
// diagnosis an opaque sentinel could not carry.
type StepBudgetError struct {
	// Budget is the exhausted MaxSteps value.
	Budget int

	// Undecided lists live processes that had not decided at exhaustion.
	Undecided []core.PID
}

func (e *StepBudgetError) Error() string {
	if len(e.Undecided) == 0 {
		return fmt.Sprintf("semisync: step budget %d exhausted before all live processes halted", e.Budget)
	}
	return fmt.Sprintf("semisync: step budget %d exhausted, processes %v live and undecided", e.Budget, e.Undecided)
}
