package semisync

import (
	"fmt"
	"testing"
)

// BenchmarkTwoStep measures the 2-step consensus across system sizes — the
// cost stays 2 steps per process regardless of n; the wall-clock grows only
// with the O(n) broadcast fan-out per step.
func BenchmarkTwoStep(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := identityInputs(n)
			for i := 0; i < b.N; i++ {
				out, err := RunTwoStep(n, 1, Config{Chooser: Seeded(int64(i))}, inputs)
				if err != nil {
					b.Fatal(err)
				}
				if got := out.Outcome.MaxDecisionSteps(); got != 2 {
					b.Fatalf("steps = %d", got)
				}
			}
			b.ReportMetric(2, "steps/decision")
		})
	}
}

// BenchmarkRelay measures the 2n-step baseline — the per-process step count
// grows linearly, the paper's comparison shape.
func BenchmarkRelay(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := identityInputs(n)
			steps := 0
			for i := 0; i < b.N; i++ {
				out, err := Run(n, Config{Chooser: RoundRobin()}, RelayFactory(), inputs)
				if err != nil {
					b.Fatal(err)
				}
				steps += out.MaxDecisionSteps()
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/decision")
		})
	}
}
