package semisync

import (
	"fmt"

	"repro/internal/core"
)

// roundMsg is a round-tagged broadcast of the two-step protocol.
type roundMsg struct {
	round int
	value core.Value
}

// twoStep implements §5's realization of the eq. (5) RRFD: execution
// proceeds in blocks of two steps per round. At the first step of a round
// the process broadcasts its round message — unless it has already received
// somebody's round-r message, in which case it stays silent for the round
// (the receive part of the step counts: the first receive/send acts as an
// atomic read-modify-write). At the end of the second step, D(i,r) is the
// set of processes from which no round-r message was received (the process
// itself counted as received iff it broadcast).
//
// Theorem 5.1: all D(i,r) agree, so with the one-round rule of Theorem 3.1
// (k = 1) the process decides consensus at the end of round 1 — after
// exactly 2 steps.
type twoStep struct {
	me     core.PID
	n      int
	input  core.Value
	rounds int // halt after this many rounds

	round     int // current round, 1-based
	phase     int // 1 or 2 within the round
	broadcast bool
	seen      map[int]map[core.PID]core.Value // round → sender → value
	dsets     []core.Set
	decided   bool
}

// TwoStepFactory returns the factory for the two-step protocol running the
// given number of rounds (each costing exactly two steps). The consensus
// decision is taken at the end of round 1; later rounds serve to exhibit
// the eq. (5) detector across time.
func TwoStepFactory(rounds int) Factory {
	return func(me core.PID, n int, input core.Value) Stepper {
		return &twoStep{
			me: me, n: n, input: input, rounds: rounds,
			round: 1, phase: 1,
			seen: make(map[int]map[core.PID]core.Value),
		}
	}
}

func (t *twoStep) record(received []Msg) {
	for _, m := range received {
		rm, ok := m.Payload.(roundMsg)
		if !ok {
			continue
		}
		if t.seen[rm.round] == nil {
			t.seen[rm.round] = make(map[core.PID]core.Value)
		}
		t.seen[rm.round][m.From] = rm.value
	}
}

// value is what the process emits at round r (the input; later rounds tag
// it with the round for trace purposes).
func (t *twoStep) value(r int) core.Value { return t.input }

func (t *twoStep) Step(received []Msg) StepResult {
	t.record(received)
	var res StepResult
	if t.phase == 1 {
		// First receive/send of the round: broadcast unless somebody's
		// round message already arrived (including in this step's
		// receive — the atomic read-modify-write).
		t.broadcast = len(t.seen[t.round]) == 0
		if t.broadcast {
			res.Broadcast = roundMsg{round: t.round, value: t.value(t.round)}
			res.HasBroadcast = true
		}
		t.phase = 2
		return res
	}

	// Second step: the round ends. D(i,r) = everybody whose round-r
	// message is missing; own message counts iff we broadcast.
	d := core.FullSet(t.n)
	for from := range t.seen[t.round] {
		d.Remove(from)
	}
	if t.broadcast {
		d.Remove(t.me)
	}
	t.dsets = append(t.dsets, d)

	if t.round == 1 && !t.decided {
		// Theorem 3.1 with k = 1: adopt the value of the smallest
		// identifier outside D(i,1).
		if v, ok := t.choose(d); ok {
			res.Decide, res.Decided = v, true
			t.decided = true
		}
	}

	t.round++
	t.phase = 1
	if t.round > t.rounds {
		res.Halt = true
	}
	return res
}

// choose returns the round-1 value of the smallest process outside d.
func (t *twoStep) choose(d core.Set) (core.Value, bool) {
	for i := 0; i < t.n; i++ {
		p := core.PID(i)
		if d.Has(p) {
			continue
		}
		if p == t.me {
			return t.value(1), true
		}
		if v, ok := t.seen[1][p]; ok {
			return v, true
		}
		return nil, false // unreachable: p ∉ D means its message arrived
	}
	return nil, false
}

// TwoStepOutcome reports a two-step protocol execution.
type TwoStepOutcome struct {
	// Outcome is the kernel-level result (decisions, step counts).
	Outcome *Outcome

	// Trace is the induced RRFD trace, one record per protocol round;
	// the tests validate it against eq. (5).
	Trace *core.Trace
}

// RunTwoStep executes the two-step protocol over rounds rounds and
// assembles the eq. (5) trace.
func RunTwoStep(n, rounds int, cfg Config, inputs []core.Value) (*TwoStepOutcome, error) {
	steppers := make([]*twoStep, n)
	factory := func(me core.PID, nn int, input core.Value) Stepper {
		s := TwoStepFactory(rounds)(me, nn, input).(*twoStep)
		steppers[me] = s
		return s
	}
	out, err := Run(n, cfg, factory, inputs)
	if err != nil {
		return nil, err
	}
	trace := core.NewTrace(n)
	for r := 1; r <= rounds; r++ {
		rec := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if steppers[i] != nil && len(steppers[i].dsets) >= r {
				rec.Active.Add(pid)
				rec.Suspects[i] = steppers[i].dsets[r-1]
				rec.Deliver[i] = steppers[i].dsets[r-1].Complement()
			} else {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				rec.Crashed.Add(pid)
			}
		}
		if rec.Active.Empty() {
			break
		}
		trace.Append(rec)
	}
	return &TwoStepOutcome{Outcome: out, Trace: trace}, nil
}

var _ Stepper = (*twoStep)(nil)

// String aids debugging.
func (t *twoStep) String() string {
	return fmt.Sprintf("twoStep{me:%d round:%d phase:%d}", t.me, t.round, t.phase)
}
