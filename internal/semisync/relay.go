package semisync

import "repro/internal/core"

// relayMsg is a slot-tagged broadcast of the relay baseline.
type relayMsg struct {
	slot  int
	value core.Value
}

// relay is the 2n-step baseline (see DESIGN.md: a faithful-in-spirit
// substitution for the original Dolev–Dwork–Stockmeyer 2n-step algorithm,
// which the paper cites as the previously best known and does not
// reproduce). Processes broadcast in identifier order: p_k forwards the
// adopted chain value in slot k once it holds slots 0..k−1, pacing slot k
// to its own steps 2k+1 and later — the DDS phase structure of two own
// steps per slot. A process decides the chain value once it holds all n
// slots and has taken 2n steps.
//
// It solves consensus in failure-free executions under any schedule and
// needs Θ(n) steps per process by construction — the yardstick against
// which Theorem 5.1's 2-step algorithm is compared.
type relay struct {
	me    core.PID
	n     int
	input core.Value

	steps   int
	adopted core.Value
	next    int // lowest slot not yet received
	sent    bool
	decided bool
	slots   map[int]core.Value
}

// RelayFactory returns the factory for the 2n-step baseline.
func RelayFactory() Factory {
	return func(me core.PID, n int, input core.Value) Stepper {
		return &relay{me: me, n: n, input: input, adopted: input, slots: make(map[int]core.Value)}
	}
}

func (r *relay) Step(received []Msg) StepResult {
	r.steps++
	for _, m := range received {
		rm, ok := m.Payload.(relayMsg)
		if !ok {
			continue
		}
		r.slots[rm.slot] = rm.value
	}
	for {
		if v, ok := r.slots[r.next]; ok {
			r.adopted = v
			r.next++
			continue
		}
		break
	}

	var res StepResult
	// Broadcast slot me once every earlier slot is in hand and the local
	// phase clock has reached the slot (own steps ≥ 2·me+1).
	if !r.sent && r.next == int(r.me) && r.steps >= 2*int(r.me)+1 {
		r.sent = true
		r.slots[int(r.me)] = r.adopted
		r.next++
		res.Broadcast = relayMsg{slot: int(r.me), value: r.adopted}
		res.HasBroadcast = true
	}
	if !r.decided && r.next >= r.n && r.steps >= 2*r.n {
		r.decided = true
		res.Decide, res.Decided = r.adopted, true
		res.Halt = true
	}
	return res
}

var _ Stepper = (*relay)(nil)
