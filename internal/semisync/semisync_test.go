package semisync

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/swmr"
)

func identityInputs(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

func TestTwoStepSatisfiesEq5(t *testing.T) {
	// Theorem 5.1: the two-step round implementation gives every process
	// the same suspect set in every round.
	n, rounds := 6, 4
	for seed := int64(0); seed < 40; seed++ {
		out, err := RunTwoStep(n, rounds, Config{Chooser: Seeded(seed)}, identityInputs(n))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Trace.Len() != rounds {
			t.Fatalf("seed %d: trace has %d rounds", seed, out.Trace.Len())
		}
		if err := predicate.IdenticalSuspects().Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out.Trace)
		}
		if err := predicate.KSetDetector(1).Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTwoStepConsensusInTwoSteps(t *testing.T) {
	// The headline: consensus decided after exactly 2 steps per process,
	// for every schedule tried.
	n := 8
	inputs := identityInputs(n)
	for seed := int64(0); seed < 60; seed++ {
		out, err := RunTwoStep(n, 1, Config{Chooser: Seeded(seed)}, inputs)
		if err != nil {
			t.Fatal(err)
		}
		res := &core.Result{
			Outputs:   out.Outcome.Values,
			DecidedAt: map[core.PID]int{},
			Crashed:   out.Outcome.Crashed,
		}
		for p := range out.Outcome.Values {
			res.DecidedAt[p] = 1
		}
		if err := agreement.Validate(res, inputs, 1, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for p, steps := range out.Outcome.DecidedAtStep {
			if steps != 2 {
				t.Fatalf("seed %d: process %d decided after %d steps, want 2", seed, p, steps)
			}
		}
	}
}

func TestTwoStepWithCrashes(t *testing.T) {
	// Crashes are clean (atomic steps): survivors still satisfy eq. (5)
	// and agree.
	n := 6
	inputs := identityInputs(n)
	for seed := int64(0); seed < 30; seed++ {
		out, err := RunTwoStep(n, 2, Config{
			Chooser: Seeded(seed),
			Crash:   map[core.PID]int{0: 1, 3: 0},
		}, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := predicate.IdenticalSuspects().Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out.Trace)
		}
		distinct := make(map[core.Value]bool)
		for _, v := range out.Outcome.Values {
			distinct[v] = true
		}
		if len(distinct) > 1 {
			t.Fatalf("seed %d: survivors disagree: %v", seed, out.Outcome.Values)
		}
	}
}

func TestTwoStepExactlyOneBroadcasterPerRound(t *testing.T) {
	// In the strict delivery-before-next-step model the first process to
	// open a round is the only broadcaster: D(·,r) = S minus one process.
	n, rounds := 5, 3
	out, err := RunTwoStep(n, rounds, Config{Chooser: Seeded(9)}, identityInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range out.Trace.Rounds {
		first := true
		var d core.Set
		rec.Active.ForEach(func(p core.PID) {
			if first {
				d, first = rec.Suspects[p], false
			}
		})
		if d.Count() != n-1 {
			t.Fatalf("round %d: |D| = %d, want n-1 = %d", rec.R, d.Count(), n-1)
		}
	}
}

func TestRelayBaselineConsensus(t *testing.T) {
	// The 2n-step baseline decides the chain value (p0's input) after
	// exactly 2n own steps.
	for _, n := range []int{2, 4, 8, 16} {
		inputs := identityInputs(n)
		for seed := int64(0); seed < 10; seed++ {
			out, err := Run(n, Config{Chooser: Seeded(seed)}, RelayFactory(), inputs)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			for p := core.PID(0); int(p) < n; p++ {
				v, ok := out.Values[p]
				if !ok {
					t.Fatalf("n=%d seed=%d: process %d undecided", n, seed, p)
				}
				if v != 0 {
					t.Fatalf("n=%d seed=%d: process %d decided %v, want 0", n, seed, p, v)
				}
				if got := out.DecidedAtStep[p]; got < 2*n {
					t.Fatalf("n=%d: process %d decided after %d steps (< 2n = %d)", n, p, got, 2*n)
				}
			}
		}
	}
}

func TestRelayVersusTwoStepShape(t *testing.T) {
	// The paper's quantitative claim: 2 steps vs 2n steps — the speedup
	// grows linearly with n.
	for _, n := range []int{4, 8, 16, 32} {
		inputs := identityInputs(n)
		fast, err := RunTwoStep(n, 1, Config{Chooser: RoundRobin()}, inputs)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Run(n, Config{Chooser: RoundRobin()}, RelayFactory(), inputs)
		if err != nil {
			t.Fatal(err)
		}
		fs, ss := fast.Outcome.MaxDecisionSteps(), slow.MaxDecisionSteps()
		if fs != 2 {
			t.Fatalf("n=%d: two-step decided in %d steps", n, fs)
		}
		if ss < 2*n {
			t.Fatalf("n=%d: relay decided in %d steps, want ≥ 2n = %d", n, ss, 2*n)
		}
		if ratio := float64(ss) / float64(fs); ratio < float64(n)*0.9 {
			t.Fatalf("n=%d: speedup %.1f below the linear-in-n shape", n, ratio)
		}
	}
}

func TestTwoStepExhaustiveProof(t *testing.T) {
	// PROOF of Theorem 5.1 for small systems: enumerate EVERY schedule of
	// atomic steps (the swmr DFS explorer drives any chooser of this
	// shape) and require eq. (5), unanimity, and 2-step decisions in each.
	// n=3, one round = 6 steps → at most 3^6 schedules; n=4 → 4^8.
	for _, n := range []int{2, 3, 4} {
		inputs := identityInputs(n)
		count, err := swmr.Explore(200000, func(ch swmr.Chooser) error {
			out, err := RunTwoStep(n, 1, Config{Chooser: Chooser(ch)}, inputs)
			if err != nil {
				return err
			}
			if err := predicate.IdenticalSuspects().Check(out.Trace); err != nil {
				return err
			}
			distinct := make(map[core.Value]bool)
			for _, v := range out.Outcome.Values {
				distinct[v] = true
			}
			if len(distinct) != 1 {
				return fmt.Errorf("disagreement: %v", out.Outcome.Values)
			}
			for p, s := range out.Outcome.DecidedAtStep {
				if s != 2 {
					return fmt.Errorf("process %d decided after %d steps", p, s)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d after %d schedules: %v", n, count, err)
		}
		t.Logf("n=%d: Theorem 5.1 verified over all %d schedules", n, count)
	}
}

func TestQuickTwoStepProperties(t *testing.T) {
	// Property-based: for arbitrary small n and schedules, the two-step
	// protocol satisfies eq. (5), unanimity, and the 2-step decision
	// count.
	prop := func(rawN uint8, seed int64) bool {
		n := int(rawN%7) + 2
		out, err := RunTwoStep(n, 2, Config{Chooser: Seeded(seed)}, identityInputs(n))
		if err != nil {
			return false
		}
		if predicate.IdenticalSuspects().Check(out.Trace) != nil {
			return false
		}
		distinct := make(map[core.Value]bool)
		for _, v := range out.Outcome.Values {
			distinct[v] = true
		}
		if len(distinct) != 1 {
			return false
		}
		for _, s := range out.Outcome.DecidedAtStep {
			if s != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, Config{}, RelayFactory(), nil); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Run(3, Config{}, RelayFactory(), identityInputs(2)); err == nil {
		t.Fatal("expected error for mismatched inputs")
	}
}

func TestStepBudget(t *testing.T) {
	// A stepper that never halts must trip the budget, and the error must
	// name the budget and every still-undecided live process.
	factory := func(me core.PID, n int, input core.Value) Stepper { return spinStepper{} }
	_, err := Run(2, Config{MaxSteps: 50}, factory, identityInputs(2))
	if err == nil {
		t.Fatal("expected step budget error")
	}
	var sb *StepBudgetError
	if !errors.As(err, &sb) {
		t.Fatalf("err = %T %v, want *StepBudgetError", err, err)
	}
	if sb.Budget != 50 {
		t.Fatalf("budget = %d, want 50", sb.Budget)
	}
	if len(sb.Undecided) != 2 || sb.Undecided[0] != 0 || sb.Undecided[1] != 1 {
		t.Fatalf("undecided = %v, want [0 1]", sb.Undecided)
	}
}

type spinStepper struct{}

func (spinStepper) Step(received []Msg) StepResult { return StepResult{} }
