package task

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
)

func identityInputs(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

func TestKSetCheck(t *testing.T) {
	task := KSetAgreement(2)
	inputs := identityInputs(4)
	good := Assignment{
		Inputs:  inputs,
		Outputs: map[core.PID]core.Value{0: 1, 1: 1, 2: 3, 3: 3},
		Crashed: core.NewSet(4),
	}
	if err := task.Check(good); err != nil {
		t.Fatal(err)
	}
	tooMany := Assignment{
		Inputs:  inputs,
		Outputs: map[core.PID]core.Value{0: 0, 1: 1, 2: 2, 3: 2},
		Crashed: core.NewSet(4),
	}
	if err := task.Check(tooMany); err == nil || !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("err = %v", err)
	}
	invalid := Assignment{
		Inputs:  inputs,
		Outputs: map[core.PID]core.Value{0: 99, 1: 99, 2: 99, 3: 99},
		Crashed: core.NewSet(4),
	}
	if err := task.Check(invalid); err == nil || !strings.Contains(err.Error(), "not an input") {
		t.Fatalf("err = %v", err)
	}
	missing := Assignment{
		Inputs:  inputs,
		Outputs: map[core.PID]core.Value{0: 0},
		Crashed: core.SetOf(4, 1, 2),
	}
	if err := task.Check(missing); err == nil || !strings.Contains(err.Error(), "did not decide") {
		t.Fatalf("err = %v", err)
	}
	if Consensus().Name() != "consensus" || KSetAgreement(3).Name() != "3-set agreement" {
		t.Fatal("names broken")
	}
}

func TestAdoptCommitCheck(t *testing.T) {
	task := AdoptCommit()
	inputs := []core.Value{7, 7}
	good := Assignment{
		Inputs: inputs,
		Outputs: map[core.PID]core.Value{
			0: GradedValue{Commit: true, Value: 7},
			1: GradedValue{Commit: true, Value: 7},
		},
		Crashed: core.NewSet(2),
	}
	if err := task.Check(good); err != nil {
		t.Fatal(err)
	}
	// Unanimous input but an adopt output: convergence violated.
	lazy := Assignment{
		Inputs: inputs,
		Outputs: map[core.PID]core.Value{
			0: GradedValue{Commit: true, Value: 7},
			1: GradedValue{Commit: false, Value: 7},
		},
		Crashed: core.NewSet(2),
	}
	if err := task.Check(lazy); err == nil {
		t.Fatal("convergence violation undetected")
	}
	// Commit with a dissenting value: agreement violated.
	mixed := Assignment{
		Inputs: []core.Value{1, 2},
		Outputs: map[core.PID]core.Value{
			0: GradedValue{Commit: true, Value: 1},
			1: GradedValue{Commit: false, Value: 2},
		},
		Crashed: core.NewSet(2),
	}
	if err := task.Check(mixed); err == nil {
		t.Fatal("agreement violation undetected")
	}
}

func TestSolvesTheoremThreeOne(t *testing.T) {
	// "The k-set-detector system solves k-set agreement" — the paper's
	// solvability statement, machine-checked end to end.
	n, k := 9, 3
	rep, err := Solves(KSetAgreement(k), n, identityInputs(n), agreement.OneRoundKSet(),
		predicate.KSetDetector(k),
		func(seed int64) core.Oracle { return adversary.KSetUncertainty(n, k, seed) },
		40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRounds != 1 {
		t.Fatalf("MaxRounds = %d, want 1", rep.MaxRounds)
	}
}

func TestSolvesConsensusUnderS(t *testing.T) {
	n := 6
	rep, err := Solves(Consensus(), n, identityInputs(n), agreement.RotatingCoordinator(),
		predicate.NeverSuspectedExists(),
		func(seed int64) core.Oracle {
			return adversary.SpareNeverSuspected(n, core.PID(seed%int64(n)), seed)
		},
		30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRounds > n {
		t.Fatalf("MaxRounds = %d, want ≤ n", rep.MaxRounds)
	}
}

func TestSolvesRejectsWrongAlgorithm(t *testing.T) {
	// FloodMin truncated below the bound does NOT solve k-set agreement
	// in the crash system — Solves must say so.
	n, f, k := 10, 4, 2
	_, err := Solves(KSetAgreement(k), n, identityInputs(n), agreement.FloodMin(f/k),
		predicate.SyncCrash(f),
		func(seed int64) core.Oracle { return adversary.ChainCrash(n, f, k) },
		1)
	if err == nil {
		t.Fatal("expected a task violation")
	}
	if !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("err = %v", err)
	}
}

func TestSolvesRejectsBrokenGenerator(t *testing.T) {
	// A generator outside the declared system must be reported as such.
	n := 5
	_, err := Solves(Consensus(), n, identityInputs(n), agreement.RotatingCoordinator(),
		predicate.IdenticalSuspects(), // the adversary below violates eq5
		func(seed int64) core.Oracle {
			return adversary.SpareNeverSuspected(n, 0, seed)
		},
		20)
	if err == nil || !strings.Contains(err.Error(), "outside the system") {
		t.Fatalf("err = %v", err)
	}
}
