// Package task formalizes the paper's notion of solvability: "an RRFD
// system satisfying predicate P solves a task T if there exists an
// emit-receive format algorithm such that, for any D(i,r) family satisfying
// P, if processes start with inputs from T, then eventually processes
// commit to outputs that satisfy T's input/output requirements."
//
// A Task is an input/output relation with a decidable checker; Solves
// quantifies over adversaries (a seeded family standing in for "any D(i,r)
// family satisfying P") and validates every execution's outputs, predicate
// compliance, and termination.
package task

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predicate"
)

// Assignment is one execution's input/output pair: Outputs[p] is present
// only for processes that decided; processes in Crashed are exempt from
// termination.
type Assignment struct {
	Inputs  []core.Value
	Outputs map[core.PID]core.Value
	Crashed core.Set
}

// Task is a distributed task: a relation between input and output vectors.
type Task interface {
	// Name identifies the task.
	Name() string

	// Check returns nil iff the assignment satisfies the task's
	// input/output relation (including termination of non-crashed
	// processes).
	Check(a Assignment) error
}

// kSet is k-set agreement (§3): outputs are inputs, and at most k distinct
// values are chosen. k = 1 is consensus.
type kSet struct {
	k int
}

// KSetAgreement returns the k-set agreement task; Consensus returns its
// k = 1 instance.
func KSetAgreement(k int) Task { return kSet{k: k} }

// Consensus returns the consensus task.
func Consensus() Task { return kSet{k: 1} }

func (t kSet) Name() string {
	if t.k == 1 {
		return "consensus"
	}
	return fmt.Sprintf("%d-set agreement", t.k)
}

func (t kSet) Check(a Assignment) error {
	valid := make(map[core.Value]bool, len(a.Inputs))
	for _, v := range a.Inputs {
		valid[v] = true
	}
	distinct := make(map[core.Value]bool)
	for p, v := range a.Outputs {
		if !valid[v] {
			return fmt.Errorf("task %s: process %d decided %v, not an input", t.Name(), p, v)
		}
		distinct[v] = true
	}
	if len(distinct) > t.k {
		return fmt.Errorf("task %s: %d distinct outputs", t.Name(), len(distinct))
	}
	for i := range a.Inputs {
		p := core.PID(i)
		if a.Crashed.Has(p) {
			continue
		}
		if _, ok := a.Outputs[p]; !ok {
			return fmt.Errorf("task %s: live process %d did not decide", t.Name(), p)
		}
	}
	return nil
}

// graded is the adopt-commit task of §4.2, viewed as a task over outputs of
// the form GradedValue.
type graded struct{}

// GradedValue is an adopt-commit task output.
type GradedValue struct {
	Commit bool
	Value  core.Value
}

// AdoptCommit returns the adopt-commit task: validity (output values are
// inputs), convergence (unanimous input forces unanimous commit), and
// agreement (a commit forces every output value).
func AdoptCommit() Task { return graded{} }

func (graded) Name() string { return "adopt-commit" }

func (graded) Check(a Assignment) error {
	valid := make(map[core.Value]bool, len(a.Inputs))
	unanimous := true
	for _, v := range a.Inputs {
		valid[v] = true
		if v != a.Inputs[0] {
			unanimous = false
		}
	}
	for p, out := range a.Outputs {
		g, ok := out.(GradedValue)
		if !ok {
			return fmt.Errorf("adopt-commit: process %d output %T, want GradedValue", p, out)
		}
		if !valid[g.Value] {
			return fmt.Errorf("adopt-commit: process %d carries non-input %v", p, g.Value)
		}
		if unanimous && len(a.Inputs) > 0 && (!g.Commit || g.Value != a.Inputs[0]) {
			return fmt.Errorf("adopt-commit: unanimous input %v but process %d got %+v", a.Inputs[0], p, g)
		}
	}
	for p, out := range a.Outputs {
		g := out.(GradedValue)
		if !g.Commit {
			continue
		}
		for q, out2 := range a.Outputs {
			if g2 := out2.(GradedValue); g2.Value != g.Value {
				return fmt.Errorf("adopt-commit: process %d committed %v, process %d holds %v",
					p, g.Value, q, g2.Value)
			}
		}
	}
	for i := range a.Inputs {
		p := core.PID(i)
		if !a.Crashed.Has(p) {
			if _, ok := a.Outputs[p]; !ok {
				return fmt.Errorf("adopt-commit: live process %d did not decide", p)
			}
		}
	}
	return nil
}

// OracleGen produces, per seed, an adversary intended to satisfy the
// system predicate — the "for any D(i,r) family" quantifier, sampled.
type OracleGen func(seed int64) core.Oracle

// Report summarizes a Solves run.
type Report struct {
	Task      string
	Predicate string
	Trials    int

	// MaxRounds is the latest decision round seen across trials.
	MaxRounds int
}

// Solves checks, over trials seeded adversaries, that the algorithm solves
// the task in the system defined by the predicate: every adversary's trace
// must satisfy the predicate (otherwise the generator is at fault and the
// error says so), and every execution's outputs must satisfy the task.
func Solves(t Task, n int, inputs []core.Value, factory core.Factory,
	p predicate.P, gen OracleGen, trials int, opts ...core.Option) (*Report, error) {
	rep := &Report{Task: t.Name(), Predicate: p.Name, Trials: trials}
	for seed := int64(0); seed < int64(trials); seed++ {
		res, err := core.Run(n, inputs, factory, gen(seed), opts...)
		if err != nil {
			return nil, fmt.Errorf("task %s seed %d: %w", t.Name(), seed, err)
		}
		if err := p.Check(res.Trace); err != nil {
			return nil, fmt.Errorf("task %s seed %d: adversary outside the system: %w", t.Name(), seed, err)
		}
		if err := t.Check(Assignment{Inputs: inputs, Outputs: res.Outputs, Crashed: res.Crashed}); err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		if r := res.MaxDecisionRound(); r > rep.MaxRounds {
			rep.MaxRounds = r
		}
	}
	return rep, nil
}
