package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// segPath returns the path and size of the single open segment.
func segPath(t *testing.T, dir string) (string, int64) {
	t.Helper()
	segs, err := segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	p := filepath.Join(dir, segs[len(segs)-1].name)
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	return p, fi.Size()
}

// powerLoss simulates a kernel panic / power cut: every byte not yet
// fsynced vanishes. durable is the segment size captured at the last
// moment the log was known synced.
func powerLoss(t *testing.T, seg string, durable int64) {
	t.Helper()
	if err := os.Truncate(seg, durable); err != nil {
		t.Fatalf("truncate to durable prefix: %v", err)
	}
}

// TestSyncNeverCanLoseTheTail pins the SyncNever contract: appends after
// the last explicit Sync are not power-loss durable — a simulated power
// cut rolls the log back to the durability horizon, and replay treats
// the missing tail as legal debris (no corruption, log still usable).
func TestSyncNeverCanLoseTheTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.SyncedSeq() != 0 {
		t.Fatalf("horizon %d before any Sync, want 0", l.SyncedSeq())
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if l.SyncedSeq() != 3 {
		t.Fatalf("horizon %d after Sync, want 3", l.SyncedSeq())
	}
	seg, durable := segPath(t, dir)

	// Two more appends the caller might (wrongly) act on.
	for i := 3; i < 5; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.SyncedSeq() != 3 || l.NextSeq() != 6 {
		t.Fatalf("horizon %d next %d: the unsynced tail must sit above the horizon", l.SyncedSeq(), l.NextSeq())
	}
	// No Close (Close would sync): the power cut takes the tail.
	powerLoss(t, seg, durable)

	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay after power loss: %v", err)
	}
	if len(recs) != 3 || rep.LastSeq != 3 {
		t.Fatalf("replayed %d records (last %d), want exactly the 3 synced ones", len(recs), rep.LastSeq)
	}
	// The survivor is a clean log: the next incarnation appends seq 4.
	l2, recs2, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open after power loss: %v", err)
	}
	defer l2.Close()
	if len(recs2) != 3 || l2.NextSeq() != 4 || l2.SyncedSeq() != 3 {
		t.Fatalf("reopened: %d records, next %d, horizon %d", len(recs2), l2.NextSeq(), l2.SyncedSeq())
	}
}

// TestSyncAlwaysCannotLoseAnAppend pins the SyncAlways contract: every
// returned Append is at or below the durability horizon, so the only
// thing a power cut can take is an in-flight frame that was never
// acknowledged — the torn tail replay drops.
func TestSyncAlwaysCannotLoseAnAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 3; i++ {
		seq, err := l.Append(1, []byte{byte(i)})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if l.SyncedSeq() != seq {
			t.Fatalf("append %d returned but horizon is %d: the ack would outrun durability", seq, l.SyncedSeq())
		}
	}
	seg, durable := segPath(t, dir)

	// A power cut mid-append: the frame being written was never
	// acknowledged, so losing (part of) it loses nothing promised.
	// Simulate the torn half-frame the crash leaves behind.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{4, 0, 0, 0, 0, 0, 0, 0, 1, 9}); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	f.Close()

	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want all 3 acknowledged ones", len(recs))
	}
	if rep.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	// Even cutting at exactly the durable prefix (the strictest power
	// loss SyncAlways allows) keeps every acknowledged record.
	powerLoss(t, seg, durable)
	recs, _, err = Replay(dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("after power loss at the horizon: %d records, %v", len(recs), err)
	}
}
