package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs/hist"
)

// TestAppendBatchNumbersAndReplay pins the batch append contract: entries
// get contiguous sequence numbers from the returned first, the records
// replay exactly as individually appended ones would, and a batch
// interleaves cleanly with single Appends.
func TestAppendBatchNumbersAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	first, err := l.AppendBatch([]BatchEntry{
		{Kind: 2, Payload: []byte("a")},
		{Kind: 2, Payload: []byte("bb")},
		{Kind: 3, Payload: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first seq = %d, want 2", first)
	}
	if l.NextSeq() != 5 {
		t.Fatalf("NextSeq after batch = %d, want 5", l.NextSeq())
	}
	if _, err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if l.NextSeq() != 5 {
		t.Fatalf("empty batch advanced NextSeq to %d", l.NextSeq())
	}
	if _, err := l.Append(4, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 5 || rep.TruncatedBytes != 0 {
		t.Fatalf("replay: %+v", rep)
	}
	want := []struct {
		kind    uint8
		payload string
	}{{1, "solo"}, {2, "a"}, {2, "bb"}, {3, ""}, {4, "tail"}}
	for i, w := range want {
		r := recs[i]
		if r.Seq != uint64(i+1) || r.Kind != w.kind || string(r.Payload) != w.payload {
			t.Fatalf("record %d = %+v, want seq %d kind %d %q", i, r, i+1, w.kind, w.payload)
		}
	}
}

// TestAppendBatchSyncAlwaysHorizon pins the durability half: under
// SyncAlways a returned AppendBatch has moved SyncedSeq to the batch's
// last record — one fsync covering the lot — and the batch survives a
// simulated power cut.
func TestAppendBatchSyncAlwaysHorizon(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	batch := []BatchEntry{{Kind: 1, Payload: []byte("x")}, {Kind: 1, Payload: []byte("y")}}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if l.SyncedSeq() != 2 {
		t.Fatalf("SyncedSeq = %d, want 2", l.SyncedSeq())
	}
	seg, durable := segPath(t, dir)
	l.f.Close() // abandon without the Close() sync
	powerLoss(t, seg, durable)
	recs, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after power cut, want 2", len(recs))
	}
}

// TestAppendBatchSyncNeverHorizon pins the other half: under SyncNever a
// batch append must NOT advance the durability horizon — SyncedSeq never
// runs ahead of durable bytes, so the whole batch is legal power-loss
// debris until an explicit Sync.
func TestAppendBatchSyncNeverHorizon(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	_, durableAtCreate := segPath(t, dir)
	if _, err := l.AppendBatch([]BatchEntry{{Kind: 1, Payload: []byte("v")}, {Kind: 2, Payload: []byte("w")}}); err != nil {
		t.Fatal(err)
	}
	if l.SyncedSeq() != 0 {
		t.Fatalf("SyncNever batch advanced SyncedSeq to %d", l.SyncedSeq())
	}
	seg, _ := segPath(t, dir)
	l.f.Close()
	powerLoss(t, seg, durableAtCreate)
	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unsynced batch survived the power cut: %d records", len(recs))
	}
	if rep.LastSeq != l.SyncedSeq() {
		t.Fatalf("horizon lied: SyncedSeq %d but replay recovered up to %d", l.SyncedSeq(), rep.LastSeq)
	}
}

// TestAppendBatchRotates checks an oversized batch still triggers segment
// rotation afterwards, keeping segments bounded.
func TestAppendBatchRotates(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var batch []BatchEntry
	for i := 0; i < 8; i++ {
		batch = append(batch, BatchEntry{Kind: 1, Payload: make([]byte, 64)})
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("oversized batch did not rotate: %d segments", len(segs))
	}
	if recs, _, err := Replay(dir); err != nil || len(recs) != 9 {
		t.Fatalf("replay across rotation: %d records, %v", len(recs), err)
	}
}

// TestGroupConcurrentAppends is the satellite's core durability test:
// concurrent Group.Append callers each get a sequence number that is
// already ≤ SyncedSeq the moment Append returns (SyncAlways), every
// record replays, and the committer actually coalesced (fewer batches
// than appends) under contention.
func TestGroupConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	h := hist.New()
	g := NewGroup(l, GroupOptions{MaxBatch: 32, BatchHist: h})
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				seq, err := g.Append(1, payload)
				if err != nil {
					errs <- err
					return
				}
				// The contract acks ride on: by the time Append returns,
				// the record is inside the durability horizon.
				if horizon := g.SyncedSeq(); seq > horizon {
					errs <- fmt.Errorf("seq %d returned ahead of SyncedSeq %d", seq, horizon)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("Appends = %d, want %d", st.Appends, goroutines*perG)
	}
	if st.Batches <= 0 || st.Batches > st.Appends {
		t.Fatalf("Batches = %d out of range (Appends %d)", st.Batches, st.Appends)
	}
	if h.Snapshot().Count != st.Batches {
		t.Fatalf("hist recorded %d batches, stats say %d", h.Snapshot().Count, st.Batches)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(recs), goroutines*perG)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		seen[string(r.Payload)] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("replay lost records: %d distinct payloads", len(seen))
	}
}

// TestGroupCloseDrainsAndRejects: Close commits everything already
// accepted, later Appends fail with ErrGroupClosed, and a second Close
// is a no-op.
func TestGroupCloseDrainsAndRejects(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroup(l, GroupOptions{})
	for i := 0; i < 10; i++ {
		if _, err := g.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append(1, []byte("late")); err != ErrGroupClosed {
		t.Fatalf("append after close: %v, want ErrGroupClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
}

// BenchmarkAppendBatch prices the fsync amortization the serve journal
// buys: batch=1 is today's per-record path, larger batches share one
// write+fsync. Reported as records/sec.
func BenchmarkAppendBatch(b *testing.B) {
	payload := make([]byte, 64)
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Create(dir, Options{Sync: SyncAlways, SegmentBytes: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := make([]BatchEntry, size)
			for i := range batch {
				batch[i] = BatchEntry{Kind: 1, Payload: payload}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "records/sec")
		})
	}
}
