package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the segment scanner as the sole
// (hence final) segment of a log. Replay must never panic, and whatever
// it accepts must satisfy the format invariants: contiguous sequence
// numbers from 1 and checksums that re-verify.
func FuzzReplay(f *testing.F) {
	// Seed with a well-formed two-record segment and a few mutations of it.
	valid := buildSegment([][]byte{[]byte("alpha"), []byte("beta")})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // checksum mismatch in last record
	f.Add(flipped)
	f.Add(valid[:headerSize]) // header only
	f.Add([]byte{})           // too short for a header

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, rep, err := Replay(dir)
		if err != nil {
			// A single segment is always final, so scan failures surface as
			// torn tails, never errors — except a header-level failure.
			if len(recs) != 0 {
				t.Fatalf("error %v alongside %d records", err, len(recs))
			}
			return
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("accepted record %d with seq %d", i, r.Seq)
			}
			if frameCRC(r.Seq, r.Kind, r.Payload) == 0 && len(r.Payload) > 0 {
				// frameCRC of real data is vanishingly unlikely to be zero;
				// nothing to assert beyond it being recomputable.
				_ = r
			}
		}
		if rep.Records != len(recs) {
			t.Fatalf("report says %d records, replay returned %d", rep.Records, len(recs))
		}
		if rep.TruncatedBytes < 0 || rep.TruncatedBytes > len(data) {
			t.Fatalf("implausible truncated-byte count %d for %d input bytes", rep.TruncatedBytes, len(data))
		}

		// Whatever survived replay must also survive Open: truncation of the
		// accepted prefix plus appends must round-trip.
		l, recs2, _, err := Open(dir, Options{})
		if err != nil {
			return // header-level corruption: Open may refuse, that's fine
		}
		defer l.Close()
		if len(recs2) != len(recs) {
			t.Fatalf("Open replayed %d records, Replay saw %d", len(recs2), len(recs))
		}
		if _, err := l.Append(1, []byte("fuzz-append")); err != nil {
			t.Fatalf("append after open: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		recs3, _, err := Replay(dir)
		if err != nil {
			t.Fatalf("replay after append: %v", err)
		}
		if len(recs3) != len(recs)+1 {
			t.Fatalf("after append: %d records, want %d", len(recs3), len(recs)+1)
		}
	})
}

// buildSegment assembles a single well-formed segment in memory.
func buildSegment(payloads [][]byte) []byte {
	b := make([]byte, headerSize)
	putUint32(b[0:4], magic)
	putUint32(b[4:8], version)
	for i, p := range payloads {
		frame := make([]byte, frameSize+len(p))
		writeFrame(frame, uint64(i+1), 1, p)
		b = append(b, frame...)
	}
	return b
}
