// Package wal is an append-only, checksummed, segmented write-ahead log —
// the durable substrate of the crash-recovery layer. The engine checkpoints
// per-round state through it (internal/core), and recovering processes
// journal round views through it (internal/recovery).
//
// The format is deliberately simple and self-describing. A log is a
// directory of segment files named seg-00000001.wal, seg-00000002.wal, ….
// Each segment opens with an 8-byte header (magic + format version) and
// then holds a sequence of frames:
//
//	seq     uint64  // record sequence number, contiguous across segments
//	kind    uint8   // caller-defined record type
//	length  uint32  // payload length
//	crc     uint32  // CRC-32C over seq ‖ kind ‖ length ‖ payload
//	payload []byte
//
// All integers are little-endian. Replay reads segments in order and stops
// at the first frame that is incomplete or fails its checksum:
//
//   - in the final segment this is a torn write — the expected debris of a
//     crash mid-append — so the tail is dropped and reported (and Open
//     physically truncates it so appending can continue);
//   - anywhere else it is corruption, reported as a *CorruptError, because
//     a frame in a non-final segment was once followed by a successful
//     rotation and cannot have been torn.
//
// Sequence numbers must be contiguous from 1; a gap is also corruption.
// Durability is fsync-optional: SyncNever trusts the OS page cache (a
// process crash loses nothing; a power loss may), SyncAlways fsyncs every
// append, and Sync may be called explicitly at any policy.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	// magic identifies a segment file; version is the format version.
	magic   uint32 = 0x52464431 // "RFD1"
	version uint32 = 1

	headerSize = 8  // magic + version
	frameSize  = 17 // seq(8) + kind(1) + length(4) + crc(4)

	// MaxPayload bounds one record; larger appends are rejected rather
	// than silently splitting.
	MaxPayload = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects the fsync policy for appends — the durability half of
// a journal-before-act contract. The question it answers: when Append
// returns (and the caller goes on to acknowledge, reply, or act), which
// failure classes is the record already safe against?
//
//	             process crash / kill -9    kernel panic / power loss
//	SyncNever    safe (page cache)          tail since last Sync LOST
//	SyncAlways   safe                       safe
//
// SyncNever costs one buffered write per append (≈µs); SyncAlways adds a
// device flush (≈ms on disks, ~100µs on NVMe) to every append. The rule
// of thumb: anything that externalizes an effect keyed on the record —
// acknowledging a decision to a client, sending a message another process
// will act on — needs SyncAlways (or an explicit Sync before the ack);
// state that is merely expensive to recompute can ride SyncNever.
// SyncedSeq reports the durability horizon either way.
type SyncMode int

const (
	// SyncNever never fsyncs on append; Sync may still be called
	// explicitly. An append survives a process crash the moment it
	// returns (the OS holds the bytes), but a power loss or kernel panic
	// rolls the log back to the last explicit Sync, rotation, or Close —
	// the tail since then is legal debris, silently dropped at replay.
	// Never acknowledge anything on the strength of a SyncNever append.
	SyncNever SyncMode = iota

	// SyncAlways fsyncs after every append: when Append returns, the
	// record is on stable storage and no failure short of media loss can
	// un-write it — the mode that makes ack-after-Append honest.
	SyncAlways
)

// Options tunes a log.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that reaches this
	// size is closed and a fresh one started. 0 means 1 MiB.
	SegmentBytes int

	// Sync is the fsync policy for Append; see SyncMode for the
	// crash-class tradeoff. The zero value is SyncNever — fast, but an
	// acknowledgement given on the strength of an append is not
	// power-loss durable until Sync is called.
	Sync SyncMode
}

func (o Options) segmentBytes() int {
	if o.SegmentBytes <= 0 {
		return 1 << 20
	}
	return o.SegmentBytes
}

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// ReplayReport summarizes a replay: how much was read and how much of a
// torn tail was dropped.
type ReplayReport struct {
	// Records and Segments count what was successfully replayed.
	Records  int
	Segments int

	// TruncatedBytes is the size of the torn tail dropped from the final
	// segment (0 for a cleanly closed log).
	TruncatedBytes int

	// LastSeq is the sequence number of the last valid record (0 if none).
	LastSeq uint64
}

// CorruptError reports corruption that cannot be explained as a torn
// write: a bad frame before the end of the log, or a sequence gap.
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at %s+%d", e.Reason, e.Segment, e.Offset)
}

// Log is an open write-ahead log positioned for appending.
type Log struct {
	dir     string
	opts    Options
	f       *os.File
	segIdx  int // index of the open segment
	segSize int // bytes written to the open segment
	nextSeq uint64
	closed  bool

	// syncedSeq is the durability horizon: the highest sequence number
	// known to have reached stable storage (see SyncedSeq).
	syncedSeq uint64

	// batchBuf is AppendBatch's reusable frame-assembly buffer.
	batchBuf []byte
}

// Create initializes a fresh log in dir, which must be empty (or not yet
// exist — it is created with parents).
func Create(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	if segs, err := segments(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("wal: %s already holds a log (%d segments); use Open to resume", dir, len(segs))
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	if err := l.rotate(); err != nil {
		return nil, err
	}
	return l, nil
}

// Open replays an existing log, truncates any torn tail from its final
// segment, and returns the log positioned for appending together with the
// replayed records and the replay report.
func Open(dir string, opts Options) (*Log, []Record, *ReplayReport, error) {
	recs, rep, tailKeep, err := replay(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	segs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			l, err := Create(dir, opts)
			return l, nil, rep, err
		}
		return nil, nil, nil, err
	}
	if len(segs) == 0 {
		l, err := Create(dir, opts)
		return l, nil, rep, err
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
	}
	// Drop the torn tail so new frames don't land after garbage. tailKeep
	// is the byte length of the final segment's valid prefix as determined
	// by the same scan that produced recs, so the two can't disagree.
	keep := int64(tailKeep)
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		f:       f,
		segIdx:  last.index,
		segSize: int(keep),
		nextSeq: rep.LastSeq + 1,
		// What replay saw is what this incarnation can ever recover: the
		// durability horizon restarts at the replayed prefix.
		syncedSeq: rep.LastSeq,
	}
	if keep < headerSize {
		// Even the header was torn or garbled: rebuild the segment in place.
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], magic)
		binary.LittleEndian.PutUint32(hdr[4:8], version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("wal: rewrite segment header: %w", err)
		}
		l.segSize = headerSize
	}
	return l, recs, rep, nil
}

// Append writes one record and returns its sequence number. The record is
// durable per the configured SyncMode.
func (l *Log) Append(kind uint8, payload []byte) (uint64, error) {
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	seq := l.nextSeq
	frame := appendFrame(nil, seq, kind, payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += len(frame)
	l.nextSeq++
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		l.syncedSeq = seq
	}
	if l.segSize >= l.opts.segmentBytes() {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes the open segment to stable storage, advancing the
// durability horizon to the last appended record.
func (l *Log) Sync() error {
	if l.closed {
		return errors.New("wal: sync on closed log")
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncedSeq = l.nextSeq - 1
	return nil
}

// SyncedSeq returns the durability horizon: the highest sequence number
// guaranteed to survive power loss. Under SyncAlways it tracks every
// Append; under SyncNever it advances only on explicit Sync, segment
// rotation, and Close — the gap up to NextSeq()-1 is exactly the tail a
// power loss may take back.
func (l *Log) SyncedSeq() uint64 { return l.syncedSeq }

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	l.syncedSeq = l.nextSeq - 1
	return l.f.Close()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// rotate closes the open segment (if any) and starts the next one.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync before rotate: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.syncedSeq = l.nextSeq - 1
	}
	l.segIdx++
	name := segmentName(l.segIdx)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.f = f
	l.segSize = headerSize
	return nil
}

// Replay reads every record of the log in dir. A torn tail in the final
// segment is dropped (and reported); corruption anywhere else is a
// *CorruptError. Replaying an empty or missing directory yields no records.
func Replay(dir string) ([]Record, *ReplayReport, error) {
	recs, rep, _, err := replay(dir)
	return recs, rep, err
}

// replay is Replay plus the byte length of the final segment's valid
// prefix, which Open uses as the truncation point.
func replay(dir string) ([]Record, *ReplayReport, int, error) {
	rep := &ReplayReport{}
	segs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, rep, 0, nil
		}
		return nil, nil, 0, err
	}
	var recs []Record
	tailKeep := 0
	for i, seg := range segs {
		final := i == len(segs)-1
		b, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return nil, nil, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		n, segRecs, cerr := scanSegment(b, seg.name, rep.LastSeq)
		if cerr != nil && !final {
			return nil, nil, 0, cerr
		}
		if cerr != nil && final {
			// Torn write: drop the tail.
			rep.TruncatedBytes = len(b) - n
		}
		if !final && n != len(b) {
			// A clean stop before EOF in a rotated segment means trailing
			// garbage that a rotation should never have left behind.
			return nil, nil, 0, &CorruptError{Segment: seg.name, Offset: int64(n), Reason: "trailing bytes in rotated segment"}
		}
		if final && cerr == nil && n != len(b) {
			rep.TruncatedBytes = len(b) - n
		}
		if final {
			tailKeep = n
		}
		for _, r := range segRecs {
			rep.LastSeq = r.Seq
		}
		recs = append(recs, segRecs...)
		rep.Segments++
	}
	rep.Records = len(recs)
	return recs, rep, tailKeep, nil
}

// scanSegment parses one segment's bytes. It returns the number of bytes
// consumed by valid content, the records, and the error that stopped the
// scan (nil for a clean EOF). prevSeq is the last sequence number replayed
// from earlier segments.
func scanSegment(b []byte, name string, prevSeq uint64) (int, []Record, *CorruptError) {
	if len(b) < headerSize {
		return 0, nil, &CorruptError{Segment: name, Offset: 0, Reason: "short segment header"}
	}
	if binary.LittleEndian.Uint32(b[0:4]) != magic {
		return 0, nil, &CorruptError{Segment: name, Offset: 0, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != version {
		return 0, nil, &CorruptError{Segment: name, Offset: 4, Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	off := headerSize
	var recs []Record
	seq := prevSeq
	for off < len(b) {
		if len(b)-off < frameSize {
			return off, recs, &CorruptError{Segment: name, Offset: int64(off), Reason: "short frame header"}
		}
		fseq := binary.LittleEndian.Uint64(b[off : off+8])
		kind := b[off+8]
		length := binary.LittleEndian.Uint32(b[off+9 : off+13])
		crc := binary.LittleEndian.Uint32(b[off+13 : off+17])
		if length > MaxPayload {
			return off, recs, &CorruptError{Segment: name, Offset: int64(off), Reason: "implausible frame length"}
		}
		if len(b)-off-frameSize < int(length) {
			return off, recs, &CorruptError{Segment: name, Offset: int64(off), Reason: "short frame payload"}
		}
		payload := b[off+frameSize : off+frameSize+int(length)]
		if frameCRC(fseq, kind, payload) != crc {
			return off, recs, &CorruptError{Segment: name, Offset: int64(off), Reason: "checksum mismatch"}
		}
		if fseq != seq+1 {
			return off, recs, &CorruptError{Segment: name, Offset: int64(off), Reason: fmt.Sprintf("sequence gap: %d after %d", fseq, seq)}
		}
		seq = fseq
		recs = append(recs, Record{Seq: fseq, Kind: kind, Payload: append([]byte(nil), payload...)})
		off += frameSize + int(length)
	}
	return off, recs, nil
}

// appendFrame appends one encoded frame to buf and returns the extended
// slice — the single frame-encoding path shared by Append and AppendBatch.
func appendFrame(buf []byte, seq uint64, kind uint8, payload []byte) []byte {
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	hdr[8] = kind
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], frameCRC(seq, kind, payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func frameCRC(seq uint64, kind uint8, payload []byte) uint32 {
	var hdr [13]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	hdr[8] = kind
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(crc, castagnoli, payload)
}

type segment struct {
	name  string
	index int
}

func segmentName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// segments lists the segment files of dir in index order, validating the
// numbering is contiguous from 1.
func segments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "seg-%08d.wal", &idx); err != nil || idx < 1 {
			continue
		}
		segs = append(segs, segment{name: name, index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i, s := range segs {
		if s.index != i+1 {
			return nil, &CorruptError{Segment: s.name, Offset: 0, Reason: fmt.Sprintf("segment numbering gap: want %d", i+1)}
		}
	}
	return segs, nil
}
