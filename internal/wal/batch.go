// Group commit: the fsync-coalescing layer of the write path. A Log is
// single-writer; AppendBatch gives that writer a way to make many
// records durable under ONE write + ONE fsync. Group is the concurrent
// front-end the sharded service uses: any number of goroutines call
// Group.Append, a single committer goroutine drains whatever has
// accumulated into one AppendBatch, and every caller's Append returns
// only once its record is durable per the log's SyncMode — so the
// journal-before-ack contract survives concurrency while the fsyncs are
// paid once per batch, not once per record.
//
// The batching is greedy and windowless: when the committer is free it
// commits a single record immediately (no added latency at low load);
// when a commit is in flight, everything that arrives meanwhile forms
// the next batch (fsyncs amortize exactly as fast as load grows). This
// is the classic group-commit self-tuning behaviour.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs/hist"
)

// BatchEntry is one record of an AppendBatch.
type BatchEntry struct {
	Kind    uint8
	Payload []byte
}

// AppendBatch appends every entry and returns the sequence number of the
// first (entries get contiguous numbers from it). The whole batch is
// written with one Write call and, under SyncAlways, made durable with
// one Sync — when AppendBatch returns, every entry enjoys the same
// durability an individual Append would have had, at one fsync for the
// lot. An empty batch is a no-op returning the next sequence number.
//
// Like Append, AppendBatch must only be called from the log's single
// writer; Group provides the concurrent front-end.
func (l *Log) AppendBatch(entries []BatchEntry) (uint64, error) {
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	first := l.nextSeq
	if len(entries) == 0 {
		return first, nil
	}
	size := 0
	for _, e := range entries {
		if len(e.Payload) > MaxPayload {
			return 0, fmt.Errorf("wal: batch payload %d exceeds max %d", len(e.Payload), MaxPayload)
		}
		size += frameSize + len(e.Payload)
	}
	if cap(l.batchBuf) < size {
		l.batchBuf = make([]byte, 0, size)
	}
	buf := l.batchBuf[:0]
	seq := l.nextSeq
	for _, e := range entries {
		buf = appendFrame(buf, seq, e.Kind, e.Payload)
		seq++
	}
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append batch: %w", err)
	}
	l.batchBuf = buf[:0]
	l.segSize += size
	l.nextSeq = seq
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync batch: %w", err)
		}
		l.syncedSeq = seq - 1
	}
	if l.segSize >= l.opts.segmentBytes() {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// ErrGroupClosed reports an Append on a closed Group.
var ErrGroupClosed = errors.New("wal: group writer closed")

// GroupOptions tunes a Group.
type GroupOptions struct {
	// MaxBatch bounds one commit's record count. 0 means 256.
	MaxBatch int

	// Queue bounds the pending-append channel. 0 means 1024.
	Queue int

	// BatchHist, when non-nil, records each commit's batch size — the
	// observability hook the serve layer wires to "serve_wal_batch".
	BatchHist *hist.Histogram
}

// GroupStats counts a Group's work: Appends records accepted, Batches
// commits performed. Batches < Appends is coalescing at work.
type GroupStats struct {
	Appends int64
	Batches int64
}

// Group is the concurrent group-commit front-end over a Log. Create
// with NewGroup; stop with Close. After Close, Append fails with
// ErrGroupClosed; the underlying Log remains open and owned by the
// caller.
type Group struct {
	log  *Log
	opts GroupOptions
	req  chan groupReq
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	appends atomic.Int64
	batches atomic.Int64
	synced  atomic.Uint64
}

type groupReq struct {
	entry BatchEntry
	res   chan groupRes
}

type groupRes struct {
	seq uint64
	err error
}

// NewGroup starts the committer goroutine over l. The caller must not
// call l.Append/AppendBatch directly while the group is open — the
// committer is the log's single writer.
func NewGroup(l *Log, opts GroupOptions) *Group {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.Queue <= 0 {
		opts.Queue = 1024
	}
	g := &Group{log: l, opts: opts, req: make(chan groupReq, opts.Queue)}
	g.wg.Add(1)
	go g.commit()
	return g
}

// Append makes one record durable per the log's SyncMode and returns its
// sequence number. Safe for concurrent use; blocks until the commit that
// carries the record completes, so a caller returning from Append may
// acknowledge whatever the record promises.
func (g *Group) Append(kind uint8, payload []byte) (uint64, error) {
	r := groupReq{entry: BatchEntry{Kind: kind, Payload: payload}, res: make(chan groupRes, 1)}
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return 0, ErrGroupClosed
	}
	g.req <- r
	g.mu.RUnlock()
	res := <-r.res
	return res.seq, res.err
}

// Stats returns the group's counters.
func (g *Group) Stats() GroupStats {
	return GroupStats{Appends: g.appends.Load(), Batches: g.batches.Load()}
}

// SyncedSeq is the concurrent-safe view of the log's durability horizon:
// the highest sequence number known durable as of the last commit. Unlike
// Log.SyncedSeq it may be read while the committer runs.
func (g *Group) SyncedSeq() uint64 { return g.synced.Load() }

// Close stops accepting appends, waits for every pending one to commit,
// and stops the committer. It does not close the underlying Log.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	// No Append can be mid-send past this point (they hold the read lock
	// across the send), so closing the channel is safe; the committer
	// drains what is queued and exits.
	close(g.req)
	g.wg.Wait()
	return nil
}

// commit is the committer loop: one blocking receive starts a batch,
// a non-blocking drain (capped at MaxBatch) fills it, one AppendBatch
// makes it durable, and every waiter learns its fate.
func (g *Group) commit() {
	defer g.wg.Done()
	batch := make([]BatchEntry, 0, g.opts.MaxBatch)
	waiters := make([]groupReq, 0, g.opts.MaxBatch)
	for {
		r, ok := <-g.req
		if !ok {
			return
		}
		batch, waiters = batch[:0], waiters[:0]
		batch = append(batch, r.entry)
		waiters = append(waiters, r)
	drain:
		for len(batch) < g.opts.MaxBatch {
			select {
			case r2, ok2 := <-g.req:
				if !ok2 {
					break drain
				}
				batch = append(batch, r2.entry)
				waiters = append(waiters, r2)
			default:
				break drain
			}
		}
		first, err := g.log.AppendBatch(batch)
		g.appends.Add(int64(len(batch)))
		g.batches.Add(1)
		g.synced.Store(g.log.SyncedSeq())
		if g.opts.BatchHist != nil {
			g.opts.BatchHist.Record(int64(len(batch)))
		}
		for i, w := range waiters {
			if err != nil {
				w.res <- groupRes{err: err}
			} else {
				w.res <- groupRes{seq: first + uint64(i)}
			}
		}
	}
}
