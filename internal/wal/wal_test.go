package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(uint8(i%3+1), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || rep.Records != 10 || rep.TruncatedBytes != 0 {
		t.Fatalf("replay: %d records, report %+v", len(recs), rep)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if want := fmt.Sprintf("record-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
		if r.Kind != uint8(i%3+1) {
			t.Fatalf("record %d kind %d", i, r.Kind)
		}
	}
}

func TestEmptyAndMissing(t *testing.T) {
	recs, rep, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 || rep.Records != 0 {
		t.Fatalf("missing dir: recs=%d rep=%+v err=%v", len(recs), rep, err)
	}

	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rep, err = Replay(dir)
	if err != nil || len(recs) != 0 || rep.Segments != 1 {
		t.Fatalf("empty log: recs=%d rep=%+v err=%v", len(recs), rep, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 || rep.Segments != len(segs) {
		t.Fatalf("replay across segments: %d records, %d/%d segments", len(recs), rep.Segments, len(segs))
	}
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the final frame.
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn replay kept %d records, want 4", len(recs))
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
}

func TestCorruptTailTreatedAsTorn(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the LAST record: checksum fails, the record
	// is dropped as a torn tail.
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || rep.TruncatedBytes == 0 {
		t.Fatalf("corrupt-tail replay: %d records, %d truncated bytes", len(recs), rep.TruncatedBytes)
	}
}

func TestCorruptionInRotatedSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST segment: this is mid-log, not a torn tail.
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Replay(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-log corruption: got %v, want *CorruptError", err)
	}
}

func TestOpenResumesAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail, then append garbage beyond it for good measure.
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), b[:len(b)-3]...), 0xde, 0xad)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || rep.TruncatedBytes == 0 {
		t.Fatalf("open after tear: %d records, %d truncated", len(recs), rep.TruncatedBytes)
	}
	// The torn record's sequence number is reused by the re-append.
	if seq, err := l2.Append(9, []byte("after-recovery")); err != nil || seq != 5 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || !bytes.Equal(recs[4].Payload, []byte("after-recovery")) {
		t.Fatalf("post-recovery replay: %d records, last %q", len(recs), recs[len(recs)-1].Payload)
	}
}

func TestOpenFreshDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "new")
	l, recs, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || rep.Records != 0 {
		t.Fatalf("fresh open: %d records", len(recs))
	}
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing log should fail")
	}
}

func TestSyncAlways(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 3)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := Replay(dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("sync-always replay: %d records, err=%v", len(recs), err)
	}
}

func TestSequenceGapIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite record 2's seq to 7 and fix its checksum so only the gap is
	// wrong.
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second frame: header + frame1.
	off := headerSize + frameSize + len("record-0")
	payload := []byte("record-1")
	writeFrame(b[off:], 7, b[off+8], payload)
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := Replay(dir)
	// In the final segment a gap stops the scan as a torn tail.
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || rep.TruncatedBytes == 0 {
		t.Fatalf("gap in final segment: %d records, %d truncated", len(recs), rep.TruncatedBytes)
	}
}

// writeFrame re-encodes a frame in place (test helper for corruption
// shaping).
func writeFrame(b []byte, seq uint64, kind uint8, payload []byte) {
	putUint64(b[0:8], seq)
	b[8] = kind
	putUint32(b[9:13], uint32(len(payload)))
	putUint32(b[13:17], frameCRC(seq, kind, payload))
	copy(b[frameSize:], payload)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putUint32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
