// Package immediate implements the one-shot immediate snapshot object of
// Borowsky and Gafni and its iterated version (IIS) — the paper's reference
// [4], which it credits as the origin of the round-by-round idea ("there is
// a nicely structured iterated model that is equivalent to shared-memory...
// This gave rise to the ideas in this paper").
//
// An immediate snapshot returns, to each participating process, a view
// V_i ⊆ S such that:
//
//	self-inclusion:  i ∈ V_i
//	containment:     V_i ⊆ V_j or V_j ⊆ V_i
//	immediacy:       j ∈ V_i ⇒ V_j ⊆ V_i
//
// Immediacy is what distinguishes it from a plain atomic snapshot (§2
// item 5 guarantees only the first two): views form a sequence of prefix
// unions of an ordered partition of the participants into "concurrency
// blocks". Its RRFD reading — D(i,r) the complement of V_i — is therefore a
// strict submodel of the item 5 predicate, which this package's tests and
// the E15 lattice verify.
//
// The implementation is the classic one-shot floor-descent algorithm run
// over the wait-free atomic snapshot object: a process descends one level
// per iteration, announcing (value, level), and returns the set of
// processes at or below its level as soon as that set's size reaches the
// level.
package immediate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/swmr"
)

// cell is a participant's announcement: its value and current level.
type cell struct {
	value core.Value
	level int
}

// Object is one process's handle to a named one-shot immediate snapshot.
type Object struct {
	proc *swmr.Proc
	snap *snapshot.Object
}

// New returns process p's handle to the immediate snapshot called name.
func New(p *swmr.Proc, name string) *Object {
	return &Object{proc: p, snap: snapshot.New(p, "is:"+name)}
}

// View is the result of a Participate call.
type View struct {
	// Members is the set of processes in the view (always includes the
	// caller).
	Members core.Set

	// Values maps each member to the value it participated with.
	Values map[core.PID]core.Value

	// Level is the floor at which the caller terminated (= |Members|).
	Level int
}

// Participate enters the one-shot immediate snapshot with value v and
// returns the caller's view. Each process must call Participate at most
// once per object. The algorithm is wait-free: at most n iterations of one
// Update and one Scan each.
func (o *Object) Participate(v core.Value) (*View, error) {
	n := o.proc.N
	for level := n; level >= 1; level-- {
		if err := o.snap.Update(cell{value: v, level: level}); err != nil {
			return nil, err
		}
		view, err := o.snap.Scan()
		if err != nil {
			return nil, err
		}
		at := core.NewSet(n)
		values := make(map[core.PID]core.Value)
		for j, c := range view {
			jc, ok := c.Value.(cell)
			if !ok {
				continue
			}
			if jc.level <= level {
				at.Add(core.PID(j))
				values[core.PID(j)] = jc.value
			}
		}
		if at.Count() >= level {
			return &View{Members: at, Values: values, Level: level}, nil
		}
	}
	return nil, fmt.Errorf("immediate: process %d fell through level 1", o.proc.Me)
}

// CheckViews validates the three immediate-snapshot properties over the
// views of the processes that obtained one.
func CheckViews(n int, views map[core.PID]*View) error {
	for p, v := range views {
		if !v.Members.Has(p) {
			return fmt.Errorf("immediate: self-inclusion violated: %d ∉ %s", p, v.Members)
		}
		if v.Members.Count() != len(v.Values) {
			return fmt.Errorf("immediate: view of %d has %d members but %d values",
				p, v.Members.Count(), len(v.Values))
		}
	}
	for p, vp := range views {
		for q, vq := range views {
			if !vp.Members.IsSubset(vq.Members) && !vq.Members.IsSubset(vp.Members) {
				return fmt.Errorf("immediate: containment violated: V_%d=%s, V_%d=%s",
					p, vp.Members, q, vq.Members)
			}
		}
	}
	for p, vp := range views {
		var err error
		vp.Members.ForEach(func(j core.PID) {
			if err != nil {
				return
			}
			vj, ok := views[j]
			if !ok {
				return // j crashed before returning; immediacy vacuous for it
			}
			if !vj.Members.IsSubset(vp.Members) {
				err = fmt.Errorf("immediate: immediacy violated: %d ∈ V_%d=%s but V_%d=%s ⊄",
					j, p, vp.Members, j, vj.Members)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
