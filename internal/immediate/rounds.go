package immediate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/swmr"
)

// RoundOutcome reports an iterated-immediate-snapshot (IIS) execution.
type RoundOutcome struct {
	// Trace is the induced RRFD trace: D(i,r) is the complement of p_i's
	// round-r immediate-snapshot view.
	Trace *core.Trace

	// Views[i][r-1] maps members of p_i's round-r view to their round-r
	// emissions.
	Views map[core.PID][]map[core.PID]core.Value

	// Crashed is the set of processes crashed by the scheduler.
	Crashed core.Set
}

// RoundEmit computes p_i's round-r emission from the previous round's view
// (nil at round 1).
type RoundEmit func(me core.PID, r int, received map[core.PID]core.Value, suspects core.Set) core.Value

// RunRounds executes rounds rounds of the iterated immediate snapshot: one
// fresh one-shot object per round, each process participating with its
// round emission. The induced RRFD trace satisfies the item 5 snapshot
// predicate with budget n−1 PLUS immediacy — the strict strengthening the
// E-series lattice records.
func RunRounds(n, rounds int, cfg swmr.Config, emit RoundEmit) (*RoundOutcome, error) {
	if emit == nil {
		emit = func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return fmt.Sprintf("p%d@r%d", me, r)
		}
	}
	type rec struct {
		dsets []core.Set
		views []map[core.PID]core.Value
	}
	recs := make([]*rec, n)
	out, err := swmr.Run(n, cfg, func(p *swmr.Proc) (core.Value, error) {
		r0 := &rec{}
		recs[p.Me] = r0
		var prev map[core.PID]core.Value
		prevSus := core.NewSet(n)
		for r := 1; r <= rounds; r++ {
			obj := New(p, fmt.Sprintf("r%d", r))
			view, err := obj.Participate(emit(p.Me, r, prev, prevSus))
			if err != nil {
				return nil, err
			}
			d := view.Members.Complement()
			r0.dsets = append(r0.dsets, d)
			r0.views = append(r0.views, view.Values)
			prev, prevSus = view.Values, d
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}

	res := &RoundOutcome{
		Trace:   core.NewTrace(n),
		Views:   make(map[core.PID][]map[core.PID]core.Value, n),
		Crashed: out.Crashed,
	}
	for i := 0; i < n; i++ {
		if recs[i] == nil {
			recs[i] = &rec{}
		}
		res.Views[core.PID(i)] = recs[i].views
	}
	for r := 1; r <= rounds; r++ {
		rr := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if len(recs[i].dsets) >= r {
				rr.Active.Add(pid)
				rr.Suspects[i] = recs[i].dsets[r-1]
				rr.Deliver[i] = recs[i].dsets[r-1].Complement()
			} else {
				rr.Suspects[i] = core.NewSet(n)
				rr.Deliver[i] = core.NewSet(n)
				rr.Crashed.Add(pid)
			}
		}
		if rr.Active.Empty() {
			break
		}
		res.Trace.Append(rr)
	}
	return res, nil
}
