package immediate

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/swmr"
)

// participateAll runs one one-shot immediate snapshot with every process
// and returns the views of processes that finished.
func participateAll(t *testing.T, n int, cfg swmr.Config) map[core.PID]*View {
	t.Helper()
	var mu sync.Mutex
	views := make(map[core.PID]*View)
	out, err := swmr.Run(n, cfg, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "one")
		v, err := obj.Participate(int(p.Me) * 7)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		views[p.Me] = v
		mu.Unlock()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, e := range out.Errs {
		if !errors.Is(e, swmr.ErrCrashed) {
			t.Fatalf("process %d: %v", pid, e)
		}
	}
	return views
}

func TestOneShotProperties(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for seed := int64(0); seed < 30; seed++ {
			views := participateAll(t, n, swmr.Config{Chooser: swmr.Seeded(seed)})
			if len(views) != n {
				t.Fatalf("n=%d seed=%d: only %d views", n, seed, len(views))
			}
			if err := CheckViews(n, views); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			// Values must be the participants' actual inputs.
			for p, v := range views {
				var badErr error
				v.Members.ForEach(func(j core.PID) {
					if v.Values[j] != int(j)*7 {
						badErr = errorf(t, "p%d view: value of %d = %v", p, j, v.Values[j])
					}
				})
				if badErr != nil {
					t.Fatal(badErr)
				}
			}
		}
	}
}

func errorf(t *testing.T, format string, args ...any) error {
	t.Helper()
	t.Errorf(format, args...)
	return errors.New("failed")
}

func TestOneShotWithCrashes(t *testing.T) {
	// Wait-freedom: any number of crashes, survivors still return valid
	// views.
	n := 6
	for seed := int64(0); seed < 20; seed++ {
		views := participateAll(t, n, swmr.Config{
			Chooser: swmr.Seeded(seed),
			Crash:   map[core.PID]int{0: 3, 4: 17, 5: 0},
		})
		if len(views) < 3 {
			t.Fatalf("seed %d: survivors did not finish", seed)
		}
		if err := CheckViews(n, views); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestOneShotSoloTerminatesAtLevelOne(t *testing.T) {
	// A process running entirely alone must exit with the singleton view.
	n := 3
	views := participateAll(t, n, swmr.Config{
		Chooser: swmr.PriorityGroups([]core.PID{0}, []core.PID{1}, []core.PID{2}),
	})
	if got := views[0].Members; !got.Equal(core.SetOf(n, 0)) {
		t.Fatalf("solo view = %s, want {0}", got)
	}
	if views[0].Level != 1 {
		t.Fatalf("solo level = %d, want 1", views[0].Level)
	}
	// The full staircase: each later process must see a strictly larger
	// view.
	if !views[0].Members.IsSubset(views[1].Members) || !views[1].Members.IsSubset(views[2].Members) {
		t.Fatalf("staircase views not nested: %s %s %s",
			views[0].Members, views[1].Members, views[2].Members)
	}
}

func TestExploreOneShotSmall(t *testing.T) {
	// Bounded systematic model-check of a 2-process one-shot immediate
	// snapshot: the DFS frontier of the schedule tree (each Participate
	// is ~20 register operations, so full exhaustion is out of reach;
	// 20k distinct schedules still cover every early divergence).
	count, err := swmr.Explore(20_000, func(ch swmr.Chooser) error {
		var mu sync.Mutex
		views := make(map[core.PID]*View)
		_, err := swmr.Run(2, swmr.Config{Chooser: ch}, func(p *swmr.Proc) (core.Value, error) {
			v, err := New(p, "x").Participate(int(p.Me))
			if err != nil {
				return nil, err
			}
			mu.Lock()
			views[p.Me] = v
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			return err
		}
		return CheckViews(2, views)
	})
	if err != nil && !errors.Is(err, swmr.ErrExploreLimit) {
		t.Fatalf("after %d schedules: %v", count, err)
	}
	t.Logf("explored %d schedules", count)
}

func TestRunRoundsSatisfiesImmediatePredicate(t *testing.T) {
	n, rounds := 5, 3
	for seed := int64(0); seed < 15; seed++ {
		out, err := RunRounds(n, rounds, swmr.Config{Chooser: swmr.Seeded(seed)}, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Trace.Len() != rounds {
			t.Fatalf("seed %d: %d rounds", seed, out.Trace.Len())
		}
		if err := predicate.ImmediateSnapshot(n).Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out.Trace)
		}
	}
}

func TestOrderedBlocksAdversaryMatchesIIS(t *testing.T) {
	// The abstract adversary realizes the same predicate as the
	// operational object.
	n := 7
	for seed := int64(0); seed < 25; seed++ {
		tr, err := core.CollectTrace(n, 5, adversary.OrderedBlocks(n, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := predicate.ImmediateSnapshot(n).Check(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIISIsStrictSubmodelOfSnapshot(t *testing.T) {
	// Implication: immediate ⇒ item 5 (with the wait-free budget) —
	// proven exhaustively for n=3; strictness: a snapshot trace violating
	// immediacy exists.
	_, satisfying, err := predicate.ExhaustiveImplies(3, 1,
		predicate.ImmediateSnapshot(3), predicate.AtomicSnapshot(2))
	if err != nil {
		t.Fatal(err)
	}
	if satisfying == 0 {
		t.Fatal("vacuous")
	}
	_, witnesses, err := predicate.ExhaustiveWitnesses(3, 1,
		predicate.AtomicSnapshot(2), predicate.Immediacy())
	if err != nil {
		t.Fatal(err)
	}
	if witnesses == 0 {
		t.Fatal("snapshot should NOT imply immediacy")
	}
}
