// Package faultnet turns concrete network-fault models into data: a Plan is
// a seeded, composable list of elementary link-level behaviours — message
// drop, duplication, bounded delay, send-omission by a faulty sender, and
// named partitions that form and heal at configured steps — compiled into a
// msgnet.FaultInjector. Following the Heard-Of programme of deriving round
// predicates from elementary message behaviours, each component corresponds
// to one of the paper's §2 models (see DESIGN.md, "Fault injection &
// recovery"); internal/chaos randomizes Plans and internal/predicate checks
// which model the induced trace still satisfies.
//
// Plans are plain data on purpose: the chaos harness shrinks a failing Plan
// component-by-component to a minimal reproducer, and a (seed, Plan) pair
// replays an execution exactly.
package faultnet

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/msgnet"
)

// Kind names an elementary fault behaviour.
type Kind string

// The elementary behaviours a Component can express.
const (
	// Drop loses each message with probability Rate.
	Drop Kind = "drop"

	// Duplicate delivers Copies extra copies with probability Rate.
	Duplicate Kind = "duplicate"

	// Delay holds each copy back 1..MaxDelay extra steps with probability
	// Rate (delayed copies may overtake later sends: reordering).
	Delay Kind = "delay"

	// SendOmission loses messages from the Senders with probability Rate —
	// the faulty-sender behaviour of the eq. (1) omission model.
	SendOmission Kind = "send-omission"

	// Partition drops every message crossing between Groups while the
	// step clock is in [From, Until); Until 0 means it never heals.
	Partition Kind = "partition"
)

// Component is one elementary fault behaviour. Which fields matter depends
// on Kind; the zero values of the rest are ignored.
type Component struct {
	Kind Kind `json:"kind"`

	// Rate is the per-message firing probability (Drop, Duplicate, Delay,
	// SendOmission).
	Rate float64 `json:"rate,omitempty"`

	// Copies is how many extra copies a firing Duplicate delivers;
	// 0 means 1.
	Copies int `json:"copies,omitempty"`

	// MaxDelay bounds the extra delivery delay, in scheduler steps, of a
	// firing Delay (uniform on 1..MaxDelay; 0 means 1).
	MaxDelay int `json:"max_delay,omitempty"`

	// Senders are the send-omission-faulty processes.
	Senders []core.PID `json:"senders,omitempty"`

	// Groups are the sides of a Partition; messages between processes in
	// different groups are dropped while the partition is active.
	// Processes in no group are unaffected.
	Groups [][]core.PID `json:"groups,omitempty"`

	// From and Until delimit a Partition's active window [From, Until) in
	// scheduler steps; Until 0 means the partition never heals.
	From  int `json:"from,omitempty"`
	Until int `json:"until,omitempty"`

	// Name labels a Partition in reports.
	Name string `json:"name,omitempty"`
}

// String renders the component compactly for reports.
func (c Component) String() string {
	switch c.Kind {
	case Drop:
		return fmt.Sprintf("drop(%.0f%%)", c.Rate*100)
	case Duplicate:
		return fmt.Sprintf("duplicate(%.0f%%×%d)", c.Rate*100, max(1, c.Copies))
	case Delay:
		return fmt.Sprintf("delay(%.0f%%≤%d)", c.Rate*100, max(1, c.MaxDelay))
	case SendOmission:
		return fmt.Sprintf("omission(%v@%.0f%%)", c.Senders, c.Rate*100)
	case Partition:
		sides := make([]string, len(c.Groups))
		for i, g := range c.Groups {
			parts := make([]string, len(g))
			for j, p := range g {
				parts[j] = fmt.Sprint(int(p))
			}
			sides[i] = strings.Join(parts, ",")
		}
		until := "∞"
		if c.Until > 0 {
			until = fmt.Sprint(c.Until)
		}
		name := c.Name
		if name == "" {
			name = "partition"
		}
		return fmt.Sprintf("%s{%s}@[%d,%s)", name, strings.Join(sides, "|"), c.From, until)
	default:
		return fmt.Sprintf("unknown(%s)", c.Kind)
	}
}

// Plan is a seeded fault model: the Components are applied to every
// non-loopback send, in order, with all randomness derived from Seed. A
// Plan value (plus the execution's scheduler seed) replays an execution
// exactly.
type Plan struct {
	Seed       int64       `json:"seed"`
	Components []Component `json:"components"`
}

// String renders the plan for reports: "seed=7 drop(30%) delay(10%≤8)".
func (p Plan) String() string {
	parts := make([]string, 0, len(p.Components)+1)
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if len(p.Components) == 0 {
		parts = append(parts, "fault-free")
	}
	for _, c := range p.Components {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, " ")
}

// Partitions returns the plan's partition components.
func (p Plan) Partitions() []Component {
	var out []Component
	for _, c := range p.Components {
		if c.Kind == Partition {
			out = append(out, c)
		}
	}
	return out
}

// WithoutComponent returns a copy of the plan with component i removed —
// the shrinking step of chaos-plan minimization.
func (p Plan) WithoutComponent(i int) Plan {
	out := Plan{Seed: p.Seed, Components: make([]Component, 0, len(p.Components)-1)}
	out.Components = append(out.Components, p.Components[:i]...)
	out.Components = append(out.Components, p.Components[i+1:]...)
	return out
}

// Injector compiles the plan into a msgnet fault injector. Each component
// gets its own deterministic random stream derived from (Seed, index), so
// the injector as a whole is deterministic for a fixed plan.
func (p Plan) Injector() msgnet.FaultInjector {
	inj := &injector{comps: p.Components}
	for i, c := range p.Components {
		inj.rngs = append(inj.rngs, newRNG(p.Seed+int64(i+1)*0x9E3779B9))
		groups := map[core.PID]int(nil)
		if c.Kind == Partition {
			groups = make(map[core.PID]int)
			for g, side := range c.Groups {
				for _, pid := range side {
					groups[pid] = g
				}
			}
		}
		inj.groupOf = append(inj.groupOf, groups)
	}
	return inj
}

type injector struct {
	comps   []Component
	rngs    []*rng
	groupOf []map[core.PID]int
}

// OnSend implements msgnet.FaultInjector: the components transform the
// fault-free single immediate delivery in order, first drop wins.
func (in *injector) OnSend(step int, from, to core.PID) msgnet.FaultAction {
	delays := []int{0}
	for i, c := range in.comps {
		switch c.Kind {
		case SendOmission:
			if containsPID(c.Senders, from) && in.rngs[i].chance(c.Rate) {
				return msgnet.FaultAction{Reason: "omission"}
			}
		case Partition:
			if step >= c.From && (c.Until == 0 || step < c.Until) {
				gf, okf := in.groupOf[i][from]
				gt, okt := in.groupOf[i][to]
				if okf && okt && gf != gt {
					return msgnet.FaultAction{Reason: "partition"}
				}
			}
		case Drop:
			if in.rngs[i].chance(c.Rate) {
				return msgnet.FaultAction{Reason: "drop"}
			}
		case Duplicate:
			if in.rngs[i].chance(c.Rate) {
				for extra := max(1, c.Copies); extra > 0; extra-- {
					delays = append(delays, 0)
				}
			}
		case Delay:
			for j := range delays {
				if in.rngs[i].chance(c.Rate) {
					delays[j] += 1 + in.rngs[i].intn(max(1, c.MaxDelay))
				}
			}
		}
	}
	return msgnet.FaultAction{Deliveries: delays}
}

func containsPID(s []core.PID, p core.PID) bool {
	for _, q := range s {
		if q == p {
			return true
		}
	}
	return false
}

// rng is the xorshift generator the substrates use, wrapped with the float
// and bounded-int draws fault components need.
type rng struct{ s uint64 }

// NewRNG returns a deterministic generator; exported for the chaos harness
// so plan randomization shares the substrate's generator family.
func NewRNG(seed int64) *RNG { return &RNG{rng{uint64(seed)*0x9E3779B97F4A7C15 + 1}} }

// RNG is the exported face of the package's deterministic generator.
type RNG struct{ rng }

func newRNG(seed int64) *rng { return &rng{uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// Float returns a uniform draw in [0, 1).
func (r *rng) Float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) chance(rate float64) bool { return rate > 0 && r.Float() < rate }

func (r *rng) intn(n int) int { return r.Intn(n) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
