package faultnet

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/msgnet"
)

func TestPlanString(t *testing.T) {
	p := Plan{Seed: 7, Components: []Component{
		{Kind: Drop, Rate: 0.3},
		{Kind: Partition, Groups: [][]core.PID{{0, 1}, {2}}, From: 10, Until: 50, Name: "split"},
	}}
	s := p.String()
	for _, want := range []string{"seed=7", "drop(30%)", "split{0,1|2}@[10,50)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan %q lacks %q", s, want)
		}
	}
	if got := (Plan{Seed: 1}).String(); !strings.Contains(got, "fault-free") {
		t.Fatalf("empty plan renders %q", got)
	}
}

func TestWithoutComponent(t *testing.T) {
	p := Plan{Seed: 7, Components: []Component{
		{Kind: Drop, Rate: 0.1},
		{Kind: Delay, Rate: 0.2},
		{Kind: Duplicate, Rate: 0.3},
	}}
	q := p.WithoutComponent(1)
	if len(q.Components) != 2 || q.Components[0].Kind != Drop || q.Components[1].Kind != Duplicate {
		t.Fatalf("shrunk plan = %v", q.Components)
	}
	if len(p.Components) != 3 {
		t.Fatal("shrinking mutated the original plan")
	}
}

func TestPartitionWindow(t *testing.T) {
	inj := Plan{Seed: 1, Components: []Component{{
		Kind: Partition, Groups: [][]core.PID{{0}, {1}}, From: 10, Until: 20,
	}}}.Injector()
	drops := func(step int, from, to core.PID) bool {
		act := inj.OnSend(step, from, to)
		return len(act.Deliveries) == 0
	}
	if drops(5, 0, 1) {
		t.Fatal("partition active before From")
	}
	if !drops(10, 0, 1) || !drops(19, 1, 0) {
		t.Fatal("partition inactive inside [From, Until)")
	}
	if drops(20, 0, 1) {
		t.Fatal("partition did not heal at Until")
	}
	if drops(15, 0, 0) {
		t.Fatal("intra-group message dropped")
	}
	act := inj.OnSend(15, 0, 1)
	if act.Reason != "partition" {
		t.Fatalf("reason = %q, want partition", act.Reason)
	}
}

func TestSendOmissionOnlyHitsFaultySenders(t *testing.T) {
	inj := Plan{Seed: 1, Components: []Component{{
		Kind: SendOmission, Rate: 1, Senders: []core.PID{2},
	}}}.Injector()
	if act := inj.OnSend(0, 0, 1); len(act.Deliveries) == 0 {
		t.Fatal("correct sender's message omitted")
	}
	act := inj.OnSend(0, 2, 1)
	if len(act.Deliveries) != 0 || act.Reason != "omission" {
		t.Fatalf("faulty sender's message survived: %+v", act)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Components: []Component{
		{Kind: Drop, Rate: 0.5},
		{Kind: Delay, Rate: 0.5, MaxDelay: 10},
		{Kind: Duplicate, Rate: 0.5, Copies: 2},
	}}
	sequence := func() []msgnet.FaultAction {
		inj := p.Injector()
		var out []msgnet.FaultAction
		for step := 0; step < 200; step++ {
			out = append(out, inj.OnSend(step, core.PID(step%3), core.PID((step+1)%3)))
		}
		return out
	}
	a, b := sequence(), sequence()
	for i := range a {
		if len(a[i].Deliveries) != len(b[i].Deliveries) || a[i].Reason != b[i].Reason {
			t.Fatalf("step %d: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Deliveries {
			if a[i].Deliveries[j] != b[i].Deliveries[j] {
				t.Fatalf("step %d copy %d: %d vs %d", i, j, a[i].Deliveries[j], b[i].Deliveries[j])
			}
		}
	}
}

func TestRNGUniformish(t *testing.T) {
	r := NewRNG(123)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %v, wildly non-uniform", mean)
	}
	for i := 0; i < 100; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
