package msgnet

import (
	"fmt"

	"repro/internal/core"
)

// RoundEmit computes the message process me emits at round r given the
// previous round's receptions (nil at round 1) and suspect set.
type RoundEmit func(me core.PID, r int, received map[core.PID]core.Value, suspects core.Set) core.Value

// RoundOutcome is the result of running the message-passing round protocol.
type RoundOutcome struct {
	// Trace is the induced RRFD trace: Active at round r is the set of
	// processes that completed the round, Suspects[i] is D(i,r).
	Trace *core.Trace

	// Views[i][r-1] maps each process in S(i,r) to its round-r message.
	Views map[core.PID][]map[core.PID]core.Value

	// Crashed is the set of processes crashed by the scheduler.
	Crashed core.Set

	// Steps is the number of network operations scheduled.
	Steps int
}

type roundMsg struct {
	round int
	value core.Value
}

// RunRounds executes the round-based f-resilient asynchronous protocol of
// §2 item 3: in each round a process broadcasts its round message, then
// receives until it holds n−f messages of the current round — buffering
// messages that are early and discarding messages that are late (the Bracha
// and Coan construction the paper cites). D(i,r) is the set of processes
// whose round-r message was missing when p_i advanced.
//
// The induced trace satisfies eq. (3) — |D(i,r)| ≤ f — by construction; the
// tests validate exactly that, and that it can violate the shared-memory
// predicate eq. (4), which is the paper's point about network partitions
// when 2f ≥ n.
func RunRounds(n, f, rounds int, cfg Config, emit RoundEmit) (*RoundOutcome, error) {
	if emit == nil {
		emit = func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return fmt.Sprintf("p%d@r%d", me, r)
		}
	}
	if len(cfg.Crash) > f {
		return nil, fmt.Errorf("msgnet: %d crashes exceed resilience f=%d", len(cfg.Crash), f)
	}

	recs := make([]*RoundRec, n)
	out, err := Run(n, cfg, func(nd *Node) (core.Value, error) {
		rec := &RoundRec{}
		recs[nd.Me] = rec
		// future buffers messages from rounds ahead of ours.
		future := make(map[int]map[core.PID]core.Value)
		var prevMsgs map[core.PID]core.Value
		prevSus := core.NewSet(n)
		for r := 1; r <= rounds; r++ {
			v := emit(nd.Me, r, prevMsgs, prevSus)
			if err := nd.Broadcast(roundMsg{round: r, value: v}); err != nil {
				return nil, err
			}
			got := future[r]
			if got == nil {
				got = make(map[core.PID]core.Value)
			}
			delete(future, r)
			for len(got) < n-f {
				env, err := nd.Recv()
				if err != nil {
					return nil, err
				}
				m, ok := env.Payload.(roundMsg)
				if !ok {
					return nil, fmt.Errorf("msgnet: foreign payload %T", env.Payload)
				}
				switch {
				case m.round == r:
					got[env.From] = m.value
				case m.round > r: // early: buffer
					if future[m.round] == nil {
						future[m.round] = make(map[core.PID]core.Value)
					}
					future[m.round][env.From] = m.value
				default: // late: discard
				}
			}
			d := core.FullSet(n)
			for p := range got {
				d.Remove(p)
			}
			rec.Dsets = append(rec.Dsets, d)
			rec.Views = append(rec.Views, got)
			prevMsgs, prevSus = got, d
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return AssembleRoundOutcome(n, rounds, recs, out.Crashed, out.Steps), nil
}
