package msgnet

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// dropAll drops every non-loopback message.
type dropAll struct{}

func (dropAll) OnSend(step int, from, to core.PID) FaultAction {
	return FaultAction{Reason: "drop"}
}

// dropFirst drops the first k non-loopback sends, then delivers.
type dropFirst struct{ k int }

func (d *dropFirst) OnSend(step int, from, to core.PID) FaultAction {
	if d.k > 0 {
		d.k--
		return FaultAction{Reason: "drop"}
	}
	return DeliverNow()
}

type fixedAction struct{ act FaultAction }

func (f fixedAction) OnSend(int, core.PID, core.PID) FaultAction { return f.act }

func TestInjectedDropLosesMessage(t *testing.T) {
	m := obs.NewMetrics()
	_, err := Run(2, Config{Faults: dropAll{}, Observer: m}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			return nil, nd.Send(1, "x")
		}
		_, err := nd.Recv()
		return nil, err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock: the only message was dropped", err)
	}
	if ev := m.Snapshot().Events; ev["faultnet.drop"] != 1 {
		t.Fatalf("drop events = %d (events %v)", ev["faultnet.drop"], ev)
	}
}

func TestInjectedDuplicateDeliversTwice(t *testing.T) {
	out, err := Run(2, Config{Faults: fixedAction{FaultAction{Deliveries: []int{0, 0}}}},
		func(nd *Node) (core.Value, error) {
			if nd.Me == 0 {
				return nil, nd.Send(1, "x")
			}
			var got []core.Value
			for i := 0; i < 2; i++ {
				env, err := nd.Recv()
				if err != nil {
					return nil, err
				}
				got = append(got, env.Payload)
			}
			return got, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Values[1].([]core.Value)
	if len(got) != 2 || got[0] != "x" || got[1] != "x" {
		t.Fatalf("duplicated delivery = %v", got)
	}
}

func TestInjectedDelayFastForwards(t *testing.T) {
	// The only message is delayed 50 steps; the blocking receiver must
	// still get it (virtual time fast-forwards) rather than deadlock.
	out, err := Run(2, Config{Faults: fixedAction{FaultAction{Deliveries: []int{50}}}},
		func(nd *Node) (core.Value, error) {
			if nd.Me == 0 {
				return nil, nd.Send(1, "late")
			}
			env, err := nd.Recv()
			if err != nil {
				return nil, err
			}
			return env.Payload, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[1] != "late" {
		t.Fatalf("p1 got %v", out.Values[1])
	}
	if out.Steps < 50 {
		t.Fatalf("steps = %d, want the clock fast-forwarded past the 50-step delay", out.Steps)
	}
}

func TestLoopbackLinkIsReliable(t *testing.T) {
	// Self-sends bypass injection even under a drop-everything plan.
	out, err := Run(1, Config{Faults: dropAll{}}, func(nd *Node) (core.Value, error) {
		if err := nd.Send(0, "self"); err != nil {
			return nil, err
		}
		env, err := nd.Recv()
		if err != nil {
			return nil, err
		}
		return env.Payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != "self" {
		t.Fatalf("got %v", out.Values[0])
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	out, err := Run(2, Config{}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			// Never sends; its timed receive must expire, not deadlock.
			_, ok, err := nd.RecvTimeout(nd.Clock() + 10)
			if err != nil {
				return nil, err
			}
			return ok, nil
		}
		_, ok, err := nd.RecvTimeout(nd.Clock() + 10)
		if err != nil {
			return nil, err
		}
		return ok, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != false || out.Values[1] != false {
		t.Fatalf("timed receives = %v, want both expired", out.Values)
	}
	if out.Steps < 10 {
		t.Fatalf("steps = %d, want the clock advanced to the deadline", out.Steps)
	}
}

func TestRecvTimeoutPrefersDelivery(t *testing.T) {
	out, err := Run(2, Config{}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			return nil, nd.Send(1, "hi")
		}
		env, ok, err := nd.RecvTimeout(nd.Clock() + 1000)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, errors.New("timed out despite a pending message")
		}
		return env.Payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[1] != "hi" {
		t.Fatalf("p1 got %v", out.Values[1])
	}
}

func TestDeadlockErrorCarriesDiagnosis(t *testing.T) {
	// p0 sends one message to p2 (who returns without receiving), then p1
	// and p2... arrange: p1 blocks forever with an empty mailbox while an
	// undelivered message sits queued at finished p0.
	_, err := Run(3, Config{Faults: &dropFirst{0}}, func(nd *Node) (core.Value, error) {
		switch nd.Me {
		case 0:
			// Sends to itself a message it never receives, then returns:
			// the queue p0←p0 stays loaded.
			return nil, nd.Send(0, "stranded")
		case 1:
			_, err := nd.Recv() // nobody ever sends to p1
			return nil, err
		default:
			_, err := nd.Recv() // nobody ever sends to p2
			return nil, err
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %T %v, want *DeadlockError", err, err)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatal("DeadlockError must match ErrDeadlock")
	}
	if len(dl.Blocked) != 2 || dl.Blocked[0] != 1 || dl.Blocked[1] != 2 {
		t.Fatalf("blocked = %v, want [1 2]", dl.Blocked)
	}
	if len(dl.InFlight) != 1 || dl.InFlight[0] != (LinkLoad{From: 0, To: 0, Queued: 1}) {
		t.Fatalf("in-flight = %v, want the stranded p0→p0 message", dl.InFlight)
	}
	for _, want := range []string{"processes [1 2] blocked", "p0→p0:1"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("error %q lacks %q", err, want)
		}
	}
}

func TestStepLimitErrorCarriesPending(t *testing.T) {
	_, err := Run(2, Config{MaxSteps: 8}, func(nd *Node) (core.Value, error) {
		for {
			if err := nd.Send(1-nd.Me, "ping"); err != nil {
				return nil, err
			}
			if _, err := nd.Recv(); err != nil {
				return nil, err
			}
		}
	})
	var sl *StepLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("err = %T %v, want *StepLimitError", err, err)
	}
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatal("StepLimitError must match ErrMaxSteps")
	}
	if sl.Steps != 8 {
		t.Fatalf("budget = %d, want 8", sl.Steps)
	}
}

func TestFaultDeterminism(t *testing.T) {
	// Same chooser seed, same injector behaviour: the observable event
	// stream must be byte-identical across runs.
	run := func() []byte {
		var buf bytes.Buffer
		log := obs.NewEventLog(&buf)
		_, err := Run(3, Config{
			Chooser:  Seeded(42),
			Faults:   &dropFirst{3},
			Observer: log,
		}, func(nd *Node) (core.Value, error) {
			if err := nd.Broadcast(int(nd.Me)); err != nil {
				return nil, err
			}
			for {
				_, ok, err := nd.RecvTimeout(nd.Clock() + 30)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, nil
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}
