package msgnet

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkSendRecv measures raw network op throughput through the
// scheduler.
func BenchmarkSendRecv(b *testing.B) {
	n := 4
	for i := 0; i < b.N; i++ {
		_, err := Run(n, Config{Chooser: Seeded(int64(i))}, func(nd *Node) (core.Value, error) {
			if err := nd.Broadcast(int(nd.Me)); err != nil {
				return nil, err
			}
			for k := 0; k < n; k++ {
				if _, err := nd.Recv(); err != nil {
					return nil, err
				}
			}
			return nil, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRounds measures the §2 item 3 round protocol (broadcast + wait
// for n−f) as n grows.
func BenchmarkRounds(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := (n - 1) / 2
			const rounds = 4
			steps := 0
			for i := 0; i < b.N; i++ {
				out, err := RunRounds(n, f, rounds, Config{Chooser: Seeded(int64(i))}, nil)
				if err != nil {
					b.Fatal(err)
				}
				steps += out.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N)/rounds, "netops/round")
		})
	}
}
