// Package msgnet provides an asynchronous message-passing substrate: the
// system model of §2 item 3 (and the base of the §2 item 4 emulation of
// shared memory by message passing when 2f < n).
//
// Each process runs as a goroutine and interacts with the network only
// through Node.Send / Node.Broadcast / Node.Recv. A cooperative scheduler
// serializes the steps and plays the asynchrony adversary: it chooses which
// process steps next and, on a receive, which in-flight message (per-link
// FIFO) is delivered. Crashes stop a process after a configured number of
// steps; its in-flight messages remain deliverable, as in the standard
// crash model.
package msgnet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrCrashed is returned from a network operation once the scheduler has
// crashed the calling process. Bodies must propagate it and return.
var ErrCrashed = errors.New("msgnet: process crashed")

// ErrMaxSteps is returned by Run when the step budget is exhausted.
var ErrMaxSteps = errors.New("msgnet: step budget exhausted")

// ErrDeadlock is returned by Run when every live process is blocked on an
// empty mailbox — e.g. when more than f processes crash under an
// f-resilient round protocol.
var ErrDeadlock = errors.New("msgnet: all live processes blocked on receive")

// Envelope is a delivered message.
type Envelope struct {
	From    core.PID
	To      core.PID
	Payload core.Value
}

// Chooser picks among scheduling options: it is called with the global step
// number and a sorted option list (process IDs when picking who steps,
// sender IDs when picking which queued message a receive returns) and
// returns an index into the list.
type Chooser func(step int, options []core.PID) int

// Seeded returns a deterministic pseudo-random chooser.
func Seeded(seed int64) Chooser {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	return func(step int, options []core.PID) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 2685821657736338717 >> 33) % uint64(len(options)))
	}
}

// Body is the protocol code one process runs.
type Body func(nd *Node) (core.Value, error)

// Config tunes an execution.
type Config struct {
	// Chooser plays the asynchrony adversary; nil means Seeded(1).
	Chooser Chooser

	// Crash maps a process to the number of network operations it
	// completes before crashing.
	Crash map[core.PID]int

	// MaxSteps bounds total scheduled operations; 0 means 1<<20.
	MaxSteps int

	// Observer, when non-nil, receives one obs event per scheduled
	// operation ("msgnet.send", "msgnet.recv"), per crash
	// ("msgnet.crash"), per abnormal stop ("msgnet.deadlock",
	// "msgnet.maxsteps") and a final "msgnet.done". Substrate events use
	// round -1: the asynchronous network has steps, not rounds.
	Observer obs.Observer
}

// Outcome reports a finished execution.
type Outcome struct {
	Values  map[core.PID]core.Value
	Errs    map[core.PID]error
	Steps   int
	Crashed core.Set
}

// Node is one process's handle to the network.
type Node struct {
	// Me is this process's identity.
	Me core.PID

	// N is the number of processes.
	N int

	events chan<- procEvent
	reply  chan result
	clock  int
}

// Clock returns the global scheduler step at which the node's most recent
// operation executed — a logical timestamp usable for linearizability
// checking. It is only meaningful between the node's own operations.
func (nd *Node) Clock() int { return nd.clock }

type opKind int

const (
	opSend opKind = iota + 1
	opRecv
)

type request struct {
	pid   core.PID
	kind  opKind
	env   Envelope
	reply chan result
}

type result struct {
	env  Envelope
	step int
	err  error
}

type procEvent struct {
	pid core.PID
	req *request
	out core.Value
	err error
}

// Send queues a message to process to. Delivery order is per-link FIFO but
// cross-link order is up to the adversary.
func (nd *Node) Send(to core.PID, payload core.Value) error {
	if to < 0 || int(to) >= nd.N {
		return fmt.Errorf("msgnet: send to invalid process %d", to)
	}
	_, err := nd.do(&request{pid: nd.Me, kind: opSend,
		env: Envelope{From: nd.Me, To: to, Payload: payload}})
	return err
}

// Broadcast sends payload to every process including the sender, as n
// individual Send steps (a crash mid-broadcast yields a partial broadcast,
// exactly the send-omission behaviour of the crash model).
func (nd *Node) Broadcast(payload core.Value) error {
	for i := 0; i < nd.N; i++ {
		if err := nd.Send(core.PID(i), payload); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks until the adversary delivers some in-flight message addressed
// to the caller and returns it.
func (nd *Node) Recv() (Envelope, error) {
	res, err := nd.do(&request{pid: nd.Me, kind: opRecv})
	if err != nil {
		return Envelope{}, err
	}
	return res.env, nil
}

func (nd *Node) do(req *request) (result, error) {
	req.reply = nd.reply
	nd.events <- procEvent{pid: nd.Me, req: req}
	res := <-nd.reply
	if res.err == nil {
		nd.clock = res.step
	}
	return res, res.err
}

// mailbox holds per-link FIFO queues of undelivered payloads for one
// receiver.
type mailbox struct {
	queues map[core.PID][]core.Value
}

func (m *mailbox) push(from core.PID, payload core.Value) {
	if m.queues == nil {
		m.queues = make(map[core.PID][]core.Value)
	}
	m.queues[from] = append(m.queues[from], payload)
}

func (m *mailbox) senders() []core.PID {
	out := make([]core.PID, 0, len(m.queues))
	for from, q := range m.queues {
		if len(q) > 0 {
			out = append(out, from)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *mailbox) pop(from core.PID) core.Value {
	q := m.queues[from]
	v := q[0]
	if len(q) == 1 {
		delete(m.queues, from)
	} else {
		m.queues[from] = q[1:]
	}
	return v
}

// Run executes body at every process under the configured adversary and
// returns once every body has returned. Goroutines never leak: on crash,
// deadlock, or step overflow every blocked operation is failed with
// ErrCrashed so bodies unwind, and Run waits for them all.
func Run(n int, cfg Config, body Body) (*Outcome, error) {
	if n <= 0 {
		return nil, fmt.Errorf("msgnet: invalid process count %d", n)
	}
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = Seeded(1)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}

	events := make(chan procEvent)
	for i := 0; i < n; i++ {
		nd := &Node{Me: core.PID(i), N: n, events: events, reply: make(chan result, 1)}
		go func() {
			out, err := body(nd)
			events <- procEvent{pid: nd.Me, out: out, err: err}
		}()
	}

	out := &Outcome{
		Values:  make(map[core.PID]core.Value, n),
		Errs:    make(map[core.PID]error),
		Crashed: core.NewSet(n),
	}
	boxes := make([]mailbox, n)
	pending := make(map[core.PID]*request, n)
	opsDone := make(map[core.PID]int, n)
	finished := 0
	computing := n
	step := 0
	var abort error // once set, all further ops fail so bodies unwind

	for finished < n {
		for computing > 0 {
			ev := <-events
			computing--
			if ev.req != nil {
				pending[ev.pid] = ev.req
				continue
			}
			finished++
			if ev.err != nil {
				out.Errs[ev.pid] = ev.err
			} else {
				out.Values[ev.pid] = ev.out
			}
		}
		if finished == n {
			break
		}

		// Runnable: pending senders, plus pending receivers with mail.
		runnable := make([]core.PID, 0, len(pending))
		for pid, req := range pending {
			if abort != nil {
				runnable = append(runnable, pid)
				continue
			}
			if req.kind == opSend || len(boxes[pid].senders()) > 0 {
				runnable = append(runnable, pid)
			}
		}
		sort.Slice(runnable, func(i, j int) bool { return runnable[i] < runnable[j] })
		if len(runnable) == 0 {
			abort = ErrDeadlock
			continue
		}

		var pick core.PID
		if abort != nil {
			pick = runnable[0]
		} else {
			idx := chooser(step, runnable)
			if idx < 0 || idx >= len(runnable) {
				return nil, fmt.Errorf("msgnet: chooser returned %d for %d options", idx, len(runnable))
			}
			pick = runnable[idx]
		}
		req := pending[pick]
		delete(pending, pick)

		limit, hasLimit := cfg.Crash[pick]
		switch {
		case abort != nil, hasLimit && opsDone[pick] >= limit:
			if abort == nil {
				out.Crashed.Add(pick)
				if ob := cfg.Observer; ob != nil {
					ob.Event("msgnet.crash", -1, int(pick), map[string]any{"ops": opsDone[pick], "step": step})
				}
			}
			req.reply <- result{err: ErrCrashed}
		case req.kind == opSend:
			boxes[req.env.To].push(req.env.From, req.env.Payload)
			opsDone[pick]++
			if ob := cfg.Observer; ob != nil {
				ob.Event("msgnet.send", -1, int(pick), map[string]any{"to": int(req.env.To), "step": step})
			}
			req.reply <- result{step: step}
		default: // opRecv with mail available
			senders := boxes[pick].senders()
			sIdx := chooser(step, senders)
			if sIdx < 0 || sIdx >= len(senders) {
				return nil, fmt.Errorf("msgnet: chooser returned %d for %d senders", sIdx, len(senders))
			}
			from := senders[sIdx]
			payload := boxes[pick].pop(from)
			opsDone[pick]++
			if ob := cfg.Observer; ob != nil {
				ob.Event("msgnet.recv", -1, int(pick), map[string]any{"from": int(from), "step": step})
			}
			req.reply <- result{env: Envelope{From: from, To: pick, Payload: payload}, step: step}
		}
		computing++
		step++
		if step > maxSteps && abort == nil {
			abort = ErrMaxSteps
		}
	}
	out.Steps = step
	if ob := cfg.Observer; ob != nil {
		switch abort {
		case ErrDeadlock:
			ob.Event("msgnet.deadlock", -1, -1, map[string]any{"step": step})
		case ErrMaxSteps:
			ob.Event("msgnet.maxsteps", -1, -1, map[string]any{"step": step})
		}
		ob.Event("msgnet.done", -1, -1, map[string]any{"steps": step, "crashed": out.Crashed.Count()})
	}
	if abort != nil {
		return out, abort
	}
	return out, nil
}
