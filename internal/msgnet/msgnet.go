// Package msgnet provides an asynchronous message-passing substrate: the
// system model of §2 item 3 (and the base of the §2 item 4 emulation of
// shared memory by message passing when 2f < n).
//
// Each process runs as a goroutine and interacts with the network only
// through Node.Send / Node.Broadcast / Node.Recv / Node.RecvTimeout. A
// cooperative scheduler serializes the steps and plays the asynchrony
// adversary: it chooses which process steps next and, on a receive, which
// in-flight message (per-link FIFO) is delivered. Crashes stop a process
// after a configured number of steps; its in-flight messages remain
// deliverable, as in the standard crash model.
//
// Link-level faults are injected through Config.Faults: a FaultInjector may
// drop, duplicate, or delay any sent message (the elementary behaviours from
// which the Heard-Of line of work derives round predicates). Delayed copies
// break per-link FIFO by design — that is the reordering fault. The loopback
// link (a process sending to itself) is never subjected to injection.
//
// Time is the scheduler step counter. When every live process is blocked but
// a delayed message or a receive deadline is pending, the scheduler
// fast-forwards the step clock to the next such event instead of declaring a
// deadlock; a deadlock is reported (as a *DeadlockError carrying the blocked
// processes and the per-link in-flight message counts) only when no future
// event can unblock anyone.
package msgnet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrCrashed is returned from a network operation once the scheduler has
// crashed the calling process. Bodies must propagate it and return.
var ErrCrashed = errors.New("msgnet: process crashed")

// ErrMaxSteps is the sentinel matched (via errors.Is) by the *StepLimitError
// Run returns when the step budget is exhausted.
var ErrMaxSteps = errors.New("msgnet: step budget exhausted")

// ErrDeadlock is the sentinel matched (via errors.Is) by the *DeadlockError
// Run returns when every live process is blocked on an empty mailbox — e.g.
// when more than f processes crash under an f-resilient round protocol.
var ErrDeadlock = errors.New("msgnet: all live processes blocked on receive")

// LinkLoad counts undelivered in-flight messages on one directed link.
type LinkLoad struct {
	From, To core.PID
	Queued   int
}

// DeadlockError reports a deadlocked execution with enough context to
// diagnose it: which processes were blocked on an empty mailbox and where
// the undelivered messages were queued (necessarily at processes that had
// already returned or crashed — a blocked receiver's mailbox is empty by
// definition). It matches ErrDeadlock under errors.Is.
type DeadlockError struct {
	// Step is the scheduler step at which the deadlock was detected.
	Step int

	// Blocked lists the processes waiting on an empty mailbox, ascending.
	Blocked []core.PID

	// InFlight lists the non-empty directed link queues, sorted by
	// (From, To). Empty when no message was left undelivered.
	InFlight []LinkLoad
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgnet: deadlock at step %d: processes %v blocked on receive", e.Step, e.Blocked)
	if len(e.InFlight) == 0 {
		b.WriteString("; no messages in flight")
	} else {
		b.WriteString("; in-flight:")
		for _, l := range e.InFlight {
			fmt.Fprintf(&b, " p%d→p%d:%d", l.From, l.To, l.Queued)
		}
	}
	return b.String()
}

// Is reports that a DeadlockError is an ErrDeadlock, so existing
// errors.Is(err, ErrDeadlock) checks keep working.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// StepLimitError reports an execution that exhausted its step budget, with
// the processes that still had operations pending. It matches ErrMaxSteps
// under errors.Is.
type StepLimitError struct {
	// Steps is the configured budget that was exceeded.
	Steps int

	// Pending lists the processes with an operation outstanding when the
	// budget ran out, ascending.
	Pending []core.PID
}

// Error implements error.
func (e *StepLimitError) Error() string {
	return fmt.Sprintf("msgnet: step budget %d exhausted with processes %v still pending", e.Steps, e.Pending)
}

// Is reports that a StepLimitError is an ErrMaxSteps.
func (e *StepLimitError) Is(target error) bool { return target == ErrMaxSteps }

// Envelope is a delivered message.
type Envelope struct {
	From    core.PID
	To      core.PID
	Payload core.Value
}

// Chooser picks among scheduling options: it is called with the global step
// number and a sorted option list (process IDs when picking who steps,
// sender IDs when picking which queued message a receive returns) and
// returns an index into the list.
type Chooser func(step int, options []core.PID) int

// Seeded returns a deterministic pseudo-random chooser.
func Seeded(seed int64) Chooser {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	return func(step int, options []core.PID) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 2685821657736338717 >> 33) % uint64(len(options)))
	}
}

// FaultAction describes what the network does with one sent message: one
// copy is queued per entry of Deliveries, each held back that many scheduler
// steps (0 or less means immediate). An empty Deliveries drops the message.
type FaultAction struct {
	Deliveries []int

	// Reason tags a drop for observability ("drop", "omission",
	// "partition"); ignored when the message is delivered.
	Reason string
}

// DeliverNow is the fault-free action: one immediate copy.
func DeliverNow() FaultAction { return FaultAction{Deliveries: []int{0}} }

// FaultInjector decides the fate of each sent message. The scheduler calls
// OnSend exactly once per send operation, in execution order, and never for
// the loopback link (from == to). Implementations must be deterministic for
// a fixed seed so executions replay exactly.
type FaultInjector interface {
	OnSend(step int, from, to core.PID) FaultAction
}

// Body is the protocol code one process runs.
type Body func(nd *Node) (core.Value, error)

// Config tunes an execution.
type Config struct {
	// Chooser plays the asynchrony adversary; nil means Seeded(1).
	Chooser Chooser

	// Crash maps a process to the number of network operations it
	// completes before crashing.
	Crash map[core.PID]int

	// Restart maps a crashed process to the number of scheduler steps
	// after its crash at which a fresh incarnation is spawned (values < 1
	// are treated as 1). The new incarnation runs the same Body with
	// Node.Incarnation = 2 and the same process identity — the fresh node
	// is bound to the old pid, as a supervised restart re-binds a process
	// to its address. Its operation counter restarts from zero and it is
	// not crashed again. Messages queued for the process while it was down
	// are lost (the mailbox is cleared at spawn); injected-delay copies
	// released after the restart still deliver, as in-flight packets do.
	// Processes without a Crash entry never restart.
	Restart map[core.PID]int

	// MaxSteps bounds total scheduled operations; 0 means 1<<20.
	MaxSteps int

	// Faults, when non-nil, injects link-level faults (drop, duplicate,
	// delay) into every non-loopback send.
	Faults FaultInjector

	// Observer, when non-nil, receives one obs event per scheduled
	// operation ("msgnet.send", "msgnet.recv", "msgnet.timeout"), per
	// injected fault ("faultnet.drop", "faultnet.dup", "faultnet.delay"),
	// per virtual-time jump ("msgnet.advance"), per crash ("msgnet.crash"),
	// per abnormal stop ("msgnet.deadlock", "msgnet.maxsteps") and a final
	// "msgnet.done". Substrate events use round -1: the asynchronous
	// network has steps, not rounds.
	Observer obs.Observer
}

// Outcome reports a finished execution.
type Outcome struct {
	// Values and Errs record each process's final return; for a restarted
	// process the latest incarnation's return wins, and the superseded
	// incarnation's ErrCrashed unwind is not recorded.
	Values map[core.PID]core.Value
	Errs   map[core.PID]error
	Steps  int

	// Crashed holds every process that crashed, including ones later
	// restarted; Restarted holds the subset that got a fresh incarnation.
	Crashed   core.Set
	Restarted core.Set
}

// Node is one process's handle to the network.
type Node struct {
	// Me is this process's identity.
	Me core.PID

	// N is the number of processes.
	N int

	// Incarnation is 1 for the original process and 2 for the fresh
	// incarnation spawned by Config.Restart. Bodies use it to tell a
	// recovery path from a boot path.
	Incarnation int

	events chan<- procEvent
	reply  chan result
	clock  int
}

// Clock returns the global scheduler step at which the node's most recent
// operation executed — a logical timestamp usable for linearizability
// checking and for step-driven timeouts. It is only meaningful between the
// node's own operations.
func (nd *Node) Clock() int { return nd.clock }

type opKind int

const (
	opSend opKind = iota + 1
	opRecv
	opRecvTimeout
)

type request struct {
	pid      core.PID
	kind     opKind
	env      Envelope
	deadline int // absolute step bound for opRecvTimeout
	reply    chan result
}

type result struct {
	env      Envelope
	step     int
	timedOut bool
	err      error
}

type procEvent struct {
	pid core.PID
	req *request
	out core.Value
	err error
}

// Send queues a message to process to. Delivery order is per-link FIFO but
// cross-link order is up to the adversary (and injected delays may reorder
// even a single link).
func (nd *Node) Send(to core.PID, payload core.Value) error {
	if to < 0 || int(to) >= nd.N {
		return fmt.Errorf("msgnet: send to invalid process %d", to)
	}
	_, err := nd.do(&request{pid: nd.Me, kind: opSend,
		env: Envelope{From: nd.Me, To: to, Payload: payload}})
	return err
}

// Broadcast sends payload to every process including the sender, as n
// individual Send steps (a crash mid-broadcast yields a partial broadcast,
// exactly the send-omission behaviour of the crash model).
func (nd *Node) Broadcast(payload core.Value) error {
	for i := 0; i < nd.N; i++ {
		if err := nd.Send(core.PID(i), payload); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks until the adversary delivers some in-flight message addressed
// to the caller and returns it.
func (nd *Node) Recv() (Envelope, error) {
	res, err := nd.do(&request{pid: nd.Me, kind: opRecv})
	if err != nil {
		return Envelope{}, err
	}
	return res.env, nil
}

// RecvTimeout is Recv with a deadline: it returns a message and true, or —
// once the scheduler's step clock reaches the absolute step deadline with
// the caller's mailbox still empty — false. A successful delivery always
// wins over an expired deadline. The timeout itself consumes one scheduled
// operation, so the caller's Clock advances.
//
// Deadlines are what let retry/timeout protocols run on the asynchronous
// substrate without wall time: time is the step counter, and the scheduler
// fast-forwards it when every process is waiting.
func (nd *Node) RecvTimeout(deadline int) (Envelope, bool, error) {
	res, err := nd.do(&request{pid: nd.Me, kind: opRecvTimeout, deadline: deadline})
	if err != nil {
		return Envelope{}, false, err
	}
	if res.timedOut {
		return Envelope{}, false, nil
	}
	return res.env, true, nil
}

func (nd *Node) do(req *request) (result, error) {
	req.reply = nd.reply
	nd.events <- procEvent{pid: nd.Me, req: req}
	res := <-nd.reply
	if res.err == nil {
		nd.clock = res.step
	}
	return res, res.err
}

// mailbox holds per-link FIFO queues of undelivered payloads for one
// receiver.
type mailbox struct {
	queues map[core.PID][]core.Value
}

func (m *mailbox) push(from core.PID, payload core.Value) {
	if m.queues == nil {
		m.queues = make(map[core.PID][]core.Value)
	}
	m.queues[from] = append(m.queues[from], payload)
}

func (m *mailbox) senders() []core.PID {
	out := make([]core.PID, 0, len(m.queues))
	for from, q := range m.queues {
		if len(q) > 0 {
			out = append(out, from)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *mailbox) pop(from core.PID) core.Value {
	q := m.queues[from]
	v := q[0]
	if len(q) == 1 {
		delete(m.queues, from)
	} else {
		m.queues[from] = q[1:]
	}
	return v
}

// delayedMsg is an in-flight copy held back by an injected delay.
type delayedMsg struct {
	release int // step at which the copy joins the receiver's mailbox
	env     Envelope
}

// restartEvent is a supervised restart scheduled for a crashed process.
type restartEvent struct {
	at  int // step at which the fresh incarnation spawns
	pid core.PID
}

// Run executes body at every process under the configured adversary and
// returns once every body has returned. Goroutines never leak: on crash,
// deadlock, or step overflow every blocked operation is failed with
// ErrCrashed so bodies unwind, and Run waits for them all.
func Run(n int, cfg Config, body Body) (*Outcome, error) {
	if n <= 0 {
		return nil, fmt.Errorf("msgnet: invalid process count %d", n)
	}
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = Seeded(1)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	ob := cfg.Observer

	events := make(chan procEvent)
	spawn := func(pid core.PID, incarnation int) {
		nd := &Node{Me: pid, N: n, Incarnation: incarnation, events: events, reply: make(chan result, 1)}
		go func() {
			out, err := body(nd)
			events <- procEvent{pid: nd.Me, out: out, err: err}
		}()
	}
	for i := 0; i < n; i++ {
		spawn(core.PID(i), 1)
	}

	out := &Outcome{
		Values:    make(map[core.PID]core.Value, n),
		Errs:      make(map[core.PID]error),
		Crashed:   core.NewSet(n),
		Restarted: core.NewSet(n),
	}
	boxes := make([]mailbox, n)
	var delayed []delayedMsg
	var restarts []restartEvent
	restarted := make(map[core.PID]bool) // restart scheduled or spawned
	returns := make(map[core.PID]int, n)
	pending := make(map[core.PID]*request, n)
	opsDone := make(map[core.PID]int, n)
	finished := 0
	total := n // bodies that must return: n plus one per restart
	computing := n
	step := 0
	var abort error // once set, all further ops fail so bodies unwind

	for finished < total {
		for computing > 0 {
			ev := <-events
			computing--
			if ev.req != nil {
				pending[ev.pid] = ev.req
				continue
			}
			finished++
			returns[ev.pid]++
			if errors.Is(ev.err, ErrCrashed) && restarted[ev.pid] && returns[ev.pid] == 1 {
				// The crashed incarnation unwound; its restart supersedes
				// it, so record nothing.
			} else if ev.err != nil {
				out.Errs[ev.pid] = ev.err
				delete(out.Values, ev.pid)
			} else {
				out.Values[ev.pid] = ev.out
				delete(out.Errs, ev.pid)
			}
		}
		if finished == total {
			break
		}

		// Release delayed copies whose time has come, in (release step,
		// send order) — the stable sort preserves insertion order among
		// equal release steps.
		if len(delayed) > 0 {
			sort.SliceStable(delayed, func(i, j int) bool { return delayed[i].release < delayed[j].release })
			k := 0
			for k < len(delayed) && delayed[k].release <= step {
				boxes[delayed[k].env.To].push(delayed[k].env.From, delayed[k].env.Payload)
				k++
			}
			delayed = delayed[k:]
		}

		// Spawn due restarts (all of them when aborting, so every body
		// unwinds and the run terminates). The dead incarnation's queued
		// mail is discarded: messages addressed to a down process are lost.
		if len(restarts) > 0 {
			keep := restarts[:0]
			spawned := false
			for _, rs := range restarts {
				if abort == nil && rs.at > step {
					keep = append(keep, rs)
					continue
				}
				boxes[rs.pid] = mailbox{}
				opsDone[rs.pid] = 0
				out.Restarted.Add(rs.pid)
				if ob != nil {
					ob.Event("msgnet.restart", -1, int(rs.pid), map[string]any{"step": step, "incarnation": 2})
				}
				spawn(rs.pid, 2)
				computing++
				spawned = true
			}
			restarts = keep
			if spawned {
				continue // drain the new incarnation's first event
			}
		}

		// Runnable: pending senders, pending receivers with mail, and
		// timed receivers whose deadline has passed.
		runnable := make([]core.PID, 0, len(pending))
		for pid, req := range pending {
			if abort != nil {
				runnable = append(runnable, pid)
				continue
			}
			switch {
			case req.kind == opSend:
				runnable = append(runnable, pid)
			case len(boxes[pid].senders()) > 0:
				runnable = append(runnable, pid)
			case req.kind == opRecvTimeout && step >= req.deadline:
				runnable = append(runnable, pid)
			}
		}
		sort.Slice(runnable, func(i, j int) bool { return runnable[i] < runnable[j] })
		if len(runnable) == 0 {
			// Nobody can act now; fast-forward virtual time to the next
			// delayed release, receive deadline, or scheduled restart.
			next := -1
			for _, dm := range delayed {
				if next < 0 || dm.release < next {
					next = dm.release
				}
			}
			for _, req := range pending {
				if req.kind == opRecvTimeout && (next < 0 || req.deadline < next) {
					next = req.deadline
				}
			}
			for _, rs := range restarts {
				if next < 0 || rs.at < next {
					next = rs.at
				}
			}
			if next > step {
				if ob != nil {
					ob.Event("msgnet.advance", -1, -1, map[string]any{"from": step, "to": next})
				}
				step = next
				if step > maxSteps {
					abort = &StepLimitError{Steps: maxSteps, Pending: pendingPIDs(pending)}
				}
				continue
			}
			abort = newDeadlockError(step, pending, boxes)
			continue
		}

		var pick core.PID
		if abort != nil {
			pick = runnable[0]
		} else {
			idx := chooser(step, runnable)
			if idx < 0 || idx >= len(runnable) {
				return nil, fmt.Errorf("msgnet: chooser returned %d for %d options", idx, len(runnable))
			}
			pick = runnable[idx]
		}
		req := pending[pick]
		delete(pending, pick)

		limit, hasLimit := cfg.Crash[pick]
		switch {
		case abort != nil, hasLimit && !restarted[pick] && opsDone[pick] >= limit:
			if abort == nil {
				out.Crashed.Add(pick)
				if ob != nil {
					ob.Event("msgnet.crash", -1, int(pick), map[string]any{"ops": opsDone[pick], "step": step})
				}
				if delay, ok := cfg.Restart[pick]; ok {
					if delay < 1 {
						delay = 1
					}
					restarts = append(restarts, restartEvent{at: step + delay, pid: pick})
					restarted[pick] = true
					total++
				}
			}
			req.reply <- result{err: ErrCrashed}
		case req.kind == opSend:
			act := DeliverNow()
			if cfg.Faults != nil && req.env.From != req.env.To {
				act = cfg.Faults.OnSend(step, req.env.From, req.env.To)
			}
			opsDone[pick]++
			if ob != nil {
				ob.Event("msgnet.send", -1, int(pick), map[string]any{"to": int(req.env.To), "step": step})
			}
			if len(act.Deliveries) == 0 {
				if ob != nil {
					reason := act.Reason
					if reason == "" {
						reason = "drop"
					}
					ob.Event("faultnet.drop", -1, int(pick), map[string]any{"to": int(req.env.To), "reason": reason, "step": step})
				}
			} else {
				maxDelay := 0
				for _, d := range act.Deliveries {
					if d <= 0 {
						boxes[req.env.To].push(req.env.From, req.env.Payload)
					} else {
						delayed = append(delayed, delayedMsg{release: step + d, env: req.env})
						if d > maxDelay {
							maxDelay = d
						}
					}
				}
				if ob != nil {
					if len(act.Deliveries) > 1 {
						ob.Event("faultnet.dup", -1, int(pick), map[string]any{"to": int(req.env.To), "copies": len(act.Deliveries), "step": step})
					}
					if maxDelay > 0 {
						ob.Event("faultnet.delay", -1, int(pick), map[string]any{"to": int(req.env.To), "delay": maxDelay, "step": step})
					}
				}
			}
			req.reply <- result{step: step}
		default: // opRecv / opRecvTimeout
			senders := boxes[pick].senders()
			if len(senders) == 0 {
				// Only an expired opRecvTimeout is scheduled with an
				// empty mailbox: the deadline fires.
				opsDone[pick]++
				if ob != nil {
					ob.Event("msgnet.timeout", -1, int(pick), map[string]any{"deadline": req.deadline, "step": step})
				}
				req.reply <- result{step: step, timedOut: true}
				break
			}
			sIdx := chooser(step, senders)
			if sIdx < 0 || sIdx >= len(senders) {
				return nil, fmt.Errorf("msgnet: chooser returned %d for %d senders", sIdx, len(senders))
			}
			from := senders[sIdx]
			payload := boxes[pick].pop(from)
			opsDone[pick]++
			if ob != nil {
				ob.Event("msgnet.recv", -1, int(pick), map[string]any{"from": int(from), "step": step})
			}
			req.reply <- result{env: Envelope{From: from, To: pick, Payload: payload}, step: step}
		}
		computing++
		step++
		if step > maxSteps && abort == nil {
			abort = &StepLimitError{Steps: maxSteps, Pending: pendingPIDs(pending)}
		}
	}
	out.Steps = step
	if ob != nil {
		switch {
		case errors.Is(abort, ErrDeadlock):
			ob.Event("msgnet.deadlock", -1, -1, map[string]any{"step": step})
		case errors.Is(abort, ErrMaxSteps):
			ob.Event("msgnet.maxsteps", -1, -1, map[string]any{"step": step})
		}
		ob.Event("msgnet.done", -1, -1, map[string]any{"steps": step, "crashed": out.Crashed.Count()})
	}
	if abort != nil {
		return out, abort
	}
	return out, nil
}

// pendingPIDs lists the processes with an outstanding request, ascending.
func pendingPIDs(pending map[core.PID]*request) []core.PID {
	out := make([]core.PID, 0, len(pending))
	for pid := range pending {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// newDeadlockError snapshots the blocked processes and the per-link
// in-flight counts at the moment of deadlock.
func newDeadlockError(step int, pending map[core.PID]*request, boxes []mailbox) *DeadlockError {
	e := &DeadlockError{Step: step, Blocked: pendingPIDs(pending)}
	for to := range boxes {
		for from, q := range boxes[to].queues {
			if len(q) > 0 {
				e.InFlight = append(e.InFlight, LinkLoad{From: from, To: core.PID(to), Queued: len(q)})
			}
		}
	}
	sort.Slice(e.InFlight, func(i, j int) bool {
		if e.InFlight[i].From != e.InFlight[j].From {
			return e.InFlight[i].From < e.InFlight[j].From
		}
		return e.InFlight[i].To < e.InFlight[j].To
	})
	return e
}
