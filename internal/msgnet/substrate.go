package msgnet

import "repro/internal/core"

// Substrate is the node-facing surface of a message-passing substrate:
// everything a protocol body needs, and nothing about how the messages
// actually move. The virtual-clock scheduler of this package implements
// it with steps; internal/netsub implements it with length-prefixed
// frames over real net.Conn and a millisecond clock. Protocol bodies
// written against Substrate run unchanged on either.
//
// Clock semantics are substrate-relative: Clock returns ticks (scheduler
// steps here, milliseconds since node start on the network), and the
// deadline passed to RecvTimeout is an absolute tick on the same clock.
// What a body may assume is only monotonicity — which is exactly what a
// round watchdog needs to degrade a stalled round into D(i,r) suspicions
// on either substrate.
type Substrate interface {
	// PID is this process's identity.
	PID() core.PID

	// Size is the number of processes.
	Size() int

	// Clock is the substrate's monotonic tick counter.
	Clock() int

	// Send queues a message to process to.
	Send(to core.PID, payload core.Value) error

	// Broadcast sends payload to every process including the sender.
	Broadcast(payload core.Value) error

	// Recv blocks until some message addressed to the caller arrives.
	Recv() (Envelope, error)

	// RecvTimeout is Recv bounded by an absolute tick deadline: it
	// returns a message and true, or false once the clock passes the
	// deadline with nothing delivered.
	RecvTimeout(deadline int) (Envelope, bool, error)
}

// PID implements Substrate (the Me field remains the idiomatic accessor
// for code that knows it has a *Node).
func (nd *Node) PID() core.PID { return nd.Me }

// Size implements Substrate.
func (nd *Node) Size() int { return nd.N }

var _ Substrate = (*Node)(nil)

// RoundRec is one process's record of a round-protocol execution: its
// per-round suspect sets (D(i,r)) and views (S(i,r) with payloads). Every
// round runner — the unreliable protocol here, reliablelink's watchdogged
// one, netsub's wall-clock one — fills one RoundRec per process and hands
// them to AssembleRoundOutcome.
type RoundRec struct {
	Dsets []core.Set
	Views []map[core.PID]core.Value
}

// AssembleRoundOutcome builds the induced RRFD trace from per-process
// round records: Active at round r is every process with an r-th record,
// Suspects[i] is its D(i,r), Deliver[i] the complement, and a process
// that stopped recording is marked Crashed when the substrate crashed it.
// Trace assembly stops at the first round nobody completed. Nil entries
// of recs are treated as empty records.
func AssembleRoundOutcome(n, rounds int, recs []*RoundRec, crashed core.Set, steps int) *RoundOutcome {
	res := &RoundOutcome{
		Trace:   core.NewTrace(n),
		Views:   make(map[core.PID][]map[core.PID]core.Value, n),
		Crashed: crashed,
		Steps:   steps,
	}
	empty := &RoundRec{}
	rec := func(i int) *RoundRec {
		if recs[i] == nil {
			return empty
		}
		return recs[i]
	}
	for i := 0; i < n; i++ {
		res.Views[core.PID(i)] = rec(i).Views
	}
	for r := 1; r <= rounds; r++ {
		rr := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if len(rec(i).Dsets) >= r {
				rr.Active.Add(pid)
				rr.Suspects[i] = rec(i).Dsets[r-1]
				rr.Deliver[i] = rec(i).Dsets[r-1].Complement()
			} else {
				rr.Suspects[i] = core.NewSet(n)
				rr.Deliver[i] = core.NewSet(n)
				if crashed.Has(pid) {
					rr.Crashed.Add(pid)
				}
			}
		}
		if rr.Active.Empty() {
			break
		}
		res.Trace.Append(rr)
	}
	return res
}
