package msgnet

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestRestartFreshIncarnation crashes p0 after two operations and checks
// that a second incarnation spawns with the same pid, a reset operation
// budget, and Incarnation 2 — and that its return value supersedes the
// crashed incarnation's unwind.
func TestRestartFreshIncarnation(t *testing.T) {
	const n = 3
	out, err := Run(n, Config{
		Crash:   map[core.PID]int{0: 2},
		Restart: map[core.PID]int{0: 5},
	}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 && nd.Incarnation == 1 {
			// Burn operations until the crash fires.
			for {
				if err := nd.Send(1, "from-first-life"); err != nil {
					return nil, err
				}
			}
		}
		if nd.Me == 0 {
			return "second-life", nil
		}
		// Peers drain whatever arrives until timeout so the run ends.
		for {
			if _, ok, err := nd.RecvTimeout(nd.Clock() + 50); err != nil {
				return nil, err
			} else if !ok {
				return "peer-done", nil
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !out.Crashed.Has(0) {
		t.Fatalf("p0 not recorded as crashed: %s", out.Crashed)
	}
	if !out.Restarted.Has(0) {
		t.Fatalf("p0 not recorded as restarted: %s", out.Restarted)
	}
	if out.Values[0] != "second-life" {
		t.Fatalf("p0 final value %v, want second-life", out.Values[0])
	}
	if e, ok := out.Errs[0]; ok {
		t.Fatalf("p0 still has error %v after restart", e)
	}
}

// TestRestartMailboxCleared checks amnesia at the network layer: messages
// queued for a process while it is down are lost at restart.
func TestRestartMailboxCleared(t *testing.T) {
	const n = 2
	out, err := Run(n, Config{
		Crash:   map[core.PID]int{0: 0}, // p0 crashes on its first operation
		Restart: map[core.PID]int{0: 100},
	}, func(nd *Node) (core.Value, error) {
		if nd.Me == 1 {
			// Send to p0 while it is down, then exit.
			if err := nd.Send(0, "lost"); err != nil {
				return nil, err
			}
			return "sender-done", nil
		}
		if nd.Incarnation == 1 {
			// First life: the very first operation crashes.
			_, err := nd.Recv()
			return nil, err
		}
		// Second life: the pre-restart message must be gone.
		if env, ok, err := nd.RecvTimeout(nd.Clock() + 20); err != nil {
			return nil, err
		} else if ok {
			return nil, errors.New("received pre-restart message " + env.Payload.(string))
		}
		return "empty-mailbox", nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Values[0] != "empty-mailbox" {
		t.Fatalf("p0 value %v (err %v), want empty-mailbox", out.Values[0], out.Errs[0])
	}
}

// TestRestartReceivesPostRestartTraffic checks the fresh incarnation is
// re-bound to the old pid: messages sent after the restart reach it.
func TestRestartReceivesPostRestartTraffic(t *testing.T) {
	const n = 2
	out, err := Run(n, Config{
		Crash:   map[core.PID]int{0: 0},
		Restart: map[core.PID]int{0: 3},
	}, func(nd *Node) (core.Value, error) {
		if nd.Me == 1 {
			// Keep sending; early copies die with the first incarnation's
			// mailbox, later ones reach the second.
			for i := 0; i < 30; i++ {
				if err := nd.Send(0, i); err != nil {
					return nil, err
				}
			}
			return "sender-done", nil
		}
		if nd.Incarnation == 1 {
			_, err := nd.Recv()
			return nil, err
		}
		env, err := nd.Recv()
		if err != nil {
			return nil, err
		}
		return env.Payload, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, ok := out.Values[0].(int); !ok {
		t.Fatalf("restarted p0 got %v (err %v), want a post-restart int", out.Values[0], out.Errs[0])
	}
}

// TestRestartNoRestartWithoutEntry: a crashed process without a Restart
// entry stays down (the pre-restart behaviour is unchanged).
func TestRestartNoRestartWithoutEntry(t *testing.T) {
	const n = 2
	out, err := Run(n, Config{
		Crash: map[core.PID]int{0: 0},
	}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			// A send is always schedulable, so the crash fires here.
			err := nd.Send(1, "never-sent")
			return nil, err
		}
		return "alive", nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !out.Crashed.Has(0) || out.Restarted.Count() != 0 {
		t.Fatalf("crashed=%s restarted=%s", out.Crashed, out.Restarted)
	}
	if !errors.Is(out.Errs[0], ErrCrashed) {
		t.Fatalf("p0 err %v, want ErrCrashed", out.Errs[0])
	}
}

// --- RecvTimeout edge cases (the PR 2 API had only happy-path coverage) ---

// TestRecvTimeoutZeroDeadline: a deadline already in the past times out on
// the very next scheduled operation instead of blocking.
func TestRecvTimeoutZeroDeadline(t *testing.T) {
	out, err := Run(1, Config{}, func(nd *Node) (core.Value, error) {
		_, ok, err := nd.RecvTimeout(0)
		if err != nil {
			return nil, err
		}
		return ok, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Values[0] != false {
		t.Fatalf("zero deadline delivered a message: %v", out.Values[0])
	}
}

// TestRecvTimeoutDeliveryBeatsDeadline: when a message is already queued at
// the moment the expired deadline would fire, delivery wins.
func TestRecvTimeoutDeliveryBeatsDeadline(t *testing.T) {
	// Chooser always picks the lowest pid, so p0 sends before p1's expired
	// timeout is scheduled — p1's mailbox is non-empty by then.
	firstChooser := func(step int, options []core.PID) int { return 0 }
	out, err := Run(2, Config{Chooser: firstChooser}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			if err := nd.Send(1, "beat-the-clock"); err != nil {
				return nil, err
			}
			return nil, nil
		}
		env, ok, err := nd.RecvTimeout(0) // deadline long past
		if err != nil {
			return nil, err
		}
		if !ok {
			return "timed-out", nil
		}
		return env.Payload, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Values[1] != "beat-the-clock" {
		t.Fatalf("p1 got %v, want the queued message", out.Values[1])
	}
}

// TestRecvTimeoutAfterSenderCrash: a receiver waiting on a crashed sender
// times out (via virtual-time fast-forward) instead of deadlocking.
func TestRecvTimeoutAfterSenderCrash(t *testing.T) {
	out, err := Run(2, Config{
		Crash: map[core.PID]int{0: 0},
	}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			// Crashes on this first operation: the send never happens.
			err := nd.Send(1, "never-arrives")
			return nil, err
		}
		_, ok, err := nd.RecvTimeout(1000)
		if err != nil {
			return nil, err
		}
		return ok, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Values[1] != false {
		t.Fatalf("p1 got %v, want a timeout after sender crash", out.Values[1])
	}
	if !out.Crashed.Has(0) {
		t.Fatalf("p0 not crashed: %s", out.Crashed)
	}
}
