package msgnet

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/predicate"
)

func TestRunRoundsSatisfiesEq3(t *testing.T) {
	// §2 item 3: the round-enforced async system induces exactly the
	// |D(i,r)| ≤ f predicate.
	n, f, rounds := 5, 2, 4
	for seed := int64(0); seed < 20; seed++ {
		out, err := RunRounds(n, f, rounds, Config{Chooser: Seeded(seed)}, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Trace.Len() != rounds {
			t.Fatalf("seed %d: %d rounds", seed, out.Trace.Len())
		}
		if err := predicate.PerRoundBudget(f).Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out.Trace)
		}
	}
}

func TestRunRoundsSelfMessageMayBeMissed(t *testing.T) {
	// The paper allows p_i ∈ D(i,r): with f ≥ 1 some seed should show a
	// process missing its own broadcast (delivered late).
	n, f, rounds := 4, 2, 3
	sawSelfSuspect := false
	for seed := int64(0); seed < 60 && !sawSelfSuspect; seed++ {
		out, err := RunRounds(n, f, rounds, Config{Chooser: Seeded(seed)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range out.Trace.Rounds {
			rec.Active.ForEach(func(p core.PID) {
				if rec.Suspects[p].Has(p) {
					sawSelfSuspect = true
				}
			})
		}
	}
	if !sawSelfSuspect {
		t.Fatal("no execution had a process suspect itself — scheduler too tame")
	}
}

func TestRunRoundsWithCrash(t *testing.T) {
	n, f, rounds := 5, 2, 4
	out, err := RunRounds(n, f, rounds, Config{
		Chooser: Seeded(7),
		Crash:   map[core.PID]int{4: 9},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := predicate.PerRoundBudget(f).Check(out.Trace); err != nil {
		t.Fatalf("%v\n%s", err, out.Trace)
	}
	last := out.Trace.Round(rounds)
	for _, p := range []core.PID{0, 1, 2, 3} {
		if !last.Active.Has(p) {
			t.Fatalf("survivor %d did not finish round %d", p, rounds)
		}
	}
}

func TestRunRoundsPartitionWhen2fGeN(t *testing.T) {
	// The paper's remark in §2 item 4: with 2f ≥ n, round-based message
	// passing suffers "network partition" — there are executions where in
	// some round every process is suspected by someone (eq. (4) fails).
	// With n = 2, f = 1 a process can complete a round on its own
	// message alone.
	n, f := 2, 1
	gen := func(seed int64) *core.Trace {
		out, err := RunRounds(n, f, 3, Config{Chooser: Seeded(seed)}, nil)
		if err != nil {
			panic(err)
		}
		return out.Trace
	}
	if _, err := predicate.Separates(gen, predicate.PerRoundBudget(f), predicate.SomeoneSeenByAll(), 100); err != nil {
		t.Fatalf("no partition execution found: %v", err)
	}
}

func TestRunRoundsDeliversCorrectValues(t *testing.T) {
	n, f, rounds := 4, 1, 3
	emit := func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
		return int(me)*100 + r
	}
	out, err := RunRounds(n, f, rounds, Config{Chooser: Seeded(5)}, emit)
	if err != nil {
		t.Fatal(err)
	}
	for pid, views := range out.Views {
		for ri, msgs := range views {
			if len(msgs) < n-f {
				t.Fatalf("p%d round %d: only %d messages", pid, ri+1, len(msgs))
			}
			for from, v := range msgs {
				if want := int(from)*100 + ri + 1; v != want {
					t.Fatalf("p%d round %d from %d: %v, want %d", pid, ri+1, from, v, want)
				}
			}
		}
	}
}

func TestQuickRoundProperties(t *testing.T) {
	// Property-based: arbitrary small systems and schedules keep eq. (3)
	// and deliver only genuine round emissions.
	prop := func(rawN, rawF uint8, seed int64) bool {
		n := int(rawN%5) + 3
		f := int(rawF) % ((n + 1) / 2)
		emit := func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return int(me)*1000 + r
		}
		out, err := RunRounds(n, f, 3, Config{Chooser: Seeded(seed)}, emit)
		if err != nil {
			return false
		}
		if predicate.PerRoundBudget(f).Check(out.Trace) != nil {
			return false
		}
		for _, views := range out.Views {
			for ri, msgs := range views {
				for from, v := range msgs {
					if v != int(from)*1000+ri+1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRoundsRejectsTooManyCrashes(t *testing.T) {
	_, err := RunRounds(4, 1, 2, Config{Crash: map[core.PID]int{0: 0, 1: 0}}, nil)
	if err == nil {
		t.Fatal("expected rejection")
	}
}
