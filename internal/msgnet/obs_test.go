package msgnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestRunEmitsNetworkEvents(t *testing.T) {
	m := obs.NewMetrics()
	n := 3
	out, err := Run(n, Config{Observer: m}, func(nd *Node) (core.Value, error) {
		if err := nd.Broadcast("hi"); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := nd.Recv(); err != nil {
				return nil, err
			}
		}
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Values) != n {
		t.Fatalf("values: %v", out.Values)
	}
	ev := m.Snapshot().Events
	if ev["msgnet.send"] != int64(n*n) {
		t.Fatalf("sends = %d, want %d (events %v)", ev["msgnet.send"], n*n, ev)
	}
	if ev["msgnet.recv"] != int64(n*n) {
		t.Fatalf("recvs = %d, want %d", ev["msgnet.recv"], n*n)
	}
	if ev["msgnet.done"] != 1 {
		t.Fatalf("done = %d", ev["msgnet.done"])
	}
	if ev["msgnet.crash"] != 0 || ev["msgnet.deadlock"] != 0 {
		t.Fatalf("unexpected failure events: %v", ev)
	}
}

func TestRunEmitsCrashEvent(t *testing.T) {
	m := obs.NewMetrics()
	n := 3
	_, err := Run(n, Config{
		Observer: m,
		Crash:    map[core.PID]int{2: 0}, // p2's first operation crashes
	}, func(nd *Node) (core.Value, error) {
		if err := nd.Broadcast("hi"); err != nil {
			return nil, err
		}
		// Only expect messages from the two survivors.
		for i := 0; i < n-1; i++ {
			if _, err := nd.Recv(); err != nil {
				return nil, err
			}
		}
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Snapshot().Events
	if ev["msgnet.crash"] != 1 {
		t.Fatalf("crash events = %d (events %v)", ev["msgnet.crash"], ev)
	}
}
