package msgnet

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestSendRecvBasic(t *testing.T) {
	out, err := Run(2, Config{}, func(nd *Node) (core.Value, error) {
		if nd.Me == 0 {
			if err := nd.Send(1, "hello"); err != nil {
				return nil, err
			}
			return "sent", nil
		}
		env, err := nd.Recv()
		if err != nil {
			return nil, err
		}
		return env, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	env := out.Values[1].(Envelope)
	if env.From != 0 || env.To != 1 || env.Payload != "hello" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	// Messages on the same link must arrive in send order, regardless of
	// the adversary.
	for seed := int64(0); seed < 20; seed++ {
		out, err := Run(2, Config{Chooser: Seeded(seed)}, func(nd *Node) (core.Value, error) {
			if nd.Me == 0 {
				for i := 0; i < 5; i++ {
					if err := nd.Send(1, i); err != nil {
						return nil, err
					}
				}
				return nil, nil
			}
			var got []int
			for len(got) < 5 {
				env, err := nd.Recv()
				if err != nil {
					return nil, err
				}
				got = append(got, env.Payload.(int))
			}
			return got, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := out.Values[1].([]int)
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: FIFO violated: %v", seed, got)
			}
		}
	}
}

func TestCrossLinkReordering(t *testing.T) {
	// Across links the adversary may reorder: find a seed where p2 hears
	// p1 before p0 even though p0 sent first in program order.
	sawReorder := false
	for seed := int64(0); seed < 50 && !sawReorder; seed++ {
		out, err := Run(3, Config{Chooser: Seeded(seed)}, func(nd *Node) (core.Value, error) {
			switch nd.Me {
			case 0, 1:
				return nil, nd.Send(2, int(nd.Me))
			default:
				first, err := nd.Recv()
				if err != nil {
					return nil, err
				}
				return first.From, nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Values[2] == core.PID(1) {
			sawReorder = true
		}
	}
	if !sawReorder {
		t.Fatal("no seed delivered p1's message first — adversary too weak")
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	out, err := Run(3, Config{Chooser: Seeded(3)}, func(nd *Node) (core.Value, error) {
		if err := nd.Broadcast(int(nd.Me)); err != nil {
			return nil, err
		}
		seen := core.NewSet(nd.N)
		for seen.Count() < nd.N {
			env, err := nd.Recv()
			if err != nil {
				return nil, err
			}
			seen.Add(env.From)
		}
		return seen, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range out.Values {
		if !v.(core.Set).Equal(core.FullSet(3)) {
			t.Fatalf("process %d heard only %s", pid, v)
		}
	}
}

func TestCrashStopsProcess(t *testing.T) {
	out, err := Run(2, Config{Chooser: Seeded(1), Crash: map[core.PID]int{0: 1}},
		func(nd *Node) (core.Value, error) {
			if nd.Me == 0 {
				if err := nd.Send(1, "a"); err != nil {
					return nil, err
				}
				if err := nd.Send(1, "b"); err != nil {
					return nil, err
				}
				return "done", nil
			}
			env, err := nd.Recv()
			if err != nil {
				return nil, err
			}
			return env.Payload, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Errs[0], ErrCrashed) {
		t.Fatalf("p0 err = %v", out.Errs[0])
	}
	// The first send completed before the crash; in-flight messages from
	// a crashed process remain deliverable.
	if out.Values[1] != "a" {
		t.Fatalf("p1 got %v, want the in-flight message a", out.Values[1])
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(2, Config{}, func(nd *Node) (core.Value, error) {
		_, err := nd.Recv() // nobody ever sends
		return nil, err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestSendValidation(t *testing.T) {
	out, err := Run(1, Config{}, func(nd *Node) (core.Value, error) {
		return nil, nd.Send(7, "x")
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Errs[0] == nil {
		t.Fatal("send to out-of-range process must fail")
	}
}

func TestInvalidProcessCount(t *testing.T) {
	if _, err := Run(0, Config{}, func(nd *Node) (core.Value, error) { return nil, nil }); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		out, err := Run(3, Config{Chooser: Seeded(11)}, func(nd *Node) (core.Value, error) {
			if err := nd.Broadcast(int(nd.Me)); err != nil {
				return nil, err
			}
			sum := 0
			for i := 0; i < 3; i++ {
				env, err := nd.Recv()
				if err != nil {
					return nil, err
				}
				sum = sum*10 + env.Payload.(int)
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 3; i++ {
			total = total*1000 + out.Values[core.PID(i)].(int)
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
}
