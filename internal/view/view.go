// Package view implements the full-information protocol the paper leans on
// throughout: "run A in full information mode" is how §2 item 3 recreates
// FIFO receptions, how §2 item 4 emulates a write operation, and how
// Corollary 4.4 reasons about which simulated views admit a decision.
//
// In full-information mode a process's round-r message is its entire state:
// its input and everything it has received so far. The package provides the
// recursive View structure, the FullInfo algorithm producing it, knowledge
// queries over views, the §2 item 3 FIFO reconstruction, and the §2 item 4
// emulated write operation.
package view

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// View is what a process knows at the end of a round: its identity and
// input, the round, the suspect set it was handed, and the (recursive)
// views it received. A round-0 view is the initial state (input only).
type View struct {
	// Owner is the process whose knowledge this is.
	Owner core.PID

	// Round is the round at whose end this view was assembled (0 for the
	// initial view).
	Round int

	// Input is the owner's task input.
	Input core.Value

	// Suspected is D(owner, Round); empty for round 0.
	Suspected core.Set

	// Received maps each process the owner heard from in this round to
	// that process's view at the end of the previous round.
	Received map[core.PID]*View

	// Prev is the owner's own view at the end of the previous round —
	// the local state ("such a process may know the message it sent
	// through its local state", §1). Nil for round-0 views.
	Prev *View
}

// Knows reports whether the view contains process q's input — i.e. whether
// a chain of receptions (or the owner's own state chain) connects q's
// initial state to this view.
func (v *View) Knows(q core.PID) bool {
	found := false
	v.walk(func(sub *View) {
		if sub.Owner == q {
			found = true
		}
	})
	return found
}

// InputOf returns q's input if the view contains it.
func (v *View) InputOf(q core.PID) (core.Value, bool) {
	var val core.Value
	found := false
	v.walk(func(sub *View) {
		if !found && sub.Owner == q {
			val, found = sub.Input, true
		}
	})
	return val, found
}

// KnownSet returns every process whose input the view contains.
func (v *View) KnownSet(n int) core.Set {
	s := core.NewSet(n)
	v.walk(func(sub *View) { s.Add(sub.Owner) })
	return s
}

// HeardFrom returns the processes from which the owner received THIS
// round's messages (the direct receptions, not the transitive closure).
func (v *View) HeardFrom(n int) core.Set {
	s := core.NewSet(n)
	for p := range v.Received {
		s.Add(p)
	}
	return s
}

// At returns the sub-view the owner holds of process q at round r — the
// freshest view of q with Round ≤ r reachable in the reception tree, or
// nil. At(owner, v.Round) is v itself.
func (v *View) At(q core.PID, r int) *View {
	var best *View
	v.walk(func(sub *View) {
		if sub.Owner == q && sub.Round <= r && (best == nil || sub.Round > best.Round) {
			best = sub
		}
	})
	return best
}

// walk visits every view reachable from v (including v), following both
// receptions and the owner's local-state chain. Views form a DAG (the same
// sub-view may be reachable along several paths), so visits are memoized.
func (v *View) walk(fn func(*View)) {
	seen := make(map[*View]bool)
	var rec func(*View)
	rec = func(u *View) {
		if u == nil || seen[u] {
			return
		}
		seen[u] = true
		fn(u)
		rec(u.Prev)
		for _, sub := range u.Received {
			rec(sub)
		}
	}
	rec(v)
}

// String renders a compact single-line summary.
func (v *View) String() string {
	return fmt.Sprintf("view{p%d r%d knows=%d}", v.Owner, v.Round, v.countKnown())
}

func (v *View) countKnown() int {
	seen := map[core.PID]bool{}
	v.walk(func(sub *View) { seen[sub.Owner] = true })
	return len(seen)
}

// fullInfo is the full-information algorithm: each round it emits its
// current view and assembles the next from what it receives.
type fullInfo struct {
	me     core.PID
	n      int
	cur    *View
	rounds int
}

// FullInfo returns the factory for the full-information protocol, deciding
// (with its final view as the output) after the given number of rounds.
func FullInfo(rounds int) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &fullInfo{
			me: me, n: n, rounds: rounds,
			cur: &View{Owner: me, Round: 0, Input: input, Suspected: core.NewSet(n)},
		}
	}
}

func (a *fullInfo) Emit(r int) core.Message { return a.cur }

func (a *fullInfo) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	next := &View{
		Owner:     a.me,
		Round:     r,
		Input:     a.cur.Input,
		Suspected: suspects.Clone(), // suspects is engine-owned scratch
		Received:  make(map[core.PID]*View, len(msgs)),
		Prev:      a.cur,
	}
	for p, m := range msgs {
		next.Received[p] = m.(*View)
	}
	a.cur = next
	if r >= a.rounds {
		return a.cur, true
	}
	return nil, false
}

// Run executes the full-information protocol for rounds rounds under the
// oracle and returns each live process's final view.
func Run(n, rounds int, inputs []core.Value, oracle core.Oracle) (map[core.PID]*View, *core.Result, error) {
	res, err := core.Run(n, inputs, FullInfo(rounds), oracle)
	if err != nil {
		return nil, nil, err
	}
	views := make(map[core.PID]*View, len(res.Outputs))
	for p, v := range res.Outputs {
		views[p] = v.(*View)
	}
	return views, res, nil
}

// History is each process's sequence of end-of-round views, History[p][r-1]
// being p's view at the end of round r.
type History map[core.PID][]*View

// RunHistory is Run plus the per-round view history, which the FIFO
// reconstruction and the write emulation consume.
func RunHistory(n, rounds int, inputs []core.Value, oracle core.Oracle) (History, *core.Result, error) {
	recs := make([][]*View, n)
	factory := func(me core.PID, nn int, input core.Value) core.Algorithm {
		inner := FullInfo(rounds)(me, nn, input).(*fullInfo)
		return &historyAlg{inner: inner, sink: &recs[me]}
	}
	res, err := core.Run(n, inputs, factory, oracle)
	if err != nil {
		return nil, nil, err
	}
	h := make(History, n)
	for i := 0; i < n; i++ {
		h[core.PID(i)] = recs[i]
	}
	return h, res, nil
}

// historyAlg wraps fullInfo, recording the view after every round.
type historyAlg struct {
	inner *fullInfo
	sink  *[]*View
}

func (a *historyAlg) Emit(r int) core.Message { return a.inner.Emit(r) }

func (a *historyAlg) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	out, done := a.inner.Deliver(r, msgs, suspects)
	*a.sink = append(*a.sink, a.inner.cur)
	return out, done
}

// KnownByAll returns the processes whose input every one of the given views
// contains — the quantity behind §2 item 4's information-propagation
// argument.
func KnownByAll(n int, views map[core.PID]*View) core.Set {
	common := core.FullSet(n)
	pids := make([]core.PID, 0, len(views))
	for p := range views {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, p := range pids {
		common = common.Intersect(views[p].KnownSet(n))
	}
	return common
}
