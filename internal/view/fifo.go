package view

import (
	"fmt"

	"repro/internal/core"
)

// Reception is one simulated message reception of the non-round-based
// asynchronous system N of §2 item 3: process From's round-Round message,
// received (possibly late, in a batch) by the reconstructing process.
type Reception struct {
	// From is the sender.
	From core.PID

	// Round is the round in which the message was emitted in the
	// round-based system A.
	Round int

	// Payload is the sender's emission of that round — in full
	// information mode, its view at the end of the previous round.
	Payload *View
}

// ReconstructFIFO is the §2 item 3 argument that the round-based system A
// implements the non-round-based system N: "when p_i receives a round-r
// message from p_j it can recreate all the simulated messages it missed
// from p_j since the last round it received a message from p_j, and
// simulate their FIFO reception at that moment."
//
// Given a process's view history it returns the simulated reception log:
// every sender's messages appear exactly once, in round order per sender
// (FIFO per link), with the late ones batched at the round of the first
// direct reception after the gap. The function checks internally that every
// recreated payload is actually present in the received view and returns an
// error otherwise (which would refute the construction).
func ReconstructFIFO(me core.PID, hist []*View) ([]Reception, error) {
	lastSeen := make(map[core.PID]int)
	var log []Reception
	for idx, v := range hist {
		r := idx + 1
		if v.Round != r {
			return nil, fmt.Errorf("view: history out of order: got round %d at position %d", v.Round, idx)
		}
		heard := v.HeardFrom(v.Suspected.Universe())
		var badErr error
		heard.ForEach(func(j core.PID) {
			if badErr != nil {
				return
			}
			jv := v.Received[j] // j's view at end of round r−1
			for x := lastSeen[j] + 1; x <= r; x++ {
				// j's round-x emission is its view at the end of round
				// x−1, recoverable from the received view.
				var payload *View
				if x == r {
					payload = jv
				} else {
					payload = jv.At(j, x-1)
				}
				if payload == nil || payload.Owner != j {
					badErr = fmt.Errorf("view: cannot recreate p%d's round-%d message from its round-%d view",
						j, x, r)
					return
				}
				log = append(log, Reception{From: j, Round: x, Payload: payload})
			}
			lastSeen[j] = r
		})
		if badErr != nil {
			return nil, badErr
		}
	}
	return log, nil
}

// CheckFIFO validates a reception log: per-sender rounds must be exactly
// 1,2,3,... in order (no gap, no duplicate, no reordering) up to that
// sender's last reception.
func CheckFIFO(log []Reception) error {
	next := make(map[core.PID]int)
	for i, rec := range log {
		want := next[rec.From] + 1
		if rec.Round != want {
			return fmt.Errorf("view: reception %d: message (%d, round %d), want round %d — FIFO broken",
				i, rec.From, rec.Round, want)
		}
		next[rec.From] = rec.Round
	}
	return nil
}
