package view

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

func inputsOf(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i * 100
	}
	return inputs
}

func TestFullInfoBenign(t *testing.T) {
	n := 4
	views, res, err := Run(n, 2, inputsOf(n), adversary.Benign(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	for p, v := range views {
		if v.Round != 2 || v.Owner != p {
			t.Fatalf("view %s mis-shaped", v)
		}
		if !v.KnownSet(n).Equal(core.FullSet(n)) {
			t.Fatalf("p%d does not know everyone after a benign round", p)
		}
		for q := core.PID(0); int(q) < n; q++ {
			val, ok := v.InputOf(q)
			if !ok || val != int(q)*100 {
				t.Fatalf("p%d: InputOf(%d) = %v,%v", p, q, val, ok)
			}
		}
	}
}

func TestKnowledgeRespectsSuspicion(t *testing.T) {
	// p1's messages are suspected everywhere each round: nobody (except
	// p1) ever learns its input.
	n := 3
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		for i := range sus {
			if core.PID(i) == 1 {
				sus[i] = core.NewSet(n)
			} else {
				sus[i] = core.SetOf(n, 1)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
	views, _, err := Run(n, 3, inputsOf(n), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if views[0].Knows(1) || views[2].Knows(1) {
		t.Fatal("knowledge leaked past permanent suspicion")
	}
	if !views[1].Knows(0) {
		t.Fatal("p1 receives others and should know them")
	}
	if !views[1].Knows(1) {
		t.Fatal("p1 must know itself")
	}
}

func TestAtAndPrevChain(t *testing.T) {
	n := 3
	hist, _, err := RunHistory(n, 3, inputsOf(n), adversary.Benign(n))
	if err != nil {
		t.Fatal(err)
	}
	final := hist[0][2]
	for r := 0; r <= 2; r++ {
		sub := final.At(0, r)
		if sub == nil || sub.Owner != 0 || sub.Round > r {
			t.Fatalf("At(0,%d) = %v", r, sub)
		}
	}
	// Another process's old view is reachable through receptions.
	if sub := final.At(2, 1); sub == nil || sub.Owner != 2 {
		t.Fatalf("At(2,1) = %v", sub)
	}
	if !strings.Contains(final.String(), "p0 r3") {
		t.Fatalf("String = %s", final)
	}
}

func TestKnownByAll(t *testing.T) {
	n := 5
	views, _, err := Run(n, 1, inputsOf(n), adversary.SharedMem(n, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Shared-memory predicate: someone is suspected by nobody, so someone
	// is known by all after one round.
	if KnownByAll(n, views).Empty() {
		t.Fatal("eq4 must leave someone known by all after one round")
	}
}

func TestReconstructFIFO(t *testing.T) {
	n, f, rounds := 5, 2, 6
	for seed := int64(0); seed < 30; seed++ {
		hist, _, err := RunHistory(n, rounds, inputsOf(n), adversary.AsyncBudget(n, f, true, seed))
		if err != nil {
			t.Fatal(err)
		}
		for p := core.PID(0); int(p) < n; p++ {
			log, err := ReconstructFIFO(p, hist[p])
			if err != nil {
				t.Fatalf("seed %d p%d: %v", seed, p, err)
			}
			if err := CheckFIFO(log); err != nil {
				t.Fatalf("seed %d p%d: %v", seed, p, err)
			}
			// Payload faithfulness: a simulated round-x message from j
			// must be j's actual end-of-(x−1) view.
			for _, rec := range log {
				if rec.Round >= 2 {
					want := hist[rec.From][rec.Round-2]
					if rec.Payload != want {
						t.Fatalf("seed %d p%d: payload for (%d,r%d) is not the sender's real view",
							seed, p, rec.From, rec.Round)
					}
				}
			}
		}
	}
}

func TestReconstructFIFOCoversGaps(t *testing.T) {
	// Force a gap: p0 misses p1 in rounds 1-2, hears it at round 3; the
	// log must then contain p1's rounds 1,2,3 in order at that point.
	n := 3
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		for i := range sus {
			sus[i] = core.NewSet(n)
		}
		if r <= 2 {
			sus[0] = core.SetOf(n, 1)
		}
		return core.RoundPlan{Suspects: sus}
	})
	hist, _, err := RunHistory(n, 4, inputsOf(n), oracle)
	if err != nil {
		t.Fatal(err)
	}
	log, err := ReconstructFIFO(0, hist[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFIFO(log); err != nil {
		t.Fatal(err)
	}
	var from1 []int
	for _, rec := range log {
		if rec.From == 1 {
			from1 = append(from1, rec.Round)
		}
	}
	if len(from1) != 4 || from1[0] != 1 || from1[3] != 4 {
		t.Fatalf("receptions from p1 = %v, want 1..4", from1)
	}
}

func TestCheckFIFODetectsViolations(t *testing.T) {
	bad := []Reception{{From: 1, Round: 2}}
	if err := CheckFIFO(bad); err == nil {
		t.Fatal("gap undetected")
	}
	bad2 := []Reception{{From: 1, Round: 1}, {From: 1, Round: 1}}
	if err := CheckFIFO(bad2); err == nil {
		t.Fatal("duplicate undetected")
	}
}

func TestEmulateWriteUnderSharedMemory(t *testing.T) {
	// §2 item 4: under eqs. (3)+(4) a completed write is visible to all
	// in the subsequent round.
	n, f := 5, 2
	for seed := int64(0); seed < 40; seed++ {
		hist, _, err := RunHistory(n, n+2, inputsOf(n), adversary.SharedMem(n, f, seed))
		if err != nil {
			t.Fatal(err)
		}
		for w := core.PID(0); int(w) < n; w++ {
			em, err := EmulateWrite(n, w, hist)
			if err != nil {
				t.Fatalf("seed %d writer %d: %v", seed, w, err)
			}
			if em.CompleteRound == 0 {
				t.Fatalf("seed %d writer %d: write never completed", seed, w)
			}
		}
	}
}

func TestEmulateWriteFailsUnderPartition(t *testing.T) {
	// Without eq. (4) the claim genuinely fails: a 2-process partition
	// completes the write locally but the other side never learns it.
	n := 2
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		return core.RoundPlan{Suspects: []core.Set{core.SetOf(n, 1), core.SetOf(n, 0)}}
	})
	hist, _, err := RunHistory(n, 4, inputsOf(n), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmulateWrite(n, 0, hist); err == nil {
		t.Fatal("partitioned write emulation should violate the item 4 claim")
	}
}
