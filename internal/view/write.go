package view

import (
	"fmt"

	"repro/internal/core"
)

// WriteEmulation is the §2 item 4 argument that the shared-memory RRFD
// implements an actual SWMR write operation: "to emulate p_i's write of a
// value v, run A in full information mode where p_i indicates it is writing
// v. At the round that all messages received by p_i contain the knowledge
// of v being written, p_i may terminate the write. In the subsequent round
// any process will know of v."
//
// With the written value standing in for the writer's input, "knowledge of
// v" is exactly View.Knows(writer).
type WriteEmulation struct {
	// Writer is the emulating process.
	Writer core.PID

	// CompleteRound is the first round at whose end every message the
	// writer received carried knowledge of the write (0 if never within
	// the history).
	CompleteRound int

	// VisibleRound is the first round at whose end EVERY live process
	// knew of the write (0 if never within the history).
	VisibleRound int
}

// EmulateWrite analyses a full-information history for the write-completion
// structure of §2 item 4 and verifies the paper's claim: once complete, the
// write is visible to every live process in the subsequent round. It
// returns an error if the claim fails (VisibleRound > CompleteRound+1).
func EmulateWrite(n int, writer core.PID, hist History) (*WriteEmulation, error) {
	w := &WriteEmulation{Writer: writer}
	rounds := 0
	for _, h := range hist {
		if len(h) > rounds {
			rounds = len(h)
		}
	}

	// CompleteRound: every view the writer received this round knows the
	// write.
	own := hist[writer]
	for idx, v := range own {
		all := true
		for from, sub := range v.Received {
			if from == writer {
				continue // own message trivially knows
			}
			if !sub.Knows(writer) {
				all = false
				break
			}
		}
		if all && len(v.Received) > 0 {
			w.CompleteRound = idx + 1
			break
		}
	}

	// VisibleRound: every live process's end-of-round view knows the
	// write.
	for r := 1; r <= rounds; r++ {
		all := true
		for p := core.PID(0); int(p) < n; p++ {
			h := hist[p]
			if len(h) < r {
				continue // crashed or short history: exempt
			}
			if !h[r-1].Knows(writer) {
				all = false
				break
			}
		}
		if all {
			w.VisibleRound = r
			break
		}
	}

	if w.CompleteRound > 0 {
		if w.VisibleRound == 0 || w.VisibleRound > w.CompleteRound+1 {
			return w, fmt.Errorf("view: write by %d completed at round %d but visible at %d — the item 4 claim fails",
				writer, w.CompleteRound, w.VisibleRound)
		}
	}
	return w, nil
}
