package par

import (
	"runtime/pprof"
	"strings"
	"testing"

	"repro/internal/obs/hist"
)

// TestMeter: an installed meter sees one task-latency and one queue-depth
// sample per task, at every worker count, without changing results.
func TestMeter(t *testing.T) {
	reg := hist.NewRegistry()
	SetMeter(&Meter{TaskNS: reg.Get("par_task_ns"), QueueDepth: reg.Get("par_queue_depth")})
	defer SetMeter(nil)

	for _, workers := range []int{1, 4} {
		before := reg.Get("par_task_ns").Count()
		out, err := Map(workers, 10, func(i int) int { return i * i })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		if got := reg.Get("par_task_ns").Count() - before; got != 10 {
			t.Fatalf("workers=%d: %d task samples, want 10", workers, got)
		}
	}
	qd := reg.Get("par_queue_depth").Snapshot()
	if qd.Count != 20 || qd.Max != 10 {
		t.Fatalf("queue depth count=%d max=%d, want 20/10", qd.Count, qd.Max)
	}
}

// TestWorkerLabels: worker goroutines carry the par_worker pprof label
// while tasks run (visible in the labeled goroutine profile).
func TestWorkerLabels(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Map(2, 2, func(i int) struct{} {
			started <- struct{}{}
			<-release
			return struct{}{}
		})
		done <- err
	}()
	<-started
	<-started

	var buf strings.Builder
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"par_worker"`) {
		t.Fatalf("goroutine profile lacks par_worker labels:\n%s", buf.String())
	}
}
