// Package par is a deterministic worker-pool scheduler for independent
// seeded executions.
//
// Campaign drivers (chaos.Run, chaos.RunRecover) and the experiment seed
// sweeps all share one shape: N independent tasks, each a pure function of
// its index (the index selects a pre-drawn seed), whose results must be
// aggregated in index order so the output is byte-identical to a
// sequential loop. par.Map runs that shape over a bounded pool of worker
// goroutines:
//
//   - Order-preserving collection: results land in a slice indexed by task
//     index, so aggregation order never depends on goroutine scheduling.
//     workers=1 is the exact sequential loop (same goroutine, no channels).
//   - Per-task panic capture: a panicking task is caught in its worker and
//     surfaced as a *PanicError carrying the task index, panic value and
//     stack, like captureGen turns generator panics into returned errors.
//     The lowest-index panic wins, matching what a sequential loop would
//     have hit first.
//   - No shared state: par owns nothing but the work counter and an
//     optional Meter (task latency / queue depth histograms — sharded
//     atomics, order-free). Tasks must bring their own RNG and observer
//     state; the scheduler never introduces ordering between two tasks'
//     side effects. Workers run under a "par_worker" pprof label so CPU
//     profiles attribute campaign work to pool goroutines.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/hist"
)

// Workers resolves a configured worker count: n > 0 is used as given; zero
// or negative means one worker per logical CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Meter is the pool's optional instrumentation: task wall-time latency
// and the queue depth observed as each task starts (tasks not yet begun,
// including the starting one). Either histogram may be nil. Wall time
// flows only into histograms, never into task results, so metered
// campaigns keep their byte-identical output guarantee.
type Meter struct {
	TaskNS     *hist.Histogram
	QueueDepth *hist.Histogram
}

var meter atomic.Pointer[Meter]

// SetMeter installs (or with nil removes) the process-wide pool meter —
// the CLIs wire it to their telemetry registry. A Map picks up the meter
// installed at its start.
func SetMeter(m *Meter) { meter.Store(m) }

// labeled runs body on the current goroutine under a par_worker pprof
// label, so CPU profiles of campaigns attribute samples to pool workers.
func labeled(w int, body func()) {
	pprof.Do(context.Background(), pprof.Labels("par_worker", strconv.Itoa(w)),
		func(context.Context) { body() })
}

// PanicError reports a task that panicked inside Map or Sweep. Index is
// the task index, Value the recovered panic value, Stack the worker stack
// captured at recovery.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs task(i) for every i in 0..n-1 across at most workers goroutines
// and returns the n results in index order. workers <= 0 means GOMAXPROCS;
// workers == 1 runs the tasks sequentially on the calling goroutine. If
// any task panics, Map still waits for every started task and then returns
// the results collected so far together with the lowest-index *PanicError.
func Map[T any](workers, n int, task func(i int) T) ([]T, error) {
	out := make([]T, n)
	panics := make([]*PanicError, n)
	m := meter.Load()
	call := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				panics[i] = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		if m != nil {
			if m.QueueDepth != nil {
				m.QueueDepth.Record(int64(n - i))
			}
			if m.TaskNS != nil {
				start := time.Now()
				defer func() { m.TaskNS.Record(time.Since(start).Nanoseconds()) }()
			}
		}
		out[i] = task(i)
	}

	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers <= 1 {
		labeled(0, func() {
			for i := 0; i < n; i++ {
				call(i)
			}
		})
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				labeled(w, func() {
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						call(i)
					}
				})
			}(w)
		}
		wg.Wait()
	}

	for _, p := range panics {
		if p != nil {
			return out, p
		}
	}
	return out, nil
}

// Sweep is Map for fallible tasks: it runs body(i) for every i in 0..n-1
// and returns the results in index order, or the lowest-index error (a
// task error, or a *PanicError if a task panicked). Like a sequential
// sweep with an early return, the first failure by index is the one
// reported — except that later tasks may already have run; their results
// are discarded.
func Sweep[T any](workers, n int, body func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	slots, err := Map(workers, n, func(i int) slot {
		v, err := body(i)
		return slot{v, err}
	})
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	for i, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		out[i] = s.v
	}
	return out, nil
}
