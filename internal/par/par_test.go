package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got, err := Map(workers, 50, func(i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	// The scheduler contract: results are a pure function of the task
	// indices, independent of worker count. Each task derives its value
	// from its own seeded RNG, the way campaign runs do.
	task := func(i int) int64 { return rand.New(rand.NewSource(int64(i))).Int63() }
	seq, err := Map(1, 200, task)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := Map(8, 200, task)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("task %d: sequential %d != parallel %d", i, seq[i], parl[i])
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(8, 0, func(i int) int { return i }); err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	if got, err := Map(8, 1, func(i int) int { return 7 }); err != nil || got[0] != 7 {
		t.Fatalf("n=1: got %v, %v", got, err)
	}
}

func TestMapSequentialStaysOnCallerGoroutine(t *testing.T) {
	// workers=1 is the degenerate sequential case: no goroutines, so
	// tasks may use caller-goroutine state (e.g. testing.T helpers).
	before := runtime.NumGoroutine()
	_, err := Map(1, 100, func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d under workers=1", before, after)
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		out, err := Map(workers, 10, func(i int) int {
			ran.Add(1)
			if i == 3 || i == 7 {
				panic(fmt.Sprintf("boom %d", i))
			}
			return i
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		// The lowest-index panic wins, whatever order workers hit them.
		if pe.Index != 3 || pe.Value != "boom 3" {
			t.Fatalf("workers=%d: got index %d value %v", workers, pe.Index, pe.Value)
		}
		if !strings.Contains(pe.Error(), "task 3 panicked: boom 3") {
			t.Fatalf("workers=%d: error text %q", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		// Every task still ran; surviving results are intact.
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: ran %d of 10 tasks", workers, ran.Load())
		}
		if out[2] != 2 || out[9] != 9 {
			t.Fatalf("workers=%d: surviving results clobbered: %v", workers, out)
		}
	}
}

func TestSweepCollectsResults(t *testing.T) {
	got, err := Sweep(4, 5, func(i int) (string, error) {
		return fmt.Sprintf("s%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s0", "s1", "s2", "s3", "s4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSweepFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		_, err := Sweep(workers, 10, func(i int) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 6:
				return 0, errB
			}
			return i, nil
		})
		if err != errA {
			t.Fatalf("workers=%d: want first-by-index error %v, got %v", workers, errA, err)
		}
	}
}

func TestSweepPanicBeatsLaterError(t *testing.T) {
	_, err := Sweep(4, 10, func(i int) (int, error) {
		if i == 1 {
			panic("early")
		}
		if i == 5 {
			return 0, errors.New("late")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("want panic at task 1, got %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not respected")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("default not GOMAXPROCS")
	}
}
