// Offline journal inspection: what a server's WAL durably records,
// without starting a server. The chaos campaign reads a killed victim's
// journal through this to audit that every acknowledged decision is on
// disk and no instance was ever decided twice.
package serve

import (
	"fmt"

	"repro/internal/wal"
)

// JournalState is the durable content of one server's WAL.
type JournalState struct {
	// Decisions maps instance → decided value; Proposals maps instance →
	// this node's first-wins proposal.
	Decisions map[string]int
	Proposals map[string]int

	// Boots counts recBoot records: the next incarnation is Boots+1.
	Boots int

	// DuplicateDecisions lists instances with more than one decision
	// record — always a bug: the decision table makes a second decision
	// for an instance impossible.
	DuplicateDecisions []string

	// TruncatedBytes is the torn tail the replay dropped.
	TruncatedBytes int
}

// ReadJournal replays the WAL in dir without opening it for appending.
func ReadJournal(dir string) (*JournalState, error) {
	recs, rep, err := wal.Replay(dir)
	if err != nil {
		return nil, err
	}
	js := &JournalState{
		Decisions:      make(map[string]int),
		Proposals:      make(map[string]int),
		TruncatedBytes: rep.TruncatedBytes,
	}
	for _, r := range recs {
		switch r.Kind {
		case recBoot:
			js.Boots++
		case recProposal:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			js.Proposals[inst] = val
		case recDecision:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			if _, dup := js.Decisions[inst]; dup {
				js.DuplicateDecisions = append(js.DuplicateDecisions, inst)
			}
			js.Decisions[inst] = val
		default:
			return nil, fmt.Errorf("serve: journal seq %d: unknown record kind %d", r.Seq, r.Kind)
		}
	}
	return js, nil
}
