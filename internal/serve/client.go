// Client-side retry discipline: a Client submits proposals over the
// newline-JSON protocol, retrying overloads, abstains, and transport
// failures with capped-exponential seeded-jitter backoff
// (internal/backoff) — and always under the same request ID, so a retry
// can never decide a second time: the server's decision table answers
// every duplicate.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/backoff"
)

// ClientConfig shapes one service client.
type ClientConfig struct {
	// Addr is the server's client-facing address.
	Addr string

	// Timeout bounds one attempt end to end (dial, write, read); it is
	// also forwarded as the request's server-side deadline. 0 means 2s.
	Timeout time.Duration

	// MaxAttempts bounds submit retries (first try included). 0 means 8.
	MaxAttempts int

	// Retry is the backoff ladder between attempts, in units of
	// RetryUnit; the zero policy means {Initial: 1, Cap: 64, Jitter:
	// 0.2} — RetryUnit doubling to 64×RetryUnit with ±20% seeded jitter.
	Retry backoff.Policy

	// RetryUnit scales Retry intervals. 0 means 5ms.
	RetryUnit time.Duration

	// Seed derives the jitter stream; equal seeds retry on equal
	// schedules.
	Seed int64
}

func (c *ClientConfig) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.Retry == (backoff.Policy{}) {
		c.Retry = backoff.Policy{Initial: 1, Cap: 64, Jitter: 0.2}
	}
	if c.RetryUnit <= 0 {
		c.RetryUnit = 5 * time.Millisecond
	}
}

// Client is a single-goroutine service client: one connection, one
// request in flight at a time. Not safe for concurrent use; drive one
// Client per goroutine.
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	seq  *backoff.Seq

	// Retries counts backoff sleeps taken; Attempts counts wire
	// attempts. Exposed for load-generator accounting.
	Retries  int64
	Attempts int64
}

// NewClient returns a client for addr. No connection is made until the
// first request, and a broken connection redials on the next attempt —
// a dead server costs retries, never a construction error.
func NewClient(cfg ClientConfig) *Client {
	cfg.fill()
	return &Client{cfg: cfg, seq: cfg.Retry.Seeded(cfg.Seed)}
}

// Submit proposes val for instance inst under request ID req, retrying
// until the instance decides or attempts run out.
//
// The result is (response, nil) whenever a structured answer was
// received — callers switch on Status: StatusDecided is final;
// StatusAbstain or StatusOverload mean every attempt degraded. The error
// is non-nil only when no attempt got a response at all
// (*UnreachableError).
func (c *Client) Submit(inst, req string, val int) (Response, error) {
	return c.retry(Request{
		Op: "submit", Inst: inst, Req: req, Val: val,
		TimeoutMS: int(c.cfg.Timeout / time.Millisecond),
	})
}

// Query reads the decision for inst, if the server has one
// (StatusDecided or StatusUnknown). Transport failures are retried like
// Submit; unknown is a final answer, not a retryable state.
func (c *Client) Query(inst string) (Response, error) {
	return c.retry(Request{Op: "query", Inst: inst})
}

func (c *Client) retry(req Request) (Response, error) {
	var (
		last    Response
		lastErr error
		gotAny  bool
	)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Retries++
			time.Sleep(c.seq.NextDuration(c.cfg.RetryUnit))
		}
		c.Attempts++
		resp, err := c.roundTrip(req)
		if err != nil {
			lastErr = err
			c.dropConn()
			continue
		}
		gotAny, last = true, resp
		switch resp.Status {
		case StatusDecided, StatusUnknown:
			c.seq.Reset()
			return resp, nil
		case StatusError:
			return resp, fmt.Errorf("serve: server rejected request: %s", resp.Err)
		}
		// StatusAbstain and StatusOverload: back off and retry with the
		// same request ID.
	}
	if gotAny {
		return last, nil
	}
	return Response{}, &UnreachableError{Addr: c.cfg.Addr, Attempts: c.cfg.MaxAttempts, Last: lastErr}
}

// roundTrip runs one attempt: ensure a connection, send the request,
// read its response. Any failure invalidates the connection, so request
// and response streams can never skew.
func (c *Client) roundTrip(req Request) (Response, error) {
	deadline := time.Now().Add(c.cfg.Timeout + 500*time.Millisecond)
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.Timeout)
		if err != nil {
			return Response{}, err
		}
		c.conn = conn
		c.enc = newLineEncoder(conn)
		c.dec = newLineDecoder(conn)
	}
	c.conn.SetDeadline(deadline)
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.enc, c.dec = nil, nil
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	c.dropConn()
	return nil
}
