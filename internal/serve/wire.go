// Wire formats of the agreement service: the compact peer-to-peer
// message encoding carried as []byte payloads over the netsub mesh, the
// WAL record encodings that make instance state durable, and the
// newline-delimited JSON protocol clients speak.
//
// Peer messages ride the existing netsub frame codec as opaque byte
// slices, so the mesh transport needs no knowledge of the service layer:
//
//	kind     uint8          // pmPropose or pmDecide
//	instance uvarint-len + bytes
//	value    zigzag varint
//
// Journal records use the same instance/value encoding under three WAL
// record kinds; recBoot carries only the incarnation number.
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Peer message kinds.
const (
	pmPropose byte = 1 // "my proposal for instance X is v"
	pmDecide  byte = 2 // "I decided v for instance X"
	pmBatch   byte = 3 // coalesced frame: uvarint count, then length-prefixed messages
)

// maxBatchMsgs bounds one pmBatch frame on the decode side; a frame
// claiming more is a protocol error rather than an allocation.
const maxBatchMsgs = 4096

// encodePeerBatch packs several peer messages into one pmBatch frame:
// one mesh send (one length-prefixed TCP write per peer) carries the
// whole backlog the broadcast batcher drained.
func encodePeerBatch(msgs [][]byte) []byte {
	sz := 1 + binary.MaxVarintLen64
	for _, m := range msgs {
		sz += binary.MaxVarintLen64 + len(m)
	}
	b := make([]byte, 0, sz)
	b = append(b, pmBatch)
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for _, m := range msgs {
		b = binary.AppendUvarint(b, uint64(len(m)))
		b = append(b, m...)
	}
	return b
}

// decodePeerBatch unpacks a pmBatch frame, calling fn once per inner
// message (aliasing into b — fn must not retain past the call).
func decodePeerBatch(b []byte, fn func(msg []byte)) error {
	if len(b) < 1 || b[0] != pmBatch {
		return fmt.Errorf("serve: not a batch frame")
	}
	b = b[1:]
	cnt, n := binary.Uvarint(b)
	if n <= 0 || cnt > maxBatchMsgs {
		return fmt.Errorf("serve: bad batch count")
	}
	b = b[n:]
	for i := uint64(0); i < cnt; i++ {
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return fmt.Errorf("serve: truncated batch message %d", i)
		}
		fn(b[n : n+int(ln)])
		b = b[n+int(ln):]
	}
	if len(b) != 0 {
		return fmt.Errorf("serve: %d trailing bytes in batch frame", len(b))
	}
	return nil
}

// WAL record kinds. A server's journal is a sequence of these; replaying
// them rebuilds the proposal and decision maps and counts incarnations.
const (
	recBoot     uint8 = 1 // payload: uvarint incarnation
	recProposal uint8 = 2 // payload: instance + value
	recDecision uint8 = 3 // payload: instance + value
)

// maxInstanceID bounds one instance identifier; anything larger is a
// protocol error rather than an allocation.
const maxInstanceID = 4096

// appendInstVal appends the shared instance+value encoding.
func appendInstVal(b []byte, inst string, val int) []byte {
	b = binary.AppendUvarint(b, uint64(len(inst)))
	b = append(b, inst...)
	return binary.AppendVarint(b, int64(val))
}

// decodeInstVal reads the shared instance+value encoding from b.
func decodeInstVal(b []byte) (inst string, val int, rest []byte, err error) {
	ln, n := binary.Uvarint(b)
	if n <= 0 || ln > maxInstanceID || uint64(len(b)-n) < ln {
		return "", 0, nil, fmt.Errorf("serve: bad instance id length")
	}
	inst = string(b[n : n+int(ln)])
	b = b[n+int(ln):]
	v, n := binary.Varint(b)
	if n <= 0 {
		return "", 0, nil, fmt.Errorf("serve: bad value varint")
	}
	return inst, int(v), b[n:], nil
}

// encodePeerMsg builds one peer message payload.
func encodePeerMsg(kind byte, inst string, val int) []byte {
	b := make([]byte, 0, 2+len(inst)+binary.MaxVarintLen64)
	b = append(b, kind)
	return appendInstVal(b, inst, val)
}

// decodePeerMsg parses one peer message payload.
func decodePeerMsg(b []byte) (kind byte, inst string, val int, err error) {
	if len(b) < 1 {
		return 0, "", 0, fmt.Errorf("serve: empty peer message")
	}
	kind = b[0]
	if kind != pmPropose && kind != pmDecide {
		return 0, "", 0, fmt.Errorf("serve: unknown peer message kind %d", kind)
	}
	inst, val, rest, err := decodeInstVal(b[1:])
	if err != nil {
		return 0, "", 0, err
	}
	if len(rest) != 0 {
		return 0, "", 0, fmt.Errorf("serve: %d trailing bytes in peer message", len(rest))
	}
	return kind, inst, val, nil
}

// encodeBoot builds a recBoot payload.
func encodeBoot(incarnation int) []byte {
	return binary.AppendUvarint(nil, uint64(incarnation))
}

// decodeBoot parses a recBoot payload.
func decodeBoot(b []byte) (int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("serve: bad boot record")
	}
	return int(v), nil
}

// encodeInstVal builds a recProposal/recDecision payload.
func encodeInstVal(inst string, val int) []byte {
	return appendInstVal(make([]byte, 0, 1+len(inst)+binary.MaxVarintLen64), inst, val)
}

// decodeInstValRecord parses a recProposal/recDecision payload.
func decodeInstValRecord(b []byte) (inst string, val int, err error) {
	inst, val, rest, err := decodeInstVal(b)
	if err != nil {
		return "", 0, err
	}
	if len(rest) != 0 {
		return "", 0, fmt.Errorf("serve: %d trailing bytes in journal record", len(rest))
	}
	return inst, val, nil
}

// Status is the outcome class of one client request.
type Status string

const (
	// StatusDecided carries the decided value: the durable, final answer
	// for the instance (journaled before the response is sent).
	StatusDecided Status = "decided"

	// StatusAbstain reports that the request's deadline expired before a
	// quorum view formed: the server degrades into abstain-and-report
	// (Gathered/Need say how far the view got) instead of hanging. The
	// instance stays open until its TTL; a retry may find it decided.
	StatusAbstain Status = "abstain"

	// StatusOverload reports admission control shedding the request: the
	// bounded in-flight instance table is full (Inflight/Max). Retry
	// after backoff.
	StatusOverload Status = "overload"

	// StatusUnknown answers a query for an instance with no recorded
	// decision.
	StatusUnknown Status = "unknown"

	// StatusError reports a malformed or unsupported request.
	StatusError Status = "error"
)

// Request is one client→server line of the JSON protocol.
type Request struct {
	// Op is "submit" (propose Val for Inst under request ID Req) or
	// "query" (read Inst's decision, if any).
	Op   string `json:"op"`
	Inst string `json:"inst"`

	// Req identifies a submit idempotently: retries reuse the same ID
	// and can never decide a second time — the server answers every
	// duplicate from its decision table.
	Req string `json:"req,omitempty"`
	Val int    `json:"val,omitempty"`

	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Response is one server→client line of the JSON protocol.
type Response struct {
	Req    string `json:"req,omitempty"`
	Inst   string `json:"inst,omitempty"`
	Status Status `json:"status"`
	Val    int    `json:"val,omitempty"`

	// Gathered and Need report abstain progress: proposals heard versus
	// the n−f quorum the decision rule requires.
	Gathered int `json:"gathered,omitempty"`
	Need     int `json:"need,omitempty"`

	// Inflight and Max report admission-control state on overload.
	Inflight int `json:"inflight,omitempty"`
	Max      int `json:"max,omitempty"`

	// Incarnation is the serving process's WAL-derived incarnation.
	Incarnation int    `json:"incarnation,omitempty"`
	Err         string `json:"err,omitempty"`
}

// OverloadError is the structured form of a StatusOverload response: the
// bounded in-flight instance table was full and the request was shed
// instead of queued. Retryable after backoff.
type OverloadError struct {
	Inflight int // instances in flight when the request was shed
	Max      int // the table bound
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded: %d/%d instances in flight", e.Inflight, e.Max)
}

// UnreachableError reports that every attempt at a server failed at the
// transport layer (dial, write, or read) — no structured response was
// ever received.
type UnreachableError struct {
	Addr     string
	Attempts int
	Last     error
}

// Error implements error.
func (e *UnreachableError) Error() string {
	return fmt.Sprintf("serve: %s unreachable after %d attempts: %v", e.Addr, e.Attempts, e.Last)
}

// Unwrap exposes the final transport error.
func (e *UnreachableError) Unwrap() error { return e.Last }

// newLineDecoder and newLineEncoder pin the client protocol framing in
// one place: one JSON value per line, buffered reads.
func newLineDecoder(r io.Reader) *json.Decoder { return json.NewDecoder(bufio.NewReader(r)) }

func newLineEncoder(w io.Writer) *json.Encoder { return json.NewEncoder(w) }
