package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

func testCluster(t *testing.T, n, f int, tune func(i int, cfg *Config)) *Cluster {
	t.Helper()
	cl, err := StartCluster(ClusterConfig{
		N: n, F: f, K: f + 1,
		Dir:            t.TempDir(),
		Sync:           wal.SyncAlways,
		RequestTimeout: 2 * time.Second,
		Seed:           1,
		Tune:           tune,
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func mustDecide(t *testing.T, c *Client, inst, req string, val int) Response {
	t.Helper()
	resp, err := c.Submit(inst, req, val)
	if err != nil {
		t.Fatalf("Submit(%s,%s,%d): %v", inst, req, val, err)
	}
	if resp.Status != StatusDecided {
		t.Fatalf("Submit(%s,%s,%d): status %s, want decided (resp %+v)", inst, req, val, resp.Status, resp)
	}
	return resp
}

func TestWireRoundTrips(t *testing.T) {
	for _, tc := range []struct {
		kind byte
		inst string
		val  int
	}{
		{pmPropose, "i0", 0},
		{pmDecide, "instance-with-a-longer-name", -12345},
		{pmPropose, "x", 1 << 40},
	} {
		b := encodePeerMsg(tc.kind, tc.inst, tc.val)
		kind, inst, val, err := decodePeerMsg(b)
		if err != nil {
			t.Fatalf("decodePeerMsg(%v): %v", tc, err)
		}
		if kind != tc.kind || inst != tc.inst || val != tc.val {
			t.Fatalf("peer round trip: got (%d,%q,%d), want (%d,%q,%d)", kind, inst, val, tc.kind, tc.inst, tc.val)
		}
		p := encodeInstVal(tc.inst, tc.val)
		inst, val, err = decodeInstValRecord(p)
		if err != nil || inst != tc.inst || val != tc.val {
			t.Fatalf("journal round trip: got (%q,%d,%v)", inst, val, err)
		}
	}
	for _, bad := range [][]byte{nil, {}, {9, 1, 'x', 0}, {pmPropose}, append(encodePeerMsg(pmDecide, "i", 1), 0)} {
		if _, _, _, err := decodePeerMsg(bad); err == nil {
			t.Fatalf("decodePeerMsg(%v) accepted garbage", bad)
		}
	}
	if inc, err := decodeBoot(encodeBoot(7)); err != nil || inc != 7 {
		t.Fatalf("boot round trip: got (%d,%v)", inc, err)
	}
}

func TestSingleNodeDecideAndIdempotentRetry(t *testing.T) {
	cl := testCluster(t, 1, 0, nil)
	c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 2 * time.Second, Seed: 1})
	defer c.Close()

	resp := mustDecide(t, c, "job-1", "r1", 42)
	if resp.Val != 42 {
		t.Fatalf("decided %d, want 42", resp.Val)
	}
	// The same request ID retried must return the same decision, and a
	// different value under the same instance must not re-decide.
	for _, val := range []int{42, 7} {
		again := mustDecide(t, c, "job-1", "r1", val)
		if again.Val != 42 {
			t.Fatalf("retry decided %d, want 42", again.Val)
		}
	}
	st := cl.Servers[0].Stats()
	if st.Decisions != 1 {
		t.Fatalf("decisions = %d, want exactly 1 despite retries", st.Decisions)
	}
	if st.IdempotentHits < 2 {
		t.Fatalf("idempotent hits = %d, want >= 2", st.IdempotentHits)
	}
	q, err := c.Query("job-1")
	if err != nil || q.Status != StatusDecided || q.Val != 42 {
		t.Fatalf("query: %+v, %v", q, err)
	}
	if q, _ := c.Query("nope"); q.Status != StatusUnknown {
		t.Fatalf("query unknown instance: %+v", q)
	}
}

func TestClusterDecidesWithinKBound(t *testing.T) {
	const n, f = 3, 1
	cl := testCluster(t, n, f, nil)
	vals := map[int]bool{10: true, 20: true, 30: true}
	decided := map[int]bool{}
	for i := 0; i < n; i++ {
		c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[i], Timeout: 2 * time.Second, Seed: int64(i)})
		resp := mustDecide(t, c, "shared", "cl-"+string(rune('a'+i)), 10*(i+1))
		if !vals[resp.Val] {
			t.Fatalf("validity violated: node %d decided %d, not a submitted value", i, resp.Val)
		}
		decided[resp.Val] = true
		c.Close()
	}
	if len(decided) > f+1 {
		t.Fatalf("k-agreement violated: %d distinct decisions > k=%d", len(decided), f+1)
	}
}

// TestOverloadDeadlineAndTTL runs one node of a 2-mesh whose peer never
// starts: no instance can gather the n−f=2 quorum, so the in-flight
// table fills (overload), deadlines degrade to abstain, and the TTL
// evicts — the three defense layers in one run.
func TestOverloadDeadlineAndTTL(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Start(Config{
		Me: 0, N: 2, F: 0,
		MeshAddrs:      []string{"127.0.0.1:0", "127.0.0.1:1"}, // peer 1 never listens
		WALDir:         t.TempDir(),
		MaxInflight:    2,
		RequestTimeout: 150 * time.Millisecond,
		InstanceTTL:    time.Second,
		Seed:           1,
		Observer:       m,
		Hist:           m.Hist(),
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Close()

	// The client's 200ms Timeout is forwarded as the server-side request
	// deadline, so both abstains land well inside the 1s instance TTL.
	c := NewClient(ClientConfig{Addr: s.ClientAddr(), Timeout: 200 * time.Millisecond, MaxAttempts: 1, Seed: 1})
	defer c.Close()

	for i, inst := range []string{"a", "b"} {
		resp, err := c.Submit(inst, "r", i)
		if err != nil {
			t.Fatalf("submit %s: %v", inst, err)
		}
		if resp.Status != StatusAbstain {
			t.Fatalf("submit %s: status %s, want abstain", inst, resp.Status)
		}
		if resp.Gathered != 1 || resp.Need != 2 {
			t.Fatalf("abstain report: gathered %d need %d, want 1/2", resp.Gathered, resp.Need)
		}
	}
	// Both instances are still in flight (TTL > deadline): the third is shed.
	resp, err := c.Submit("c", "r", 3)
	if err != nil {
		t.Fatalf("submit c: %v", err)
	}
	if resp.Status != StatusOverload || resp.Inflight != 2 || resp.Max != 2 {
		t.Fatalf("want overload 2/2, got %+v", resp)
	}

	// After the TTL the table drains and admission reopens.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Evictions < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("TTL never evicted: stats %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = c.Submit("d", "r", 4)
	if err != nil {
		t.Fatalf("submit d after TTL: %v", err)
	}
	if resp.Status != StatusAbstain {
		t.Fatalf("submit d after TTL: status %s, want abstain (admission reopened)", resp.Status)
	}

	st := s.Stats()
	if st.Overloads != 1 || st.Abstains < 3 {
		t.Fatalf("stats: %+v, want 1 overload and >= 3 abstains", st)
	}
	snap := m.Snapshot()
	if snap.Events["serve.shed"] == 0 || snap.Events["serve.abstain"] == 0 {
		t.Fatalf("serve.* events missing: %v", snap.Events)
	}
	if snap.Hist["serve_request_ns"].Count == 0 {
		t.Fatalf("serve_request_ns histogram empty")
	}
}

func TestKillRestartKeepsAcknowledgedDecisions(t *testing.T) {
	cl := testCluster(t, 1, 0, nil)
	c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 2 * time.Second, Seed: 1})
	defer c.Close()

	acked := map[string]int{}
	for i, inst := range []string{"a", "b", "c"} {
		resp := mustDecide(t, c, inst, "r-"+inst, 100+i)
		acked[inst] = resp.Val
	}
	cl.Servers[0].Kill()
	s, err := cl.Restart(0, nil)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if s.Incarnation() != 2 {
		t.Fatalf("incarnation %d after restart, want 2", s.Incarnation())
	}
	rec := s.RecoveredDecisions()
	for inst, val := range acked {
		got, ok := rec[inst]
		if !ok {
			t.Fatalf("acknowledged decision %s lost across kill-and-restart", inst)
		}
		if got != val {
			t.Fatalf("decision %s recovered as %d, want %d", inst, got, val)
		}
	}
	// The restarted incarnation must answer queries and retries from the
	// journal, and a retried request ID still cannot re-decide.
	c.dropConn()
	for inst, val := range acked {
		if resp := mustDecide(t, c, inst, "r-"+inst, -1); resp.Val != val {
			t.Fatalf("retry after restart: %s decided %d, want %d", inst, resp.Val, val)
		}
	}
	if st := s.Stats(); st.Decisions != 0 {
		t.Fatalf("restarted node re-decided %d instances", st.Decisions)
	}
}

// TestAckBeforeJournalBugLosesAck pins the planted bug's failure mode at
// the unit level: with the inversion and a crash hook on the first
// acknowledged decision, the client holds an ack the restarted journal
// has never heard of.
func TestAckBeforeJournalBugLosesAck(t *testing.T) {
	cl := testCluster(t, 1, 0, func(i int, cfg *Config) {
		cfg.AckBeforeJournalBug = true
		cfg.CrashAfterAcks = 1
	})
	c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 2 * time.Second, Seed: 1})
	defer c.Close()

	resp := mustDecide(t, c, "doomed", "r1", 9)
	if resp.Val != 9 {
		t.Fatalf("decided %d, want 9", resp.Val)
	}
	select {
	case <-cl.Servers[0].Crashed():
	case <-time.After(5 * time.Second):
		t.Fatalf("crash hook never fired")
	}
	cl.Servers[0].Kill()
	s, err := cl.Restart(0, nil)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if _, ok := s.RecoveredDecisions()["doomed"]; ok {
		t.Fatalf("bug did not lose the acknowledged decision — the campaign would have nothing to catch")
	}
}

// TestPeerBatchRoundTrip pins the coalesced broadcast frame: messages
// survive packing, garbage is rejected, and the count bound holds.
func TestPeerBatchRoundTrip(t *testing.T) {
	msgs := [][]byte{
		encodePeerMsg(pmPropose, "a", 1),
		encodePeerMsg(pmDecide, "bb", -7),
		encodePeerMsg(pmPropose, "instance-3", 1<<33),
	}
	frame := encodePeerBatch(msgs)
	if frame[0] != pmBatch {
		t.Fatalf("frame kind %d, want pmBatch", frame[0])
	}
	var got [][]byte
	if err := decodePeerBatch(frame, func(m []byte) {
		got = append(got, append([]byte(nil), m...))
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		kind, inst, val, err := decodePeerMsg(got[i])
		wk, wi, wv, _ := decodePeerMsg(msgs[i])
		if err != nil || kind != wk || inst != wi || val != wv {
			t.Fatalf("message %d mangled: (%d,%q,%d,%v)", i, kind, inst, val, err)
		}
	}
	for _, bad := range [][]byte{nil, {pmPropose}, frame[:len(frame)-2], append(append([]byte(nil), frame...), 0)} {
		if err := decodePeerBatch(bad, func([]byte) {}); err == nil {
			t.Fatalf("decodePeerBatch accepted garbage %v", bad)
		}
	}
	// A frame claiming an absurd count must fail before allocating.
	if err := decodePeerBatch([]byte{pmBatch, 0xff, 0xff, 0xff, 0x7f}, func([]byte) {}); err == nil {
		t.Fatal("oversized batch count accepted")
	}
}

// TestShardedConcurrentSubmits drives a sharded cluster with many
// concurrent clients over disjoint instances: every instance decides
// exactly once cluster-wide on the submitted value, journal appends
// coalesce into batches, and the broadcast batcher actually packed
// multi-message frames under the contention.
func TestShardedConcurrentSubmits(t *testing.T) {
	m := obs.NewMetrics()
	cl, err := StartCluster(ClusterConfig{
		N: 3, F: 1, K: 2,
		Dir:            t.TempDir(),
		Sync:           wal.SyncAlways,
		Shards:         8,
		RequestTimeout: 5 * time.Second,
		Seed:           1,
		Hist:           m.Hist(),
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()

	const clients, perClient = 8, 16
	type outcome struct {
		inst string
		val  int
	}
	results := make(chan outcome, clients*perClient)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ClientConfig{
				Addr: cl.ClientAddrs()[w%3], Timeout: 5 * time.Second, Seed: int64(w),
			})
			defer c.Close()
			for i := 0; i < perClient; i++ {
				inst := fmt.Sprintf("w%d-i%d", w, i)
				resp, err := c.Submit(inst, "r", w*1000+i)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", inst, err)
					return
				}
				if resp.Status != StatusDecided {
					errs <- fmt.Errorf("%s: status %s", inst, resp.Status)
					return
				}
				results <- outcome{inst, resp.Val}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(results)
	// Disjoint instances with a single proposer each must decide exactly
	// the submitted value; re-query node 0 to confirm the decisions
	// propagated and are served idempotently.
	c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 5 * time.Second, Seed: 99})
	defer c.Close()
	n := 0
	for r := range results {
		n++
		if resp := mustDecide(t, c, r.inst, "r", -1); resp.Val != r.val {
			t.Fatalf("%s: retry decided %d, want %d", r.inst, resp.Val, r.val)
		}
	}
	if n != clients*perClient {
		t.Fatalf("decided %d instances, want %d", n, clients*perClient)
	}
	// The journal went through the group committer…
	js := cl.Servers[0].JournalStats()
	if js.Appends == 0 || js.Batches == 0 || js.Batches > js.Appends {
		t.Fatalf("journal stats out of shape: %+v", js)
	}
	// …and the batch-size histograms filled.
	if m.Hist().Get("serve_wal_batch").Count() == 0 {
		t.Fatal("serve_wal_batch histogram empty")
	}
	bc := m.Hist().Get("serve_bcast_batch")
	if bc.Count() == 0 {
		t.Fatal("serve_bcast_batch histogram empty")
	}
	if bc.Snapshot().Max < 2 {
		t.Fatal("broadcast batcher never coalesced despite 128 concurrent instances")
	}
}

// TestShardCountsAgree: the same workload decides identically at every
// shard count — sharding is a concurrency knob, never a semantics knob.
func TestShardCountsAgree(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		cl, err := StartCluster(ClusterConfig{
			N: 1, F: 0, K: 1,
			Dir:            t.TempDir(),
			Shards:         shards,
			RequestTimeout: 2 * time.Second,
			Seed:           1,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 2 * time.Second, Seed: 1})
		for i := 0; i < 32; i++ {
			inst := fmt.Sprintf("i%d", i)
			if resp := mustDecide(t, c, inst, "r", i); resp.Val != i {
				t.Fatalf("shards=%d: %s decided %d, want %d", shards, inst, resp.Val, i)
			}
		}
		if st := cl.Servers[0].Stats(); st.Decisions != 32 {
			t.Fatalf("shards=%d: decisions %d, want 32", shards, st.Decisions)
		}
		c.Close()
		cl.Close()
	}
}

func TestClientUnreachable(t *testing.T) {
	c := NewClient(ClientConfig{
		Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond,
		MaxAttempts: 3, RetryUnit: time.Millisecond, Seed: 1,
	})
	defer c.Close()
	_, err := c.Submit("i", "r", 1)
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnreachableError, got %v", err)
	}
	if ue.Attempts != 3 || c.Retries != 2 {
		t.Fatalf("attempts %d retries %d, want 3 and 2", ue.Attempts, c.Retries)
	}
}
