// Package serve is agreement-as-a-service: one Server multiplexes many
// concurrent k-set agreement instances over a single netsub peer mesh,
// journals per-instance proposals and decisions through internal/wal so
// an acknowledged decision survives kill-and-restart, and defends itself
// under overload.
//
// The protocol per instance is the quorum form of §2 item 3: each server
// adopts the first value it hears for an instance (its own client's, or
// a peer's) as its proposal, broadcasts it, and decides the minimum of
// the first n−f proposals it gathers. Views that contain n−f of the n
// proposals overlap enough that at most f+1 distinct minima exist, so
// k-agreement holds for k ≥ f+1 — the same eq. (3) argument the
// simulation stack checks, here per instance. Decisions are broadcast and
// adopted, which only merges decision sets and never widens them.
//
// Robustness is the headline, in three layers:
//
//   - Durability: proposals and decisions are journaled before a decision
//     is acknowledged to any client (journal-before-ack). A killed and
//     restarted server replays its WAL, re-enters the mesh with the next
//     incarnation, and still holds every decision it ever acknowledged.
//     The Config.AckBeforeJournalBug flag plants the classic inversion of
//     this rule for the chaos campaign to catch.
//   - Admission control: the in-flight instance table is bounded; a
//     submit that would exceed it is shed with a structured
//     *OverloadError (StatusOverload on the wire) instead of queued.
//   - Deadlines: every request carries a deadline; when it expires before
//     a quorum view forms the server answers abstain-and-report
//     (StatusAbstain with view progress) instead of hanging, and an
//     undecided instance is evicted after a TTL so the table stays
//     bounded under churn.
//
// Throughput comes from sharding: the instance table is split across
// Config.Shards independent event loops, each owning the instances that
// hash to it, so concurrent submits for different instances never
// serialize on one loop. Cross-cutting state is three atomics (global
// in-flight count for admission, acked-decision count for the crash
// hook, plus the stat counters) — no server-wide mutex sits on the
// decide path. The journal is shared through a wal.Group, which
// coalesces the shards' concurrent appends into one write+fsync per
// batch while preserving journal-before-ack per record; decide and
// propose broadcasts funnel through a batcher goroutine that packs
// whatever accumulated into one pmBatch mesh frame per peer — greedy, so
// an idle server still sends every message immediately.
//
// A request that times out, gets shed, or hits a dead server is safely
// retried by Client with seeded-jitter backoff and the same request ID:
// the decision table makes every retry idempotent.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netsub"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/wal"
)

// Config shapes one serving node.
type Config struct {
	// Me is this server's pid; N the mesh size; F the crash bound. The
	// decision rule gathers n−f proposals, so decisions stay within the
	// k = f+1 bound of eq. (3).
	Me core.PID
	N  int
	F  int

	// MeshAddrs maps each pid to its mesh listen address. MeshListener,
	// when non-nil, is the pre-bound mesh listener (else MeshAddrs[Me]
	// is bound).
	MeshAddrs    []string
	MeshListener net.Listener

	// ClientAddr is the client-facing listen address ("127.0.0.1:0" for
	// an ephemeral port); ClientListener, when non-nil, wins.
	ClientAddr     string
	ClientListener net.Listener

	// WALDir is the journal directory. Start replays whatever is there:
	// a fresh directory is incarnation 1, a survivor of a kill restarts
	// as incarnation boots+1 and still holds every journaled decision.
	WALDir string

	// Sync is the journal fsync policy. The zero value (wal.SyncNever)
	// survives process kills but not power loss; production servers and
	// the chaos campaigns run wal.SyncAlways.
	Sync wal.SyncMode

	// Shards is the number of independent instance-table shards, each
	// with its own event loop; instances hash to a shard. Sharding never
	// changes results (an instance's events still serialize on its owning
	// loop), only concurrency. 0 means 4.
	Shards int

	// MaxInflight bounds the undecided-instance table across all shards;
	// a submit that would open an instance beyond it is shed with
	// *OverloadError. 0 means 1024.
	MaxInflight int

	// RequestTimeout is the default per-request deadline (a request may
	// shorten or extend its own via TimeoutMS); past it the server
	// answers abstain. 0 means 2s.
	RequestTimeout time.Duration

	// InstanceTTL evicts an undecided instance (abstaining any waiters
	// still attached) so the table stays bounded; the journaled proposal
	// keeps a later resubmission first-wins consistent. 0 means
	// 2×RequestTimeout.
	InstanceTTL time.Duration

	// Mesh tunes the netsub transport (queue sizes, heartbeats, redial
	// policy). Me/N/Addrs/Listener/Incarnation/Seed/Observer/Hist are
	// overwritten from this Config.
	Mesh netsub.Config

	// Seed derives the mesh redial jitter.
	Seed int64

	// Observer, when non-nil, receives "serve.*" events; Hist, when
	// non-nil, receives request/decide latency and table depth
	// distributions, plus journal and broadcast batch sizes
	// ("serve_wal_batch", "serve_bcast_batch").
	Observer obs.Observer
	Hist     *hist.Registry

	// AckBeforeJournalBug plants the durability inversion: decisions are
	// acknowledged to clients before they are journaled, so a crash in
	// between loses an acknowledged decision. Exists to be caught by the
	// chaos campaign; never set it otherwise.
	AckBeforeJournalBug bool

	// CrashAfterAcks, when >0, halts the server abruptly (no clean
	// shutdown, Crashed() closes) immediately after the CrashAfterAcks-th
	// decision acknowledged to at least one client — the chaos campaign's
	// deterministic kill point.
	CrashAfterAcks int
}

func (c *Config) fill() error {
	if c.N <= 0 {
		return fmt.Errorf("serve: invalid mesh size %d", c.N)
	}
	if c.Me < 0 || int(c.Me) >= c.N {
		return fmt.Errorf("serve: pid %d outside mesh of %d", c.Me, c.N)
	}
	if c.F < 0 || c.F >= c.N {
		return fmt.Errorf("serve: need 0 <= f < n, got f=%d n=%d", c.F, c.N)
	}
	if c.WALDir == "" {
		return fmt.Errorf("serve: WALDir is required")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.InstanceTTL <= 0 {
		c.InstanceTTL = 2 * c.RequestTimeout
	}
	if c.ClientAddr == "" && c.ClientListener == nil {
		c.ClientAddr = "127.0.0.1:0"
	}
	return nil
}

// Stats is a point-in-time snapshot of a server's counters.
type Stats struct {
	// Submits counts submit requests received; IdempotentHits the subset
	// answered straight from the decision table (retries, duplicates).
	Submits        int64
	IdempotentHits int64

	// Decisions counts instances this server decided locally; Adopted
	// the decisions learned from peer broadcasts; AckedDecisions the
	// decisions acknowledged to at least one waiting client.
	Decisions      int64
	Adopted        int64
	AckedDecisions int64

	// Overloads counts submits shed by admission control; Abstains
	// counts requests degraded to abstain at their deadline; Evictions
	// counts undecided instances dropped at their TTL.
	Overloads int64
	Abstains  int64
	Evictions int64

	// PeerProposes and PeerDecides count mesh messages handled;
	// PeerSheds counts peer proposals dropped because the instance
	// table was full.
	PeerProposes int64
	PeerDecides  int64
	PeerSheds    int64

	// Queries counts query requests.
	Queries int64

	// RecoveredDecisions and RecoveredProposals count journal records
	// replayed at start; Incarnation is boots+1.
	RecoveredDecisions int64
	RecoveredProposals int64
	Incarnation        int
}

// counters is the lock-free internal form of Stats: every field is an
// atomic so no shard loop ever takes a server-wide mutex to count.
type counters struct {
	submits, idempotentHits              atomic.Int64
	decisions, adopted, ackedDecisions   atomic.Int64
	overloads, abstains, evictions       atomic.Int64
	peerProposes, peerDecides, peerSheds atomic.Int64
	queries                              atomic.Int64
}

// instance is one in-flight agreement instance.
type instance struct {
	id       string
	proposal int
	got      map[core.PID]int // pid → proposal heard (includes self)
	waiters  []*waiter
	start    time.Time
	gen      uint64 // guards TTL timers across evict/reopen
}

// waiter is one client request attached to an instance.
type waiter struct {
	req   string
	cc    *clientConn
	start time.Time
	timer *time.Timer
}

// event is the closed set of inputs a shard loop consumes.
type (
	submitEv struct {
		req   Request
		cc    *clientConn
		start time.Time
	}
	queryEv struct {
		req Request
		cc  *clientConn
	}
	peerEv struct {
		from core.PID
		kind byte
		inst string
		val  int
	}
	reqExpireEv struct {
		inst string
		req  string
	}
	instExpireEv struct {
		inst string
		gen  uint64
	}
)

// shardTable is the state one shard loop owns exclusively: the instances
// that hash to it. No lock — only the owning loop touches it.
type shardTable struct {
	inflight  map[string]*instance
	proposals map[string]int // first-wins proposal per instance, journaled
	decided   map[string]int
	gen       uint64
}

// maxBcastBatch bounds one coalesced broadcast frame.
const maxBcastBatch = 64

// Server is one agreement-service node. Start it with Start; stop it
// cleanly with Close, or abruptly (simulated kill) with Kill.
type Server struct {
	cfg   Config
	node  *netsub.Node
	cln   net.Listener
	log   *wal.Log
	group *wal.Group

	ev       []chan any // one event queue per shard loop
	bcast    chan []byte
	done     chan struct{}
	crashed  chan struct{}
	haltOne  sync.Once
	crashOne sync.Once
	wg       sync.WaitGroup
	wwg      sync.WaitGroup // connection writers, drained before conns close

	connMu sync.Mutex
	conns  map[*clientConn]struct{}
	halted bool // set under connMu; accepted conns arriving later are refused

	// Shard-loop-owned state: sh[i] is touched only by loop i.
	sh []shardTable

	// Cross-shard state, all atomic — nothing on the decide path takes a
	// server-wide lock.
	inflightN atomic.Int64 // global admission counter
	acked     atomic.Int64 // decisions acked to ≥1 client (crash hook)
	ctr       counters

	// recovered is the decision map as replayed from the WAL at Start,
	// frozen — the durability audit's ground truth.
	recovered map[string]int

	recoveredProposals int64
	incarnation        int

	hReq      *hist.Histogram
	hDecide   *hist.Histogram
	hInflight *hist.Histogram
	hBcast    *hist.Histogram
}

// Start opens (or creates) the WAL, replays it, joins the mesh as the
// next incarnation, and begins serving clients.
func Start(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	log, recs, _, err := wal.Open(cfg.WALDir, wal.Options{Sync: cfg.Sync})
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		log:       log,
		ev:        make([]chan any, cfg.Shards),
		bcast:     make(chan []byte, 1024),
		done:      make(chan struct{}),
		crashed:   make(chan struct{}),
		conns:     make(map[*clientConn]struct{}),
		sh:        make([]shardTable, cfg.Shards),
		recovered: make(map[string]int),
	}
	for i := range s.sh {
		s.ev[i] = make(chan any, 1024)
		s.sh[i] = shardTable{
			inflight:  make(map[string]*instance),
			proposals: make(map[string]int),
			decided:   make(map[string]int),
		}
	}
	boots := 0
	for _, r := range recs {
		switch r.Kind {
		case recBoot:
			boots++
		case recProposal:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				log.Close()
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			s.sh[s.shardOf(inst)].proposals[inst] = val
			s.recoveredProposals++
		case recDecision:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				log.Close()
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			s.sh[s.shardOf(inst)].decided[inst] = val
			s.recovered[inst] = val
		}
	}
	s.incarnation = boots + 1
	if _, err := log.Append(recBoot, encodeBoot(s.incarnation)); err != nil {
		log.Close()
		return nil, err
	}

	var walBatchHist *hist.Histogram
	if cfg.Hist != nil {
		s.hReq = cfg.Hist.Get("serve_request_ns")
		s.hDecide = cfg.Hist.Get("serve_decide_ns")
		s.hInflight = cfg.Hist.Get("serve_inflight_depth")
		s.hBcast = cfg.Hist.Get("serve_bcast_batch")
		walBatchHist = cfg.Hist.Get("serve_wal_batch")
	}
	// From here on the group committer is the journal's single writer:
	// every shard loop appends through it, one fsync per batch.
	s.group = wal.NewGroup(log, wal.GroupOptions{BatchHist: walBatchHist})

	mesh := cfg.Mesh
	mesh.Me, mesh.N, mesh.Addrs = cfg.Me, cfg.N, cfg.MeshAddrs
	mesh.Listener = cfg.MeshListener
	mesh.Incarnation = s.incarnation
	mesh.Seed = cfg.Seed
	mesh.Observer = cfg.Observer
	mesh.Hist = cfg.Hist
	node, err := netsub.Start(mesh)
	if err != nil {
		s.group.Close()
		log.Close()
		return nil, fmt.Errorf("serve: join mesh: %w", err)
	}
	s.node = node

	cln := cfg.ClientListener
	if cln == nil {
		cln, err = net.Listen("tcp", cfg.ClientAddr)
		if err != nil {
			node.Close()
			s.group.Close()
			log.Close()
			return nil, fmt.Errorf("serve: bind client listener: %w", err)
		}
	}
	s.cln = cln

	if boots > 0 {
		s.event("serve.recover", map[string]any{
			"incarnation": s.incarnation,
			"decisions":   len(s.recovered),
			"proposals":   s.recoveredProposals,
		})
	}

	s.wg.Add(cfg.Shards + 3)
	for i := 0; i < cfg.Shards; i++ {
		go s.loop(i)
	}
	go s.acceptLoop()
	go s.recvLoop()
	go s.batchLoop()
	return s, nil
}

// shardOf maps an instance id to its owning shard loop.
func (s *Server) shardOf(inst string) int {
	h := fnv.New32a()
	h.Write([]byte(inst))
	return int(h.Sum32() % uint32(s.cfg.Shards))
}

// ClientAddr is the address clients dial.
func (s *Server) ClientAddr() string { return s.cln.Addr().String() }

// MeshAddr is this node's mesh listen address.
func (s *Server) MeshAddr() string { return s.node.Addr() }

// Incarnation is this boot's WAL-derived incarnation number.
func (s *Server) Incarnation() int { return s.incarnation }

// Crashed closes when a CrashAfterAcks hook fires. It never closes on
// Close or Kill.
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// RecoveredDecisions returns a copy of the decision map as it was
// replayed from the WAL at Start, before any new traffic — what this
// incarnation durably remembers from its predecessors. The chaos
// campaign audits acknowledged decisions against exactly this.
func (s *Server) RecoveredDecisions() map[string]int {
	out := make(map[string]int, len(s.recovered))
	for k, v := range s.recovered {
		out[k] = v
	}
	return out
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submits:            s.ctr.submits.Load(),
		IdempotentHits:     s.ctr.idempotentHits.Load(),
		Decisions:          s.ctr.decisions.Load(),
		Adopted:            s.ctr.adopted.Load(),
		AckedDecisions:     s.ctr.ackedDecisions.Load(),
		Overloads:          s.ctr.overloads.Load(),
		Abstains:           s.ctr.abstains.Load(),
		Evictions:          s.ctr.evictions.Load(),
		PeerProposes:       s.ctr.peerProposes.Load(),
		PeerDecides:        s.ctr.peerDecides.Load(),
		PeerSheds:          s.ctr.peerSheds.Load(),
		Queries:            s.ctr.queries.Load(),
		RecoveredDecisions: int64(len(s.recovered)),
		RecoveredProposals: s.recoveredProposals,
		Incarnation:        s.incarnation,
	}
}

// JournalStats exposes the group committer's coalescing counters.
func (s *Server) JournalStats() wal.GroupStats { return s.group.Stats() }

// Mesh exposes the underlying transport node (for its Stats).
func (s *Server) Mesh() *netsub.Node { return s.node }

// Close shuts the server down cleanly: stops serving, waits for the
// goroutines, drains the journal committer, syncs and closes the journal.
func (s *Server) Close() error {
	s.halt()
	s.wg.Wait()
	s.wwg.Wait()
	s.group.Close()
	return s.log.Close()
}

// Kill halts the server abruptly, simulating a process kill: goroutines
// stop, but the journal is abandoned without a sync or clean close —
// whatever the configured SyncMode already made durable is all a restart
// will see.
func (s *Server) Kill() {
	s.halt()
	s.wg.Wait()
	s.wwg.Wait()
	s.group.Close()
}

// halt stops serving: closes done, both listeners and the mesh node,
// waits for connection writers to flush what was already acknowledged
// (an ack handed to a writer is an ack handed to the kernel — a real
// SIGKILL would still deliver it), then closes every client connection.
// Idempotent.
func (s *Server) halt() {
	s.haltOne.Do(func() {
		close(s.done)
		s.cln.Close()
		s.node.Close()
		s.connMu.Lock()
		s.halted = true
		conns := make([]*clientConn, 0, len(s.conns))
		for cc := range s.conns {
			conns = append(conns, cc)
		}
		s.connMu.Unlock()
		// No new writers can register past this point; wait for the
		// existing ones to flush, then cut the connections.
		s.wwg.Wait()
		for _, cc := range conns {
			cc.c.Close()
		}
	})
}

// post delivers an event to the instance's shard loop unless the server
// is halting.
func (s *Server) post(shard int, e any) {
	select {
	case s.ev[shard] <- e:
	case <-s.done:
	}
}

// broadcast hands a peer message to the batcher, which packs it with
// whatever else is in flight into one mesh frame per peer.
func (s *Server) broadcast(payload []byte) {
	select {
	case s.bcast <- payload:
	case <-s.done:
	}
}

// event emits one serve.* observer event.
func (s *Server) event(kind string, fields map[string]any) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.Event(kind, -1, int(s.cfg.Me), fields)
	}
}

// loop is one shard's event loop: it exclusively owns the instances that
// hash to shard i, so the table needs no lock and journal-before-ack
// stays serial per instance.
func (s *Server) loop(i int) {
	defer s.wg.Done()
	t := &s.sh[i]
	for {
		select {
		case <-s.done:
			return
		default:
		}
		select {
		case <-s.done:
			return
		case e := <-s.ev[i]:
			if s.handle(i, t, e) {
				return // CrashAfterAcks fired: the loop dies mid-stride
			}
		}
	}
}

// handle dispatches one event; a true return crashes the loop.
func (s *Server) handle(shard int, t *shardTable, e any) bool {
	switch ev := e.(type) {
	case submitEv:
		return s.onSubmit(shard, t, ev)
	case queryEv:
		s.onQuery(t, ev)
	case peerEv:
		return s.onPeer(shard, t, ev)
	case reqExpireEv:
		s.onReqExpire(t, ev)
	case instExpireEv:
		s.onInstExpire(t, ev)
	}
	return false
}

func (s *Server) onSubmit(shard int, t *shardTable, ev submitEv) bool {
	s.ctr.submits.Add(1)
	id, req := ev.req.Inst, ev.req.Req

	// Idempotency: a decided instance answers every (re)submission from
	// the decision table; nothing can decide twice.
	if val, ok := t.decided[id]; ok {
		s.ctr.idempotentHits.Add(1)
		s.event("serve.dup", nil)
		s.respond(ev.cc, ev.start, Response{
			Req: req, Inst: id, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
		})
		return false
	}

	ins, open := t.inflight[id]
	if !open {
		// Admission control: opening one more instance past the global
		// bound sheds the request instead of queueing it.
		if n := s.inflightN.Load(); n >= int64(s.cfg.MaxInflight) {
			oe := &OverloadError{Inflight: int(n), Max: s.cfg.MaxInflight}
			s.ctr.overloads.Add(1)
			s.event("serve.shed", map[string]any{"inflight": oe.Inflight})
			s.respond(ev.cc, ev.start, Response{
				Req: req, Inst: id, Status: StatusOverload,
				Inflight: oe.Inflight, Max: oe.Max, Incarnation: s.incarnation,
			})
			return false
		}
		ins = s.openInstance(shard, t, id, ev.req.Val)
	} else {
		// A re-submission while in flight re-broadcasts our proposal:
		// cheap, and it re-seeds peers that restarted mid-instance.
		s.broadcast(encodePeerMsg(pmPropose, id, ins.proposal))
	}

	d := s.cfg.RequestTimeout
	if ev.req.TimeoutMS > 0 {
		d = time.Duration(ev.req.TimeoutMS) * time.Millisecond
	}
	w := &waiter{req: req, cc: ev.cc, start: ev.start}
	w.timer = time.AfterFunc(d, func() { s.post(shard, reqExpireEv{inst: id, req: req}) })
	ins.waiters = append(ins.waiters, w)

	return s.maybeDecide(t, ins)
}

// openInstance creates the in-flight entry for id, journaling and
// broadcasting the first-wins proposal. The proposal journal entry is
// what keeps this node's proposal stable across kill-and-restart: a
// resubmission after recovery proposes the same value, so the min-of-view
// decision rule keeps drawing from the same closed set.
func (s *Server) openInstance(shard int, t *shardTable, id string, val int) *instance {
	prop, known := t.proposals[id]
	if !known {
		prop = val
		t.proposals[id] = prop
		s.journal(recProposal, encodeInstVal(id, prop))
	}
	t.gen++
	ins := &instance{
		id:       id,
		proposal: prop,
		got:      map[core.PID]int{s.cfg.Me: prop},
		start:    time.Now(),
		gen:      t.gen,
	}
	t.inflight[id] = ins
	if n := s.inflightN.Add(1); s.hInflight != nil {
		s.hInflight.Record(n)
	}
	gen := ins.gen
	time.AfterFunc(s.cfg.InstanceTTL, func() { s.post(shard, instExpireEv{inst: id, gen: gen}) })
	s.broadcast(encodePeerMsg(pmPropose, id, prop))
	return ins
}

func (s *Server) onQuery(t *shardTable, ev queryEv) {
	s.ctr.queries.Add(1)
	if val, ok := t.decided[ev.req.Inst]; ok {
		s.respond(ev.cc, time.Time{}, Response{
			Req: ev.req.Req, Inst: ev.req.Inst, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
		})
		return
	}
	s.respond(ev.cc, time.Time{}, Response{
		Req: ev.req.Req, Inst: ev.req.Inst, Status: StatusUnknown, Incarnation: s.incarnation,
	})
}

func (s *Server) onPeer(shard int, t *shardTable, ev peerEv) bool {
	switch ev.kind {
	case pmPropose:
		s.ctr.peerProposes.Add(1)
		if val, ok := t.decided[ev.inst]; ok {
			// Help the straggler (a restarted peer re-proposing an old
			// instance) straight to the decision.
			s.node.Send(ev.from, encodePeerMsg(pmDecide, ev.inst, val))
			return false
		}
		ins, open := t.inflight[ev.inst]
		if !open {
			if s.inflightN.Load() >= int64(s.cfg.MaxInflight) {
				// Peer-initiated instances obey the same admission bound;
				// the origin's deadline degrades the loss into abstain.
				s.ctr.peerSheds.Add(1)
				s.event("serve.shed", map[string]any{"inflight": int(s.inflightN.Load()), "peer": true})
				return false
			}
			ins = s.openInstance(shard, t, ev.inst, ev.val)
		}
		if _, seen := ins.got[ev.from]; !seen {
			ins.got[ev.from] = ev.val
		} else {
			// A repeated proposal is a peer that lost our answer (or a
			// restart): resend ours directly rather than re-flooding.
			s.node.Send(ev.from, encodePeerMsg(pmPropose, ev.inst, ins.proposal))
		}
		return s.maybeDecide(t, ins)
	case pmDecide:
		s.ctr.peerDecides.Add(1)
		if _, ok := t.decided[ev.inst]; ok {
			return false
		}
		// Adopting a peer's decision only merges decision sets — the
		// adopted value is itself a min over an n−f view, so the
		// ≤ f+1 distinct-decisions bound is unchanged.
		s.ctr.adopted.Add(1)
		s.event("serve.adopt", nil)
		return s.commitDecision(t, ev.inst, ev.val, false)
	}
	return false
}

func (s *Server) maybeDecide(t *shardTable, ins *instance) bool {
	if len(ins.got) < s.cfg.N-s.cfg.F {
		return false
	}
	min := ins.proposal
	for _, v := range ins.got {
		if v < min {
			min = v
		}
	}
	s.ctr.decisions.Add(1)
	s.event("serve.decide", map[string]any{"gathered": len(ins.got)})
	if s.hDecide != nil {
		s.hDecide.Record(time.Since(ins.start).Nanoseconds())
	}
	return s.commitDecision(t, ins.id, min, true)
}

// commitDecision is where the durability contract lives. The honest
// order is: journal the decision (through the group committer — the
// append returns only once the record is durable per the SyncMode), then
// update memory, broadcast, and acknowledge waiters — a crash at any
// point either loses an instance no client was ever told about, or loses
// nothing. If the journal refuses the append (the server is halting),
// the ack is skipped too: journal-before-ack survives shutdown races.
// With AckBeforeJournalBug the acknowledgement happens first, so a crash
// in the window (which CrashAfterAcks plants deterministically) loses a
// decision a client already holds — the violation the chaos campaign
// exists to catch. Returns true when the crash hook fired.
func (s *Server) commitDecision(t *shardTable, id string, val int, local bool) bool {
	ins := t.inflight[id]
	if !s.cfg.AckBeforeJournalBug {
		if s.journal(recDecision, encodeInstVal(id, val)) != nil {
			return false // halting: never acknowledge what wasn't journaled
		}
	}
	t.decided[id] = val
	if _, ok := t.inflight[id]; ok {
		delete(t.inflight, id)
		s.inflightN.Add(-1)
	}
	acked := false
	if ins != nil {
		for _, w := range ins.waiters {
			w.timer.Stop()
			s.respond(w.cc, w.start, Response{
				Req: w.req, Inst: id, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
			})
			acked = true
		}
		ins.waiters = nil
	}
	crash := s.noteAck(acked)
	if s.cfg.AckBeforeJournalBug {
		if crash {
			// The planted bug's fatal window: the client holds the ack,
			// the journal never hears about it.
			s.crash()
			return true
		}
		s.journal(recDecision, encodeInstVal(id, val))
	}
	if local {
		s.broadcast(encodePeerMsg(pmDecide, id, val))
	}
	if crash {
		s.crash()
		return true
	}
	return false
}

// journal appends one record through the group committer, blocking until
// it is durable per the configured SyncMode. An error means the journal
// is closing — the caller must not externalize anything based on the
// record.
func (s *Server) journal(kind uint8, payload []byte) error {
	_, err := s.group.Append(kind, payload)
	return err
}

// noteAck counts decisions acknowledged to at least one client and
// reports whether the CrashAfterAcks hook should fire now.
func (s *Server) noteAck(acked bool) bool {
	if !acked {
		return false
	}
	n := s.acked.Add(1)
	s.ctr.ackedDecisions.Add(1)
	return s.cfg.CrashAfterAcks > 0 && n == int64(s.cfg.CrashAfterAcks)
}

// crash is the abrupt internal halt: mark, stop serving, die mid-stride.
func (s *Server) crash() {
	s.crashOne.Do(func() { close(s.crashed) })
	s.event("serve.crash", map[string]any{"acked": s.acked.Load()})
	s.halt()
}

func (s *Server) onReqExpire(t *shardTable, ev reqExpireEv) {
	ins, ok := t.inflight[ev.inst]
	if !ok {
		return
	}
	for i, w := range ins.waiters {
		if w.req != ev.req {
			continue
		}
		ins.waiters = append(ins.waiters[:i], ins.waiters[i+1:]...)
		s.ctr.abstains.Add(1)
		// Abstain-and-report: the missing n−f−gathered senders are
		// exactly the processes D(i,r) would suspect this round.
		s.event("serve.abstain", map[string]any{"gathered": len(ins.got), "need": s.cfg.N - s.cfg.F})
		s.respond(w.cc, w.start, Response{
			Req: w.req, Inst: ev.inst, Status: StatusAbstain,
			Gathered: len(ins.got), Need: s.cfg.N - s.cfg.F, Incarnation: s.incarnation,
		})
		return
	}
}

func (s *Server) onInstExpire(t *shardTable, ev instExpireEv) {
	ins, ok := t.inflight[ev.inst]
	if !ok || ins.gen != ev.gen {
		return
	}
	for _, w := range ins.waiters {
		w.timer.Stop()
		s.ctr.abstains.Add(1)
		s.respond(w.cc, w.start, Response{
			Req: w.req, Inst: ev.inst, Status: StatusAbstain,
			Gathered: len(ins.got), Need: s.cfg.N - s.cfg.F, Incarnation: s.incarnation,
		})
	}
	ins.waiters = nil
	delete(t.inflight, ev.inst)
	s.inflightN.Add(-1)
	s.ctr.evictions.Add(1)
	s.event("serve.evict_instance", map[string]any{"gathered": len(ins.got)})
}

// respond hands a response to the connection's writer and records the
// request latency.
func (s *Server) respond(cc *clientConn, start time.Time, r Response) {
	if s.hReq != nil && !start.IsZero() {
		s.hReq.Record(time.Since(start).Nanoseconds())
	}
	cc.respond(r)
}

// batchLoop coalesces outbound broadcasts: whatever peer messages the
// shard loops queued while the previous Broadcast was in flight are
// packed into one pmBatch frame — one mesh send per peer per batch. The
// drain is greedy, so at low load every message still departs alone and
// immediately; under load the batch size self-tunes to the backlog.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	msgs := make([][]byte, 0, maxBcastBatch)
	for {
		select {
		case <-s.done:
			return
		case m := <-s.bcast:
			msgs = append(msgs[:0], m)
		drain:
			for len(msgs) < maxBcastBatch {
				select {
				case m2 := <-s.bcast:
					msgs = append(msgs, m2)
				default:
					break drain
				}
			}
			if s.hBcast != nil {
				s.hBcast.Record(int64(len(msgs)))
			}
			if len(msgs) == 1 {
				s.node.Broadcast(msgs[0])
			} else {
				s.node.Broadcast(encodePeerBatch(msgs))
			}
		}
	}
}

// recvLoop pumps mesh messages into the shard loops, unpacking batch
// frames into their constituent messages.
func (s *Server) recvLoop() {
	defer s.wg.Done()
	for {
		env, err := s.node.Recv()
		if err != nil {
			return
		}
		if env.From == s.cfg.Me {
			continue // Broadcast self-delivers; local state is already updated
		}
		b, ok := env.Payload.([]byte)
		if !ok {
			continue
		}
		if len(b) > 0 && b[0] == pmBatch {
			if err := decodePeerBatch(b, func(m []byte) {
				s.handlePeerMsg(env.From, m)
			}); err != nil {
				s.event("serve.bad_peer_msg", map[string]any{"err": err.Error()})
			}
			continue
		}
		s.handlePeerMsg(env.From, b)
	}
}

// handlePeerMsg decodes one peer message and posts it to the owning
// shard loop.
func (s *Server) handlePeerMsg(from core.PID, b []byte) {
	kind, inst, val, err := decodePeerMsg(b)
	if err != nil {
		s.event("serve.bad_peer_msg", map[string]any{"err": err.Error()})
		return
	}
	s.post(s.shardOf(inst), peerEv{from: from, kind: kind, inst: inst, val: val})
}

// clientConn is one accepted client connection: a reader goroutine
// parses requests into events, a writer goroutine drains the bounded
// response queue. A client that stops reading fills the queue and is
// disconnected — the client-side mirror of the mesh's backpressure
// discipline.
type clientConn struct {
	c    net.Conn
	out  chan Response
	dead chan struct{} // closed by the reader on its way out
}

func (cc *clientConn) respond(r Response) {
	select {
	case cc.out <- r:
	default:
		cc.c.Close() // slow client: shed the connection, not the server
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.cln.Accept()
		if err != nil {
			return
		}
		cc := &clientConn{c: c, out: make(chan Response, 64), dead: make(chan struct{})}
		s.connMu.Lock()
		if s.halted {
			s.connMu.Unlock()
			c.Close()
			return
		}
		s.conns[cc] = struct{}{}
		s.wg.Add(1)
		s.wwg.Add(1)
		s.connMu.Unlock()
		go s.readConn(cc)
		go s.writeConn(cc)
	}
}

func (s *Server) readConn(cc *clientConn) {
	defer s.wg.Done()
	defer func() {
		close(cc.dead)
		cc.c.Close()
		s.connMu.Lock()
		delete(s.conns, cc)
		s.connMu.Unlock()
	}()
	dec := newLineDecoder(cc.c)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Op {
		case "submit":
			if req.Inst == "" || req.Req == "" {
				cc.respond(Response{Status: StatusError, Err: "submit needs inst and req"})
				continue
			}
			s.post(s.shardOf(req.Inst), submitEv{req: req, cc: cc, start: time.Now()})
		case "query":
			if req.Inst == "" {
				cc.respond(Response{Status: StatusError, Err: "query needs inst"})
				continue
			}
			s.post(s.shardOf(req.Inst), queryEv{req: req, cc: cc})
		default:
			cc.respond(Response{Status: StatusError, Err: "unknown op " + req.Op})
		}
	}
}

func (s *Server) writeConn(cc *clientConn) {
	defer s.wwg.Done()
	enc := newLineEncoder(cc.c)
	// drain flushes everything already queued — on shutdown this is what
	// turns "the loop acknowledged it" into "the client received it".
	drain := func() {
		for {
			select {
			case r := <-cc.out:
				cc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if enc.Encode(r) != nil {
					return
				}
			default:
				return
			}
		}
	}
	for {
		select {
		case <-s.done:
			drain()
			return
		case <-cc.dead:
			drain()
			return
		case r := <-cc.out:
			cc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if enc.Encode(r) != nil {
				cc.c.Close()
				return
			}
		}
	}
}

// ErrClosed reports an operation on a closed client.
var ErrClosed = errors.New("serve: closed")
