// Package serve is agreement-as-a-service: one Server multiplexes many
// concurrent k-set agreement instances over a single netsub peer mesh,
// journals per-instance proposals and decisions through internal/wal so
// an acknowledged decision survives kill-and-restart, and defends itself
// under overload.
//
// The protocol per instance is the quorum form of §2 item 3: each server
// adopts the first value it hears for an instance (its own client's, or
// a peer's) as its proposal, broadcasts it, and decides the minimum of
// the first n−f proposals it gathers. Views that contain n−f of the n
// proposals overlap enough that at most f+1 distinct minima exist, so
// k-agreement holds for k ≥ f+1 — the same eq. (3) argument the
// simulation stack checks, here per instance. Decisions are broadcast and
// adopted, which only merges decision sets and never widens them.
//
// Robustness is the headline, in three layers:
//
//   - Durability: proposals and decisions are journaled before a decision
//     is acknowledged to any client (journal-before-ack). A killed and
//     restarted server replays its WAL, re-enters the mesh with the next
//     incarnation, and still holds every decision it ever acknowledged.
//     The Config.AckBeforeJournalBug flag plants the classic inversion of
//     this rule for the chaos campaign to catch.
//   - Admission control: the in-flight instance table is bounded; a
//     submit that would exceed it is shed with a structured
//     *OverloadError (StatusOverload on the wire) instead of queued.
//   - Deadlines: every request carries a deadline; when it expires before
//     a quorum view forms the server answers abstain-and-report
//     (StatusAbstain with view progress) instead of hanging, and an
//     undecided instance is evicted after a TTL so the table stays
//     bounded under churn.
//
// A request that times out, gets shed, or hits a dead server is safely
// retried by Client with seeded-jitter backoff and the same request ID:
// the decision table makes every retry idempotent.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsub"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/wal"
)

// Config shapes one serving node.
type Config struct {
	// Me is this server's pid; N the mesh size; F the crash bound. The
	// decision rule gathers n−f proposals, so decisions stay within the
	// k = f+1 bound of eq. (3).
	Me core.PID
	N  int
	F  int

	// MeshAddrs maps each pid to its mesh listen address. MeshListener,
	// when non-nil, is the pre-bound mesh listener (else MeshAddrs[Me]
	// is bound).
	MeshAddrs    []string
	MeshListener net.Listener

	// ClientAddr is the client-facing listen address ("127.0.0.1:0" for
	// an ephemeral port); ClientListener, when non-nil, wins.
	ClientAddr     string
	ClientListener net.Listener

	// WALDir is the journal directory. Start replays whatever is there:
	// a fresh directory is incarnation 1, a survivor of a kill restarts
	// as incarnation boots+1 and still holds every journaled decision.
	WALDir string

	// Sync is the journal fsync policy. The zero value (wal.SyncNever)
	// survives process kills but not power loss; production servers and
	// the chaos campaigns run wal.SyncAlways.
	Sync wal.SyncMode

	// MaxInflight bounds the undecided-instance table; a submit that
	// would open an instance beyond it is shed with *OverloadError.
	// 0 means 1024.
	MaxInflight int

	// RequestTimeout is the default per-request deadline (a request may
	// shorten or extend its own via TimeoutMS); past it the server
	// answers abstain. 0 means 2s.
	RequestTimeout time.Duration

	// InstanceTTL evicts an undecided instance (abstaining any waiters
	// still attached) so the table stays bounded; the journaled proposal
	// keeps a later resubmission first-wins consistent. 0 means
	// 2×RequestTimeout.
	InstanceTTL time.Duration

	// Mesh tunes the netsub transport (queue sizes, heartbeats, redial
	// policy). Me/N/Addrs/Listener/Incarnation/Seed/Observer/Hist are
	// overwritten from this Config.
	Mesh netsub.Config

	// Seed derives the mesh redial jitter.
	Seed int64

	// Observer, when non-nil, receives "serve.*" events; Hist, when
	// non-nil, receives request/decide latency and table depth
	// distributions.
	Observer obs.Observer
	Hist     *hist.Registry

	// AckBeforeJournalBug plants the durability inversion: decisions are
	// acknowledged to clients before they are journaled, so a crash in
	// between loses an acknowledged decision. Exists to be caught by the
	// chaos campaign; never set it otherwise.
	AckBeforeJournalBug bool

	// CrashAfterAcks, when >0, halts the server abruptly (no clean
	// shutdown, Crashed() closes) immediately after the CrashAfterAcks-th
	// decision acknowledged to at least one client — the chaos campaign's
	// deterministic kill point.
	CrashAfterAcks int
}

func (c *Config) fill() error {
	if c.N <= 0 {
		return fmt.Errorf("serve: invalid mesh size %d", c.N)
	}
	if c.Me < 0 || int(c.Me) >= c.N {
		return fmt.Errorf("serve: pid %d outside mesh of %d", c.Me, c.N)
	}
	if c.F < 0 || c.F >= c.N {
		return fmt.Errorf("serve: need 0 <= f < n, got f=%d n=%d", c.F, c.N)
	}
	if c.WALDir == "" {
		return fmt.Errorf("serve: WALDir is required")
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.InstanceTTL <= 0 {
		c.InstanceTTL = 2 * c.RequestTimeout
	}
	if c.ClientAddr == "" && c.ClientListener == nil {
		c.ClientAddr = "127.0.0.1:0"
	}
	return nil
}

// Stats is a point-in-time snapshot of a server's counters.
type Stats struct {
	// Submits counts submit requests received; IdempotentHits the subset
	// answered straight from the decision table (retries, duplicates).
	Submits        int64
	IdempotentHits int64

	// Decisions counts instances this server decided locally; Adopted
	// the decisions learned from peer broadcasts; AckedDecisions the
	// decisions acknowledged to at least one waiting client.
	Decisions      int64
	Adopted        int64
	AckedDecisions int64

	// Overloads counts submits shed by admission control; Abstains
	// counts requests degraded to abstain at their deadline; Evictions
	// counts undecided instances dropped at their TTL.
	Overloads int64
	Abstains  int64
	Evictions int64

	// PeerProposes and PeerDecides count mesh messages handled;
	// PeerSheds counts peer proposals dropped because the instance
	// table was full.
	PeerProposes int64
	PeerDecides  int64
	PeerSheds    int64

	// Queries counts query requests.
	Queries int64

	// RecoveredDecisions and RecoveredProposals count journal records
	// replayed at start; Incarnation is boots+1.
	RecoveredDecisions int64
	RecoveredProposals int64
	Incarnation        int
}

// instance is one in-flight agreement instance.
type instance struct {
	id       string
	proposal int
	got      map[core.PID]int // pid → proposal heard (includes self)
	waiters  []*waiter
	start    time.Time
	gen      uint64 // guards TTL timers across evict/reopen
}

// waiter is one client request attached to an instance.
type waiter struct {
	req   string
	cc    *clientConn
	start time.Time
	timer *time.Timer
}

// event is the closed set of inputs the server loop consumes.
type (
	submitEv struct {
		req   Request
		cc    *clientConn
		start time.Time
	}
	queryEv struct {
		req Request
		cc  *clientConn
	}
	peerEv struct {
		from core.PID
		kind byte
		inst string
		val  int
	}
	reqExpireEv struct {
		inst string
		req  string
	}
	instExpireEv struct {
		inst string
		gen  uint64
	}
)

// Server is one agreement-service node. Start it with Start; stop it
// cleanly with Close, or abruptly (simulated kill) with Kill.
type Server struct {
	cfg  Config
	node *netsub.Node
	cln  net.Listener
	log  *wal.Log

	ev      chan any
	done    chan struct{}
	crashed chan struct{}
	haltOne sync.Once
	wg      sync.WaitGroup
	wwg     sync.WaitGroup // connection writers, drained before conns close

	connMu sync.Mutex
	conns  map[*clientConn]struct{}
	halted bool // set under connMu; accepted conns arriving later are refused

	// Loop-owned state: only the event loop touches these.
	inflight  map[string]*instance
	proposals map[string]int // first-wins proposal per instance, journaled
	decided   map[string]int
	gen       uint64
	acked     int64

	// recovered is the decision map as replayed from the WAL at Start,
	// frozen — the durability audit's ground truth.
	recovered map[string]int

	incarnation int

	statMu sync.Mutex
	stats  Stats

	hReq      *hist.Histogram
	hDecide   *hist.Histogram
	hInflight *hist.Histogram
}

// Start opens (or creates) the WAL, replays it, joins the mesh as the
// next incarnation, and begins serving clients.
func Start(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	log, recs, _, err := wal.Open(cfg.WALDir, wal.Options{Sync: cfg.Sync})
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		log:       log,
		ev:        make(chan any, 1024),
		done:      make(chan struct{}),
		crashed:   make(chan struct{}),
		conns:     make(map[*clientConn]struct{}),
		inflight:  make(map[string]*instance),
		proposals: make(map[string]int),
		decided:   make(map[string]int),
		recovered: make(map[string]int),
	}
	boots := 0
	for _, r := range recs {
		switch r.Kind {
		case recBoot:
			boots++
		case recProposal:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				log.Close()
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			s.proposals[inst] = val
		case recDecision:
			inst, val, err := decodeInstValRecord(r.Payload)
			if err != nil {
				log.Close()
				return nil, fmt.Errorf("serve: journal seq %d: %w", r.Seq, err)
			}
			s.decided[inst] = val
			s.recovered[inst] = val
		}
	}
	s.incarnation = boots + 1
	if _, err := log.Append(recBoot, encodeBoot(s.incarnation)); err != nil {
		log.Close()
		return nil, err
	}
	s.stats.Incarnation = s.incarnation
	s.stats.RecoveredDecisions = int64(len(s.recovered))
	s.stats.RecoveredProposals = int64(len(s.proposals))

	if cfg.Hist != nil {
		s.hReq = cfg.Hist.Get("serve_request_ns")
		s.hDecide = cfg.Hist.Get("serve_decide_ns")
		s.hInflight = cfg.Hist.Get("serve_inflight_depth")
	}

	mesh := cfg.Mesh
	mesh.Me, mesh.N, mesh.Addrs = cfg.Me, cfg.N, cfg.MeshAddrs
	mesh.Listener = cfg.MeshListener
	mesh.Incarnation = s.incarnation
	mesh.Seed = cfg.Seed
	mesh.Observer = cfg.Observer
	mesh.Hist = cfg.Hist
	node, err := netsub.Start(mesh)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("serve: join mesh: %w", err)
	}
	s.node = node

	cln := cfg.ClientListener
	if cln == nil {
		cln, err = net.Listen("tcp", cfg.ClientAddr)
		if err != nil {
			node.Close()
			log.Close()
			return nil, fmt.Errorf("serve: bind client listener: %w", err)
		}
	}
	s.cln = cln

	if boots > 0 {
		s.event("serve.recover", map[string]any{
			"incarnation": s.incarnation,
			"decisions":   len(s.recovered),
			"proposals":   len(s.proposals),
		})
	}

	s.wg.Add(3)
	go s.loop()
	go s.acceptLoop()
	go s.recvLoop()
	return s, nil
}

// ClientAddr is the address clients dial.
func (s *Server) ClientAddr() string { return s.cln.Addr().String() }

// MeshAddr is this node's mesh listen address.
func (s *Server) MeshAddr() string { return s.node.Addr() }

// Incarnation is this boot's WAL-derived incarnation number.
func (s *Server) Incarnation() int { return s.incarnation }

// Crashed closes when a CrashAfterAcks hook fires. It never closes on
// Close or Kill.
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// RecoveredDecisions returns a copy of the decision map as it was
// replayed from the WAL at Start, before any new traffic — what this
// incarnation durably remembers from its predecessors. The chaos
// campaign audits acknowledged decisions against exactly this.
func (s *Server) RecoveredDecisions() map[string]int {
	out := make(map[string]int, len(s.recovered))
	for k, v := range s.recovered {
		out[k] = v
	}
	return out
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}

// Mesh exposes the underlying transport node (for its Stats).
func (s *Server) Mesh() *netsub.Node { return s.node }

// Close shuts the server down cleanly: stops serving, waits for the
// goroutines, syncs and closes the journal.
func (s *Server) Close() error {
	s.halt()
	s.wg.Wait()
	s.wwg.Wait()
	return s.log.Close()
}

// Kill halts the server abruptly, simulating a process kill: goroutines
// stop, but the journal is abandoned without a sync or clean close —
// whatever the configured SyncMode already made durable is all a restart
// will see.
func (s *Server) Kill() {
	s.halt()
	s.wg.Wait()
	s.wwg.Wait()
}

// halt stops serving: closes done, both listeners and the mesh node,
// waits for connection writers to flush what was already acknowledged
// (an ack handed to a writer is an ack handed to the kernel — a real
// SIGKILL would still deliver it), then closes every client connection.
// Idempotent.
func (s *Server) halt() {
	s.haltOne.Do(func() {
		close(s.done)
		s.cln.Close()
		s.node.Close()
		s.connMu.Lock()
		s.halted = true
		conns := make([]*clientConn, 0, len(s.conns))
		for cc := range s.conns {
			conns = append(conns, cc)
		}
		s.connMu.Unlock()
		// No new writers can register past this point; wait for the
		// existing ones to flush, then cut the connections.
		s.wwg.Wait()
		for _, cc := range conns {
			cc.c.Close()
		}
	})
}

// post delivers an event to the loop unless the server is halting.
func (s *Server) post(e any) {
	select {
	case s.ev <- e:
	case <-s.done:
	}
}

// event emits one serve.* observer event.
func (s *Server) event(kind string, fields map[string]any) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.Event(kind, -1, int(s.cfg.Me), fields)
	}
}

func (s *Server) bump(f func(*Stats)) {
	s.statMu.Lock()
	f(&s.stats)
	s.statMu.Unlock()
}

// loop is the single goroutine that owns the instance table. Every
// mutation — client submits, peer messages, deadline and TTL expiries —
// arrives as an event, so the table needs no lock and the
// journal-before-ack ordering is trivially serial.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		select {
		case <-s.done:
			return
		case e := <-s.ev:
			if s.handle(e) {
				return // CrashAfterAcks fired: the loop dies mid-stride
			}
		}
	}
}

// handle dispatches one event; a true return crashes the loop.
func (s *Server) handle(e any) bool {
	switch ev := e.(type) {
	case submitEv:
		return s.onSubmit(ev)
	case queryEv:
		s.onQuery(ev)
	case peerEv:
		return s.onPeer(ev)
	case reqExpireEv:
		s.onReqExpire(ev)
	case instExpireEv:
		s.onInstExpire(ev)
	}
	return false
}

func (s *Server) onSubmit(ev submitEv) bool {
	s.bump(func(st *Stats) { st.Submits++ })
	id, req := ev.req.Inst, ev.req.Req

	// Idempotency: a decided instance answers every (re)submission from
	// the decision table; nothing can decide twice.
	if val, ok := s.decided[id]; ok {
		s.bump(func(st *Stats) { st.IdempotentHits++ })
		s.event("serve.dup", nil)
		s.respond(ev.cc, ev.start, Response{
			Req: req, Inst: id, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
		})
		return false
	}

	ins, open := s.inflight[id]
	if !open {
		// Admission control: opening one more instance past the bound
		// sheds the request instead of queueing it.
		if len(s.inflight) >= s.cfg.MaxInflight {
			oe := &OverloadError{Inflight: len(s.inflight), Max: s.cfg.MaxInflight}
			s.bump(func(st *Stats) { st.Overloads++ })
			s.event("serve.shed", map[string]any{"inflight": oe.Inflight})
			s.respond(ev.cc, ev.start, Response{
				Req: req, Inst: id, Status: StatusOverload,
				Inflight: oe.Inflight, Max: oe.Max, Incarnation: s.incarnation,
			})
			return false
		}
		ins = s.openInstance(id, ev.req.Val)
	} else {
		// A re-submission while in flight re-broadcasts our proposal:
		// cheap, and it re-seeds peers that restarted mid-instance.
		s.node.Broadcast(encodePeerMsg(pmPropose, id, ins.proposal))
	}

	d := s.cfg.RequestTimeout
	if ev.req.TimeoutMS > 0 {
		d = time.Duration(ev.req.TimeoutMS) * time.Millisecond
	}
	w := &waiter{req: req, cc: ev.cc, start: ev.start}
	w.timer = time.AfterFunc(d, func() { s.post(reqExpireEv{inst: id, req: req}) })
	ins.waiters = append(ins.waiters, w)

	return s.maybeDecide(ins)
}

// openInstance creates the in-flight entry for id, journaling and
// broadcasting the first-wins proposal. The proposal journal entry is
// what keeps this node's proposal stable across kill-and-restart: a
// resubmission after recovery proposes the same value, so the min-of-view
// decision rule keeps drawing from the same closed set.
func (s *Server) openInstance(id string, val int) *instance {
	prop, known := s.proposals[id]
	if !known {
		prop = val
		s.proposals[id] = prop
		s.log.Append(recProposal, encodeInstVal(id, prop))
	}
	s.gen++
	ins := &instance{
		id:       id,
		proposal: prop,
		got:      map[core.PID]int{s.cfg.Me: prop},
		start:    time.Now(),
		gen:      s.gen,
	}
	s.inflight[id] = ins
	if s.hInflight != nil {
		s.hInflight.Record(int64(len(s.inflight)))
	}
	gen := ins.gen
	time.AfterFunc(s.cfg.InstanceTTL, func() { s.post(instExpireEv{inst: id, gen: gen}) })
	s.node.Broadcast(encodePeerMsg(pmPropose, id, prop))
	return ins
}

func (s *Server) onQuery(ev queryEv) {
	s.bump(func(st *Stats) { st.Queries++ })
	if val, ok := s.decided[ev.req.Inst]; ok {
		s.respond(ev.cc, time.Time{}, Response{
			Req: ev.req.Req, Inst: ev.req.Inst, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
		})
		return
	}
	s.respond(ev.cc, time.Time{}, Response{
		Req: ev.req.Req, Inst: ev.req.Inst, Status: StatusUnknown, Incarnation: s.incarnation,
	})
}

func (s *Server) onPeer(ev peerEv) bool {
	switch ev.kind {
	case pmPropose:
		s.bump(func(st *Stats) { st.PeerProposes++ })
		if val, ok := s.decided[ev.inst]; ok {
			// Help the straggler (a restarted peer re-proposing an old
			// instance) straight to the decision.
			s.node.Send(ev.from, encodePeerMsg(pmDecide, ev.inst, val))
			return false
		}
		ins, open := s.inflight[ev.inst]
		if !open {
			if len(s.inflight) >= s.cfg.MaxInflight {
				// Peer-initiated instances obey the same admission bound;
				// the origin's deadline degrades the loss into abstain.
				s.bump(func(st *Stats) { st.PeerSheds++ })
				s.event("serve.shed", map[string]any{"inflight": len(s.inflight), "peer": true})
				return false
			}
			ins = s.openInstance(ev.inst, ev.val)
		}
		if _, seen := ins.got[ev.from]; !seen {
			ins.got[ev.from] = ev.val
		} else {
			// A repeated proposal is a peer that lost our answer (or a
			// restart): resend ours directly rather than re-flooding.
			s.node.Send(ev.from, encodePeerMsg(pmPropose, ev.inst, ins.proposal))
		}
		return s.maybeDecide(ins)
	case pmDecide:
		s.bump(func(st *Stats) { st.PeerDecides++ })
		if _, ok := s.decided[ev.inst]; ok {
			return false
		}
		// Adopting a peer's decision only merges decision sets — the
		// adopted value is itself a min over an n−f view, so the
		// ≤ f+1 distinct-decisions bound is unchanged.
		s.bump(func(st *Stats) { st.Adopted++ })
		s.event("serve.adopt", nil)
		return s.commitDecision(ev.inst, ev.val, false)
	}
	return false
}

func (s *Server) maybeDecide(ins *instance) bool {
	if len(ins.got) < s.cfg.N-s.cfg.F {
		return false
	}
	min := ins.proposal
	for _, v := range ins.got {
		if v < min {
			min = v
		}
	}
	s.bump(func(st *Stats) { st.Decisions++ })
	s.event("serve.decide", map[string]any{"gathered": len(ins.got)})
	if s.hDecide != nil {
		s.hDecide.Record(time.Since(ins.start).Nanoseconds())
	}
	return s.commitDecision(ins.id, min, true)
}

// commitDecision is where the durability contract lives. The honest
// order is: journal the decision, then update memory, broadcast, and
// acknowledge waiters — a crash at any point either loses an instance no
// client was ever told about, or loses nothing. With
// AckBeforeJournalBug the acknowledgement happens first, so a crash in
// the window (which CrashAfterAcks plants deterministically) loses a
// decision a client already holds — the violation the chaos campaign
// exists to catch. Returns true when the crash hook fired.
func (s *Server) commitDecision(id string, val int, local bool) bool {
	ins := s.inflight[id]
	if !s.cfg.AckBeforeJournalBug {
		s.log.Append(recDecision, encodeInstVal(id, val))
	}
	s.decided[id] = val
	delete(s.inflight, id)
	acked := false
	if ins != nil {
		for _, w := range ins.waiters {
			w.timer.Stop()
			s.respond(w.cc, w.start, Response{
				Req: w.req, Inst: id, Status: StatusDecided, Val: val, Incarnation: s.incarnation,
			})
			acked = true
		}
		ins.waiters = nil
	}
	crash := s.noteAck(acked)
	if s.cfg.AckBeforeJournalBug {
		if crash {
			// The planted bug's fatal window: the client holds the ack,
			// the journal never hears about it.
			s.crash()
			return true
		}
		s.log.Append(recDecision, encodeInstVal(id, val))
	}
	if local {
		s.node.Broadcast(encodePeerMsg(pmDecide, id, val))
	}
	if crash {
		s.crash()
		return true
	}
	return false
}

// noteAck counts decisions acknowledged to at least one client and
// reports whether the CrashAfterAcks hook should fire now.
func (s *Server) noteAck(acked bool) bool {
	if !acked {
		return false
	}
	s.acked++
	s.bump(func(st *Stats) { st.AckedDecisions++ })
	return s.cfg.CrashAfterAcks > 0 && s.acked == int64(s.cfg.CrashAfterAcks)
}

// crash is the abrupt internal halt: mark, stop serving, die mid-stride.
func (s *Server) crash() {
	close(s.crashed)
	s.event("serve.crash", map[string]any{"acked": s.acked})
	s.halt()
}

func (s *Server) onReqExpire(ev reqExpireEv) {
	ins, ok := s.inflight[ev.inst]
	if !ok {
		return
	}
	for i, w := range ins.waiters {
		if w.req != ev.req {
			continue
		}
		ins.waiters = append(ins.waiters[:i], ins.waiters[i+1:]...)
		s.bump(func(st *Stats) { st.Abstains++ })
		// Abstain-and-report: the missing n−f−gathered senders are
		// exactly the processes D(i,r) would suspect this round.
		s.event("serve.abstain", map[string]any{"gathered": len(ins.got), "need": s.cfg.N - s.cfg.F})
		s.respond(w.cc, w.start, Response{
			Req: w.req, Inst: ev.inst, Status: StatusAbstain,
			Gathered: len(ins.got), Need: s.cfg.N - s.cfg.F, Incarnation: s.incarnation,
		})
		return
	}
}

func (s *Server) onInstExpire(ev instExpireEv) {
	ins, ok := s.inflight[ev.inst]
	if !ok || ins.gen != ev.gen {
		return
	}
	for _, w := range ins.waiters {
		w.timer.Stop()
		s.bump(func(st *Stats) { st.Abstains++ })
		s.respond(w.cc, w.start, Response{
			Req: w.req, Inst: ev.inst, Status: StatusAbstain,
			Gathered: len(ins.got), Need: s.cfg.N - s.cfg.F, Incarnation: s.incarnation,
		})
	}
	ins.waiters = nil
	delete(s.inflight, ev.inst)
	s.bump(func(st *Stats) { st.Evictions++ })
	s.event("serve.evict_instance", map[string]any{"gathered": len(ins.got)})
}

// respond hands a response to the connection's writer and records the
// request latency.
func (s *Server) respond(cc *clientConn, start time.Time, r Response) {
	if s.hReq != nil && !start.IsZero() {
		s.hReq.Record(time.Since(start).Nanoseconds())
	}
	cc.respond(r)
}

// recvLoop pumps mesh messages into the event loop.
func (s *Server) recvLoop() {
	defer s.wg.Done()
	for {
		env, err := s.node.Recv()
		if err != nil {
			return
		}
		if env.From == s.cfg.Me {
			continue // Broadcast self-delivers; local state is already updated
		}
		b, ok := env.Payload.([]byte)
		if !ok {
			continue
		}
		kind, inst, val, err := decodePeerMsg(b)
		if err != nil {
			s.event("serve.bad_peer_msg", map[string]any{"err": err.Error()})
			continue
		}
		s.post(peerEv{from: env.From, kind: kind, inst: inst, val: val})
	}
}

// clientConn is one accepted client connection: a reader goroutine
// parses requests into events, a writer goroutine drains the bounded
// response queue. A client that stops reading fills the queue and is
// disconnected — the client-side mirror of the mesh's backpressure
// discipline.
type clientConn struct {
	c    net.Conn
	out  chan Response
	dead chan struct{} // closed by the reader on its way out
}

func (cc *clientConn) respond(r Response) {
	select {
	case cc.out <- r:
	default:
		cc.c.Close() // slow client: shed the connection, not the server
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.cln.Accept()
		if err != nil {
			return
		}
		cc := &clientConn{c: c, out: make(chan Response, 64), dead: make(chan struct{})}
		s.connMu.Lock()
		if s.halted {
			s.connMu.Unlock()
			c.Close()
			return
		}
		s.conns[cc] = struct{}{}
		s.wg.Add(1)
		s.wwg.Add(1)
		s.connMu.Unlock()
		go s.readConn(cc)
		go s.writeConn(cc)
	}
}

func (s *Server) readConn(cc *clientConn) {
	defer s.wg.Done()
	defer func() {
		close(cc.dead)
		cc.c.Close()
		s.connMu.Lock()
		delete(s.conns, cc)
		s.connMu.Unlock()
	}()
	dec := newLineDecoder(cc.c)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Op {
		case "submit":
			if req.Inst == "" || req.Req == "" {
				cc.respond(Response{Status: StatusError, Err: "submit needs inst and req"})
				continue
			}
			s.post(submitEv{req: req, cc: cc, start: time.Now()})
		case "query":
			if req.Inst == "" {
				cc.respond(Response{Status: StatusError, Err: "query needs inst"})
				continue
			}
			s.post(queryEv{req: req, cc: cc})
		default:
			cc.respond(Response{Status: StatusError, Err: "unknown op " + req.Op})
		}
	}
}

func (s *Server) writeConn(cc *clientConn) {
	defer s.wwg.Done()
	enc := newLineEncoder(cc.c)
	// drain flushes everything already queued — on shutdown this is what
	// turns "the loop acknowledged it" into "the client received it".
	drain := func() {
		for {
			select {
			case r := <-cc.out:
				cc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if enc.Encode(r) != nil {
					return
				}
			default:
				return
			}
		}
	}
	for {
		select {
		case <-s.done:
			drain()
			return
		case <-cc.dead:
			drain()
			return
		case r := <-cc.out:
			cc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if enc.Encode(r) != nil {
				cc.c.Close()
				return
			}
		}
	}
}

// ErrClosed reports an operation on a closed client.
var ErrClosed = errors.New("serve: closed")
