// Cluster is the in-process loopback deployment helper: it pre-binds
// every mesh and client listener (so all addresses are known before any
// server starts), starts n servers over per-node WAL directories, and
// can restart a killed member on its original addresses and journal —
// the shape the chaos campaign, the load generator's -local mode, and
// the benchmarks all share.
package serve

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/netsub"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/wal"
)

// ClusterConfig shapes an in-process loopback cluster.
type ClusterConfig struct {
	// N and F shape the mesh; K is carried for callers' audits (the
	// service itself enforces the n−f quorum rule, which bounds
	// decisions at f+1 distinct values).
	N, F, K int

	// Dir is the root under which each node's WAL lives (Dir/n0, Dir/n1,
	// …). Required.
	Dir string

	// Sync is each node's journal fsync policy.
	Sync wal.SyncMode

	// Shards forwards to each node's Config.Shards (0 means the node
	// default).
	Shards int

	// MaxInflight, RequestTimeout and InstanceTTL forward to each
	// node's Config.
	MaxInflight    int
	RequestTimeout time.Duration
	InstanceTTL    time.Duration

	// Mesh tunes the shared netsub transport template.
	Mesh netsub.Config

	// Seed derives per-node seeds (Seed + pid).
	Seed int64

	// Observer and Hist are shared by every node.
	Observer obs.Observer
	Hist     *hist.Registry

	// Tune, when non-nil, edits node i's Config before Start — how the
	// chaos campaign plants CrashAfterAcks and AckBeforeJournalBug on
	// its victim.
	Tune func(i int, cfg *Config)
}

// Cluster is a running in-process deployment.
type Cluster struct {
	cfg         ClusterConfig
	Servers     []*Server
	meshAddrs   []string
	clientAddrs []string
}

// StartCluster binds 2n loopback listeners, then starts every server.
func StartCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.N <= 0 {
		return nil, fmt.Errorf("serve: cluster needs n > 0, got %d", cc.N)
	}
	if cc.Dir == "" {
		return nil, fmt.Errorf("serve: cluster needs a WAL root dir")
	}
	cl := &Cluster{
		cfg:         cc,
		Servers:     make([]*Server, cc.N),
		meshAddrs:   make([]string, cc.N),
		clientAddrs: make([]string, cc.N),
	}
	meshLns := make([]net.Listener, cc.N)
	clientLns := make([]net.Listener, cc.N)
	for i := 0; i < cc.N; i++ {
		ml, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(meshLns, clientLns)
			return nil, fmt.Errorf("serve: bind mesh listener %d: %w", i, err)
		}
		cl0, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ml.Close()
			closeAll(meshLns, clientLns)
			return nil, fmt.Errorf("serve: bind client listener %d: %w", i, err)
		}
		meshLns[i], clientLns[i] = ml, cl0
		cl.meshAddrs[i] = ml.Addr().String()
		cl.clientAddrs[i] = cl0.Addr().String()
	}
	for i := 0; i < cc.N; i++ {
		cfg := cl.nodeConfig(i)
		cfg.MeshListener = meshLns[i]
		cfg.ClientListener = clientLns[i]
		if cc.Tune != nil {
			cc.Tune(i, &cfg)
		}
		s, err := Start(cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				cl.Servers[j].Close()
			}
			closeAll(meshLns[i:], clientLns[i:])
			return nil, fmt.Errorf("serve: start node %d: %w", i, err)
		}
		cl.Servers[i] = s
	}
	return cl, nil
}

// nodeConfig builds node i's base Config (no listeners attached).
func (cl *Cluster) nodeConfig(i int) Config {
	cc := cl.cfg
	return Config{
		Me:             core.PID(i),
		N:              cc.N,
		F:              cc.F,
		MeshAddrs:      cl.meshAddrs,
		ClientAddr:     cl.clientAddrs[i],
		WALDir:         filepath.Join(cc.Dir, fmt.Sprintf("n%d", i)),
		Sync:           cc.Sync,
		Shards:         cc.Shards,
		MaxInflight:    cc.MaxInflight,
		RequestTimeout: cc.RequestTimeout,
		InstanceTTL:    cc.InstanceTTL,
		Mesh:           cc.Mesh,
		Seed:           cc.Seed + int64(i),
		Observer:       cc.Observer,
		Hist:           cc.Hist,
	}
}

// ClientAddrs returns every node's client-facing address.
func (cl *Cluster) ClientAddrs() []string {
	return append([]string(nil), cl.clientAddrs...)
}

// Restart starts node i again on its original addresses and WAL
// directory: the restarted server replays its journal and re-enters the
// mesh as the next incarnation. The caller must have Killed (or Closed)
// it first. tune, when non-nil, edits the restart Config — by default
// the restart is honest (no planted bug, no crash hook carries over).
func (cl *Cluster) Restart(i int, tune func(cfg *Config)) (*Server, error) {
	cfg := cl.nodeConfig(i)
	if tune != nil {
		tune(&cfg)
	}
	s, err := Start(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: restart node %d: %w", i, err)
	}
	cl.Servers[i] = s
	return s, nil
}

// Close kills every still-running server cleanly.
func (cl *Cluster) Close() {
	for _, s := range cl.Servers {
		if s != nil {
			s.Close()
		}
	}
}

func closeAll(a, b []net.Listener) {
	for _, ln := range a {
		if ln != nil {
			ln.Close()
		}
	}
	for _, ln := range b {
		if ln != nil {
			ln.Close()
		}
	}
}
