package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

func benchCluster(b *testing.B, maxInflight int) *Cluster {
	b.Helper()
	cl, err := StartCluster(ClusterConfig{
		N: 3, F: 1, K: 2,
		Dir:            b.TempDir(),
		Sync:           wal.SyncNever,
		MaxInflight:    maxInflight,
		RequestTimeout: 5 * time.Second,
		Seed:           1,
	})
	if err != nil {
		b.Fatalf("StartCluster: %v", err)
	}
	b.Cleanup(cl.Close)
	return cl
}

// BenchmarkServeDecide measures end-to-end decisions through the
// service: client submit over loopback TCP → mesh propose/gather across
// a 3-node cluster → journal append → acknowledged response. SyncNever
// keeps the fsync cost of the filesystem out of the number; the journal
// write path itself is included.
//
// serial is one client round-tripping one instance at a time — pure
// latency. throughput is many concurrent clients over disjoint
// instances, the shape the sharded instance table, the WAL group
// committer, and the broadcast batcher exist for; it reports
// decides/sec and is tracked against serial in BENCH_core.json.
func BenchmarkServeDecide(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		cl := benchCluster(b, 0)
		c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 5 * time.Second, Seed: 1})
		defer c.Close()

		// Warm the mesh so dial latency stays out of the measurement.
		if _, err := c.Submit("warm", "warm", 0); err != nil {
			b.Fatalf("warmup: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst := fmt.Sprintf("bench-%d", i)
			resp, err := c.Submit(inst, inst, i)
			if err != nil {
				b.Fatalf("submit %d: %v", i, err)
			}
			if resp.Status != StatusDecided {
				b.Fatalf("submit %d: status %s", i, resp.Status)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decides/sec")
	})

	b.Run("throughput", func(b *testing.B) {
		const clients = 16
		cl := benchCluster(b, 1<<16)
		cs := make([]*Client, clients)
		for w := range cs {
			cs[w] = NewClient(ClientConfig{
				Addr: cl.ClientAddrs()[w%3], Timeout: 5 * time.Second, Seed: int64(w),
			})
			defer cs[w].Close()
			if _, err := cs[w].Submit(fmt.Sprintf("warm-%d", w), "warm", 0); err != nil {
				b.Fatalf("warmup %d: %v", w, err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		// Static slicing of b.N across the clients: every iteration is one
		// decided instance, all clients in flight at once.
		var wg sync.WaitGroup
		var failed sync.Once
		var benchErr error
		for w := 0; w < clients; w++ {
			lo := b.N * w / clients
			hi := b.N * (w + 1) / clients
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				c := cs[w]
				for i := lo; i < hi; i++ {
					inst := fmt.Sprintf("bench-%d", i)
					resp, err := c.Submit(inst, inst, i)
					if err != nil {
						failed.Do(func() { benchErr = fmt.Errorf("submit %d: %w", i, err) })
						return
					}
					if resp.Status != StatusDecided {
						failed.Do(func() { benchErr = fmt.Errorf("submit %d: status %s", i, resp.Status) })
						return
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		if benchErr != nil {
			b.Fatal(benchErr)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decides/sec")
	})
}
