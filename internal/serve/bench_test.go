package serve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wal"
)

// BenchmarkServeDecide measures one end-to-end decision through the
// service: client submit over loopback TCP → mesh propose/gather across
// a 3-node cluster → journal append → acknowledged response. SyncNever
// keeps the fsync cost of the filesystem out of the number; the journal
// write path itself is included.
func BenchmarkServeDecide(b *testing.B) {
	cl, err := StartCluster(ClusterConfig{
		N: 3, F: 1, K: 2,
		Dir:            b.TempDir(),
		Sync:           wal.SyncNever,
		RequestTimeout: 5 * time.Second,
		Seed:           1,
	})
	if err != nil {
		b.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	c := NewClient(ClientConfig{Addr: cl.ClientAddrs()[0], Timeout: 5 * time.Second, Seed: 1})
	defer c.Close()

	// Warm the mesh so dial latency stays out of the measurement.
	if _, err := c.Submit("warm", "warm", 0); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := fmt.Sprintf("bench-%d", i)
		resp, err := c.Submit(inst, inst, i)
		if err != nil {
			b.Fatalf("submit %d: %v", i, err)
		}
		if resp.Status != StatusDecided {
			b.Fatalf("submit %d: status %s", i, resp.Status)
		}
	}
}
