package agreement

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

// runQuorum executes the quorum k-set algorithm for n=4, f=1 under a
// benign oracle and returns the result.
func runQuorum(t *testing.T, factory core.Factory) *core.Result {
	t.Helper()
	inputs := []core.Value{3, 1, 2, 0}
	res, err := core.Run(4, inputs, factory, adversary.Benign(4), core.WithMaxRounds(8))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQuorumKSetBenignDecidesMin(t *testing.T) {
	res := runQuorum(t, QuorumKSet(1))
	for p, v := range res.Outputs {
		if v != 0 {
			t.Fatalf("process %d decided %v, want global min 0 under full views", p, v)
		}
	}
	if res.DistinctOutputs() != 1 {
		t.Fatalf("distinct outputs = %d, want 1", res.DistinctOutputs())
	}
}

func TestQuorumKSetWaitsBelowQuorum(t *testing.T) {
	// An adversary that hides two senders from process 0 keeps it below
	// the n−f=3 quorum: it must not decide that round.
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		ds := make([]core.Set, 4)
		for i := range ds {
			ds[i] = core.NewSet(4)
		}
		if r == 1 {
			ds[0].Add(1)
			ds[0].Add(2)
		}
		return core.RoundPlan{Suspects: ds}
	})
	res, err := core.Run(4, []core.Value{3, 1, 2, 0}, QuorumKSet(1), oracle, core.WithMaxRounds(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.DecidedAt[0] != 2 {
		t.Fatalf("process 0 decided in round %d, want 2 (round 1 view is sub-quorum)", res.DecidedAt[0])
	}
}

func TestQuorumKSetBuggyFallback(t *testing.T) {
	// The same sub-quorum view makes the buggy variant decide its raw
	// input — and even full views trip its strict comparison when
	// |S| == quorum. With f=3, quorum = 1: every full 4-message view is
	// > 1, so the bug hides; with f=0, quorum = 4 and len(msgs) > 4 is
	// impossible, so every process decides its own input.
	res := runQuorum(t, QuorumKSetBuggy(0))
	if res.DistinctOutputs() != 4 {
		t.Fatalf("distinct outputs = %d, want 4 (fallback decides raw inputs)", res.DistinctOutputs())
	}
	for p, v := range res.Outputs {
		if v != []core.Value{3, 1, 2, 0}[p] {
			t.Fatalf("process %d decided %v, want its own input", p, v)
		}
	}
}

func TestQuorumFingerprintTracksState(t *testing.T) {
	a := QuorumKSet(1)(0, 3, 5).(*quorumKSet)
	b := QuorumKSet(1)(0, 3, 5).(*quorumKSet)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical states hash differently")
	}
	b.decided, b.out = true, 5
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("deciding did not change the fingerprint")
	}
	c := QuorumKSetBuggy(1)(0, 3, 5).(*quorumKSet)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("buggy flag not part of the fingerprint")
	}
}

func TestFloodMinFingerprintTracksEstimate(t *testing.T) {
	a := FloodMin(2)(0, 3, 7).(*floodMin)
	b := FloodMin(2)(0, 3, 7).(*floodMin)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical states hash differently")
	}
	b.est = 1
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("estimate change did not change the fingerprint")
	}
}
