package agreement

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/predicate"
)

func identityInputs(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

func TestOneRoundKSetUnderUncertaintyAdversary(t *testing.T) {
	// Theorem 3.1: under the k-set detector the algorithm decides in one
	// round with at most k distinct values, for every k and seed.
	for _, k := range []int{1, 2, 3, 4} {
		n := 10
		for seed := int64(0); seed < 40; seed++ {
			res, err := core.Run(n, identityInputs(n), OneRoundKSet(),
				adversary.KSetUncertainty(n, k, seed))
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if err := Validate(res, identityInputs(n), k, 1); err != nil {
				t.Fatalf("k=%d seed=%d: %v\n%s", k, seed, err, res.Trace)
			}
		}
	}
}

func TestOneRoundKSetConsensusUnderIdentical(t *testing.T) {
	// k = 1 (eq. 5): perfect agreement in one round.
	n := 8
	for seed := int64(0); seed < 30; seed++ {
		res, err := core.Run(n, identityInputs(n), OneRoundKSet(),
			adversary.Identical(n, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(res, identityInputs(n), 1, 1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestOneRoundKSetUnderSnapshotAdversary(t *testing.T) {
	// Corollary 3.2: the atomic-snapshot RRFD with f = k−1 failures
	// implies the k-set detector, so one round suffices.
	n := 9
	for _, k := range []int{1, 2, 4} {
		f := k - 1
		for seed := int64(0); seed < 25; seed++ {
			res, err := core.Run(n, identityInputs(n), OneRoundKSet(),
				adversary.SnapshotChain(n, f, seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(res, identityInputs(n), k, 1); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
		}
	}
}

func TestSnapshotPredicateImpliesKSetDetector(t *testing.T) {
	// The predicate-level content of Corollary 3.2: item 5 with f = k−1
	// implies the §3 detector predicate.
	for _, k := range []int{1, 2, 3} {
		gen := func(seed int64) *core.Trace {
			tr, err := core.CollectTrace(8, 6, adversary.SnapshotChain(8, k-1, seed))
			if err != nil {
				panic(err)
			}
			return tr
		}
		if err := predicate.Implies(gen, predicate.AtomicSnapshot(k-1), predicate.KSetDetector(k), 80); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestOneRoundKSetExhaustiveProof(t *testing.T) {
	// PROOF of Theorem 3.1 for tiny universes: enumerate EVERY 1-round
	// detector behaviour satisfying the predicate and run the algorithm
	// against it. A pass is the theorem for that universe.
	cases := []struct{ n, k int }{
		{3, 1}, {3, 2}, {4, 1}, {4, 2}, {4, 3},
	}
	for _, tc := range cases {
		pred := predicate.KSetDetector(tc.k)
		checked, satisfying := 0, 0
		err := predicate.ExhaustiveTraces(tc.n, 1, func(tr *core.Trace) error {
			checked++
			if pred.Check(tr) != nil {
				return nil
			}
			satisfying++
			res, err := core.Run(tc.n, identityInputs(tc.n), OneRoundKSet(),
				core.TraceOracle(tr), core.WithoutTrace())
			if err != nil {
				return err
			}
			return Validate(res, identityInputs(tc.n), tc.k, 1)
		})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if satisfying == 0 {
			t.Fatalf("n=%d k=%d: vacuous", tc.n, tc.k)
		}
		t.Logf("n=%d k=%d: theorem verified on %d/%d traces", tc.n, tc.k, satisfying, checked)
	}
}

func TestFloodMinUnderCrashAdversary(t *testing.T) {
	// FloodMin with rounds = ⌊f/k⌋+1 solves k-set agreement under the
	// synchronous crash model.
	cases := []struct{ n, f, k int }{
		{6, 3, 1}, // consensus, 4 rounds
		{8, 4, 2}, // 3 rounds
		{10, 6, 3},
		{5, 0, 1}, // failure-free: 1 round
	}
	for _, tc := range cases {
		rounds := tc.f/tc.k + 1
		for seed := int64(0); seed < 30; seed++ {
			res, err := core.Run(tc.n, identityInputs(tc.n), FloodMin(rounds),
				adversary.Crash(tc.n, tc.f, seed))
			if err != nil {
				t.Fatalf("%+v seed=%d: %v", tc, seed, err)
			}
			if err := Validate(res, identityInputs(tc.n), tc.k, rounds); err != nil {
				t.Fatalf("%+v seed=%d: %v", tc, seed, err)
			}
		}
	}
}

func TestFloodMinMeetsLowerBoundExactly(t *testing.T) {
	// Tightness (Corollary 4.2/4.4): ⌊f/k⌋+1 rounds succeed even against
	// the chain adversary...
	n, f, k := 10, 4, 2
	rounds := f/k + 1
	res, err := core.Run(n, identityInputs(n), FloodMin(rounds), adversary.ChainCrash(n, f, k))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, identityInputs(n), k, rounds); err != nil {
		t.Fatal(err)
	}
}

func TestFloodMinTruncatedViolatesKAgreement(t *testing.T) {
	// ...while ⌊f/k⌋ rounds fail: the chain adversary hides values
	// 0..k−1 at k distinct processes while everyone else holds k, so a
	// truncated algorithm outputs k+1 distinct values. This is the
	// empirical witness of the synchronous lower bound.
	n, f, k := 10, 4, 2
	m := f / k
	res, err := core.Run(n, identityInputs(n), FloodMin(m), adversary.ChainCrash(n, f, k))
	if err != nil {
		t.Fatal(err)
	}
	err = Validate(res, identityInputs(n), k, m)
	if err == nil {
		t.Fatalf("truncated FloodMin unexpectedly solved %d-set agreement: %v", k, res.Outputs)
	}
	if !strings.Contains(err.Error(), "distinct outputs") {
		t.Fatalf("violation should be k-agreement, got: %v", err)
	}
	if got := res.DistinctOutputs(); got != k+1 {
		t.Fatalf("distinct outputs = %d, want exactly k+1 = %d", got, k+1)
	}
}

func TestFloodMinConsensusLowerBound(t *testing.T) {
	// The k = 1 special case: FLP-style bound of Fischer–Lynch — f+1
	// rounds needed, f insufficient.
	n, f := 8, 3
	res, err := core.Run(n, identityInputs(n), FloodMin(f+1), adversary.ChainCrash(n, f, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, identityInputs(n), 1, f+1); err != nil {
		t.Fatal(err)
	}
	res, err = core.Run(n, identityInputs(n), FloodMin(f), adversary.ChainCrash(n, f, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, identityInputs(n), 1, f); err == nil {
		t.Fatal("f rounds should not suffice for consensus with f crash faults")
	}
}

func TestOstracismSubtlety(t *testing.T) {
	// A modeling point the framework makes concrete: consider the
	// "ostracism" adversary — a live process (here p0, holding the unique
	// minimum) is suspected by everyone forever while itself seeing a
	// perfect world. FloodMin then splits: p0 decides 0, everyone else
	// decides 1.
	//
	// (a) The CRASH predicate forbids this: eq. (2) forces p0 into
	//     everyone's round-2 suspect set INCLUDING ITS OWN, which eq. (1)
	//     (self-trust) forbids unless p0 actually stops — the predicate
	//     conjunction encodes real crashes, and crashed processes have no
	//     output, so FloodMin stays safe under the bare predicate.
	//
	// (b) The OMISSION predicate allows it: the ostracized process is a
	//     faulty SENDER, and the omission task semantics exempt faulty
	//     processes from agreement — the same move Corollary 4.4 makes
	//     when it voids "committed to p_i faulty" outputs.
	n, f := 3, 1
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		return core.RoundPlan{Suspects: []core.Set{
			core.NewSet(n),   // p0 sees everyone
			core.SetOf(n, 0), // p1 never hears p0
			core.SetOf(n, 0), // p2 never hears p0
		}}
	})
	res, err := core.Run(n, identityInputs(n), FloodMin(f+1), oracle)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Illegal as a crash execution, for exactly the self-trust
	// reason.
	err = predicate.SyncCrash(f).Check(res.Trace)
	if err == nil {
		t.Fatal("ostracism with a live victim must violate the crash predicate")
	}
	if !strings.Contains(err.Error(), "suspicion-propagates") {
		t.Fatalf("violation should be the propagation clause: %v", err)
	}

	// (b) Legal as an omission execution, with the expected split.
	if err := predicate.SendOmission(f).Check(res.Trace); err != nil {
		t.Fatalf("the trace is a legal send-omission execution: %v", err)
	}
	if got := res.DistinctOutputs(); got != 2 {
		t.Fatalf("distinct = %d, want the 2 that make the point", got)
	}
	// The faulty (ever-suspected) process is exactly p0; exempting it
	// restores agreement.
	faulty := res.Trace.CumulativeSuspects(res.Trace.Len())
	if !faulty.Equal(core.SetOf(n, 0)) {
		t.Fatalf("faulty = %s", faulty)
	}
	counted := make(map[core.Value]bool)
	for p, v := range res.Outputs {
		if !faulty.Has(p) {
			counted[v] = true
		}
	}
	if len(counted) != 1 {
		t.Fatalf("correct processes disagree: %v", res.Outputs)
	}

	// The crash-legal variant: p0 really crashes at round 2; the
	// predicate is satisfied and all DECIDING processes agree.
	crashing := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		crashes := core.NewSet(n)
		for i := range sus {
			sus[i] = core.NewSet(n)
			if r >= 1 && i != 0 {
				sus[i].Add(0)
			}
			if r >= 2 {
				sus[i].Add(0)
			}
		}
		if r >= 2 {
			crashes.Add(0)
			sus[0] = core.NewSet(n) // p0 is dead; entry unused
		}
		return core.RoundPlan{Suspects: sus, Crashes: crashes}
	})
	res2, err := core.Run(n, identityInputs(n), FloodMin(f+1), crashing)
	if err != nil {
		t.Fatal(err)
	}
	if err := predicate.SyncCrash(f).Check(res2.Trace); err != nil {
		t.Fatal(err)
	}
	if err := Validate(res2, identityInputs(n), 1, f+1); err != nil {
		t.Fatal(err)
	}
}

func TestRotatingCoordinatorUnderS(t *testing.T) {
	// §2 item 6: with some process never suspected, consensus is solvable
	// wait-free in n rounds.
	n := 7
	for spare := core.PID(0); spare < core.PID(n); spare++ {
		for seed := int64(0); seed < 15; seed++ {
			res, err := core.Run(n, identityInputs(n), RotatingCoordinator(),
				adversary.SpareNeverSuspected(n, spare, seed))
			if err != nil {
				t.Fatalf("spare=%d seed=%d: %v", spare, seed, err)
			}
			if err := Validate(res, identityInputs(n), 1, n); err != nil {
				t.Fatalf("spare=%d seed=%d: %v", spare, seed, err)
			}
		}
	}
}

func TestRotatingCoordinatorBenign(t *testing.T) {
	n := 5
	res, err := core.Run(n, identityInputs(n), RotatingCoordinator(), adversary.Benign(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, identityInputs(n), 1, n); err != nil {
		t.Fatal(err)
	}
	// Failure-free run adopts coordinator p0's value.
	for p, v := range res.Outputs {
		if v != 0 {
			t.Fatalf("process %d decided %v, want 0", p, v)
		}
	}
}

func TestValidateCatchesBadOutputs(t *testing.T) {
	inputs := identityInputs(3)
	res := &core.Result{
		Outputs:   map[core.PID]core.Value{0: 99},
		DecidedAt: map[core.PID]int{0: 1, 1: 1, 2: 1},
		Crashed:   core.NewSet(3),
	}
	if err := Validate(res, inputs, 1, 0); err == nil {
		t.Fatal("non-input output must fail validity")
	}
	res2 := &core.Result{
		Outputs:   map[core.PID]core.Value{0: 0, 1: 1},
		DecidedAt: map[core.PID]int{0: 1, 1: 1, 2: 1},
		Crashed:   core.NewSet(3),
	}
	if err := Validate(res2, inputs, 1, 0); err == nil {
		t.Fatal("two outputs must fail 1-agreement")
	}
	res3 := &core.Result{
		Outputs:   map[core.PID]core.Value{0: 0},
		DecidedAt: map[core.PID]int{0: 1},
		Crashed:   core.NewSet(3),
	}
	if err := Validate(res3, inputs, 1, 0); err == nil {
		t.Fatal("non-terminating live process must fail")
	}
	res4 := &core.Result{
		Outputs:   map[core.PID]core.Value{0: 0, 1: 0, 2: 0},
		DecidedAt: map[core.PID]int{0: 5, 1: 1, 2: 1},
		Crashed:   core.NewSet(3),
	}
	if err := Validate(res4, inputs, 1, 3); err == nil {
		t.Fatal("late decision must fail the round bound")
	}
}
