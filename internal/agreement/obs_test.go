package agreement

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestOneRoundKSetObservedEmitsChoices(t *testing.T) {
	n, k := 6, 2
	m := obs.NewMetrics()
	inputs := identityInputs(n)
	res, err := core.Run(n, inputs, OneRoundKSetObserved(m),
		adversary.KSetUncertainty(n, k, 7), core.WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, inputs, k, 1); err != nil {
		t.Fatal(err)
	}
	ev := m.Snapshot().Events
	// Every live process chooses exactly once, in round 1.
	if got := ev["agreement.kset_choose"]; got != int64(n-res.Crashed.Count()) {
		t.Fatalf("kset_choose events = %d, want %d (events %v)", got, n-res.Crashed.Count(), ev)
	}
}

func TestPhasedConsensusObservedEmitsPhaseEvents(t *testing.T) {
	n := 5
	m := obs.NewMetrics()
	inputs := identityInputs(n)
	res, err := core.Run(n, inputs, PhasedConsensusObserved(m), adversary.Benign(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, inputs, 1, 3); err != nil {
		t.Fatal(err)
	}
	ev := m.Snapshot().Events
	// Benign phase 0: every process adopts p0's estimate, grades commit,
	// and commits (deciding) in round 3.
	if ev["agreement.adopt_coord"] != int64(n) {
		t.Fatalf("adopt_coord = %d, want %d (events %v)", ev["agreement.adopt_coord"], n, ev)
	}
	if ev["agreement.grade"] != int64(n) {
		t.Fatalf("grade = %d, want %d", ev["agreement.grade"], n)
	}
	if ev["agreement.commit"] != int64(n) {
		t.Fatalf("commit = %d, want %d", ev["agreement.commit"], n)
	}
	if ev["agreement.adopt"] != 0 {
		t.Fatalf("adopt = %d, want 0 in a benign run", ev["agreement.adopt"])
	}
}

// TestObservedVariantsMatchUnobserved replays the same adversary against
// the observed and unobserved factories and requires identical decisions:
// observation must not change algorithm behaviour.
func TestObservedVariantsMatchUnobserved(t *testing.T) {
	n, k := 6, 2
	inputs := identityInputs(n)
	for seed := int64(0); seed < 10; seed++ {
		plain, err := core.Run(n, inputs, OneRoundKSet(), adversary.KSetUncertainty(n, k, seed))
		if err != nil {
			t.Fatal(err)
		}
		observed, err := core.Run(n, inputs, OneRoundKSetObserved(obs.NewMetrics()),
			adversary.KSetUncertainty(n, k, seed))
		if err != nil {
			t.Fatal(err)
		}
		for p, v := range plain.Outputs {
			if observed.Outputs[p] != v {
				t.Fatalf("seed %d: p%d decided %v observed vs %v plain", seed, p, observed.Outputs[p], v)
			}
		}
	}
}
