package agreement

import (
	"repro/internal/core"
)

// quorumKSet is the quorum-gated k-set algorithm the chaos harness and the
// model checker both exercise: emit the input, wait for a quorum of n−f
// round messages, decide the minimum value received. Under eq. (3)
// (|D(i,r)| ≤ f) the quorum arrives every round, each process misses at
// most the f smallest inputs, and at most f+1 = k distinct minima are
// decided.
//
// The buggy variant has the classic off-by-one quorum check: it gates the
// min-decision on strictly *more* than n−f messages, and its "cannot
// happen" fallback decides the process's own input. The fallback is
// reachable precisely when the adversary makes |S(i,r)| = n−f — the
// boundary the model guarantees and the correct comparison accepts — and
// decides unreduced inputs, breaking k-agreement. The model checker must
// find this; see internal/mc's planted-bug test.
type quorumKSet struct {
	me      core.PID
	n, f    int
	input   int
	decided bool
	out     int
	buggy   bool
}

// QuorumKSet returns the factory for the quorum-gated k-set algorithm with
// fault bound f. Task values must be ints.
func QuorumKSet(f int) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &quorumKSet{me: me, n: n, f: f, input: input.(int)}
	}
}

// QuorumKSetBuggy is QuorumKSet with the planted wrong-quorum-size bug.
func QuorumKSetBuggy(f int) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &quorumKSet{me: me, n: n, f: f, input: input.(int), buggy: true}
	}
}

func (a *quorumKSet) Emit(r int) core.Message { return a.input }

func (a *quorumKSet) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	if a.decided {
		return a.out, true
	}
	quorum := a.n - a.f
	enough := len(msgs) >= quorum
	if a.buggy {
		enough = len(msgs) > quorum
	}
	switch {
	case enough:
		min := a.input
		for _, m := range msgs {
			if v := m.(int); v < min {
				min = v
			}
		}
		a.out, a.decided = min, true
	case a.buggy:
		// The planted bug's unreachable-looking fallback: with the wrong
		// comparison it fires on every |S(i,r)| = n−f round and decides
		// the raw input.
		a.out, a.decided = a.input, true
	default:
		// No quorum: outside eq. (3); keep waiting for one.
		return nil, false
	}
	return a.out, true
}

// Fingerprint implements the model checker's state-hash contract
// (mc.Fingerprinter) over the algorithm's complete mutable state.
func (a *quorumKSet) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range []uint64{uint64(a.me), uint64(a.input) + 1, boolBit(a.decided), uint64(a.out) + 1, boolBit(a.buggy)} {
		h = (h ^ v) * 1099511628211
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Fingerprint implements mc.Fingerprinter for FloodMin, hashing the
// current estimate and horizon.
func (a *floodMin) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	h = (h ^ uint64(a.est+1)) * 1099511628211
	h = (h ^ uint64(a.rounds)) * 1099511628211
	return h
}
