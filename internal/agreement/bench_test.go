package agreement

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

// BenchmarkOneRoundKSet: the Theorem 3.1 algorithm is one round whatever n
// and k are.
func BenchmarkOneRoundKSet(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			k := n / 4
			inputs := identityInputs(n)
			for i := 0; i < b.N; i++ {
				res, err := core.Run(n, inputs, OneRoundKSet(),
					adversary.KSetUncertainty(n, k, int64(i)), core.WithoutTrace())
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds != 1 {
					b.Fatal("not one round")
				}
			}
			b.ReportMetric(1, "rounds/decision")
		})
	}
}

// BenchmarkFloodMin: the synchronous baseline pays ⌊f/k⌋+1 rounds.
func BenchmarkFloodMin(b *testing.B) {
	n, f, k := 12, 6, 2
	rounds := f/k + 1
	inputs := identityInputs(n)
	for i := 0; i < b.N; i++ {
		res, err := core.Run(n, inputs, FloodMin(rounds),
			adversary.Crash(n, f, int64(i)), core.WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxDecisionRound() > rounds {
			b.Fatal("late decision")
		}
	}
	b.ReportMetric(float64(rounds), "rounds/decision")
}

// BenchmarkConsensusAlgorithms compares the three consensus algorithms on
// their home models.
func BenchmarkConsensusAlgorithms(b *testing.B) {
	n := 8
	inputs := identityInputs(n)
	b.Run("rotating-coordinator/S", func(b *testing.B) {
		rounds := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Run(n, inputs, RotatingCoordinator(),
				adversary.SpareNeverSuspected(n, core.PID(i%n), int64(i)), core.WithoutTrace())
			if err != nil {
				b.Fatal(err)
			}
			rounds += res.MaxDecisionRound()
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/decision")
	})
	b.Run("phased/eventual-S", func(b *testing.B) {
		f, stab := 3, 4
		rounds := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Run(n, inputs, PhasedConsensus(),
				adversary.EventuallySpare(n, f, stab, core.PID(i%n), int64(i)),
				core.WithMaxRounds(stab+3*(n+2)), core.WithoutTrace())
			if err != nil {
				b.Fatal(err)
			}
			rounds += res.MaxDecisionRound()
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/decision")
	})
	b.Run("floodset/sync-crash", func(b *testing.B) {
		f := 3
		rounds := 0
		for i := 0; i < b.N; i++ {
			res, err := core.Run(n, inputs, FloodMin(f+1),
				adversary.Crash(n, f, int64(i)), core.WithoutTrace())
			if err != nil {
				b.Fatal(err)
			}
			rounds += res.MaxDecisionRound()
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/decision")
	})
}
