package agreement

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// This file implements the structured, adopt-commit-based consensus of
// Yang, Neiger and Gafni (the paper's reference [16], used in §4.2) at the
// RRFD level, and with it extends the library to the EVENTUAL-accuracy
// detector — the round-by-round analogue of ◇S, an instance of the §7
// research programme ("show that in a precise sense RRFD generalizes the
// earlier notion of fault detector and rederive the associated results").
//
// The algorithm proceeds in phases of three rounds under the asynchronous
// predicate eq. (3) with 2f < n:
//
//	round 3φ+1 — coordinator round: everyone emits its estimate and
//	             adopts the phase coordinator's estimate if received;
//	round 3φ+2 — adopt-commit phase 1: emit the estimate as a proposal;
//	             if every received proposal carries one value w, set the
//	             estimate to w and grade "commit", else grade "adopt";
//	round 3φ+3 — adopt-commit phase 2: emit the grade; decide v iff every
//	             received grade is commit-v; adopt v iff some commit-v is
//	             received; otherwise keep the estimate.
//
// Safety needs only 2f < n: any two receive sets of size ≥ n−f intersect,
// so two processes cannot commit different values in one phase, and a
// decided value is adopted by everyone (every receive set contains one of
// the decider's commit-v sources), making the next phase unanimous.
// Liveness needs the detector to eventually stop suspecting some process:
// once the rotation reaches a never-again-suspected coordinator, every
// process adopts its estimate and the next adopt-commit commits it.
type phasedConsensus struct {
	me  core.PID
	n   int
	est core.Value
	obs obs.Observer // nil unless built by PhasedConsensusObserved

	graded  bool // grade computed in phase 1, emitted in phase 2
	decided bool
	out     core.Value
}

// phaseMsg is a phased-consensus message: an estimate in coordinator and
// proposal rounds, a graded proposal in the second adopt-commit round.
type phaseMsg struct {
	commit bool
	value  core.Value
}

// PhasedConsensus returns the factory for adopt-commit-based consensus
// under the eventual-accuracy RRFD (predicate.PerRoundBudget(f) with
// 2f < n, plus predicate.EventuallyNeverSuspected for termination). A
// process keeps participating after deciding, so laggards catch up one
// phase later.
func PhasedConsensus() core.Factory {
	return PhasedConsensusObserved(nil)
}

// PhasedConsensusObserved is PhasedConsensus with protocol-level
// observability: each process reports its phase transitions through o as
// obs events — "agreement.adopt_coord" when a coordinator estimate is
// adopted, "agreement.grade" with the adopt-commit phase-1 outcome, and
// "agreement.commit" / "agreement.adopt" for the phase-2 resolution
// ("agreement.commit" carries decided=true the first time it fires). A nil
// observer degrades to the unobserved algorithm.
func PhasedConsensusObserved(o obs.Observer) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &phasedConsensus{me: me, n: n, est: input, obs: o}
	}
}

// event forwards a protocol event when an observer is attached.
func (a *phasedConsensus) event(kind string, r int, fields map[string]any) {
	if a.obs != nil {
		a.obs.Event(kind, r, int(a.me), fields)
	}
}

func (a *phasedConsensus) Emit(r int) core.Message {
	if (r-1)%3 == 2 {
		return phaseMsg{commit: a.graded, value: a.est}
	}
	return phaseMsg{value: a.est}
}

func (a *phasedConsensus) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	phase := (r - 1) / 3
	switch (r - 1) % 3 {
	case 0: // coordinator round
		coord := core.PID(phase % a.n)
		if m, ok := msgs[coord]; ok && !suspects.Has(coord) {
			a.est = m.(phaseMsg).value
			a.event("agreement.adopt_coord", r, map[string]any{"phase": phase, "coord": int(coord)})
		}
	case 1: // adopt-commit phase 1
		unanimous := true
		var common core.Value
		first := true
		for _, m := range msgs {
			v := m.(phaseMsg).value
			if first {
				common, first = v, false
			} else if v != common {
				unanimous = false
				break
			}
		}
		if unanimous && !first {
			a.est = common
			a.graded = true
		} else {
			a.graded = false
		}
		a.event("agreement.grade", r, map[string]any{"phase": phase, "commit": a.graded})
	default: // adopt-commit phase 2
		sawCommit, allCommit := false, true
		var commitVal core.Value
		for _, m := range msgs {
			pm := m.(phaseMsg)
			if pm.commit {
				sawCommit = true
				commitVal = pm.value
			} else {
				allCommit = false
			}
		}
		switch {
		case sawCommit && allCommit:
			a.est = commitVal
			first := !a.decided
			if first {
				a.decided, a.out = true, commitVal
			}
			a.event("agreement.commit", r, map[string]any{"phase": phase, "decided": first})
		case sawCommit:
			a.est = commitVal
			a.event("agreement.adopt", r, map[string]any{"phase": phase})
		}
	}
	if a.decided {
		return a.out, true
	}
	return nil, false
}

var _ core.Algorithm = (*phasedConsensus)(nil)
