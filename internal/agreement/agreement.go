// Package agreement implements the agreement algorithms the paper builds or
// invokes:
//
//   - OneRoundKSet — Theorem 3.1's one-round k-set agreement algorithm for
//     RRFD systems whose detector satisfies |⋃D(i,r) \ ⋂D(i,r)| < k.
//   - FloodMin — the classic synchronous k-set agreement baseline that
//     decides after ⌊f/k⌋+1 rounds of min-flooding (Chaudhuri et al.); with
//     k = 1 it is the f+1-round FloodSet consensus algorithm. Truncating it
//     one round short is the lower-bound witness of Corollaries 4.2/4.4.
//   - RotatingCoordinator — consensus for §2 item 6's RRFD (some process is
//     never suspected, the counterpart of failure detector S): n rounds of
//     coordinator adoption.
//
// All algorithms fit the core.Algorithm emit/receive contract and are
// exercised against the hostile adversaries of internal/adversary.
package agreement

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Validate checks the standard k-set agreement conditions on an execution
// result: k-agreement (at most k distinct outputs), validity (every output
// is some process's input), and termination of every process that did not
// crash. maxRound, when positive, additionally bounds the latest decision
// round.
func Validate(res *core.Result, inputs []core.Value, k, maxRound int) error {
	if got := res.DistinctOutputs(); got > k {
		return fmt.Errorf("agreement: %d distinct outputs, want ≤ %d (outputs %v)", got, k, res.Outputs)
	}
	valid := make(map[core.Value]bool, len(inputs))
	for _, v := range inputs {
		valid[v] = true
	}
	for p, v := range res.Outputs {
		if !valid[v] {
			return fmt.Errorf("agreement: process %d decided %v, not an input", p, v)
		}
	}
	n := len(inputs)
	for i := 0; i < n; i++ {
		p := core.PID(i)
		if res.Crashed.Has(p) {
			continue
		}
		if _, ok := res.DecidedAt[p]; !ok {
			return fmt.Errorf("agreement: live process %d never decided", p)
		}
	}
	if maxRound > 0 {
		if got := res.MaxDecisionRound(); got > maxRound {
			return fmt.Errorf("agreement: decision at round %d, want ≤ %d", got, maxRound)
		}
	}
	return nil
}

// oneRoundKSet is Theorem 3.1's algorithm: emit the input, then choose the
// value of the lowest-identifier process outside D(i,1).
//
// Correctness sketch (the paper's proof): if v1, v2 are chosen from p1 < p2
// then p1 ∈ ⋃D (whoever chose p2 suspected p1) but p1 ∉ ⋂D (whoever chose p1
// did not), so every chosen identifier except the globally smallest lies in
// ⋃D \ ⋂D, whose size is < k — at most k distinct values are chosen.
type oneRoundKSet struct {
	me    core.PID
	input core.Value
	obs   obs.Observer // nil unless built by OneRoundKSetObserved
}

// OneRoundKSet returns the factory for Theorem 3.1's one-round algorithm.
func OneRoundKSet() core.Factory {
	return OneRoundKSetObserved(nil)
}

// OneRoundKSetObserved is OneRoundKSet with protocol-level observability:
// each process reports the identifier it chose (the smallest unsuspected
// sender) through o as an "agreement.kset_choose" event. A nil observer
// degrades to the unobserved algorithm.
func OneRoundKSetObserved(o obs.Observer) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &oneRoundKSet{me: me, input: input, obs: o}
	}
}

func (a *oneRoundKSet) Emit(r int) core.Message { return a.input }

func (a *oneRoundKSet) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	if r != 1 {
		return nil, false // decision already made in round 1
	}
	best := core.PID(-1)
	for p := range msgs {
		if suspects.Has(p) {
			continue
		}
		if best < 0 || p < best {
			best = p
		}
	}
	if best < 0 {
		// Unreachable in a valid system: S(i,r) ∪ D(i,r) = S and
		// D(i,r) ≠ S guarantee an unsuspected received message.
		return nil, false
	}
	if a.obs != nil {
		a.obs.Event("agreement.kset_choose", r, int(a.me), map[string]any{"from": int(best)})
	}
	return msgs[best], true
}

// floodMin is min-flooding: maintain the minimum value seen, broadcast it
// every round, decide after the configured number of rounds. Task values
// must be ints.
type floodMin struct {
	est    int
	rounds int
}

// FloodMin returns the factory for the synchronous min-flooding algorithm
// deciding after rounds rounds. For k-set agreement with f crash faults the
// correct setting is rounds = ⌊f/k⌋ + 1; smaller settings are deliberately
// incorrect and serve as lower-bound witnesses.
func FloodMin(rounds int) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &floodMin{est: input.(int), rounds: rounds}
	}
}

func (a *floodMin) Emit(r int) core.Message { return a.est }

func (a *floodMin) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	for _, m := range msgs {
		if v := m.(int); v < a.est {
			a.est = v
		}
	}
	if r >= a.rounds {
		return a.est, true
	}
	return nil, false
}

// floodMinState is floodMin's checkpoint wire form.
type floodMinState struct {
	Est    int `json:"est"`
	Rounds int `json:"rounds"`
}

// Snapshot implements core.Snapshotter, making FloodMin processes
// checkpointable by the engine's crash-recovery layer.
func (a *floodMin) Snapshot() ([]byte, error) {
	return json.Marshal(floodMinState{Est: a.est, Rounds: a.rounds})
}

// Restore implements core.Snapshotter.
func (a *floodMin) Restore(snapshot []byte) error {
	var s floodMinState
	if err := json.Unmarshal(snapshot, &s); err != nil {
		return err
	}
	a.est, a.rounds = s.Est, s.Rounds
	return nil
}

var _ core.Snapshotter = (*floodMin)(nil)

// rotatingCoordinator is the consensus algorithm for the failure-detector-S
// RRFD: in round r the coordinator is process (r−1) mod n; every process
// that receives the coordinator's estimate adopts it; decide after n rounds.
// Some process p* is never suspected, so in p*'s coordinator round every
// process adopts p*'s estimate, and estimates never diverge afterwards.
type rotatingCoordinator struct {
	n   int
	est core.Value
}

// RotatingCoordinator returns the factory for the n-round coordinator
// consensus algorithm used for §2 item 6.
func RotatingCoordinator() core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		return &rotatingCoordinator{n: n, est: input}
	}
}

func (a *rotatingCoordinator) Emit(r int) core.Message { return a.est }

func (a *rotatingCoordinator) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	coord := core.PID((r - 1) % a.n)
	if m, ok := msgs[coord]; ok && !suspects.Has(coord) {
		a.est = m
	}
	if r >= a.n {
		return a.est, true
	}
	return nil, false
}
