package agreement

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/predicate"
)

func TestPhasedConsensusUnderEventualAccuracy(t *testing.T) {
	// Liveness + safety: under budget f (2f < n) with the spare process
	// unsuspected from round stab on, every process decides the same
	// input value within stab + 3(n+1) rounds.
	n, f := 7, 3
	inputs := identityInputs(n)
	for _, stab := range []int{0, 5, 12} {
		for seed := int64(0); seed < 25; seed++ {
			spare := core.PID(seed % int64(n))
			oracle := adversary.EventuallySpare(n, f, stab, spare, seed)
			res, err := core.Run(n, inputs, PhasedConsensus(), oracle,
				core.WithMaxRounds(stab+3*(n+2)))
			if err != nil {
				t.Fatalf("stab=%d seed=%d: %v", stab, seed, err)
			}
			if err := Validate(res, inputs, 1, 0); err != nil {
				t.Fatalf("stab=%d seed=%d: %v", stab, seed, err)
			}
			if err := predicate.EventuallyNeverSuspected(stab).Check(res.Trace); err != nil {
				t.Fatalf("stab=%d seed=%d: adversary broke its own contract: %v", stab, seed, err)
			}
		}
	}
}

func TestPhasedConsensusSafetyWithoutLiveness(t *testing.T) {
	// Under a pure eq.(3) adversary (no accuracy at all) the algorithm
	// may never terminate — but any processes that DO decide must agree
	// and decide an input.
	n, f := 7, 3
	inputs := identityInputs(n)
	for seed := int64(0); seed < 40; seed++ {
		res, err := core.Run(n, inputs, PhasedConsensus(),
			adversary.AsyncBudget(n, f, false, seed), core.WithMaxRounds(60))
		if err != nil && !errors.Is(err, core.ErrMaxRounds) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.DistinctOutputs() > 1 {
			t.Fatalf("seed %d: disagreement: %v", seed, res.Outputs)
		}
		valid := make(map[core.Value]bool)
		for _, v := range inputs {
			valid[v] = true
		}
		for p, v := range res.Outputs {
			if !valid[v] {
				t.Fatalf("seed %d: process %d decided non-input %v", seed, p, v)
			}
		}
	}
}

func TestPhasedConsensusBenign(t *testing.T) {
	// Failure-free: decided in the first phase (3 rounds).
	n := 5
	inputs := identityInputs(n)
	res, err := core.Run(n, inputs, PhasedConsensus(), adversary.Benign(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, inputs, 1, 3); err != nil {
		t.Fatal(err)
	}
	// Unanimity forms at the coordinator (p0) round.
	for p, v := range res.Outputs {
		if v != 0 {
			t.Fatalf("process %d decided %v, want 0", p, v)
		}
	}
}

func TestPhasedConsensusVersusRotatingCoordinator(t *testing.T) {
	// Ablation: under the PERFECT item-6 predicate both algorithms work;
	// under the weaker eventual predicate only the phased one does
	// (RotatingCoordinator decides blindly after n rounds, which is
	// unsafe before stabilization).
	n, f := 6, 2
	inputs := identityInputs(n)
	stab := 3 * n // stabilize well after RotatingCoordinator's horizon
	brokeRotating := false
	for seed := int64(0); seed < 200 && !brokeRotating; seed++ {
		spare := core.PID(seed % int64(n))
		res, err := core.Run(n, inputs, RotatingCoordinator(),
			adversary.EventuallySpare(n, f, stab, spare, seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.DistinctOutputs() > 1 {
			brokeRotating = true
		}
	}
	if !brokeRotating {
		t.Fatal("rotating coordinator never disagreed under eventual accuracy — the separation is untested")
	}
}

func TestEventuallyNeverSuspectedPredicate(t *testing.T) {
	n := 5
	tr, err := core.CollectTrace(n, 10, adversary.EventuallySpare(n, 2, 4, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := predicate.EventuallyNeverSuspected(4).Check(tr); err != nil {
		t.Fatal(err)
	}
	// With stab=0 the same trace generally fails (the spare was fair game
	// early); search a seed where it does.
	failed := false
	for seed := int64(0); seed < 50 && !failed; seed++ {
		tr, err := core.CollectTrace(n, 10, adversary.EventuallySpare(n, 3, 6, 2, seed))
		if err != nil {
			t.Fatal(err)
		}
		if predicate.EventuallyNeverSuspected(0).Check(tr) != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no trace violated the stab=0 predicate — adversary too tame")
	}
	// Vacuous case: trace shorter than the horizon.
	short, err := core.CollectTrace(n, 3, adversary.AsyncBudget(n, 2, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := predicate.EventuallyNeverSuspected(5).Check(short); err != nil {
		t.Fatal(err)
	}
}
