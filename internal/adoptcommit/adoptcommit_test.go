package adoptcommit

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/swmr"
)

// runInstance executes one adopt-commit instance with the given inputs and
// returns the per-process outcomes of the processes that finished.
func runInstance(t *testing.T, inputs []core.Value, cfg swmr.Config) map[core.PID]Outcome {
	t.Helper()
	out, err := runInstanceErr(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runInstanceErr(inputs []core.Value, cfg swmr.Config) (map[core.PID]Outcome, error) {
	res, err := swmr.Run(len(inputs), cfg, func(p *swmr.Proc) (core.Value, error) {
		o, err := Run(p, "t", inputs[p.Me])
		if err != nil {
			return nil, err
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for pid, procErr := range res.Errs {
		if !errors.Is(procErr, swmr.ErrCrashed) {
			return nil, fmt.Errorf("process %d: %w", pid, procErr)
		}
	}
	outs := make(map[core.PID]Outcome, len(res.Values))
	for pid, v := range res.Values {
		outs[pid] = v.(Outcome)
	}
	return outs, nil
}

// checkProperties validates the two adopt-commit properties plus validity
// against the outcomes of live processes.
func checkProperties(inputs []core.Value, outs map[core.PID]Outcome) error {
	inputSet := make(map[core.Value]bool, len(inputs))
	allSame := true
	for _, v := range inputs {
		inputSet[v] = true
		if v != inputs[0] {
			allSame = false
		}
	}
	// Validity: outputs are proposals.
	for pid, o := range outs {
		if !inputSet[o.Value] {
			return fmt.Errorf("process %d output non-proposal %v", pid, o.Value)
		}
	}
	// Property 1: unanimous proposal v ⇒ all commit v.
	if allSame && len(inputs) > 0 {
		for pid, o := range outs {
			if o.Grade != Commit || o.Value != inputs[0] {
				return fmt.Errorf("unanimous input %v but process %d got %s %v",
					inputs[0], pid, o.Grade, o.Value)
			}
		}
	}
	// Property 2: any commit of v ⇒ every output has value v.
	for pid, o := range outs {
		if o.Grade != Commit {
			continue
		}
		for pid2, o2 := range outs {
			if o2.Value != o.Value {
				return fmt.Errorf("process %d committed %v but process %d holds %v",
					pid, o.Value, pid2, o2.Value)
			}
		}
	}
	return nil
}

func vals(vs ...int) []core.Value {
	out := make([]core.Value, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func TestUnanimousCommits(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		inputs := make([]core.Value, n)
		for i := range inputs {
			inputs[i] = 42
		}
		outs := runInstance(t, inputs, swmr.Config{Chooser: swmr.Seeded(int64(n))})
		if err := checkProperties(inputs, outs); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, o := range outs {
			if o.Grade != Commit || o.Value != 42 {
				t.Fatalf("n=%d: %v", n, o)
			}
		}
	}
}

func TestMixedInputsSeededSweep(t *testing.T) {
	cases := [][]core.Value{
		vals(1, 2),
		vals(1, 1, 2),
		vals(1, 2, 3),
		vals(1, 2, 2, 1),
		vals(5, 5, 5, 7, 5),
	}
	for _, inputs := range cases {
		for seed := int64(0); seed < 50; seed++ {
			outs := runInstance(t, inputs, swmr.Config{Chooser: swmr.Seeded(seed)})
			if err := checkProperties(inputs, outs); err != nil {
				t.Fatalf("inputs %v seed %d: %v", inputs, seed, err)
			}
		}
	}
}

func TestExhaustiveTwoProcs(t *testing.T) {
	// Model-check every schedule of a 2-process instance with differing
	// proposals: 6 ops each → C(12,6) = 924 interleavings.
	inputs := vals(1, 2)
	count, err := swmr.Explore(100000, func(ch swmr.Chooser) error {
		outs, err := runInstanceErr(inputs, swmr.Config{Chooser: ch})
		if err != nil {
			return err
		}
		return checkProperties(inputs, outs)
	})
	if err != nil {
		t.Fatalf("after %d schedules: %v", count, err)
	}
	if count != 924 {
		t.Fatalf("explored %d schedules, want 924", count)
	}
}

func TestExhaustiveTwoProcsWithCrash(t *testing.T) {
	// Every schedule × every crash point of p0 (0..6 completed ops): the
	// survivor must still satisfy the properties restricted to live
	// processes (wait-freedom: p1 always terminates).
	inputs := vals(1, 2)
	for crashAt := 0; crashAt <= 6; crashAt++ {
		cfg := swmr.Config{Crash: map[core.PID]int{0: crashAt}}
		count, err := swmr.Explore(100000, func(ch swmr.Chooser) error {
			cfg := cfg
			cfg.Chooser = ch
			outs, err := runInstanceErr(inputs, cfg)
			if err != nil {
				return err
			}
			if _, ok := outs[1]; !ok {
				return errors.New("survivor did not terminate")
			}
			return checkProperties(inputs, outs)
		})
		if err != nil {
			t.Fatalf("crashAt=%d after %d schedules: %v", crashAt, count, err)
		}
	}
}

func TestWaitFreeOpCount(t *testing.T) {
	// The protocol performs exactly 2n+2 register operations per process.
	n := 4
	res, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(8)}, func(p *swmr.Proc) (core.Value, error) {
		return Run(p, "t", int(p.Me))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := n * (2*n + 2)
	if res.Steps != want {
		t.Fatalf("total steps = %d, want %d", res.Steps, want)
	}
}

func TestIndependentInstances(t *testing.T) {
	// Two named instances must not interfere: unanimity in instance "a"
	// commits there even though instance "b" is contested.
	n := 3
	res, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(4)}, func(p *swmr.Proc) (core.Value, error) {
		oa, err := Run(p, "a", "same")
		if err != nil {
			return nil, err
		}
		ob, err := Run(p, "b", int(p.Me))
		if err != nil {
			return nil, err
		}
		return [2]Outcome{oa, ob}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range res.Values {
		pair := v.([2]Outcome)
		if pair[0].Grade != Commit || pair[0].Value != "same" {
			t.Fatalf("process %d instance a: %v", pid, pair[0])
		}
	}
}

func TestQuickRandomInputsAndSchedules(t *testing.T) {
	// Property-based: arbitrary small input vectors and seeds preserve the
	// adopt-commit contract.
	prop := func(raw []uint8, seed int64) bool {
		n := len(raw)%5 + 1
		inputs := make([]core.Value, n)
		for i := range inputs {
			v := 0
			if i < len(raw) {
				v = int(raw[i]) % 3
			}
			inputs[i] = v
		}
		outs, err := runInstanceErr(inputs, swmr.Config{Chooser: swmr.Seeded(seed)})
		if err != nil {
			return false
		}
		return checkProperties(inputs, outs) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectProposals(t *testing.T) {
	n := 3
	res, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(4)}, func(p *swmr.Proc) (core.Value, error) {
		if _, err := Run(p, "t", int(p.Me)); err != nil {
			return nil, err
		}
		return CollectProposals(p, "t")
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range res.Values {
		props := v.([]core.Value)
		// After everyone finished phase 1, all proposals are visible to a
		// process that finished last; at minimum the reader's own is.
		if props[pid] != int(pid) {
			t.Fatalf("process %d sees own proposal %v", pid, props[pid])
		}
	}
}

func TestGradeString(t *testing.T) {
	if Adopt.String() != "adopt" || Commit.String() != "commit" {
		t.Fatal("Grade.String broken")
	}
	if Grade(9).String() != "Grade(9)" {
		t.Fatal("unknown grade formatting broken")
	}
}
