package adoptcommit

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/swmr"
)

// BenchmarkInstance measures one adopt-commit instance; the protocol is
// wait-free with exactly 2n+2 register operations per process.
func BenchmarkInstance(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(int64(i))},
					func(p *swmr.Proc) (core.Value, error) {
						o, err := Run(p, "b", int(p.Me)%2)
						if err != nil {
							return nil, err
						}
						return o, nil
					})
				if err != nil {
					b.Fatal(err)
				}
				if out.Steps != n*(2*n+2) {
					b.Fatalf("steps = %d, want %d", out.Steps, n*(2*n+2))
				}
			}
			b.ReportMetric(float64(2*n+2), "memops/proc")
		})
	}
}
