// Package adoptcommit implements the wait-free adopt-commit protocol given
// in §4.2 of the paper (simplified from Yang, Neiger and Gafni, reference
// [16]). Process p_i proposes a value; its output is either (commit, v) or
// (adopt, v) subject to:
//
//  1. If all processes propose the same v, every process commits v.
//  2. If any process commits v, every process commits or adopts v.
//
// The protocol uses two arrays of SWMR registers, C[·,1] and C[·,2], and
// exactly 2n+2 register operations per process, so it is wait-free
// (n−1-resilient). It is the machinery Theorem 4.3 adds to convert the
// send-omission simulation of Theorem 4.1 into a crash-fault simulation, and
// the phase building block of the coordinator-based consensus algorithm used
// for §2 item 6.
package adoptcommit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/swmr"
)

// Grade is the output grade of the protocol.
type Grade int

const (
	// Adopt means the value is carried forward but not decided.
	Adopt Grade = iota + 1

	// Commit means the value may be decided: by property 2, every other
	// process holds the same value (committed or adopted).
	Commit
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case Adopt:
		return "adopt"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// Outcome is a process's output from one protocol instance.
type Outcome struct {
	Grade Grade
	Value core.Value
}

// phase2Cell is what a process writes to C[i,2]: a graded proposal.
type phase2Cell struct {
	commit bool
	value  core.Value
}

func c1(name string) string { return "ac1:" + name }
func c2(name string) string { return "ac2:" + name }

// Run executes the adopt-commit instance called name for process p with
// proposal v. Proposal values must be comparable with ==. Distinct instances
// (distinct names) are independent.
//
// The protocol, verbatim from the paper:
//
//	write v_i to C[i,1]
//	S := ⋃_j read C[j,1]
//	if S \ {⊥} = {v} then C[i,2] := "commit v" else C[i,2] := "adopt v_i"
//	S := ⋃_j read C[j,2]
//	if S \ {⊥} = {commit v} then return commit v
//	else if "commit v" ∈ S then return adopt v
//	else return adopt v_i
func Run(p *swmr.Proc, name string, v core.Value) (Outcome, error) {
	return RunObserved(p, name, v, nil)
}

// RunObserved is Run with protocol-level observability: the process's final
// grade is reported through o as an "adoptcommit.outcome" event whose
// fields carry the instance name, the grade ("adopt" or "commit") and
// whether the phase-1 collect was unanimous. A nil observer degrades to
// Run.
func RunObserved(p *swmr.Proc, name string, v core.Value, o obs.Observer) (Outcome, error) {
	out, unanimous, err := run(p, name, v)
	if err == nil && o != nil {
		o.Event("adoptcommit.outcome", -1, int(p.Me), map[string]any{
			"name":      name,
			"grade":     out.Grade.String(),
			"unanimous": unanimous,
		})
	}
	return out, err
}

// run is the protocol body; it additionally reports whether phase 1 saw a
// unanimous proposal set.
func run(p *swmr.Proc, name string, v core.Value) (Outcome, bool, error) {
	if err := p.Write(c1(name), v); err != nil {
		return Outcome{}, false, err
	}
	seen, err := p.Collect(c1(name))
	if err != nil {
		return Outcome{}, false, err
	}
	singleton := true
	for _, s := range seen {
		if s != swmr.Bottom && s != v {
			singleton = false
			break
		}
	}
	if err := p.Write(c2(name), phase2Cell{commit: singleton, value: v}); err != nil {
		return Outcome{}, singleton, err
	}
	seen2, err := p.Collect(c2(name))
	if err != nil {
		return Outcome{}, singleton, err
	}
	allCommitSame := true
	var commitVal core.Value
	sawCommit := false
	for _, s := range seen2 {
		if s == swmr.Bottom {
			continue
		}
		cell, ok := s.(phase2Cell)
		if !ok {
			return Outcome{}, singleton, fmt.Errorf("adoptcommit: foreign value in %s: %T", c2(name), s)
		}
		if cell.commit {
			if sawCommit && commitVal != cell.value {
				// Impossible by the phase-1 argument; a hit here in
				// model checking would disprove the protocol.
				return Outcome{}, singleton, fmt.Errorf("adoptcommit: two distinct committed values %v and %v",
					commitVal, cell.value)
			}
			sawCommit = true
			commitVal = cell.value
		} else {
			allCommitSame = false
		}
	}
	switch {
	case sawCommit && allCommitSame:
		return Outcome{Grade: Commit, Value: commitVal}, singleton, nil
	case sawCommit:
		return Outcome{Grade: Adopt, Value: commitVal}, singleton, nil
	default:
		return Outcome{Grade: Adopt, Value: v}, singleton, nil
	}
}

// CollectProposals returns the phase-1 proposals of instance name currently
// visible to p (swmr.Bottom entries for processes that have not proposed).
// Theorem 4.3's simulation uses it to recover an alive proposal after an
// adopt of a "faulty" verdict.
func CollectProposals(p *swmr.Proc, name string) ([]core.Value, error) {
	return p.Collect(c1(name))
}
