package adoptcommit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/swmr"
)

func TestRunObservedEmitsOutcomes(t *testing.T) {
	n := 4
	m := obs.NewMetrics()
	out, err := swmr.Run(n, swmr.Config{}, func(p *swmr.Proc) (core.Value, error) {
		o, err := RunObserved(p, "inst", "v", m)
		if err != nil {
			return nil, err
		}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range out.Values {
		if o := v.(Outcome); o.Grade != Commit || o.Value != "v" {
			t.Fatalf("process %d: %+v, want unanimous commit", p, o)
		}
	}
	ev := m.Snapshot().Events
	if ev["adoptcommit.outcome"] != int64(n) {
		t.Fatalf("outcome events = %d, want %d (events %v)", ev["adoptcommit.outcome"], n, ev)
	}
}

// TestRunObservedNilMatchesRun checks the nil-observer degradation path.
func TestRunObservedNilMatchesRun(t *testing.T) {
	n := 3
	out, err := swmr.Run(n, swmr.Config{}, func(p *swmr.Proc) (core.Value, error) {
		o, err := RunObserved(p, "inst", int(p.Me), nil)
		if err != nil {
			return nil, err
		}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Values) != n {
		t.Fatalf("values: %v", out.Values)
	}
}
