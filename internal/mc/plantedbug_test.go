package mc_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/predicate"
)

// kSetSpec binds the quorum-gated k-set algorithm over the eq. (3)
// per-round-budget adversary for a 3-process, f=1 (k=2) instance.
func kSetSpec(t *testing.T, factory core.Factory) mc.RunSpec {
	t.Helper()
	enum, err := adversary.EnumPerRoundBudget(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return mc.RunSpec{
		N:       3,
		Inputs:  []core.Value{0, 1, 2},
		Factory: factory,
		Oracle: func(ctx *mc.Ctx) core.Oracle {
			return adversary.Enumerated(ctx, 3, enum)
		},
		Props: []mc.Property{
			mc.Validity([]core.Value{0, 1, 2}),
			mc.KAgreement(2),
		},
		Mark: true,
	}
}

// TestHonestQuorumKSetVerified: the correct quorum comparison survives
// exhaustive exploration of every eq. (3) adversary schedule.
func TestHonestQuorumKSetVerified(t *testing.T) {
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(kSetSpec(t, agreement.QuorumKSet(1))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("honest algorithm has a counterexample: %v", res.Counterexample)
	}
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %+v", res)
	}
	// Every process decides in round 1, so the choice tree is one node
	// wide: the 27 per-round-budget plans for n=3, f=1.
	if res.Schedules != 27 {
		t.Fatalf("schedules = %d, want 27", res.Schedules)
	}
}

// TestPlantedQuorumBugFound: the wrong-quorum-size variant is caught,
// and the counterexample shrinks to a single minimal choice with a
// stable replay string — identically at every worker count.
func TestPlantedQuorumBugFound(t *testing.T) {
	var results []*mc.Result
	for _, w := range []int{1, 4, 8} {
		res, err := mc.Explore(mc.Options{Workers: w},
			mc.CheckRun(kSetSpec(t, agreement.QuorumKSetBuggy(1))))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i, res := range results[1:] {
		if !reflect.DeepEqual(results[0], res) {
			t.Fatalf("workers run %d differs:\n%+v\nvs\n%+v", i+1, results[0], res)
		}
	}

	cx := results[0].Counterexample
	if cx == nil {
		t.Fatal("planted bug not found")
	}
	var pe *mc.PropertyError
	if !errors.As(cx.Err, &pe) || pe.Name != "2-agreement" {
		t.Fatalf("violation = %v, want a 2-agreement PropertyError", cx.Err)
	}
	if len(cx.Choices) != 1 {
		t.Fatalf("shrunk counterexample %v, want a single choice", cx.Choices)
	}
	// Replay string is the stable external form; parse and re-run it.
	replay := mc.FormatChoices(cx.Choices)
	choices, err := mc.ParseChoices(replay)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Replay(choices, mc.CheckRun(kSetSpec(t, agreement.QuorumKSetBuggy(1)))); err == nil {
		t.Fatalf("replay of %q does not reproduce the violation", replay)
	}
	// The honest algorithm passes the exact same schedule: the bug is in
	// the algorithm, not the adversary.
	if err := mc.Replay(choices, mc.CheckRun(kSetSpec(t, agreement.QuorumKSet(1)))); err != nil {
		t.Fatalf("honest algorithm fails the counterexample schedule: %v", err)
	}
}

// TestShrinkIsMinimal: lowering or truncating the shrunk counterexample
// must make the violation disappear (local minimality).
func TestShrinkIsMinimal(t *testing.T) {
	run := mc.CheckRun(kSetSpec(t, agreement.QuorumKSetBuggy(1)))
	res, err := mc.Explore(mc.Options{}, run)
	if err != nil {
		t.Fatal(err)
	}
	cx := res.Counterexample
	if cx == nil {
		t.Fatal("planted bug not found")
	}
	for i := range cx.Choices {
		for v := 0; v < cx.Choices[i]; v++ {
			lowered := append([]int{}, cx.Choices...)
			lowered[i] = v
			if err := mc.Replay(lowered, run); err != nil {
				t.Fatalf("lowering choice %d to %d still violates: not minimal", i, v)
			}
		}
	}
	if len(cx.Choices) > 0 {
		truncated := cx.Choices[:len(cx.Choices)-1]
		if err := mc.Replay(truncated, run); err != nil {
			t.Fatalf("truncated counterexample still violates: not minimal")
		}
	}
}

// TestFloodMinUnderSendOmission: FloodMin with 3 rounds over the eq. (1)
// send-omission enumeration satisfies 2-agreement for f=1, and the
// fingerprint-based pruning fires (suspicion patterns converge) without
// changing the verdict.
func TestFloodMinUnderSendOmission(t *testing.T) {
	enum, err := adversary.EnumSendOmission(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := mc.RunSpec{
		N:       3,
		Inputs:  []core.Value{0, 1, 2},
		Factory: agreement.FloodMin(3),
		Oracle: func(ctx *mc.Ctx) core.Oracle {
			return adversary.Enumerated(ctx, 3, enum)
		},
		Props: []mc.Property{
			mc.Validity([]core.Value{0, 1, 2}),
			mc.KAgreement(2),
		},
		Mark: true,
	}
	pruned, err := mc.Explore(mc.Options{}, mc.CheckRun(spec))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Counterexample != nil {
		t.Fatalf("FloodMin(3) violated under send-omission f=1: %v", pruned.Counterexample)
	}
	if !pruned.Exhausted {
		t.Fatal("exploration not exhausted")
	}
	if pruned.Pruned == 0 {
		t.Fatal("expected state-hash pruning to fire on converging suspicion patterns")
	}

	full, err := mc.Explore(mc.Options{NoPrune: true}, mc.CheckRun(spec))
	if err != nil {
		t.Fatal(err)
	}
	if full.Counterexample != nil || !full.Exhausted {
		t.Fatalf("unpruned run disagrees: %+v", full)
	}
	if full.Schedules <= pruned.Schedules-pruned.Pruned {
		t.Fatalf("pruning saved nothing: %d pruned-run schedules (%d pruned) vs %d full",
			pruned.Schedules, pruned.Pruned, full.Schedules)
	}
}

// TestEnumeratedStaysInModel: every schedule the per-round-budget
// enumeration generates satisfies the eq. (3) predicate it implements —
// checked by exploring with the trace predicate as the property.
func TestEnumeratedStaysInModel(t *testing.T) {
	spec := kSetSpec(t, agreement.QuorumKSet(1))
	spec.Mark = false // trace predicates are path-dependent: no pruning
	spec.Props = append(spec.Props, mc.TraceSatisfies(predicate.PerRoundBudget(1)))
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(spec))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("enumerated adversary left its model: %v", res.Counterexample)
	}
}
