package mc

import (
	"fmt"
	"strings"
)

// Choice strings are the portable form of a counterexample: a versioned,
// human-readable rendering of the choice sequence that replays a schedule
// ("c1:2.0.1" is the sequence [2, 0, 1]). They round-trip through
// FormatChoices/ParseChoices and are what rrfdsim -mc prints and its
// -mc-replay flag accepts.

// choicesVersion is the current choice-string format prefix.
const choicesVersion = "c1:"

// maxChoices and maxChoice bound what ParseChoices accepts: no real
// counterexample comes close, and the bounds turn hostile input (fuzzed,
// truncated, hand-mangled) into structured errors instead of huge
// allocations.
const (
	maxChoices = 1 << 16
	maxChoice  = 1 << 20
)

// DecodeError reports a malformed choice string. Offset is the byte
// offset of the first offending character.
type DecodeError struct {
	Offset int
	Reason string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("mc: bad choice string at offset %d: %s", e.Offset, e.Reason)
}

// FormatChoices renders a choice sequence as a replayable string.
func FormatChoices(choices []int) string {
	var b strings.Builder
	b.WriteString(choicesVersion)
	for i, c := range choices {
		if i > 0 {
			b.WriteByte('.')
		}
		if c < 0 {
			c = 0
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// ParseChoices decodes a choice string back to the sequence. Errors are
// always a *DecodeError pinpointing the offending byte: a torn, truncated
// or hand-mangled string never panics and never silently decodes to the
// wrong schedule.
func ParseChoices(s string) ([]int, error) {
	if !strings.HasPrefix(s, choicesVersion) {
		if strings.HasPrefix(s, "c") && strings.Contains(s, ":") {
			return nil, &DecodeError{Offset: 0, Reason: fmt.Sprintf("unsupported version %q (want %q)", s[:strings.Index(s, ":")+1], choicesVersion)}
		}
		return nil, &DecodeError{Offset: 0, Reason: fmt.Sprintf("missing %q prefix", choicesVersion)}
	}
	body := s[len(choicesVersion):]
	if body == "" {
		return []int{}, nil
	}
	choices := make([]int, 0, 8)
	val, digits, start := 0, 0, len(choicesVersion)
	flush := func(end int) error {
		if digits == 0 {
			return &DecodeError{Offset: start, Reason: "empty choice"}
		}
		if len(choices) >= maxChoices {
			return &DecodeError{Offset: start, Reason: fmt.Sprintf("more than %d choices", maxChoices)}
		}
		choices = append(choices, val)
		val, digits, start = 0, 0, end+1
		return nil
	}
	for i := 0; i < len(body); i++ {
		off := len(choicesVersion) + i
		switch c := body[i]; {
		case c >= '0' && c <= '9':
			if digits > 0 && val == 0 {
				return nil, &DecodeError{Offset: off, Reason: "leading zero"}
			}
			val = val*10 + int(c-'0')
			digits++
			if val > maxChoice {
				return nil, &DecodeError{Offset: start, Reason: fmt.Sprintf("choice exceeds %d", maxChoice)}
			}
		case c == '.':
			if err := flush(off); err != nil {
				return nil, err
			}
		default:
			return nil, &DecodeError{Offset: off, Reason: fmt.Sprintf("unexpected byte %q", c)}
		}
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return choices, nil
}
