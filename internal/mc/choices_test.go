package mc

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestChoicesRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{4},
		{2, 0, 1},
		{0, 0, 0, 0},
		{1048576, 10, 0}, // maxChoice boundary
	}
	for _, c := range cases {
		s := FormatChoices(c)
		got, err := ParseChoices(s)
		if err != nil {
			t.Fatalf("ParseChoices(%q) = %v", s, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("round trip %v -> %q -> %v", c, s, got)
		}
	}
}

func TestFormatChoicesClampsNegative(t *testing.T) {
	if s := FormatChoices([]int{-3, 1}); s != "c1:0.1" {
		t.Fatalf("FormatChoices = %q, want c1:0.1", s)
	}
}

func TestFormatChoicesEmpty(t *testing.T) {
	if s := FormatChoices(nil); s != "c1:" {
		t.Fatalf("FormatChoices(nil) = %q", s)
	}
}

func TestParseChoicesErrors(t *testing.T) {
	cases := []struct {
		in     string
		offset int
		reason string // substring
	}{
		{"", 0, "missing"},
		{"2.0.1", 0, "missing"},
		{"c2:1.2", 0, "unsupported version"},
		{"c1:.", 3, "empty choice"},
		{"c1:2.", 5, "empty choice"},
		{"c1:2..1", 5, "empty choice"},
		{"c1:2.x", 5, "unexpected byte"},
		{"c1:2, 3", 4, "unexpected byte"},
		{"c1:01", 4, "leading zero"},
		{"c1:2.00", 6, "leading zero"},
		{"c1:9999999", 3, "exceeds"},
	}
	for _, c := range cases {
		_, err := ParseChoices(c.in)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("ParseChoices(%q) = %v, want DecodeError", c.in, err)
		}
		if de.Offset != c.offset || !strings.Contains(de.Reason, c.reason) {
			t.Fatalf("ParseChoices(%q) = %+v, want offset %d reason ~%q", c.in, de, c.offset, c.reason)
		}
	}
}

func TestParseChoicesTooMany(t *testing.T) {
	var b strings.Builder
	b.WriteString("c1:1")
	for i := 0; i < maxChoices; i++ {
		b.WriteString(".1")
	}
	_, err := ParseChoices(b.String())
	var de *DecodeError
	if !errors.As(err, &de) || !strings.Contains(de.Reason, "more than") {
		t.Fatalf("overlong string: err = %v, want too-many DecodeError", err)
	}
}

func TestCounterexampleString(t *testing.T) {
	cx := &Counterexample{Choices: []int{2, 0, 1}}
	if got := cx.String(); !strings.Contains(got, "c1:2.0.1") {
		t.Fatalf("Counterexample.String() = %q, want the replay string embedded", got)
	}
}
