package mc

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzParseChoices hammers the choice-string decoder with arbitrary
// bytes: it must never panic, every failure must be a structured
// *DecodeError, and anything that decodes must round-trip bit-for-bit
// through FormatChoices — a torn or overlong counterexample string can
// never silently replay the wrong schedule. Mirrors internal/wal's
// FuzzReplay setup; the seed corpus under testdata/fuzz is checked in.
func FuzzParseChoices(f *testing.F) {
	f.Add("c1:2.0.1")
	f.Add("c1:")
	f.Add("c1:0")
	f.Add("c1:4")
	f.Add("")
	f.Add("c1:2.")       // torn mid-separator
	f.Add("c1:2.0")      // truncated tail is still valid
	f.Add("c2:1.2")      // future version
	f.Add("c1:01")       // leading zero
	f.Add("c1:99999999") // over maxChoice
	f.Add("c1:2,3")
	f.Add("c1:\xff\x00")
	f.Fuzz(func(t *testing.T, s string) {
		choices, err := ParseChoices(s)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("ParseChoices(%q): non-structured error %v", s, err)
			}
			if de.Offset < 0 || de.Offset > len(s) {
				t.Fatalf("ParseChoices(%q): offset %d out of range", s, de.Offset)
			}
			return
		}
		if len(choices) > maxChoices {
			t.Fatalf("ParseChoices(%q): %d choices exceeds cap", s, len(choices))
		}
		for _, c := range choices {
			if c < 0 || c > maxChoice {
				t.Fatalf("ParseChoices(%q): choice %d out of range", s, c)
			}
		}
		// Decoded strings are canonical: format(parse(s)) == s.
		if got := FormatChoices(choices); got != s {
			t.Fatalf("ParseChoices(%q) = %v, reformats to %q", s, choices, got)
		}
		again, err := ParseChoices(FormatChoices(choices))
		if err != nil || !reflect.DeepEqual(again, choices) {
			t.Fatalf("round trip of %v failed: %v, %v", choices, again, err)
		}
	})
}
