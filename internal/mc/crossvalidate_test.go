package mc_test

import (
	"io"
	"testing"

	"repro/internal/agreement"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mc"
)

// Cross-validation between the two bug-finding tools: the exhaustive
// model checker (small n, every adversary schedule) and the randomized
// chaos harness (larger n, sampled message-level mischief) must agree on
// the verdict for the same decision rule. The honest quorum-gated k-set
// rule passes both; the planted wrong-quorum rule fails both. A
// violation the sampler can find that exhaustive exploration misses
// would mean the enumeration (or the reduction) is unsound.

func mcVerdict(t *testing.T, factory core.Factory) bool {
	t.Helper()
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(kSetSpec(t, factory)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil && !res.Exhausted {
		t.Fatal("model checker found nothing but did not exhaust the schedule space")
	}
	return res.Counterexample == nil
}

func chaosVerdict(t *testing.T, buggy bool) bool {
	t.Helper()
	sum := chaos.Run(chaos.Config{
		N: 6, F: 2, K: 3,
		Runs:          40,
		Seed:          13,
		DropRate:      1.0,
		OmitRate:      0.8,
		PartitionRate: 0.6,
		WatchdogSteps: 300,
		QuorumBug:     buggy,
		Out:           io.Discard,
	})
	return sum.Ok()
}

func TestCrossValidationHonest(t *testing.T) {
	mcOK := mcVerdict(t, agreement.QuorumKSet(1))
	chaosOK := chaosVerdict(t, false)
	if !mcOK || !chaosOK {
		t.Fatalf("honest rule verdicts disagree with correctness: mc ok=%v, chaos ok=%v", mcOK, chaosOK)
	}
}

func TestCrossValidationBuggy(t *testing.T) {
	mcOK := mcVerdict(t, agreement.QuorumKSetBuggy(1))
	chaosOK := chaosVerdict(t, true)
	if mcOK {
		t.Fatal("exhaustive exploration missed the planted bug the sampler is expected to find")
	}
	if chaosOK {
		t.Fatal("chaos sampling missed the planted bug exhaustive exploration found")
	}
}
