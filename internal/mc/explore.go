package mc

import (
	"repro/internal/par"
)

// Ctx drives one run of the function under exploration. The run must be a
// deterministic function of the values Choose returns: same choices, same
// execution. Ctx is not safe for concurrent use and must not be retained
// past the run call it was passed to.
type Ctx struct {
	t *task

	// replay mode (t == nil): choices feed the run, clamped in range;
	// beyond the provided sequence every choice defaults to 0. got
	// records the value actually returned for each provided index.
	replay []int
	rp     int
	got    []int
}

// Choose asks the explorer to pick one of options alternatives (numbered
// 0..options-1) and returns the pick. options must be positive: a node
// with nothing to choose is a bug in the run function, not an adversary
// decision, and panics.
func (c *Ctx) Choose(options int) int {
	return c.choose(options, nil)
}

// ChooseLabeled is Choose with a stable label per option, enabling the
// symmetry and sleep-set reductions: two options at the same node carrying
// the same label are taken to reach symmetric states and only the first is
// explored, and Options.Independent consults labels to skip commuting
// interleavings. Labels must be a deterministic function of the choice
// prefix, like everything else about the run.
func (c *Ctx) ChooseLabeled(labels []uint64) int {
	return c.choose(len(labels), labels)
}

// Mark reports a fingerprint of the complete current state, enabling
// state-hash pruning: when a later schedule reaches a Mark'd fingerprint
// whose subtree was already fully enumerated, that subtree is cut. The
// fingerprint must capture every piece of state the remaining execution
// can depend on; Mark takes effect at the next Choose and is ignored
// during replay and frontier sampling.
func (c *Ctx) Mark(hash uint64) {
	if c.t != nil {
		c.t.mark(hash)
	}
}

func (c *Ctx) choose(options int, labels []uint64) int {
	if options <= 0 {
		panic("mc: Choose called with no options")
	}
	if c.t != nil {
		return c.t.choose(options, labels)
	}
	v := 0
	if c.rp < len(c.replay) {
		v = c.replay[c.rp]
		if v < 0 {
			v = 0
		}
		if v >= options {
			v = options - 1
		}
		c.got = append(c.got, v)
	}
	c.rp++
	return v
}

// Replay re-executes run driven by a recorded choice sequence (for
// example a Counterexample's Choices, or a string decoded by
// ParseChoices) and returns whatever the run returns. Out-of-range
// choices are clamped and choices beyond the sequence default to 0, so a
// shrunk or hand-edited sequence always replays to *some* schedule.
func Replay(choices []int, run func(*Ctx) error) error {
	err, _ := replayNorm(choices, run)
	return err
}

// replayNorm is Replay plus the normalized sequence: the clamped values
// actually consumed, truncated to what the run read and stripped of
// trailing zeros (which replay identically as defaults).
func replayNorm(choices []int, run func(*Ctx) error) (error, []int) {
	ctx := &Ctx{replay: choices}
	err := run(ctx)
	norm := ctx.got
	for len(norm) > 0 && norm[len(norm)-1] == 0 {
		norm = norm[:len(norm)-1]
	}
	return err, norm
}

// frame is one node of the recorded choice tree along the current path.
type frame struct {
	options int
	labels  []uint64        // nil when chosen via plain Choose
	skip    []bool          // options collapsed by symmetry/sleep; nil = none
	sleep   map[uint64]bool // sleep set at this node, consulted by children
	hash    uint64          // Mark fingerprint reported before this node
	hasHash bool
	pruned  bool // subtree cut: fingerprint already fully enumerated
	sampled bool // frontier node: random completions, not enumeration
	choice  int  // option taken on the current path
	visit   int  // sampled: completed random completions
}

// effective counts the options actually explored at f.
func (f *frame) effective() int {
	if f.skip == nil {
		return f.options
	}
	n := 0
	for _, s := range f.skip {
		if !s {
			n++
		}
	}
	return n
}

// task explores one subtree sequentially: the frames up to prefixLen are
// fixed (they encode the path from the root to the subtree), everything
// deeper is enumerated depth-first exactly like the original swmr
// explorer, with pruning, reductions and frontier sampling layered on.
type task struct {
	opts      Options
	runFn     func(*Ctx) error
	stack     []frame
	prefixLen int
	budget    int
	explored  map[uint64]bool
	stats     Stats

	// sawSampling poisons exhaustiveness (and with it the soundness of
	// adding new fingerprints to explored) for the rest of the task.
	sawSampling bool

	// per-schedule state
	depth       int   // frames entered on the current run
	pathLen     int   // choices made, including drained ones
	tail        []int // choices made while draining, for replayability
	drain       bool  // past a pruned or sampled node: no new frames
	sampling    bool  // drain with random (vs all-zero) choices
	rng         rng
	pendingHash uint64
	hasPending  bool
	div         *DivergenceError
}

func newTask(o Options, run func(*Ctx) error, prefix []frame, budget int) *task {
	return &task{
		opts:      o,
		runFn:     run,
		stack:     append([]frame(nil), prefix...),
		prefixLen: len(prefix),
		budget:    budget,
		explored:  make(map[uint64]bool),
	}
}

// taskResult is one subtree's outcome, aggregated in subtree order.
type taskResult struct {
	stats     Stats
	exhausted bool
	limitHit  bool
	cx        []int // first violating choice sequence, nil if none
	cxErr     error // what the run returned for cx
	err       error // infrastructure failure (divergence)
}

func (t *task) mark(h uint64) {
	if t.drain || t.div != nil {
		return
	}
	t.pendingHash, t.hasPending = h, true
}

func (t *task) choose(options int, labels []uint64) int {
	if t.div != nil {
		return 0
	}
	if t.drain {
		v := 0
		if t.sampling {
			v = t.rng.next(options)
		}
		t.tail = append(t.tail, v)
		t.pathLen++
		return v
	}
	d := t.depth
	if d == len(t.stack) {
		t.push(options, labels)
	}
	f := &t.stack[d]
	if f.options != options || !labelsEqual(f.labels, labels) {
		// The tree is deterministic given the prefix; a mismatch means
		// run is not replayable. The chooser cannot fail, so record the
		// divergence and keep returning in-range choices until run comes
		// back; the task aborts then.
		t.div = &DivergenceError{Depth: d, Want: f.options, Got: options}
		return 0
	}
	t.hasPending = false
	t.depth++
	t.pathLen++
	if f.sampled {
		t.drain, t.sampling = true, true
		t.rng = newRNG(t.opts.Seed, t.pathFingerprint(d)+uint64(f.visit))
		f.choice = t.rng.next(options)
	} else if f.pruned {
		t.drain = true
	}
	return f.choice
}

// push records a newly reached node.
func (t *task) push(options int, labels []uint64) {
	f := frame{options: options}
	if labels != nil {
		f.labels = append([]uint64(nil), labels...)
	}
	if t.opts.MaxDepth > 0 && t.depth >= t.opts.MaxDepth {
		// Frontier: this subtree is sampled, not enumerated, so nothing
		// at or above it may be recorded as fully explored from here on.
		f.sampled = true
		t.sawSampling = true
		t.stack = append(t.stack, f)
		return
	}
	if t.hasPending {
		f.hash, f.hasHash = t.pendingHash, true
		if !t.opts.NoPrune && t.explored[f.hash] {
			f.pruned = true
			t.stats.Pruned++
			t.event("mc.prune", map[string]any{"depth": t.depth})
		}
	}
	if f.labels != nil && !f.pruned {
		sleep := t.sleepFor(f.labels)
		f.sleep = sleep
		skips := 0
		for i, l := range f.labels {
			dup := false
			for j := 0; j < i; j++ {
				if f.labels[j] == l {
					dup = true
					break
				}
			}
			switch {
			case dup:
				t.ensureSkip(&f)[i] = true
				t.stats.SymmetrySkips++
				skips++
			case sleep != nil && sleep[l]:
				t.ensureSkip(&f)[i] = true
				t.stats.SleepSkips++
				skips++
			}
		}
		if skips == options {
			// Every option asleep: classic sleep-set search would
			// backtrack here, but the run is mid-execution and needs a
			// value, so wake the first option (exploring more than
			// necessary is always sound).
			f.skip[0] = false
			t.stats.SleepSkips--
		}
		for f.skip != nil && f.skip[f.choice] {
			f.choice++
		}
	}
	t.stack = append(t.stack, f)
}

func (t *task) ensureSkip(f *frame) []bool {
	if f.skip == nil {
		f.skip = make([]bool, f.options)
	}
	return f.skip
}

// sleepFor computes the sleep set for a child of the current deepest
// frame: labels that were asleep at the parent or already explored as
// earlier siblings, filtered to those independent of the edge taken.
func (t *task) sleepFor(labels []uint64) map[uint64]bool {
	if t.opts.Independent == nil || t.depth == 0 {
		return nil
	}
	p := &t.stack[t.depth-1]
	if p.labels == nil {
		return nil
	}
	chosen := p.labels[p.choice]
	var sleep map[uint64]bool
	add := func(l uint64) {
		if t.opts.Independent(l, chosen) {
			if sleep == nil {
				sleep = make(map[uint64]bool)
			}
			sleep[l] = true
		}
	}
	for l := range p.sleep {
		add(l)
	}
	for j := 0; j < p.choice; j++ {
		if p.skip == nil || !p.skip[j] {
			add(p.labels[j])
		}
	}
	return sleep
}

// pathFingerprint hashes the choices leading to (but excluding) depth d,
// seeding frontier sampling so each frontier node gets its own stream.
func (t *task) pathFingerprint(d int) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < d; i++ {
		h = (h ^ uint64(t.stack[i].choice)) * 1099511628211
	}
	return h
}

// runOnce executes one schedule against the current stack state.
func (t *task) runOnce() error {
	t.depth = 0
	t.pathLen = 0
	t.tail = t.tail[:0]
	t.drain, t.sampling = false, false
	t.hasPending = false
	return t.runFn(&Ctx{t: t})
}

// currentChoices snapshots the full choice sequence of the schedule that
// just ran: the frames entered plus any drained tail.
func (t *task) currentChoices() []int {
	out := make([]int, 0, t.depth+len(t.tail))
	for i := 0; i < t.depth; i++ {
		out = append(out, t.stack[i].choice)
	}
	return append(out, t.tail...)
}

// backtrack advances to the next unexplored path in the subtree,
// reporting false when the subtree is exhausted.
func (t *task) backtrack() bool {
	// Drop the unexplored tail recorded beyond this run's depth, then
	// advance the deepest choice with options left.
	t.stack = t.stack[:t.depth]
	for len(t.stack) > t.prefixLen {
		f := &t.stack[len(t.stack)-1]
		switch {
		case f.sampled:
			f.visit++
			if f.visit < t.opts.Samples {
				return true
			}
		case f.pruned:
			// One pass only; its fingerprint is already in explored.
		default:
			next := f.choice + 1
			for next < f.options && f.skip != nil && f.skip[next] {
				next++
			}
			if next < f.options {
				f.choice = next
				return true
			}
			if f.hasHash && !t.sawSampling && !t.opts.NoPrune {
				// The node's whole subtree has now been enumerated (up
				// to sound reductions), so any later schedule reaching
				// the same fingerprint can be cut. Sampling anywhere in
				// the task poisons this: "exhausted" would be a lie.
				t.explored[f.hash] = true
			}
		}
		t.stack = t.stack[:len(t.stack)-1]
	}
	return false
}

// explore runs the task's subtree to exhaustion, budget, violation or
// divergence.
func (t *task) explore() taskResult {
	for {
		if t.budget <= 0 {
			return taskResult{stats: t.stats, limitHit: true}
		}
		err := t.runOnce()
		if t.div != nil {
			return taskResult{stats: t.stats, err: t.div}
		}
		if err != nil {
			return taskResult{stats: t.stats, cx: t.currentChoices(), cxErr: err}
		}
		t.stats.Schedules++
		t.budget--
		if t.pathLen > t.stats.MaxDepth {
			t.stats.MaxDepth = t.pathLen
		}
		if t.sampling {
			t.stats.Sampled++
			t.event("mc.sample", map[string]any{"depth": t.pathLen})
		}
		t.event("mc.schedule", map[string]any{"depth": t.pathLen})
		if !t.backtrack() {
			return taskResult{stats: t.stats, exhausted: !t.sawSampling}
		}
	}
}

func (t *task) event(kind string, fields map[string]any) {
	if t.opts.Observer != nil {
		t.opts.Observer.Event(kind, -1, -1, fields)
	}
}

func labelsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// rng is a self-contained xorshift64* stream, so frontier sampling does
// not depend on math/rand implementation details across Go versions.
type rng uint64

func newRNG(seed int64, mix uint64) rng {
	s := (uint64(seed)+mix)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	if s == 0 {
		s = 0x2545f4914f6cdd1d
	}
	return rng(s)
}

func (r *rng) next(n int) int {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return int((x * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
}

// Explore model-checks run over every choice sequence it can make. run is
// invoked once per schedule with a fresh Ctx and must build a fresh
// system, execute it, and return nil for a passing schedule or an error
// for a property violation (wrapped with context — it becomes the
// counterexample's Err).
//
// The search is exhaustive for terminating systems within
// Options.MaxSchedules (and Options.MaxDepth, when set); the Result
// reports whether the space was exhausted, the first violating schedule
// in depth-first order shrunk to a minimal counterexample, and the
// schedule/prune/depth counters. The returned error is non-nil only for
// infrastructure failures — today, a *DivergenceError when run is not a
// deterministic function of its choices — and the Result still carries
// the counters accumulated up to that point.
//
// The result is byte-identical for every Options.Workers value: the tree
// is split at its first branching node, the subtrees are searched
// concurrently with deterministically divided budgets, and aggregation
// runs in subtree order.
func Explore(opts Options, run func(*Ctx) error) (*Result, error) {
	o := opts.withDefaults()

	// Probe: one run down the all-first path records enough of the tree
	// to find the first branching node, where the parallel split happens.
	probe := newTask(o, run, nil, 1)
	err := probe.runOnce()
	if probe.div != nil {
		return &Result{Stats: probe.stats}, probe.div
	}
	if err != nil {
		// The very first schedule in depth-first order violates; no
		// search order reports anything earlier.
		return finish(o, run, &Result{Stats: probe.stats}, probe.currentChoices(), err)
	}

	split := -1
	for d := 0; d < probe.depth; d++ {
		f := &probe.stack[d]
		if f.sampled {
			break // beyond the frontier nothing is enumerated
		}
		if f.effective() > 1 {
			split = d
			break
		}
	}

	if split < 0 {
		// Single enumerable path: one task explores the whole tree. The
		// probe is discarded — the task re-runs its path as the first
		// schedule, keeping counts identical to the split below.
		t := newTask(o, run, nil, o.MaxSchedules)
		return aggregate(o, run, []taskResult{t.explore()})
	}

	// Split at the first branching node: one subtree per effective option,
	// searched via par.Map with the budget divided deterministically. The
	// split happens at every worker count (workers=1 just runs the
	// subtrees sequentially in order), so budget distribution — and with
	// it every counter — is independent of the worker count. Each task
	// owns its explored set; fingerprints do not cross subtree boundaries
	// (sharing them would make pruning depend on scheduling).
	root := probe.stack[split]
	var subs []int
	for i := 0; i < root.options; i++ {
		if root.skip == nil || !root.skip[i] {
			subs = append(subs, i)
		}
	}
	prefix := probe.stack[:split+1]
	base, rem := o.MaxSchedules/len(subs), o.MaxSchedules%len(subs)
	trs, perr := par.Map(o.Workers, len(subs), func(j int) taskResult {
		pf := append([]frame(nil), prefix...)
		pf[split].choice = subs[j]
		budget := base
		if j < rem {
			budget++
		}
		return newTask(o, run, pf, budget).explore()
	})
	if perr != nil {
		// A panicking run function propagates like a sequential panic.
		panic(perr)
	}
	return aggregate(o, run, trs)
}

// aggregate folds subtree results in subtree order, mirroring what a
// sequential depth-first search would have reported: counters of every
// subtree before the first failing one, then that failure.
func aggregate(o Options, run func(*Ctx) error, trs []taskResult) (*Result, error) {
	res := &Result{Exhausted: true}
	for i := range trs {
		tr := &trs[i]
		res.Stats.add(tr.stats)
		if tr.err != nil {
			return res, tr.err
		}
		if tr.cx != nil {
			res.Exhausted = false
			return finish(o, run, res, tr.cx, tr.cxErr)
		}
		res.LimitHit = res.LimitHit || tr.limitHit
		res.Exhausted = res.Exhausted && tr.exhausted && !tr.limitHit
	}
	if o.Observer != nil {
		o.Observer.Event("mc.done", -1, -1, map[string]any{
			"schedules": res.Schedules, "pruned": res.Pruned,
			"sampled": res.Sampled, "max_depth": res.Stats.MaxDepth,
			"symmetry_skips": res.SymmetrySkips, "sleep_skips": res.SleepSkips,
		})
	}
	return res, nil
}

// finish attaches (and unless disabled, shrinks) a counterexample.
func finish(o Options, run func(*Ctx) error, res *Result, cx []int, cxErr error) (*Result, error) {
	res.Exhausted = false
	c := &Counterexample{FirstFound: append([]int(nil), cx...), Err: cxErr}
	if o.NoShrink {
		c.Choices = c.FirstFound
	} else {
		c.Choices, c.Err = shrink(run, cx, cxErr)
	}
	res.Counterexample = c
	if o.Observer != nil {
		o.Observer.Event("mc.violation", -1, -1, map[string]any{
			"choices": FormatChoices(c.Choices), "len": len(c.Choices),
		})
		o.Observer.Event("mc.done", -1, -1, map[string]any{
			"schedules": res.Schedules, "pruned": res.Pruned,
			"sampled": res.Sampled, "max_depth": res.Stats.MaxDepth,
			"symmetry_skips": res.SymmetrySkips, "sleep_skips": res.SleepSkips,
		})
	}
	return res, nil
}

// shrinkBudget caps the replays one shrink may spend. The spaces mc
// explores are small (exhaustive search got here first), so the cap only
// guards pathological run functions; within it the loop runs to fixpoint
// and the result is locally minimal.
const shrinkBudget = 10000

// shrink reduces a violating choice sequence to a locally minimal one:
// no trailing choice can be dropped and no single choice lowered without
// losing the violation. Replays are deterministic, so the result is too.
func shrink(run func(*Ctx) error, first []int, firstErr error) ([]int, error) {
	replays := 0
	try := func(cand []int) (error, []int) {
		replays++
		return replayNorm(cand, run)
	}

	// Normalize the found sequence (clamp, truncate, strip zero tail).
	best, bestErr := append([]int(nil), first...), firstErr
	if err, norm := try(best); err != nil {
		best, bestErr = norm, err
	}

	for changed := true; changed && replays < shrinkBudget; {
		changed = false
		// Drop the tail one choice at a time.
		for len(best) > 0 && replays < shrinkBudget {
			err, norm := try(best[:len(best)-1])
			if err == nil {
				break
			}
			best, bestErr, changed = norm, err, true
		}
		// Lower individual choices, smallest value first.
		for i := 0; i < len(best) && replays < shrinkBudget; i++ {
			for v := 0; v < best[i]; v++ {
				cand := append([]int(nil), best...)
				cand[i] = v
				err, norm := try(cand)
				if err != nil {
					best, bestErr, changed = norm, err, true
					break
				}
				if replays >= shrinkBudget {
					break
				}
			}
		}
	}
	return best, bestErr
}
