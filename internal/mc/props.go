package mc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/predicate"
)

// Property is a named predicate over a finished execution. Check returns
// nil when the execution satisfies the property and a descriptive error
// when it does not; the error becomes the counterexample's Err.
type Property struct {
	Name  string
	Check func(res *core.Result) error
}

// PropertyError wraps a property violation with the property's name. It
// unwraps to the underlying violation (e.g. a *predicate.Violation).
type PropertyError struct {
	Name string
	Err  error
}

// Error implements error.
func (e *PropertyError) Error() string {
	return fmt.Sprintf("property %s violated: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying violation to errors.Is/As.
func (e *PropertyError) Unwrap() error { return e.Err }

// Validity holds when every decision value is some process's input.
func Validity(inputs []core.Value) Property {
	return Property{Name: "validity", Check: func(res *core.Result) error {
		for p, v := range res.Outputs {
			ok := false
			for _, in := range inputs {
				if in == v {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("process %d decided %v, not any input", p, v)
			}
		}
		return nil
	}}
}

// KAgreement holds when at most k distinct values are decided.
func KAgreement(k int) Property {
	return Property{Name: fmt.Sprintf("%d-agreement", k), Check: func(res *core.Result) error {
		if d := res.DistinctOutputs(); d > k {
			return fmt.Errorf("%d distinct decisions, want <= %d", d, k)
		}
		return nil
	}}
}

// DecideWithin holds when every process the adversary did not crash has
// decided by round r (agreement-within-rounds; the liveness half of a
// bounded-round claim).
func DecideWithin(r int) Property {
	return Property{Name: fmt.Sprintf("decide-within(%d)", r), Check: func(res *core.Result) error {
		var bad error
		res.Crashed.Complement().ForEach(func(p core.PID) {
			if bad != nil {
				return
			}
			rd, ok := res.DecidedAt[p]
			if !ok {
				bad = fmt.Errorf("process %d never decided", p)
			} else if rd > r {
				bad = fmt.Errorf("process %d decided in round %d, want <= %d", p, rd, r)
			}
		})
		return bad
	}}
}

// TraceSatisfies lifts a model predicate (eq. (1)–(4), k-set, ...) to a
// Property over the recorded trace — useful to assert that an enumerated
// adversary stays inside its model, or to explore one model while
// checking membership in another.
func TraceSatisfies(p predicate.P) Property {
	return Property{Name: p.Name, Check: func(res *core.Result) error {
		if res.Trace == nil {
			return fmt.Errorf("predicate %s needs a trace, execution recorded none", p.Name)
		}
		return p.Check(res.Trace)
	}}
}

// Fingerprinter is implemented by algorithms and oracles that can hash
// their complete mutable state, enabling state-hash pruning: CheckRun
// Marks the combined fingerprint before each adversary choice when every
// participant implements it (and RunSpec.Mark opts in).
type Fingerprinter interface {
	Fingerprint() uint64
}

// RunSpec binds an algorithm, an adversary and properties into a run
// function for Explore: every schedule builds a fresh system, executes it
// under the Ctx-driven oracle, and checks each property.
type RunSpec struct {
	// N and Inputs size the system, as in core.Run.
	N      int
	Inputs []core.Value

	// Factory builds the algorithm under test.
	Factory core.Factory

	// Oracle builds the adversary for one schedule. It is called once per
	// schedule with the schedule's Ctx; adversary enumerators (e.g.
	// adversary.Enumerated) draw their decisions from it.
	Oracle func(ctx *Ctx) core.Oracle

	// MaxRounds bounds each execution; 0 means 32. Hitting the bound is a
	// violation (the schedule's system never terminated), reported like
	// any property failure.
	MaxRounds int

	// Props are checked, in order, against every completed execution.
	Props []Property

	// Model, when non-nil, is a compiled model predicate (e.g. from
	// hoalg.Compile) checked against every schedule's trace after Props —
	// the membership assertion that an enumerated adversary stays inside
	// its model. Trace predicates are path properties, so a spec with a
	// Model must leave Mark off (see the Mark soundness note below).
	Model *predicate.P

	// Mark opts in to state-hash pruning: before each adversary choice
	// the combined fingerprint of round, active set, every algorithm and
	// the oracle is Marked. It is only sound when (a) every algorithm and
	// the oracle implement Fingerprinter over their complete state —
	// otherwise marking silently stays off — and (b) every Prop is a
	// function of the final state (validity, k-agreement), not of the
	// path (decide-within, trace predicates). See DESIGN §12.
	Mark bool

	// Observer, when non-nil, is attached to every schedule's engine
	// execution (core.WithObserver) — distinct from Options.Observer,
	// which sees only the exploration's own mc.* events. Attaching an
	// engine observer to a full exploration is expensive and rarely
	// wanted; the intended use is rendering one Replay of a
	// counterexample's choice string (e.g. with obs/trace.Tracer).
	Observer obs.Observer
}

// CheckRun compiles the spec into a run function for Explore or Replay.
func CheckRun(s RunSpec) func(*Ctx) error {
	maxRounds := s.MaxRounds
	if maxRounds == 0 {
		maxRounds = 32
	}
	props := s.Props
	if s.Model != nil {
		props = append(append([]Property(nil), s.Props...), TraceSatisfies(*s.Model))
	}
	return func(ctx *Ctx) error {
		mo := &markingOracle{ctx: ctx, inner: s.Oracle(ctx), mark: s.Mark}
		factory := func(me core.PID, n int, input core.Value) core.Algorithm {
			a := s.Factory(me, n, input)
			mo.algs = append(mo.algs, a)
			return a
		}
		runOpts := []core.Option{core.WithMaxRounds(maxRounds)}
		if s.Observer != nil {
			runOpts = append(runOpts, core.WithObserver(s.Observer))
		}
		res, err := core.Run(s.N, s.Inputs, factory, mo, runOpts...)
		if err != nil {
			return fmt.Errorf("execution failed: %w", err)
		}
		for _, p := range props {
			if err := p.Check(res); err != nil {
				return &PropertyError{Name: p.Name, Err: err}
			}
		}
		return nil
	}
}

// markingOracle wraps the schedule's oracle to Mark the system
// fingerprint immediately before each adversary choice (the Plan call
// consumes the mark at its first Choose).
type markingOracle struct {
	ctx   *Ctx
	inner core.Oracle
	algs  []core.Algorithm
	mark  bool
}

func (m *markingOracle) Plan(r int, active core.Set) core.RoundPlan {
	if m.mark {
		if h, ok := m.fingerprint(r, active); ok {
			m.ctx.Mark(h)
		}
	}
	return m.inner.Plan(r, active)
}

func (m *markingOracle) fingerprint(r int, active core.Set) (uint64, bool) {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h = (h ^ v) * 1099511628211
	}
	mix(uint64(r))
	active.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	for _, a := range m.algs {
		fp, ok := a.(Fingerprinter)
		if !ok {
			return 0, false
		}
		mix(fp.Fingerprint())
	}
	fp, ok := m.inner.(Fingerprinter)
	if !ok {
		return 0, false
	}
	mix(fp.Fingerprint())
	return h, true
}
