// Package mc is the systematic model-checking subsystem: an exhaustive,
// substrate-agnostic explorer of adversary choice trees.
//
// The paper's central move is that a model of computation *is* a predicate
// over the suspicion sets D(i,r), and the round-by-round fault detector is
// an adversary picking the worst allowed D. Correctness claims (validity,
// k-agreement, the eq. (3) predicate) therefore quantify over *every*
// allowed adversary choice — not just the seeded random ones a chaos
// harness samples. This package checks them that way: it enumerates every
// run of a deterministic function of an explicit choice sequence.
//
// A run function receives a *Ctx and calls Ctx.Choose (or ChooseLabeled)
// each time an adversary decision is pending: which process steps next,
// which suspect-set family D(·,r) the detector plays, when a crash lands.
// Explore drives the function through a depth-first enumeration of the
// resulting choice tree, exactly like internal/swmr's original explorer
// but independent of any substrate:
//
//   - State-hash pruning: a run may report a fingerprint of its full state
//     via Ctx.Mark before choosing; subtrees rooted at an already-exhausted
//     fingerprint are cut (sound for safety properties when the fingerprint
//     faithfully captures all state the remaining execution depends on).
//   - Symmetry and sleep-set reduction: ChooseLabeled names each option
//     with a stable label; options carrying a label already explored at the
//     same node are collapsed (symmetry), and with Options.Independent a
//     classic sleep-set pass skips commuting interleavings.
//   - Bounded-depth sampling: beyond Options.MaxDepth the frontier is not
//     enumerated; each frontier node is instead completed Options.Samples
//     times with seeded random choices, so deep spaces degrade into
//     deterministic randomized testing rather than non-termination.
//   - Deterministic parallelism: the tree is split at its first branching
//     node and the subtrees are searched concurrently via internal/par;
//     results are aggregated in subtree order, so schedule counts and the
//     counterexample are byte-identical at every Options.Workers value.
//   - Counterexamples: a violating run is shrunk to a locally minimal
//     choice sequence and rendered as a replayable choice string
//     (FormatChoices / ParseChoices / Replay).
//
// Exploration is exhaustive for terminating systems within MaxSchedules;
// Result reports schedules run, subtrees pruned, and the deepest path, and
// the same counters flow to obs.Metrics under the "mc" key.
package mc

import (
	"errors"
	"fmt"
)

// DivergenceError reports that replaying a choice prefix presented a
// different option set than the recorded tree — i.e. the run function is
// not a deterministic function of its choices, and the search results
// would be meaningless.
type DivergenceError struct {
	// Depth is the choice-tree depth at which replay diverged.
	Depth int

	// Want is the option count recorded when this node was first visited;
	// Got is the count observed on replay. Want == Got means the counts
	// matched but an option's label changed.
	Want, Got int
}

// Error implements error.
func (e *DivergenceError) Error() string {
	if e.Want == e.Got {
		return fmt.Sprintf("mc: non-deterministic replay at depth %d: option labels changed across replays", e.Depth)
	}
	return fmt.Sprintf("mc: non-deterministic replay at depth %d: %d options recorded, %d on replay",
		e.Depth, e.Want, e.Got)
}

// ErrLimit is the sentinel matched by errors.Is for a search that ran out
// of schedule budget before exhausting the space.
var ErrLimit = errors.New("mc: schedule space not exhausted within limit")

// LimitError reports an un-exhausted search space, carrying the schedules
// that did run so callers reporting the error lose no information.
type LimitError struct {
	// Schedules is how many schedules executed before the budget ran out.
	Schedules int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("mc: schedule space not exhausted within limit (%d schedules run)", e.Schedules)
}

// Is reports ErrLimit equivalence for errors.Is.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// Options configures Explore.
type Options struct {
	// MaxSchedules bounds the total schedules executed; 0 means 1<<20.
	// When the tree is split for parallel search the budget is divided
	// deterministically across subtrees, so coverage is independent of
	// Workers.
	MaxSchedules int

	// MaxDepth, when positive, stops exhaustive enumeration at that
	// choice depth: a node reached at MaxDepth becomes a frontier node,
	// completed Samples times with seeded random choices instead of being
	// enumerated. 0 explores exhaustively.
	MaxDepth int

	// Samples is the number of random completions per frontier node;
	// 0 means 8. Ignored unless MaxDepth > 0.
	Samples int

	// Seed derives the random completions of bounded-depth sampling.
	// 0 means 1.
	Seed int64

	// Workers bounds the concurrent subtree searches; 0 means one per
	// logical CPU, 1 forces the sequential loop. The result is
	// byte-identical at every value. An Observer forces 1 so the event
	// stream stays deterministic.
	Workers int

	// Independent, when non-nil, enables the sleep-set reduction for
	// labeled choices: Independent(a, b) must report whether the
	// transitions labeled a and b commute — from any state where both are
	// enabled, taking them in either order reaches the same state, and
	// neither disables the other. Declaring dependent transitions
	// independent is unsound; when in doubt return false.
	Independent func(a, b uint64) bool

	// NoPrune disables state-hash pruning even when the run calls Mark
	// (useful to measure the reduction, or when fingerprints may collide).
	NoPrune bool

	// NoShrink keeps the first violating choice sequence as found instead
	// of shrinking it to a locally minimal one.
	NoShrink bool

	// Observer, when non-nil, receives mc.* events (one "mc.schedule" per
	// schedule, "mc.prune" per cut subtree, "mc.sample" per random
	// completion, "mc.violation" per counterexample, and a final "mc.done"
	// carrying the deepest path). Forces Workers to 1.
	Observer observerLike
}

// observerLike is the slice of obs.Observer this package needs; declared
// structurally so mc stays importable from anywhere below obs.
type observerLike interface {
	Event(kind string, r, p int, fields map[string]any)
}

func (o Options) withDefaults() Options {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 1 << 20
	}
	if o.Samples <= 0 {
		o.Samples = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Observer != nil {
		o.Workers = 1
	}
	return o
}

// Stats count the work of one exploration.
type Stats struct {
	// Schedules is the number of completed (non-violating) schedules run.
	Schedules int

	// Pruned counts subtrees cut by state-hash pruning.
	Pruned int

	// SymmetrySkips counts options collapsed because an earlier option at
	// the same node carried the same label; SleepSkips counts options
	// skipped by the sleep-set reduction.
	SymmetrySkips, SleepSkips int

	// Sampled is how many of the schedules were random frontier
	// completions rather than enumerated paths.
	Sampled int

	// MaxDepth is the deepest choice path any schedule reached.
	MaxDepth int
}

func (s *Stats) add(t Stats) {
	s.Schedules += t.Schedules
	s.Pruned += t.Pruned
	s.SymmetrySkips += t.SymmetrySkips
	s.SleepSkips += t.SleepSkips
	s.Sampled += t.Sampled
	if t.MaxDepth > s.MaxDepth {
		s.MaxDepth = t.MaxDepth
	}
}

// Counterexample is a violating schedule, pinned down to its choices.
type Counterexample struct {
	// Choices replays the violation through Replay (or any run driven by
	// the same decisions). When shrinking ran, this is the shrunk,
	// locally minimal sequence: no single choice can be lowered and no
	// tail dropped without losing the violation.
	Choices []int

	// FirstFound is the violating sequence as the search first hit it,
	// before shrinking (equal to Choices under Options.NoShrink).
	FirstFound []int

	// Err is what the run function returned when replaying Choices.
	Err error
}

// String renders the counterexample with its replay string.
func (c *Counterexample) String() string {
	return fmt.Sprintf("choices %v (replay %s): %v", c.Choices, FormatChoices(c.Choices), c.Err)
}

// Result reports one exploration.
type Result struct {
	Stats

	// Exhausted reports that the entire choice tree was enumerated: no
	// schedule budget ran out and no frontier was sampled. An Exhausted
	// run with a nil Counterexample is a proof over the tree.
	Exhausted bool

	// LimitHit reports that MaxSchedules stopped at least one subtree.
	LimitHit bool

	// Counterexample is the first violating schedule in depth-first
	// order, nil when every schedule passed.
	Counterexample *Counterexample
}
