package mc

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// binaryTree returns a run making depth choices of width options each.
func tree(depth, options int, violate func(choices []int) bool) func(*Ctx) error {
	return func(ctx *Ctx) error {
		choices := make([]int, depth)
		for i := range choices {
			choices[i] = ctx.Choose(options)
		}
		if violate != nil && violate(choices) {
			return fmt.Errorf("violation at %v", choices)
		}
		return nil
	}
}

func TestExploreCountsLeaves(t *testing.T) {
	res, err := Explore(Options{}, tree(3, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 8 || !res.Exhausted || res.LimitHit || res.Counterexample != nil {
		t.Fatalf("res = %+v, want 8 exhausted schedules", res)
	}
	if res.Stats.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3", res.Stats.MaxDepth)
	}
}

func TestExploreSingleRun(t *testing.T) {
	// A run making no choices is one schedule, trivially exhausted.
	ran := 0
	res, err := Explore(Options{}, func(ctx *Ctx) error { ran++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 1 || !res.Exhausted {
		t.Fatalf("res = %+v, want 1 exhausted schedule", res)
	}
}

func TestExploreViolationOnFirstPath(t *testing.T) {
	res, err := Explore(Options{}, tree(2, 2, func(c []int) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if res.Schedules != 0 {
		t.Fatalf("schedules = %d, want 0 (first path violates)", res.Schedules)
	}
	if len(res.Counterexample.Choices) != 0 {
		// Every schedule violates, so shrinking reaches the empty
		// sequence (trailing zeros replay as defaults).
		t.Fatalf("choices = %v, want empty after shrinking", res.Counterexample.Choices)
	}
}

func TestExploreFindsAndShrinksViolation(t *testing.T) {
	// Violating schedules: first choice 2 and second choice >= 1. The
	// depth-first search hits [2,1,0] first; shrinking lowers nothing
	// (2 and 1 are load-bearing) and drops the irrelevant trailing 0.
	violate := func(c []int) bool { return c[0] == 2 && c[1] >= 1 }
	res, err := Explore(Options{}, tree(3, 3, violate))
	if err != nil {
		t.Fatal(err)
	}
	cx := res.Counterexample
	if cx == nil {
		t.Fatal("no counterexample")
	}
	if want := []int{2, 1, 0}; !reflect.DeepEqual(cx.FirstFound, want) {
		t.Fatalf("FirstFound = %v, want %v", cx.FirstFound, want)
	}
	if want := []int{2, 1}; !reflect.DeepEqual(cx.Choices, want) {
		t.Fatalf("Choices = %v, want %v", cx.Choices, want)
	}
	// Depth-first order: subtrees 0 and 1 fully pass (9 each), then
	// [2,0,*] passes (3) before [2,1,0] violates.
	if res.Schedules != 21 {
		t.Fatalf("schedules = %d, want 21", res.Schedules)
	}
	if err := Replay(cx.Choices, tree(3, 3, violate)); err == nil {
		t.Fatal("shrunk counterexample does not replay to a violation")
	}
}

func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	violate := func(c []int) bool { return c[0] == 2 && c[1] >= 1 }
	var results []*Result
	for _, w := range []int{1, 4, 8} {
		res, err := Explore(Options{Workers: w}, tree(3, 3, violate))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i, res := range results[1:] {
		if !reflect.DeepEqual(results[0], res) {
			t.Fatalf("workers result %d differs:\n%+v\nvs\n%+v", i+1, results[0], res)
		}
	}
}

func TestExploreLimit(t *testing.T) {
	res, err := Explore(Options{MaxSchedules: 3}, tree(3, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.LimitHit || res.Exhausted {
		t.Fatalf("res = %+v, want limit hit", res)
	}
	if res.Schedules > 3 {
		t.Fatalf("schedules = %d, want <= 3", res.Schedules)
	}
}

func TestExploreDivergence(t *testing.T) {
	invocation := 0
	res, err := Explore(Options{}, func(ctx *Ctx) error {
		invocation++
		opts := 2
		if invocation > 1 {
			opts = 3
		}
		ctx.Choose(opts)
		return nil
	})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want DivergenceError", err)
	}
	if div.Depth != 0 || div.Want != 2 || div.Got != 3 {
		t.Fatalf("divergence %+v, want depth 0, 2 vs 3", div)
	}
	if res == nil {
		t.Fatal("result should still carry stats on divergence")
	}
}

func TestExploreLabelDivergence(t *testing.T) {
	invocation := 0
	_, err := Explore(Options{}, func(ctx *Ctx) error {
		invocation++
		labels := []uint64{10, 20}
		if invocation > 1 {
			labels = []uint64{10, 21}
		}
		ctx.ChooseLabeled(labels)
		return nil
	})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want DivergenceError", err)
	}
	if div.Want != div.Got {
		t.Fatalf("label divergence should report equal counts, got %+v", div)
	}
}

func TestSymmetryReduction(t *testing.T) {
	// Three options, two of them carrying the same label: the duplicate
	// is collapsed at every node, so the depth-2 tree has 4 leaves, not 9.
	run := func(ctx *Ctx) error {
		ctx.ChooseLabeled([]uint64{7, 7, 9})
		ctx.ChooseLabeled([]uint64{7, 7, 9})
		return nil
	}
	res, err := Explore(Options{}, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 4 || !res.Exhausted {
		t.Fatalf("res = %+v, want 4 exhausted schedules", res)
	}
	if res.SymmetrySkips == 0 {
		t.Fatal("expected symmetry skips to be counted")
	}
}

func TestSleepSetReduction(t *testing.T) {
	// Three fully independent one-step processes: of the 6 interleavings
	// the sleep-set reduction explores only those where a woken process
	// is forced, and every explored schedule reaches the same final
	// state. With 3 processes the reduction keeps 4 of 6 interleavings
	// (a pure sleep-set search would keep 1; the explorer never skips
	// every option at a node, because the run needs a value mid-flight).
	allIndependent := func(a, b uint64) bool { return true }
	run := func(ctx *Ctx) error {
		remaining := []uint64{1, 2, 3}
		for len(remaining) > 0 {
			i := ctx.ChooseLabeled(remaining)
			remaining = append(remaining[:i], remaining[i+1:]...)
		}
		return nil
	}
	res, err := Explore(Options{Independent: allIndependent}, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 4 {
		t.Fatalf("schedules = %d, want 4", res.Schedules)
	}
	if res.SleepSkips == 0 {
		t.Fatal("expected sleep-set skips to be counted")
	}

	// Without the independence relation the full 6 interleavings run.
	res, err = Explore(Options{}, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 6 {
		t.Fatalf("unreduced schedules = %d, want 6", res.Schedules)
	}
}

// markedConverging is a run whose subtrees converge: after an initial
// splitting choice, two binary choices lead to a state that depends only
// on their sum, reported via Mark; a final binary choice hangs below it.
func markedConverging(ctx *Ctx) error {
	top := ctx.Choose(2)
	sum := ctx.Choose(2) + ctx.Choose(2)
	ctx.Mark(uint64(top)*100 + uint64(sum))
	ctx.Choose(2)
	return nil
}

func TestStateHashPruning(t *testing.T) {
	res, err := Explore(Options{}, markedConverging)
	if err != nil {
		t.Fatal(err)
	}
	// Per top-level subtree: (0,0) and (1,1) explore 2 leaves each,
	// (0,1) explores 2 and exhausts hash sum=1, (1,0) is pruned and
	// completes once: 7 schedules, 1 prune; twice for the two subtrees.
	if res.Schedules != 14 || res.Pruned != 2 {
		t.Fatalf("res = %+v, want 14 schedules, 2 pruned", res)
	}
	if !res.Exhausted {
		t.Fatal("pruning must not clear Exhausted")
	}

	noprune, err := Explore(Options{NoPrune: true}, markedConverging)
	if err != nil {
		t.Fatal(err)
	}
	if noprune.Schedules != 16 || noprune.Pruned != 0 {
		t.Fatalf("NoPrune res = %+v, want 16 schedules, 0 pruned", noprune)
	}
}

func TestBoundedDepthSampling(t *testing.T) {
	run := tree(6, 2, nil)
	res, err := Explore(Options{MaxDepth: 2, Samples: 3}, run)
	if err != nil {
		t.Fatal(err)
	}
	// 4 enumerated prefixes, each frontier node completed 3 times.
	if res.Schedules != 12 || res.Sampled != 12 {
		t.Fatalf("res = %+v, want 12 sampled schedules", res)
	}
	if res.Exhausted {
		t.Fatal("sampling must clear Exhausted")
	}
	if res.Stats.MaxDepth != 6 {
		t.Fatalf("MaxDepth = %d, want 6 (sampled tail counts)", res.Stats.MaxDepth)
	}

	// Same options, same seed: byte-identical, at any worker count.
	for _, w := range []int{1, 4, 8} {
		again, err := Explore(Options{MaxDepth: 2, Samples: 3, Workers: w}, run)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("workers=%d sampling result differs:\n%+v\nvs\n%+v", w, res, again)
		}
	}

	// A different seed draws different completions but the same counts.
	other, err := Explore(Options{MaxDepth: 2, Samples: 3, Seed: 99}, run)
	if err != nil {
		t.Fatal(err)
	}
	if other.Schedules != 12 {
		t.Fatalf("reseeded schedules = %d, want 12", other.Schedules)
	}
}

func TestSampledViolationIsReplayable(t *testing.T) {
	// The violation lives beyond the sampling frontier; the recorded
	// tail must still replay it.
	violate := func(c []int) bool { return c[4] == 1 }
	run := tree(5, 2, violate)
	res, err := Explore(Options{MaxDepth: 2, Samples: 4, NoShrink: true}, run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Skip("seeded sampling missed the violation (seed-dependent); nothing to replay")
	}
	if err := Replay(res.Counterexample.FirstFound, run); err == nil {
		t.Fatal("sampled counterexample does not replay")
	}
}

func TestReplayClamping(t *testing.T) {
	var seen []int
	run := func(ctx *Ctx) error {
		seen = append(seen, ctx.Choose(2), ctx.Choose(3), ctx.Choose(2))
		return nil
	}
	// Out-of-range values clamp, missing choices default to 0, extra
	// choices are ignored.
	if err := Replay([]int{9, -1, 1, 7, 7}, run); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0, 1}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
}

func TestChooseNoOptionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose(0) should panic")
		}
	}()
	_, _ = Explore(Options{}, func(ctx *Ctx) error {
		ctx.Choose(0)
		return nil
	})
}

// eventRecorder captures mc.* events through the Options.Observer hook.
type eventRecorder struct {
	kinds  []string
	fields []map[string]any
}

func (e *eventRecorder) Event(kind string, r, p int, fields map[string]any) {
	e.kinds = append(e.kinds, kind)
	e.fields = append(e.fields, fields)
}

func TestObserverEvents(t *testing.T) {
	rec := &eventRecorder{}
	res, err := Explore(Options{Observer: rec}, tree(2, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	schedules, dones := 0, 0
	var done map[string]any
	for i, k := range rec.kinds {
		switch k {
		case "mc.schedule":
			schedules++
		case "mc.done":
			dones++
			done = rec.fields[i]
		}
	}
	if schedules != res.Schedules {
		t.Fatalf("observed %d mc.schedule events, result says %d", schedules, res.Schedules)
	}
	if dones != 1 || done["schedules"] != res.Schedules {
		t.Fatalf("mc.done = %v (count %d), want one event carrying %d schedules", done, dones, res.Schedules)
	}
}

func TestShrinkLowersChoices(t *testing.T) {
	// Any schedule whose first choice is >= 1 violates; the minimal
	// counterexample is [1], not the [4,...] the search found first...
	// except depth-first order finds [1,0] first anyway, so force the
	// interesting case: violation requires c0 >= 1 AND c1 == 2. DFS
	// finds [1,2]; shrinking cannot lower either coordinate.
	violate := func(c []int) bool { return c[0] >= 1 && c[1] == 2 }
	res, err := Explore(Options{}, tree(2, 5, violate))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if want := []int{1, 2}; !reflect.DeepEqual(res.Counterexample.Choices, want) {
		t.Fatalf("Choices = %v, want %v", res.Counterexample.Choices, want)
	}
}
