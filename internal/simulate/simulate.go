// Package simulate implements the paper's cross-model simulations:
//
//   - TwoRoundsToSharedMemory — §2 item 4: when 2f < n, two rounds of the
//     asynchronous message-passing RRFD (eq. 3) implement one round of the
//     shared-memory RRFD (eqs. 3+4).
//   - BToA — §2 item 3: two rounds of the weaker "B system" implement one
//     round of the eq.-3 system A, showing A is not the weakest RRFD
//     equivalent to f-resilient asynchronous message passing.
//   - OmissionPrefix — Theorem 4.1: the first ⌊f/k⌋ rounds of an atomic-
//     snapshot RRFD execution with per-round budget k form a legal
//     execution of the synchronous send-omission system with budget f.
//   - CrashSync (crashsync.go) — Theorem 4.3: the crash-fault version,
//     simulating each synchronous round with one snapshot round plus n
//     parallel adopt-commit protocols on the shared-memory substrate.
//
// All transformations operate on, or produce, core.Trace values so the
// resulting executions can be validated against the target model's
// predicate — which is exactly what "implements" means in the paper.
package simulate

import (
	"fmt"

	"repro/internal/core"
)

// TwoRoundsToSharedMemory derives the simulated shared-memory execution
// from a trace of the eq.-3 system: simulated round ρ is built from base
// rounds 2ρ−1 and 2ρ. In the second base round each process relays the set
// of processes it heard in the first; the simulated reception set is
//
//	S_sim(i,ρ) = ⋃_{j ∈ S(i,2ρ)} S(j,2ρ−1),
//
// and D_sim is its complement. The paper's argument: every process hears a
// majority in the first round (|D| ≤ f < n/2), so some process is heard by
// a majority there, and any majority of second-round relays must include
// one of its witnesses — that process is known to all, giving eq. (4).
//
// The input trace must have an even number of rounds and every process
// active throughout (the construction is for the failure-free-by-
// indistinguishability regime of the RRFD model).
func TwoRoundsToSharedMemory(t *core.Trace) (*core.Trace, error) {
	if t.Len()%2 != 0 {
		return nil, fmt.Errorf("simulate: need an even number of base rounds, have %d", t.Len())
	}
	n := t.N
	out := core.NewTrace(n)
	for rho := 1; rho <= t.Len()/2; rho++ {
		first := t.Round(2*rho - 1)
		second := t.Round(2 * rho)
		rec := core.RoundRecord{
			R:        rho,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   first.Active.Clone(),
			Crashed:  first.Crashed.Clone(),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if !first.Active.Has(pid) || !second.Active.Has(pid) {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				rec.Active.Remove(pid)
				continue
			}
			heard := core.NewSet(n)
			second.Deliver[i].ForEach(func(j core.PID) {
				heard = heard.Union(first.Deliver[j])
			})
			rec.Deliver[i] = heard
			rec.Suspects[i] = heard.Complement()
		}
		out.Append(rec)
	}
	return out, nil
}

// BToA derives a round of the eq.-3 system A (per-round budget f) from two
// rounds of the B system (where up to t processes may miss up to t others,
// f < t, 2t < n). Process i adopts, as its simulated round view, the
// first-round view of any of its second-round sources whose first-round
// suspect set fits the f budget:
//
//	D_sim(i,ρ) = D(s,2ρ−1) for some s ∈ S(i,2ρ) with |D(s,2ρ−1)| ≤ f.
//
// Such a source always exists: i hears at least n−t processes in the second
// round, at most t of which exceeded the f budget in the first, and
// n−t > t because 2t < n. (The full-information protocol realizes the
// adoption by relaying first-round views.)
func BToA(t *core.Trace, f int) (*core.Trace, error) {
	if t.Len()%2 != 0 {
		return nil, fmt.Errorf("simulate: need an even number of base rounds, have %d", t.Len())
	}
	n := t.N
	out := core.NewTrace(n)
	for rho := 1; rho <= t.Len()/2; rho++ {
		first := t.Round(2*rho - 1)
		second := t.Round(2 * rho)
		rec := core.RoundRecord{
			R:        rho,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   first.Active.Clone(),
			Crashed:  first.Crashed.Clone(),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if !first.Active.Has(pid) || !second.Active.Has(pid) {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				rec.Active.Remove(pid)
				continue
			}
			var chosen core.Set
			found := false
			second.Deliver[i].ForEach(func(s core.PID) {
				d := first.Suspects[s]
				if d.Count() > f {
					return
				}
				if !found || d.Count() < chosen.Count() {
					chosen, found = d, true
				}
			})
			if !found {
				return nil, fmt.Errorf("simulate: process %d has no f-budget source at simulated round %d", i, rho)
			}
			rec.Suspects[i] = chosen.Clone()
			rec.Deliver[i] = chosen.Complement()
		}
		out.Append(rec)
	}
	return out, nil
}

// OmissionPrefix is Theorem 4.1 at the trace level: given an execution of
// the atomic-snapshot RRFD whose per-round budget is k, its first ⌊f/k⌋
// rounds are (verbatim — the mapping is the identity) a legal execution of
// the synchronous send-omission system with total budget f. It returns the
// prefix, whose cumulative suspicion is at most k·⌊f/k⌋ ≤ f.
func OmissionPrefix(t *core.Trace, f, k int) (*core.Trace, error) {
	if k <= 0 || f < k {
		return nil, fmt.Errorf("simulate: need f ≥ k > 0, got f=%d k=%d", f, k)
	}
	rounds := f / k
	if t.Len() < rounds {
		return nil, fmt.Errorf("simulate: trace has %d rounds, need at least ⌊f/k⌋ = %d", t.Len(), rounds)
	}
	return t.Prefix(rounds), nil
}
