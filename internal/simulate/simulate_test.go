package simulate

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/predicate"
)

func TestTwoRoundsToSharedMemory(t *testing.T) {
	// §2 item 4: any eq.-3 execution with 2f < n, taken two rounds at a
	// time, induces a shared-memory execution (eqs. 3+4).
	n, f := 7, 3 // 2f < n
	for seed := int64(0); seed < 40; seed++ {
		base, err := core.CollectTrace(n, 8, adversary.AsyncBudget(n, f, false, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := predicate.PerRoundBudget(f).Check(base); err != nil {
			t.Fatalf("base trace broken: %v", err)
		}
		sim, err := TwoRoundsToSharedMemory(base)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Len() != 4 {
			t.Fatalf("simulated %d rounds, want 4", sim.Len())
		}
		if err := predicate.SharedMemory(f).Check(sim); err != nil {
			t.Fatalf("seed %d: %v\nbase:\n%s\nsim:\n%s", seed, err, base, sim)
		}
	}
}

func TestTwoRoundsToSharedMemoryOnRealNetwork(t *testing.T) {
	// The same construction driven by the operational message-passing
	// substrate rather than an abstract adversary.
	n, f := 5, 2
	for seed := int64(0); seed < 15; seed++ {
		out, err := msgnet.RunRounds(n, f, 6, msgnet.Config{Chooser: msgnet.Seeded(seed)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := TwoRoundsToSharedMemory(out.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if err := predicate.SharedMemory(f).Check(sim); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTwoRoundsRequiresEvenLength(t *testing.T) {
	base, err := core.CollectTrace(4, 3, adversary.Benign(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TwoRoundsToSharedMemory(base); err == nil {
		t.Fatal("odd-length trace must be rejected")
	}
}

func TestBToA(t *testing.T) {
	// §2 item 3: two rounds of the B system implement one round of the
	// f-budget system A.
	n, f, tt := 9, 2, 4 // f < t, 2t < n
	for seed := int64(0); seed < 40; seed++ {
		base, err := core.CollectTrace(n, 8, adversary.BSystemOracle(n, f, tt, seed))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := BToA(base, f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := predicate.PerRoundBudget(f).Check(sim); err != nil {
			t.Fatalf("seed %d: simulated trace breaks eq3: %v", seed, err)
		}
	}
}

func TestBToAIsStrict(t *testing.T) {
	// A is a STRICT submodel of B: B executions themselves may break the
	// f budget (cf. adversary tests), yet after the simulation they fit.
	n, f, tt := 9, 2, 4
	broken := 0
	for seed := int64(0); seed < 40; seed++ {
		base, err := core.CollectTrace(n, 8, adversary.BSystemOracle(n, f, tt, seed))
		if err != nil {
			t.Fatal(err)
		}
		if predicate.PerRoundBudget(f).Check(base) != nil {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("B adversary never exceeded the f budget — separation untested")
	}
}

func TestOmissionPrefixTheorem41(t *testing.T) {
	// Theorem 4.1: the first ⌊f/k⌋ rounds of an atomic-snapshot RRFD
	// execution with budget k satisfy the send-omission predicate with
	// budget f.
	cases := []struct{ n, f, k int }{
		{8, 4, 2},
		{8, 5, 2}, // ⌊5/2⌋ = 2 rounds
		{6, 3, 1},
		{10, 6, 3},
	}
	for _, tc := range cases {
		rounds := tc.f/tc.k + 2 // collect more than needed
		for seed := int64(0); seed < 20; seed++ {
			base, err := core.CollectTrace(tc.n, rounds, adversary.SnapshotChain(tc.n, tc.k, seed))
			if err != nil {
				t.Fatal(err)
			}
			sim, err := OmissionPrefix(base, tc.f, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if sim.Len() != tc.f/tc.k {
				t.Fatalf("prefix has %d rounds, want %d", sim.Len(), tc.f/tc.k)
			}
			if err := predicate.SendOmission(tc.f).Check(sim); err != nil {
				t.Fatalf("%+v seed %d: %v", tc, seed, err)
			}
		}
	}
}

func TestOmissionPrefixValidation(t *testing.T) {
	base, err := core.CollectTrace(4, 2, adversary.Benign(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OmissionPrefix(base, 1, 2); err == nil {
		t.Fatal("f < k must be rejected")
	}
	if _, err := OmissionPrefix(base, 0, 0); err == nil {
		t.Fatal("k = 0 must be rejected")
	}
	if _, err := OmissionPrefix(base, 9, 3); err == nil {
		t.Fatal("short trace must be rejected")
	}
}
