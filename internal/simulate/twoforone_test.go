package simulate

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/predicate"
)

// probe is a target-system algorithm that checks every delivered message is
// exactly the sender's round emission (me*1000 + round), then decides after
// the configured number of simulated rounds.
type probe struct {
	me     core.PID
	rounds int
	bad    []string
	seen   int
}

func probeFactory(rounds int, sink *[]*probe) core.Factory {
	return func(me core.PID, n int, input core.Value) core.Algorithm {
		p := &probe{me: me, rounds: rounds}
		*sink = append(*sink, p)
		return p
	}
}

func (p *probe) Emit(r int) core.Message { return int(p.me)*1000 + r }

func (p *probe) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	p.seen++
	for from, m := range msgs {
		if want := int(from)*1000 + r; m != want {
			p.bad = append(p.bad, fmt.Sprintf("round %d from %d: %v ≠ %d", r, from, m, want))
		}
	}
	if suspects.Count()+len(msgs) < suspects.Universe() {
		p.bad = append(p.bad, fmt.Sprintf("round %d: S ∪ D does not cover", r))
	}
	if r >= p.rounds {
		return fmt.Sprintf("done@%d", r), true
	}
	return nil, false
}

func TestRunTwoForOneUnionImplementsSharedMemory(t *testing.T) {
	// §2 item 4 executable: the union-relay construction runs a
	// shared-memory-system algorithm on an eq.(3) base with faithful
	// message contents, and the simulated trace satisfies eqs. (3)+(4).
	n, f := 7, 3 // 2f < n
	for seed := int64(0); seed < 25; seed++ {
		var probes []*probe
		res, err := RunTwoForOne(n, make([]core.Value, n), probeFactory(3, &probes),
			adversary.AsyncBudget(n, f, false, seed), ModeUnion, f, 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := predicate.SharedMemory(f).Check(res.Result.Trace); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.BaseRounds != 6 {
			t.Fatalf("seed %d: base rounds = %d, want 6 (2 per simulated)", seed, res.BaseRounds)
		}
		for _, p := range probes {
			if len(p.bad) > 0 {
				t.Fatalf("seed %d: message faithfulness broken: %v", seed, p.bad)
			}
			if p.seen != 3 {
				t.Fatalf("seed %d: p%d saw %d simulated rounds", seed, p.me, p.seen)
			}
		}
		for p, r := range res.Result.DecidedAt {
			if r != 3 {
				t.Fatalf("seed %d: process %d decided at simulated round %d", seed, p, r)
			}
		}
	}
}

func TestRunTwoForOneAdoptImplementsA(t *testing.T) {
	// §2 item 3 executable: the adopt-a-compliant-view construction runs
	// an eq.(3)-system algorithm on a B-system base.
	n, f, tt := 9, 2, 4 // f < t, 2t < n
	for seed := int64(0); seed < 25; seed++ {
		var probes []*probe
		res, err := RunTwoForOne(n, make([]core.Value, n), probeFactory(3, &probes),
			adversary.BSystemOracle(n, f, tt, seed), ModeAdopt, f, 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := predicate.PerRoundBudget(f).Check(res.Result.Trace); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range probes {
			if len(p.bad) > 0 {
				t.Fatalf("seed %d: %v", seed, p.bad)
			}
		}
	}
}

func TestRunTwoForOneRejectsBudgetViolation(t *testing.T) {
	// ModeAdopt on a base where NO source fits the budget must surface an
	// error: t ≥ n−f sources all miss more than f.
	n := 4
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		// Everyone misses 2 (> f = 1) others.
		sus := make([]core.Set, n)
		for i := range sus {
			sus[i] = core.SetOf(n, core.PID((i+1)%n), core.PID((i+2)%n))
		}
		return core.RoundPlan{Suspects: sus}
	})
	var probes []*probe
	_, err := RunTwoForOne(n, make([]core.Value, n), probeFactory(2, &probes), oracle, ModeAdopt, 1, 5)
	if err == nil {
		t.Fatal("expected a no-compliant-source error")
	}
}
