package simulate

import (
	"errors"
	"fmt"

	"repro/internal/adoptcommit"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/swmr"
)

// CrashSyncResult reports a Theorem 4.3 simulation run.
type CrashSyncResult struct {
	// Result carries the simulated algorithm's outputs, decision rounds
	// and the induced synchronous trace; Result.Crashed is the set of
	// processes that appear crashed in the SIMULATED execution (really
	// crashed, or committed faulty by everyone including themselves).
	Result *core.Result

	// Adopted maps processes whose simulation ended "I crashed" but which
	// adopted a live process's decision afterwards (the Corollary 4.4
	// final step) to that adopted value. These do not appear in
	// Result.Outputs.
	Adopted map[core.PID]core.Value

	// RealCrashes is the set of processes crashed by the scheduler.
	RealCrashes core.Set

	// Steps is the total number of register operations scheduled —
	// the asynchronous cost of the simulation.
	Steps int
}

// aliveProposal is the adopt-commit input "p_j-alive" carrying j's value.
type aliveProposal struct {
	value core.Value
}

// faultyProposal is the adopt-commit input "p_j-faulty".
type faultyProposal struct{}

// decision is written to the shared decision board.
type decision struct {
	value core.Value
}

// errSelfCrashed signals that the simulation committed the running process
// itself faulty ("I crashed").
var errSelfCrashed = errors.New("simulate: simulated self-crash")

// CrashSync is Theorem 4.3: it runs a synchronous crash-model round
// algorithm for rounds = ⌊f/k⌋ simulated rounds on the asynchronous
// shared-memory substrate with at most k real crash failures. Each
// simulated round costs one snapshot round plus n parallel adopt-commit
// protocols (the paper's three asynchronous rounds).
//
// Per simulated round r, process p_i:
//
//  1. writes its simulated round-r message and scans until it misses at
//     most k processes; the missed set M_i joins its proposed-faulty set F_i
//     (snapshot containment keeps |⋃M_i| ≤ k, so at most k new processes
//     join ⋃F_i per round — at most f over ⌊f/k⌋ rounds);
//  2. runs an adopt-commit per process j, proposing "p_j-faulty" if j ∈ F_i
//     and "p_j-alive"+value otherwise;
//  3. takes D(i,r) = { j : p_i COMMITTED p_j-faulty }; adopting p_j-faulty
//     only adds j to F_i — j's round-r value is still delivered, recovered
//     from an alive proposal (one always exists in that case, which the
//     implementation checks);
//  4. if p_i committed itself faulty it outputs "I crashed": it keeps
//     taking asynchronous steps (so survivors never block) but its
//     simulated execution ends, and it later adopts a decision from the
//     shared board.
//
// The induced trace satisfies the synchronous crash predicate (eqs. 1+2
// with budget f) — a process appears to fail at round r only when someone
// commits it faulty, in which case everyone commits it faulty from round
// r+1 on.
func CrashSync(n, f, k, rounds int, cfg swmr.Config, factory core.Factory, inputs []core.Value) (*CrashSyncResult, error) {
	if n <= 0 || len(inputs) != n {
		return nil, fmt.Errorf("simulate: %d inputs for %d processes", len(inputs), n)
	}
	if k <= 0 || f < k {
		return nil, fmt.Errorf("simulate: need f ≥ k > 0, got f=%d k=%d", f, k)
	}
	if rounds <= 0 {
		rounds = f / k
	}
	if rounds > f/k {
		return nil, fmt.Errorf("simulate: %d rounds exceed the Theorem 4.3 budget ⌊f/k⌋ = %d", rounds, f/k)
	}
	if len(cfg.Crash) > k {
		return nil, fmt.Errorf("simulate: %d real crashes exceed k=%d", len(cfg.Crash), k)
	}

	type procRecord struct {
		dsets     []core.Set // D(i,r) for each completed simulated round
		out       core.Value
		decidedAt int
		selfCrash int // simulated round of "I crashed", 0 if none
		adopted   core.Value
		hasAdopt  bool
	}
	recs := make([]*procRecord, n)

	body := func(p *swmr.Proc) (core.Value, error) {
		rec := &procRecord{}
		recs[p.Me] = rec
		alg := factory(p.Me, n, inputs[p.Me])
		obj := snapshot.New(p, "sim")
		faulty := core.NewSet(n)
		var history []core.Value
		decided := false
		zombie := false

		for r := 1; r <= rounds; r++ {
			history = append(history, alg.Emit(r))
			if err := obj.Update(simCell{round: r, values: history}); err != nil {
				return nil, err
			}
			// Scan until at most k round-r values are missing.
			var values []core.Value
			var missed core.Set
			for {
				view, err := obj.Scan()
				if err != nil {
					return nil, err
				}
				present := core.NewSet(n)
				vals := make([]core.Value, n)
				for j, c := range view {
					cell, ok := c.Value.(simCell)
					if !ok || cell.round < r {
						continue
					}
					present.Add(core.PID(j))
					vals[j] = cell.values[r-1]
				}
				if n-present.Count() <= k {
					values, missed = vals, present.Complement()
					break
				}
			}
			faulty = faulty.Union(missed)

			// One adopt-commit per process; the instance name binds the
			// simulated round so instances never collide.
			committed := core.NewSet(n)
			msgs := make(map[core.PID]core.Message, n)
			for j := 0; j < n; j++ {
				pj := core.PID(j)
				name := fmt.Sprintf("sim:r%d:j%d", r, j)
				var proposal core.Value
				if faulty.Has(pj) {
					proposal = faultyProposal{}
				} else {
					proposal = aliveProposal{value: values[j]}
				}
				out, err := adoptcommit.Run(p, name, proposal)
				if err != nil {
					return nil, err
				}
				switch v := out.Value.(type) {
				case aliveProposal:
					msgs[pj] = v.value
				case faultyProposal:
					faulty.Add(pj)
					if out.Grade == adoptcommit.Commit {
						committed.Add(pj)
						continue
					}
					// Adopted faulty: j's value is still delivered this
					// round; an alive proposal must exist — recover it.
					val, err := recoverAlive(p, name)
					if err != nil {
						return nil, err
					}
					msgs[pj] = val
				default:
					return nil, fmt.Errorf("simulate: foreign proposal %T", out.Value)
				}
			}

			if zombie {
				continue // keep the substrate moving, simulation is over
			}
			if committed.Has(p.Me) {
				rec.selfCrash = r
				zombie = true
				continue
			}
			rec.dsets = append(rec.dsets, committed)
			if !decided {
				out, dec := alg.Deliver(r, msgs, committed)
				if dec {
					decided = true
					rec.out, rec.decidedAt = out, r
					if err := p.Write("decision", decision{value: out}); err != nil {
						return nil, err
					}
				}
			}
		}

		if zombie || !decided {
			// "I crashed" (or the algorithm needs more rounds than the
			// budget): adopt any posted decision, as in Corollary 4.4.
			for {
				board, err := p.Collect("decision")
				if err != nil {
					return nil, err
				}
				found := false
				for _, b := range board {
					if d, ok := b.(decision); ok {
						rec.adopted, rec.hasAdopt = d.value, true
						found = true
						break
					}
				}
				if found || !zombie {
					break
				}
				// A zombie waits for a live decision; a merely undecided
				// process gives up immediately (its algorithm simply ran
				// out of rounds).
			}
		}
		return nil, nil
	}

	out, err := swmr.Run(n, cfg, body)
	if err != nil {
		return nil, err
	}
	for pid, procErr := range out.Errs {
		if !errors.Is(procErr, swmr.ErrCrashed) {
			return nil, fmt.Errorf("simulate: process %d: %w", pid, procErr)
		}
	}

	res := &CrashSyncResult{
		Result: &core.Result{
			Outputs:   make(map[core.PID]core.Value),
			DecidedAt: make(map[core.PID]int),
			Rounds:    rounds,
			Crashed:   core.NewSet(n),
			Trace:     core.NewTrace(n),
		},
		Adopted:     make(map[core.PID]core.Value),
		RealCrashes: out.Crashed,
		Steps:       out.Steps,
	}
	for i := 0; i < n; i++ {
		if recs[i] == nil {
			recs[i] = &procRecord{}
		}
		pid := core.PID(i)
		if recs[i].decidedAt > 0 {
			res.Result.Outputs[pid] = recs[i].out
			res.Result.DecidedAt[pid] = recs[i].decidedAt
		}
		if recs[i].hasAdopt {
			res.Adopted[pid] = recs[i].adopted
		}
		if out.Crashed.Has(pid) || recs[i].selfCrash > 0 {
			res.Result.Crashed.Add(pid)
		}
	}
	for r := 1; r <= rounds; r++ {
		rec := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if len(recs[i].dsets) >= r {
				rec.Active.Add(pid)
				rec.Suspects[i] = recs[i].dsets[r-1]
				rec.Deliver[i] = recs[i].dsets[r-1].Complement()
			} else {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				rec.Crashed.Add(pid)
			}
		}
		if rec.Active.Empty() {
			break
		}
		res.Result.Trace.Append(rec)
	}
	return res, nil
}

// simCell is the snapshot payload: the owner's simulated messages so far.
type simCell struct {
	round  int
	values []core.Value
}

// recoverAlive re-collects the proposals of an adopt-commit instance and
// returns the value of any alive proposal. When a process adopts (without
// committing) a faulty verdict, some process proposed alive before the
// adopting process finished — so this always succeeds; failure would be a
// counterexample to the Theorem 4.3 argument and is surfaced loudly.
func recoverAlive(p *swmr.Proc, name string) (core.Value, error) {
	props, err := adoptcommit.CollectProposals(p, name)
	if err != nil {
		return nil, err
	}
	for _, prop := range props {
		if a, ok := prop.(aliveProposal); ok {
			return a.value, nil
		}
	}
	return nil, fmt.Errorf("simulate: adopted faulty verdict in %s with no recoverable alive proposal", name)
}
