package simulate

import (
	"fmt"

	"repro/internal/core"
)

// TwoForOneMode selects the view-adoption rule of a two-base-rounds-per-
// simulated-round construction.
type TwoForOneMode int

const (
	// ModeUnion is §2 item 4's emulation of one shared-memory round by
	// two message-passing rounds: the simulated reception set is the
	// union of the first-round views relayed by the second-round sources.
	ModeUnion TwoForOneMode = iota + 1

	// ModeAdopt is §2 item 3's B→A construction: adopt wholesale the
	// first-round view of any second-round source whose view fits the
	// target budget f.
	ModeAdopt
)

// relay is the even-round message: the sender's odd-round receptions.
type relay struct {
	views map[core.PID]core.Message
}

// twoForOne wraps a target-system algorithm so it can run on a base oracle
// at half speed: odd engine rounds carry the algorithm's messages, even
// rounds relay first-round views, and the algorithm's Deliver sees the
// simulated round.
type twoForOne struct {
	me     core.PID
	n      int
	inner  core.Algorithm
	mode   TwoForOneMode
	budget int // target budget f for ModeAdopt

	pending core.Message // inner's message for the current simulated round
	got     map[core.PID]core.Message
	dsets   []core.Set // simulated D(i,ρ), for trace assembly
	err     error
}

func (a *twoForOne) Emit(r int) core.Message {
	if r%2 == 1 {
		a.pending = a.inner.Emit((r + 1) / 2)
		return a.pending
	}
	return relay{views: a.got}
}

func (a *twoForOne) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	if r%2 == 1 {
		// msgs is engine-owned scratch; a.got is relayed next round, so
		// it needs an owned copy.
		a.got = make(map[core.PID]core.Message, len(msgs))
		for p, m := range msgs {
			a.got[p] = m
		}
		return nil, false
	}
	rho := r / 2
	simMsgs, simD, err := a.assemble(msgs)
	if err != nil {
		if a.err == nil {
			a.err = fmt.Errorf("simulate: process %d at simulated round %d: %w", a.me, rho, err)
		}
		return nil, false
	}
	a.dsets = append(a.dsets, simD)
	return a.inner.Deliver(rho, simMsgs, simD)
}

func (a *twoForOne) assemble(relays map[core.PID]core.Message) (map[core.PID]core.Message, core.Set, error) {
	switch a.mode {
	case ModeUnion:
		sim := make(map[core.PID]core.Message)
		for _, m := range relays {
			rel, ok := m.(relay)
			if !ok {
				return nil, core.Set{}, fmt.Errorf("foreign relay %T", m)
			}
			for j, v := range rel.views {
				sim[j] = v
			}
		}
		d := core.FullSet(a.n)
		for j := range sim {
			d.Remove(j)
		}
		if d.Count() == a.n {
			return nil, core.Set{}, fmt.Errorf("empty simulated view")
		}
		return sim, d, nil
	case ModeAdopt:
		var best map[core.PID]core.Message
		for _, m := range relays {
			rel, ok := m.(relay)
			if !ok {
				return nil, core.Set{}, fmt.Errorf("foreign relay %T", m)
			}
			if a.n-len(rel.views) > a.budget {
				continue // source exceeded the target budget
			}
			if best == nil || len(rel.views) > len(best) {
				best = rel.views
			}
		}
		if best == nil {
			return nil, core.Set{}, fmt.Errorf("no source within budget f=%d", a.budget)
		}
		sim := make(map[core.PID]core.Message, len(best))
		for j, v := range best {
			sim[j] = v
		}
		d := core.FullSet(a.n)
		for j := range sim {
			d.Remove(j)
		}
		return sim, d, nil
	default:
		return nil, core.Set{}, fmt.Errorf("unknown mode %d", a.mode)
	}
}

// TwoForOneResult reports an executable two-for-one simulation.
type TwoForOneResult struct {
	// Result holds the algorithm's outputs with SIMULATED round numbers
	// and the simulated trace.
	Result *core.Result

	// BaseRounds is the number of base-system rounds consumed.
	BaseRounds int
}

// RunTwoForOne executes an algorithm designed for the simulated system on a
// base oracle, two base rounds per simulated round. mode picks the §2
// construction; budget is the target system's f (used by ModeAdopt). The
// simulation runs until every live process decides or maxSim simulated
// rounds elapse.
func RunTwoForOne(n int, inputs []core.Value, factory core.Factory, base core.Oracle,
	mode TwoForOneMode, budget, maxSim int) (*TwoForOneResult, error) {
	wrappers := make([]*twoForOne, n)
	wrapped := func(me core.PID, nn int, input core.Value) core.Algorithm {
		w := &twoForOne{
			me: me, n: nn, mode: mode, budget: budget,
			inner: factory(me, nn, input),
		}
		wrappers[me] = w
		return w
	}
	res, err := core.Run(n, inputs, wrapped, base, core.WithMaxRounds(2*maxSim))
	for _, w := range wrappers {
		// A wrapper error (e.g. no budget-compliant source) is the root
		// cause; report it in preference to the engine's round-limit
		// symptom.
		if w != nil && w.err != nil {
			return nil, w.err
		}
	}
	if err != nil {
		return nil, err
	}

	sim := &core.Result{
		Outputs:   res.Outputs,
		DecidedAt: make(map[core.PID]int, len(res.DecidedAt)),
		Rounds:    res.Rounds / 2,
		Crashed:   res.Crashed,
		Trace:     core.NewTrace(n),
	}
	for p, r := range res.DecidedAt {
		sim.DecidedAt[p] = r / 2
	}
	for rho := 1; rho <= res.Rounds/2; rho++ {
		rec := core.RoundRecord{
			R:        rho,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			if wrappers[i] != nil && len(wrappers[i].dsets) >= rho {
				rec.Active.Add(core.PID(i))
				rec.Suspects[i] = wrappers[i].dsets[rho-1]
				rec.Deliver[i] = wrappers[i].dsets[rho-1].Complement()
			} else {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				rec.Crashed.Add(core.PID(i))
			}
		}
		if rec.Active.Empty() {
			break
		}
		sim.Trace.Append(rec)
	}
	return &TwoForOneResult{Result: sim, BaseRounds: res.Rounds}, nil
}
