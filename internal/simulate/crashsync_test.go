package simulate

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/swmr"
)

func identityInputs(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

func TestCrashSyncTraceSatisfiesSyncCrash(t *testing.T) {
	// Theorem 4.3's soundness: the simulated execution is a legal
	// execution of the synchronous crash model with budget f.
	n, f, k := 6, 4, 2 // 2 simulated rounds
	rounds := f / k
	for seed := int64(0); seed < 15; seed++ {
		res, err := CrashSync(n, f, k, rounds, swmr.Config{Chooser: swmr.Seeded(seed)},
			agreement.FloodMin(rounds), identityInputs(n))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := predicate.SyncCrash(f).Check(res.Result.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, res.Result.Trace)
		}
	}
}

func TestCrashSyncWithRealCrashes(t *testing.T) {
	n, f, k := 6, 4, 2
	rounds := f / k
	for seed := int64(0); seed < 10; seed++ {
		res, err := CrashSync(n, f, k, rounds, swmr.Config{
			Chooser: swmr.Seeded(seed),
			Crash:   map[core.PID]int{5: 20, 4: 45},
		}, agreement.FloodMin(rounds), identityInputs(n))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := predicate.SyncCrash(f).Check(res.Result.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, res.Result.Trace)
		}
		if !res.RealCrashes.Equal(core.SetOf(n, 4, 5)) {
			t.Fatalf("seed %d: real crashes = %s", seed, res.RealCrashes)
		}
	}
}

func TestCrashSyncFloodMinIsKPlusOneCorrect(t *testing.T) {
	// FloodMin over R rounds with ≤ k·R faults guarantees at most k+1
	// distinct decisions; the simulation must preserve that.
	n, f, k := 6, 4, 2
	rounds := f / k
	for seed := int64(0); seed < 20; seed++ {
		res, err := CrashSync(n, f, k, rounds, swmr.Config{Chooser: swmr.Seeded(seed)},
			agreement.FloodMin(rounds), identityInputs(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := agreement.Validate(res.Result, identityInputs(n), k+1, rounds); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Adopted values (Corollary 4.4's last step) must be actual
		// decisions of live processes.
		decisions := make(map[core.Value]bool)
		for _, v := range res.Result.Outputs {
			decisions[v] = true
		}
		for pid, v := range res.Adopted {
			if !decisions[v] {
				t.Fatalf("seed %d: process %d adopted %v which nobody decided", seed, pid, v)
			}
		}
	}
}

func TestCrashSyncLowerBoundWitness(t *testing.T) {
	// Corollary 4.4's content: NO ⌊f/k⌋-round k-set algorithm can be
	// correct, because the simulation would yield an asynchronous
	// k-resilient k-set algorithm, contradicting Borowsky–Gafni /
	// Herlihy–Shavit / Saks–Zaharoglou. Concrete witness: n=4, f=k=2
	// (one simulated round), FloodMin truncated to 1 round, under the
	// staircase schedule that runs {p2,p3} to completion, then p1, then
	// p0. p2,p3 commit {0,1} faulty and decide 2; p1 misses only p0 and
	// decides 1; p0 sees everyone and decides 0 — three distinct values,
	// breaking 2-set agreement without a single real crash.
	n, f, k := 4, 2, 2
	rounds := f / k // 1
	chooser := swmr.PriorityGroups(
		[]core.PID{2, 3},
		[]core.PID{1},
		[]core.PID{0},
	)
	res, err := CrashSync(n, f, k, rounds, swmr.Config{Chooser: chooser},
		agreement.FloodMin(rounds), identityInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	// The simulation itself must still be sound...
	if err := predicate.SyncCrash(f).Check(res.Result.Trace); err != nil {
		t.Fatalf("witness trace is not a legal sync-crash execution: %v\n%s", err, res.Result.Trace)
	}
	if !res.RealCrashes.Empty() {
		t.Fatalf("witness needs no real crashes, got %s", res.RealCrashes)
	}
	// ...but the truncated algorithm must break k-agreement.
	if got := res.Result.DistinctOutputs(); got != k+1 {
		t.Fatalf("distinct outputs = %d (%v), want k+1 = %d", got, res.Result.Outputs, k+1)
	}
}

func TestCrashSyncCostIsThreeAsyncRoundsPerSyncRound(t *testing.T) {
	// The paper's accounting: one snapshot round plus one adopt-commit
	// (two async rounds) per simulated round. We check the operation
	// count grows linearly in rounds with the n² adopt-commit factor.
	n, k := 5, 2
	r1, err := CrashSync(n, 2, k, 1, swmr.Config{Chooser: swmr.Seeded(1)},
		agreement.FloodMin(1), identityInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrashSync(n, 4, k, 2, swmr.Config{Chooser: swmr.Seeded(1)},
		agreement.FloodMin(2), identityInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps <= r1.Steps {
		t.Fatalf("2-round simulation (%d steps) not costlier than 1-round (%d)", r2.Steps, r1.Steps)
	}
	// Adopt-commit alone costs n·(2n+2) ops per simulated round.
	if perRound := r2.Steps - r1.Steps; perRound < n*(2*n+2) {
		t.Fatalf("per-round cost %d below the adopt-commit floor %d", perRound, n*(2*n+2))
	}
}

func TestCrashSyncValidation(t *testing.T) {
	inputs := identityInputs(4)
	if _, err := CrashSync(4, 1, 2, 0, swmr.Config{}, agreement.FloodMin(1), inputs); err == nil {
		t.Fatal("f < k must be rejected")
	}
	if _, err := CrashSync(4, 4, 2, 5, swmr.Config{}, agreement.FloodMin(5), inputs); err == nil {
		t.Fatal("rounds beyond ⌊f/k⌋ must be rejected")
	}
	if _, err := CrashSync(4, 4, 2, 1, swmr.Config{
		Crash: map[core.PID]int{0: 0, 1: 0, 2: 0},
	}, agreement.FloodMin(1), inputs); err == nil {
		t.Fatal("more than k real crashes must be rejected")
	}
	if _, err := CrashSync(4, 2, 1, 1, swmr.Config{}, agreement.FloodMin(1), identityInputs(3)); err == nil {
		t.Fatal("input length mismatch must be rejected")
	}
}
