// Package predicate defines the RRFD model predicates of Gafni (PODC 1998)
// as first-class, checkable objects. A predicate constrains the family of
// suspect sets D(i,r) of an execution trace; each concrete system in the
// paper's §2–§5 is exactly one of these predicates (or a conjunction).
//
// Predicates are checked post-hoc over a recorded core.Trace. A nil error
// means the trace satisfies the predicate; otherwise the returned *Violation
// pinpoints the first offending round/process.
package predicate

import (
	"fmt"

	"repro/internal/core"
)

// Violation reports where and how a trace broke a predicate.
type Violation struct {
	Predicate string
	Round     int // 0 when the violation is a whole-trace property
	Proc      core.PID
	Detail    string
}

// Error implements error.
func (v *Violation) Error() string {
	where := "whole trace"
	if v.Round > 0 {
		where = fmt.Sprintf("round %d", v.Round)
	}
	if v.Proc >= 0 {
		where += fmt.Sprintf(", process %d", v.Proc)
	}
	return fmt.Sprintf("predicate %q violated (%s): %s", v.Predicate, where, v.Detail)
}

// P is a checkable RRFD predicate.
type P struct {
	// Name identifies the predicate in reports.
	Name string

	// Check returns nil iff the trace satisfies the predicate.
	Check func(t *core.Trace) error
}

// And returns the conjunction of predicates under the given name.
func And(name string, preds ...P) P {
	return P{
		Name: name,
		Check: func(t *core.Trace) error {
			for _, p := range preds {
				if err := p.Check(t); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
			}
			return nil
		},
	}
}

// Or returns the disjunction of predicates under the given name: the trace
// satisfies it when at least one disjunct holds. On failure the first
// disjunct's violation is reported (wrapped), since every disjunct failed.
func Or(name string, preds ...P) P {
	return P{
		Name: name,
		Check: func(t *core.Trace) error {
			var first error
			for _, p := range preds {
				err := p.Check(t)
				if err == nil {
					return nil
				}
				if first == nil {
					first = err
				}
			}
			if first == nil {
				return nil
			}
			return fmt.Errorf("%s: every disjunct fails, first: %w", name, first)
		},
	}
}

// Not returns the negation of a predicate under the given name: the trace
// satisfies it iff p is violated. The reported violation is whole-trace
// (there is no single offending round when a property holds everywhere).
func Not(name string, p P) P {
	return P{
		Name: name,
		Check: func(t *core.Trace) error {
			if err := p.Check(t); err != nil {
				return nil
			}
			return &Violation{Predicate: name, Proc: -1,
				Detail: fmt.Sprintf("negated predicate %q holds on the trace", p.Name)}
		},
	}
}

// SelfTrusting is the "p_i ∉ D(i,r)" clause of eq. (1): a process never
// suspects itself.
func SelfTrusting() P {
	const name = "self-trusting"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			var bad core.PID = -1
			rec.Active.ForEach(func(p core.PID) {
				if bad < 0 && rec.Suspects[p].Has(p) {
					bad = p
				}
			})
			if bad >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: bad,
					Detail: "process suspects itself"}
			}
		}
		return nil
	}}
}

// TotalSuspectBudget is the |⋃_{r>0} ⋃_i D(i,r)| ≤ f clause of eq. (1): over
// the whole execution at most f distinct processes are ever suspected.
func TotalSuspectBudget(f int) P {
	name := fmt.Sprintf("total-suspect-budget(f=%d)", f)
	return P{Name: name, Check: func(t *core.Trace) error {
		u := t.CumulativeSuspects(t.Len())
		if c := u.Count(); c > f {
			return &Violation{Predicate: name, Proc: -1,
				Detail: fmt.Sprintf("%d distinct processes suspected (%s), budget %d", c, u, f)}
		}
		return nil
	}}
}

// SendOmission is eq. (1): the RRFD counterpart of a synchronous
// message-passing system with at most f send-omission faults.
func SendOmission(f int) P {
	return And(fmt.Sprintf("sync-send-omission(f=%d)", f), SelfTrusting(), TotalSuspectBudget(f))
}

// SuspicionPropagates is eq. (2): whatever anyone suspected at round r is
// suspected by everyone at round r+1 — ⋃_i D(i,r) ⊆ D(k,r+1) for all k.
// Conjoined with eq. (1) it yields the synchronous crash-fault model; the
// paper notes this makes crash an explicit submodel of send-omission.
func SuspicionPropagates() P {
	const name = "suspicion-propagates"
	return P{Name: name, Check: func(t *core.Trace) error {
		for r := 1; r < t.Len(); r++ {
			u := t.SuspectUnion(r)
			next := t.Round(r + 1)
			var bad core.PID = -1
			next.Active.ForEach(func(k core.PID) {
				if bad < 0 && !u.IsSubset(next.Suspects[k]) {
					bad = k
				}
			})
			if bad >= 0 {
				return &Violation{Predicate: name, Round: r + 1, Proc: bad,
					Detail: fmt.Sprintf("D(%d,%d)=%s does not contain round-%d union %s",
						bad, r+1, next.Suspects[bad], r, u)}
			}
		}
		return nil
	}}
}

// SyncCrash is eqs. (1)+(2): the RRFD counterpart of a synchronous
// message-passing system with at most f crash faults.
func SyncCrash(f int) P {
	return And(fmt.Sprintf("sync-crash(f=%d)", f), SendOmission(f), SuspicionPropagates())
}

// PerRoundBudget is eq. (3): |D(i,r)| ≤ f for every process and round — the
// RRFD counterpart of an asynchronous message-passing system with at most f
// crash failures (a process advances after hearing n−f round messages).
func PerRoundBudget(f int) P {
	name := fmt.Sprintf("async-mp(f=%d)", f)
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			var bad core.PID = -1
			rec.Active.ForEach(func(p core.PID) {
				if bad < 0 && rec.Suspects[p].Count() > f {
					bad = p
				}
			})
			if bad >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: bad,
					Detail: fmt.Sprintf("|D|=%d > f=%d (%s)", rec.Suspects[bad].Count(), f, rec.Suspects[bad])}
			}
		}
		return nil
	}}
}

// SomeoneSeenByAll is eq. (4): in every round at least one process is
// suspected by nobody — |⋃_i D(i,r)| < n. Conjoined with eq. (3) it is the
// paper's RRFD counterpart of asynchronous SWMR shared memory (avoiding the
// network-partition behaviour message passing has when 2f ≥ n).
func SomeoneSeenByAll() P {
	const name = "someone-seen-by-all"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			u := t.SuspectUnion(rec.R)
			if u.Count() >= t.N {
				return &Violation{Predicate: name, Round: rec.R, Proc: -1,
					Detail: "every process is suspected by someone"}
			}
		}
		return nil
	}}
}

// SharedMemory is eqs. (3)+(4): the RRFD counterpart of an asynchronous SWMR
// shared-memory system with at most f crash failures (§2 item 4).
func SharedMemory(f int) P {
	return And(fmt.Sprintf("shared-memory(f=%d)", f), PerRoundBudget(f), SomeoneSeenByAll())
}

// NoMutualMiss is the alternative shared-memory clause from §2 item 4:
// p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r). The paper observes this does NOT imply
// eq. (4) on its own (misses can form a cycle), so the shared-memory
// alternative is the conjunction of both.
func NoMutualMiss() P {
	const name = "no-mutual-miss"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			var badI, badJ core.PID = -1, -1
			rec.Active.ForEach(func(i core.PID) {
				if badI >= 0 {
					return
				}
				rec.Suspects[i].ForEach(func(j core.PID) {
					if badI >= 0 || !rec.Active.Has(j) {
						return
					}
					if rec.Suspects[j].Has(i) {
						badI, badJ = i, j
					}
				})
			})
			if badI >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: badI,
					Detail: fmt.Sprintf("processes %d and %d suspect each other", badI, badJ)}
			}
		}
		return nil
	}}
}

// SelfIncluded requires p_i ∉ D(i,r) — identical to SelfTrusting but named as
// in §2 item 5's snapshot predicate for readability in conjunctions.
func SelfIncluded() P {
	p := SelfTrusting()
	p.Name = "self-included"
	return p
}

// ContainmentChain is the snapshot clause of §2 item 5: within a round the
// suspect sets are totally ordered by containment — D(i,r) ⊆ D(j,r) or
// D(j,r) ⊆ D(i,r) for all i,j.
func ContainmentChain() P {
	const name = "containment-chain"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			members := rec.Active.Members()
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					di, dj := rec.Suspects[members[a]], rec.Suspects[members[b]]
					if !di.IsSubset(dj) && !dj.IsSubset(di) {
						return &Violation{Predicate: name, Round: rec.R, Proc: members[a],
							Detail: fmt.Sprintf("D(%d)=%s and D(%d)=%s incomparable",
								members[a], di, members[b], dj)}
					}
				}
			}
		}
		return nil
	}}
}

// Immediacy is the defining extra clause of the iterated immediate-snapshot
// model (the paper's reference [4], origin of the round-by-round idea): if
// p_i hears p_j, then p_i's view contains p_j's — in suspect terms,
// j ∉ D(i,r) ⇒ D(i,r) ⊆ D(j,r) for active i, j. Together with
// self-inclusion and the containment chain it makes IIS a strict submodel
// of the item 5 snapshot model.
func Immediacy() P {
	const name = "immediacy"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			var badI, badJ core.PID = -1, -1
			rec.Active.ForEach(func(i core.PID) {
				if badI >= 0 {
					return
				}
				rec.Active.ForEach(func(j core.PID) {
					if badI >= 0 || i == j || rec.Suspects[i].Has(j) {
						return
					}
					if !rec.Suspects[i].IsSubset(rec.Suspects[j]) {
						badI, badJ = i, j
					}
				})
			})
			if badI >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: badI,
					Detail: fmt.Sprintf("hears %d but D(%d)=%s ⊄ D(%d)=%s",
						badJ, badI, rec.Suspects[badI], badJ, rec.Suspects[badJ])}
			}
		}
		return nil
	}}
}

// ImmediateSnapshot is the iterated-immediate-snapshot predicate: the item 5
// snapshot predicate (with the wait-free budget n−1) strengthened by
// immediacy.
func ImmediateSnapshot(n int) P {
	return And(fmt.Sprintf("immediate-snapshot(n=%d)", n),
		SelfIncluded(), ContainmentChain(), Immediacy(), PerRoundBudget(n-1))
}

// AtomicSnapshot is the §2 item 5 predicate: eq. (3) plus self-inclusion plus
// the containment chain — the RRFD counterpart of an f-resilient asynchronous
// atomic-snapshot shared-memory system.
func AtomicSnapshot(f int) P {
	return And(fmt.Sprintf("atomic-snapshot(f=%d)", f),
		PerRoundBudget(f), SelfIncluded(), ContainmentChain())
}

// NeverSuspectedExists is §2 item 6: some process is never suspected by
// anyone in any round — the RRFD counterpart of an asynchronous system
// augmented with the failure detector S of Chandra and Toueg. The paper notes
// this is the same predicate as |⋃_r ⋃_i D(i,r)| < n, i.e. eq. (1)'s budget
// clause with f = n−1.
func NeverSuspectedExists() P {
	const name = "never-suspected-exists"
	return P{Name: name, Check: func(t *core.Trace) error {
		if t.NeverSuspected().Empty() {
			return &Violation{Predicate: name, Proc: -1,
				Detail: "every process was suspected at some round"}
		}
		return nil
	}}
}

// EventuallyNeverSuspected is the eventual-accuracy analogue of §2 item 6
// (the ◇S regime of the §7 research programme): from round stab+1 on, some
// fixed process appears in no D(i,r). Traces no longer than stab satisfy it
// vacuously.
func EventuallyNeverSuspected(stab int) P {
	name := fmt.Sprintf("eventually-never-suspected(stab=%d)", stab)
	return P{Name: name, Check: func(t *core.Trace) error {
		if t.Len() <= stab {
			return nil
		}
		candidates := core.FullSet(t.N)
		for r := stab + 1; r <= t.Len(); r++ {
			candidates = candidates.Diff(t.SuspectUnion(r))
		}
		if candidates.Empty() {
			return &Violation{Predicate: name, Proc: -1,
				Detail: fmt.Sprintf("every process suspected after round %d", stab)}
		}
		return nil
	}}
}

// KSetDetector is the §3 predicate: |⋃_i D(i,r) \ ⋂_i D(i,r)| < k in every
// round — the per-round "uncertainty" of the detector is below k. Theorem 3.1
// shows it solves k-set agreement in one round; Theorem 3.3 shows a system
// with a k-set-consensus object and SWMR memory implements it.
func KSetDetector(k int) P {
	name := fmt.Sprintf("k-set-detector(k=%d)", k)
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			u := t.SuspectUnion(rec.R)
			in := t.SuspectIntersection(rec.R).Intersect(u)
			unc := u.Diff(in)
			if unc.Count() >= k {
				return &Violation{Predicate: name, Round: rec.R, Proc: -1,
					Detail: fmt.Sprintf("uncertainty %s has size %d ≥ k=%d", unc, unc.Count(), k)}
			}
		}
		return nil
	}}
}

// IdenticalSuspects is eq. (5) from §5: every process gets the same suspect
// set each round — D(i,r) = D(j,r) for all i,j. This is the k=1 instance of
// the §3 detector, implementable in 2 steps of the semi-synchronous model.
func IdenticalSuspects() P {
	const name = "identical-suspects"
	return P{Name: name, Check: func(t *core.Trace) error {
		for _, rec := range t.Rounds {
			var first core.Set
			var bad core.PID = -1
			got := false
			rec.Active.ForEach(func(p core.PID) {
				if bad >= 0 {
					return
				}
				if !got {
					first, got = rec.Suspects[p], true
					return
				}
				if !rec.Suspects[p].Equal(first) {
					bad = p
				}
			})
			if bad >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: bad,
					Detail: fmt.Sprintf("D(%d)=%s differs from %s", bad, rec.Suspects[bad], first)}
			}
		}
		return nil
	}}
}

// BSystem is the §2 item 3 counterexample system B: per round there is a set
// Q of at most t processes that may each miss up to t others, while everyone
// else misses at most f. The paper uses it (with f < t, 2t < n) to show
// eq. (3) is not the weakest RRFD for f-resilient asynchronous message
// passing: two rounds of B implement one round of the eq. (3) system A.
func BSystem(f, t int) P {
	name := fmt.Sprintf("b-system(f=%d,t=%d)", f, t)
	return P{Name: name, Check: func(tr *core.Trace) error {
		for _, rec := range tr.Rounds {
			// Q is the set of processes exceeding the f budget; it must
			// be small and its members must respect the t budget.
			q := core.NewSet(tr.N)
			var bad core.PID = -1
			rec.Active.ForEach(func(p core.PID) {
				c := rec.Suspects[p].Count()
				if c > t {
					bad = p
				} else if c > f {
					q.Add(p)
				}
			})
			if bad >= 0 {
				return &Violation{Predicate: name, Round: rec.R, Proc: bad,
					Detail: fmt.Sprintf("|D|=%d exceeds even the t=%d budget", rec.Suspects[bad].Count(), t)}
			}
			if q.Count() > t {
				return &Violation{Predicate: name, Round: rec.R, Proc: -1,
					Detail: fmt.Sprintf("%d processes exceed the f budget, allowed ≤ t=%d", q.Count(), t)}
			}
		}
		return nil
	}}
}
