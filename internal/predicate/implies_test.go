package predicate

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExhaustiveTracesCount(t *testing.T) {
	// n=2, rounds=1: each of the 2 processes picks D ∈ {∅,{0},{1}} —
	// 3² = 9 traces.
	count := 0
	if err := ExhaustiveTraces(2, 1, func(tr *core.Trace) error {
		count++
		if tr.N != 2 || tr.Len() != 1 {
			t.Fatalf("bad trace shape: n=%d len=%d", tr.N, tr.Len())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("enumerated %d traces, want 9", count)
	}
	// n=3, rounds=1: 7³ = 343.
	count = 0
	if err := ExhaustiveTraces(3, 1, func(tr *core.Trace) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 343 {
		t.Fatalf("enumerated %d traces, want 343", count)
	}
}

func TestExhaustiveTracesValidation(t *testing.T) {
	if err := ExhaustiveTraces(6, 1, func(*core.Trace) error { return nil }); err == nil {
		t.Fatal("n=6 must be rejected")
	}
	if err := ExhaustiveTraces(2, 0, func(*core.Trace) error { return nil }); err == nil {
		t.Fatal("rounds=0 must be rejected")
	}
}

func TestExhaustiveImpliesProvesLattice(t *testing.T) {
	// PROOFS over the n=3, 1-round universe.
	cases := []struct {
		name string
		a, b P
	}{
		{"snapshot(1) ⇒ shared-memory(1)", AtomicSnapshot(1), SharedMemory(1)},
		{"shared-memory(1) ⇒ async-mp(1)", SharedMemory(1), PerRoundBudget(1)},
		{"eq5 ⇒ kset(1)", IdenticalSuspects(), KSetDetector(1)},
		{"snapshot(1) ⇒ kset(2)", AtomicSnapshot(1), KSetDetector(2)},
		{"kset(1) ⇒ kset(2)", KSetDetector(1), KSetDetector(2)},
	}
	for _, tc := range cases {
		checked, satisfying, err := ExhaustiveImplies(3, 1, tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if checked != 343 {
			t.Fatalf("%s: checked %d", tc.name, checked)
		}
		if satisfying == 0 {
			t.Fatalf("%s: vacuous (no trace satisfies the premise)", tc.name)
		}
	}
}

func TestExhaustiveImpliesTwoRounds(t *testing.T) {
	// Two-round proof: the crash predicate implies the omission predicate
	// over the full n=3, 2-round space (117649 traces).
	checked, satisfying, err := ExhaustiveImplies(3, 2, SyncCrash(2), SendOmission(2))
	if err != nil {
		t.Fatal(err)
	}
	if checked != 343*343 {
		t.Fatalf("checked %d", checked)
	}
	if satisfying == 0 {
		t.Fatal("vacuous premise")
	}
}

func TestExhaustiveImpliesFindsCounterexample(t *testing.T) {
	// async-mp(1) does NOT imply shared-memory: the cycle traces violate
	// eq. (4).
	_, _, err := ExhaustiveImplies(3, 1, PerRoundBudget(1), SomeoneSeenByAll())
	if err == nil {
		t.Fatal("expected a counterexample")
	}
	if !strings.Contains(err.Error(), "someone-seen-by-all") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestExhaustiveWitnessCensus(t *testing.T) {
	// Exact census of the paper's cycle observation: traces satisfying
	// no-mutual-miss + eq3(1) but violating eq. (4) over n=3, 1 round.
	// The 3-cycles are the only shape: D(0)={1},D(1)={2},D(2)={0} and the
	// reverse orientation — exactly 2 witnesses.
	checked, witnesses, err := ExhaustiveWitnesses(3, 1,
		And("nmm+eq3", PerRoundBudget(1), NoMutualMiss()), SomeoneSeenByAll())
	if err != nil {
		t.Fatal(err)
	}
	if checked != 343 {
		t.Fatalf("checked %d", checked)
	}
	if witnesses != 2 {
		t.Fatalf("witness census = %d, want exactly the 2 orientations of the 3-cycle", witnesses)
	}
}

func TestExhaustiveImpliesSendOmissionNotCrash(t *testing.T) {
	// Strictness of the §2 item 2 submodel relation, proven by census:
	// there exist 2-round omission traces that are not crash traces.
	_, witnesses, err := ExhaustiveWitnesses(3, 2, SendOmission(2), SuspicionPropagates())
	if err != nil {
		t.Fatal(err)
	}
	if witnesses == 0 {
		t.Fatal("omission must strictly contain crash")
	}
}
