package predicate

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// mkTrace builds a trace over n processes from per-round suspect sets given
// as slices of PID slices. All processes are active every round and
// deliveries are the complement of suspicions.
func mkTrace(n int, rounds ...[][]core.PID) *core.Trace {
	tr := core.NewTrace(n)
	for r, round := range rounds {
		rec := core.RoundRecord{
			R:        r + 1,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.FullSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			rec.Suspects[i] = core.SetOf(n, round[i]...)
			rec.Deliver[i] = rec.Suspects[i].Complement()
		}
		tr.Append(rec)
	}
	return tr
}

func pids(ps ...core.PID) []core.PID { return ps }

func TestSelfTrusting(t *testing.T) {
	good := mkTrace(3, [][]core.PID{pids(1), pids(), pids(0)})
	if err := SelfTrusting().Check(good); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace(3, [][]core.PID{pids(0), pids(), pids()})
	err := SelfTrusting().Check(bad)
	if err == nil {
		t.Fatal("expected self-suspicion violation")
	}
	if !strings.Contains(err.Error(), "suspects itself") {
		t.Fatalf("unhelpful violation message: %v", err)
	}
}

func TestTotalSuspectBudget(t *testing.T) {
	tr := mkTrace(4,
		[][]core.PID{pids(1), pids(), pids(1), pids()},
		[][]core.PID{pids(2), pids(2), pids(), pids()},
	)
	if err := TotalSuspectBudget(2).Check(tr); err != nil {
		t.Fatal(err)
	}
	if err := TotalSuspectBudget(1).Check(tr); err == nil {
		t.Fatal("budget 1 should fail: two distinct processes suspected")
	}
}

func TestSuspicionPropagates(t *testing.T) {
	good := mkTrace(3,
		[][]core.PID{pids(2), pids(), pids()},
		[][]core.PID{pids(2), pids(2), pids(2)},
	)
	if err := SuspicionPropagates().Check(good); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace(3,
		[][]core.PID{pids(2), pids(), pids()},
		[][]core.PID{pids(2), pids(), pids(2)}, // p1 forgot the suspicion
	)
	if err := SuspicionPropagates().Check(bad); err == nil {
		t.Fatal("expected propagation violation")
	}
}

func TestPerRoundBudget(t *testing.T) {
	tr := mkTrace(4, [][]core.PID{pids(1, 2), pids(), pids(3), pids()})
	if err := PerRoundBudget(2).Check(tr); err != nil {
		t.Fatal(err)
	}
	if err := PerRoundBudget(1).Check(tr); err == nil {
		t.Fatal("per-round budget 1 should fail")
	}
}

func TestSomeoneSeenByAll(t *testing.T) {
	good := mkTrace(3, [][]core.PID{pids(1), pids(2), pids(1)})
	if err := SomeoneSeenByAll().Check(good); err != nil {
		t.Fatal(err)
	}
	// 0 suspects 1, 1 suspects 2, 2 suspects 0: everyone suspected.
	bad := mkTrace(3, [][]core.PID{pids(1), pids(2), pids(0)})
	if err := SomeoneSeenByAll().Check(bad); err == nil {
		t.Fatal("cycle should violate eq4")
	}
}

func TestNoMutualMissAndCycleSeparation(t *testing.T) {
	// The paper's point: a miss-cycle satisfies no-mutual-miss but
	// violates eq. (4).
	cycle := mkTrace(3, [][]core.PID{pids(1), pids(2), pids(0)})
	if err := NoMutualMiss().Check(cycle); err != nil {
		t.Fatalf("cycle should satisfy no-mutual-miss: %v", err)
	}
	if err := SomeoneSeenByAll().Check(cycle); err == nil {
		t.Fatal("cycle must violate eq4 — this is the paper's separation example")
	}
	mutual := mkTrace(3, [][]core.PID{pids(1), pids(0), pids()})
	if err := NoMutualMiss().Check(mutual); err == nil {
		t.Fatal("mutual miss should violate the predicate")
	}
}

func TestContainmentChain(t *testing.T) {
	good := mkTrace(4, [][]core.PID{pids(3), pids(2, 3), pids(3), pids()})
	if err := ContainmentChain().Check(good); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace(4, [][]core.PID{pids(1), pids(2), pids(), pids()})
	if err := ContainmentChain().Check(bad); err == nil {
		t.Fatal("incomparable suspect sets should fail the chain predicate")
	}
}

func TestNeverSuspectedExists(t *testing.T) {
	good := mkTrace(3,
		[][]core.PID{pids(1), pids(1), pids(1)},
		[][]core.PID{pids(2), pids(2), pids()},
	)
	if err := NeverSuspectedExists().Check(good); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace(3,
		[][]core.PID{pids(1), pids(0), pids()},
		[][]core.PID{pids(2), pids(), pids()},
	)
	if err := NeverSuspectedExists().Check(bad); err == nil {
		t.Fatal("all processes suspected at some point — predicate must fail")
	}
}

func TestKSetDetector(t *testing.T) {
	// Everyone agrees on {2}, disagreement only on {1}: uncertainty 1.
	tr := mkTrace(4, [][]core.PID{pids(2), pids(1, 2), pids(2), pids(1, 2)})
	if err := KSetDetector(2).Check(tr); err != nil {
		t.Fatal(err)
	}
	if err := KSetDetector(1).Check(tr); err == nil {
		t.Fatal("uncertainty 1 must violate k=1 detector")
	}
	// Perfect agreement: k=1 holds.
	agree := mkTrace(4, [][]core.PID{pids(3), pids(3), pids(3), pids(3)})
	if err := KSetDetector(1).Check(agree); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalSuspects(t *testing.T) {
	good := mkTrace(3, [][]core.PID{pids(2), pids(2), pids(2)})
	if err := IdenticalSuspects().Check(good); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace(3, [][]core.PID{pids(2), pids(1), pids(2)})
	if err := IdenticalSuspects().Check(bad); err == nil {
		t.Fatal("differing suspect sets must violate eq5")
	}
}

func TestBSystemPredicate(t *testing.T) {
	// n=5, f=1, t=2: two processes (0,1) may miss up to 2; rest ≤ 1.
	good := mkTrace(5, [][]core.PID{pids(2, 3), pids(3, 4), pids(0), pids(), pids(1)})
	if err := BSystem(1, 2).Check(good); err != nil {
		t.Fatal(err)
	}
	// Three processes exceed the f budget: |Q| > t.
	bad := mkTrace(5, [][]core.PID{pids(2, 3), pids(3, 4), pids(0, 1), pids(), pids()})
	if err := BSystem(1, 2).Check(bad); err == nil {
		t.Fatal("three over-budget processes must violate B with t=2")
	}
	// One process exceeds even the t budget.
	bad2 := mkTrace(5, [][]core.PID{pids(1, 2, 3), pids(), pids(), pids(), pids()})
	if err := BSystem(1, 2).Check(bad2); err == nil {
		t.Fatal("exceeding the t budget must violate B")
	}
}

func TestImmediacyPredicate(t *testing.T) {
	// Ordered-block views: V0 = {0}, V1 = V2 = {0,1,2} — immediacy holds.
	good := mkTrace(3, [][]core.PID{pids(1, 2), pids(), pids()})
	if err := Immediacy().Check(good); err != nil {
		t.Fatal(err)
	}
	// p1 hears p0 but p0's suspect set is not contained in p1's.
	bad := mkTrace(3, [][]core.PID{pids(2), pids(), pids()})
	if err := Immediacy().Check(bad); err == nil {
		t.Fatal("expected immediacy violation: p1 hears p0 but D(0)⊄D(1)")
	}
	if err := ImmediateSnapshot(3).Check(good); err != nil {
		t.Fatal(err)
	}
}

func TestEventuallyNeverSuspectedDirect(t *testing.T) {
	tr := mkTrace(3,
		[][]core.PID{pids(1, 2), pids(0), pids(0)}, // everyone dirty early
		[][]core.PID{pids(1), pids(), pids(1)},     // p0 and p2 clean late
	)
	if err := EventuallyNeverSuspected(1).Check(tr); err != nil {
		t.Fatal(err)
	}
	if err := EventuallyNeverSuspected(0).Check(tr); err == nil {
		t.Fatal("stab=0 must fail: everyone suspected somewhere")
	}
	// Vacuous beyond the horizon.
	if err := EventuallyNeverSuspected(5).Check(tr); err != nil {
		t.Fatal(err)
	}
}

func TestImpliesAndSeparatesLocal(t *testing.T) {
	gen := func(seed int64) *core.Trace {
		// All traces: D(i) = {2} for i in {0,1}, empty for p2.
		return mkTrace(3, [][]core.PID{pids(2), pids(2), pids()})
	}
	if err := Implies(gen, PerRoundBudget(1), SomeoneSeenByAll(), 5); err != nil {
		t.Fatal(err)
	}
	// Broken generator reported as such.
	if err := Implies(gen, IdenticalSuspects(), SomeoneSeenByAll(), 5); err == nil {
		t.Fatal("generator violating the source predicate must be reported")
	}
	if _, err := Separates(gen, PerRoundBudget(1), SomeoneSeenByAll(), 5); err == nil {
		t.Fatal("no witness exists; Separates must say so")
	}
	cycleGen := func(seed int64) *core.Trace {
		return mkTrace(3, [][]core.PID{pids(1), pids(2), pids(0)})
	}
	seed, err := Separates(cycleGen, PerRoundBudget(1), SomeoneSeenByAll(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 0 {
		t.Fatalf("witness seed = %d", seed)
	}
}

func TestAndShortCircuitsWithContext(t *testing.T) {
	tr := mkTrace(3, [][]core.PID{pids(0), pids(), pids()}) // self-suspicion
	err := SendOmission(2).Check(tr)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "sync-send-omission") {
		t.Fatalf("conjunction name missing from error: %v", err)
	}
}

func TestViolationErrorFormat(t *testing.T) {
	v := &Violation{Predicate: "p", Round: 3, Proc: 1, Detail: "boom"}
	if got := v.Error(); !strings.Contains(got, "round 3") || !strings.Contains(got, "process 1") {
		t.Fatalf("Error() = %q", got)
	}
	whole := &Violation{Predicate: "p", Proc: -1, Detail: "boom"}
	if got := whole.Error(); !strings.Contains(got, "whole trace") {
		t.Fatalf("Error() = %q", got)
	}
}

func TestPrefixForTheorem41(t *testing.T) {
	// A trace whose cumulative suspicion budget holds for the first 2
	// rounds but not the third — exactly the shape Theorem 4.1 needs.
	tr := mkTrace(4,
		[][]core.PID{pids(1), pids(), pids(), pids()},
		[][]core.PID{pids(2), pids(), pids(), pids()},
		[][]core.PID{pids(3), pids(), pids(), pids()},
	)
	if err := TotalSuspectBudget(2).Check(tr.Prefix(2)); err != nil {
		t.Fatal(err)
	}
	if err := TotalSuspectBudget(2).Check(tr); err == nil {
		t.Fatal("full trace must exceed the budget")
	}
}
