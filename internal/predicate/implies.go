package predicate

import (
	"fmt"

	"repro/internal/core"
)

// TraceGen produces an execution trace from a seed. Generators are expected
// to emit traces satisfying some source predicate; Implies checks that
// claim and the implication together.
type TraceGen func(seed int64) *core.Trace

// Implies empirically checks the submodel relation A ⇒ B of §2: every
// generated trace must satisfy a (otherwise the generator is broken and an
// error says so) and must then satisfy b. It runs trials seeds and returns
// the first counterexample.
//
// This is a semi-decision procedure: passing does not prove the implication,
// but a failure is a concrete counterexample trace. The lattice experiment
// (E15) combines it with exhaustive small-universe generators.
func Implies(gen TraceGen, a, b P, trials int) error {
	for seed := int64(0); seed < int64(trials); seed++ {
		t := gen(seed)
		if err := a.Check(t); err != nil {
			return fmt.Errorf("generator broke source predicate at seed %d: %w", seed, err)
		}
		if err := b.Check(t); err != nil {
			return fmt.Errorf("implication %s ⇒ %s fails at seed %d: %w", a.Name, b.Name, seed, err)
		}
	}
	return nil
}

// ExhaustiveTraces enumerates EVERY crash-free trace over n processes and
// rounds rounds — each D(i,r) independently ranges over all 2^n − 1 proper
// subsets of S (D = S is excluded by the model) — and calls fn on each.
// The space has (2^n − 1)^(n·rounds) traces, so keep n and rounds tiny
// (n = 3, rounds = 2 is ~1.2e5; n = 4, rounds = 1 is ~5e4). fn returning a
// non-nil error aborts the enumeration.
func ExhaustiveTraces(n, rounds int, fn func(*core.Trace) error) error {
	if n < 1 || n > 5 || rounds < 1 {
		return fmt.Errorf("predicate: exhaustive enumeration needs 1 ≤ n ≤ 5 and rounds ≥ 1, got n=%d rounds=%d", n, rounds)
	}
	slots := n * rounds
	masks := make([]uint32, slots) // masks[i] ∈ [0, 2^n−1), bit b = process b suspected
	limit := uint32(1)<<n - 1      // excludes D = S
	full := core.FullSet(n)

	build := func() *core.Trace {
		t := core.NewTrace(n)
		for r := 0; r < rounds; r++ {
			rec := core.RoundRecord{
				R:        r + 1,
				Suspects: make([]core.Set, n),
				Deliver:  make([]core.Set, n),
				Active:   full,
				Crashed:  core.NewSet(n),
			}
			for i := 0; i < n; i++ {
				d := core.NewSet(n)
				m := masks[r*n+i]
				for b := 0; b < n; b++ {
					if m&(1<<b) != 0 {
						d.Add(core.PID(b))
					}
				}
				rec.Suspects[i] = d
				rec.Deliver[i] = d.Complement()
			}
			t.Append(rec)
		}
		return t
	}

	for {
		if err := fn(build()); err != nil {
			return err
		}
		// Odometer increment.
		i := 0
		for ; i < slots; i++ {
			masks[i]++
			if masks[i] < limit {
				break
			}
			masks[i] = 0
		}
		if i == slots {
			return nil
		}
	}
}

// ExhaustiveImplies PROVES, for the given (tiny) universe, that every trace
// satisfying a also satisfies b, by enumerating the full trace space. It
// returns the number of traces enumerated and the number satisfying a; the
// error carries the counterexample's description if the implication fails.
func ExhaustiveImplies(n, rounds int, a, b P) (checked, satisfying int, err error) {
	err = ExhaustiveTraces(n, rounds, func(t *core.Trace) error {
		checked++
		if a.Check(t) != nil {
			return nil
		}
		satisfying++
		if berr := b.Check(t); berr != nil {
			return fmt.Errorf("implication %s ⇒ %s fails: %w\n%s", a.Name, b.Name, berr, t)
		}
		return nil
	})
	return checked, satisfying, err
}

// ExhaustiveWitnesses counts, over the full trace space of the given tiny
// universe, how many traces satisfy a but violate b — an exact separation
// census.
func ExhaustiveWitnesses(n, rounds int, a, b P) (checked, witnesses int, err error) {
	err = ExhaustiveTraces(n, rounds, func(t *core.Trace) error {
		checked++
		if a.Check(t) == nil && b.Check(t) != nil {
			witnesses++
		}
		return nil
	})
	return checked, witnesses, err
}

// Separates empirically checks that A does NOT imply B by finding a witness
// trace that satisfies a but violates b. It returns the witness seed, or an
// error if no witness was found within trials seeds.
func Separates(gen TraceGen, a, b P, trials int) (int64, error) {
	for seed := int64(0); seed < int64(trials); seed++ {
		t := gen(seed)
		if err := a.Check(t); err != nil {
			return 0, fmt.Errorf("generator broke source predicate at seed %d: %w", seed, err)
		}
		if b.Check(t) != nil {
			return seed, nil
		}
	}
	return 0, fmt.Errorf("no witness separating %s from %s in %d trials", a.Name, b.Name, trials)
}
