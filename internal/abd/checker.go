package abd

import (
	"fmt"
	"sort"
)

// CheckAtomic validates the operation log of the single-writer register
// against the standard SWMR atomicity conditions, which for a single writer
// are necessary and sufficient for linearizability:
//
//  1. writes carry sequence numbers 1..W in the writer's program order;
//  2. every read returns seq 0 (initial) or the value of write seq;
//  3. a read that starts after a write completed returns at least that
//     write's sequence number;
//  4. a read cannot return a write that starts after the read ended;
//  5. two non-overlapping reads do not go backwards in sequence numbers.
func CheckAtomic(log []Op) error {
	var writes []Op
	var reads []Op
	for _, op := range log {
		switch op.Kind {
		case "write":
			writes = append(writes, op)
		case "read":
			reads = append(reads, op)
		default:
			return fmt.Errorf("abd: unknown op kind %q", op.Kind)
		}
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].Seq < writes[j].Seq })
	valOf := make(map[int]any, len(writes))
	for i, w := range writes {
		if w.Seq != i+1 {
			return fmt.Errorf("abd: write sequence numbers not contiguous: %d at position %d", w.Seq, i)
		}
		if i > 0 && w.Start < writes[i-1].End {
			return fmt.Errorf("abd: writer's operations overlap: seq %d starts before seq %d ends", w.Seq, w.Seq-1)
		}
		valOf[w.Seq] = w.Val
	}

	for _, r := range reads {
		if r.Seq < 0 || r.Seq > len(writes) {
			return fmt.Errorf("abd: read by %d returned unknown seq %d", r.Proc, r.Seq)
		}
		if r.Seq > 0 && r.Val != valOf[r.Seq] {
			return fmt.Errorf("abd: read by %d returned (seq %d, %v), but write %d stored %v",
				r.Proc, r.Seq, r.Val, r.Seq, valOf[r.Seq])
		}
		for _, w := range writes {
			if w.End < r.Start && r.Seq < w.Seq {
				return fmt.Errorf("abd: read by %d (seq %d, interval [%d,%d]) missed completed write %d ([%d,%d])",
					r.Proc, r.Seq, r.Start, r.End, w.Seq, w.Start, w.End)
			}
			if w.Start > r.End && r.Seq >= w.Seq {
				return fmt.Errorf("abd: read by %d returned future write %d", r.Proc, w.Seq)
			}
		}
	}

	for i := 0; i < len(reads); i++ {
		for j := 0; j < len(reads); j++ {
			if reads[i].End < reads[j].Start && reads[i].Seq > reads[j].Seq {
				return fmt.Errorf("abd: new/old inversion: read by %d (seq %d) precedes read by %d (seq %d)",
					reads[i].Proc, reads[i].Seq, reads[j].Proc, reads[j].Seq)
			}
		}
	}
	return nil
}
