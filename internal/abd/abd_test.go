package abd

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/msgnet"
)

// workload: the writer (p0) writes values 100,200,...; everyone else reads
// `reads` times.
func workload(writes, reads int) Script {
	return func(r *Register) error {
		if r.Writer() {
			for k := 1; k <= writes; k++ {
				if err := r.Write(k * 100); err != nil {
					return err
				}
			}
			return nil
		}
		for k := 0; k < reads; k++ {
			if _, err := r.Read(); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestAtomicRegisterFailureFree(t *testing.T) {
	n, f := 5, 2
	for seed := int64(0); seed < 30; seed++ {
		out, err := Run(n, f, msgnet.Config{Chooser: msgnet.Seeded(seed)}, workload(4, 3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAtomic(out.Log); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// 4 writes + 4 readers × 3 reads.
		if len(out.Log) != 4+(n-1)*3 {
			t.Fatalf("seed %d: %d ops logged", seed, len(out.Log))
		}
	}
}

func TestAtomicRegisterWithCrashes(t *testing.T) {
	n, f := 5, 2
	for seed := int64(0); seed < 20; seed++ {
		cfg := msgnet.Config{
			Chooser: msgnet.Seeded(seed),
			Crash:   map[core.PID]int{3: 25, 4: int(seed%40) + 5},
		}
		out, err := Run(n, f, cfg, workload(3, 3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAtomic(out.Log); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Crashed.Equal(core.SetOf(n, 3, 4)) {
			t.Fatalf("seed %d: crashed = %s", seed, out.Crashed)
		}
	}
}

func TestReadSeesCompletedWrite(t *testing.T) {
	// Sequential: write everything, then read — the read must return the
	// last write.
	n, f := 3, 1
	out, err := Run(n, f, msgnet.Config{Chooser: msgnet.Seeded(7)}, func(r *Register) error {
		if r.Writer() {
			for k := 1; k <= 3; k++ {
				if err := r.Write(k); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAtomic(out.Log); err != nil {
		t.Fatal(err)
	}
	// Second phase in a fresh run: reads concurrent with nothing must
	// still be mutually consistent (monotone seqs per reader).
	out2, err := Run(n, f, msgnet.Config{Chooser: msgnet.Seeded(8)}, workload(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAtomic(out2.Log); err != nil {
		t.Fatal(err)
	}
}

func TestInitialReadReturnsBottom(t *testing.T) {
	n, f := 3, 1
	out, err := Run(n, f, msgnet.Config{Chooser: msgnet.Seeded(1)}, func(r *Register) error {
		if r.Writer() {
			return nil
		}
		v, err := r.Read()
		if err != nil {
			return err
		}
		if v != nil {
			return fmt.Errorf("unexpected initial value %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range out.Log {
		if op.Kind == "read" && op.Seq != 0 {
			t.Fatalf("read before any write returned seq %d", op.Seq)
		}
	}
}

func TestNonWriterCannotWrite(t *testing.T) {
	_, err := Run(3, 1, msgnet.Config{Chooser: msgnet.Seeded(2)}, func(r *Register) error {
		if !r.Writer() {
			if err := r.Write(1); err == nil {
				return fmt.Errorf("non-writer write accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(4, 2, msgnet.Config{}, workload(1, 1)); err == nil {
		t.Fatal("2f ≥ n must be rejected")
	}
	if _, err := Run(5, 1, msgnet.Config{Crash: map[core.PID]int{1: 0, 2: 0}}, workload(1, 1)); err == nil {
		t.Fatal("crashes > f must be rejected")
	}
}

func TestCheckAtomicDetectsViolations(t *testing.T) {
	w1 := Op{Proc: 0, Kind: "write", Seq: 1, Val: "a", Start: 1, End: 5}
	w2 := Op{Proc: 0, Kind: "write", Seq: 2, Val: "b", Start: 6, End: 9}
	good := []Op{w1, w2,
		{Proc: 1, Kind: "read", Seq: 2, Val: "b", Start: 10, End: 12},
	}
	if err := CheckAtomic(good); err != nil {
		t.Fatal(err)
	}
	stale := []Op{w1, w2,
		{Proc: 1, Kind: "read", Seq: 1, Val: "a", Start: 10, End: 12},
	}
	if err := CheckAtomic(stale); err == nil || !strings.Contains(err.Error(), "missed completed write") {
		t.Fatalf("err = %v", err)
	}
	future := []Op{w1, w2,
		{Proc: 1, Kind: "read", Seq: 2, Val: "b", Start: 2, End: 4},
	}
	if err := CheckAtomic(future); err == nil || !strings.Contains(err.Error(), "future") {
		t.Fatalf("err = %v", err)
	}
	inversion := []Op{w1, w2,
		{Proc: 1, Kind: "read", Seq: 2, Val: "b", Start: 6, End: 7},
		{Proc: 2, Kind: "read", Seq: 1, Val: "a", Start: 8, End: 9},
	}
	if err := CheckAtomic(inversion); err == nil || !strings.Contains(err.Error(), "inversion") {
		t.Fatalf("err = %v", err)
	}
	wrongVal := []Op{w1,
		{Proc: 1, Kind: "read", Seq: 1, Val: "zzz", Start: 6, End: 7},
	}
	if err := CheckAtomic(wrongVal); err == nil {
		t.Fatal("wrong value undetected")
	}
}
