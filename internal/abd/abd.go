// Package abd implements the Attiya–Bar-Noy–Dolev emulation of a
// single-writer multi-reader atomic register over asynchronous message
// passing with a minority of crash failures (2f < n) — the paper's
// reference [22], which §2 item 4 invokes ("to see the implementation of
// shared-memory by message-passing in the context of RRFDs...").
//
// The protocol is the classic one:
//
//	Write(v):  the writer picks the next sequence number, broadcasts
//	           STORE(seq, v), and returns after n−f acknowledgments.
//	Read():    the reader broadcasts QUERY, collects n−f replies, picks
//	           the pair with the highest sequence number, write-backs
//	           STORE(seq, v) to n−f processes (the atomicity phase), and
//	           returns v.
//
// Every process doubles as a replica server; while an operation waits for
// its quorum, incoming requests keep being served, so operations never
// deadlock each other. Any two quorums of size n−f intersect (2f < n), so a
// read sees every completed write, and the write-back makes reads
// linearizable too — the tests check real-time linearizability using the
// substrate's logical clock.
package abd

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
)

type msgKind int

const (
	kindStore msgKind = iota + 1
	kindStoreAck
	kindQuery
	kindQueryReply
	kindDone
)

// message is the ABD wire format.
type message struct {
	kind msgKind
	op   int // originator's operation counter, matching acks to ops
	seq  int
	val  core.Value
}

// Op records one completed register operation with its logical-time
// interval, for linearizability checking.
type Op struct {
	// Proc is the invoking process.
	Proc core.PID

	// Kind is "write" or "read".
	Kind string

	// Seq and Val are the operation's sequence number and value (for a
	// read, the returned pair).
	Seq int
	Val core.Value

	// Start and End are the scheduler steps of the operation's first and
	// last network event.
	Start, End int
}

// Register is a process's handle to the emulated SWMR register. The writer
// is process 0.
type Register struct {
	nd       *msgnet.Node
	f        int
	obs      obs.Observer // nil unless built by RunObserved
	seq      int          // writer's sequence counter
	curSeq   int          // replica state
	curVal   core.Value
	opCount  int
	doneSeen core.Set
	log      []Op
}

// newRegister returns the handle; callers use Run.
func newRegister(nd *msgnet.Node, f int, o obs.Observer) *Register {
	return &Register{nd: nd, f: f, obs: o, doneSeen: core.NewSet(nd.N)}
}

// event reports a completed register operation when an observer is
// attached: kind is "abd.write" or "abd.read", and the fields carry the
// operation's sequence number, the quorum size it waited for (n−f), and the
// logical-time span of the operation in scheduler steps.
func (r *Register) event(kind string, op Op) {
	if r.obs == nil {
		return
	}
	r.obs.Event(kind, -1, int(op.Proc), map[string]any{
		"seq":    op.Seq,
		"quorum": r.quorum(),
		"steps":  op.End - op.Start,
	})
}

// Writer reports whether this process is the register's (single) writer.
func (r *Register) Writer() bool { return r.nd.Me == 0 }

// quorum is the replies an operation waits for (counting the self-reply).
func (r *Register) quorum() int { return r.nd.N - r.f }

// Write stores v in the register. Only the writer may call it.
func (r *Register) Write(v core.Value) error {
	if !r.Writer() {
		return fmt.Errorf("abd: process %d is not the writer", r.nd.Me)
	}
	r.seq++
	r.opCount++
	start := r.nd.Clock()
	if err := r.store(r.seq, v, r.opCount); err != nil {
		return err
	}
	op := Op{
		Proc: r.nd.Me, Kind: "write", Seq: r.seq, Val: v,
		Start: start, End: r.nd.Clock(),
	}
	r.log = append(r.log, op)
	r.event("abd.write", op)
	return nil
}

// Read returns the register's value.
func (r *Register) Read() (core.Value, error) {
	r.opCount++
	op := r.opCount
	start := r.nd.Clock()
	if err := r.nd.Broadcast(message{kind: kindQuery, op: op}); err != nil {
		return nil, err
	}
	replies := 0
	bestSeq, bestVal := -1, core.Value(nil)
	for replies < r.quorum() {
		env, err := r.nd.Recv()
		if err != nil {
			return nil, err
		}
		m := env.Payload.(message)
		if m.kind == kindQueryReply && m.op == op {
			replies++
			if m.seq > bestSeq {
				bestSeq, bestVal = m.seq, m.val
			}
			continue
		}
		if err := r.serve(env); err != nil {
			return nil, err
		}
	}
	// Write-back phase: atomicity.
	r.opCount++
	if err := r.store(bestSeq, bestVal, r.opCount); err != nil {
		return nil, err
	}
	rec := Op{
		Proc: r.nd.Me, Kind: "read", Seq: bestSeq, Val: bestVal,
		Start: start, End: r.nd.Clock(),
	}
	r.log = append(r.log, rec)
	r.event("abd.read", rec)
	return bestVal, nil
}

// store broadcasts STORE(seq, v) and awaits a quorum of acks, serving
// concurrent requests meanwhile.
func (r *Register) store(seq int, v core.Value, op int) error {
	if err := r.nd.Broadcast(message{kind: kindStore, op: op, seq: seq, val: v}); err != nil {
		return err
	}
	acks := 0
	for acks < r.quorum() {
		env, err := r.nd.Recv()
		if err != nil {
			return err
		}
		m := env.Payload.(message)
		if m.kind == kindStoreAck && m.op == op {
			acks++
			continue
		}
		if err := r.serve(env); err != nil {
			return err
		}
	}
	return nil
}

// serve handles one replica-side message.
func (r *Register) serve(env msgnet.Envelope) error {
	m, ok := env.Payload.(message)
	if !ok {
		return fmt.Errorf("abd: foreign payload %T", env.Payload)
	}
	switch m.kind {
	case kindStore:
		if m.seq > r.curSeq {
			r.curSeq, r.curVal = m.seq, m.val
		}
		return r.nd.Send(env.From, message{kind: kindStoreAck, op: m.op})
	case kindQuery:
		return r.nd.Send(env.From, message{kind: kindQueryReply, op: m.op, seq: r.curSeq, val: r.curVal})
	case kindDone:
		r.doneSeen.Add(env.From)
		return nil
	case kindStoreAck, kindQueryReply:
		// A stale ack from an earlier quorum round: ignore.
		return nil
	default:
		return fmt.Errorf("abd: unknown message kind %d", m.kind)
	}
}

// Script is the per-process workload: invoked once the register is ready,
// it performs operations and returns. Ops it performed are recorded in the
// register's log.
type Script func(r *Register) error

// Outcome reports a Run.
type Outcome struct {
	// Log is every completed operation, across processes.
	Log []Op

	// Crashed is the set of processes crashed by the scheduler.
	Crashed core.Set
}

// Run executes the script at every process over the emulated register with
// resilience f (2f < n required), then shuts the system down with a DONE
// barrier among the processes the configuration does not crash. The
// configuration may crash at most f processes.
func Run(n, f int, cfg msgnet.Config, script Script) (*Outcome, error) {
	return RunObserved(n, f, cfg, script, nil)
}

// RunObserved is Run with protocol-level observability: every completed
// register operation is reported through o as an "abd.write" / "abd.read"
// event carrying its sequence number, quorum size and logical duration.
// Network-level events additionally flow if cfg.Observer is set; the two
// layers are independent. A nil observer degrades to Run.
func RunObserved(n, f int, cfg msgnet.Config, script Script, o obs.Observer) (*Outcome, error) {
	if 2*f >= n {
		return nil, fmt.Errorf("abd: need 2f < n, got n=%d f=%d", n, f)
	}
	if len(cfg.Crash) > f {
		return nil, fmt.Errorf("abd: %d crashes exceed f=%d", len(cfg.Crash), f)
	}
	expectDone := core.NewSet(n)
	for i := 0; i < n; i++ {
		if _, crashes := cfg.Crash[core.PID(i)]; !crashes {
			expectDone.Add(core.PID(i))
		}
	}

	regs := make([]*Register, n)
	out, err := msgnet.Run(n, cfg, func(nd *msgnet.Node) (core.Value, error) {
		r := newRegister(nd, f, o)
		regs[nd.Me] = r
		if err := script(r); err != nil {
			return nil, err
		}
		// Shutdown barrier: announce DONE, keep serving until every
		// process expected to survive has announced too.
		if err := nd.Broadcast(message{kind: kindDone}); err != nil {
			return nil, err
		}
		r.doneSeen.Add(nd.Me)
		for !expectDone.IsSubset(r.doneSeen) {
			env, err := nd.Recv()
			if err != nil {
				return nil, err
			}
			if err := r.serve(env); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Outcome{Crashed: out.Crashed}
	for pid, procErr := range out.Errs {
		if !errors.Is(procErr, msgnet.ErrCrashed) {
			return nil, fmt.Errorf("abd: process %d: %w", pid, procErr)
		}
	}
	for i := 0; i < n; i++ {
		if regs[i] != nil {
			res.Log = append(res.Log, regs[i].log...)
		}
	}
	return res, nil
}
