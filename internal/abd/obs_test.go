package abd

import (
	"testing"

	"repro/internal/msgnet"
	"repro/internal/obs"
)

func TestRunObservedEmitsRegisterEvents(t *testing.T) {
	n, f := 5, 2
	m := obs.NewMetrics()
	writes := 3
	_, err := RunObserved(n, f, msgnet.Config{}, func(r *Register) error {
		if r.Writer() {
			for i := 0; i < writes; i++ {
				if err := r.Write(i); err != nil {
					return err
				}
			}
			return nil
		}
		_, err := r.Read()
		return err
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Snapshot().Events
	if ev["abd.write"] != int64(writes) {
		t.Fatalf("abd.write = %d, want %d (events %v)", ev["abd.write"], writes, ev)
	}
	if ev["abd.read"] != int64(n-1) {
		t.Fatalf("abd.read = %d, want %d", ev["abd.read"], n-1)
	}
}

func TestRunObservedWithNetworkObserver(t *testing.T) {
	// Register-level and network-level events flow through the same
	// metrics when the caller wires both layers.
	n, f := 3, 1
	m := obs.NewMetrics()
	_, err := RunObserved(n, f, msgnet.Config{Observer: m}, func(r *Register) error {
		if r.Writer() {
			return r.Write("x")
		}
		_, err := r.Read()
		return err
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Snapshot().Events
	if ev["abd.write"] != 1 || ev["abd.read"] != int64(n-1) {
		t.Fatalf("register events: %v", ev)
	}
	if ev["msgnet.send"] == 0 || ev["msgnet.recv"] == 0 || ev["msgnet.done"] != 1 {
		t.Fatalf("network events missing: %v", ev)
	}
}
