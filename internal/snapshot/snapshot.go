// Package snapshot implements a wait-free atomic snapshot object on top of
// SWMR registers (after Afek, Attiya, Dolev, Gafni, Merritt and Shavit, JACM
// 1993 — reference [21] of the paper), plus the snapshot round protocol whose
// RRFD counterpart is §2 item 5: per-round suspect sets that are bounded by
// f, exclude the owner, and are totally ordered by containment.
//
// The object is the substrate for Theorem 4.1's and Theorem 4.3's simulation
// of synchronous rounds in an asynchronous system.
package snapshot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/swmr"
)

// Cell is one process's component of the snapshot object.
type Cell struct {
	// Value is the last value Update wrote (Bottom if never updated).
	Value core.Value

	// Seq counts the owner's Updates; 0 means never updated.
	Seq int

	// View is the embedded snapshot the owner took during its last
	// Update; scanners return it when they observe the owner perform two
	// complete Updates (the helping path).
	View []Cell
}

// Object is one process's handle to a named atomic snapshot object. All
// processes sharing a swmr execution and a name operate on the same object.
type Object struct {
	proc *swmr.Proc
	name string
}

// New returns process p's handle to the snapshot object called name.
func New(p *swmr.Proc, name string) *Object {
	return &Object{proc: p, name: name}
}

// reg is the register name holding this object's cell.
func (o *Object) reg() string { return "snap:" + o.name }

// Update atomically (in the linearization sense) replaces the caller's
// component with v. It embeds a fresh scan into the written cell so that
// concurrent scanners can borrow it.
func (o *Object) Update(v core.Value) error {
	view, err := o.Scan()
	if err != nil {
		return err
	}
	cur, err := o.proc.Read(o.proc.Me, o.reg())
	if err != nil {
		return err
	}
	seq := 0
	if c, ok := cur.(Cell); ok {
		seq = c.Seq
	}
	return o.proc.Write(o.reg(), Cell{Value: v, Seq: seq + 1, View: view})
}

// Scan returns a linearizable snapshot of all n components. Components never
// updated have Seq 0 and Value Bottom.
//
// The implementation is the classic double collect with helping: if two
// successive collects agree on every sequence number the direct view is
// returned; otherwise any process observed to move twice since the scan
// began must have completed an entire Update inside the scan, and its
// embedded view (which is itself a valid snapshot taken inside our interval)
// is returned. At most n+1 collects are needed, so Scan is wait-free.
func (o *Object) Scan() ([]Cell, error) {
	n := o.proc.N
	baseline, err := o.collect()
	if err != nil {
		return nil, err
	}
	prev := baseline
	moved := make([]int, n)
	for {
		cur, err := o.collect()
		if err != nil {
			return nil, err
		}
		same := true
		for j := 0; j < n; j++ {
			if cur[j].Seq != prev[j].Seq {
				same = false
				moved[j]++
				if moved[j] >= 2 {
					// j completed a full Update strictly inside our
					// scan; its embedded view is a snapshot
					// linearizable within our interval.
					return cloneView(cur[j].View, n), nil
				}
			}
		}
		if same {
			return cur, nil
		}
		prev = cur
	}
}

// collect reads every component once (n register operations).
func (o *Object) collect() ([]Cell, error) {
	raw, err := o.proc.Collect(o.reg())
	if err != nil {
		return nil, err
	}
	out := make([]Cell, len(raw))
	for i, v := range raw {
		if c, ok := v.(Cell); ok {
			out[i] = c
		}
	}
	return out, nil
}

func cloneView(view []Cell, n int) []Cell {
	out := make([]Cell, n)
	copy(out, view)
	return out
}

// SeqVector extracts the per-process sequence numbers of a scan; two
// linearizable scans must have component-wise comparable vectors, which is
// what the tests check.
func SeqVector(view []Cell) []int {
	out := make([]int, len(view))
	for i, c := range view {
		out[i] = c.Seq
	}
	return out
}

// CompareSeqVectors returns -1, 0, or +1 when a ≤ b, a = b, or a ≥ b
// component-wise, and an error if the vectors are incomparable (which would
// disprove linearizability).
func CompareSeqVectors(a, b []int) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("snapshot: vector lengths %d vs %d", len(a), len(b))
	}
	le, ge := true, true
	for i := range a {
		if a[i] > b[i] {
			le = false
		}
		if a[i] < b[i] {
			ge = false
		}
	}
	switch {
	case le && ge:
		return 0, nil
	case le:
		return -1, nil
	case ge:
		return 1, nil
	default:
		return 0, fmt.Errorf("snapshot: incomparable scans %v and %v", a, b)
	}
}
