package snapshot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/swmr"
)

// RoundEmit computes the message process me emits at round r given the
// previous round's receptions (nil at round 1). received maps each process
// p_j ∉ D(i,r−1) to m_{j,r−1}; suspects is D(i,r−1).
type RoundEmit func(me core.PID, r int, received map[core.PID]core.Value, suspects core.Set) core.Value

// RoundOutcome is the result of running the snapshot round protocol.
type RoundOutcome struct {
	// Trace is the RRFD trace induced by the execution: Active at round r
	// is the set of processes that completed the round, Suspects[i] is
	// D(i,r), Deliver[i] the processes whose round-r value p_i read.
	Trace *core.Trace

	// Views[i][r-1] maps each delivered process to its round-r message,
	// for every round process i completed.
	Views map[core.PID][]map[core.PID]core.Value

	// Crashed is the set of processes crashed by the scheduler.
	Crashed core.Set
}

// procRecord is what each process body returns to the coordinator.
type procRecord struct {
	emitted int
	dsets   []core.Set
	views   []map[core.PID]core.Value
}

// roundCell is the register payload: the owner's per-round emissions.
type roundCell struct {
	round  int
	values []core.Value // values[r-1] is the round-r emission
}

// RunRounds executes rounds rounds of the snapshot-based iterated protocol
// of §2 item 5 over n processes with resilience f: in each round a process
// appends its round value to its snapshot component, then scans until at
// most f round-r values are missing. D(i,r) is the set of processes whose
// round-r value was missing from the deciding scan.
//
// The returned trace satisfies the AtomicSnapshot(f) predicate (eq. (3),
// self-inclusion, and containment-ordered suspect sets) — that is Theorem-
// level content of §2 item 5 and is validated in this package's tests.
//
// The scheduler configuration may crash at most f processes; more would
// block the survivors and trip swmr's step budget.
func RunRounds(n, f, rounds int, cfg swmr.Config, emit RoundEmit) (*RoundOutcome, error) {
	if emit == nil {
		emit = func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return fmt.Sprintf("p%d@r%d", me, r)
		}
	}
	if len(cfg.Crash) > f {
		return nil, fmt.Errorf("snapshot: %d crashes exceed resilience f=%d", len(cfg.Crash), f)
	}

	// Each body writes only its own slot; swmr.Run returning after every
	// body has finished gives the happens-before edge for reading them.
	recs := make([]*procRecord, n)
	out, err := swmr.Run(n, cfg, func(p *swmr.Proc) (core.Value, error) {
		rec := &procRecord{}
		recs[p.Me] = rec
		obj := New(p, "rounds")
		var prevMsgs map[core.PID]core.Value
		prevSus := core.NewSet(n)
		var mine []core.Value
		for r := 1; r <= rounds; r++ {
			v := emit(p.Me, r, prevMsgs, prevSus)
			mine = append(mine, v)
			if err := obj.Update(roundCell{round: r, values: mine}); err != nil {
				return rec, err
			}
			rec.emitted = r
			for {
				view, err := obj.Scan()
				if err != nil {
					return rec, err
				}
				present := core.NewSet(n)
				msgs := make(map[core.PID]core.Value, n)
				for j, c := range view {
					cell, ok := c.Value.(roundCell)
					if !ok || cell.round < r {
						continue
					}
					present.Add(core.PID(j))
					msgs[core.PID(j)] = cell.values[r-1]
				}
				if n-present.Count() <= f {
					d := present.Complement()
					rec.dsets = append(rec.dsets, d)
					rec.views = append(rec.views, msgs)
					prevMsgs, prevSus = msgs, d
					break
				}
			}
		}
		return rec, nil
	})
	if err != nil {
		return nil, err
	}

	res := &RoundOutcome{
		Trace:   core.NewTrace(n),
		Views:   make(map[core.PID][]map[core.PID]core.Value, n),
		Crashed: out.Crashed,
	}
	for i := 0; i < n; i++ {
		if recs[i] == nil {
			recs[i] = &procRecord{}
		}
		res.Views[core.PID(i)] = recs[i].views
	}

	for r := 1; r <= rounds; r++ {
		rec := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if len(recs[i].dsets) >= r {
				rec.Active.Add(pid)
				rec.Suspects[i] = recs[i].dsets[r-1]
				rec.Deliver[i] = recs[i].dsets[r-1].Complement()
			} else {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				if out.Crashed.Has(pid) {
					rec.Crashed.Add(pid)
				}
			}
		}
		if rec.Active.Empty() {
			break
		}
		res.Trace.Append(rec)
	}
	return res, nil
}
