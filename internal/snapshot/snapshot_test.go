package snapshot

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/swmr"
)

// runScanners runs n processes that each perform updates ops Updates
// interleaved with scans, and returns every scan's sequence vector.
func runScanners(t *testing.T, n, updates int, seed int64) [][]int {
	t.Helper()
	var mu sync.Mutex
	var vectors [][]int
	_, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(seed)}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "obj")
		for u := 0; u < updates; u++ {
			if err := obj.Update(int(p.Me)*100 + u); err != nil {
				return nil, err
			}
			view, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			mu.Lock()
			vectors = append(vectors, SeqVector(view))
			mu.Unlock()
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vectors
}

func TestScanBasic(t *testing.T) {
	out, err := swmr.Run(2, swmr.Config{}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "obj")
		if err := obj.Update(int(p.Me) + 1); err != nil {
			return nil, err
		}
		// Scan until both components are visible.
		for {
			view, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			if view[0].Seq > 0 && view[1].Seq > 0 {
				return []core.Value{view[0].Value, view[1].Value}, nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range out.Values {
		vals := v.([]core.Value)
		if vals[0] != 1 || vals[1] != 2 {
			t.Fatalf("process %d saw %v", p, vals)
		}
	}
}

func TestScansAreTotallyOrdered(t *testing.T) {
	// Linearizability of snapshots: every pair of scans anywhere in the
	// execution must be comparable component-wise.
	for seed := int64(0); seed < 25; seed++ {
		vectors := runScanners(t, 4, 3, seed)
		for i := 0; i < len(vectors); i++ {
			for j := i + 1; j < len(vectors); j++ {
				if _, err := CompareSeqVectors(vectors[i], vectors[j]); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
}

func TestScanSelfInclusion(t *testing.T) {
	// After my Update completes, my own component must appear in my scan.
	_, err := swmr.Run(3, swmr.Config{Chooser: swmr.Seeded(9)}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "obj")
		for u := 1; u <= 3; u++ {
			if err := obj.Update(u); err != nil {
				return nil, err
			}
			view, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			if view[p.Me].Seq < u {
				return nil, &selfError{me: p.Me, want: u, got: view[p.Me].Seq}
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type selfError struct {
	me        core.PID
	want, got int
}

func (e *selfError) Error() string {
	return "scan by the updater missed its own update"
}

func TestScanUnderCrash(t *testing.T) {
	// One process crashes mid-protocol; the others' scans stay
	// linearizable and terminate.
	var mu sync.Mutex
	var vectors [][]int
	out, err := swmr.Run(3, swmr.Config{
		Chooser: swmr.Seeded(3),
		Crash:   map[core.PID]int{2: 7},
	}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "obj")
		for u := 0; u < 3; u++ {
			if err := obj.Update(u); err != nil {
				return nil, err
			}
			view, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			mu.Lock()
			vectors = append(vectors, SeqVector(view))
			mu.Unlock()
		}
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != "done" || out.Values[1] != "done" {
		t.Fatalf("survivors did not finish: %v / %v", out.Values, out.Errs)
	}
	for i := 0; i < len(vectors); i++ {
		for j := i + 1; j < len(vectors); j++ {
			if _, err := CompareSeqVectors(vectors[i], vectors[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestExploreSmallSnapshotLinearizable(t *testing.T) {
	// Exhaustively model-check an updater/scanner pair: p0 performs one
	// update, p1 scans twice concurrently. In every schedule all scans
	// must be comparable, p0's own update must be visible to its embedded
	// machinery, and p1's observed seq must be monotone across its scans.
	count, err := swmr.Explore(500_000, func(ch swmr.Chooser) error {
		var mu sync.Mutex
		var vectors [][]int
		_, err := swmr.Run(2, swmr.Config{Chooser: ch}, func(p *swmr.Proc) (core.Value, error) {
			obj := New(p, "obj")
			if p.Me == 0 {
				return nil, obj.Update("a")
			}
			v1, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			v2, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			if v2[0].Seq < v1[0].Seq {
				return nil, &selfError{me: p.Me}
			}
			mu.Lock()
			vectors = append(vectors, SeqVector(v1), SeqVector(v2))
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			return err
		}
		for i := 0; i < len(vectors); i++ {
			for j := i + 1; j < len(vectors); j++ {
				if _, err := CompareSeqVectors(vectors[i], vectors[j]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("after %d schedules: %v", count, err)
	}
	if count < 100 {
		t.Fatalf("suspiciously few schedules explored: %d", count)
	}
	t.Logf("explored %d schedules exhaustively", count)
}

func TestCompareSeqVectors(t *testing.T) {
	tests := []struct {
		a, b    []int
		want    int
		wantErr bool
	}{
		{[]int{1, 2}, []int{1, 2}, 0, false},
		{[]int{1, 1}, []int{1, 2}, -1, false},
		{[]int{2, 2}, []int{1, 2}, 1, false},
		{[]int{1, 2}, []int{2, 1}, 0, true},
		{[]int{1}, []int{1, 2}, 0, true},
	}
	for _, tt := range tests {
		got, err := CompareSeqVectors(tt.a, tt.b)
		if tt.wantErr != (err != nil) {
			t.Errorf("Compare(%v,%v) err = %v", tt.a, tt.b, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
