package snapshot

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/swmr"
)

// BenchmarkUpdateScan measures the wait-free snapshot's cost as n grows
// (each Update embeds a Scan; each Scan is ≥ 2 collects of n reads).
func BenchmarkUpdateScan(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := swmr.Run(n, swmr.Config{Chooser: swmr.Seeded(int64(i))},
					func(p *swmr.Proc) (core.Value, error) {
						obj := New(p, "o")
						if err := obj.Update(int(p.Me)); err != nil {
							return nil, err
						}
						_, err := obj.Scan()
						return nil, err
					})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.Steps)/float64(n), "memops/proc")
			}
		})
	}
}

// BenchmarkRounds measures one iterated-snapshot round (§2 item 5).
func BenchmarkRounds(b *testing.B) {
	n, f, rounds := 5, 2, 3
	steps := 0
	runs := 0
	for i := 0; i < b.N; i++ {
		out, err := RunRounds(n, f, rounds, swmr.Config{Chooser: swmr.Seeded(int64(i))}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out.Trace.Len() != rounds {
			b.Fatal("short trace")
		}
		runs++
		steps += rounds
	}
	_ = steps
	_ = runs
}
