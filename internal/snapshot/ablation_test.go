package snapshot

// Ablation: WHY the snapshot object embeds views and helps (Afek et al.).
// A plain double collect — return when two consecutive collects agree — is
// correct but only obstruction-free: a continually-moving writer starves
// the scanner, and the scan cost grows with the writer's update count. The
// helping path caps any scan at ~n+1 collects.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/swmr"
)

// scanNoHelp is the ablated scan: double collect without helping. It
// returns the view and the number of collects it needed.
func (o *Object) scanNoHelp(maxCollects int) ([]Cell, int, error) {
	prev, err := o.collect()
	if err != nil {
		return nil, 1, err
	}
	for c := 2; c <= maxCollects; c++ {
		cur, err := o.collect()
		if err != nil {
			return nil, c, err
		}
		same := true
		for j := range cur {
			if cur[j].Seq != prev[j].Seq {
				same = false
				break
			}
		}
		if same {
			return cur, c, nil
		}
		prev = cur
	}
	return nil, maxCollects, fmt.Errorf("snapshot: no clean double collect within %d collects", maxCollects)
}

// interferingChooser paces the writer (p0) so that it completes roughly one
// full Update (about seven register operations at n = 2) between any two of
// the scanner's operations — the worst case for a double collect, which
// then never sees two quiet consecutive collects until the writer runs dry.
func interferingChooser() swmr.Chooser {
	turn := 0
	return func(step int, runnable []core.PID) int {
		turn++
		want := core.PID(0)
		if turn%8 == 0 {
			want = 1
		}
		for i, p := range runnable {
			if p == want {
				return i
			}
		}
		return 0
	}
}

// runAblation runs p0 performing `updates` updates against p1 scanning with
// or without helping, and returns the scanner's collect count.
func runAblation(t testing.TB, updates int, helping bool) int {
	collects := 0
	_, err := swmr.Run(2, swmr.Config{Chooser: interferingChooser()}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "abl")
		if p.Me == 0 {
			for u := 0; u < updates; u++ {
				if err := obj.Update(u); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		if helping {
			if _, err := obj.Scan(); err != nil {
				return nil, err
			}
			// Scan's internal collect count is bounded by its
			// moved-twice rule (≤ n+2); termination under the same
			// interference is the point. Mark the helping path.
			collects = -1
			return nil, nil
		}
		_, c, err := obj.scanNoHelp(10 * updates)
		collects = c
		return nil, err
	})
	if err != nil {
		t.Fatal(err)
	}
	return collects
}

func TestHelpingBoundsScanCost(t *testing.T) {
	// Without helping, the interfering writer makes the scanner's collect
	// count grow with the number of updates...
	low := runAblation(t, 4, false)
	high := runAblation(t, 12, false)
	if high <= low {
		t.Fatalf("no-help scan cost did not grow with interference: %d then %d", low, high)
	}
	// ...while the helping scan terminates regardless (its internal bound
	// is moved-twice, at most n+2 collects — termination is the
	// assertion).
	if c := runAblation(t, 12, true); c != -1 {
		t.Fatalf("helping scan did not run: %d", c)
	}
}

func TestNoHelpScanStarvesUnderBudget(t *testing.T) {
	// Pinning the failure mode: with a tight collect budget the no-help
	// scan gives up while the writer is still moving.
	_, err := swmr.Run(2, swmr.Config{Chooser: interferingChooser()}, func(p *swmr.Proc) (core.Value, error) {
		obj := New(p, "abl")
		if p.Me == 0 {
			for u := 0; u < 50; u++ {
				if err := obj.Update(u); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		_, _, err := obj.scanNoHelp(6)
		if err == nil {
			return nil, fmt.Errorf("no-help scan unexpectedly finished under continual interference")
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanHelpingVsNoHelp(b *testing.B) {
	for _, updates := range []int{4, 16} {
		b.Run(fmt.Sprintf("nohelp/updates=%d", updates), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total += runAblation(b, updates, false)
			}
			b.ReportMetric(float64(total)/float64(b.N), "collects/scan")
		})
		b.Run(fmt.Sprintf("helping/updates=%d", updates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAblation(b, updates, true)
			}
		})
	}
}
