package snapshot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/swmr"
)

func TestRunRoundsSatisfiesItem5Predicate(t *testing.T) {
	// §2 item 5: the snapshot round protocol's trace must satisfy
	// eq. (3) + self-inclusion + containment-ordered suspect sets.
	n, f, rounds := 5, 2, 4
	for seed := int64(0); seed < 15; seed++ {
		out, err := RunRounds(n, f, rounds, swmr.Config{Chooser: swmr.Seeded(seed)}, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Trace.Len() != rounds {
			t.Fatalf("seed %d: trace has %d rounds", seed, out.Trace.Len())
		}
		if err := predicate.AtomicSnapshot(f).Check(out.Trace); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, out.Trace)
		}
	}
}

func TestRunRoundsDeliversMessages(t *testing.T) {
	// Each delivered value must be exactly the sender's round-r emission.
	n, f, rounds := 4, 1, 3
	emit := func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
		return int(me)*10 + r
	}
	out, err := RunRounds(n, f, rounds, swmr.Config{Chooser: swmr.Seeded(2)}, emit)
	if err != nil {
		t.Fatal(err)
	}
	for pid, views := range out.Views {
		for r, msgs := range views {
			for from, v := range msgs {
				want := int(from)*10 + (r + 1)
				if v != want {
					t.Fatalf("p%d round %d: message from %d = %v, want %d", pid, r+1, from, v, want)
				}
			}
			if _, ok := msgs[pid]; !ok {
				t.Fatalf("p%d round %d: missing own message", pid, r+1)
			}
		}
	}
}

func TestRunRoundsWithCrash(t *testing.T) {
	// With one crash (≤ f) the survivors complete all rounds and the
	// trace still satisfies the predicate.
	n, f, rounds := 4, 1, 4
	out, err := RunRounds(n, f, rounds, swmr.Config{
		Chooser: swmr.Seeded(5),
		Crash:   map[core.PID]int{3: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := predicate.AtomicSnapshot(f).Check(out.Trace); err != nil {
		t.Fatalf("%v\n%s", err, out.Trace)
	}
	last := out.Trace.Round(rounds)
	if last == nil {
		t.Fatal("missing final round")
	}
	for _, p := range []core.PID{0, 1, 2} {
		if !last.Active.Has(p) {
			t.Fatalf("survivor %d did not complete round %d", p, rounds)
		}
	}
	if !out.Crashed.Has(3) {
		t.Fatal("crash not reported")
	}
}

func TestRunRoundsRejectsTooManyCrashes(t *testing.T) {
	_, err := RunRounds(4, 1, 2, swmr.Config{
		Crash: map[core.PID]int{2: 0, 3: 0},
	}, nil)
	if err == nil {
		t.Fatal("expected rejection of crashes > f")
	}
}

func TestRunRoundsFullInformationChaining(t *testing.T) {
	// The emit callback receives the previous round's messages; check the
	// chaining works by propagating and aggregating values.
	n, f, rounds := 4, 1, 2
	emit := func(me core.PID, r int, received map[core.PID]core.Value, _ core.Set) core.Value {
		if r == 1 {
			return 1
		}
		sum := 0
		for _, v := range received {
			sum += v.(int)
		}
		return sum
	}
	out, err := RunRounds(n, f, rounds, swmr.Config{Chooser: swmr.Seeded(11)}, emit)
	if err != nil {
		t.Fatal(err)
	}
	// Round-2 emissions are counts of round-1 messages received: between
	// n−f and n.
	for pid, views := range out.Views {
		if len(views) < 2 {
			t.Fatalf("p%d completed %d rounds", pid, len(views))
		}
		v := views[1][pid].(int)
		if v < n-f || v > n {
			t.Fatalf("p%d round-2 emission %d outside [%d,%d]", pid, v, n-f, n)
		}
	}
}
