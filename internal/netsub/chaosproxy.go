package netsub

import (
	"bufio"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/obs"
)

// ChaosListener is the socket-level chaos shim: a net.Listener proxy
// that interposes a frame-aware pump on every accepted connection and
// applies a faultnet.Plan to the data frames crossing it — drop,
// duplicate, delay, send-omission and partition, plus connection resets
// — against REAL connections. The same Plan data that drives the virtual
// substrate's injector drives the proxy, so a verdict found on sockets
// can be cross-validated against faultnet on the identical plan.
//
// Determinism: each connection gets its own injector compiled from the
// plan, and the injector's step input is the per-link data-frame index,
// so for a fixed plan the fate of the k-th frame from p to q is the same
// on every run regardless of scheduling. (Partition windows are indexed
// by frame count, not wall time; a window with Until 0 — never heals —
// is therefore exactly reproducible, which is what the deterministic
// cross-validation scenario uses.) Control frames (hello, heartbeats,
// acks) always pass through: the shim attacks the protocol's messages,
// not the pool's plumbing.
type ChaosListener struct {
	net.Listener

	// plan is the fault model; owner the pid of the node behind this
	// listener (the "to" side of every decision).
	plan  faultnet.Plan
	owner core.PID
	cfg   ChaosConfig
}

// ChaosConfig tunes the shim.
type ChaosConfig struct {
	// StepMillis maps one faultnet delay step to wall milliseconds;
	// 0 means 2ms.
	StepMillis int

	// ResetEvery, when positive, tears the underlying connection down
	// after every ResetEvery-th data frame — the "resets" fault the
	// virtual substrate cannot express. The dialer's pool redials with
	// backoff and the stream resumes.
	ResetEvery int

	// Observer, when non-nil, receives "sockchaos.drop", ".delay",
	// ".duplicate" and ".reset" events (round -1, pid = owner).
	Observer obs.Observer
}

func (c ChaosConfig) stepMillis() time.Duration {
	if c.StepMillis <= 0 {
		return 2 * time.Millisecond
	}
	return time.Duration(c.StepMillis) * time.Millisecond
}

// WrapListener interposes the chaos shim on ln, which fronts the node
// owner. Connections accepted through the returned listener have plan
// applied to their inbound data frames.
func WrapListener(ln net.Listener, plan faultnet.Plan, owner core.PID, cfg ChaosConfig) *ChaosListener {
	return &ChaosListener{Listener: ln, plan: plan, owner: owner, cfg: cfg}
}

// Accept accepts a real connection and splices the chaos pump between it
// and the node.
func (cl *ChaosListener) Accept() (net.Conn, error) {
	real, err := cl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	inner, outer := net.Pipe()
	p := &pump{cl: cl, real: real, inner: inner}
	go p.forward()
	go p.backward()
	return outer, nil
}

// pump carries one connection's two directions: forward parses and
// perturbs sender→owner frames; backward relays owner→sender bytes
// (heartbeat acks) untouched.
type pump struct {
	cl    *ChaosListener
	real  net.Conn // the sender's side
	inner net.Conn // the node's side (pipe peer of what Accept returned)

	// wmu serializes frame writes to inner so a delayed copy fired from
	// a timer can never interleave inside another frame.
	wmu sync.Mutex
	// timers tracks in-flight delayed deliveries for teardown.
	timers sync.WaitGroup
}

// forward is the perturbed direction. The injector and frame index are
// per connection: a redialed connection restarts its sequence, which
// keeps every decision a pure function of the plan and the frame index.
func (p *pump) forward() {
	defer func() {
		p.timers.Wait()
		p.inner.Close()
		p.real.Close()
	}()
	br := bufio.NewReaderSize(p.real, 32<<10)
	var scratch []byte
	inj := p.cl.plan.Injector()
	from, step, sinceReset := core.PID(-1), 0, 0
	for {
		f, err := ReadFrame(br, &scratch)
		if err != nil {
			return
		}
		// Re-encode from the parsed frame: the scratch buffer is reused
		// by the next read, and delayed copies outlive this iteration.
		buf, err := AppendFrame(nil, f.Kind, append([]byte(nil), f.Payload...))
		if err != nil {
			return
		}
		if f.Kind == FrameHello {
			if h, err := decodeHello(f.Payload); err == nil {
				from = h.pid
			}
			if !p.write(buf) {
				return
			}
			continue
		}
		if f.Kind != FrameData || from < 0 {
			if !p.write(buf) {
				return
			}
			continue
		}
		act := inj.OnSend(step, from, p.cl.owner)
		step++
		if len(act.Deliveries) == 0 {
			p.event("sockchaos.drop", map[string]any{"from": int(from), "frame": step - 1, "reason": act.Reason})
			continue
		}
		if len(act.Deliveries) > 1 {
			p.event("sockchaos.duplicate", map[string]any{"from": int(from), "frame": step - 1, "copies": len(act.Deliveries)})
		}
		for _, d := range act.Deliveries {
			if d <= 0 {
				if !p.write(buf) {
					return
				}
				continue
			}
			p.event("sockchaos.delay", map[string]any{"from": int(from), "frame": step - 1, "steps": d})
			p.timers.Add(1)
			delayed := buf
			time.AfterFunc(time.Duration(d)*p.cl.cfg.stepMillis(), func() {
				defer p.timers.Done()
				p.write(delayed)
			})
		}
		if re := p.cl.cfg.ResetEvery; re > 0 {
			if sinceReset++; sinceReset >= re {
				p.event("sockchaos.reset", map[string]any{"from": int(from), "frame": step - 1})
				return
			}
		}
	}
}

// backward relays the node's bytes (heartbeat acks) to the sender.
func (p *pump) backward() {
	buf := make([]byte, 32<<10)
	for {
		n, err := p.inner.Read(buf)
		if n > 0 {
			if _, werr := p.real.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	p.real.Close()
	p.inner.Close()
}

// write delivers one whole frame to the node side, serialized against
// delayed copies. net.Pipe writes block until read, so a write deadline
// bounds a stuck node; false means the splice is dead.
func (p *pump) write(buf []byte) bool {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.inner.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := p.inner.Write(buf)
	return err == nil
}

func (p *pump) event(kind string, fields map[string]any) {
	if p.cl.cfg.Observer != nil {
		p.cl.cfg.Observer.Event(kind, -1, int(p.cl.owner), fields)
	}
}

// WrapAll wraps n freshly bound loopback listeners with the shim, one
// per process, ready for RoundsConfig.Listeners.
func WrapAll(n int, plan faultnet.Plan, cfg ChaosConfig) ([]net.Listener, error) {
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, err
		}
		lns[i] = WrapListener(ln, plan, core.PID(i), cfg)
	}
	return lns, nil
}
