package netsub

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

func mustFrame(t *testing.T, kind FrameKind, payload []byte) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, kind, payload)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return buf
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		kind    FrameKind
		payload []byte
	}{
		{FrameHello, appendHello(nil, hello{pid: 2, n: 5, incarnation: 1})},
		{FrameHeartbeat, []byte{0x80, 0x01}},
		{FrameHeartbeatAck, nil},
		{FrameData, bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, c := range cases {
		buf := mustFrame(t, c.kind, c.payload)
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%s: DecodeFrame: %v", c.kind, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d", c.kind, n, len(buf))
		}
		if f.Kind != c.kind || !bytes.Equal(f.Payload, c.payload) {
			t.Fatalf("%s: round-trip mismatch", c.kind)
		}
	}
}

func TestDecodeFrameErrorTaxonomy(t *testing.T) {
	good := mustFrame(t, FrameData, []byte("hello"))

	var trunc *TruncatedFrameError
	var corrupt *CorruptFrameError
	var oversize *OversizeFrameError

	// Short header and short body are both "wait for more bytes".
	if _, _, err := DecodeFrame(good[:3]); !errors.As(err, &trunc) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := DecodeFrame(good[:len(good)-1]); !errors.As(err, &trunc) {
		t.Fatalf("short body: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if _, _, err := DecodeFrame(bad); !errors.As(err, &corrupt) || corrupt.Field != "magic" {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append(bad[:0], good...)
	bad[2] = 99
	if _, _, err := DecodeFrame(bad); !errors.As(err, &corrupt) || corrupt.Field != "kind" {
		t.Fatalf("bad kind: %v", err)
	}

	bad = append(bad[:0], good...)
	bad[3] = 1
	if _, _, err := DecodeFrame(bad); !errors.As(err, &corrupt) || corrupt.Field != "flags" {
		t.Fatalf("bad flags: %v", err)
	}

	bad = append(bad[:0], good...)
	bad[4] = 0xFF // length field far above MaxFramePayload
	if _, _, err := DecodeFrame(bad); !errors.As(err, &oversize) {
		t.Fatalf("oversize length: %v", err)
	}

	bad = append(bad[:0], good...)
	bad[headerSize] ^= 0x01 // flip a payload bit
	if _, _, err := DecodeFrame(bad); !errors.As(err, &corrupt) || corrupt.Field != "crc" {
		t.Fatalf("payload corruption: %v", err)
	}
}

func TestAppendFrameRefusesOversize(t *testing.T) {
	var oversize *OversizeFrameError
	if _, err := AppendFrame(nil, FrameData, make([]byte, MaxFramePayload+1)); !errors.As(err, &oversize) {
		t.Fatalf("want OversizeFrameError, got %v", err)
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream []byte
	stream = append(stream, mustFrame(t, FrameData, []byte("one"))...)
	stream = append(stream, mustFrame(t, FrameHeartbeat, []byte{7})...)
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte

	f, err := ReadFrame(br, &scratch)
	if err != nil || f.Kind != FrameData || string(f.Payload) != "one" {
		t.Fatalf("frame 1: %v %v", f, err)
	}
	f, err = ReadFrame(br, &scratch)
	if err != nil || f.Kind != FrameHeartbeat {
		t.Fatalf("frame 2: %v %v", f, err)
	}
	if _, err = ReadFrame(br, &scratch); err != io.EOF {
		t.Fatalf("clean EOF: %v", err)
	}

	// Garbage at the stream head is terminal, not a hang: the corrupt
	// header is rejected before its length field can drive a read.
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0xFF}
	br = bufio.NewReader(bytes.NewReader(garbage))
	var corrupt *CorruptFrameError
	if _, err := ReadFrame(br, &scratch); !errors.As(err, &corrupt) {
		t.Fatalf("garbage header: %v", err)
	}

	// A frame cut off mid-body is a truncation.
	cut := mustFrame(t, FrameData, []byte("truncate me"))
	br = bufio.NewReader(bytes.NewReader(cut[:len(cut)-3]))
	var trunc *TruncatedFrameError
	if _, err := ReadFrame(br, &scratch); !errors.As(err, &trunc) {
		t.Fatalf("mid-frame EOF: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	values := []core.Value{
		nil,
		0,
		-1,
		1 << 40,
		"",
		"p3@r7",
		[]byte{0, 1, 2},
		true,
		false,
		RoundMsg{Round: 12, Value: "payload"},
		RoundMsg{Round: 1, Value: RoundMsg{Round: 2, Value: 99}},
	}
	for _, v := range values {
		buf, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("AppendValue(%v): %v", v, err)
		}
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d", v, n, len(buf))
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round-trip: got %#v, want %#v", got, v)
		}
	}
}

func TestValueRejectsUnsupported(t *testing.T) {
	var unsupported *UnsupportedTypeError
	if _, err := AppendValue(nil, 3.14); !errors.As(err, &unsupported) {
		t.Fatalf("float: %v", err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	var corrupt *CorruptFrameError
	bad := [][]byte{
		{},                  // empty
		{0xEE},              // unknown tag
		{tagBool, 2},        // bool out of range
		{tagBool},           // bool missing byte
		{tagString, 0xFF},   // unterminated length varint
		{tagString, 5, 'a'}, // length beyond buffer
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); !errors.As(err, &corrupt) {
			t.Fatalf("DecodeValue(% X): %v", b, err)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := hello{pid: 3, n: 7, incarnation: 2}
	got, err := decodeHello(appendHello(nil, h))
	if err != nil || got != h {
		t.Fatalf("got %+v, %v", got, err)
	}
	var corrupt *CorruptFrameError
	if _, err := decodeHello([]byte{99, 1, 2, 3}); !errors.As(err, &corrupt) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := decodeHello(nil); !errors.As(err, &corrupt) {
		t.Fatalf("empty: %v", err)
	}
}
