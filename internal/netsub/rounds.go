package netsub

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
	"repro/internal/reliablelink"
)

// RoundsConfig tunes a round-protocol execution over the network
// substrate (the in-process RunRounds harness and, field by field, the
// multi-process rrfdsim mode).
type RoundsConfig struct {
	// Node is the per-node Config template; Me, N, Addrs and Listener are
	// filled in per process. Its Observer and Hist are shared by all
	// nodes, which the obs layer supports.
	Node Config

	// Listeners, when non-nil, are the n pre-bound listeners to adopt —
	// the hook the socket chaos shim uses to interpose on every
	// connection. nil means bind n fresh loopback listeners.
	Listeners []net.Listener

	// Watchdog is how long a process waits within one round before it
	// gives the round up and records every still-missing sender as
	// suspected for the round (the D(i,r) entries) — the wall-clock
	// analogue of reliablelink's WatchdogSteps. 0 means 2s.
	Watchdog time.Duration

	// Linger is how long a finished process keeps its node up so slower
	// peers can still hear its last round. 0 means 200ms.
	Linger time.Duration
}

func (c RoundsConfig) watchdog() time.Duration {
	if c.Watchdog <= 0 {
		return 2 * time.Second
	}
	return c.Watchdog
}

func (c RoundsConfig) linger() time.Duration {
	if c.Linger <= 0 {
		return 200 * time.Millisecond
	}
	return c.Linger
}

// RunReport is the structured diagnosis of a networked execution,
// mirroring reliablelink.RunReport so chaos verdicts and diagnostics
// stay comparable across substrates: who stalled, on whom, in which
// round, and how much transport work the pool did.
type RunReport struct {
	// Stalls lists every watchdog firing, ordered by (process, round).
	// The Step field of each stall is a millisecond tick of that node's
	// clock, not a scheduler step.
	Stalls []reliablelink.Stall

	// PerProc holds each node's transport statistics.
	PerProc []Stats

	// Sheds, Reconnects and Evictions aggregate PerProc.
	Sheds, Reconnects, Evictions int64

	// Millis is the slowest node's clock at the end of the run — the
	// wall-clock analogue of the scheduler step count.
	Millis int

	// Errs holds per-process body errors.
	Errs map[core.PID]error
}

// Stalled reports whether any round stalled anywhere.
func (r *RunReport) Stalled() bool { return len(r.Stalls) > 0 }

// String renders a multi-line diagnostic summary.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netsub: %dms, %d sheds, %d reconnects, %d evictions",
		r.Millis, r.Sheds, r.Reconnects, r.Evictions)
	for _, s := range r.Stalls {
		fmt.Fprintf(&b, "\n  %s", s)
	}
	return b.String()
}

// RunSubstrateRounds executes the §2 item 3 round protocol — broadcast,
// collect n−f current-round messages, watchdog the stragglers into
// D(i,r) — against any msgnet.Substrate. The SAME function body drives
// the virtual scheduler (where Clock ticks are steps) and the network
// substrate (where they are milliseconds): the protocol only ever sees
// absolute Clock deadlines, so lost, shed, and late messages degrade
// into suspicions identically on both. Returns the process's round
// record, its stalls, and any fatal error.
func RunSubstrateRounds(sub msgnet.Substrate, n, f, rounds, watchdogTicks, lingerTicks int, emit msgnet.RoundEmit, o obs.Observer) (*msgnet.RoundRec, []reliablelink.Stall, error) {
	if emit == nil {
		emit = func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return fmt.Sprintf("p%d@r%d", me, r)
		}
	}
	me := sub.PID()
	rec := &msgnet.RoundRec{}
	var stalls []reliablelink.Stall
	// future buffers messages from rounds ahead of ours.
	future := make(map[int]map[core.PID]core.Value)
	var prevMsgs map[core.PID]core.Value
	prevSus := core.NewSet(n)
	for r := 1; r <= rounds; r++ {
		v := emit(me, r, prevMsgs, prevSus)
		if err := sub.Broadcast(RoundMsg{Round: r, Value: v}); err != nil {
			return rec, stalls, err
		}
		got := future[r]
		if got == nil {
			got = make(map[core.PID]core.Value)
		}
		delete(future, r)
		deadline := sub.Clock() + watchdogTicks
		for len(got) < n-f {
			env, ok, err := sub.RecvTimeout(deadline)
			if err != nil {
				return rec, stalls, err
			}
			if !ok {
				// Watchdog: give the round up and suspect whoever is
				// still missing.
				missing := make([]core.PID, 0, n-len(got))
				for i := 0; i < n; i++ {
					if _, have := got[core.PID(i)]; !have {
						missing = append(missing, core.PID(i))
					}
				}
				stalls = append(stalls, reliablelink.Stall{P: me, Round: r, Missing: missing, Step: sub.Clock()})
				if o != nil {
					o.Event("netsub.watchdog", r, int(me), map[string]any{"missing": len(missing), "tick": sub.Clock()})
				}
				break
			}
			m, isRound := env.Payload.(RoundMsg)
			if !isRound {
				return rec, stalls, fmt.Errorf("netsub: foreign payload %T", env.Payload)
			}
			switch {
			case m.Round == r:
				got[env.From] = m.Value
			case m.Round > r: // early: buffer
				if future[m.Round] == nil {
					future[m.Round] = make(map[core.PID]core.Value)
				}
				future[m.Round][env.From] = m.Value
			default: // late: discard
			}
		}
		d := core.FullSet(n)
		for p := range got {
			d.Remove(p)
		}
		rec.Dsets = append(rec.Dsets, d)
		rec.Views = append(rec.Views, got)
		prevMsgs, prevSus = got, d
	}
	// Linger: keep receiving (and discarding) so our queued frames drain
	// and slower peers can still complete their last rounds against us.
	until := sub.Clock() + lingerTicks
	for sub.Clock() < until {
		if _, _, err := sub.RecvTimeout(until); err != nil {
			break
		}
	}
	return rec, stalls, nil
}

// RunRounds is the in-process harness: it brings up n loopback nodes
// (or adopts cfg.Listeners, typically chaos-wrapped), runs
// RunSubstrateRounds on each in its own goroutine, and assembles the
// same RoundOutcome shape the virtual substrates produce — so predicate
// checking and the chaos verdicts run unchanged on real sockets. The
// RunReport is always non-nil, even alongside an error.
func RunRounds(n, f, rounds int, cfg RoundsConfig, emit msgnet.RoundEmit) (*msgnet.RoundOutcome, *RunReport, error) {
	rep := &RunReport{PerProc: make([]Stats, n), Errs: make(map[core.PID]error)}
	if n <= 0 || f < 0 || f >= n || rounds < 0 {
		return nil, rep, fmt.Errorf("netsub: invalid shape n=%d f=%d rounds=%d", n, f, rounds)
	}

	lns := cfg.Listeners
	if lns == nil {
		lns = make([]net.Listener, n)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				for _, l := range lns[:i] {
					l.Close()
				}
				return nil, rep, fmt.Errorf("netsub: bind: %w", err)
			}
			lns[i] = ln
		}
	} else if len(lns) != n {
		return nil, rep, fmt.Errorf("netsub: %d listeners for %d processes", len(lns), n)
	}
	addrs := make([]string, n)
	for i, ln := range lns {
		addrs[i] = ln.Addr().String()
	}

	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nc := cfg.Node
		nc.Me, nc.N, nc.Addrs, nc.Listener = core.PID(i), n, addrs, lns[i]
		nd, err := Start(nc)
		if err != nil {
			for _, prev := range nodes[:i] {
				prev.Close()
			}
			for _, ln := range lns[i:] {
				ln.Close()
			}
			return nil, rep, err
		}
		nodes[i] = nd
	}

	watchdogTicks := int(cfg.watchdog() / time.Millisecond)
	lingerTicks := int(cfg.linger() / time.Millisecond)
	recs := make([]*msgnet.RoundRec, n)
	stalls := make([][]reliablelink.Stall, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, st, err := RunSubstrateRounds(nodes[i], n, f, rounds, watchdogTicks, lingerTicks, emit, cfg.Node.Observer)
			recs[i], stalls[i] = rec, st
			if err != nil {
				mu.Lock()
				rep.Errs[core.PID(i)] = err
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	for i, nd := range nodes {
		if ms := nd.Clock(); ms > rep.Millis {
			rep.Millis = ms
		}
		rep.PerProc[i] = nd.Stats()
		nd.Close()
	}
	for i := 0; i < n; i++ {
		rep.Sheds += rep.PerProc[i].Sheds
		rep.Reconnects += rep.PerProc[i].Reconnects
		rep.Evictions += rep.PerProc[i].Evictions
		rep.Stalls = append(rep.Stalls, stalls[i]...)
	}
	sort.Slice(rep.Stalls, func(a, b int) bool {
		if rep.Stalls[a].P != rep.Stalls[b].P {
			return rep.Stalls[a].P < rep.Stalls[b].P
		}
		return rep.Stalls[a].Round < rep.Stalls[b].Round
	})
	if len(rep.Errs) == 0 {
		rep.Errs = nil
	}

	var err error
	for p, e := range rep.Errs {
		err = fmt.Errorf("netsub: p%d: %w", p, e)
		break
	}
	return msgnet.AssembleRoundOutcome(n, rounds, recs, core.NewSet(n), rep.Millis), rep, err
}
