package netsub

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, never accept a frame it cannot re-encode byte-identically,
// and classify every rejection as one of the three structured decode
// errors — truncated (wait for more bytes), oversize, or corrupt (tear
// the stream down). The seed corpus under testdata/fuzz/FuzzDecodeFrame
// pins the interesting shapes: valid frames of every kind, truncations
// at each boundary, and single-bit corruptions of each header field.
func FuzzDecodeFrame(f *testing.F) {
	valid := func(kind FrameKind, payload []byte) []byte {
		buf, err := AppendFrame(nil, kind, payload)
		if err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		return buf
	}
	hello := valid(FrameHello, appendHello(nil, hello{pid: 1, n: 3, incarnation: 1}))
	body, _ := AppendValue(nil, RoundMsg{Round: 2, Value: "p1@r2"})
	data := valid(FrameData, body)

	f.Add([]byte{})
	f.Add(hello)
	f.Add(data)
	f.Add(valid(FrameHeartbeat, []byte{0x80, 0x02}))
	f.Add(valid(FrameHeartbeatAck, nil))
	f.Add(data[:headerSize-1])        // header cut short
	f.Add(data[:len(data)-1])         // trailer cut short
	f.Add(append([]byte{0}, data...)) // misaligned stream

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			var trunc *TruncatedFrameError
			var oversize *OversizeFrameError
			var corrupt *CorruptFrameError
			if !errors.As(err, &trunc) && !errors.As(err, &oversize) && !errors.As(err, &corrupt) {
				t.Fatalf("unstructured decode error %T: %v", err, err)
			}
			return
		}
		if n < headerSize+trailerSize || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if len(fr.Payload) > MaxFramePayload {
			t.Fatalf("accepted %d-byte payload", len(fr.Payload))
		}
		// An accepted frame must re-encode to exactly the bytes decoded.
		re, err := AppendFrame(nil, fr.Kind, fr.Payload)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got % X\nwant % X", re, b[:n])
		}
		// A data frame's payload must decode to a value or be rejected
		// with a structured error — never a panic.
		if fr.Kind == FrameData {
			if _, _, err := DecodeValue(fr.Payload); err != nil {
				var corrupt *CorruptFrameError
				if !errors.As(err, &corrupt) {
					t.Fatalf("unstructured value error %T: %v", err, err)
				}
			}
		}
	})
}
