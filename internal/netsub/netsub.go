// Package netsub is the real-network substrate: the same node-facing
// surface as the virtual-clock msgnet scheduler (msgnet.Substrate),
// implemented with length-prefixed, checksummed frames over real net.Conn
// between OS processes — loopback TCP in tests and benchmarks, separate
// processes under `rrfdsim -substrate tcp`.
//
// Where msgnet plays the asynchrony adversary with a Chooser, here the
// environment is the adversary: real delay, loss (through the socket
// chaos shim), peer slowness and process death. The peer-pool discipline
// keeps every resource bounded and every failure structured:
//
//   - one outbound connection per peer carries this node's sends; one
//     accepted inbound connection per peer carries its receives, so
//     redial logic is strictly an outbound concern;
//   - per-peer bounded send queues are the in-flight cap: when a queue
//     is full the send is shed with a *BackpressureError, never buffered
//     without bound — on a network a shed is a lost message, and the
//     round watchdog above degrades it into a D(i,r) suspicion;
//   - broken connections are redialed with capped, seeded-jitter
//     exponential backoff (internal/backoff), and heartbeats bound how
//     long a dead connection can linger: an inbound conn silent for
//     several heartbeat intervals is torn down;
//   - a per-peer flow monitor watches drain rate and evicts a peer whose
//     queue stays backed up with nothing draining for EvictAfter
//     consecutive windows — a persistently slow peer is cut off
//     (*PeerEvictedError) instead of dragging the mesh down.
//
// The substrate clock is milliseconds since node start; RecvTimeout
// deadlines are absolute ticks on it, exactly as msgnet deadlines are
// absolute steps. RunRounds runs the same round protocol as
// reliablelink.RunRounds with a wall-clock watchdog, so stalls degrade
// into suspicions identically and RunReports stay comparable.
package netsub

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// Config shapes one node of the mesh. Me, N and Addrs are required;
// every other field has a usable default.
type Config struct {
	// Me is this process's identity; N the mesh size.
	Me core.PID
	N  int

	// Addrs maps each pid to its listen address ("host:port").
	Addrs []string

	// Incarnation tags this node's hello frames; 1 if unset. A restarted
	// process announces incarnation 2+, and receivers replace the old
	// inbound connection with the new one (newest wins).
	Incarnation int

	// Listener, when non-nil, is the pre-bound listener to accept on
	// (the multi-process harness passes an inherited socket); nil means
	// listen on Addrs[Me].
	Listener net.Listener

	// Dial, when non-nil, replaces the default TCP dialer — the hook the
	// socket chaos shim and the tests use.
	Dial func(addr string) (net.Conn, error)

	// SendQueue is the per-peer in-flight cap: the bounded frame queue
	// between Send and the peer's writer. A full queue sheds with a
	// *BackpressureError. 0 means 64.
	SendQueue int

	// RecvQueue bounds the received-envelope queue shared by all inbound
	// connections; when full, inbound readers block, which backpressures
	// the kernel buffers and ultimately the senders. 0 means 256.
	RecvQueue int

	// HeartbeatEvery is the outbound heartbeat cadence; an inbound
	// connection silent for 4 of these intervals is declared dead. 0
	// means 500ms; negative disables heartbeats and the silence bound.
	HeartbeatEvery time.Duration

	// WriteTimeout bounds one frame write; a blocked write past it tears
	// the connection down for redial. 0 means 2s.
	WriteTimeout time.Duration

	// DialTimeout bounds one dial and the inbound hello wait. 0 means 2s.
	DialTimeout time.Duration

	// Redial is the reconnect backoff ladder in units of RedialUnit;
	// zero means {Initial: 1, Cap: 64, Jitter: 0.2} — 25ms doubling to
	// 1.6s with ±20% seeded jitter.
	Redial backoff.Policy

	// RedialUnit scales Redial intervals; 0 means 25ms.
	RedialUnit time.Duration

	// Seed derives each peer's jitter stream; 0 means 1.
	Seed int64

	// FlowWindow is the flow monitor's sampling period. 0 means 500ms.
	FlowWindow time.Duration

	// EvictAfter is how many consecutive windows a peer's queue may sit
	// non-empty with nothing drained before the peer is evicted. 0 means
	// 4; negative disables eviction.
	EvictAfter int

	// Observer, when non-nil, receives "netsub.*" events: conn_open,
	// conn_close, reconnect, dial_fail, hello, backpressure, evict,
	// frame_error. Substrate events use round -1.
	Observer obs.Observer

	// Hist, when non-nil, receives the per-peer queue-depth
	// ("netsub_queue_depth") and heartbeat round-trip
	// ("netsub_rtt_ns") distributions.
	Hist *hist.Registry
}

func (c *Config) fill() error {
	if c.N <= 0 {
		return fmt.Errorf("netsub: invalid mesh size %d", c.N)
	}
	if c.Me < 0 || int(c.Me) >= c.N {
		return fmt.Errorf("netsub: pid %d outside mesh of %d", c.Me, c.N)
	}
	if len(c.Addrs) != c.N {
		return fmt.Errorf("netsub: %d addrs for %d processes", len(c.Addrs), c.N)
	}
	if c.Incarnation <= 0 {
		c.Incarnation = 1
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 64
	}
	if c.RecvQueue <= 0 {
		c.RecvQueue = 256
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Redial == (backoff.Policy{}) {
		c.Redial = backoff.Policy{Initial: 1, Cap: 64, Jitter: 0.2}
	}
	if c.RedialUnit <= 0 {
		c.RedialUnit = 25 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FlowWindow <= 0 {
		c.FlowWindow = 500 * time.Millisecond
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 4
	}
	if c.Dial == nil {
		timeout := c.DialTimeout
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return nil
}

// Stats counts one node's transport work. All fields are cumulative.
type Stats struct {
	// FramesSent counts data frames handed to peer writers and written;
	// FramesReceived counts data frames delivered to the recv queue.
	FramesSent, FramesReceived int64

	// Sheds counts sends dropped by backpressure or eviction.
	Sheds int64

	// Dials, DialFailures and Reconnects count outbound connection work;
	// a reconnect is a successful dial after an established connection
	// broke.
	Dials, DialFailures, Reconnects int64

	// Evictions counts peers the flow monitor cut off.
	Evictions int64

	// HellosAccepted counts inbound connections that completed the
	// handshake.
	HellosAccepted int64
}

// Node is one process's endpoint in the mesh. It satisfies
// msgnet.Substrate, so protocol bodies written against the interface run
// unchanged on the virtual scheduler and on real sockets.
type Node struct {
	cfg   Config
	me    core.PID
	n     int
	start time.Time
	ln    net.Listener

	recvQ chan msgnet.Envelope
	peers []*peer // indexed by pid; nil at Me
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	inMu    sync.Mutex
	inbound map[core.PID]net.Conn

	hRTT, hQueue *hist.Histogram

	framesSent, framesRecv, sheds atomic.Int64
	dials, dialFails, reconnects  atomic.Int64
	evictions, hellos             atomic.Int64
}

var _ msgnet.Substrate = (*Node)(nil)

// Start brings a node up: it binds (or adopts) the listener and begins
// dialing every peer. Peers that are not up yet are retried with backoff;
// Start itself never waits for them.
func Start(cfg Config) (*Node, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Me])
		if err != nil {
			return nil, fmt.Errorf("netsub: listen %s: %w", cfg.Addrs[cfg.Me], err)
		}
	}
	nd := &Node{
		cfg:     cfg,
		me:      cfg.Me,
		n:       cfg.N,
		start:   time.Now(),
		ln:      ln,
		recvQ:   make(chan msgnet.Envelope, cfg.RecvQueue),
		peers:   make([]*peer, cfg.N),
		done:    make(chan struct{}),
		inbound: make(map[core.PID]net.Conn),
	}
	if cfg.Hist != nil {
		nd.hRTT = cfg.Hist.Get("netsub_rtt_ns")
		nd.hQueue = cfg.Hist.Get("netsub_queue_depth")
	}
	nd.wg.Add(1)
	go nd.acceptLoop()
	for i := 0; i < cfg.N; i++ {
		if core.PID(i) == cfg.Me {
			continue
		}
		p := newPeer(nd, core.PID(i), cfg.Addrs[i])
		nd.peers[i] = p
		nd.wg.Add(2)
		go p.run()
		go p.flowMonitor()
	}
	return nd, nil
}

// Addr returns the listener's bound address (useful with ":0" configs).
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// PID implements msgnet.Substrate.
func (nd *Node) PID() core.PID { return nd.me }

// Size implements msgnet.Substrate.
func (nd *Node) Size() int { return nd.n }

// Clock implements msgnet.Substrate: milliseconds since node start.
func (nd *Node) Clock() int { return int(time.Since(nd.start) / time.Millisecond) }

// nanos is the histogram clock.
func (nd *Node) nanos() int64 { return time.Since(nd.start).Nanoseconds() }

// Stats returns a snapshot of the node's transport counters.
func (nd *Node) Stats() Stats {
	return Stats{
		FramesSent:     nd.framesSent.Load(),
		FramesReceived: nd.framesRecv.Load(),
		Sheds:          nd.sheds.Load(),
		Dials:          nd.dials.Load(),
		DialFailures:   nd.dialFails.Load(),
		Reconnects:     nd.reconnects.Load(),
		Evictions:      nd.evictions.Load(),
		HellosAccepted: nd.hellos.Load(),
	}
}

// Evicted reports whether the flow monitor has cut peer p off.
func (nd *Node) Evicted(p core.PID) bool {
	if p < 0 || int(p) >= nd.n || nd.peers[p] == nil {
		return false
	}
	return nd.peers[p].evicted.Load()
}

// Send implements msgnet.Substrate: it frames the payload and hands it
// to the peer's bounded queue. A full queue sheds with a
// *BackpressureError; an evicted peer sheds with a *PeerEvictedError. A
// shed message is a lost message, not a broken node — callers at the
// round layer treat it like any other loss the watchdog will surface.
func (nd *Node) Send(to core.PID, payload core.Value) error {
	if to < 0 || int(to) >= nd.n {
		return fmt.Errorf("netsub: send to invalid process %d", to)
	}
	select {
	case <-nd.done:
		return ErrClosed
	default:
	}
	if to == nd.me {
		env := msgnet.Envelope{From: nd.me, To: nd.me, Payload: payload}
		select {
		case nd.recvQ <- env:
			nd.framesSent.Add(1)
			nd.framesRecv.Add(1)
			return nil
		case <-nd.done:
			return ErrClosed
		default:
			nd.sheds.Add(1)
			return &BackpressureError{To: to, Queued: cap(nd.recvQ), Cap: cap(nd.recvQ)}
		}
	}
	body, err := AppendValue(nil, payload)
	if err != nil {
		return err
	}
	buf, err := AppendFrame(make([]byte, 0, headerSize+len(body)+trailerSize), FrameData, body)
	if err != nil {
		return err
	}
	return nd.peers[to].send(buf)
}

// Broadcast implements msgnet.Substrate: it sends payload to every
// process including the sender. Sheds (backpressure, eviction) do not
// abort the broadcast — on a real network a partial broadcast is the
// normal failure mode, and the missing receivers surface as suspicions —
// but closed-node and encoding errors do.
func (nd *Node) Broadcast(payload core.Value) error {
	for i := 0; i < nd.n; i++ {
		if err := nd.Send(core.PID(i), payload); err != nil && !shed(err) {
			return err
		}
	}
	return nil
}

// Recv implements msgnet.Substrate.
func (nd *Node) Recv() (msgnet.Envelope, error) {
	select {
	case env := <-nd.recvQ:
		return env, nil
	default:
	}
	select {
	case env := <-nd.recvQ:
		return env, nil
	case <-nd.done:
		return msgnet.Envelope{}, ErrClosed
	}
}

// RecvTimeout implements msgnet.Substrate: the deadline is an absolute
// tick of the node's millisecond clock. A delivery always wins over an
// expired deadline.
func (nd *Node) RecvTimeout(deadline int) (msgnet.Envelope, bool, error) {
	select {
	case env := <-nd.recvQ:
		return env, true, nil
	default:
	}
	wait := nd.start.Add(time.Duration(deadline) * time.Millisecond)
	timer := time.NewTimer(time.Until(wait))
	defer timer.Stop()
	select {
	case env := <-nd.recvQ:
		return env, true, nil
	case <-timer.C:
		return msgnet.Envelope{}, false, nil
	case <-nd.done:
		return msgnet.Envelope{}, false, ErrClosed
	}
}

// Close tears the node down: the listener, every connection and every
// goroutine. It is idempotent and safe to call concurrently with any
// operation; in-flight operations return ErrClosed.
func (nd *Node) Close() error {
	nd.once.Do(func() {
		close(nd.done)
		nd.ln.Close()
		for _, p := range nd.peers {
			if p != nil {
				p.closeConn("node closed")
			}
		}
		nd.inMu.Lock()
		for _, c := range nd.inbound {
			c.Close()
		}
		nd.inMu.Unlock()
	})
	nd.wg.Wait()
	return nil
}

// closed reports whether Close has begun.
func (nd *Node) closed() bool {
	select {
	case <-nd.done:
		return true
	default:
		return false
	}
}

// acceptLoop owns the listener.
func (nd *Node) acceptLoop() {
	defer nd.wg.Done()
	for {
		c, err := nd.ln.Accept()
		if err != nil {
			if nd.closed() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		nd.wg.Add(1)
		go nd.serveInbound(c)
	}
}

// serveInbound handshakes and then pumps one peer's frames into the recv
// queue. The hello must arrive within DialTimeout; after that, a
// connection silent for 4 heartbeat intervals is declared dead.
func (nd *Node) serveInbound(c net.Conn) {
	defer nd.wg.Done()
	defer c.Close()
	br := bufio.NewReaderSize(c, 32<<10)
	var scratch []byte

	c.SetReadDeadline(time.Now().Add(nd.cfg.DialTimeout))
	f, err := ReadFrame(br, &scratch)
	if err != nil || f.Kind != FrameHello {
		nd.event("netsub.frame_error", map[string]any{"reason": "bad handshake"})
		return
	}
	h, err := decodeHello(f.Payload)
	if err != nil || int(h.pid) >= nd.n || h.pid < 0 || h.pid == nd.me || h.n != nd.n {
		nd.event("netsub.frame_error", map[string]any{"reason": "bad hello"})
		return
	}
	nd.hellos.Add(1)
	nd.event("netsub.hello", map[string]any{"peer": int(h.pid), "incarnation": h.incarnation})
	nd.event("netsub.conn_open", map[string]any{"peer": int(h.pid), "dir": "in"})

	// Newest wins: a reconnecting or restarted peer replaces its old
	// inbound connection, which is closed out from under its reader.
	nd.inMu.Lock()
	if old := nd.inbound[h.pid]; old != nil {
		old.Close()
	}
	nd.inbound[h.pid] = c
	nd.inMu.Unlock()
	defer func() {
		nd.inMu.Lock()
		if nd.inbound[h.pid] == c {
			delete(nd.inbound, h.pid)
		}
		nd.inMu.Unlock()
	}()

	silence := 4 * nd.cfg.HeartbeatEvery
	for {
		if silence > 0 {
			c.SetReadDeadline(time.Now().Add(silence))
		} else {
			c.SetReadDeadline(time.Time{})
		}
		f, err := ReadFrame(br, &scratch)
		if err != nil {
			if !nd.closed() {
				nd.event("netsub.conn_close", map[string]any{"peer": int(h.pid), "dir": "in", "reason": closeReason(err)})
			}
			return
		}
		switch f.Kind {
		case FrameData:
			v, _, err := DecodeValue(f.Payload)
			if err != nil {
				nd.event("netsub.frame_error", map[string]any{"reason": err.Error()})
				return
			}
			select {
			case nd.recvQ <- msgnet.Envelope{From: h.pid, To: nd.me, Payload: v}:
				nd.framesRecv.Add(1)
			case <-nd.done:
				return
			}
		case FrameHeartbeat:
			// Echo on the same connection so the sender can measure RTT
			// without crossing into the outbound queue.
			ack, _ := AppendFrame(nil, FrameHeartbeatAck, f.Payload)
			c.SetWriteDeadline(time.Now().Add(nd.cfg.WriteTimeout))
			if _, err := c.Write(ack); err != nil {
				return
			}
		default:
			// Duplicate hellos and stray acks are ignored.
		}
	}
}

// event emits one substrate observer event (round -1, this node's pid).
func (nd *Node) event(kind string, fields map[string]any) {
	if nd.cfg.Observer != nil {
		nd.cfg.Observer.Event(kind, -1, int(nd.me), fields)
	}
}

// closeReason compresses an error to a stable reason tag for events.
func closeReason(err error) string {
	var ne net.Error
	switch {
	case errors.Is(err, net.ErrClosed):
		return "closed"
	case errors.As(err, &ne) && ne.Timeout():
		return "silence"
	default:
		var corrupt *CorruptFrameError
		var oversize *OversizeFrameError
		if errors.As(err, &corrupt) || errors.As(err, &oversize) {
			return "corrupt"
		}
		return "eof"
	}
}

// encodeHeartbeat builds a heartbeat frame carrying the node's
// nanosecond clock.
func (nd *Node) encodeHeartbeat() []byte {
	body := binary.AppendUvarint(nil, uint64(nd.nanos()))
	buf, _ := AppendFrame(nil, FrameHeartbeat, body)
	return buf
}
