package netsub

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/hist"
)

// TestSustainedOverloadEscalation drives a sender at a peer that accepts
// connections but never drains a byte, and pins the defense ladder in
// order: the bounded queue fills and sheds with BackpressureError first;
// only after the flow monitor has watched EvictAfter windows of zero
// progress does the peer escalate to PeerEvictedError — and from then on
// every send sheds immediately. The queue-depth histogram must show the
// saturation the sheds imply.
func TestSustainedOverloadEscalation(t *testing.T) {
	reg := hist.NewRegistry()
	var blackMu sync.Mutex
	var blackholes []net.Conn
	defer func() {
		blackMu.Lock()
		defer blackMu.Unlock()
		for _, c := range blackholes {
			c.Close()
		}
	}()

	const sendQueue = 4
	nodes := startMesh(t, 2, func(i int, c *Config) {
		c.SendQueue = sendQueue
		c.EvictAfter = 3
		c.FlowWindow = 10 * time.Millisecond
		c.WriteTimeout = 20 * time.Millisecond
		if i == 0 {
			c.Hist = reg
			// A synchronous pipe nobody reads: every write blocks until
			// the WriteTimeout, so the queue never truly drains — the
			// sustained-overload shape, without kernel-buffer slack.
			c.Dial = func(string) (net.Conn, error) {
				client, server := net.Pipe()
				blackMu.Lock()
				blackholes = append(blackholes, server)
				blackMu.Unlock()
				return client, nil
			}
		}
	})

	var sawBackpressure, sawEvicted bool
	deadline := time.Now().Add(10 * time.Second)
	for !sawEvicted {
		if time.Now().After(deadline) {
			t.Fatalf("flow monitor never evicted the stalled peer (backpressure seen: %v)", sawBackpressure)
		}
		err := nodes[0].Send(1, "overload")
		switch {
		case err == nil:
		case errors.Is(err, ErrBackpressure):
			if sawEvicted {
				t.Fatal("backpressure after eviction: the ladder must not de-escalate")
			}
			sawBackpressure = true
		case errors.Is(err, ErrEvicted):
			if !sawBackpressure {
				t.Fatal("evicted before a single backpressure shed: eviction must be the escalation, not the first response")
			}
			sawEvicted = true
		default:
			t.Fatalf("unexpected send error %v", err)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Post-eviction: structured error, permanently.
	err := nodes[0].Send(1, "after")
	var ev *PeerEvictedError
	if !errors.As(err, &ev) || ev.To != 1 || ev.Strikes < 3 {
		t.Fatalf("post-eviction send: %v (%+v)", err, ev)
	}
	if !nodes[0].Evicted(1) {
		t.Fatal("Evicted(1) false after PeerEvictedError")
	}

	st := nodes[0].Stats()
	if st.Sheds == 0 {
		t.Fatalf("no sheds counted under sustained overload: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", st.Evictions)
	}

	// The depth histogram must reflect saturation: the enqueue that fills
	// the last slot records depth == cap (a racing writer pop can shave
	// one off the snapshot, so allow cap-1 as the floor).
	snap := reg.Get("netsub_queue_depth").Snapshot()
	if snap.Count == 0 {
		t.Fatal("netsub_queue_depth recorded nothing")
	}
	if snap.Max < sendQueue-1 {
		t.Fatalf("queue-depth max %d never approached the cap %d", snap.Max, sendQueue)
	}
}
