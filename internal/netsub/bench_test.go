package netsub

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkNetsubRoundTrip measures one request/response exchange
// between two loopback TCP nodes through the full pipeline — value
// codec, framing, bounded queue, writer goroutine, kernel socket,
// inbound reader, recv queue — the per-message cost floor of the
// network substrate.
func BenchmarkNetsubRoundTrip(b *testing.B) {
	mk := func(me core.PID, addrs []string, lns []net.Listener) *Node {
		cfg := Config{
			Me: me, N: 2, Addrs: addrs, Listener: lns[me],
			HeartbeatEvery: -1, // isolate the data path
			SendQueue:      256,
			RecvQueue:      256,
			WriteTimeout:   5 * time.Second,
		}
		nd, err := Start(cfg)
		if err != nil {
			b.Fatalf("start p%d: %v", me, err)
		}
		return nd
	}
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	a, c := mk(0, addrs, lns), mk(1, addrs, lns)
	defer a.Close()
	defer c.Close()

	// Echo server: every value p0 sends comes straight back.
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			for {
				err := c.Send(0, env.Payload)
				if err == nil {
					break
				}
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}
	}()

	// Warm the connections so the benchmark measures steady state.
	if err := a.Send(1, 0); err != nil {
		b.Fatalf("warm-up send: %v", err)
	}
	if _, err := a.Recv(); err != nil {
		b.Fatalf("warm-up recv: %v", err)
	}

	msg := RoundMsg{Round: 1, Value: "bench-payload"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Send(1, msg) != nil {
		}
		if _, err := a.Recv(); err != nil {
			b.Fatalf("recv: %v", err)
		}
	}
}
