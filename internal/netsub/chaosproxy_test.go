package netsub

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
	"repro/internal/reliablelink"
)

func proxiedConfig(t *testing.T, n int, plan faultnet.Plan, ccfg ChaosConfig) RoundsConfig {
	t.Helper()
	lns, err := WrapAll(n, plan, ccfg)
	if err != nil {
		t.Fatalf("WrapAll: %v", err)
	}
	return RoundsConfig{
		Node:      testConfig(),
		Listeners: lns,
		Watchdog:  2 * time.Second,
		Linger:    100 * time.Millisecond,
	}
}

func TestProxyPassThrough(t *testing.T) {
	// An empty plan must be invisible: the same fault-free guarantees as
	// the raw substrate, through the full hello/heartbeat/data pipeline.
	const n, f, rounds = 3, 1, 2
	out, rep, err := RunRounds(n, f, rounds, proxiedConfig(t, n, faultnet.Plan{Seed: 1}, ChaosConfig{}), emitPID)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if rep.Stalled() {
		t.Fatalf("fault-free proxy run stalled: %s", rep)
	}
	if out.Trace.Len() != rounds {
		t.Fatalf("trace length %d, want %d", out.Trace.Len(), rounds)
	}
}

func TestProxyDropAllSuspectsEveryone(t *testing.T) {
	// Rate-1.0 drop kills every data frame while heartbeats keep the
	// connections "healthy": each process completes rounds only through
	// the watchdog, suspecting everyone but itself — the proxy attacks
	// messages, not plumbing, and the protocol degrades exactly as the
	// RRFD model says it must.
	const n, f, rounds = 3, 1, 2
	plan := faultnet.Plan{Seed: 3, Components: []faultnet.Component{{Kind: faultnet.Drop, Rate: 1}}}
	cfg := proxiedConfig(t, n, plan, ChaosConfig{})
	cfg.Watchdog = 300 * time.Millisecond
	out, rep, err := RunRounds(n, f, rounds, cfg, emitPID)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if !rep.Stalled() {
		t.Fatal("total loss did not stall any round")
	}
	if out.Trace.Len() != rounds {
		t.Fatalf("trace length %d, want %d (deadlock instead of degradation?)", out.Trace.Len(), rounds)
	}
	for r := 1; r <= rounds; r++ {
		rec := out.Trace.Round(r)
		for i := 0; i < n; i++ {
			want := core.FullSet(n)
			want.Remove(core.PID(i))
			if rec.Suspects[i].String() != want.String() {
				t.Fatalf("round %d: D(%d,r) = %s, want %s", r, i, rec.Suspects[i], want)
			}
		}
	}
}

// TestProxyPartitionCrossValidatesFaultnet is the cross-validation at
// trace level: the SAME never-healing partition plan is run once through
// the virtual substrate's injector (reliablelink over msgnet) and once
// through the socket proxy over real TCP, and the induced suspicion
// structure must agree — the islanded process suspects the mainland and
// vice versa, round for round, on both substrates.
func TestProxyPartitionCrossValidatesFaultnet(t *testing.T) {
	const n, f, rounds = 3, 1, 2
	plan := faultnet.Plan{Seed: 1, Components: []faultnet.Component{{
		Kind:   faultnet.Partition,
		Groups: [][]core.PID{{0}, {1, 2}},
		Name:   "island-p0",
	}}}

	check := func(name string, out *msgnet.RoundOutcome) {
		t.Helper()
		if out.Trace.Len() != rounds {
			t.Fatalf("%s: trace length %d, want %d", name, out.Trace.Len(), rounds)
		}
		for r := 1; r <= rounds; r++ {
			rec := out.Trace.Round(r)
			// The islanded p0 suspects the whole mainland...
			if d := rec.Suspects[0]; !d.Has(1) || !d.Has(2) {
				t.Fatalf("%s round %d: D(0,r) = %s, want {1,2}", name, r, d)
			}
			// ...and the mainland pins exactly {0}: p1 and p2 reach the
			// n-f quorum together, so only the island is suspected.
			for _, i := range []int{1, 2} {
				if d := rec.Suspects[i]; !d.Has(0) || d.Count() != 1 {
					t.Fatalf("%s round %d: D(%d,r) = %s, want {0}", name, r, i, d)
				}
			}
		}
	}

	vout, vrep, err := reliablelink.RunRounds(n, f, rounds, reliablelink.RoundsConfig{
		Net:           msgnet.Config{Chooser: msgnet.Seeded(11), Faults: plan.Injector()},
		Link:          reliablelink.Config{RetransmitAfter: 4, RetransmitCap: 8, MaxAttempts: 2},
		WatchdogSteps: 600,
		LingerSteps:   200,
	}, nil)
	if err != nil {
		t.Fatalf("virtual run: %v", err)
	}
	if !vrep.Stalled() {
		t.Fatal("virtual run did not stall across the partition")
	}
	check("virtual", vout)

	cfg := proxiedConfig(t, n, plan, ChaosConfig{})
	cfg.Watchdog = 400 * time.Millisecond
	nout, nrep, err := RunRounds(n, f, rounds, cfg, emitPID)
	if err != nil {
		t.Fatalf("tcp run: %v", err)
	}
	if !nrep.Stalled() {
		t.Fatal("tcp run did not stall across the partition")
	}
	check("tcp", nout)
}

func TestProxyResetRedials(t *testing.T) {
	// Connection resets every few frames force the pool through its
	// redial path mid-protocol; queued frames survive in the bounded
	// queue and flush after reconnect, so the rounds still complete.
	const n, f, rounds = 2, 1, 4
	cfg := proxiedConfig(t, n, faultnet.Plan{Seed: 5}, ChaosConfig{ResetEvery: 2})
	cfg.Node.RedialUnit = 2 * time.Millisecond
	out, rep, err := RunRounds(n, f, rounds, cfg, emitPID)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if out.Trace.Len() != rounds {
		t.Fatalf("trace length %d, want %d", out.Trace.Len(), rounds)
	}
	if rep.Reconnects == 0 {
		t.Fatalf("resets produced no reconnects: %s", rep)
	}
}

func TestProxyDeterministicPerSeed(t *testing.T) {
	// The fate of the k-th frame on a link is a pure function of the
	// plan: two runs with the same seeded drop plan must induce the same
	// per-round suspicion counts even though goroutine scheduling and
	// wall timing differ. (Rate 1.0 inside a window would be trivial, so
	// use a biased coin and compare outcomes structurally.)
	const n, f, rounds = 2, 1, 3
	plan := faultnet.Plan{Seed: 42, Components: []faultnet.Component{{Kind: faultnet.Drop, Rate: 1}}}
	shape := func() string {
		cfg := proxiedConfig(t, n, plan, ChaosConfig{})
		cfg.Watchdog = 250 * time.Millisecond
		out, _, err := RunRounds(n, f, rounds, cfg, emitPID)
		if err != nil {
			t.Fatalf("RunRounds: %v", err)
		}
		s := ""
		for r := 1; r <= out.Trace.Len(); r++ {
			rec := out.Trace.Round(r)
			for i := 0; i < n; i++ {
				s += rec.Suspects[i].String() + ";"
			}
		}
		return s
	}
	a, b := shape(), shape()
	if a != b {
		t.Fatalf("same plan, different induced traces:\n%s\n%s", a, b)
	}
}
