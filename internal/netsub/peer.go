package netsub

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// peer is one outbound lane of the pool: a bounded queue of encoded
// frames, a writer goroutine that owns dialing and the connection, and a
// flow monitor that evicts the peer if the queue stops draining.
type peer struct {
	nd   *Node
	to   core.PID
	addr string

	// q is the bounded in-flight queue; Send sheds when it is full.
	q chan []byte

	// connMu guards conn, the writer's current connection; closeConn uses
	// it to unblock the writer from outside (eviction, node close).
	connMu sync.Mutex
	conn   net.Conn

	evicted atomic.Bool
	strikes atomic.Int32

	// drained counts frames written since the flow monitor last looked.
	drained atomic.Int64
}

func newPeer(nd *Node, to core.PID, addr string) *peer {
	return &peer{nd: nd, to: to, addr: addr, q: make(chan []byte, nd.cfg.SendQueue)}
}

// send enqueues one encoded frame, shedding instead of blocking.
func (p *peer) send(buf []byte) error {
	if p.evicted.Load() {
		p.nd.sheds.Add(1)
		return &PeerEvictedError{To: p.to, Strikes: int(p.strikes.Load())}
	}
	select {
	case p.q <- buf:
		if p.nd.hQueue != nil {
			p.nd.hQueue.Record(int64(len(p.q)))
		}
		return nil
	default:
		p.nd.sheds.Add(1)
		p.nd.event("netsub.backpressure", map[string]any{"peer": int(p.to), "cap": cap(p.q)})
		return &BackpressureError{To: p.to, Queued: cap(p.q), Cap: cap(p.q)}
	}
}

// run is the writer loop: dial with capped seeded-jitter backoff, then
// serve the queue until the connection breaks, then dial again. It exits
// on node close or eviction.
func (p *peer) run() {
	defer p.nd.wg.Done()
	// Each (node, peer) pair gets its own deterministic jitter stream so
	// a thundering herd of redials decorrelates reproducibly.
	bo := p.nd.cfg.Redial.Seeded(p.nd.cfg.Seed ^ (int64(p.nd.me)<<16 | int64(p.to)))
	hadConn := false
	for {
		if p.nd.closed() || p.evicted.Load() {
			return
		}
		conn, err := p.dial()
		if err != nil {
			p.nd.dialFails.Add(1)
			p.nd.event("netsub.dial_fail", map[string]any{"peer": int(p.to), "err": err.Error()})
			if !p.sleep(bo.NextDuration(p.nd.cfg.RedialUnit)) {
				return
			}
			continue
		}
		bo.Reset()
		p.nd.dials.Add(1)
		if hadConn {
			p.nd.reconnects.Add(1)
			p.nd.event("netsub.reconnect", map[string]any{"peer": int(p.to)})
		}
		hadConn = true
		p.setConn(conn)
		p.nd.event("netsub.conn_open", map[string]any{"peer": int(p.to), "dir": "out"})
		reason := p.serve(conn)
		p.setConn(nil)
		conn.Close()
		if !p.nd.closed() {
			p.nd.event("netsub.conn_close", map[string]any{"peer": int(p.to), "dir": "out", "reason": reason})
		}
	}
}

// dial opens the connection and sends the hello identifying this node.
func (p *peer) dial() (net.Conn, error) {
	conn, err := p.nd.cfg.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	body := appendHello(nil, hello{pid: p.nd.me, n: p.nd.n, incarnation: p.nd.cfg.Incarnation})
	buf, _ := AppendFrame(nil, FrameHello, body)
	conn.SetWriteDeadline(time.Now().Add(p.nd.cfg.WriteTimeout))
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// serve drains the queue onto one live connection, interleaving
// heartbeats, until the connection breaks or the node closes. It returns
// a reason tag for the close event.
func (p *peer) serve(conn net.Conn) string {
	// The ack reader turns heartbeat echoes into RTT samples; it exits
	// when the connection is closed (here or by the remote).
	p.nd.wg.Add(1)
	go p.readAcks(conn)

	var hb <-chan time.Time
	if p.nd.cfg.HeartbeatEvery > 0 {
		t := time.NewTicker(p.nd.cfg.HeartbeatEvery)
		defer t.Stop()
		hb = t.C
	}
	for {
		select {
		case <-p.nd.done:
			return "closed"
		case buf := <-p.q:
			if !p.write(conn, buf) {
				return "write"
			}
			p.nd.framesSent.Add(1)
			p.drained.Add(1)
		case <-hb:
			if p.evicted.Load() {
				return "evicted"
			}
			if !p.write(conn, p.nd.encodeHeartbeat()) {
				return "write"
			}
		}
	}
}

// write puts one frame on the wire under the write deadline.
func (p *peer) write(conn net.Conn, buf []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(p.nd.cfg.WriteTimeout))
	_, err := conn.Write(buf)
	return err == nil
}

// readAcks consumes the return direction of the outbound connection —
// heartbeat acks only — and histograms round-trip times.
func (p *peer) readAcks(conn net.Conn) {
	defer p.nd.wg.Done()
	br := bufio.NewReader(conn)
	var scratch []byte
	for {
		f, err := ReadFrame(br, &scratch)
		if err != nil {
			return
		}
		if f.Kind != FrameHeartbeatAck {
			continue
		}
		sent, n := binary.Uvarint(f.Payload)
		if n <= 0 {
			continue
		}
		if rtt := p.nd.nanos() - int64(sent); rtt >= 0 && p.nd.hRTT != nil {
			p.nd.hRTT.Record(rtt)
		}
	}
}

// flowMonitor samples the queue every FlowWindow: a window in which the
// queue sat non-empty but nothing drained is a strike; EvictAfter
// consecutive strikes evict the peer permanently.
func (p *peer) flowMonitor() {
	defer p.nd.wg.Done()
	if p.nd.cfg.EvictAfter < 0 {
		return
	}
	t := time.NewTicker(p.nd.cfg.FlowWindow)
	defer t.Stop()
	for {
		select {
		case <-p.nd.done:
			return
		case <-t.C:
		}
		if p.evicted.Load() {
			return
		}
		if len(p.q) > 0 && p.drained.Swap(0) == 0 {
			if s := p.strikes.Add(1); int(s) >= p.nd.cfg.EvictAfter {
				p.evict(int(s))
				return
			}
		} else {
			p.strikes.Store(0)
		}
	}
}

// evict cuts the peer off: no more queuing, no more dialing. The writer
// is unblocked by closing its connection.
func (p *peer) evict(strikes int) {
	p.evicted.Store(true)
	p.nd.evictions.Add(1)
	p.nd.event("netsub.evict", map[string]any{"peer": int(p.to), "strikes": strikes})
	p.closeConn("evicted")
}

// setConn publishes the writer's current connection for closeConn.
func (p *peer) setConn(c net.Conn) {
	p.connMu.Lock()
	p.conn = c
	p.connMu.Unlock()
}

// closeConn closes the writer's current connection, if any, unblocking a
// stuck write or dial wait from outside the writer goroutine.
func (p *peer) closeConn(string) {
	p.connMu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.connMu.Unlock()
}

// sleep waits d or until the node closes or the peer is evicted,
// reporting whether the writer should continue.
func (p *peer) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.nd.done:
		return false
	case <-timer.C:
		return !p.evicted.Load()
	}
}
