package netsub

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Wire format. Every frame is length-prefixed and checksummed:
//
//	magic   uint16  0x52F0 ("RRFD net", big endian)
//	kind    uint8   frame kind
//	flags   uint8   reserved, must be 0
//	length  uint32  payload length, big endian
//	payload length bytes
//	crc32   uint32  IEEE over kind|flags|length|payload, big endian
//
// A reader that sees a bad magic, a non-zero flag byte, an oversized
// length, or a checksum mismatch cannot trust anything that follows on
// the stream — framing is lost — so decode errors are structured and
// terminal: the connection is torn down and redialed, which is exactly
// the recover-by-reconnect discipline of the peer pool.
const (
	frameMagic   = 0x52F0
	headerSize   = 8
	trailerSize  = 4
	maxTotalSize = headerSize + MaxFramePayload + trailerSize

	// MaxFramePayload bounds a frame's payload. A length field above it
	// is rejected before any allocation, so a corrupt or hostile length
	// cannot balloon memory.
	MaxFramePayload = 1 << 20
)

// FrameKind discriminates the frame types of the netsub wire protocol.
type FrameKind uint8

const (
	// FrameHello opens a connection: version, sender pid, mesh size,
	// incarnation. It is the first frame on every conn, both directions.
	FrameHello FrameKind = 1

	// FrameHeartbeat carries the sender's millisecond clock; the
	// receiver echoes it back in a FrameHeartbeatAck so the sender can
	// histogram round-trip times.
	FrameHeartbeat FrameKind = 2

	// FrameHeartbeatAck echoes a heartbeat's timestamp.
	FrameHeartbeatAck FrameKind = 3

	// FrameData carries one application value (see AppendValue).
	FrameData FrameKind = 4
)

func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "hello"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameHeartbeatAck:
		return "heartbeat-ack"
	case FrameData:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is one decoded wire frame. Payload aliases the decode input (or
// the read buffer); callers that retain it must copy.
type Frame struct {
	Kind    FrameKind
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. Payloads above MaxFramePayload are refused with an
// *OversizeFrameError (the encoder enforces the same bound decoders do).
func AppendFrame(dst []byte, kind FrameKind, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, &OversizeFrameError{Length: len(payload), Max: MaxFramePayload}
	}
	off := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, byte(kind), 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[off+2:])
	return binary.BigEndian.AppendUint32(dst, crc), nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. A short buffer yields a
// *TruncatedFrameError (wait for more bytes); everything else that fails
// yields an *OversizeFrameError or *CorruptFrameError (tear the stream
// down). The frame's payload aliases b.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < headerSize {
		return Frame{}, 0, &TruncatedFrameError{Need: headerSize, Got: len(b)}
	}
	if m := binary.BigEndian.Uint16(b); m != frameMagic {
		return Frame{}, 0, &CorruptFrameError{Field: "magic", Detail: fmt.Sprintf("0x%04X", m)}
	}
	kind := FrameKind(b[2])
	if kind < FrameHello || kind > FrameData {
		return Frame{}, 0, &CorruptFrameError{Field: "kind", Detail: kind.String()}
	}
	if b[3] != 0 {
		return Frame{}, 0, &CorruptFrameError{Field: "flags", Detail: fmt.Sprintf("0x%02X", b[3])}
	}
	length := binary.BigEndian.Uint32(b[4:])
	if length > MaxFramePayload {
		return Frame{}, 0, &OversizeFrameError{Length: int(length), Max: MaxFramePayload}
	}
	total := headerSize + int(length) + trailerSize
	if len(b) < total {
		return Frame{}, 0, &TruncatedFrameError{Need: total, Got: len(b)}
	}
	body := b[2 : headerSize+int(length)]
	want := binary.BigEndian.Uint32(b[headerSize+int(length):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return Frame{}, 0, &CorruptFrameError{Field: "crc", Detail: fmt.Sprintf("computed 0x%08X, stored 0x%08X", got, want)}
	}
	return Frame{Kind: kind, Payload: b[headerSize : headerSize+int(length)]}, total, nil
}

// ReadFrame reads exactly one frame from a buffered stream. The returned
// payload aliases an internal buffer valid until the next call with the
// same scratch. io.EOF at a frame boundary is returned as-is; EOF inside
// a frame surfaces as a *TruncatedFrameError.
func ReadFrame(br *bufio.Reader, scratch *[]byte) (Frame, error) {
	header, err := peekExactly(br, headerSize)
	if err != nil {
		return Frame{}, err
	}
	// Validate everything the header can tell us before trusting the
	// length field to drive a blocking read.
	if m := binary.BigEndian.Uint16(header); m != frameMagic {
		return Frame{}, &CorruptFrameError{Field: "magic", Detail: fmt.Sprintf("0x%04X", m)}
	}
	if k := FrameKind(header[2]); k < FrameHello || k > FrameData {
		return Frame{}, &CorruptFrameError{Field: "kind", Detail: k.String()}
	}
	if header[3] != 0 {
		return Frame{}, &CorruptFrameError{Field: "flags", Detail: fmt.Sprintf("0x%02X", header[3])}
	}
	length := binary.BigEndian.Uint32(header[4:])
	total := headerSize + int(length) + trailerSize
	if length > MaxFramePayload {
		return Frame{}, &OversizeFrameError{Length: int(length), Max: MaxFramePayload}
	}
	if cap(*scratch) < total {
		*scratch = make([]byte, total)
	}
	buf := (*scratch)[:total]
	if _, err := io.ReadFull(br, buf); err != nil {
		return Frame{}, &TruncatedFrameError{Need: total, Got: br.Buffered()}
	}
	f, _, err := DecodeFrame(buf)
	return f, err
}

// peekExactly peeks n bytes, mapping a mid-header EOF to a truncation
// error and a clean EOF (no bytes at all) to io.EOF.
func peekExactly(br *bufio.Reader, n int) ([]byte, error) {
	b, err := br.Peek(n)
	if err == nil {
		return b, nil
	}
	if len(b) == 0 && err == io.EOF {
		return nil, io.EOF
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, &TruncatedFrameError{Need: n, Got: len(b)}
	}
	return nil, err
}

// Value encoding: a one-byte tag followed by a tag-specific body. The
// substrate deliberately speaks a tiny closed vocabulary — the types the
// round protocols actually put on the wire — rather than a reflective
// codec, so a corrupt byte can never decode into an unexpected type.
const (
	tagNil      = 0x00
	tagInt      = 0x01 // zigzag varint
	tagString   = 0x02 // uvarint length + bytes
	tagBytes    = 0x03 // uvarint length + bytes
	tagBool     = 0x04 // one byte, 0 or 1
	tagRoundMsg = 0x05 // uvarint round + nested value
)

// RoundMsg is the round protocol's wire payload: the round number and
// the emitted value, mirroring the unexported roundMsg of msgnet and
// reliablelink on the network substrate.
type RoundMsg struct {
	Round int
	Value core.Value
}

// AppendValue appends the wire encoding of v to dst. Supported types:
// nil, int, string, []byte, bool, RoundMsg. Anything else is a caller
// bug and is reported as an *UnsupportedTypeError.
func AppendValue(dst []byte, v core.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case int:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, int64(x)), nil
	case string:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case []byte:
		dst = append(dst, tagBytes)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, tagBool, b), nil
	case RoundMsg:
		dst = append(dst, tagRoundMsg)
		dst = binary.AppendUvarint(dst, uint64(x.Round))
		return AppendValue(dst, x.Value)
	default:
		return dst, &UnsupportedTypeError{Value: v}
	}
}

// DecodeValue decodes one value from the front of b, returning it and
// the bytes consumed. Malformed bodies yield a *CorruptFrameError.
func DecodeValue(b []byte) (core.Value, int, error) {
	if len(b) == 0 {
		return nil, 0, &CorruptFrameError{Field: "value", Detail: "empty"}
	}
	switch b[0] {
	case tagNil:
		return nil, 1, nil
	case tagInt:
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return nil, 0, &CorruptFrameError{Field: "value", Detail: "bad varint"}
		}
		return int(v), 1 + n, nil
	case tagString:
		s, n, err := decodeBlob(b[1:], "string")
		if err != nil {
			return nil, 0, err
		}
		return string(s), 1 + n, nil
	case tagBytes:
		s, n, err := decodeBlob(b[1:], "bytes")
		if err != nil {
			return nil, 0, err
		}
		return append([]byte(nil), s...), 1 + n, nil
	case tagBool:
		if len(b) < 2 || b[1] > 1 {
			return nil, 0, &CorruptFrameError{Field: "value", Detail: "bad bool"}
		}
		return b[1] == 1, 2, nil
	case tagRoundMsg:
		r, n := binary.Uvarint(b[1:])
		if n <= 0 || r > uint64(MaxFramePayload) {
			return nil, 0, &CorruptFrameError{Field: "value", Detail: "bad round"}
		}
		inner, m, err := DecodeValue(b[1+n:])
		if err != nil {
			return nil, 0, err
		}
		return RoundMsg{Round: int(r), Value: inner}, 1 + n + m, nil
	default:
		return nil, 0, &CorruptFrameError{Field: "value", Detail: fmt.Sprintf("unknown tag 0x%02X", b[0])}
	}
}

func decodeBlob(b []byte, what string) ([]byte, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(MaxFramePayload) || uint64(len(b)-n) < l {
		return nil, 0, &CorruptFrameError{Field: "value", Detail: "bad " + what + " length"}
	}
	return b[n : n+int(l)], n + int(l), nil
}

// hello is the handshake payload.
type hello struct {
	pid         core.PID
	n           int
	incarnation int
}

const helloVersion = 1

func appendHello(dst []byte, h hello) []byte {
	dst = append(dst, helloVersion)
	dst = binary.AppendUvarint(dst, uint64(h.pid))
	dst = binary.AppendUvarint(dst, uint64(h.n))
	return binary.AppendUvarint(dst, uint64(h.incarnation))
}

func decodeHello(b []byte) (hello, error) {
	if len(b) == 0 || b[0] != helloVersion {
		return hello{}, &CorruptFrameError{Field: "hello", Detail: "bad version"}
	}
	rest := b[1:]
	var vals [3]uint64
	for i := range vals {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > 1<<20 {
			return hello{}, &CorruptFrameError{Field: "hello", Detail: "bad field"}
		}
		vals[i] = v
		rest = rest[n:]
	}
	return hello{pid: core.PID(vals[0]), n: int(vals[1]), incarnation: int(vals[2])}, nil
}
