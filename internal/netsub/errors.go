package netsub

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrClosed is returned from every operation on a closed node.
var ErrClosed = errors.New("netsub: node closed")

// ErrBackpressure is the sentinel matched (via errors.Is) by
// *BackpressureError.
var ErrBackpressure = errors.New("netsub: peer send queue full")

// ErrEvicted is the sentinel matched (via errors.Is) by *PeerEvictedError.
var ErrEvicted = errors.New("netsub: peer evicted")

// BackpressureError reports a shed send: the peer's bounded send queue
// was at its in-flight cap, and the substrate sheds rather than buffer
// without bound. On a real network a shed is indistinguishable from a
// lost message, and the round watchdog degrades it into a suspicion the
// same way.
type BackpressureError struct {
	// To is the congested peer.
	To core.PID

	// Queued is the queue depth at the shed (equal to Cap).
	Queued int

	// Cap is the peer's configured in-flight cap.
	Cap int
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("netsub: send to p%d shed: %d/%d frames in flight", e.To, e.Queued, e.Cap)
}

// Is reports that a BackpressureError is an ErrBackpressure.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// PeerEvictedError reports a send to a peer the flow monitor has evicted
// for persistent slowness; the pool no longer queues or dials for it.
type PeerEvictedError struct {
	// To is the evicted peer.
	To core.PID

	// Strikes is how many consecutive stalled flow windows evicted it.
	Strikes int
}

// Error implements error.
func (e *PeerEvictedError) Error() string {
	return fmt.Sprintf("netsub: p%d evicted after %d stalled flow windows", e.To, e.Strikes)
}

// Is reports that a PeerEvictedError is an ErrEvicted.
func (e *PeerEvictedError) Is(target error) bool { return target == ErrEvicted }

// shed reports whether err is a loss the substrate already accounts for
// (backpressure or eviction) rather than a failure of the caller's
// operation: the message won't arrive, and suspicion — not an error
// return — is how the round layer learns that.
func shed(err error) bool {
	return errors.Is(err, ErrBackpressure) || errors.Is(err, ErrEvicted)
}

// TruncatedFrameError reports a frame cut short: fewer bytes were
// available than the header (or the header's length field) requires. On
// a live stream it means the connection died mid-frame.
type TruncatedFrameError struct {
	// Need is the byte count the frame requires; Got what was present.
	Need, Got int
}

// Error implements error.
func (e *TruncatedFrameError) Error() string {
	return fmt.Sprintf("netsub: truncated frame: need %d bytes, have %d", e.Need, e.Got)
}

// OversizeFrameError reports a length field above MaxFramePayload — a
// corrupt or hostile frame rejected before any allocation.
type OversizeFrameError struct {
	// Length is the claimed payload length; Max the permitted bound.
	Length, Max int
}

// Error implements error.
func (e *OversizeFrameError) Error() string {
	return fmt.Sprintf("netsub: oversized frame: payload %d exceeds %d", e.Length, e.Max)
}

// CorruptFrameError reports a frame that failed structural validation:
// bad magic, unknown kind, non-zero flags, checksum mismatch, or an
// undecodable payload body.
type CorruptFrameError struct {
	// Field names what failed ("magic", "kind", "flags", "crc", "value",
	// "hello"); Detail carries the offending bytes or reason.
	Field, Detail string
}

// Error implements error.
func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("netsub: corrupt frame (%s: %s)", e.Field, e.Detail)
}

// UnsupportedTypeError reports an attempt to send a value outside the
// wire vocabulary — a caller bug, not a network condition.
type UnsupportedTypeError struct {
	Value core.Value
}

// Error implements error.
func (e *UnsupportedTypeError) Error() string {
	return fmt.Sprintf("netsub: unsupported wire type %T", e.Value)
}
