package netsub

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs/hist"
)

// testConfig is a Config tuned for fast tests: tight heartbeats and
// redial so failure paths fire in milliseconds.
func testConfig() Config {
	return Config{
		HeartbeatEvery: 20 * time.Millisecond,
		WriteTimeout:   500 * time.Millisecond,
		DialTimeout:    500 * time.Millisecond,
		RedialUnit:     2 * time.Millisecond,
		FlowWindow:     25 * time.Millisecond,
	}
}

// startMesh brings up n connected loopback nodes.
func startMesh(t *testing.T, n int, tweak func(i int, c *Config)) []*Node {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := testConfig()
		cfg.Me, cfg.N, cfg.Addrs, cfg.Listener = core.PID(i), n, addrs, lns[i]
		if tweak != nil {
			tweak(i, &cfg)
		}
		nd, err := Start(cfg)
		if err != nil {
			t.Fatalf("start p%d: %v", i, err)
		}
		nodes[i] = nd
		t.Cleanup(func() { nd.Close() })
	}
	return nodes
}

// recvFrom drains until a message from the wanted sender arrives.
func recvFrom(t *testing.T, nd *Node, from core.PID, within time.Duration) msgnet.Envelope {
	t.Helper()
	deadline := nd.Clock() + int(within/time.Millisecond)
	for {
		env, ok, err := nd.RecvTimeout(deadline)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !ok {
			t.Fatalf("no message from p%d within %v", from, within)
		}
		if env.From == from {
			return env
		}
	}
}

func TestSendRecvAcrossTCP(t *testing.T) {
	nodes := startMesh(t, 2, nil)
	values := []core.Value{42, "hi", []byte{1, 2}, true, nil, RoundMsg{Round: 3, Value: -7}}
	for _, v := range values {
		if err := nodes[0].Send(1, v); err != nil {
			t.Fatalf("send %v: %v", v, err)
		}
	}
	for _, want := range values {
		env := recvFrom(t, nodes[1], 0, 2*time.Second)
		if fmt.Sprint(env.Payload) != fmt.Sprint(want) {
			t.Fatalf("got %#v, want %#v", env.Payload, want)
		}
	}
	// Loopback delivery works without touching the wire.
	if err := nodes[0].Send(0, "self"); err != nil {
		t.Fatalf("self send: %v", err)
	}
	if env := recvFrom(t, nodes[0], 0, time.Second); env.Payload != "self" {
		t.Fatalf("loopback got %#v", env.Payload)
	}
}

func TestBackpressureSheds(t *testing.T) {
	// An unreachable peer leaves the writer in dial-backoff, so nothing
	// drains and the bounded queue fills; the cap+1-th send must shed
	// with a structured BackpressureError rather than block or buffer.
	nodes := startMesh(t, 2, func(i int, c *Config) {
		c.SendQueue = 4
		c.EvictAfter = -1 // isolate backpressure from eviction
		if i == 0 {
			c.Dial = func(string) (net.Conn, error) { return nil, errors.New("unreachable") }
		}
	})
	for k := 0; k < 4; k++ {
		if err := nodes[0].Send(1, k); err != nil {
			t.Fatalf("send %d within cap: %v", k, err)
		}
	}
	err := nodes[0].Send(1, 99)
	var bp *BackpressureError
	if !errors.As(err, &bp) || !errors.Is(err, ErrBackpressure) {
		t.Fatalf("want BackpressureError, got %v", err)
	}
	if bp.To != 1 || bp.Cap != 4 {
		t.Fatalf("error fields: %+v", bp)
	}
	if nodes[0].Stats().Sheds == 0 {
		t.Fatal("shed not counted")
	}
	// Broadcast survives the shed: it is a partial broadcast, not an error.
	if err := nodes[0].Broadcast("round"); err != nil {
		t.Fatalf("broadcast over congested peer: %v", err)
	}
}

func TestSlowPeerEviction(t *testing.T) {
	nodes := startMesh(t, 2, func(i int, c *Config) {
		c.SendQueue = 2
		c.EvictAfter = 3
		c.FlowWindow = 10 * time.Millisecond
		if i == 0 {
			c.Dial = func(string) (net.Conn, error) { return nil, errors.New("unreachable") }
		}
	})
	nodes[0].Send(1, "stuck-a")
	nodes[0].Send(1, "stuck-b")
	deadline := time.Now().Add(3 * time.Second)
	for !nodes[0].Evicted(1) {
		if time.Now().After(deadline) {
			t.Fatal("flow monitor never evicted the stalled peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	err := nodes[0].Send(1, "post-eviction")
	var ev *PeerEvictedError
	if !errors.As(err, &ev) || !errors.Is(err, ErrEvicted) {
		t.Fatalf("want PeerEvictedError, got %v", err)
	}
	if ev.Strikes < 3 {
		t.Fatalf("evicted after %d strikes, want >= 3", ev.Strikes)
	}
	if nodes[0].Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", nodes[0].Stats().Evictions)
	}
}

func TestHealthyPeerNotEvicted(t *testing.T) {
	// A draining queue must never accumulate strikes, no matter how many
	// windows pass.
	nodes := startMesh(t, 2, func(i int, c *Config) {
		c.FlowWindow = 5 * time.Millisecond
		c.EvictAfter = 2
	})
	stop := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(stop) {
		nodes[0].Send(1, "tick")
		recvFrom(t, nodes[1], 0, time.Second)
	}
	if nodes[0].Evicted(1) {
		t.Fatal("healthy peer was evicted")
	}
}

func TestRestartedPeerReconnects(t *testing.T) {
	nodes := startMesh(t, 2, nil)
	nodes[0].Send(1, "before")
	recvFrom(t, nodes[1], 0, 2*time.Second)

	// Kill p1 and restart it on the same address with a new incarnation:
	// p0's pool must redial and the stream must resume.
	addr := nodes[1].Addr()
	addrs := []string{nodes[0].Addr(), addr}
	nodes[1].Close()

	var restarted *Node
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		cfg := testConfig()
		cfg.Me, cfg.N, cfg.Addrs, cfg.Incarnation = 1, 2, addrs, 2
		restarted, err = Start(cfg)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // port may linger briefly
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer restarted.Close()

	// Keep sending until a frame lands on the restarted node.
	deadline := time.Now().Add(5 * time.Second)
	for {
		nodes[0].Send(1, "after")
		env, ok, _ := restarted.RecvTimeout(restarted.Clock() + 50)
		if ok && env.Payload == "after" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted peer never heard from p0")
		}
	}
	st := nodes[0].Stats()
	if st.Reconnects == 0 {
		t.Fatalf("no reconnect recorded: %+v", st)
	}
}

func TestCloseUnblocksAndIsIdempotent(t *testing.T) {
	nodes := startMesh(t, 2, nil)
	got := make(chan error, 1)
	go func() {
		_, err := nodes[0].Recv()
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Recv returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
	nodes[0].Close() // idempotent
	if err := nodes[0].Send(1, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestHeartbeatRTTObserved(t *testing.T) {
	reg := hist.NewRegistry()
	nodes := startMesh(t, 2, func(i int, c *Config) {
		c.HeartbeatEvery = 5 * time.Millisecond
		c.Hist = reg
	})
	_ = nodes
	deadline := time.Now().Add(2 * time.Second)
	for reg.Get("netsub_rtt_ns").Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no RTT samples recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClockMonotonicMillis(t *testing.T) {
	nodes := startMesh(t, 2, nil)
	a := nodes[0].Clock()
	time.Sleep(20 * time.Millisecond)
	b := nodes[0].Clock()
	if b < a+10 {
		t.Fatalf("clock advanced %d ms over a 20ms sleep", b-a)
	}
}
