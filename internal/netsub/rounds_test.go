package netsub

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msgnet"
)

// emitPID is the canonical agreement input: each process proposes its
// own pid as an int.
func emitPID(me core.PID, r int, received map[core.PID]core.Value, _ core.Set) core.Value {
	if r == 1 {
		return int(me)
	}
	// Later rounds forward the minimum heard so far, the flooding
	// k-set-agreement shape.
	min := int(me)
	for _, v := range received {
		if x, ok := v.(int); ok && x < min {
			min = x
		}
	}
	return min
}

func TestRunRoundsFaultFree(t *testing.T) {
	const n, f, rounds = 4, 1, 3
	out, rep, err := RunRounds(n, f, rounds, RoundsConfig{
		Node:     testConfig(),
		Watchdog: 2 * time.Second,
		Linger:   100 * time.Millisecond,
	}, emitPID)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if rep.Stalled() {
		t.Fatalf("fault-free run stalled: %s", rep)
	}
	if out.Trace.Len() != rounds {
		t.Fatalf("trace length %d, want %d", out.Trace.Len(), rounds)
	}
	for r := 1; r <= rounds; r++ {
		rec := out.Trace.Round(r)
		for i := 0; i < n; i++ {
			if !rec.Active.Has(core.PID(i)) {
				t.Fatalf("round %d: p%d inactive", r, i)
			}
			if d := rec.Suspects[i].Count(); d > f {
				t.Fatalf("round %d: |D(%d,r)| = %d > f", r, i, d)
			}
		}
	}
	for p := core.PID(0); int(p) < n; p++ {
		if len(out.Views[p]) != rounds {
			t.Fatalf("p%d recorded %d rounds", p, len(out.Views[p]))
		}
	}
}

// TestSameBodyBothSubstrates runs the IDENTICAL protocol function —
// RunSubstrateRounds — once on the virtual-clock scheduler and once on
// real TCP, and checks both induce traces with the same structural
// guarantees. This is the substrate-portability property the Substrate
// interface exists for: the body never learns which clock it is on.
func TestSameBodyBothSubstrates(t *testing.T) {
	const n, f, rounds = 3, 1, 2

	// Virtual substrate: the same body inside a scheduler process.
	recs := make([]*msgnet.RoundRec, n)
	vout, err := msgnet.Run(n, msgnet.Config{Chooser: msgnet.Seeded(7)}, func(nd *msgnet.Node) (core.Value, error) {
		rec, _, err := RunSubstrateRounds(nd, n, f, rounds, 4096, 512, emitPID, nil)
		recs[nd.Me] = rec
		return nil, err
	})
	if err != nil {
		t.Fatalf("msgnet run: %v", err)
	}
	virtual := msgnet.AssembleRoundOutcome(n, rounds, recs, vout.Crashed, vout.Steps)

	// Network substrate: the same body over loopback TCP.
	networked, rep, err := RunRounds(n, f, rounds, RoundsConfig{
		Node:     testConfig(),
		Watchdog: 2 * time.Second,
	}, emitPID)
	if err != nil {
		t.Fatalf("netsub run: %v", err)
	}
	if rep.Stalled() {
		t.Fatalf("netsub run stalled: %s", rep)
	}

	for name, out := range map[string]*msgnet.RoundOutcome{"virtual": virtual, "tcp": networked} {
		if out.Trace.Len() != rounds {
			t.Fatalf("%s: trace length %d, want %d", name, out.Trace.Len(), rounds)
		}
		for r := 1; r <= rounds; r++ {
			rec := out.Trace.Round(r)
			for i := 0; i < n; i++ {
				if !rec.Active.Has(core.PID(i)) {
					t.Fatalf("%s round %d: p%d inactive", name, r, i)
				}
				if rec.Suspects[i].Count() > f {
					t.Fatalf("%s round %d: |D(%d,r)| > f", name, r, i)
				}
			}
		}
	}
}

// TestDeadPeerDegradesIntoSuspicion: a process that never comes up
// must surface as a D(i,r) suspicion at every live process, with the
// rounds completing on the n-f quorum — loss degrades into suspicion,
// never into deadlock. This is the wall-clock analogue of the
// reliablelink give-up test.
func TestDeadPeerDegradesIntoSuspicion(t *testing.T) {
	const n, f, rounds = 3, 1, 2
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// p2's listener closes immediately: it is dead for the whole run.
	lns[2].Close()

	nodes := make([]*Node, 2)
	for i := 0; i < 2; i++ {
		cfg := testConfig()
		cfg.Me, cfg.N, cfg.Addrs, cfg.Listener = core.PID(i), n, addrs, lns[i]
		nd, err := Start(cfg)
		if err != nil {
			t.Fatalf("start p%d: %v", i, err)
		}
		nodes[i] = nd
		defer nd.Close()
	}

	type result struct {
		rec *msgnet.RoundRec
		err error
	}
	results := make([]result, 2)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec, _, err := RunSubstrateRounds(nodes[i], n, f, rounds, 2000, 100, emitPID, nil)
			results[i] = result{rec, err}
			done <- i
		}(i)
	}
	for range nodes {
		<-done
	}
	for i := 0; i < 2; i++ {
		if results[i].err != nil {
			t.Fatalf("p%d: %v", i, results[i].err)
		}
		rec := results[i].rec
		if len(rec.Dsets) != rounds {
			t.Fatalf("p%d completed %d rounds, want %d", i, len(rec.Dsets), rounds)
		}
		for r, d := range rec.Dsets {
			if !d.Has(2) || d.Count() != 1 {
				t.Fatalf("p%d round %d: D = %s, want {2}", i, r+1, d)
			}
		}
	}
}

// TestKilledAndRestartedPeerTerminates is the acceptance scenario: a
// peer is killed mid-run and restarted with a fresh incarnation; the
// survivors complete every round (suspecting it while it is away), the
// restarted process re-enters, works through its rounds — stalling into
// suspicions where the cohort has moved on — and the whole system
// terminates. No participant may deadlock.
func TestKilledAndRestartedPeerTerminates(t *testing.T) {
	const n, f, rounds = 3, 1, 6
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mk := func(i int, incarnation int, ln net.Listener) *Node {
		cfg := testConfig()
		cfg.Me, cfg.N, cfg.Addrs, cfg.Incarnation = core.PID(i), n, addrs, incarnation
		cfg.Listener = ln
		nd, err := Start(cfg)
		if err != nil {
			t.Fatalf("start p%d inc%d: %v", i, incarnation, err)
		}
		return nd
	}

	survivors := []*Node{mk(0, 1, lns[0]), mk(2, 1, lns[2])}
	victim := mk(1, 1, lns[1])

	type result struct {
		rec    *msgnet.RoundRec
		stalls int
		err    error
	}
	out := make(chan result, 4)
	for _, nd := range survivors {
		go func(nd *Node) {
			rec, st, err := RunSubstrateRounds(nd, n, f, rounds, 500, 200, emitPID, nil)
			out <- result{rec, len(st), err}
		}(nd)
	}
	// The victim participates in its first rounds, then is killed.
	victimDone := make(chan result, 1)
	go func(nd *Node) {
		rec, st, err := RunSubstrateRounds(nd, n, f, 2, 500, 0, emitPID, nil)
		nd.Close()
		victimDone <- result{rec, len(st), err}
	}(victim)

	killed := <-victimDone
	if killed.err != nil {
		t.Fatalf("victim before kill: %v", killed.err)
	}

	// Restart on the same address, fresh incarnation, fresh round 1.
	var reborn *Node
	for attempt := 0; ; attempt++ {
		cfg := testConfig()
		cfg.Me, cfg.N, cfg.Addrs, cfg.Incarnation = 1, n, addrs, 2
		nd, err := Start(cfg)
		if err == nil {
			reborn = nd
			break
		}
		if attempt > 50 {
			t.Fatalf("rebind %s: %v", addrs[1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer reborn.Close()
	go func(nd *Node) {
		rec, st, err := RunSubstrateRounds(nd, n, f, rounds, 500, 0, emitPID, nil)
		out <- result{rec, len(st), err}
	}(reborn)

	deadline := time.After(30 * time.Second)
	var results []result
	for len(results) < 3 {
		select {
		case r := <-out:
			results = append(results, r)
		case <-deadline:
			t.Fatal("system did not terminate: a participant deadlocked")
		}
	}
	for _, nd := range survivors {
		nd.Close()
	}
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("participant error: %v", r.err)
		}
		if len(r.rec.Dsets) != rounds {
			t.Fatalf("participant completed %d rounds, want %d", len(r.rec.Dsets), rounds)
		}
	}
}
