// Package fleet is the sharded multi-instance engine: it runs thousands
// of concurrent RRFD agreement instances with flat struct-of-arrays round
// state, partitioned across par workers, with batched cross-shard message
// routing — the throughput substrate under the agreement service's
// many-instance workloads.
//
// # Protocol
//
// Every instance is an n-process, f-resilient min-flood k-set agreement
// execution in the round-by-round fault detector model: in each round
// every process broadcasts its current value and folds the minimum over
// what the detector delivers; after its final round each process decides
// its current value. Per instance a hashed "slow" set B(i) of f processes
// is drawn, and the round-r detector output at receiver p is
//
//	D(p, r) = { q ∈ B(i) : suspect-hash(i, r, p, q) odd },  p ∉ D(p, r)
//
// so |D| ≤ f, S(p,r) ∪ D(p,r) = S (eq. (3) of the paper), and processes
// outside B(i) are heard by everyone every round. That gives the
// standard bound: final values are at most f+1 distinct per instance
// ((f+1)-set agreement), every decided value is some process's input,
// and instance i terminates after R(i) = BaseRounds + hash-spread rounds.
// Audit re-derives the inputs and checks all three properties.
//
// # Engine shape
//
// State is flat: one word slab per shard holds the current values of the
// shard's processes across ALL instances (struct-of-arrays — no
// per-instance maps or slices on the hot path), carved from a per-shard
// core.Arena; the per-instance slow sets live in one core.SetBank.
// Processes are partitioned across shards by pid (shard s owns the pids
// p with p mod Shards == s), so every instance spans every shard and
// every broadcast crosses shard boundaries — the interesting case for
// routing. A round is two par.Map barriers:
//
//	emit:    each shard packs (instance, sender, value) records for all
//	         its processes in all active instances into ONE slice, and
//	         hands that slice to every shard over a capacity-1 channel —
//	         one handoff per shard pair per round, however many
//	         instances are in flight.
//	deliver: each shard drains its S inbound batches, scatters the
//	         values into a slot-indexed scratch slab, and folds the
//	         min-with-suspicion rule for each of its processes.
//
// Instances are ordered by R(i) descending, so the active set at every
// round is a prefix of the slot order and the per-round sweep touches
// contiguous memory that only shrinks.
//
// All randomness (inputs, slow sets, round counts, suspicions) is
// stateless hashing of (seed, instance, round, receiver, sender) — never
// of anything shard- or schedule-dependent — so a fixed seed produces
// byte-identical results at every Shards × Workers combination, and a
// checkpoint taken at a round boundary resumes on a differently-sharded
// fleet without a byte of drift.
package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs/hist"
	"repro/internal/par"
)

// Config describes a fleet run.
type Config struct {
	// Instances is the number of concurrent agreement instances.
	Instances int

	// Procs is the per-instance process count n (2..64: value state is
	// word-packed, one bitset word per instance).
	Procs int

	// F is the per-instance resilience: |B(i)| = F slow processes may be
	// suspected. 0 ≤ F < Procs. Decisions satisfy (F+1)-set agreement.
	F int

	// BaseRounds is the minimum rounds an instance runs (≥ 1);
	// RoundSpread adds a hashed 0..RoundSpread extra rounds so instances
	// finish at staggered times, as a real mixed workload would.
	BaseRounds  int
	RoundSpread int

	// Shards is the number of state shards (≤ 0 means 1); Workers the
	// par worker count driving them (≤ 0 means GOMAXPROCS). Neither
	// affects results, only speed.
	Shards  int
	Workers int

	// Seed fixes every hashed choice. Same seed, same results — at any
	// shard and worker count.
	Seed int64

	// HaltAfterRound, when > 0, stops the run after that global round
	// and returns a resumable (not Done) Result — the crash/resume hook.
	HaltAfterRound int

	// Hist, when non-nil, receives per-shard per-round occupancy
	// ("fleet_shard_occupancy": live process slots per shard) and batch
	// size ("fleet_batch_recs": records per cross-shard handoff).
	Hist *hist.Registry
}

func (c Config) validate() error {
	switch {
	case c.Instances < 1:
		return fmt.Errorf("fleet: Instances %d < 1", c.Instances)
	case c.Procs < 2 || c.Procs > 64:
		return fmt.Errorf("fleet: Procs %d outside 2..64", c.Procs)
	case c.F < 0 || c.F >= c.Procs:
		return fmt.Errorf("fleet: F %d outside 0..Procs-1", c.F)
	case c.BaseRounds < 1:
		return fmt.Errorf("fleet: BaseRounds %d < 1", c.BaseRounds)
	case c.RoundSpread < 0:
		return fmt.Errorf("fleet: RoundSpread %d < 0", c.RoundSpread)
	}
	return nil
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// Hash tags: each hashed decision draws from its own stream.
const (
	tagInput uint64 = iota + 1
	tagSlow
	tagRounds
	tagSuspect
)

// mix is the splitmix64 finalizer — the avalanche step of every hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash4 hashes (seed, tag, a, b, c) into a uniform word. Stateless: the
// same key gives the same answer on every shard, worker, and resume.
func hash4(seed uint64, tag, a, b, c uint64) uint64 {
	x := seed ^ tag*0x9e3779b97f4a7c15
	x = mix(x ^ a)
	x = mix(x ^ b)
	x = mix(x ^ c)
	return mix(x)
}

// Input returns the hashed proposal of process p in instance inst — the
// value the fleet seeds slot (inst, p) with, re-derivable by Audit.
func Input(cfg Config, inst int, p int) int64 {
	return int64(hash4(uint64(cfg.Seed), tagInput, uint64(inst), uint64(p), 0))
}

// rounds returns R(inst), the instance's total round count.
func rounds(cfg Config, inst int) int {
	if cfg.RoundSpread == 0 {
		return cfg.BaseRounds
	}
	return cfg.BaseRounds + int(hash4(uint64(cfg.Seed), tagRounds, uint64(inst), 0, 0)%uint64(cfg.RoundSpread+1))
}

// suspects reports whether receiver p suspects slow sender q in round r
// of instance inst: the detector coin, one independent flip per
// (instance, round, receiver, sender).
func suspects(seed uint64, inst int32, r int, p, q int32) bool {
	return hash4(seed, tagSuspect, uint64(inst), uint64(r), uint64(p)<<32|uint64(uint32(q)))&1 == 1
}

// shard is one partition of fleet state. All storage is carved from the
// shard's own arena, so shards never share cache lines.
type shard struct {
	owned []int32 // pids this shard owns (p with p % S == shard index)

	arena core.Arena

	// vals[slot*len(owned)+j] is the current value (int64 bits) of owned
	// pid j in the instance at slot — the struct-of-arrays round state.
	vals []uint64

	// emitBuf is the packed outbound batch: records of two words each,
	// (instance<<32 | sender, value), for every owned process of every
	// active instance, rebuilt each round and handed to all shards.
	emitBuf []uint64

	// scratch[slot*n+sender] is the deliver-phase gather of all n sender
	// values per active instance, scattered from the inbound batches.
	scratch []uint64
}

// fleet is a constructed engine: derived schedule plus sharded state.
type fleet struct {
	cfg  Config
	n, S int
	maxR int

	rds []int32 // rds[i] = R(i)
	ord []int32 // slot -> instance, sorted by R desc then instance id
	pos []int32 // instance -> slot
	cnt []int32 // cnt[r] = instances with R(i) >= r; index 0..maxR+1

	slow     *core.SetBank // per-instance slow set B(i), one row per instance
	slowList []int32       // flat [inst*F+k] member list, hot-loop view of slow

	shards []shard
	route  [][]chan []uint64 // route[src][dst], capacity 1
}

func newFleet(cfg Config) (*fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	S := cfg.shards()
	n := cfg.Procs
	f := &fleet{cfg: cfg, n: n, S: S, maxR: cfg.BaseRounds + cfg.RoundSpread}

	// Derived schedule: per-instance round counts, the R-descending slot
	// order (counting sort — deterministic, stable by instance id), and
	// the active-prefix size per round.
	inst := cfg.Instances
	f.rds = make([]int32, inst)
	f.cnt = make([]int32, f.maxR+2)
	for i := 0; i < inst; i++ {
		r := rounds(cfg, i)
		f.rds[i] = int32(r)
		f.cnt[r]++
	}
	start := make([]int32, f.maxR+2) // first slot for instances with R == r
	var acc int32
	for r := f.maxR; r >= 1; r-- {
		c := f.cnt[r]
		start[r] = acc
		acc += c
		f.cnt[r] = acc // now cnt[r] = #instances with R >= r
	}
	f.ord = make([]int32, inst)
	f.pos = make([]int32, inst)
	for i := 0; i < inst; i++ {
		slot := start[f.rds[i]]
		start[f.rds[i]]++
		f.ord[slot] = int32(i)
		f.pos[i] = slot
	}

	// Slow sets: for each instance the F pids with the smallest slow-hash
	// (ties to the lower pid), recorded in a SetBank row and flattened
	// into slowList for the hot loop.
	f.slow = core.NewSetBank(n, inst)
	f.slowList = make([]int32, inst*cfg.F)
	for i := 0; i < inst; i++ {
		for k := 0; k < cfg.F; k++ {
			best, bestH := int32(-1), uint64(math.MaxUint64)
			for p := 0; p < n; p++ {
				if f.slow.Has(i, core.PID(p)) {
					continue
				}
				if h := hash4(uint64(cfg.Seed), tagSlow, uint64(i), uint64(p), 0); h < bestH {
					best, bestH = int32(p), h
				}
			}
			f.slow.Add(i, core.PID(best))
			f.slowList[i*cfg.F+k] = best
		}
	}

	// Sharded state: pid p lives on shard p % S.
	f.shards = make([]shard, S)
	for d := 0; d < S; d++ {
		sh := &f.shards[d]
		for p := d; p < n; p += S {
			sh.owned = append(sh.owned, int32(p))
		}
		cd := len(sh.owned)
		sh.vals = sh.arena.Uint64s(inst * cd)
		sh.emitBuf = sh.arena.Uint64s(2 * inst * cd)
		sh.scratch = sh.arena.Uint64s(inst * n)
	}
	f.route = make([][]chan []uint64, S)
	for s := range f.route {
		f.route[s] = make([]chan []uint64, S)
		for d := range f.route[s] {
			f.route[s][d] = make(chan []uint64, 1)
		}
	}
	return f, nil
}

// SlowSet returns B(inst) — exposed for tests and audits.
func (f *fleet) SlowSet(inst int) core.Set {
	s := core.NewSet(f.n)
	s.CopyFrom(f.slow.Row(inst))
	return s
}

// scatterInputs seeds every slot with its hashed proposal.
func (f *fleet) scatterInputs() {
	for d := range f.shards {
		sh := &f.shards[d]
		cd := len(sh.owned)
		for i := 0; i < f.cfg.Instances; i++ {
			slot := int(f.pos[i])
			for j, p := range sh.owned {
				sh.vals[slot*cd+j] = uint64(Input(f.cfg, i, int(p)))
			}
		}
	}
}

// scatterValues loads checkpointed values (canonical [inst*n+p] order)
// into whatever sharding this fleet uses.
func (f *fleet) scatterValues(vals []int64) {
	for d := range f.shards {
		sh := &f.shards[d]
		cd := len(sh.owned)
		for i := 0; i < f.cfg.Instances; i++ {
			slot := int(f.pos[i])
			for j, p := range sh.owned {
				sh.vals[slot*cd+j] = uint64(vals[i*f.n+int(p)])
			}
		}
	}
}

// gather reads the sharded state back into canonical [inst*n+p] order.
func (f *fleet) gather() []int64 {
	out := make([]int64, f.cfg.Instances*f.n)
	for d := range f.shards {
		sh := &f.shards[d]
		cd := len(sh.owned)
		for i := 0; i < f.cfg.Instances; i++ {
			slot := int(f.pos[i])
			for j, p := range sh.owned {
				out[i*f.n+int(p)] = int64(sh.vals[slot*cd+j])
			}
		}
	}
	return out
}

// emit packs shard d's outbound batch for round r and hands it to every
// shard: one channel send per destination, one batch per shard pair.
func (f *fleet) emit(d, r int) {
	sh := &f.shards[d]
	cd := len(sh.owned)
	nAct := int(f.cnt[r])
	idx := 0
	for a := 0; a < nAct; a++ {
		i := f.ord[a]
		base := a * cd
		for j, p := range sh.owned {
			sh.emitBuf[idx] = uint64(i)<<32 | uint64(uint32(p))
			sh.emitBuf[idx+1] = sh.vals[base+j]
			idx += 2
		}
	}
	batch := sh.emitBuf[:idx]
	if f.cfg.Hist != nil {
		f.cfg.Hist.Observe("fleet_batch_recs", int64(idx/2))
		f.cfg.Hist.Observe("fleet_shard_occupancy", int64(nAct*cd))
	}
	for dst := 0; dst < f.S; dst++ {
		f.route[d][dst] <- batch
	}
}

// deliver drains shard d's inbound batches for round r, scatters the
// sender values into the slot-indexed scratch slab, and applies the
// min-with-suspicion fold to every owned process of every active
// instance.
func (f *fleet) deliver(d, r int) {
	sh := &f.shards[d]
	cd := len(sh.owned)
	n := f.n
	F := f.cfg.F
	seed := uint64(f.cfg.Seed)
	for src := 0; src < f.S; src++ {
		buf := <-f.route[src][d]
		for k := 0; k < len(buf); k += 2 {
			w := buf[k]
			slot := int(f.pos[w>>32])
			sh.scratch[slot*n+int(uint32(w))] = buf[k+1]
		}
	}
	nAct := int(f.cnt[r])
	for a := 0; a < nAct; a++ {
		i := f.ord[a]
		base := a * n
		sl := f.slowList[int(i)*F : int(i)*F+F]
		// minFast: the minimum over senders outside B(i), which no
		// receiver may suspect — every process folds it in.
		minFast := int64(math.MaxInt64)
		for s := 0; s < n; s++ {
			isSlow := false
			for _, q := range sl {
				if int32(s) == q {
					isSlow = true
					break
				}
			}
			if isSlow {
				continue
			}
			if v := int64(sh.scratch[base+s]); v < minFast {
				minFast = v
			}
		}
		for j, p := range sh.owned {
			v := int64(sh.vals[a*cd+j])
			if minFast < v {
				v = minFast
			}
			for _, q := range sl {
				if q == p {
					continue // own value already folded; never self-suspect
				}
				if sv := int64(sh.scratch[base+int(q)]); sv < v && !suspects(seed, i, r, p, q) {
					v = sv
				}
			}
			sh.vals[a*cd+j] = uint64(v)
		}
	}
}

// run executes rounds start..maxR (or up to HaltAfterRound) and returns
// the result. Each round is two barriers: every shard emits, then every
// shard delivers. Fusing them would deadlock with fewer workers than
// shards (a delivering shard would wait on a shard not yet scheduled).
func (f *fleet) run(start int) (*Result, error) {
	W := f.cfg.Workers
	r := start
	for ; r <= f.maxR; r++ {
		if f.cnt[r] == 0 {
			break
		}
		if _, err := par.Map(W, f.S, func(d int) struct{} { f.emit(d, r); return struct{}{} }); err != nil {
			return nil, err
		}
		if _, err := par.Map(W, f.S, func(d int) struct{} { f.deliver(d, r); return struct{}{} }); err != nil {
			return nil, err
		}
		if f.cfg.HaltAfterRound == r {
			r++
			break
		}
	}
	done := r > f.maxR || f.cnt[r] == 0
	rds := make([]int32, len(f.rds))
	copy(rds, f.rds)
	return &Result{
		Instances: f.cfg.Instances,
		Procs:     f.n,
		NextRound: r,
		Done:      done,
		Rounds:    rds,
		Values:    f.gather(),
	}, nil
}

// Run executes a fleet from scratch.
func Run(cfg Config) (*Result, error) {
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	f.scatterInputs()
	return f.run(1)
}

// Resume continues a halted fleet from a Checkpoint. cfg must agree with
// the original on everything that shapes results (instances, procs, F,
// rounds, seed); Shards and Workers are free — resuming on a
// differently-sharded fleet yields byte-identical results.
func Resume(cfg Config, checkpoint []byte) (*Result, error) {
	next, vals, err := decodeCheckpoint(cfg, checkpoint)
	if err != nil {
		return nil, err
	}
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	f.scatterValues(vals)
	return f.run(next)
}

// Result is a fleet's outcome: the canonical per-process values (final
// decisions when Done; in-flight state when halted) plus the schedule.
type Result struct {
	Instances int
	Procs     int
	NextRound int  // first round not yet run
	Done      bool // every instance decided
	Rounds    []int32
	Values    []int64 // [inst*Procs + p]
}

// InstanceRounds is the total work the schedule represents: ΣᵢR(i) — the
// unit of the fleet's throughput metric.
func (r *Result) InstanceRounds() int64 {
	var t int64
	for _, rr := range r.Rounds {
		t += int64(rr)
	}
	return t
}

const (
	resultMagic     uint32 = 0x52464C54 // "RFLT"
	checkpointMagic uint32 = 0x52464C43 // "RFLC"
)

// Bytes is the canonical serialization — identical for identical
// outcomes regardless of sharding, the object the determinism tests
// compare.
func (r *Result) Bytes() []byte {
	out := make([]byte, 0, 24+4*len(r.Rounds)+8*len(r.Values))
	out = binary.LittleEndian.AppendUint32(out, resultMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(r.Instances))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.Procs))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.NextRound))
	if r.Done {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	for _, rr := range r.Rounds {
		out = binary.LittleEndian.AppendUint32(out, uint32(rr))
	}
	for _, v := range r.Values {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// Checksum is FNV-1a over Bytes — the one-word fingerprint the
// determinism suite compares across shard/worker grids.
func (r *Result) Checksum() uint64 {
	h := uint64(14695981039346656037)
	for _, b := range r.Bytes() {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Checkpoint serializes a halted result for Resume. The header carries a
// fingerprint of everything that shapes results, so a mismatched resume
// config is rejected instead of silently diverging.
func (r *Result) Checkpoint(cfg Config) []byte {
	out := make([]byte, 0, 40+8*len(r.Values))
	out = binary.LittleEndian.AppendUint32(out, checkpointMagic)
	out = binary.LittleEndian.AppendUint64(out, uint64(cfg.Seed))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.Instances))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.Procs))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.F))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.BaseRounds))
	out = binary.LittleEndian.AppendUint32(out, uint32(cfg.RoundSpread))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.NextRound))
	for _, v := range r.Values {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

func decodeCheckpoint(cfg Config, b []byte) (next int, vals []int64, err error) {
	if len(b) < 32 {
		return 0, nil, fmt.Errorf("fleet: checkpoint too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != checkpointMagic {
		return 0, nil, fmt.Errorf("fleet: bad checkpoint magic")
	}
	seed := int64(binary.LittleEndian.Uint64(b[4:12]))
	inst := int(binary.LittleEndian.Uint32(b[12:16]))
	procs := int(binary.LittleEndian.Uint32(b[16:20]))
	ff := int(binary.LittleEndian.Uint32(b[20:24]))
	base := int(binary.LittleEndian.Uint32(b[24:28]))
	spread := int(binary.LittleEndian.Uint32(b[28:32]))
	if seed != cfg.Seed || inst != cfg.Instances || procs != cfg.Procs ||
		ff != cfg.F || base != cfg.BaseRounds || spread != cfg.RoundSpread {
		return 0, nil, fmt.Errorf("fleet: checkpoint from a different run (seed/shape mismatch)")
	}
	if len(b) != 36+8*inst*procs {
		return 0, nil, fmt.Errorf("fleet: checkpoint length %d, want %d", len(b), 36+8*inst*procs)
	}
	next = int(binary.LittleEndian.Uint32(b[32:36]))
	vals = make([]int64, inst*procs)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[36+8*i:]))
	}
	return next, vals, nil
}

// Audit re-derives the hashed inputs and slow sets and checks the
// protocol's three guarantees on a finished result: (f+1)-set agreement
// per instance, validity (every decision is some process's input, and no
// process decides above its own input), and termination (Done with the
// derived schedule). It is the test harness's ground truth.
func Audit(cfg Config, res *Result) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if !res.Done {
		return fmt.Errorf("fleet: audit of unfinished result (next round %d)", res.NextRound)
	}
	if res.Instances != cfg.Instances || res.Procs != cfg.Procs {
		return fmt.Errorf("fleet: result shape %dx%d does not match config %dx%d",
			res.Instances, res.Procs, cfg.Instances, cfg.Procs)
	}
	n := cfg.Procs
	inputs := make(map[int64]bool, n)
	distinct := make(map[int64]bool, cfg.F+1)
	for i := 0; i < cfg.Instances; i++ {
		if int(res.Rounds[i]) != rounds(cfg, i) {
			return fmt.Errorf("fleet: instance %d ran %d rounds, schedule says %d", i, res.Rounds[i], rounds(cfg, i))
		}
		clear(inputs)
		for p := 0; p < n; p++ {
			inputs[Input(cfg, i, p)] = true
		}
		clear(distinct)
		for p := 0; p < n; p++ {
			v := res.Values[i*n+p]
			if !inputs[v] {
				return fmt.Errorf("fleet: instance %d process %d decided %d, not any input", i, p, v)
			}
			if own := Input(cfg, i, p); v > own {
				return fmt.Errorf("fleet: instance %d process %d decided %d above own input %d", i, p, v, own)
			}
			distinct[v] = true
		}
		if len(distinct) > cfg.F+1 {
			return fmt.Errorf("fleet: instance %d decided %d distinct values, k-set bound is %d", i, len(distinct), cfg.F+1)
		}
	}
	return nil
}
