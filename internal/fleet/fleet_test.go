package fleet

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/hist"
)

func testConfig() Config {
	return Config{
		Instances:   256,
		Procs:       5,
		F:           2,
		BaseRounds:  2,
		RoundSpread: 2,
		Seed:        42,
	}
}

// TestFleetDeterministicAcrossShardsAndWorkers is the acceptance
// property: a fixed seed yields byte-identical results at every
// shard × worker combination, and the result passes the protocol audit.
func TestFleetDeterministicAcrossShardsAndWorkers(t *testing.T) {
	cfg := testConfig()
	var want []byte
	var wantSum uint64
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			c := cfg
			c.Shards, c.Workers = shards, workers
			res, err := Run(c)
			if err != nil {
				t.Fatalf("S=%d W=%d: %v", shards, workers, err)
			}
			if !res.Done {
				t.Fatalf("S=%d W=%d: not done", shards, workers)
			}
			if err := Audit(c, res); err != nil {
				t.Fatalf("S=%d W=%d audit: %v", shards, workers, err)
			}
			b := res.Bytes()
			if want == nil {
				want, wantSum = b, res.Checksum()
				continue
			}
			if !bytes.Equal(b, want) {
				t.Fatalf("S=%d W=%d: result bytes diverge from S=1 W=1", shards, workers)
			}
			if res.Checksum() != wantSum {
				t.Fatalf("S=%d W=%d: checksum diverges", shards, workers)
			}
		}
	}
}

// TestFleetCrashResumeRepartitioned halts a fleet mid-run, then resumes
// the checkpoint on fleets with different shard and worker counts — all
// must land byte-identical to the uninterrupted run.
func TestFleetCrashResumeRepartitioned(t *testing.T) {
	cfg := testConfig()
	cfg.Shards, cfg.Workers = 4, 4
	straight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	halted := cfg
	halted.HaltAfterRound = 1
	mid, err := Run(halted)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Done || mid.NextRound != 2 {
		t.Fatalf("halted run: done=%v next=%d", mid.Done, mid.NextRound)
	}
	ckpt := mid.Checkpoint(cfg)
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 8} {
			c := cfg
			c.Shards, c.Workers = shards, workers
			res, err := Resume(c, ckpt)
			if err != nil {
				t.Fatalf("resume S=%d W=%d: %v", shards, workers, err)
			}
			if !res.Done {
				t.Fatalf("resume S=%d W=%d: not done", shards, workers)
			}
			if !bytes.Equal(res.Bytes(), straight.Bytes()) {
				t.Fatalf("resume S=%d W=%d diverges from uninterrupted run", shards, workers)
			}
			if err := Audit(c, res); err != nil {
				t.Fatalf("resume S=%d W=%d audit: %v", shards, workers, err)
			}
		}
	}
}

// TestFleetCheckpointRejectsMismatch: a checkpoint resumed under a
// config that would reshape results must be refused, not silently
// diverge.
func TestFleetCheckpointRejectsMismatch(t *testing.T) {
	cfg := testConfig()
	cfg.HaltAfterRound = 1
	mid, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := mid.Checkpoint(cfg)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.Instances++ },
		func(c *Config) { c.Procs++ },
		func(c *Config) { c.F++ },
		func(c *Config) { c.BaseRounds++ },
		func(c *Config) { c.RoundSpread++ },
	} {
		c := cfg
		mutate(&c)
		if _, err := Resume(c, ckpt); err == nil {
			t.Fatalf("mismatched resume accepted: %+v", c)
		}
	}
	if _, err := Resume(cfg, ckpt[:20]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestFleetProtocolNonTrivial guards against the protocol degenerating:
// with F ≥ 1 and suspicion coins in play, some instances must actually
// disagree (within the k-set bound) — otherwise the suspicion machinery
// is dead code and the determinism tests prove nothing interesting.
func TestFleetProtocolNonTrivial(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Procs
	split := 0
	for i := 0; i < cfg.Instances; i++ {
		distinct := map[int64]bool{}
		for p := 0; p < n; p++ {
			distinct[res.Values[i*n+p]] = true
		}
		if len(distinct) > 1 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("no instance split its decision: suspicions never bit")
	}
	if split == cfg.Instances {
		t.Fatal("every instance split: agreement never happens")
	}
}

// TestFleetAuditCatchesCorruption: the audit must reject a result whose
// values violate validity or the k-set bound.
func TestFleetAuditCatchesCorruption(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Values[3] = res.Values[3] - 1 // no longer any input
	if err := Audit(cfg, res); err == nil {
		t.Fatal("audit accepted a corrupted value")
	}
}

// TestFleetSlowSets: B(i) has exactly F members, and the SetBank row and
// the flat hot-loop list agree.
func TestFleetSlowSets(t *testing.T) {
	cfg := testConfig()
	f, err := newFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Instances; i++ {
		s := f.SlowSet(i)
		if s.Count() != cfg.F {
			t.Fatalf("instance %d: |B| = %d, want %d", i, s.Count(), cfg.F)
		}
		for k := 0; k < cfg.F; k++ {
			if p := f.slowList[i*cfg.F+k]; !s.Has(core.PID(p)) {
				t.Fatalf("instance %d: slowList member %d missing from bank row", i, p)
			}
		}
	}
}

// TestFleetActivePrefix: cnt is non-increasing and the slot order puts
// longer-running instances first, so the per-round active set is always
// a prefix.
func TestFleetActivePrefix(t *testing.T) {
	cfg := testConfig()
	f, err := newFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(f.cnt); r++ {
		if f.cnt[r] > f.cnt[r-1] && r > 1 {
			t.Fatalf("cnt grows at round %d", r)
		}
	}
	for a := 1; a < len(f.ord); a++ {
		if f.rds[f.ord[a]] > f.rds[f.ord[a-1]] {
			t.Fatalf("slot order not R-descending at slot %d", a)
		}
	}
	for r := 1; r <= f.maxR; r++ {
		for a := 0; a < int(f.cnt[r]); a++ {
			if int(f.rds[f.ord[a]]) < r {
				t.Fatalf("slot %d inactive at round %d but inside the prefix", a, r)
			}
		}
	}
}

// TestFleetHistObservability: the per-shard occupancy and batch-size
// histograms fill when a registry is wired in.
func TestFleetHistObservability(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	cfg.Hist = hist.NewRegistry()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	recs := cfg.Hist.Get("fleet_batch_recs").Count()
	occ := cfg.Hist.Get("fleet_shard_occupancy").Count()
	if recs == 0 || occ == 0 {
		t.Fatalf("histograms empty: batch_recs=%d occupancy=%d", recs, occ)
	}
	if recs != occ {
		t.Fatalf("one observation each per shard-round: batch_recs=%d occupancy=%d", recs, occ)
	}
}

// TestFleetConfigValidation: bad shapes are rejected up front.
func TestFleetConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Instances = 0 },
		func(c *Config) { c.Procs = 1 },
		func(c *Config) { c.Procs = 65 },
		func(c *Config) { c.F = -1 },
		func(c *Config) { c.F = c.Procs },
		func(c *Config) { c.BaseRounds = 0 },
		func(c *Config) { c.RoundSpread = -1 },
	} {
		c := testConfig()
		mutate(&c)
		if _, err := Run(c); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
}

// TestFleetShardsExceedProcs: more shards than processes leaves some
// shards owning nothing — the fleet must still run and stay canonical.
func TestFleetShardsExceedProcs(t *testing.T) {
	cfg := testConfig()
	cfg.Procs, cfg.F = 3, 1
	base := cfg
	base.Shards = 1
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wide := cfg
	wide.Shards, wide.Workers = 8, 4
	got, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("empty-shard fleet diverges")
	}
}

// TestInputStable pins the hashed inputs: deterministic, and spread out
// enough that instances are not all proposing the same value.
func TestInputStable(t *testing.T) {
	cfg := testConfig()
	seen := map[int64]bool{}
	for i := 0; i < 32; i++ {
		for p := 0; p < cfg.Procs; p++ {
			if Input(cfg, i, p) != Input(cfg, i, p) {
				t.Fatal("Input not deterministic")
			}
			seen[Input(cfg, i, p)] = true
		}
	}
	if len(seen) < 32 {
		t.Fatalf("inputs collapse: %d distinct over %d draws", len(seen), 32*cfg.Procs)
	}
}
