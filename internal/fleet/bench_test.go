package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkEngineFleet is the headline throughput benchmark: a full
// fleet run (build, schedule, all rounds, gather) priced in
// instance-rounds per second — one instance-round being one instance
// advancing one protocol round across all its processes. The acceptance
// target is ≥ 1M instrounds/sec on 8 cores; the single-shard row shows
// the same engine serial, so the per-core efficiency is visible too.
// Tracked in BENCH_core.json under the benchstatjson compare gate.
func BenchmarkEngineFleet(b *testing.B) {
	base := Config{
		Instances:   4096,
		Procs:       4,
		F:           1,
		BaseRounds:  2,
		RoundSpread: 2,
		Seed:        7,
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := base
			cfg.Shards = shards // Workers defaults to GOMAXPROCS
			var total int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += res.InstanceRounds()
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instrounds/sec")
		})
	}
}

// BenchmarkFleetRoundsOnly isolates the round loop from fleet
// construction: one fleet built outside the timer, rounds re-run on a
// rewound value slab each iteration. This is the marginal cost of an
// instance-round once a fleet is warm.
func BenchmarkFleetRoundsOnly(b *testing.B) {
	cfg := Config{
		Instances:   4096,
		Procs:       4,
		F:           1,
		BaseRounds:  2,
		RoundSpread: 2,
		Seed:        7,
		Shards:      4,
	}
	f, err := newFleet(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f.scatterInputs()
	warm, err := f.run(1)
	if err != nil {
		b.Fatal(err)
	}
	perRun := warm.InstanceRounds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.scatterInputs()
		if _, err := f.run(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perRun*int64(b.N))/b.Elapsed().Seconds(), "instrounds/sec")
}
